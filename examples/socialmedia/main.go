// Social-media rumour demo: the paper's §1 motivation describes amnesiac
// flooding as "an aggressive social media user that has a compulsion to
// forward every message but does not want to annoy those who have just sent
// it the message it's forwarding".
//
// This example builds a random social network (dense core plus tree-like
// periphery), injects a rumour at a random user, and compares the amnesiac
// forwarder with the classic remember-everything forwarder: rounds to quiet,
// total forwards, and how many users saw the rumour more than once.
//
//	go run ./examples/socialmedia [-n 300] [-seed 42]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"amnesiacflood/internal/classic"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
)

func main() {
	n := flag.Int("n", 300, "number of users")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()
	if err := run(*n, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	network := socialNetwork(n, rng)
	patientZero := graph.NodeID(rng.Intn(network.N()))
	fmt.Printf("network: %s (diameter %d, bipartite %t)\n",
		network, algo.Diameter(network), algo.IsBipartite(network))
	fmt.Printf("rumour starts at user %d (eccentricity %d)\n\n",
		patientZero, algo.Eccentricity(network, patientZero))

	// Both forwarders run through the sim façade: same graph, same patient
	// zero, protocol selected by registry name.
	runProtocol := func(name string) (*core.Report, error) {
		sess, err := sim.New(network,
			sim.WithProtocol(name),
			sim.WithEngine(sim.Fast),
			sim.WithOrigins(patientZero),
			sim.WithTrace(true),
		)
		if err != nil {
			return nil, err
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			return nil, err
		}
		return core.Analyze(network, []graph.NodeID{patientZero}, res), nil
	}

	amnesiac, err := runProtocol("amnesiac")
	if err != nil {
		return err
	}
	multi := 0
	for _, c := range amnesiac.ReceiveCounts {
		if c >= 2 {
			multi++
		}
	}
	fmt.Println("amnesiac forwarder (no per-user memory):")
	fmt.Printf("  quiet after %d rounds, %d forwards, %d/%d users saw the rumour twice\n\n",
		amnesiac.Rounds(), amnesiac.TotalMessages(), multi, network.N())

	classicRep, err := runProtocol("classic")
	if err != nil {
		return err
	}
	classicRes := classicRep.Result
	fmt.Println("classic forwarder (every user remembers the rumour):")
	fmt.Printf("  quiet after %d rounds, %d forwards, %d persistent bit(s) per user\n\n",
		classicRes.Rounds, classicRes.TotalMessages, classic.PersistentBitsPerNode())

	ratio := float64(amnesiac.TotalMessages()) / float64(classicRes.TotalMessages)
	fmt.Printf("price of amnesia on this network: %.2fx the forwards, %+d rounds\n",
		ratio, amnesiac.Rounds()-classicRes.Rounds)
	fmt.Println("(the paper proves the amnesiac process always goes quiet: Theorem 3.1)")
	return nil
}

// socialNetwork builds a preferential-attachment contact graph: heavy-
// tailed degrees (a few hub users with many contacts), connected, like the
// social networks of the paper's reference [3].
func socialNetwork(n int, rng *rand.Rand) *graph.Graph {
	return gen.PreferentialAttachment(n, 3, rng)
}
