// Termination-detection demo: the paper's introduction notes that classic
// flooding needs a flag per node "and other mechanisms to detect
// termination". This example makes the comparison concrete on one network:
//
//   - amnesiac flooding: terminates by itself (Theorem 3.1), zero
//     persistent bits, zero extra messages — but silently: nobody knows.
//
//   - classic flooding + Dijkstra-Scholten acks: the origin learns a
//     definite "flood over" — for exactly 2x the messages, per-node
//     parent/deficit state, and the drain-back delay.
//
//     go run ./examples/termination [-seed 11]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/termdetect"
)

func main() {
	seed := flag.Int64("seed", 11, "random seed")
	flag.Parse()
	if err := run(*seed); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	g := gen.PreferentialAttachment(250, 2, rng)
	source := graph.NodeID(rng.Intn(g.N()))
	fmt.Printf("network: %s, flood from node %d\n\n", g, source)

	amnesiac, err := core.Run(g, source)
	if err != nil {
		return err
	}
	fmt.Println("amnesiac flooding:")
	fmt.Printf("  quiet after round %d; %d messages; persistent state: none\n",
		amnesiac.Rounds(), amnesiac.TotalMessages())
	fmt.Println("  termination knowledge: none — the network just falls silent")
	fmt.Println()

	detected, err := termdetect.Run(g, source)
	if err != nil {
		return err
	}
	fmt.Println("classic flooding + Dijkstra-Scholten detection:")
	fmt.Printf("  flood quiet after round %d; origin DETECTS termination at round %d\n",
		detected.FloodRounds, detected.DetectionRound)
	fmt.Printf("  %d flood messages + %d acknowledgements = %d total (%.2fx the amnesiac run)\n",
		detected.FloodMessages, detected.AckMessages, detected.TotalMessages(),
		float64(detected.TotalMessages())/float64(amnesiac.TotalMessages()))
	fmt.Println("  persistent state: seen flag + parent pointer + deficit counter per node")
	fmt.Println()
	fmt.Println("the paper's trade: amnesiac flooding gives up the 'done' signal to run with no memory at all")
	return nil
}
