// Spanning-tree demo: the paper opens by quoting Aspnes — flooding "gives
// you both a broadcast mechanism and a way to build rooted spanning trees".
// This example shows the amnesiac variant keeps that byproduct: reading
// each node's first sender off the flood yields a BFS tree rooted at the
// origin, even though the protocol itself remembers nothing.
//
//	go run ./examples/spanningtree [-seed 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/spantree"
	"amnesiacflood/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 5, "random seed")
	flag.Parse()
	if err := run(*seed); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64) error {
	rng := rand.New(rand.NewSource(seed))

	// Small graph: print the whole tree.
	g := gen.Petersen()
	tree, err := spantree.Build(g, 0)
	if err != nil {
		return err
	}
	fmt.Printf("flood-derived spanning tree of the %s rooted at %s:\n\n", g, trace.Letters(tree.Root))
	byDepth := map[int][]graph.NodeID{}
	maxDepth := 0
	for v := 0; v < g.N(); v++ {
		d := tree.Depth[v]
		byDepth[d] = append(byDepth[d], graph.NodeID(v))
		if d > maxDepth {
			maxDepth = d
		}
	}
	for d := 0; d <= maxDepth; d++ {
		var labels []string
		for _, v := range byDepth[d] {
			if v == tree.Root {
				labels = append(labels, trace.Letters(v)+" (root)")
			} else {
				labels = append(labels, fmt.Sprintf("%s<-%s", trace.Letters(v), trace.Letters(tree.Parent[v])))
			}
		}
		fmt.Printf("depth %d: %s\n", d, strings.Join(labels, "  "))
	}
	if err := tree.Validate(g); err != nil {
		return err
	}
	fmt.Println("\ntree validated: every edge joins consecutive BFS layers (child<-parent shown above)")

	// Larger random graph: just the invariants.
	big := gen.RandomConnected(500, 0.01, rng)
	root := graph.NodeID(rng.Intn(big.N()))
	bigTree, err := spantree.Build(big, root)
	if err != nil {
		return err
	}
	if err := bigTree.Validate(big); err != nil {
		return err
	}
	dist := algo.BFS(big, root)
	agree := true
	for v := range dist {
		if bigTree.Depth[v] != dist[v] {
			agree = false
			break
		}
	}
	fmt.Printf("\n%s rooted at %d: %d tree edges, depths match BFS distances: %t\n",
		big, root, len(bigTree.Edges()), agree)
	deepest := 0
	for v := range dist {
		if dist[v] > dist[deepest] {
			deepest = v
		}
	}
	fmt.Printf("longest root path (%d hops): %v\n", bigTree.Depth[deepest], bigTree.PathToRoot(graph.NodeID(deepest)))
	return nil
}
