// Asynchronous adversary demo (paper §4, Figure 5): in the asynchronous
// variant of amnesiac flooding, a scheduling adversary that delays one of
// two colliding messages keeps the triangle's flood alive forever. The
// simulator proves it by detecting a repeated global configuration — a
// finite certificate of an infinite execution.
//
// The demo runs everything through the sim façade's model axis: the
// adversary is the registry spec "adversary:collision", selected with
// sim.WithModel exactly like a protocol or an engine.
//
//	go run ./examples/asyncadversary
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
	"amnesiacflood/internal/trace"

	// Registers the adversary model families.
	_ "amnesiacflood/internal/async"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	fmt.Println("## Figure 5: the triangle under the delaying adversary")
	fmt.Println()
	tri := gen.Cycle(3)
	sess, err := sim.New(tri,
		sim.WithModel("adversary:collision"),
		sim.WithOrigins(1),
		sim.WithTrace(true),
	)
	if err != nil {
		return err
	}
	res, err := sess.Run(ctx)
	if err != nil {
		return err
	}
	for _, rec := range res.Trace {
		edges := make([]string, len(rec.Sends))
		for i, s := range rec.Sends {
			edges[i] = trace.Letters(s.From) + "->" + trace.Letters(s.To)
		}
		fmt.Printf("round %d: %s\n", rec.Round, strings.Join(edges, " "))
	}
	fmt.Printf("\noutcome: %s\n", res.Outcome)
	fmt.Printf("the configuration at round %d recurs at round %d — the execution is periodic and never terminates\n\n",
		res.Certificate.Start, res.Certificate.Start+res.Certificate.Length)

	fmt.Println("## The same adversary across topologies")
	fmt.Println()
	for _, spec := range []string{
		"cycle:n=3", "cycle:n=5", "cycle:n=6", "cycle:n=7",
		"path:n=8", "bintree:levels=4", "complete:n=4",
	} {
		g := gen.MustBuild(spec, 1)
		sess, err := sim.New(g,
			sim.WithModel("adversary:collision"),
			sim.WithMaxRounds(4096),
		)
		if err != nil {
			return err
		}
		r, err := sess.Run(ctx)
		if err != nil {
			return err
		}
		detail := ""
		if r.Certificate != nil {
			detail = fmt.Sprintf(" (period %d)", r.Certificate.Length)
		}
		fmt.Printf("%-16s %s%s\n", g.Name()+":", r.Outcome, detail)
	}
	fmt.Println()
	fmt.Println("## Control: the synchronous (zero-delay) adversary on the triangle")
	ctrl, err := sim.New(tri, sim.WithModel("adversary:sync"), sim.WithOrigins(1))
	if err != nil {
		return err
	}
	cres, err := ctrl.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("outcome: %s after %d rounds — asynchrony, not the graph, causes non-termination\n",
		cres.Outcome, cres.Rounds)
	return nil
}
