// Asynchronous adversary demo (paper §4, Figure 5): in the asynchronous
// variant of amnesiac flooding, a scheduling adversary that delays one of
// two colliding messages keeps the triangle's flood alive forever. The
// simulator proves it by detecting a repeated global configuration — a
// finite certificate of an infinite execution.
//
//	go run ./examples/asyncadversary
package main

import (
	"fmt"
	"log"
	"strings"

	"amnesiacflood/internal/async"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("## Figure 5: the triangle under the delaying adversary")
	fmt.Println()
	tri := gen.Cycle(3)
	res, err := async.Run(tri, async.CollisionDelayer{}, async.Options{Trace: true}, 1)
	if err != nil {
		return err
	}
	for _, d := range res.Trace {
		edges := make([]string, len(d.Msgs))
		for i, m := range d.Msgs {
			edges[i] = trace.Letters(m.From) + "->" + trace.Letters(m.To)
		}
		fmt.Printf("round %d: %s\n", d.Round, strings.Join(edges, " "))
	}
	fmt.Printf("\noutcome: %s\n", res.Outcome)
	fmt.Printf("the configuration at round %d recurs at round %d — the execution is periodic and never terminates\n\n",
		res.CycleStart, res.CycleStart+res.CycleLength)

	fmt.Println("## The same adversary across topologies")
	fmt.Println()
	cases := []*graph.Graph{
		gen.Cycle(3), gen.Cycle(5), gen.Cycle(6), gen.Cycle(7),
		gen.Path(8), gen.CompleteBinaryTree(4), gen.Complete(4),
	}
	for _, g := range cases {
		r, err := async.Run(g, async.CollisionDelayer{}, async.Options{MaxRounds: 4096}, 0)
		if err != nil {
			return err
		}
		detail := ""
		if r.Outcome == async.CycleDetected {
			detail = fmt.Sprintf(" (period %d)", r.CycleLength)
		}
		fmt.Printf("%-16s %s%s\n", g.Name()+":", r.Outcome, detail)
	}
	fmt.Println()
	fmt.Println("## Control: the synchronous (zero-delay) adversary on the triangle")
	ctrl, err := async.Run(tri, async.SyncAdversary{}, async.Options{}, 1)
	if err != nil {
		return err
	}
	fmt.Printf("outcome: %s after %d rounds — asynchrony, not the graph, causes non-termination\n",
		ctrl.Outcome, ctrl.Rounds)
	return nil
}
