// Topology detection demo (paper §1.1): decide whether a network is
// bipartite by watching a single amnesiac flood — no global knowledge, no
// two-colouring pass. On a bipartite graph the flood dies after exactly
// e(source) rounds and nobody hears the message twice; any odd cycle makes
// some node hear it twice and the flood outlive e(source).
//
// The demo uses detect.Probe, which attaches a streaming observer to the
// flood through the sim façade and stops the run at the first odd-cycle
// witness — non-bipartite verdicts arrive without flooding to completion.
//
//	go run ./examples/bipartitedetect [-seed 7]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"amnesiacflood/internal/detect"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()
	if err := run(*seed); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	probes := []struct {
		label string
		g     *graph.Graph
	}{
		{"even cycle C10", gen.Cycle(10)},
		{"odd cycle C11", gen.Cycle(11)},
		{"4x5 grid", gen.Grid(4, 5)},
		{"Petersen graph", gen.Petersen()},
		{"random tree", gen.RandomTree(50, rng)},
		{"random graph A", gen.RandomConnected(60, 0.04, rng)},
		{"random graph B", gen.RandomConnected(60, 0.04, rng)},
		{"hypercube Q5", gen.Hypercube(5)},
	}
	fmt.Println("probing networks with a single amnesiac flood each (stopped at the first witness):")
	fmt.Println()
	ctx := context.Background()
	for _, p := range probes {
		source := graph.NodeID(rng.Intn(p.g.N()))
		verdict, err := detect.Probe(ctx, p.g, source, sim.Fast)
		if err != nil {
			return fmt.Errorf("%s: %w", p.label, err)
		}
		truth := algo.IsBipartite(p.g)
		status := "agrees with ground truth"
		if verdict.Bipartite != truth {
			status = "DISAGREES with ground truth"
		}
		saved := ""
		if !verdict.Bipartite {
			saved = fmt.Sprintf(" (stopped at round %d of a >%d-round flood)", verdict.Rounds, verdict.Eccentricity)
		}
		fmt.Printf("%-16s bipartite=%t%s\n", p.label+":", verdict.Bipartite, saved)
		fmt.Printf("%-16s two-colouring says bipartite=%t — flood verdict %s\n\n", "", truth, status)
	}
	return nil
}
