// Quickstart: run amnesiac flooding on the paper's three figure topologies
// through the sim façade — protocol selected by name from the registry,
// engine chosen per run, rounds streamed to an observer as they happen —
// and print the per-round traces and termination statistics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
	"amnesiacflood/internal/theory"
	"amnesiacflood/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	demos := []struct {
		title  string
		g      *graph.Graph
		source graph.NodeID
		kind   sim.EngineKind
	}{
		{"Figure 1 — line a-b-c-d from b (bipartite)", gen.Path(4), 1, sim.Sequential},
		{"Figure 2 — triangle from b (non-bipartite)", gen.Cycle(3), 1, sim.Channels},
		{"Figure 3 — even cycle C6 from a (bipartite)", gen.Cycle(6), 0, sim.Fast},
	}
	fmt.Printf("registered protocols: %v\n\n", sim.Protocols())
	for _, d := range demos {
		fmt.Printf("## %s (engine: %s)\n\n", d.title, d.kind)

		// Stream rounds through an observer while also recording the
		// trace for the analysis below — the same run serves both.
		recorder := &sim.TraceRecorder{}
		sess, err := sim.New(d.g,
			sim.WithProtocol("amnesiac"),
			sim.WithEngine(d.kind),
			sim.WithOrigins(d.source),
			sim.WithObserver(sim.MultiObserver{
				recorder,
				engine.ObserverFunc(func(rec engine.RoundRecord) (bool, error) {
					fmt.Printf("  [live] round %d: %d messages in flight\n", rec.Round, len(rec.Sends))
					return false, nil
				}),
			}),
		)
		if err != nil {
			return err
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			return err
		}
		fmt.Println()
		if err := trace.RenderRounds(os.Stdout, recorder.Trace, trace.Letters); err != nil {
			return err
		}

		res.Trace = recorder.Trace
		rep := core.Analyze(d.g, []graph.NodeID{d.source}, res)
		bound := theory.PredictTermination(d.g, d.source)
		fmt.Printf("\nterminated in %d rounds (paper's window: %d..%d), %d messages, max receives per node %d\n",
			rep.Rounds(), bound.Lower, bound.Upper, rep.TotalMessages(), rep.MaxReceives())
		fmt.Printf("graph: diameter %d, e(source) %d, bipartite %t; engine %s in %v\n\n",
			algo.Diameter(d.g), algo.Eccentricity(d.g, d.source), algo.IsBipartite(d.g),
			res.Engine, res.WallTime)
	}
	return nil
}
