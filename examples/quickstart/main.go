// Quickstart: run amnesiac flooding on the paper's three figure topologies
// and print the per-round traces and termination statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/theory"
	"amnesiacflood/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	demos := []struct {
		title  string
		g      *graph.Graph
		source graph.NodeID
	}{
		{"Figure 1 — line a-b-c-d from b (bipartite)", gen.Path(4), 1},
		{"Figure 2 — triangle from b (non-bipartite)", gen.Cycle(3), 1},
		{"Figure 3 — even cycle C6 from a (bipartite)", gen.Cycle(6), 0},
	}
	for _, d := range demos {
		fmt.Printf("## %s\n\n", d.title)
		rep, err := core.Run(d.g, core.Sequential, d.source)
		if err != nil {
			return err
		}
		if err := trace.RenderRounds(os.Stdout, rep.Result.Trace, trace.Letters); err != nil {
			return err
		}
		bound := theory.PredictTermination(d.g, d.source)
		fmt.Printf("\nterminated in %d rounds (paper's window: %d..%d), %d messages, max receives per node %d\n",
			rep.Rounds(), bound.Lower, bound.Upper, rep.TotalMessages(), rep.MaxReceives())
		fmt.Printf("graph: diameter %d, e(source) %d, bipartite %t\n\n",
			algo.Diameter(d.g), algo.Eccentricity(d.g, d.source), algo.IsBipartite(d.g))
	}
	return nil
}
