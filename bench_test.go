// Benchmarks regenerating the paper's evaluation artifacts, one benchmark
// per figure/theorem (DESIGN.md §3 maps IDs to experiments), plus substrate
// scaling benchmarks. Custom metrics report the quantities the paper talks
// about: rounds to termination and total messages.
//
//	go test -bench=. -benchmem
package amnesiacflood_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"amnesiacflood/internal/async"
	"amnesiacflood/internal/classic"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/detect"
	"amnesiacflood/internal/doublecover"
	"amnesiacflood/internal/dynamic"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/chanengine"
	"amnesiacflood/internal/engine/fastengine"
	"amnesiacflood/internal/experiments"
	"amnesiacflood/internal/faults"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/model"
	"amnesiacflood/internal/model/modeltest"
	"amnesiacflood/internal/multiflood"
	"amnesiacflood/internal/sim"
	"amnesiacflood/internal/termdetect"
	"amnesiacflood/internal/theory"
)

// benchEngines is the engine dimension of the substrate benchmarks: the
// sequential reference, the zero-allocation CSR engine, and its sharded
// parallel mode. The channel engine is benchmarked separately (E10 only);
// it exists to demonstrate concurrency, not to be fast.
var benchEngines = []sim.EngineKind{sim.Sequential, sim.Fast, sim.Parallel}

// benchReport runs a traced flood through the sim façade and analyses it,
// the per-iteration body of the engine-parameterised benchmarks. A session
// is built once per benchmark, so the fast engines amortise their arenas
// exactly as a serving deployment would.
func benchReport(b *testing.B, sess *sim.Session, g *graph.Graph, source graph.NodeID) *core.Report {
	b.Helper()
	res, err := sess.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return core.Analyze(g, []graph.NodeID{source}, res)
}

// newBenchSession builds the traced amnesiac session for one engine.
func newBenchSession(b *testing.B, g *graph.Graph, kind sim.EngineKind, source graph.NodeID) *sim.Session {
	b.Helper()
	sess, err := sim.New(g,
		sim.WithProtocol("amnesiac"),
		sim.WithEngine(kind),
		sim.WithOrigins(source),
		sim.WithTrace(true),
	)
	if err != nil {
		b.Fatal(err)
	}
	return sess
}

// benchFlood runs AF once per iteration on the given engine and reports
// rounds/messages metrics.
func benchFlood(b *testing.B, g *graph.Graph, kind sim.EngineKind, source graph.NodeID) {
	b.Helper()
	sess := newBenchSession(b, g, kind, source)
	var rep *core.Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = benchReport(b, sess, g, source)
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Rounds()), "rounds")
	b.ReportMetric(float64(rep.TotalMessages()), "messages")
}

// E1: Figure 1 — the 4-node line from b.
func BenchmarkFig1Line(b *testing.B) {
	benchFlood(b, gen.Path(4), sim.Sequential, 1)
}

// E2: Figure 2 — the triangle from b.
func BenchmarkFig2Triangle(b *testing.B) {
	benchFlood(b, gen.Cycle(3), sim.Sequential, 1)
}

// E3: Figure 3 — the even cycle C6.
func BenchmarkFig3EvenCycle(b *testing.B) {
	benchFlood(b, gen.Cycle(6), sim.Sequential, 0)
}

// E4: Lemma 2.1 / Corollary 2.2 — bipartite families at increasing sizes.
// rounds must equal e(source) <= D for every series point. Sub-benchmarks
// are named by the canonical graph spec, so BENCH_<date>.json rows are
// attributable to exact instances.
func BenchmarkBipartiteTermination(b *testing.B) {
	families := []func(n int) string{
		func(n int) string { return fmt.Sprintf("path:n=%d", n) },
		func(n int) string { return fmt.Sprintf("cycle:n=%d", 2*(n/2)) },
		func(n int) string { return fmt.Sprintf("grid:rows=%d,cols=32", n/32) },
		func(n int) string {
			d := 0
			for 1<<d < n {
				d++
			}
			return fmt.Sprintf("hypercube:d=%d", d)
		},
	}
	for _, fam := range families {
		for _, n := range []int{64, 512, 4096} {
			g := gen.MustBuild(fam(n), 1)
			ecc := algo.Eccentricity(g, 0)
			for _, kind := range benchEngines {
				b.Run(fmt.Sprintf("%s/%s", g.Name(), kind), func(b *testing.B) {
					sess := newBenchSession(b, g, kind, 0)
					var rep *core.Report
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						rep = benchReport(b, sess, g, 0)
					}
					b.StopTimer()
					if rep.Rounds() != ecc {
						b.Fatalf("rounds %d != e(source) %d (Lemma 2.1)", rep.Rounds(), ecc)
					}
					b.ReportMetric(float64(rep.Rounds()), "rounds")
					b.ReportMetric(float64(rep.TotalMessages()), "messages")
				})
			}
		}
	}
}

// E5: Theorems 3.1 + 3.3 — non-bipartite families; rounds must stay within
// 2D+1.
func BenchmarkNonBipartiteTermination(b *testing.B) {
	specs := []string{
		"cycle:n=65", "cycle:n=513", "cycle:n=4097",
		"complete:n=64", "wheel:n=257",
		"lollipop:k=5,path=128", "torus:rows=5,cols=13",
	}
	instances := make([]*graph.Graph, len(specs))
	for i, spec := range specs {
		instances[i] = gen.MustBuild(spec, 1)
	}
	for _, g := range instances {
		diam := algo.Diameter(g)
		for _, kind := range benchEngines {
			b.Run(g.Name()+"/"+kind.String(), func(b *testing.B) {
				sess := newBenchSession(b, g, kind, 0)
				var rep *core.Report
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep = benchReport(b, sess, g, 0)
				}
				b.StopTimer()
				if rep.Rounds() > 2*diam+1 {
					b.Fatalf("rounds %d > 2D+1 = %d (Theorem 3.3)", rep.Rounds(), 2*diam+1)
				}
				b.ReportMetric(float64(rep.Rounds()), "rounds")
				b.ReportMetric(float64(rep.TotalMessages()), "messages")
			})
		}
	}
}

// E6: Figure 4 / Lemma 3.2 — cost of reconstructing round-sets and checking
// the odd-gap invariant on a non-trivial run.
func BenchmarkRoundSetAnalysis(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := gen.RandomNonBipartite(512, 0.01, rng)
	rep, err := core.Run(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := theory.CheckOddGapInvariant(rep); err != nil {
			b.Fatal(err)
		}
	}
}

// E7: Figure 5 — asynchronous runs to their certificate (odd cycles under
// the delaying adversary) or to termination (control adversary), through
// the sim façade's model axis. Sessions are reused, so the model engine
// amortises its packed arenas exactly as a serving deployment would.
func BenchmarkAsyncAdversary(b *testing.B) {
	cases := []struct {
		name  string
		g     *graph.Graph
		model string
		want  engine.Outcome
	}{
		{"triangle/collision", gen.Cycle(3), "adversary:collision", engine.OutcomeCycle},
		{"C15/collision", gen.Cycle(15), "adversary:collision", engine.OutcomeCycle},
		{"C101/collision", gen.Cycle(101), "adversary:collision", engine.OutcomeCycle},
		{"triangle/sync", gen.Cycle(3), "adversary:sync", engine.OutcomeTerminated},
		{"tree/collision", gen.CompleteBinaryTree(7), "adversary:collision", engine.OutcomeTerminated},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			sess, err := sim.New(tc.g, sim.WithModel(tc.model))
			if err != nil {
				b.Fatal(err)
			}
			var res engine.Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = sess.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if res.Outcome != tc.want {
				b.Fatalf("outcome %v, want %v", res.Outcome, tc.want)
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
		})
	}
}

// BenchmarkModels measures the certificate path of the two model engines
// against the frozen string-key baseline they replaced: identical runs to
// the same certified cycle, with the configuration detector as the only
// difference that matters. allocs/op is the headline number — the packed
// detector does arithmetic on reused arenas where the baseline serialised
// every configuration to a sorted, joined string.
func BenchmarkModels(b *testing.B) {
	asyncCycle := gen.Cycle(101)
	b.Run("async/packed/C101", func(b *testing.B) {
		eng := model.NewAsync(asyncCycle, async.CollisionDelayer{})
		var res engine.Result
		var err error
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err = eng.Run(context.Background(), []graph.NodeID{0}, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if res.Outcome != engine.OutcomeCycle {
			b.Fatalf("outcome %v", res.Outcome)
		}
		b.ReportMetric(float64(res.Rounds), "rounds")
	})
	b.Run("async/stringkey/C101", func(b *testing.B) {
		var res modeltest.AsyncResult
		var err error
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err = modeltest.AsyncRun(asyncCycle, async.CollisionDelayer{}, 0, false, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if res.Outcome != engine.OutcomeCycle {
			b.Fatalf("outcome %v", res.Outcome)
		}
		b.ReportMetric(float64(res.Rounds), "rounds")
	})
	dynCycle := gen.Cycle(64)
	dynSched := dynamic.OutageOnce{Round: 1, Edge: graph.Edge{U: 0, V: 63}}
	b.Run("dynamic/packed/outageC64", func(b *testing.B) {
		eng := model.NewDynamic(dynCycle, dynSched)
		var res engine.Result
		var err error
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err = eng.Run(context.Background(), []graph.NodeID{0}, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if res.Outcome != engine.OutcomeCycle {
			b.Fatalf("outcome %v", res.Outcome)
		}
		b.ReportMetric(float64(res.Rounds), "rounds")
	})
	b.Run("dynamic/stringkey/outageC64", func(b *testing.B) {
		var res modeltest.DynamicResult
		var err error
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err = modeltest.DynamicRun(dynCycle, dynSched, 0, false, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if res.Outcome != engine.OutcomeCycle {
			b.Fatalf("outcome %v", res.Outcome)
		}
		b.ReportMetric(float64(res.Rounds), "rounds")
	})
}

// BenchmarkAnalyses measures the streaming analysis registry against the
// frozen post-hoc path it replaces: coverage and bipartiteness computed
// round by round inside the run (sim.WithAnalysis, reusable buffers, no
// trace) versus materialising the full trace and re-walking it through
// core.Analyze / detect.FromReport. allocs/op is the headline number — the
// post-hoc path pays one slice per round for the trace plus the re-walk,
// the streaming path reuses one session-owned buffer set.
func BenchmarkAnalyses(b *testing.B) {
	g := gen.MustBuild("randnonbipartite:n=1024,p=0.005", 2)
	stream := func(b *testing.B, analyses ...string) *sim.Session {
		b.Helper()
		sess, err := sim.New(g,
			sim.WithProtocol("amnesiac"),
			sim.WithEngine(sim.Fast),
			sim.WithOrigins(0),
			sim.WithAnalysis(analyses...),
		)
		if err != nil {
			b.Fatal(err)
		}
		return sess
	}
	b.Run("coverage/streaming", func(b *testing.B) {
		sess := stream(b, "coverage")
		var res engine.Result
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			res, err = sess.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if res.Metrics["coverage.covered"] != 1 {
			b.Fatal("uncovered")
		}
	})
	b.Run("coverage/posthoc", func(b *testing.B) {
		sess := newBenchSession(b, g, sim.Fast, 0)
		var rep *core.Report
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep = benchReport(b, sess, g, 0)
		}
		b.StopTimer()
		if !rep.Covered() {
			b.Fatal("uncovered")
		}
	})
	b.Run("bipartite/streaming", func(b *testing.B) {
		sess := stream(b, "bipartite")
		var res engine.Result
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			res, err = sess.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if res.Metrics["bipartite.bipartite"] != 0 {
			b.Fatal("non-bipartite instance judged bipartite")
		}
	})
	b.Run("bipartite/posthoc", func(b *testing.B) {
		sess := newBenchSession(b, g, sim.Fast, 0)
		var verdict detect.Verdict
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep := benchReport(b, sess, g, 0)
			var err error
			verdict, err = detect.FromReport(g, rep)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if verdict.Bipartite {
			b.Fatal("non-bipartite instance judged bipartite")
		}
	})
}

// E8: amnesiac vs classic flooding on the same instances — the message and
// round overhead of amnesia.
func BenchmarkClassicComparison(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	instances := []*graph.Graph{
		gen.Cycle(1025),
		gen.Grid(32, 32),
		gen.RandomNonBipartite(1024, 0.005, rng),
	}
	for _, g := range instances {
		b.Run("amnesiac/"+g.Name(), func(b *testing.B) {
			benchFlood(b, g, sim.Sequential, 0)
		})
		b.Run("amnesiacFast/"+g.Name(), func(b *testing.B) {
			benchFlood(b, g, sim.Fast, 0)
		})
		b.Run("classic/"+g.Name(), func(b *testing.B) {
			var res engine.Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				proto, err := classic.NewFlood(g, 0)
				if err != nil {
					b.Fatal(err)
				}
				res, err = engine.Run(context.Background(), g, proto, engine.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.TotalMessages), "messages")
		})
	}
}

// E9: bipartiteness detection by flooding vs BFS two-colouring ground truth.
func BenchmarkBipartitenessDetection(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := gen.RandomConnected(1024, 0.004, rng)
	b.Run("flood", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := detect.Bipartiteness(g, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("twoColor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			algo.TwoColor(g)
		}
	})
}

// E10: the two synchronous engines on the same workload — the cost of real
// goroutines and channels per round.
func BenchmarkEngines(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := gen.RandomNonBipartite(256, 0.02, rng)
	flood, err := core.NewFlood(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(context.Background(), g, flood, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("channels", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := chanengine.Run(context.Background(), g, flood, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fastengine.Run(context.Background(), g, flood, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fastReused", func(b *testing.B) {
		e := fastengine.New(g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(context.Background(), flood, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fastParallel", func(b *testing.B) {
		e := fastengine.New(g).Parallel(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(context.Background(), flood, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E11: double-cover prediction vs simulation — the analytical shortcut
// must beat the simulator it predicts.
func BenchmarkDoubleCoverPrediction(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := gen.RandomNonBipartite(1024, 0.004, rng)
	b.Run("predict", func(b *testing.B) {
		b.ReportAllocs()
		var pred doublecover.Prediction
		for i := 0; i < b.N; i++ {
			pred = doublecover.Predict(g, 0)
		}
		b.ReportMetric(float64(pred.Rounds), "rounds")
	})
	b.Run("simulate", func(b *testing.B) {
		benchFlood(b, g, sim.Sequential, 0)
	})
	b.Run("simulateFast", func(b *testing.B) {
		benchFlood(b, g, sim.Fast, 0)
	})
}

// E12: fault injection — certificate on the minimal loss case and a lossy
// sweep point.
func BenchmarkFaultInjection(b *testing.B) {
	b.Run("dropOnce/C64", func(b *testing.B) {
		g := gen.Cycle(64)
		inj := faults.AfterRound{Inner: faults.DropOnce{Round: 1, From: 0, To: 63}, Round: 1}
		var res faults.Result
		var err error
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err = faults.Run(g, inj, faults.Options{}, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		if res.Outcome != faults.CycleDetected {
			b.Fatalf("outcome %v", res.Outcome)
		}
	})
	b.Run("randomLoss/grid16", func(b *testing.B) {
		g := gen.Grid(16, 16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := faults.Run(g, faults.RandomLoss{P: 0.05, Seed: int64(i)},
				faults.Options{MaxRounds: 256}, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E13: multi-source runs at increasing origin counts.
func BenchmarkMultiSource(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := gen.RandomConnected(1024, 0.004, rng)
	for _, k := range []int{1, 4, 16, 64} {
		origins := make([]graph.NodeID, k)
		for i := range origins {
			origins[i] = graph.NodeID(rng.Intn(g.N()))
		}
		b.Run(fmt.Sprintf("origins=%d", k), func(b *testing.B) {
			var rep *core.Report
			var err error
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err = core.Run(g, origins...)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Rounds()), "rounds")
			b.ReportMetric(float64(rep.TotalMessages()), "messages")
		})
	}
}

// E14: dynamic schedules, one terminating and one certified-looping,
// through the sim façade's model axis with session reuse.
func BenchmarkDynamicNetworks(b *testing.B) {
	cases := []struct {
		name  string
		g     *graph.Graph
		model string
		want  engine.Outcome
	}{
		{"static/grid16", gen.Grid(16, 16), "schedule:static", engine.OutcomeTerminated},
		{"outage/C64", gen.Cycle(64), "schedule:outage:round=1,u=0,v=63", engine.OutcomeCycle},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			sess, err := sim.New(tc.g, sim.WithModel(tc.model))
			if err != nil {
				b.Fatal(err)
			}
			var res engine.Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = sess.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if res.Outcome != tc.want {
				b.Fatalf("outcome %v, want %v", res.Outcome, tc.want)
			}
		})
	}
}

// E15: one loss-curve point (20 runs at p = 0.1 on the grid).
func BenchmarkLossCurvePoint(b *testing.B) {
	g := gen.Grid(8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for run := 0; run < 20; run++ {
			if _, err := faults.Run(g, faults.RandomLoss{P: 0.1, Seed: int64(run)},
				faults.Options{MaxRounds: 256}, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E16: broadcast congestion — k simultaneous floods with load accounting.
func BenchmarkBroadcastLoad(b *testing.B) {
	g := gen.Grid(16, 16)
	origins := make([]graph.NodeID, 8)
	for i := range origins {
		origins[i] = graph.NodeID(i * 31)
	}
	var res multiflood.Result
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err = multiflood.Run(g, multiflood.AllFromOrigins(origins))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.MaxEdgeLoad), "peakEdgeLoad")
	b.ReportMetric(float64(res.TotalMessages), "messages")
}

// E17: classic flooding with Dijkstra-Scholten termination detection — the
// cost of knowing the flood is over.
func BenchmarkTerminationDetection(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := gen.RandomConnected(512, 0.008, rng)
	var res termdetect.Result
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err = termdetect.Run(g, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DetectionRound), "detectionRound")
	b.ReportMetric(float64(res.TotalMessages()), "messages")
}

// E18: wavefront profile extraction (trace post-processing cost).
func BenchmarkWavefrontProfile(b *testing.B) {
	g := gen.Cycle(4097)
	rep, err := core.Run(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, rec := range rep.Result.Trace {
			total += len(rec.Sends)
		}
		if total != rep.TotalMessages() {
			b.Fatal("profile sum mismatch")
		}
	}
}

// Substrate scaling: AF cost as the graph grows (series for the "shape" of
// round/message growth — linear in n on cycles, constant rounds on
// hypercubes).
func BenchmarkFloodScaling(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
		g := gen.MustBuild(fmt.Sprintf("cycle:n=%d", n), 1)
		for _, kind := range benchEngines {
			b.Run(fmt.Sprintf("%s/%s", g.Name(), kind), func(b *testing.B) {
				benchFlood(b, g, kind, 0)
			})
		}
	}
	for _, d := range []int{8, 11, 14} {
		g := gen.MustBuild(fmt.Sprintf("hypercube:d=%d", d), 1)
		for _, kind := range benchEngines {
			b.Run(fmt.Sprintf("%s/%s", g.Name(), kind), func(b *testing.B) {
				benchFlood(b, g, kind, 0)
			})
		}
	}
}

// Engine scaling sweep: the arena-reusing engines (CSR fast, its sharded
// mode, and the bitset frontier engine) across three shapes and three sizes
// up to a million nodes. The shapes stress different regimes: the path is
// pure per-round overhead (a two-node frontier for n-1 rounds), the grid a
// steadily growing wavefront, and the sparse gnp instance a few rounds of
// near-total frontier — the regime where the bitset engine's word-parallel
// OR/AND-NOT sweep replaces per-message work with per-64-edge work.
// Sessions are untraced, so ns/op is the round-kernel cost alone.
func BenchmarkEngineScale(b *testing.B) {
	scaleEngines := []sim.EngineKind{sim.Fast, sim.Parallel, sim.Bitset}
	specs := func(n, side int) []string {
		return []string{
			fmt.Sprintf("path:n=%d", n),
			fmt.Sprintf("grid:rows=%d,cols=%d", side, side),
			// Expected degree 64 — a dense frontier: nearly every node sends
			// on nearly every round, so message volume scales linearly with n
			// and the round kernel dominates.
			fmt.Sprintf("gnp:n=%d,p=%g", n, 64/float64(n)),
		}
	}
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		side := 1
		for side*side < n {
			side *= 2
		}
		for _, spec := range specs(n, side) {
			for _, kind := range scaleEngines {
				// Graphs are built inside the sub-benchmark so filtered runs
				// (-bench '.../n=1048576') never pay for the instances they
				// skip.
				b.Run(fmt.Sprintf("%s/%s", spec, kind), func(b *testing.B) {
					g := gen.MustBuild(spec, 1)
					sess, err := sim.New(g,
						sim.WithProtocol("amnesiac"),
						sim.WithEngine(kind),
						sim.WithOrigins(0),
					)
					if err != nil {
						b.Fatal(err)
					}
					// One untimed run amortises engine setup (relabeling,
					// arena growth), so ns/op is the steady-state round
					// kernel every engine settles into under session reuse.
					if _, err := sess.Run(context.Background()); err != nil {
						b.Fatal(err)
					}
					var res engine.Result
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err = sess.Run(context.Background())
						if err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(res.Rounds), "rounds")
					b.ReportMetric(float64(res.TotalMessages), "messages")
				})
			}
		}
	}
}

// Reference-engine round loop: the sequential engine's per-round grouping
// (re-sort of the normalised send set, no map, no per-batch slices) on
// workloads where grouping dominates. Dense rounds (clique) maximise sends
// per receiver; the grid maximises distinct receivers per round. Allocation
// counts are the regression signal: the former map-based grouping allocated
// per receiver per round.
func BenchmarkSequentialGrouping(b *testing.B) {
	for _, g := range []*graph.Graph{gen.Complete(256), gen.Grid(64, 64)} {
		flood := core.MustNewFlood(g, 0)
		b.Run(g.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(context.Background(), g, flood, engine.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Full experiment suite end-to-end (what cmd/afbench runs), as a single
// benchmark for regression tracking.
func BenchmarkExperimentSuite(b *testing.B) {
	cfg := experiments.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, exp := range experiments.All() {
			if _, err := exp.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}
