module amnesiacflood

go 1.24
