#!/bin/sh
# Convert `go test -bench` output on stdin into a JSON array, one object
# per benchmark line, keeping ns/op, B/op, allocs/op, and every custom
# metric (rounds, messages, ...). Used by `make bench` to archive
# BENCH_<date>.json files tracking the perf trajectory across PRs.
exec awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2
    line = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        line = line sprintf(", \"%s\": %s", unit, val)
    }
    if (!first) printf(",\n")
    first = 0
    printf("  {\"name\": \"%s\", \"iterations\": %s%s}", name, iters, line)
}
END { if (!first) printf("\n"); print "]" }
'
