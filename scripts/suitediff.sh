#!/bin/sh
# suitediff.sh A.jsonl B.jsonl — diff two suite JSONL outputs up to the
# execution bookkeeping a fault-injected run legitimately changes.
#
# A suite's rows are a deterministic function of their specs, so two runs of
# the same matrix must agree on everything except row order (worker
# scheduling), wall time, and attempt counts (retries under chaos
# injection). This script order-normalises both files — strip "attempts",
# zero "wallMicros", sort — and diffs the remainder. Exit status is diff's:
# 0 when the suites agree, 1 when they diverge. The chaos gate in `make
# suite` runs the same matrix clean and under injection and requires 0.
set -eu

if [ "$#" -ne 2 ]; then
    echo "usage: $0 clean.jsonl chaotic.jsonl" >&2
    exit 2
fi

normalize() {
    sed -e 's/"attempts":[0-9][0-9]*,//g' \
        -e 's/,"attempts":[0-9][0-9]*//g' \
        -e 's/"wallMicros":[0-9][0-9]*/"wallMicros":0/g' "$1" | sort
}

a=$(mktemp) && b=$(mktemp)
trap 'rm -f "$a" "$b"' EXIT
normalize "$1" > "$a"
normalize "$2" > "$b"
diff -u "$a" "$b"
