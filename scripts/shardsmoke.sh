#!/bin/sh
# End-to-end smoke test of distributed suite sharding (internal/shard,
# cmd/afshard): run a matrix single-process as the baseline, then distribute
# the same matrix — under chaos injection — through an afshard coordinator
# with two external workers, killing one with SIGKILL while it holds a lease
# so its group must be stolen, and assert the merged (gzip-compressed) output
# is byte-identical to the baseline after order-normalisation
# (scripts/suitediff.sh). Used by `make suite-shard` and the CI shard job.
# Requires only a POSIX shell and curl.
set -eu

PORT="${AFSHARD_PORT:-19090}"
BASE="http://127.0.0.1:$PORT"
DIR="$(mktemp -d)"
COORD_PID=""
DOOMED_PID=""
SURVIVOR_PID=""

cleanup() {
    kill "$COORD_PID" "$DOOMED_PID" "$SURVIVOR_PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/afbench" ./cmd/afbench
go build -o "$DIR/afshard" ./cmd/afshard

GRAPHS="grid:rows=4,cols=5;cycle:n=9;prefattach:n=24,m=2"
ENGINES="sequential,bitset"

echo "== single-process baseline"
"$DIR/afbench" -suite -graphs "$GRAPHS" -protocols amnesiac,classic \
    -engines "$ENGINES" \
    -seeds 1,2 -format jsonl -out "$DIR/baseline.jsonl" 2>/dev/null

echo "== coordinator with chaos injection and a 500ms lease TTL"
"$DIR/afshard" -mode coordinator -addr "127.0.0.1:$PORT" \
    -graphs "$GRAPHS" -protocols amnesiac,classic -seeds 1,2 \
    -engines "$ENGINES" \
    -chaos "chaos:rate=0.4,kinds=err|panic|stall,seed=7,stall=100ms" \
    -retries 8 -backoff 5ms -timeout 60s -lease 500ms \
    -checkpoint "$DIR/ckpt.jsonl" \
    -format jsonl -out "$DIR/shard.jsonl.gz" 2>"$DIR/coord.log" &
COORD_PID=$!

i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "coordinator did not come up; log:" >&2
        cat "$DIR/coord.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== two workers join; one is SIGKILLed holding a lease"
"$DIR/afshard" -mode worker -coordinator "$BASE" -name doomed 2>/dev/null &
DOOMED_PID=$!
"$DIR/afshard" -mode worker -coordinator "$BASE" -name survivor 2>/dev/null &
SURVIVOR_PID=$!

# Kill the doomed worker as soon as the coordinator grants it a lease, so the
# kill lands mid-suite with a group in flight (chaos stalls keep the group
# busy for hundreds of milliseconds).
i=0
until grep -q 'worker=doomed' "$DIR/coord.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
        echo "doomed worker never got a lease; log:" >&2
        cat "$DIR/coord.log" >&2
        exit 1
    fi
    sleep 0.05
done
echo "== coordinator metrics and healthz expose lease telemetry"
METRICS=$(curl -sf "$BASE/metrics")
echo "$METRICS" | grep -Eq '^afshard_leases_granted_total [1-9]' \
    || { echo "no non-zero afshard_leases_granted_total" >&2; exit 1; }
echo "$METRICS" | grep -q '^afshard_groups_pending' \
    || { echo "no afshard_groups_pending gauge" >&2; exit 1; }
curl -sf "$BASE/healthz" | grep -q '"version"' \
    || { echo "healthz misses version" >&2; exit 1; }

kill -KILL "$DOOMED_PID" 2>/dev/null || true
DOOMED_PID=""

echo "== waiting for the suite to merge"
if ! wait "$COORD_PID"; then
    echo "coordinator failed; log:" >&2
    cat "$DIR/coord.log" >&2
    exit 1
fi
COORD_PID=""

echo "== merged output is gzip and byte-identical to the baseline"
gunzip -c "$DIR/shard.jsonl.gz" > "$DIR/shard.jsonl"
./scripts/suitediff.sh "$DIR/baseline.jsonl" "$DIR/shard.jsonl"

if grep -q "expired; reassigning" "$DIR/coord.log"; then
    echo "   (killed worker's lease was stolen, as intended)"
else
    # The doomed worker can very occasionally deliver its group in the gap
    # between lease grant and SIGKILL; byte identity above is the hard gate.
    echo "   (note: no lease expired — the kill raced a completed upload)"
fi

echo "shard smoke: OK"
