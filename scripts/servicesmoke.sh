#!/bin/sh
# End-to-end smoke test of the afsimd daemon: build it, boot it on a free
# port, hit /healthz, /v1/registry, a streamed /v1/run, and a unary run,
# then SIGTERM it and assert it drains cleanly (exit 0, "drained cleanly"
# on stderr). Used by `make smoke-service` and the CI smoke job. Requires
# only a POSIX shell and curl.
set -eu

PORT="${AFSIMD_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/afsimd"
LOG="$(mktemp)"

cleanup() {
    kill "$PID" 2>/dev/null || true
    rm -f "$LOG"
    rm -rf "$(dirname "$BIN")"
}

go build -o "$BIN" ./cmd/afsimd

"$BIN" -addr "127.0.0.1:$PORT" 2>"$LOG" &
PID=$!
trap cleanup EXIT

# Wait for the daemon to come up.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "afsimd did not come up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== healthz reports status, uptime, and version"
HEALTH=$(curl -sf "$BASE/healthz")
echo "$HEALTH" | grep -q '"status":"ok"'
echo "$HEALTH" | grep -q '"uptimeSeconds"'
echo "$HEALTH" | grep -q '"version"'

echo "== registry enumerates all five axes"
REG=$(curl -sf "$BASE/v1/registry")
for key in protocols engines graphs models analyses; do
    echo "$REG" | grep -q "\"$key\"" || { echo "registry misses $key" >&2; exit 1; }
done
echo "$REG" | grep -q '"amnesiac"'

echo "== streamed run emits round events and a result"
STREAM=$(curl -sf -X POST "$BASE/v1/run" \
    -H 'Content-Type: application/json' \
    -d '{"graph":"grid:rows=8,cols=8","engine":"fast","analyses":["coverage","termination"]}')
echo "$STREAM" | grep -q '"event":"round"'
echo "$STREAM" | tail -n 1 | grep -q '"event":"result"'
echo "$STREAM" | tail -n 1 | grep -q '"outcome":"terminated"'

echo "== unary run answers one result document"
curl -sf -X POST "$BASE/v1/run" \
    -H 'Content-Type: application/json' \
    -d '{"graph":"cycle:n=65","stream":false,"analyses":["termination"]}' \
    | grep -q '"terminated":true'

echo "== sweep streams one row per cell and a done summary"
# 2 graphs x 2 protocols x 2 seeds = 8 cells.
SWEEP=$(curl -sf -X POST "$BASE/v1/sweep" \
    -H 'Content-Type: application/json' \
    -d '{"graphs":["cycle:n=9","grid:rows=3,cols=4"],"protocols":["amnesiac","classic"],"seeds":[1,2]}')
ROWS=$(echo "$SWEEP" | grep -c '"event":"row"')
[ "$ROWS" = "8" ] || { echo "sweep streamed $ROWS rows, want 8" >&2; exit 1; }
echo "$SWEEP" | tail -n 1 | grep -q '"event":"done"' \
    || { echo "sweep did not end with a done event" >&2; exit 1; }
echo "$SWEEP" | tail -n 1 | grep -q '"cells":8'
# "failed" is omitted from the summary when zero; its presence means failures.
if echo "$SWEEP" | tail -n 1 | grep -q '"failed"'; then
    echo "sweep reported failed cells: $(echo "$SWEEP" | tail -n 1)" >&2
    exit 1
fi

echo "== metrics exposes non-zero request, run, and sweep series"
METRICS=$(curl -sf "$BASE/metrics")
echo "$METRICS" | grep -Eq '^afsimd_requests_total\{[^}]*endpoint="POST /v1/run"[^}]*\} [1-9]' \
    || { echo "no non-zero afsimd_requests_total for POST /v1/run" >&2; exit 1; }
echo "$METRICS" | grep -Eq '^afsimd_run_seconds_count [1-9]' \
    || { echo "no non-zero afsimd_run_seconds_count" >&2; exit 1; }
echo "$METRICS" | grep -Eq '^afsimd_run_phase_seconds_count\{phase="run"\} [1-9]' \
    || { echo "no non-zero afsimd_run_phase_seconds_count" >&2; exit 1; }
echo "$METRICS" | grep -Eq '^scenario_rows_total\{[^}]*\} [1-9]' \
    || { echo "no non-zero scenario_rows_total from the sweep" >&2; exit 1; }

echo "== bad spec answers a structured 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/run" \
    -H 'Content-Type: application/json' -d '{"graph":"doughnut:n=8"}')
[ "$CODE" = "400" ] || { echo "bad spec answered $CODE, want 400" >&2; exit 1; }

echo "== SIGTERM drains cleanly"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "afsimd did not exit after SIGTERM; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$PID" 2>/dev/null || EXIT=$?
grep -q "drained cleanly" "$LOG" || { echo "no clean-drain marker; log:" >&2; cat "$LOG" >&2; exit 1; }

echo "service smoke: OK"
