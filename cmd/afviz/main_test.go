package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFormats(t *testing.T) {
	for _, format := range []string{"rounds", "timeline", "csv", "json"} {
		if err := run([]string{"-topo", "cycle", "-n", "6", "-source", "0", "-format", format}); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
}

// TestRunGraphSpec drives the -graph/-seed/-list parity flags.
func TestRunGraphSpec(t *testing.T) {
	cases := [][]string{
		{"-graph", "grid:rows=3,cols=4", "-source", "5"},
		{"-graph", "petersen", "-source", "3", "-format", "timeline"},
		{"-graph", "gnp:n=20,p=0.2,connect=true", "-seed", "7"},
		{"-list"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunGraphSpecErrors(t *testing.T) {
	cases := [][]string{
		{"-graph", "nosuchfamily"},
		{"-graph", "grid:depth=4"},
		{"-graph", "cycle:n=8", "-topo", "cycle"}, // -graph + -topo conflict
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestListOutput(t *testing.T) {
	var buf strings.Builder
	if err := printRegistries(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"graph families", "grid", "rows int (default 8)", "engines", "formats", "svg"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunSVGFrames(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-topo", "cycle", "-n", "3", "-source", "1", "-format", "svg", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	frames, err := filepath.Glob(filepath.Join(dir, "round*.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("wrote %d frames, want 3 (Figure 2 has 3 rounds)", len(frames))
	}
}

func TestRunDOTFrames(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-topo", "path", "-n", "4", "-source", "1", "-format", "dot", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	frames, err := filepath.Glob(filepath.Join(dir, "round*.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("wrote %d frames, want 2 (Figure 1 has 2 rounds)", len(frames))
	}
	data, err := os.ReadFile(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty DOT frame")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-topo", "path", "-n", "4", "-format", "nosuch"},
		{"-topo", "path", "-n", "4", "-source", "9"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
