package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFormats(t *testing.T) {
	for _, format := range []string{"rounds", "timeline", "csv", "json"} {
		if err := run([]string{"-topo", "cycle", "-n", "6", "-source", "0", "-format", format}); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
}

func TestRunSVGFrames(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-topo", "cycle", "-n", "3", "-source", "1", "-format", "svg", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	frames, err := filepath.Glob(filepath.Join(dir, "round*.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("wrote %d frames, want 3 (Figure 2 has 3 rounds)", len(frames))
	}
}

func TestRunDOTFrames(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-topo", "path", "-n", "4", "-source", "1", "-format", "dot", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	frames, err := filepath.Glob(filepath.Join(dir, "round*.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("wrote %d frames, want 2 (Figure 1 has 2 rounds)", len(frames))
	}
	data, err := os.ReadFile(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty DOT frame")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-topo", "path", "-n", "4", "-format", "nosuch"},
		{"-topo", "path", "-n", "4", "-source", "9"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
