// Command afviz renders amnesiac-flooding executions: per-round ASCII
// diagrams in the style of the paper's figures, a per-node timeline grid,
// CSV/JSON trace export, and per-round Graphviz DOT files with the sending
// nodes highlighted (the "circled" nodes of Figures 1-3).
//
// Topologies come from the graph-spec registry (-graph family:key=value,...
// — see internal/graph/gen and afviz -list) or from a legacy alias (-topo
// with the -n size knob), matching afsim.
//
// Examples:
//
//	afviz -list
//	afviz -topo cycle -n 6 -source 0
//	afviz -graph grid:rows=4,cols=5 -source 7 -format timeline
//	afviz -graph gnp:n=24,p=0.2,connect=true -seed 7 -format rounds
//	afviz -topo cycle -n 3 -source 1 -format csv
//	afviz -topo path -n 4 -source 1 -format dot -out ./frames
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"amnesiacflood/internal/cli"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
	"amnesiacflood/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("afviz", flag.ContinueOnError)
	graphSpec := fs.String("graph", "", "graph spec family:key=value,... (families: "+strings.Join(gen.Families(), ", ")+"; see -list)")
	topo := fs.String("topo", "", "legacy topology alias sized by -n: "+strings.Join(cli.TopologyNames(), ", "))
	n := fs.Int("n", 8, "topology size parameter for -topo aliases")
	file := fs.String("file", "", "edge-list file (alternative to -graph/-topo)")
	list := fs.Bool("list", false, "list registered graph families and output formats, then exit")
	sourceFlag := fs.Int("source", 0, "origin node")
	seed := fs.Int64("seed", 1, "seed for random graph families")
	format := fs.String("format", "rounds", "output: rounds, timeline, csv, json, dot, or svg")
	out := fs.String("out", ".", "output directory for -format dot/svg frames")
	engineName := fs.String("engine", sim.Sequential.String(), "engine: "+strings.Join(sim.EngineNames(), ", "))
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return printRegistries(os.Stdout)
	}

	g, err := cli.LoadGraphSpec(*graphSpec, *topo, *n, *file, *seed)
	if err != nil {
		return err
	}
	source := graph.NodeID(*sourceFlag)
	if !g.HasNode(source) {
		return fmt.Errorf("source %d is not a node of %s", source, g)
	}
	kind, err := sim.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	sess, err := sim.New(g,
		sim.WithProtocol("amnesiac"),
		sim.WithEngine(kind),
		sim.WithOrigins(source),
		sim.WithTrace(true),
	)
	if err != nil {
		return err
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		return err
	}
	rep := core.Analyze(g, []graph.NodeID{source}, res)
	label := trace.Numbers
	if g.N() <= 26 {
		label = trace.Letters
	}

	switch *format {
	case "rounds":
		fmt.Printf("amnesiac flooding on %s from %s: %d rounds, %d messages\n",
			g, label(source), rep.Rounds(), rep.TotalMessages())
		return trace.RenderRounds(os.Stdout, rep.Result.Trace, label)
	case "timeline":
		return trace.Timeline(os.Stdout, g, rep, label)
	case "csv":
		return trace.WriteCSV(os.Stdout, rep.Result.Trace)
	case "json":
		return trace.WriteJSON(os.Stdout, rep.Result.Trace)
	case "dot":
		return writeDOTFrames(*out, g, rep)
	case "svg":
		return writeSVGFrames(*out, g, rep, label)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// printRegistries renders the registries afviz can address: graph families
// with their typed parameters, engines, and output formats.
func printRegistries(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "graph families (-graph family:key=value,...):"); err != nil {
		return err
	}
	for _, name := range gen.Families() {
		fam, _ := gen.Lookup(name)
		params := make([]string, len(fam.Params))
		for i, p := range fam.Params {
			params[i] = fmt.Sprintf("%s %s (default %s)", p.Name, p.Kind, p.Default)
		}
		line := "  " + name
		if len(params) > 0 {
			line += ": " + strings.Join(params, ", ")
		}
		if fam.Doc != "" {
			line += " — " + fam.Doc
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "engines (-engine): %s\nformats (-format): rounds, timeline, csv, json, dot, svg\n",
		strings.Join(sim.EngineNames(), ", "))
	return err
}

// writeSVGFrames emits one SVG per round in the paper's figure style:
// circular layout, message arrows, senders double-circled.
func writeSVGFrames(dir string, g *graph.Graph, rep *core.Report, label trace.Labeler) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rec := range rep.Result.Trace {
		path := filepath.Join(dir, fmt.Sprintf("round%03d.svg", rec.Round))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := trace.WriteSVG(f, g, rec, trace.SVGOptions{Label: label}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (senders: %v)\n", path, rec.Senders())
	}
	return nil
}

// writeDOTFrames emits one DOT file per round with that round's senders
// highlighted, reproducing the circled nodes of the paper's figures.
func writeDOTFrames(dir string, g *graph.Graph, rep *core.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rec := range rep.Result.Trace {
		highlight := map[graph.NodeID]bool{}
		for _, s := range rec.Senders() {
			highlight[s] = true
		}
		path := filepath.Join(dir, fmt.Sprintf("round%03d.dot", rec.Round))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := graph.WriteDOT(f, g, highlight); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (senders: %v)\n", path, rec.Senders())
	}
	return nil
}
