// Command afshard distributes a scenario suite across machines (see
// internal/shard). It runs in two modes:
//
// Coordinator mode partitions a scenario matrix into spec groups, serves
// the lease protocol over HTTP, merges uploaded rows into the ordinary
// sink stack (JSONL — gzip-compressed when -out ends in .gz — CSV, or an
// aggregate table), optionally journals them through a resumable
// checkpoint, and exits when the suite is merged:
//
//	afshard -mode coordinator -addr :9090 \
//	        -graphs "grid:rows=8,cols=8;cycle:n=65" -protocols amnesiac,classic \
//	        -engines sequential,parallel -seeds 1,2 \
//	        -format jsonl -out suite.jsonl.gz \
//	        -retries 6 -timeout 60s -chaos "chaos:rate=0.15,kinds=err|panic|stall,seed=7,stall=100ms" \
//	        -checkpoint sweep.jsonl [-resume] [-local-workers 2]
//
// Worker mode joins a coordinator, leasing groups and executing them with
// the resilient scenario runner until the coordinator reports the suite
// done:
//
//	afshard -mode worker -coordinator http://10.0.0.5:9090 -name w1 -pool 8
//
// Any number of workers may join or die at any time; a killed worker's
// lease expires and its group is reassigned. The merged output is
// order-normalised byte-identical to a single-process `afbench -suite` run
// of the same matrix (scripts/suitediff.sh asserts it in `make
// suite-shard`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"amnesiacflood/internal/analysis"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/obs"
	"amnesiacflood/internal/scenario"
	"amnesiacflood/internal/shard"

	// Self-registering protocols and model families: the coordinator
	// validates matrix axes against the registries, and workers execute
	// them by name.
	_ "amnesiacflood/internal/async"
	_ "amnesiacflood/internal/classic"
	_ "amnesiacflood/internal/core"
	_ "amnesiacflood/internal/detect"
	_ "amnesiacflood/internal/dynamic"
	_ "amnesiacflood/internal/faults"
	_ "amnesiacflood/internal/multiflood"
	_ "amnesiacflood/internal/spantree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afshard:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("afshard", flag.ContinueOnError)
	mode := fs.String("mode", "", "coordinator or worker (mandatory)")

	// Coordinator: matrix axes (afbench -suite spellings), listen address,
	// lease policy, sink stack, resilience policy pushed to workers.
	addr := fs.String("addr", ":9090", "coordinator listen address")
	graphs := fs.String("graphs", "", "semicolon-separated graph specs (coordinator)")
	protocols := fs.String("protocols", "amnesiac", "comma-separated protocol names (coordinator)")
	engines := fs.String("engines", "sequential", "comma-separated engine names (coordinator)")
	models := fs.String("models", "", "semicolon-separated execution-model specs (coordinator; default sync)")
	analysesFlag := fs.String("analyses", "", "semicolon-separated streaming-analysis specs attached to every cell (coordinator)")
	origins := fs.String("origins", "0", "semicolon-separated origin sets, nodes comma-separated (coordinator)")
	seeds := fs.String("seeds", "1", "comma-separated seeds (coordinator)")
	reps := fs.Int("reps", 1, "repetitions per matrix cell (coordinator)")
	maxRounds := fs.Int("maxrounds", 0, "round limit per run (coordinator)")
	format := fs.String("format", "jsonl", "output format: jsonl, csv, or table (coordinator)")
	out := fs.String("out", "", "output file; a .gz suffix gzip-compresses JSONL (coordinator; default stdout)")
	lease := fs.Duration("lease", shard.DefaultLeaseTTL, "lease TTL before an unrenewed group is reassigned (coordinator)")
	retries := fs.Int("retries", 0, "per-run retries for transient failures, applied by every worker (coordinator)")
	timeout := fs.Duration("timeout", 0, "per-run watchdog, applied by every worker (coordinator)")
	backoff := fs.Duration("backoff", 0, "base retry backoff, applied by every worker (coordinator)")
	chaosSpec := fs.String("chaos", "", "fault-injection spec, armed on every worker (coordinator)")
	checkpoint := fs.String("checkpoint", "", "JSONL checkpoint journaling merged rows for resumption (coordinator)")
	resume := fs.Bool("resume", false, "resume from -checkpoint, skipping its journaled specs (coordinator)")
	localWorkers := fs.Int("local-workers", 0, "in-process shard workers to start alongside the coordinator")

	// Worker: coordinator URL and local execution width.
	coordinator := fs.String("coordinator", "", "coordinator base URL, e.g. http://host:9090 (worker)")
	name := fs.String("name", "", "worker name for lease attribution (worker; default host-derived)")
	pool := fs.Int("pool", 0, "local runner pool width per leased group (worker; 0 = GOMAXPROCS capped at 8)")

	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, or error")

	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := newLogger(*logLevel)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	switch *mode {
	case "coordinator":
		return runCoordinator(ctx, logger, coordinatorOpts{
			addr: *addr, graphs: *graphs, protocols: *protocols, engines: *engines,
			models: *models, analyses: *analysesFlag, origins: *origins, seeds: *seeds,
			reps: *reps, maxRounds: *maxRounds, format: *format, out: *out,
			lease: *lease, retries: *retries, timeout: *timeout, backoff: *backoff,
			chaos: *chaosSpec, checkpoint: *checkpoint, resume: *resume,
			localWorkers: *localWorkers,
		})
	case "worker":
		if *coordinator == "" {
			return fmt.Errorf("-mode worker needs -coordinator (the coordinator's base URL)")
		}
		workerName := *name
		if workerName == "" {
			host, _ := os.Hostname()
			workerName = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		w, err := shard.NewWorker(shard.WorkerConfig{
			Coordinator: *coordinator,
			Name:        workerName,
			Pool:        *pool,
			Logger:      logger,
		})
		if err != nil {
			return err
		}
		if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		fmt.Fprintln(os.Stderr, "afshard: worker done")
		return nil
	default:
		return fmt.Errorf("unknown -mode %q (want coordinator or worker)", *mode)
	}
}

// coordinatorOpts carries coordinator-mode flag values.
type coordinatorOpts struct {
	addr                                         string
	graphs, protocols, engines, models, analyses string
	origins, seeds                               string
	reps, maxRounds                              int
	format, out                                  string
	lease, timeout, backoff                      time.Duration
	retries                                      int
	chaos, checkpoint                            string
	resume                                       bool
	localWorkers                                 int
}

// runCoordinator expands the matrix, serves the lease protocol, and merges
// the suite.
func runCoordinator(ctx context.Context, logger *slog.Logger, o coordinatorOpts) error {
	matrix := scenario.Matrix{
		Graphs:    splitList(o.graphs, ";"),
		Protocols: splitList(o.protocols, ","),
		Engines:   splitList(o.engines, ","),
		Models:    splitList(o.models, ";"),
		Analyses:  splitList(o.analyses, ";"),
		Reps:      o.reps,
		MaxRounds: o.maxRounds,
	}
	if len(matrix.Graphs) == 0 {
		return fmt.Errorf("-mode coordinator needs -graphs (semicolon-separated specs)")
	}
	for _, set := range splitList(o.origins, ";") {
		var ids []graph.NodeID
		for _, part := range splitList(set, ",") {
			id, err := strconv.Atoi(part)
			if err != nil {
				return fmt.Errorf("parse -origins entry %q: %w", part, err)
			}
			ids = append(ids, graph.NodeID(id))
		}
		if len(ids) > 0 {
			matrix.OriginSets = append(matrix.OriginSets, ids)
		}
	}
	for _, s := range splitList(o.seeds, ",") {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("parse -seeds entry %q: %w", s, err)
		}
		matrix.Seeds = append(matrix.Seeds, v)
	}
	specs, err := matrix.Expand()
	if err != nil {
		return err
	}
	if o.resume && o.checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint (the journal to resume from)")
	}

	// Sink stack, shared with afbench's suite mode.
	switch o.format {
	case "jsonl", "csv", "table":
	default:
		return fmt.Errorf("unknown -format %q (want jsonl, csv, or table)", o.format)
	}
	var sink scenario.Sink
	var flush func() error
	var agg *scenario.Aggregate
	var w *os.File
	switch o.format {
	case "jsonl":
		if o.out != "" {
			fileSink, closer, err := scenario.NewJSONLFileSink(o.out)
			if err != nil {
				return err
			}
			defer closer.Close()
			flush = closer.Close
			sink = fileSink
		} else {
			sink = scenario.NewJSONLSink(os.Stdout)
		}
	case "csv", "table":
		w = os.Stdout
		if o.out != "" {
			f, err := os.Create(o.out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if o.format == "csv" {
			metricCols, err := analysis.MetricColumns(matrix.Analyses)
			if err != nil {
				return err
			}
			csvSink := scenario.NewCSVSink(w, metricCols...)
			flush = csvSink.Flush
			defer csvSink.Flush()
			sink = csvSink
		} else {
			agg = scenario.NewAggregate()
			sink = agg
		}
	}

	var manifest *scenario.Manifest
	if o.checkpoint != "" {
		if !o.resume {
			if err := os.Remove(o.checkpoint); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		manifest, err = scenario.OpenManifest(o.checkpoint)
		if err != nil {
			return err
		}
		defer manifest.Close()
	}

	// One registry serves the whole process: the coordinator's afshard_*
	// families plus the scenario_*/afshard_worker_* families of any local
	// workers, all visible on GET /metrics.
	reg := obs.NewRegistry()
	coord, err := shard.NewCoordinator(specs, shard.CoordinatorConfig{
		LeaseTTL: o.lease,
		Run: shard.RunConfig{
			TimeoutMs: o.timeout.Milliseconds(),
			Retries:   o.retries,
			BackoffMs: o.backoff.Milliseconds(),
			Chaos:     o.chaos,
		},
		Manifest: manifest,
		Sink:     sink,
		Logger:   logger,
		Metrics:  reg,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: coord.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		logger.Info("coordinating", "specs", len(specs), "addr", ln.Addr().String())
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
		}
	}()

	// Local workers dial loopback: a listener bound to an unspecified
	// address (the ":9090" default) is reachable at 127.0.0.1 on the same
	// port. They get their own cancel so the coordinator can stop them once
	// the suite is merged — otherwise they would keep polling a server that
	// is shutting down.
	workerCtx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	for i := 0; i < o.localWorkers; i++ {
		worker, err := shard.NewWorker(shard.WorkerConfig{
			Coordinator: loopbackURL(ln.Addr()),
			Name:        fmt.Sprintf("local-%d", i),
			Logger:      logger,
			Metrics:     reg,
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := worker.Run(workerCtx); err != nil && !errors.Is(err, context.Canceled) {
				logger.Error("local worker failed", "err", err)
			}
		}()
	}

	results, waitErr := coord.Wait(ctx)
	stopWorkers()
	wg.Wait()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)
	if waitErr != nil {
		return waitErr
	}
	// Explicit flush so its error is checked; the deferred safety-net
	// close on the error paths is best-effort (its second-close error is
	// ignored).
	if flush != nil {
		if err := flush(); err != nil {
			return err
		}
	}
	if o.format == "table" {
		out := os.Stdout
		if w != nil {
			out = w
		}
		if err := agg.Fprint(out); err != nil {
			return err
		}
	}
	failed := 0
	for i := range results {
		if results[i].Err != "" {
			failed++
		}
	}
	st := coord.Status()
	fmt.Fprintf(os.Stderr, "afshard: suite merged: %d rows (%d replayed, %d steals), %d failed\n",
		len(results), st.Replayed, st.Steals, failed)
	if failed > 0 {
		return fmt.Errorf("%d of %d suite runs failed", failed, len(results))
	}
	return nil
}

// newLogger builds the daemon's structured stderr logger at the named level
// (debug/info/warn/error).
func newLogger(level string) (*slog.Logger, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: l})), nil
}

// loopbackURL is the base URL local workers dial for a listener that may be
// bound to an unspecified address.
func loopbackURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// splitList splits on sep, trimming whitespace and dropping empties.
func splitList(s, sep string) []string {
	var out []string
	for _, part := range strings.Split(s, sep) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
