// Command afbench runs evaluation suites. Its default mode reproduces
// every figure and theorem of the paper, printing one table per artifact
// (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
// recorded results). With -suite it instead drives a declarative scenario
// matrix — graph specs × protocols × engines × seeds — over a bounded
// worker pool, streaming per-run results to a JSONL/CSV/table sink.
//
// Usage:
//
//	afbench [-seed N] [-scale N] [-only E4,E7] [-engine fast]
//	afbench -suite -graphs "grid:rows=8,cols=8;cycle:n=65" \
//	        -protocols amnesiac,classic -engines sequential,parallel \
//	        -seeds 1,2 -reps 3 -workers 8 -format jsonl
//	afbench -suite -graphs "cycle:n=9;grid:rows=4,cols=5" \
//	        -models "sync;adversary:collision;schedule:alternating" \
//	        -adversaries uniform -schedules static -maxrounds 4096
//	afbench -suite -graphs "cycle:n=65;grid:rows=8,cols=8" \
//	        -analyses "coverage;termination;bipartite" -format csv
//	afbench -suite -graphs "grid:rows=8,cols=8" -retries 6 -timeout 30s \
//	        -chaos "chaos:rate=0.15,kinds=err|panic|stall,seed=7,stall=100ms" \
//	        -checkpoint sweep.jsonl [-resume]
//
// Suite mode is resilient: -timeout arms a per-run watchdog, -retries
// re-runs transient failures with backoff, panics in protocol or engine
// code degrade to error rows, -checkpoint journals completed rows so a
// killed sweep resumes with -resume, and -chaos injects deterministic
// faults to exercise all of the above (see internal/scenario's README).
package main

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"amnesiacflood/internal/analysis"
	"amnesiacflood/internal/chaos"
	"amnesiacflood/internal/experiments"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/obs"
	"amnesiacflood/internal/scenario"
	"amnesiacflood/internal/shard"
	"amnesiacflood/internal/sim"

	// Self-registering protocols and model families for the scenario
	// matrix (the experiment suite pulls these in transitively; the
	// matrix addresses them by name and needs the registrations
	// regardless).
	_ "amnesiacflood/internal/async"
	_ "amnesiacflood/internal/classic"
	_ "amnesiacflood/internal/core"
	_ "amnesiacflood/internal/detect"
	_ "amnesiacflood/internal/dynamic"
	_ "amnesiacflood/internal/faults"
	_ "amnesiacflood/internal/multiflood"
	_ "amnesiacflood/internal/spantree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("afbench", flag.ContinueOnError)
	cfg := experiments.DefaultConfig()
	seed := fs.Int64("seed", cfg.Seed, "seed for all random instances (experiment mode)")
	scale := fs.Int("scale", cfg.Scale, "instance size multiplier (experiment mode)")
	only := fs.String("only", "", "comma-separated experiment IDs to run (default all; experiment mode)")
	engineName := fs.String("engine", sim.Sequential.String(), "engine for the single-run experiments: "+strings.Join(sim.EngineNames(), ", "))
	asJSON := fs.Bool("json", false, "emit the experiment tables as a JSON array instead of text")

	suite := fs.Bool("suite", false, "run a scenario matrix instead of the experiment suite")
	graphs := fs.String("graphs", "", "semicolon-separated graph specs, e.g. \"grid:rows=8,cols=8;cycle:n=65\" (suite mode)")
	protocols := fs.String("protocols", "amnesiac", "comma-separated protocol names (suite mode)")
	engines := fs.String("engines", sim.Sequential.String(), "comma-separated engine names (suite mode)")
	models := fs.String("models", "", "semicolon-separated execution-model specs, e.g. \"sync;adversary:collision;schedule:blink:period=2\" (suite mode; default sync)")
	adversaries := fs.String("adversaries", "", "comma-separated adversary family names, shorthand appended to -models as adversary:<name> (suite mode)")
	schedules := fs.String("schedules", "", "comma-separated schedule family names, shorthand appended to -models as schedule:<name> (suite mode)")
	analyses := fs.String("analyses", "", "semicolon-separated streaming-analysis specs attached to every cell, e.g. \"coverage;termination;quantiles:metric=messages\" (suite mode)")
	origins := fs.String("origins", "0", "semicolon-separated origin sets, nodes comma-separated, e.g. \"0;0,3\" (suite mode)")
	seeds := fs.String("seeds", "1", "comma-separated seeds (suite mode)")
	reps := fs.Int("reps", 1, "repetitions per matrix cell (suite mode)")
	workers := fs.Int("workers", 0, "suite worker pool size (0 = GOMAXPROCS capped at 8)")
	maxRounds := fs.Int("maxrounds", 0, "round limit per run (0 = engine default; suite mode)")
	format := fs.String("format", "table", "suite output format: jsonl, csv, or table")
	out := fs.String("out", "", "suite output file (default stdout)")
	retries := fs.Int("retries", 0, "retries per run for transient failures — timeouts, injected faults, panics (suite mode)")
	timeout := fs.Duration("timeout", 0, "per-run watchdog; a run exceeding it becomes an outcome=timeout row (0 = none; suite mode)")
	backoff := fs.Duration("backoff", 0, "base retry backoff, doubled per attempt with seeded jitter (0 = 10ms; suite mode)")
	chaosSpec := fs.String("chaos", "", "fault-injection spec, e.g. \"chaos:rate=0.15,kinds=err|panic|stall,seed=7,stall=100ms\" (suite mode)")
	checkpoint := fs.String("checkpoint", "", "JSONL checkpoint journaling completed rows for resumption (suite mode)")
	resume := fs.Bool("resume", false, "resume from -checkpoint, skipping its completed specs (suite mode)")
	shardWorkers := fs.Int("shard-workers", 0, "execute the suite through an in-process shard coordinator with this many shard workers (suite mode; see internal/shard)")
	shardCoordinator := fs.String("shard-coordinator", "", "listen address for the shard coordinator, so external `afshard -mode worker` processes can join (suite mode; implies sharded execution)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite {
		// Reject experiment-mode flags so a typo (-engine for -engines,
		// -seed for -seeds) cannot silently run the wrong matrix.
		conflicts := map[string]string{"engine": "-engines", "seed": "-seeds", "scale": "", "only": "", "json": "-format"}
		var bad []string
		fs.Visit(func(f *flag.Flag) {
			if repl, ok := conflicts[f.Name]; ok {
				msg := "-" + f.Name
				if repl != "" {
					msg += " (use " + repl + ")"
				}
				bad = append(bad, msg)
			}
		})
		if len(bad) > 0 {
			return fmt.Errorf("experiment-mode flags are not valid with -suite: %s", strings.Join(bad, ", "))
		}
		return runSuite(suiteOpts{
			graphs:           *graphs,
			protocols:        *protocols,
			engines:          *engines,
			models:           modelAxis(*models, *adversaries, *schedules),
			analyses:         *analyses,
			origins:          *origins,
			seeds:            *seeds,
			reps:             *reps,
			workers:          *workers,
			maxRounds:        *maxRounds,
			format:           *format,
			out:              *out,
			retries:          *retries,
			timeout:          *timeout,
			backoff:          *backoff,
			chaos:            *chaosSpec,
			checkpoint:       *checkpoint,
			resume:           *resume,
			shardWorkers:     *shardWorkers,
			shardCoordinator: *shardCoordinator,
		})
	}

	cfg.Seed = *seed
	cfg.Scale = *scale
	kind, err := sim.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	cfg.Engine = kind

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	var collected []*experiments.Table
	for _, exp := range experiments.All() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		tables, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s (%s): %w", exp.ID, exp.Name, err)
		}
		for _, t := range tables {
			if *asJSON {
				collected = append(collected, t)
				continue
			}
			if err := t.Fprint(os.Stdout); err != nil {
				return err
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(collected)
	}
	return nil
}

// modelAxis merges the -models specs with the -adversaries/-schedules
// family-name shorthands into one axis value list.
func modelAxis(models, adversaries, schedules string) []string {
	axis := splitList(models, ";")
	for _, name := range splitList(adversaries, ",") {
		axis = append(axis, "adversary:"+name)
	}
	for _, name := range splitList(schedules, ",") {
		axis = append(axis, "schedule:"+name)
	}
	return axis
}

// suiteOpts carries the suite-mode flag values into runSuite.
type suiteOpts struct {
	graphs     string
	protocols  string
	engines    string
	models     []string
	analyses   string
	origins    string
	seeds      string
	reps       int
	workers    int
	maxRounds  int
	format     string
	out        string
	retries    int
	timeout    time.Duration
	backoff    time.Duration
	chaos      string
	checkpoint string
	resume     bool
	// shardWorkers > 0 or a non-empty shardCoordinator address routes the
	// suite through an internal/shard coordinator instead of the local
	// runner (see runShardedSuite).
	shardWorkers     int
	shardCoordinator string
}

// sharded reports whether the suite should fan out through internal/shard.
func (o suiteOpts) sharded() bool { return o.shardWorkers > 0 || o.shardCoordinator != "" }

// runSuite expands and executes the scenario matrix described by the suite
// flags.
func runSuite(o suiteOpts) error {
	matrix := scenario.Matrix{
		Graphs:    splitList(o.graphs, ";"),
		Protocols: splitList(o.protocols, ","),
		Engines:   splitList(o.engines, ","),
		Models:    o.models,
		Analyses:  splitList(o.analyses, ";"),
		Reps:      o.reps,
		MaxRounds: o.maxRounds,
	}
	if len(matrix.Graphs) == 0 {
		return fmt.Errorf("-suite needs -graphs (semicolon-separated specs; see afsim -list for families)")
	}
	for _, set := range splitList(o.origins, ";") {
		var ids []graph.NodeID
		for _, part := range splitList(set, ",") {
			id, err := strconv.Atoi(part)
			if err != nil {
				return fmt.Errorf("parse -origins entry %q: %w", part, err)
			}
			ids = append(ids, graph.NodeID(id))
		}
		if len(ids) > 0 {
			matrix.OriginSets = append(matrix.OriginSets, ids)
		}
	}
	for _, s := range splitList(o.seeds, ",") {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("parse -seeds entry %q: %w", s, err)
		}
		matrix.Seeds = append(matrix.Seeds, v)
	}
	specs, err := matrix.Expand()
	if err != nil {
		return err
	}

	var injector *chaos.Injector
	if o.chaos != "" {
		injector, err = chaos.Parse(o.chaos)
		if err != nil {
			return err
		}
	}
	if o.resume && o.checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint (the journal to resume from)")
	}

	switch o.format {
	case "jsonl", "csv", "table":
	default:
		// Validate before os.Create so a flag typo cannot truncate an
		// existing -out file.
		return fmt.Errorf("unknown -format %q (want jsonl, csv, or table)", o.format)
	}
	var w io.Writer = os.Stdout
	var gz *gzip.Writer
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
		// A .gz output path transparently compresses (stdlib gzip; the
		// module stays zero-dependency). The explicit Close on the success
		// path checks the flush error; the deferred one is the error-path
		// safety net (a second Close is a no-op).
		if strings.HasSuffix(o.out, ".gz") {
			gz = gzip.NewWriter(f)
			defer gz.Close()
			w = gz
		}
	}
	var sink scenario.Sink
	var flush func() error
	var agg *scenario.Aggregate
	switch o.format {
	case "jsonl":
		sink = scenario.NewJSONLSink(w)
	case "csv":
		metricCols, err := analysis.MetricColumns(matrix.Analyses)
		if err != nil {
			return err
		}
		csvSink := scenario.NewCSVSink(w, metricCols...)
		flush = csvSink.Flush
		// Best-effort flush on error paths too, so completed rows are not
		// lost from -out when the suite fails partway; the success path
		// below checks the flush error explicitly.
		defer csvSink.Flush()
		sink = csvSink
	case "table":
		agg = scenario.NewAggregate()
		sink = agg
	}

	// One registry serves the whole suite: the local runner's telemetry and,
	// in sharded mode, the coordinator and every in-process shard worker all
	// record into it, so the end-of-suite stanza aggregates across paths.
	reg := obs.NewRegistry()
	tel := scenario.NewTelemetry(reg)
	suiteStart := time.Now()

	var results []scenario.Result
	switch {
	case o.sharded():
		results, err = runShardedSuite(context.Background(), o, specs, sink, reg)
		if err != nil {
			return err
		}
	case o.checkpoint != "":
		// A fresh (non-resume) run must not inherit a stale journal: it
		// would silently skip every spec the old sweep completed.
		runner := suiteRunner(o, sink, injector, tel)
		if !o.resume {
			if err := os.Remove(o.checkpoint); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		m, err := scenario.OpenManifest(o.checkpoint)
		if err != nil {
			return err
		}
		results, err = runner.Resume(context.Background(), m, specs)
		if cerr := m.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	default:
		results, err = suiteRunner(o, sink, injector, tel).Run(context.Background(), specs)
		if err != nil {
			return err
		}
	}
	if flush != nil {
		if err := flush(); err != nil {
			return err
		}
	}
	if o.format == "table" {
		if err := agg.Fprint(w); err != nil {
			return err
		}
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	failed := 0
	for _, res := range results {
		if res.Err != "" {
			failed++
		}
	}
	if o.sharded() {
		fmt.Fprintf(os.Stderr, "suite: %d specs, %d failed (%d shard workers)\n", len(results), failed, o.shardWorkers)
	} else {
		workers := o.workers
		if workers <= 0 {
			workers = scenario.DefaultWorkers()
		}
		fmt.Fprintf(os.Stderr, "suite: %d specs, %d failed (%d workers)\n", len(results), failed, workers)
	}
	printSuiteTelemetry(tel, time.Since(suiteStart))
	if failed > 0 {
		return fmt.Errorf("%d of %d suite runs failed", failed, len(results))
	}
	return nil
}

// suiteRunner builds the in-process runner the non-sharded paths share.
func suiteRunner(o suiteOpts, sink scenario.Sink, injector *chaos.Injector, tel *scenario.Telemetry) *scenario.Runner {
	return &scenario.Runner{
		Workers:    o.workers,
		Sink:       sink,
		RunTimeout: o.timeout,
		Retries:    o.retries,
		Backoff:    o.backoff,
		Chaos:      injector,
		Metrics:    tel,
	}
}

// printSuiteTelemetry prints the end-of-suite telemetry stanza from the
// shared registry: what the resilient runner actually did to produce the
// rows, and how long the whole suite took. In sharded mode the counts
// aggregate over every in-process shard worker (external workers report to
// their own process's registry and are not included).
func printSuiteTelemetry(tel *scenario.Telemetry, wall time.Duration) {
	s := tel.Summary()
	// Millisecond rounding reads well for real suites; sub-millisecond toy
	// matrices keep microsecond precision instead of printing "0s".
	r := time.Millisecond
	if wall < time.Millisecond {
		r = time.Microsecond
	}
	fmt.Fprintf(os.Stderr,
		"suite telemetry: rows=%d attempts=%d retries=%d timeouts=%d panics=%d chaos=%d wall=%s\n",
		s.Rows, s.Attempts, s.Retries, s.Timeouts, s.Panics, s.ChaosFaults, wall.Round(r))
}

// runShardedSuite executes the suite through an internal/shard coordinator:
// the matrix is partitioned into lease groups, in-process shard workers (and,
// when -shard-coordinator names a reachable address, external `afshard -mode
// worker` processes) execute them through the ordinary resilient runner, and
// the coordinator merges the uploads into the ordinary sink stack. The merged
// output is order-normalised byte-identical to the single-process path.
func runShardedSuite(ctx context.Context, o suiteOpts, specs []scenario.Spec, sink scenario.Sink, reg *obs.Registry) ([]scenario.Result, error) {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg := shard.CoordinatorConfig{
		Run: shard.RunConfig{
			TimeoutMs:     o.timeout.Milliseconds(),
			Retries:       o.retries,
			BackoffMs:     o.backoff.Milliseconds(),
			Chaos:         o.chaos,
			MaxRoundsHint: o.maxRounds,
		},
		Sink:    sink,
		Logger:  logger,
		Metrics: reg,
	}
	if o.checkpoint != "" {
		if !o.resume {
			if err := os.Remove(o.checkpoint); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
		m, err := scenario.OpenManifest(o.checkpoint)
		if err != nil {
			return nil, err
		}
		defer m.Close()
		cfg.Manifest = m
	}
	coord, err := shard.NewCoordinator(specs, cfg)
	if err != nil {
		return nil, err
	}

	addr := o.shardCoordinator
	if addr == "" {
		addr = "127.0.0.1:0" // loopback only: purely in-process fan-out
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	if o.shardCoordinator != "" {
		fmt.Fprintf(os.Stderr, "suite: shard coordinator listening on %s\n", ln.Addr())
	}

	waitCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	var workerMu sync.Mutex
	var workerErr error
	base := coordinatorURL(ln.Addr())
	for i := 0; i < o.shardWorkers; i++ {
		w, err := shard.NewWorker(shard.WorkerConfig{
			Coordinator: base,
			Name:        fmt.Sprintf("local-%d", i),
			Pool:        o.workers,
			Logger:      logger,
			Metrics:     reg,
		})
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(waitCtx); err != nil && !errors.Is(err, context.Canceled) {
				workerMu.Lock()
				if workerErr == nil {
					workerErr = err
				}
				workerMu.Unlock()
			}
		}()
	}
	if o.shardWorkers > 0 && o.shardCoordinator == "" {
		// Pure in-process fan-out: if every local worker dies the suite can
		// never finish, so stop waiting instead of hanging forever.
		go func() {
			wg.Wait()
			select {
			case <-coord.Done():
			default:
				cancel()
			}
		}()
	}
	results, err := coord.Wait(waitCtx)
	cancel()
	wg.Wait()
	if err != nil {
		workerMu.Lock()
		defer workerMu.Unlock()
		if workerErr != nil {
			return results, fmt.Errorf("shard worker: %w", workerErr)
		}
		return results, err
	}
	return results, nil
}

// coordinatorURL builds the loopback base URL in-process shard workers dial:
// a listener bound to an unspecified address (e.g. ":9090") is reachable at
// 127.0.0.1 on the same port.
func coordinatorURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// splitList splits on sep, trimming whitespace and dropping empties.
func splitList(s, sep string) []string {
	var out []string
	for _, part := range strings.Split(s, sep) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
