// Command afbench runs the full experiment suite reproducing every figure
// and theorem of the paper, printing one table per artifact. See DESIGN.md
// §3 for the experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	afbench [-seed N] [-scale N] [-only E4,E7] [-engine fast]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"amnesiacflood/internal/experiments"
	"amnesiacflood/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("afbench", flag.ContinueOnError)
	cfg := experiments.DefaultConfig()
	seed := fs.Int64("seed", cfg.Seed, "seed for all random instances")
	scale := fs.Int("scale", cfg.Scale, "instance size multiplier")
	only := fs.String("only", "", "comma-separated experiment IDs to run (default all)")
	engineName := fs.String("engine", sim.Sequential.String(), "engine for the single-run experiments: "+strings.Join(sim.EngineNames(), ", "))
	asJSON := fs.Bool("json", false, "emit the tables as a JSON array instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg.Seed = *seed
	cfg.Scale = *scale
	kind, err := sim.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	cfg.Engine = kind

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	var collected []*experiments.Table
	for _, exp := range experiments.All() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		tables, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s (%s): %w", exp.ID, exp.Name, err)
		}
		for _, t := range tables {
			if *asJSON {
				collected = append(collected, t)
				continue
			}
			if err := t.Fprint(os.Stdout); err != nil {
				return err
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(collected)
	}
	return nil
}
