package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-only", "E1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSubsetWithSeed(t *testing.T) {
	if err := run([]string{"-only", "e2,E3", "-seed", "99"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nosuchflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-only", "E1,E2", "-json"}); err != nil {
		t.Fatal(err)
	}
}
