package main

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-only", "E1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSubsetWithSeed(t *testing.T) {
	if err := run([]string{"-only", "e2,E3", "-seed", "99"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nosuchflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-only", "E1,E2", "-json"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunSuiteJSONL drives the acceptance matrix shape (3 families × 2
// protocols × 2 engines) through the JSONL sink — the same invocation as
// `make suite` — and checks every emitted row carries the exact graph spec.
func TestRunSuiteJSONL(t *testing.T) {
	out := filepath.Join(t.TempDir(), "suite.jsonl")
	args := []string{"-suite",
		"-graphs", "grid:rows=3,cols=4;cycle:n=9;prefattach:n=16,m=2",
		"-protocols", "amnesiac,classic",
		"-engines", "sequential,parallel",
		"-seeds", "1,2",
		"-workers", "8",
		"-format", "jsonl",
		"-out", out,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wantGraphs := map[string]bool{"grid:rows=3,cols=4": true, "cycle:n=9": true, "prefattach:n=16,m=2": true}
	rows := 0
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		rows++
		var row struct {
			Spec struct {
				Graph    string `json:"graph"`
				Protocol string `json:"protocol"`
				Engine   string `json:"engine"`
			} `json:"spec"`
			Rounds     int  `json:"rounds"`
			Terminated bool `json:"terminated"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &row); err != nil {
			t.Fatalf("bad JSONL row %q: %v", scanner.Text(), err)
		}
		if !wantGraphs[row.Spec.Graph] {
			t.Errorf("row has graph %q, not a requested spec", row.Spec.Graph)
		}
		if !row.Terminated || row.Rounds == 0 {
			t.Errorf("row did not terminate: %s", scanner.Text())
		}
	}
	if want := 3 * 2 * 2 * 2; rows != want {
		t.Fatalf("suite emitted %d rows, want %d", rows, want)
	}
}

// TestRunSuiteModelAxis drives the execution-model dimension: sync, an
// adversary, and a schedule over the same graphs, including the
// -adversaries/-schedules shorthands, and checks the certified rows.
func TestRunSuiteModelAxis(t *testing.T) {
	out := filepath.Join(t.TempDir(), "models.jsonl")
	args := []string{"-suite",
		"-graphs", "cycle:n=9;path:n=6",
		"-models", "sync;adversary:collision",
		"-adversaries", "uniform",
		"-schedules", "alternating",
		"-maxrounds", "4096",
		"-format", "jsonl",
		"-out", out,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, certified := 0, 0
	models := map[string]bool{}
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		rows++
		var row struct {
			Spec struct {
				Graph string `json:"graph"`
				Model string `json:"model"`
			} `json:"spec"`
			Outcome     string `json:"outcome"`
			CycleLength int    `json:"cycleLength"`
			Err         string `json:"err"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &row); err != nil {
			t.Fatalf("bad JSONL row %q: %v", scanner.Text(), err)
		}
		if row.Err != "" {
			t.Errorf("row failed: %s", scanner.Text())
		}
		models[row.Spec.Model] = true
		if row.Outcome == "non-termination-certified" {
			certified++
			if row.CycleLength == 0 {
				t.Errorf("certified row without a cycle length: %s", scanner.Text())
			}
		}
	}
	if want := 2 * 4; rows != want {
		t.Fatalf("suite emitted %d rows, want %d", rows, want)
	}
	for _, want := range []string{"sync", "adversary:collision", "adversary:uniform", "schedule:alternating"} {
		if !models[want] {
			t.Errorf("no row ran under model %q (have %v)", want, models)
		}
	}
	// The collision delayer certifies non-termination on the odd cycle.
	if certified == 0 {
		t.Error("no row produced a non-termination certificate")
	}
}

func TestRunSuiteTableAndCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "suite.csv")
	if err := run([]string{"-suite", "-graphs", "path:n=6", "-format", "csv", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "graph,protocol,engine") {
		t.Fatalf("CSV output = %q", data)
	}
	if err := run([]string{"-suite", "-graphs", "path:n=6;cycle:n=7", "-format", "table",
		"-out", filepath.Join(t.TempDir(), "suite.txt")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSuiteErrors(t *testing.T) {
	cases := [][]string{
		{"-suite"},                          // no graphs
		{"-suite", "-graphs", "nosuch:n=4"}, // unknown family
		{"-suite", "-graphs", "path:n=6", "-engines", "warp"},    // unknown engine
		{"-suite", "-graphs", "path:n=6", "-format", "xml"},      // unknown format
		{"-suite", "-graphs", "path:n=6", "-seeds", "one"},       // bad seed
		{"-suite", "-graphs", "path:n=6", "-origins", "a"},       // bad origin
		{"-suite", "-graphs", "path:n=6", "-origins", "99"},      // origin outside graph (run fails)
		{"-suite", "-graphs", "path:n=6", "-protocols", "zzz"},   // unknown protocol
		{"-suite", "-graphs", "path:n=6", "-models", "warp"},     // unknown model kind
		{"-suite", "-graphs", "path:n=6", "-adversaries", "zzz"}, // unknown adversary family
		{"-suite", "-graphs", "path:n=6", "-schedules", "zzz"},   // unknown schedule family
		// classic × adversary cells fail at run time (model needs amnesiac).
		{"-suite", "-graphs", "path:n=6", "-protocols", "classic", "-adversaries", "sync"},
		{"-suite", "-graphs", "path:n=6", "-engine", "parallel"},    // experiment-mode flag in suite mode
		{"-suite", "-graphs", "path:n=6", "-seed", "3"},             // -seed typo for -seeds
		{"-suite", "-graphs", "path:n=6", "-json"},                  // -json typo for -format
		{"-suite", "-graphs", "path:n=6", "-chaos", "chaos:rate=2"}, // rate outside [0,1]
		{"-suite", "-graphs", "path:n=6", "-chaos", "burn:rate=1"},  // wrong spec family
		{"-suite", "-graphs", "path:n=6", "-resume"},                // -resume without -checkpoint
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunSuiteChaosRetries is the CLI face of the differential chaos gate:
// the same matrix run clean and under heavy injection with retries produces
// identical JSONL up to wall time and attempt counts.
func TestRunSuiteChaosRetries(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.jsonl")
	chaotic := filepath.Join(dir, "chaos.jsonl")
	matrix := []string{"-suite",
		"-graphs", "grid:rows=3,cols=4;cycle:n=9",
		"-protocols", "amnesiac,classic",
		"-engines", "sequential,parallel",
		"-seeds", "1,2",
		"-format", "jsonl",
	}
	if err := run(append(matrix, "-out", clean)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(matrix,
		"-chaos", "chaos:rate=0.25,kinds=err|panic|stall,seed=11,stall=5ms",
		"-retries", "8", "-backoff", "1ms", "-timeout", "30s",
		"-out", chaotic)); err != nil {
		t.Fatal(err)
	}
	if a, b := normalizeJSONL(t, clean), normalizeJSONL(t, chaotic); a != b {
		t.Fatalf("chaotic suite diverged from the clean one:\n%s\nvs\n%s", b, a)
	}
}

// TestRunSuiteCheckpointResume: a completed checkpointed run resumed over
// the same matrix reruns nothing and reproduces the same output.
func TestRunSuiteCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	first := filepath.Join(dir, "first.jsonl")
	second := filepath.Join(dir, "second.jsonl")
	matrix := []string{"-suite",
		"-graphs", "path:n=6;cycle:n=7",
		"-protocols", "amnesiac,classic",
		"-seeds", "1,2",
		"-format", "jsonl",
		"-checkpoint", ckpt,
	}
	if err := run(append(matrix, "-out", first)); err != nil {
		t.Fatal(err)
	}
	ckptBefore, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(append(matrix, "-resume", "-out", second)); err != nil {
		t.Fatal(err)
	}
	if a, b := normalizeJSONL(t, first), normalizeJSONL(t, second); a != b {
		t.Fatalf("resumed suite diverged:\n%s\nvs\n%s", b, a)
	}
	// Every spec was journaled, so the resume appended nothing.
	ckptAfter, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if string(ckptBefore) != string(ckptAfter) {
		t.Fatal("no-op resume rewrote the checkpoint journal")
	}
}

// TestRunSuiteSharded: the same matrix through -shard-workers 1 and 4 — and
// through 4 shard workers under chaos injection with retries — merges
// byte-identical (order-normalised) to the plain in-process run.
func TestRunSuiteSharded(t *testing.T) {
	dir := t.TempDir()
	matrix := []string{"-suite",
		"-graphs", "grid:rows=3,cols=4;cycle:n=9",
		"-protocols", "amnesiac,classic",
		"-seeds", "1,2",
		"-format", "jsonl",
	}
	base := filepath.Join(dir, "base.jsonl")
	if err := run(append(matrix, "-out", base)); err != nil {
		t.Fatal(err)
	}
	want := normalizeJSONL(t, base)
	for _, n := range []string{"1", "4"} {
		out := filepath.Join(dir, "shard"+n+".jsonl")
		if err := run(append(matrix, "-shard-workers", n, "-out", out)); err != nil {
			t.Fatal(err)
		}
		if got := normalizeJSONL(t, out); got != want {
			t.Errorf("-shard-workers %s diverged from the in-process run:\n%s\nvs\n%s", n, got, want)
		}
	}
	chaotic := filepath.Join(dir, "chaos.jsonl")
	if err := run(append(matrix, "-shard-workers", "4",
		"-chaos", "chaos:rate=0.15,kinds=err|panic|stall,seed=7,stall=1ms",
		"-retries", "8", "-backoff", "1ms", "-timeout", "30s",
		"-out", chaotic)); err != nil {
		t.Fatal(err)
	}
	if got := normalizeJSONL(t, chaotic); got != want {
		t.Errorf("chaotic sharded suite diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestRunSuiteGzipOut: a .gz -out path transparently compresses, for both
// the in-process and the sharded paths, and both decompress to the same
// normalised rows.
func TestRunSuiteGzipOut(t *testing.T) {
	dir := t.TempDir()
	matrix := []string{"-suite", "-graphs", "path:n=6;cycle:n=7", "-seeds", "1,2", "-format", "jsonl"}
	plain := filepath.Join(dir, "suite.jsonl")
	packed := filepath.Join(dir, "suite.jsonl.gz")
	sharded := filepath.Join(dir, "sharded.jsonl.gz")
	if err := run(append(matrix, "-out", plain)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(matrix, "-out", packed)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(matrix, "-shard-workers", "2", "-out", sharded)); err != nil {
		t.Fatal(err)
	}
	want := normalizeJSONL(t, plain)
	if got := normalizeJSONL(t, packed); got != want {
		t.Fatalf("gzip suite output diverged:\n%s\nvs\n%s", got, want)
	}
	if got := normalizeJSONL(t, sharded); got != want {
		t.Fatalf("sharded gzip suite output diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestRunSuiteShardedCheckpointResume: a completed sharded checkpointed run
// resumed over the same matrix replays everything and appends nothing.
func TestRunSuiteShardedCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	first := filepath.Join(dir, "first.jsonl")
	second := filepath.Join(dir, "second.jsonl")
	matrix := []string{"-suite",
		"-graphs", "path:n=6;cycle:n=7",
		"-protocols", "amnesiac,classic",
		"-seeds", "1,2",
		"-format", "jsonl",
		"-checkpoint", ckpt,
		"-shard-workers", "2",
	}
	if err := run(append(matrix, "-out", first)); err != nil {
		t.Fatal(err)
	}
	ckptBefore, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(append(matrix, "-resume", "-out", second)); err != nil {
		t.Fatal(err)
	}
	if a, b := normalizeJSONL(t, first), normalizeJSONL(t, second); a != b {
		t.Fatalf("resumed sharded suite diverged:\n%s\nvs\n%s", b, a)
	}
	ckptAfter, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if string(ckptBefore) != string(ckptAfter) {
		t.Fatal("no-op sharded resume rewrote the checkpoint journal")
	}
}

// normalizeJSONL reads a suite JSONL file (gunzipping .gz paths) and renders
// it order-normalised: rows sorted by spec identity with wall time and
// attempts zeroed.
func normalizeJSONL(t *testing.T, path string) string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			t.Fatalf("%s is not gzip: %v", path, err)
		}
		defer zr.Close()
		r = zr
	}
	var lines []string
	scanner := bufio.NewScanner(r)
	for scanner.Scan() {
		var row map[string]any
		if err := json.Unmarshal(scanner.Bytes(), &row); err != nil {
			t.Fatalf("bad JSONL row %q: %v", scanner.Text(), err)
		}
		delete(row, "wallMicros")
		delete(row, "attempts")
		b, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
