// Command afsim runs a single flooding simulation and prints the result.
//
// Topologies come from the graph-spec registry (-graph family:key=value,...
// — see internal/graph/gen and afsim -list), from a legacy alias (-topo
// with the -n size knob), or from an edge-list file (-file, format of
// internal/graph.WriteEdgeList). Protocols come from the sim façade's
// registry — every registered protocol runs on every engine — and the
// execution model is a registry axis of its own (-model: "sync", an
// "adversary:..." spec for the paper's asynchronous variant, or a
// "schedule:..." spec for dynamic networks).
//
// Examples:
//
//	afsim -list
//	afsim -graph grid:rows=4,cols=5 -protocol detect -engine parallel
//	afsim -graph gnp:n=200,p=0.05,connect=true -seed 7 -source 0
//	afsim -graph cycle:n=65 -analyze coverage,termination,bipartite
//	afsim -topo cycle -n 6 -source 0 -render
//	afsim -topo path -n 4 -source 1 -engine channels -render
//	afsim -topo cycle -n 12 -origins 0,3 -protocol multiflood
//	afsim -topo cycle -n 6 -source 0 -protocol faulty -param loss=0.05 -maxrounds 512
//	afsim -topo cycle -n 3 -source 1 -model adversary:collision
//	afsim -topo cycle -n 4 -source 0 -model schedule:outage:round=1,u=0,v=3
//	afsim -file mygraph.txt -source 0 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strconv"
	"strings"

	"amnesiacflood/internal/analysis"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/doublecover"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/model"
	"amnesiacflood/internal/sim"
	"amnesiacflood/internal/trace"

	"amnesiacflood/internal/cli"

	// Self-registering protocols: importing a protocol package adds it to
	// the sim registry, which is all the wiring -protocol needs. The async
	// and dynamic packages likewise register the -model families.
	_ "amnesiacflood/internal/async"
	_ "amnesiacflood/internal/classic"
	_ "amnesiacflood/internal/detect"
	_ "amnesiacflood/internal/dynamic"
	_ "amnesiacflood/internal/faults"
	_ "amnesiacflood/internal/multiflood"
	_ "amnesiacflood/internal/spantree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afsim:", err)
		os.Exit(1)
	}
}

// paramFlags collects repeatable -param key=value flags.
type paramFlags map[string]string

func (p paramFlags) String() string { return "" }

func (p paramFlags) Set(kv string) error {
	key, value, ok := strings.Cut(kv, "=")
	if !ok || strings.TrimSpace(key) == "" {
		return fmt.Errorf("want key=value, got %q", kv)
	}
	p[strings.TrimSpace(key)] = strings.TrimSpace(value)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("afsim", flag.ContinueOnError)
	graphSpec := fs.String("graph", "", "graph spec family:key=value,... (families: "+strings.Join(gen.Families(), ", ")+"; see -list)")
	topo := fs.String("topo", "", "legacy topology alias sized by -n: "+strings.Join(cli.TopologyNames(), ", "))
	n := fs.Int("n", 8, "topology size parameter for -topo aliases")
	file := fs.String("file", "", "edge-list file (alternative to -graph/-topo)")
	list := fs.Bool("list", false, "list registered graph families, protocols, engines, models, and analyses, then exit")
	sourceFlag := fs.Int("source", 0, "origin node")
	originsFlag := fs.String("origins", "", "comma-separated origin nodes (multi-source; overrides -source)")
	protocol := fs.String("protocol", "amnesiac", "protocol: "+strings.Join(sim.Protocols(), ", "))
	engineName := fs.String("engine", "sequential", "engine: "+strings.Join(sim.EngineNames(), ", "))
	modelSpec := fs.String("model", "", "execution model spec: sync (default), adversary:..., or schedule:... (see -list)")
	analyze := fs.String("analyze", "", "streaming analyses, semicolon- or comma-separated, e.g. \"coverage;termination\" or \"quantiles:metric=messages;coverage\" (see -list)")
	params := paramFlags{}
	fs.Var(params, "param", "protocol parameter key=value (repeatable, e.g. -param loss=0.05)")
	asyncAdv := fs.String("async", "", "legacy alias for -model adversary:...: sync, collision, uniform, random")
	seed := fs.Int64("seed", 1, "seed for random graphs, models, and randomised protocols")
	maxRounds := fs.Int("maxrounds", 0, "round limit (0 = default)")
	render := fs.Bool("render", false, "print the per-round trace")
	timeline := fs.Bool("timeline", false, "print the per-node timeline grid")
	predict := fs.Bool("predict", false, "compare the double-cover prediction against the simulation (single source, amnesiac only)")
	letters := fs.Bool("letters", true, "label nodes a,b,c,... like the paper")
	asJSON := fs.Bool("json", false, "print the result as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return printRegistries(os.Stdout)
	}

	if *asyncAdv != "" {
		if *modelSpec != "" {
			return fmt.Errorf("use either -model or the legacy -async alias, not both")
		}
		spec, err := cli.AsyncAlias(*asyncAdv)
		if err != nil {
			return err
		}
		*modelSpec = spec
	}
	// Parse the model up front so flag validation (-predict, -timeline)
	// happens before any simulation runs and an explicit "-model sync"
	// behaves exactly like the default.
	mdl := model.SyncSpec()
	if *modelSpec != "" {
		parsed, err := model.Parse(*modelSpec)
		if err != nil {
			return err
		}
		mdl = parsed
	}

	g, err := cli.LoadGraphSpec(*graphSpec, *topo, *n, *file, *seed)
	if err != nil {
		return err
	}
	origins, err := parseOrigins(g, *sourceFlag, *originsFlag)
	if err != nil {
		return err
	}
	source := origins[0]
	label := trace.Numbers
	if *letters && g.N() <= 26 {
		label = trace.Letters
	}

	if *predict {
		if len(origins) != 1 || *protocol != "amnesiac" || !mdl.IsSync() {
			return fmt.Errorf("-predict needs a single origin, the amnesiac protocol, and the sync model")
		}
		return runPredict(g, source, label)
	}
	if *timeline && !mdl.IsSync() {
		return fmt.Errorf("-timeline needs the sync model (the timeline grid assumes synchronous receipt analysis)")
	}

	kind, err := sim.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	sessOpts := []sim.Option{
		sim.WithProtocol(*protocol),
		sim.WithEngine(kind),
		sim.WithModel(mdl.String()),
		sim.WithOrigins(origins...),
		sim.WithSeed(*seed),
		sim.WithMaxRounds(*maxRounds),
		sim.WithTrace(true),
	}
	if specs := splitAnalyses(*analyze); len(specs) > 0 {
		sessOpts = append(sessOpts, sim.WithAnalysis(specs...))
	}
	for key, value := range params {
		sessOpts = append(sessOpts, sim.WithParam(key, value))
	}
	sess, err := sim.New(g, sessOpts...)
	if err != nil {
		return err
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("%s on %s from %s via %s under %s: %s rounds=%d messages=%d (%.3fms)\n",
		res.Protocol, g, labelAll(origins, label), res.Engine, res.Model,
		res.Outcome, res.Rounds, res.TotalMessages, float64(res.WallTime.Microseconds())/1000)
	if res.Lost > 0 {
		fmt.Printf("messages lost to dead edges: %d\n", res.Lost)
	}
	if res.Certificate != nil {
		fmt.Printf("non-termination certificate: configuration at round %d recurs at round %d (period %d)\n",
			res.Certificate.Start, res.Certificate.Start+res.Certificate.Length, res.Certificate.Length)
	}
	fmt.Printf("graph: diameter=%d eccentricity(source)=%d bipartite=%t\n",
		algo.Diameter(g), algo.Eccentricity(g, source), algo.IsBipartite(g))
	if len(res.Metrics) > 0 {
		keys := make([]string, 0, len(res.Metrics))
		for k := range res.Metrics {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		fmt.Println("analysis metrics:")
		for _, k := range keys {
			fmt.Printf("  %-28s %g\n", k, res.Metrics[k])
		}
		if witnesses, ok := sess.Witnesses(); ok && len(witnesses) > 0 {
			fmt.Printf("  odd-cycle witnesses: %s\n", labelAll(witnesses, label))
		}
	}
	if *render {
		if err := trace.RenderRounds(os.Stdout, res.Trace, label); err != nil {
			return err
		}
	}
	if *timeline {
		rep := core.Analyze(g, origins, res)
		if err := trace.Timeline(os.Stdout, g, rep, label); err != nil {
			return err
		}
	}
	return nil
}

// printRegistries renders every registry the CLI can address: graph
// families with their typed parameters, protocols, engines, and execution
// models.
func printRegistries(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "graph families (-graph family:key=value,...):"); err != nil {
		return err
	}
	for _, name := range gen.Families() {
		fam, _ := gen.Lookup(name)
		params := make([]string, len(fam.Params))
		for i, p := range fam.Params {
			params[i] = fmt.Sprintf("%s %s (default %s)", p.Name, p.Kind, p.Default)
		}
		line := "  " + name
		if len(params) > 0 {
			line += ": " + strings.Join(params, ", ")
		}
		if fam.Doc != "" {
			line += " — " + fam.Doc
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "protocols (-protocol): %s\nengines (-engine): %s\n",
		strings.Join(sim.Protocols(), ", "), strings.Join(sim.EngineNames(), ", ")); err != nil {
		return err
	}
	if err := printAnalyses(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "execution models (-model kind:family:key=value,...):"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  sync — the paper's synchronous model (default; runs on every -engine)"); err != nil {
		return err
	}
	for _, kind := range []model.Kind{model.KindAdversary, model.KindSchedule} {
		for _, name := range model.Families(kind) {
			info, _ := model.Lookup(kind, name)
			params := make([]string, len(info.Params))
			for i, p := range info.Params {
				params[i] = fmt.Sprintf("%s %s (default %s)", p.Name, p.Kind, p.Default)
			}
			line := fmt.Sprintf("  %s:%s", kind, name)
			if len(params) > 0 {
				line += ": " + strings.Join(params, ", ")
			}
			if info.Doc != "" {
				line += " — " + info.Doc
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// printAnalyses renders the analysis registry section of -list: every
// family with its typed parameters and the metric columns it emits.
func printAnalyses(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "analyses (-analyze family:key=value,...; metrics keyed family.metric):"); err != nil {
		return err
	}
	for _, name := range analysis.Families() {
		fam, _ := analysis.Lookup(name)
		params := make([]string, len(fam.Params))
		for i, p := range fam.Params {
			params[i] = fmt.Sprintf("%s %s (default %s)", p.Name, p.Kind, p.Default)
		}
		line := "  " + name
		if len(params) > 0 {
			line += ": " + strings.Join(params, ", ")
		}
		if fam.Doc != "" {
			line += " — " + fam.Doc
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// splitAnalyses splits the -analyze flag into analysis specs. Semicolons
// separate specs unambiguously (the afbench -analyses convention — commas
// belong to the spec grammar's parameter lists). For the common
// parameterless case, commas also separate specs: a comma-delimited
// segment starts a new spec when its head names a registered family, and
// otherwise continues the previous spec's parameter list.
func splitAnalyses(s string) []string {
	var out []string
	for _, group := range strings.Split(s, ";") {
		start := len(out)
		for _, part := range strings.Split(group, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			head := part
			if i := strings.IndexAny(head, ":="); i >= 0 {
				head = head[:i]
			}
			_, isFamily := analysis.Lookup(strings.TrimSpace(head))
			if isFamily || len(out) == start {
				out = append(out, part)
				continue
			}
			out[len(out)-1] += "," + part
		}
	}
	return out
}

// parseOrigins resolves -origins (comma-separated) or falls back to
// -source, validating every node against the graph.
func parseOrigins(g *graph.Graph, source int, originsFlag string) ([]graph.NodeID, error) {
	var origins []graph.NodeID
	if originsFlag == "" {
		origins = []graph.NodeID{graph.NodeID(source)}
	} else {
		for _, part := range strings.Split(originsFlag, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			id, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("parse -origins entry %q: %w", part, err)
			}
			origins = append(origins, graph.NodeID(id))
		}
		if len(origins) == 0 {
			return nil, fmt.Errorf("-origins %q contains no nodes", originsFlag)
		}
	}
	for _, o := range origins {
		if !g.HasNode(o) {
			return nil, fmt.Errorf("origin %d is not a node of %s", o, g)
		}
	}
	return origins, nil
}

// labelAll renders an origin list with the chosen labeler.
func labelAll(origins []graph.NodeID, label trace.Labeler) string {
	parts := make([]string, len(origins))
	for i, o := range origins {
		parts[i] = label(o)
	}
	return strings.Join(parts, ",")
}

// runPredict prints the double-cover forecast next to the measured run and
// fails loudly if they ever disagree (they cannot, per experiment E11).
func runPredict(g *graph.Graph, source graph.NodeID, label trace.Labeler) error {
	pred := doublecover.Predict(g, source)
	rep, err := core.Run(g, source)
	if err != nil {
		return err
	}
	same := pred.Rounds == rep.Rounds() &&
		pred.TotalMessages == rep.TotalMessages() &&
		engine.EqualTraces(pred.Trace, rep.Result.Trace)
	fmt.Printf("double-cover prediction for %s from %s:\n", g, label(source))
	fmt.Printf("  predicted: rounds=%d messages=%d\n", pred.Rounds, pred.TotalMessages)
	fmt.Printf("  measured:  rounds=%d messages=%d\n", rep.Rounds(), rep.TotalMessages())
	fmt.Printf("  traces identical: %t\n", same)
	dist := doublecover.BFS(g, source)
	if second := dist.SecondReceivers(); len(second) > 0 {
		fmt.Printf("  nodes predicted to receive twice: %d (odd-cycle parity reachable)\n", len(second))
	} else {
		fmt.Println("  every node predicted to receive exactly once (bipartite behaviour)")
	}
	if !same {
		return fmt.Errorf("prediction diverged from simulation — this is a bug")
	}
	return nil
}
