package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"amnesiacflood/internal/engine/bitengine"
	"amnesiacflood/internal/sim"
)

// TestListOutput checks -list renders every registry with parameter docs.
func TestListOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := printRegistries(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph families", "grid", "rows int (default 8)", "petersen",
		"protocols", "amnesiac", "engines", "parallel",
		"execution models", "adversary:collision", "adversary:hold: node int (default 0)",
		"schedule:blink", "period int (default 2)", "schedule:alternating",
		"analyses", "coverage", "termination", "bipartite", "spantree", "echo",
		"quantiles: metric string (default rounds)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestRunHappyPaths(t *testing.T) {
	cases := [][]string{
		{"-topo", "cycle", "-n", "6", "-source", "0"},
		{"-topo", "path", "-n", "4", "-source", "1", "-render", "-timeline"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-engine", "channels"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-protocol", "classic"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-json"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-async", "collision"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-async", "sync", "-render"},
		{"-topo", "cycle", "-n", "6", "-source", "0", "-async", "random", "-maxrounds", "256"},
		{"-topo", "cycle", "-n", "6", "-source", "0", "-async", "uniform"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-model", "adversary:collision", "-render"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-model", "adversary:collision", "-json"},
		{"-topo", "path", "-n", "8", "-model", "adversary:hold:node=3,extra=2"},
		{"-topo", "cycle", "-n", "4", "-source", "0", "-model", "schedule:outage:round=1,u=0,v=3"},
		{"-topo", "path", "-n", "4", "-model", "schedule:blink:u=1,v=2,period=2,phase=1"},
		{"-graph", "grid:rows=4,cols=4", "-model", "schedule:alternating", "-maxrounds", "512"},
		{"-topo", "cycle", "-n", "12", "-origins", "0,3,6"},
		{"-topo", "cycle", "-n", "12", "-origins", "0, 6", "-protocol", "classic"},
		{"-topo", "cycle", "-n", "9", "-source", "2", "-predict"},
		{"-topo", "cycle", "-n", "9", "-source", "2", "-predict", "-model", "sync"}, // explicit sync ok
		{"-topo", "path", "-n", "4", "-source", "1", "-timeline", "-model", "sync"},
		{"-topo", "grid", "-n", "4", "-source", "5", "-predict"},
		{"-graph", "grid:rows=4,cols=5", "-protocol", "detect", "-engine", "parallel"},
		{"-graph", "petersen", "-source", "3", "-render"},
		{"-graph", "gnp:n=30,p=0.2,connect=true", "-seed", "7"},
		{"-graph", "prefattach:n=40,m=2", "-protocol", "spantree", "-engine", "fast"},
		{"-graph", "cycle:n=9", "-analyze", "coverage,termination,bipartite,spantree,echo"},
		{"-graph", "grid:rows=3,cols=4", "-analyze", "quantiles:metric=messages,coverage", "-json"},
		{"-graph", "grid:rows=3,cols=4", "-analyze", "quantiles:metric=messages;coverage"},
		{"-topo", "cycle", "-n", "6", "-analyze", "termination", "-model", "schedule:static"},
		{"-topo", "torus:rows=3,cols=5"}, // full spec via -topo
		{"-list"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                  // no topology
		{"-topo", "nosuch"}, // unknown topology
		{"-topo", "path", "-n", "4", "-source", "9"},                                     // bad source
		{"-topo", "path", "-n", "4", "-protocol", "x"},                                   // bad protocol
		{"-topo", "path", "-n", "4", "-engine", "x"},                                     // bad engine
		{"-topo", "path", "-n", "4", "-async", "x"},                                      // bad adversary
		{"-topo", "path", "-n", "4", "-model", "adversary:nosuch"},                       // unknown model family
		{"-topo", "path", "-n", "4", "-model", "warp"},                                   // unknown model kind
		{"-topo", "path", "-n", "4", "-model", "adversary:hold:extra=x"},                 // malformed model param
		{"-topo", "path", "-n", "4", "-model", "adversary:sync", "-async", "sync"},       // both flags
		{"-topo", "path", "-n", "4", "-model", "adversary:sync", "-protocol", "classic"}, // model needs amnesiac
		{"-topo", "path", "-n", "4", "-model", "schedule:static", "-timeline"},           // timeline needs sync
		{"-topo", "path", "-n", "4", "-model", "adversary:sync", "-predict"},             // predict needs sync
		{"-topo", "path", "-n", "4", "-origins", "0,9"},                                  // origin out of range
		{"-topo", "path", "-n", "4", "-origins", "a"},                                    // unparseable origin
		{"-topo", "path", "-n", "4", "-origins", ","},                                    // empty origin list
		{"-topo", "path", "-n", "4", "-origins", "0,1", "-predict"},                      // predict needs one origin
		{"-topo", "path", "-n", "4", "-protocol", "classic", "-predict"},
		{"-topo", "path", "-n", "4", "-analyze", "nosuch"},                      // unknown analysis
		{"-topo", "path", "-n", "4", "-analyze", "quantiles:metric=bogus"},      // bad analysis param
		{"-topo", "path", "-n", "4", "-origins", "0,3", "-analyze", "spantree"}, // single-origin analysis
		{"-graph", "nosuchfamily"},                                              // unknown family
		{"-graph", "grid:depth=4"},                                              // undeclared parameter
		{"-graph", "grid:rows=four"},                                            // malformed value
		{"-graph", "cycle:n=2"},                                                 // out-of-range value
		{"-graph", "cycle:n=8", "-topo", "cycle"},                               // -graph + -topo conflict
		{"-graph", "cycle:n=8", "-file", "nosuch.txt"},                          // -graph + -file conflict
		{"-graph", "petersen", "-source", "10"},                                 // origin outside graph
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestEveryProtocolOnEveryEngine drives the full registry × engine matrix
// through the CLI — the acceptance criterion that no per-protocol switch
// remains: every registered protocol name must work with every engine. The
// one documented exception is the bitset engine, which runs only set-rule
// protocols and must reject the rest up front with its typed error.
func TestEveryProtocolOnEveryEngine(t *testing.T) {
	for _, protocol := range sim.Protocols() {
		for _, engineName := range sim.EngineNames() {
			// faulty runs fault-free here (no -param loss): a lossy flood
			// may legitimately never terminate (the paper's E12 finding).
			args := []string{"-topo", "petersen", "-source", "0", "-protocol", protocol, "-engine", engineName}
			err := run(args)
			if err != nil && engineName == sim.Bitset.String() && errors.Is(err, bitengine.ErrUnsupportedProtocol) {
				continue
			}
			if err != nil {
				t.Errorf("run(%v): %v", args, err)
			}
		}
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("n 4\n0 1\n1 2\n2 3\n3 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-source", "2", "-render"}); err != nil {
		t.Fatal(err)
	}
}
