package main

import (
	"os"
	"path/filepath"
	"testing"

	"amnesiacflood/internal/sim"
)

func TestRunHappyPaths(t *testing.T) {
	cases := [][]string{
		{"-topo", "cycle", "-n", "6", "-source", "0"},
		{"-topo", "path", "-n", "4", "-source", "1", "-render", "-timeline"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-engine", "channels"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-protocol", "classic"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-json"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-async", "collision"},
		{"-topo", "cycle", "-n", "3", "-source", "1", "-async", "sync", "-render"},
		{"-topo", "cycle", "-n", "6", "-source", "0", "-async", "random", "-maxrounds", "256"},
		{"-topo", "cycle", "-n", "6", "-source", "0", "-async", "uniform"},
		{"-topo", "cycle", "-n", "12", "-origins", "0,3,6"},
		{"-topo", "cycle", "-n", "12", "-origins", "0, 6", "-protocol", "classic"},
		{"-topo", "cycle", "-n", "9", "-source", "2", "-predict"},
		{"-topo", "grid", "-n", "4", "-source", "5", "-predict"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                  // no topology
		{"-topo", "nosuch"}, // unknown topology
		{"-topo", "path", "-n", "4", "-source", "9"},                // bad source
		{"-topo", "path", "-n", "4", "-protocol", "x"},              // bad protocol
		{"-topo", "path", "-n", "4", "-engine", "x"},                // bad engine
		{"-topo", "path", "-n", "4", "-async", "x"},                 // bad adversary
		{"-topo", "path", "-n", "4", "-origins", "0,9"},             // origin out of range
		{"-topo", "path", "-n", "4", "-origins", "a"},               // unparseable origin
		{"-topo", "path", "-n", "4", "-origins", ","},               // empty origin list
		{"-topo", "path", "-n", "4", "-origins", "0,1", "-predict"}, // predict needs one origin
		{"-topo", "path", "-n", "4", "-protocol", "classic", "-predict"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestEveryProtocolOnEveryEngine drives the full registry × engine matrix
// through the CLI — the acceptance criterion that no per-protocol switch
// remains: every registered protocol name must work with every engine.
func TestEveryProtocolOnEveryEngine(t *testing.T) {
	for _, protocol := range sim.Protocols() {
		for _, engineName := range sim.EngineNames() {
			// faulty runs fault-free here (no -param loss): a lossy flood
			// may legitimately never terminate (the paper's E12 finding).
			args := []string{"-topo", "petersen", "-source", "0", "-protocol", protocol, "-engine", engineName}
			if err := run(args); err != nil {
				t.Errorf("run(%v): %v", args, err)
			}
		}
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("n 4\n0 1\n1 2\n2 3\n3 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-source", "2", "-render"}); err != nil {
		t.Fatal(err)
	}
}
