// Command afsimd is the amnesiac-flooding simulation daemon: the
// internal/service HTTP server behind flags, with graceful drain on
// SIGTERM/SIGINT.
//
//	afsimd -addr :8080 -workers 8 -queue 64
//
// Endpoints: POST /v1/run, POST /v1/sweep, GET /v1/registry, GET /healthz.
// See internal/service/README.md for the wire reference and a curl
// quickstart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"amnesiacflood/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "concurrent run slots (0 = min(GOMAXPROCS, 8))")
		queue       = flag.Int("queue", 64, "run queue depth across all tenants (full queue answers 429)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-run timeout")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "cap on request-chosen timeouts")
		pool        = flag.Int("pool", 64, "idle pooled-session cap")
		rate        = flag.Float64("tenant-rate", 64, "per-tenant sustained requests/second (0 disables)")
		burst       = flag.Int("tenant-burst", 128, "per-tenant token-bucket burst")
		inflight    = flag.Int("tenant-inflight", 16, "per-tenant in-flight run cap (0 = unlimited)")
		sweepCells  = flag.Int("sweep-cells", 4096, "max expanded cells per sweep")
		sweepWorker = flag.Int("sweep-workers", 4, "scenario workers inside one sweep")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight runs on shutdown")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "afsimd ", log.LstdFlags)
	srv := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		PoolSessions:   *pool,
		Tenant:         service.TenantLimits{Rate: *rate, Burst: *burst, MaxInFlight: *inflight},
		MaxSweepCells:  *sweepCells,
		SweepWorkers:   *sweepWorker,
		Logger:         logger,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	// Drain first (stop admitting, finish in-flight streams), then close
	// the listener — so no stream is cut mid-run.
	logger.Printf("signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain: %v (forcing shutdown)", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "afsimd: drained cleanly")
}
