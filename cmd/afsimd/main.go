// Command afsimd is the amnesiac-flooding simulation daemon: the
// internal/service HTTP server behind flags, with graceful drain on
// SIGTERM/SIGINT.
//
//	afsimd -addr :8080 -workers 8 -queue 64
//
// Endpoints: POST /v1/run, POST /v1/sweep, GET /v1/registry, GET /healthz,
// GET /metrics (Prometheus text). See internal/service/README.md for the
// wire reference and a curl quickstart; -pprof serves net/http/pprof on a
// separate listener for live profiling.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"amnesiacflood/internal/service"
)

// newLogger builds the daemon's structured stderr logger at the named level
// (debug/info/warn/error).
func newLogger(level string) (*slog.Logger, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: l})), nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "concurrent run slots (0 = min(GOMAXPROCS, 8))")
		queue       = flag.Int("queue", 64, "run queue depth across all tenants (full queue answers 429)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-run timeout")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "cap on request-chosen timeouts")
		pool        = flag.Int("pool", 64, "idle pooled-session cap")
		rate        = flag.Float64("tenant-rate", 64, "per-tenant sustained requests/second (0 disables)")
		burst       = flag.Int("tenant-burst", 128, "per-tenant token-bucket burst")
		inflight    = flag.Int("tenant-inflight", 16, "per-tenant in-flight run cap (0 = unlimited)")
		sweepCells  = flag.Int("sweep-cells", 4096, "max expanded cells per sweep")
		sweepWorker = flag.Int("sweep-workers", 4, "scenario workers inside one sweep")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight runs on shutdown")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, or error")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "afsimd:", err)
		os.Exit(2)
	}
	srv := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		PoolSessions:   *pool,
		Tenant:         service.TenantLimits{Rate: *rate, Burst: *burst, MaxInFlight: *inflight},
		MaxSweepCells:  *sweepCells,
		SweepWorkers:   *sweepWorker,
		Logger:         logger,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// Profiling stays off the service listener: the service mux never
		// grows debug handlers, and the pprof port can stay firewalled.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain first (stop admitting, finish in-flight streams), then close
	// the listener — so no stream is cut mid-run.
	logger.Info("signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain incomplete, forcing shutdown", "err", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	fmt.Fprintln(os.Stderr, "afsimd: drained cleanly")
}
