# Development entry points. CI runs the same steps (see
# .github/workflows/ci.yml); `make bench` records the perf trajectory
# across PRs into a dated JSON file.

DATE := $(shell date +%Y-%m-%d)
BENCHFILE := BENCH_$(DATE).json

.PHONY: all build test vet race fuzz bench bench-smoke

all: vet build test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/engine/... ./internal/core

fuzz:
	go test -fuzz FuzzEngineEquivalence -fuzztime 30s ./internal/engine/fastengine

# bench runs the full benchmark suite once and archives it as structured
# JSON (one {"name", "ns_per_op", "allocs_per_op", metrics...} object per
# benchmark) so successive PRs can diff the trajectory. The raw output goes
# through a temp file so a failing benchmark fails the target instead of
# being swallowed by the pipe.
bench:
	go test -run '^$$' -bench . -benchmem -benchtime 1x ./... > $(BENCHFILE).raw
	./scripts/benchjson.sh < $(BENCHFILE).raw > $(BENCHFILE)
	@rm -f $(BENCHFILE).raw
	@echo wrote $(BENCHFILE)

bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...
