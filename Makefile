# Development entry points. CI runs the same steps (see
# .github/workflows/ci.yml); `make bench` records the perf trajectory
# across PRs into a dated JSON file.

DATE := $(shell date +%Y-%m-%d)
BENCHFILE := BENCH_$(DATE).json

# Archived benchmarks run each case for a fixed wall-clock budget instead of
# a single iteration: `-benchtime 1x` recorded one-sample numbers whose
# run-to-run noise drowned any real perf movement (see the iterations: 1
# rows in BENCH_2026-07-28.json). 50ms gives the fast cases (tens of µs)
# thousands of averaged iterations; only the multi-second suite benchmarks
# stay single-shot. Override per invocation: make bench BENCHTIME=200ms.
BENCHTIME ?= 50ms
BENCHCOUNT ?= 1

.PHONY: all build test vet race fuzz bench bench-smoke suite suite-shard serve smoke-service

all: vet build test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/engine/... ./internal/core ./internal/obs ./internal/service ./internal/shard

fuzz:
	go test -fuzz FuzzEngineEquivalence -fuzztime 30s ./internal/engine/fastengine

# bench runs the full benchmark suite and archives it as structured JSON
# (one {"name", "ns_per_op", "allocs_per_op", metrics...} object per
# benchmark) so successive PRs can diff the trajectory. The raw output goes
# through a temp file so a failing benchmark fails the target instead of
# being swallowed by the pipe.
bench:
	go test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./... > $(BENCHFILE).raw
	./scripts/benchjson.sh < $(BENCHFILE).raw > $(BENCHFILE)
	@rm -f $(BENCHFILE).raw
	@echo wrote $(BENCHFILE)

# bench-smoke only proves every benchmark still runs; 1x is fine for that.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...

# serve boots the simulation daemon locally (see internal/service/README.md
# for the endpoints and a curl quickstart).
serve:
	go run ./cmd/afsimd -addr :8080

# smoke-service boots afsimd, exercises /healthz, /v1/registry, and a
# streamed /v1/run, then SIGTERMs it and asserts a clean drain.
smoke-service:
	./scripts/servicesmoke.sh

# suite runs a tiny scenario matrix (3 graph families x 2 protocols x 3
# engines including bitset, 2 seeds) through the JSONL sink over an
# 8-worker pool — the
# end-to-end smoke test of the graph-spec registry, the scenario layer, and
# the afbench suite mode. The same matrix then reruns (race-enabled) under
# deterministic chaos injection — 15% of runs hit an injected error, panic,
# or stall and are retried with backoff — and scripts/suitediff.sh asserts
# the two outputs are identical after order-normalisation: the differential
# chaos gate. Two further matrices exercise the execution-model axis (sync,
# asynchronous adversaries, dynamic schedules; amnesiac only, since
# non-sync models run only that protocol) and the analyses axis (streaming
# coverage+termination+bipartite metrics flattened into CSV columns). CI
# runs all of it on every push, and `go test ./internal/scenario` asserts
# that metric columns are identical under parallel and sequential execution.
SUITE_MATRIX := -graphs "grid:rows=4,cols=5;cycle:n=9;prefattach:n=24,m=2" \
	  -protocols amnesiac,classic \
	  -engines sequential,parallel,bitset \
	  -seeds 1,2 -workers 8 -format jsonl

# suite-shard is the distributed face of the same gate: a coordinator
# (cmd/afshard) partitions the matrix into lease groups, two external worker
# processes execute them under chaos injection, one worker is SIGKILLed while
# holding a lease (its group is stolen after the TTL), and
# scripts/suitediff.sh asserts the merged gzip output is byte-identical to a
# single-process afbench run of the same matrix.
suite-shard:
	./scripts/shardsmoke.sh

suite:
	go run ./cmd/afbench -suite $(SUITE_MATRIX) -out /tmp/suite_clean.jsonl
	go run -race ./cmd/afbench -suite $(SUITE_MATRIX) \
	  -chaos "chaos:rate=0.15,kinds=err|panic|stall,seed=7,stall=100ms" \
	  -retries 6 -backoff 5ms -timeout 60s \
	  -out /tmp/suite_chaos.jsonl
	./scripts/suitediff.sh /tmp/suite_clean.jsonl /tmp/suite_chaos.jsonl
	@rm -f /tmp/suite_clean.jsonl /tmp/suite_chaos.jsonl
	go run ./cmd/afbench -suite \
	  -graphs "cycle:n=9;grid:rows=4,cols=5" \
	  -models "sync;adversary:collision;adversary:uniform:extra=2;schedule:blink:period=2,phase=1;schedule:alternating" \
	  -schedules static \
	  -seeds 1,2 -workers 8 -maxrounds 4096 -format jsonl
	go run ./cmd/afbench -suite \
	  -graphs "grid:rows=4,cols=5;cycle:n=9;prefattach:n=24,m=2" \
	  -models "sync;schedule:static" \
	  -analyses "coverage;termination;bipartite;quantiles:metric=messages" \
	  -seeds 1,2 -workers 8 -format csv
