package sim_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/bitengine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"

	// Self-registering protocols under test.
	_ "amnesiacflood/internal/classic"
	_ "amnesiacflood/internal/core"
	_ "amnesiacflood/internal/detect"
	_ "amnesiacflood/internal/faults"
	_ "amnesiacflood/internal/multiflood"
	_ "amnesiacflood/internal/spantree"
)

var allEngines = []sim.EngineKind{sim.Sequential, sim.Channels, sim.Fast, sim.Parallel}

func TestProtocolsRegistered(t *testing.T) {
	got := sim.Protocols()
	for _, want := range []string{"amnesiac", "classic", "detect", "faulty", "multiflood", "spantree"} {
		found := false
		for _, name := range got {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("protocol %q not registered (have %v)", want, got)
		}
	}
}

func TestParseEngine(t *testing.T) {
	for name, want := range map[string]sim.EngineKind{
		"sequential": sim.Sequential, "seq": sim.Sequential,
		"channels": sim.Channels, "chan": sim.Channels,
		"fast": sim.Fast, "parallel": sim.Parallel,
		"bitset": sim.Bitset, "bit": sim.Bitset,
		" Fast ": sim.Fast,
	} {
		got, err := sim.ParseEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := sim.ParseEngine("warp"); !errors.Is(err, sim.ErrUnknownEngine) {
		t.Errorf("ParseEngine(warp) err = %v, want ErrUnknownEngine", err)
	}
}

func TestUnknownProtocolAndEngineErrors(t *testing.T) {
	g := gen.Cycle(6)
	if _, err := sim.New(g, sim.WithProtocol("nosuch")); !errors.Is(err, sim.ErrUnknownProtocol) {
		t.Errorf("unknown protocol err = %v, want ErrUnknownProtocol", err)
	}
	if _, err := sim.New(g, sim.WithEngine(sim.EngineKind(99))); !errors.Is(err, sim.ErrUnknownEngine) {
		t.Errorf("unknown engine err = %v, want ErrUnknownEngine", err)
	}
	if _, err := sim.New(nil); err == nil {
		t.Error("nil graph accepted")
	}
	// Factory validation propagates: the detect probe rejects multi-origin.
	if _, err := sim.New(g, sim.WithProtocol("detect"), sim.WithOrigins(0, 3)); err == nil {
		t.Error("multi-origin detect probe accepted")
	}
	// Bad protocol parameters propagate.
	if _, err := sim.New(g, sim.WithProtocol("faulty"), sim.WithParam("loss", "nope")); err == nil {
		t.Error("unparseable loss parameter accepted")
	}
}

// TestEveryProtocolOnEveryEngine is the registry acceptance matrix: each
// registered protocol must run on each of the four engines and produce
// byte-identical traces across them.
func TestEveryProtocolOnEveryEngine(t *testing.T) {
	g := gen.Petersen()
	for _, name := range sim.Protocols() {
		t.Run(name, func(t *testing.T) {
			var want engine.Result
			for i, kind := range allEngines {
				sess, err := sim.New(g,
					sim.WithProtocol(name),
					sim.WithEngine(kind),
					sim.WithOrigins(0),
					sim.WithSeed(7),
					sim.WithTrace(true),
				)
				if err != nil {
					t.Fatalf("New(%s, %s): %v", name, kind, err)
				}
				res, err := sess.Run(context.Background())
				if err != nil {
					t.Fatalf("%s on %s: %v", name, kind, err)
				}
				if res.Engine != kind.String() {
					t.Errorf("%s on %s: Engine = %q", name, kind, res.Engine)
				}
				if !res.Terminated {
					t.Errorf("%s on %s: did not terminate", name, kind)
				}
				if i == 0 {
					want = res
					continue
				}
				if !engine.EqualTraces(want.Trace, res.Trace) {
					t.Errorf("%s: %s trace differs from %s", name, kind, allEngines[0])
				}
				if res.Rounds != want.Rounds || res.TotalMessages != want.TotalMessages {
					t.Errorf("%s: %s summary (%d rounds, %d msgs) differs from %s (%d, %d)",
						name, kind, res.Rounds, res.TotalMessages, allEngines[0], want.Rounds, want.TotalMessages)
				}
			}
		})
	}
}

// TestBitsetEngineSupport covers the fifth engine's narrower contract: the
// bitset-rule protocols (amnesiac, classic, and the probes renamed from
// amnesiac floods) run with traces byte-identical to the sequential engine;
// protocols with bespoke per-node behaviour are rejected at New, with the
// typed bitengine error.
func TestBitsetEngineSupport(t *testing.T) {
	g := gen.Petersen()
	for _, name := range []string{"amnesiac", "classic", "detect", "spantree"} {
		want := runOn(t, g, name, sim.Sequential)
		got := runOn(t, g, name, sim.Bitset)
		if got.Engine != "bitset" {
			t.Errorf("%s: Engine = %q, want bitset", name, got.Engine)
		}
		if !engine.EqualTraces(want.Trace, got.Trace) {
			t.Errorf("%s: bitset trace differs from sequential", name)
		}
		if got.Rounds != want.Rounds || got.TotalMessages != want.TotalMessages || !got.Terminated {
			t.Errorf("%s: bitset summary (%d rounds, %d msgs, terminated=%t) differs from (%d, %d, true)",
				name, got.Rounds, got.TotalMessages, got.Terminated, want.Rounds, want.TotalMessages)
		}
	}
	for _, name := range []string{"faulty", "multiflood"} {
		if _, err := sim.New(g, sim.WithProtocol(name), sim.WithEngine(sim.Bitset), sim.WithSeed(7)); !errors.Is(err, bitengine.ErrUnsupportedProtocol) {
			t.Errorf("New(%s, bitset) err = %v, want ErrUnsupportedProtocol", name, err)
		}
	}
}

// runOn is the shared single-run helper of the bitset support test.
func runOn(t *testing.T, g *graph.Graph, proto string, kind sim.EngineKind) engine.Result {
	t.Helper()
	sess, err := sim.New(g,
		sim.WithProtocol(proto),
		sim.WithEngine(kind),
		sim.WithOrigins(0),
		sim.WithSeed(7),
		sim.WithTrace(true),
	)
	if err != nil {
		t.Fatalf("New(%s, %s): %v", proto, kind, err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatalf("%s on %s: %v", proto, kind, err)
	}
	return res
}

func TestSessionReuseIsDeterministic(t *testing.T) {
	g := gen.Grid(8, 8)
	sess, err := sim.New(g, sim.WithEngine(sim.Fast), sim.WithOrigins(5), sim.WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !engine.EqualTraces(first.Trace, again.Trace) {
			t.Fatalf("rerun %d on a reused session produced a different trace", i)
		}
	}
	if first.WallTime <= 0 {
		t.Error("WallTime not populated")
	}
}

func TestRunBatchMatchesIndividualRuns(t *testing.T) {
	g := gen.Grid(6, 6)
	sources := make([]graph.NodeID, g.N())
	for i := range sources {
		sources[i] = graph.NodeID(i)
	}
	for _, kind := range []sim.EngineKind{sim.Sequential, sim.Fast, sim.Parallel} {
		sess, err := sim.New(g, sim.WithEngine(kind), sim.WithTrace(true))
		if err != nil {
			t.Fatal(err)
		}
		batch, err := sess.RunBatch(context.Background(), sources)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(sources) {
			t.Fatalf("batch returned %d results for %d sources", len(batch), len(sources))
		}
		for i, src := range sources {
			solo, err := sim.New(g, sim.WithEngine(sim.Sequential), sim.WithOrigins(src), sim.WithTrace(true))
			if err != nil {
				t.Fatal(err)
			}
			want, err := solo.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !engine.EqualTraces(want.Trace, batch[i].Trace) {
				t.Fatalf("%s: batch run from %d differs from solo run", kind, src)
			}
		}
	}
}

func TestRunBatchRejectsProtocolInstances(t *testing.T) {
	g := gen.Cycle(4)
	sess, err := sim.New(g, sim.WithProtocolInstance(silentProto{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunBatch(context.Background(), []graph.NodeID{0}); err == nil {
		t.Fatal("RunBatch accepted a fixed protocol instance")
	}
}

type silentProto struct{}

func (silentProto) Name() string             { return "silent" }
func (silentProto) Bootstrap() []engine.Send { return nil }
func (silentProto) NewNode(graph.NodeID) engine.NodeAutomaton {
	return func(int, []graph.NodeID) []graph.NodeID { return nil }
}

// runOn builds a session for the given engine on a cycle long enough that
// every run lasts many rounds.
func stopSession(t *testing.T, kind sim.EngineKind, obs engine.RoundObserver) (engine.Result, error) {
	t.Helper()
	g := gen.Cycle(64)
	sess, err := sim.New(g,
		sim.WithEngine(kind),
		sim.WithOrigins(0),
		sim.WithTrace(true),
		sim.WithObserver(obs),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sess.Run(context.Background())
}

// TestObserverStopOnAllEngines: a stop after round 3 must end every engine
// cleanly with Stopped set and exactly three rounds observed.
func TestObserverStopOnAllEngines(t *testing.T) {
	for _, kind := range allEngines {
		t.Run(kind.String(), func(t *testing.T) {
			res, err := stopSession(t, kind, &sim.RoundBudget{Budget: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Stopped || res.Terminated {
				t.Fatalf("stopped=%t terminated=%t, want true/false", res.Stopped, res.Terminated)
			}
			if res.Rounds != 3 || len(res.Trace) != 3 {
				t.Fatalf("rounds=%d trace=%d, want 3/3", res.Rounds, len(res.Trace))
			}
		})
	}
}

// TestObserverErrorOnAllEngines: an observer error must abort every engine
// with the error wrapped.
func TestObserverErrorOnAllEngines(t *testing.T) {
	sentinel := errors.New("observer boom")
	for _, kind := range allEngines {
		t.Run(kind.String(), func(t *testing.T) {
			calls := 0
			_, err := stopSession(t, kind, engine.ObserverFunc(func(engine.RoundRecord) (bool, error) {
				calls++
				if calls == 2 {
					return false, sentinel
				}
				return false, nil
			}))
			if !errors.Is(err, sentinel) {
				t.Fatalf("err = %v, want wrapped sentinel", err)
			}
			if calls != 2 {
				t.Fatalf("observer called %d times after erroring at call 2", calls)
			}
		})
	}
}

// TestEarlyStopTracesArePrefixes is the differential guarantee: for every
// engine, the trace of a run stopped after k rounds is byte-identical to
// the first k rounds of the full trace.
func TestEarlyStopTracesArePrefixes(t *testing.T) {
	g := gen.Cycle(33) // non-bipartite: long run, messages overlap
	full, err := func() (engine.Result, error) {
		sess, err := sim.New(g, sim.WithOrigins(0), sim.WithTrace(true))
		if err != nil {
			t.Fatal(err)
		}
		return sess.Run(context.Background())
	}()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allEngines {
		for _, k := range []int{1, 2, 5, full.Rounds - 1} {
			sess, err := sim.New(g,
				sim.WithEngine(kind),
				sim.WithOrigins(0),
				sim.WithTrace(true),
				sim.WithObserver(&sim.RoundBudget{Budget: k}),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sess.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Stopped || res.Rounds != k {
				t.Fatalf("%s budget %d: stopped=%t rounds=%d", kind, k, res.Stopped, res.Rounds)
			}
			if !engine.EqualTraces(res.Trace, full.Trace[:k]) {
				t.Fatalf("%s: stopped trace at k=%d is not a prefix of the full trace", kind, k)
			}
		}
	}
}

// TestCancellationMidRunOnAllEngines: cancelling the context from inside an
// observer must abort every engine at the next round boundary with the
// context's error.
func TestCancellationMidRunOnAllEngines(t *testing.T) {
	for _, kind := range allEngines {
		t.Run(kind.String(), func(t *testing.T) {
			g := gen.Cycle(64)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			rounds := 0
			sess, err := sim.New(g,
				sim.WithEngine(kind),
				sim.WithOrigins(0),
				sim.WithObserver(engine.ObserverFunc(func(engine.RoundRecord) (bool, error) {
					rounds++
					if rounds == 2 {
						cancel()
					}
					return false, nil
				})),
			)
			if err != nil {
				t.Fatal(err)
			}
			_, err = sess.Run(ctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if rounds != 2 {
				t.Fatalf("observer saw %d rounds after cancel at round 2", rounds)
			}
		})
	}
}

// TestCancellationBeforeRun: a pre-cancelled context aborts immediately on
// every engine, with no rounds executed.
func TestCancellationBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range allEngines {
		sess, err := sim.New(gen.Cycle(16), sim.WithEngine(kind), sim.WithOrigins(0))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", kind, err)
		}
		if res.Rounds != 0 {
			t.Fatalf("%s: %d rounds ran under a cancelled context", kind, res.Rounds)
		}
	}
}

// TestRoundBudgetSurvivesSessionReuse: the budget observer is stateless,
// so every run of a reused session (and every source of a batch) gets the
// full budget, not the first run's leftovers.
func TestRoundBudgetSurvivesSessionReuse(t *testing.T) {
	g := gen.Cycle(64)
	sess, err := sim.New(g,
		sim.WithOrigins(0),
		sim.WithObserver(&sim.RoundBudget{Budget: 3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stopped || res.Rounds != 3 {
			t.Fatalf("run %d: stopped=%t rounds=%d, want true/3", i, res.Stopped, res.Rounds)
		}
	}
	batch, err := sess.RunBatch(context.Background(), []graph.NodeID{0, 7, 21})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range batch {
		if !res.Stopped || res.Rounds != 3 {
			t.Fatalf("batch run %d: stopped=%t rounds=%d, want true/3", i, res.Stopped, res.Rounds)
		}
	}
}

func TestMultiObserverFansOutAndAggregatesStop(t *testing.T) {
	recorder := &sim.TraceRecorder{}
	budget := &sim.RoundBudget{Budget: 2}
	res, err := stopSession(t, sim.Sequential, sim.MultiObserver{recorder, budget, nil})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Rounds != 2 {
		t.Fatalf("stopped=%t rounds=%d, want true/2", res.Stopped, res.Rounds)
	}
	if len(recorder.Trace) != 2 {
		t.Fatalf("recorder saw %d rounds, want 2 (must observe the stopping round)", len(recorder.Trace))
	}
	if !engine.EqualTraces(recorder.Trace, res.Trace) {
		t.Fatal("recorder trace differs from the engine trace")
	}
	recorder.Reset()
	if len(recorder.Trace) != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}

func TestMultiObserverPropagatesFirstError(t *testing.T) {
	sentinel := errors.New("late observer boom")
	called := false
	obs := sim.MultiObserver{
		engine.ObserverFunc(func(engine.RoundRecord) (bool, error) { return false, sentinel }),
		engine.ObserverFunc(func(engine.RoundRecord) (bool, error) { called = true; return false, nil }),
	}
	_, err := stopSession(t, sim.Sequential, obs)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if called {
		t.Fatal("observer after the erroring one was still invoked")
	}
}

func TestRenamePreservesDenseFastPath(t *testing.T) {
	g := gen.Grid(5, 5)
	sess, err := sim.New(g, sim.WithProtocol("spantree"), sim.WithEngine(sim.Fast), sim.WithOrigins(0), sim.WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.Protocol().(engine.DenseProtocol); !ok {
		t.Fatal("renamed probe lost the DenseProtocol fast path")
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "spantree-probe" {
		t.Fatalf("protocol name = %q, want spantree-probe", res.Protocol)
	}
	ref, err := sim.New(g, sim.WithOrigins(0), sim.WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !engine.EqualTraces(want.Trace, res.Trace) {
		t.Fatal("renamed probe trace differs from plain amnesiac flood")
	}
}

func TestResultJSONCarriesEngineAttribution(t *testing.T) {
	sess, err := sim.New(gen.Path(4), sim.WithEngine(sim.Fast), sim.WithOrigins(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := fmt.Sprintf("%+v", res)
	if res.Engine != "fast" || !strings.Contains(out, "fast") {
		t.Fatalf("engine attribution missing: %s", out)
	}
	if res.WallTime <= 0 {
		t.Fatal("WallTime not populated")
	}
}

func TestErrMaxRoundsStillPropagates(t *testing.T) {
	for _, kind := range allEngines {
		sess, err := sim.New(gen.Cycle(33), sim.WithEngine(kind), sim.WithOrigins(0), sim.WithMaxRounds(3))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(context.Background()); !errors.Is(err, engine.ErrMaxRounds) {
			t.Fatalf("%s: err = %v, want ErrMaxRounds", kind, err)
		}
	}
}

func TestObserverRecordsMatchTraceCopies(t *testing.T) {
	// The observer sees engine-internal slices; TraceRecorder's copies must
	// equal the engine's own Options.Trace copies for every engine.
	for _, kind := range allEngines {
		recorder := &sim.TraceRecorder{}
		sess, err := sim.New(gen.Wheel(9),
			sim.WithEngine(kind),
			sim.WithOrigins(2),
			sim.WithTrace(true),
			sim.WithObserver(recorder),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !engine.EqualTraces(res.Trace, recorder.Trace) {
			t.Fatalf("%s: recorder trace differs from Options.Trace", kind)
		}
	}
}

func TestReflectDeepEqualBatchReuse(t *testing.T) {
	// Two batches on the same session must agree entirely (arena reuse must
	// not leak state between runs).
	g := gen.Lollipop(4, 20)
	sources := []graph.NodeID{0, 5, 10, 15}
	sess, err := sim.New(g, sim.WithEngine(sim.Parallel), sim.WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.RunBatch(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sess.RunBatch(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		first[i].WallTime, second[i].WallTime = 0, 0
		first[i].Phases, second[i].Phases = engine.PhaseTimings{}, engine.PhaseTimings{}
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Fatalf("batch rerun differs at source %d", sources[i])
		}
	}
}
