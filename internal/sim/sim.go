// Package sim is the public-facing façade of the simulator: one composable,
// cancellable, registry-driven entry point to every protocol and every
// synchronous engine in the repository.
//
// The paper's central claim (Hussak & Trehan, PODC 2019) is that one
// memoryless protocol runs identically on any synchronous substrate.  This
// package makes the code match the claim: protocols self-register by name
// (amnesiac, classic, multiflood, detect, spantree, faulty, ...), engines
// are values of one EngineKind enum, and a Session composed with functional
// options runs any protocol × engine pair:
//
//	sess, err := sim.New(g,
//	        sim.WithProtocol("amnesiac"),
//	        sim.WithEngine(sim.Parallel),
//	        sim.WithOrigins(0),
//	        sim.WithMaxRounds(1024),
//	        sim.WithObserver(obs))
//	res, err := sess.Run(ctx)
//
// The execution model is a fourth registry-driven axis (internal/model):
// WithModel("adversary:collision") runs the paper's Section 4 asynchronous
// variant under a delay adversary, WithModel("schedule:blink:period=2")
// floods a dynamic network under an edge schedule, and the default "sync"
// is the synchronous model above. Non-sync runs execute on dedicated
// session-owned model engines and can end in a certified-non-termination
// verdict (Result.Outcome, Result.Certificate) as well as termination.
//
// Measurement is a fifth registry-driven axis (internal/analysis):
// WithAnalysis("coverage", "termination", "bipartite", ...) attaches
// streaming analyses that fold each round into their metrics as it happens
// — no trace retained, no post-hoc re-walk — and merge them into
// Result.Metrics under "<family>.<metric>" keys, with typed artifacts
// (receive counts, spanning trees, odd-cycle witnesses) on the Session
// accessors.
//
// All engines accept a context.Context (cancellation checked per round)
// and a stop-capable engine.RoundObserver, so runs can be bounded,
// cancelled, or ended early the moment an observer has seen enough — the
// building blocks any serving layer needs.  RunBatch amortises engine
// arenas across sweep-style workloads.
package sim

import (
	"errors"
	"fmt"
	"strings"
)

// EngineKind selects which synchronous engine executes a run.
type EngineKind int

// Available engines. All five produce byte-identical traces on every
// protocol they support (asserted by experiment E10, the fastengine
// differential tests, and the bitengine differential tests); the first four
// run every protocol, Bitset only protocols declaring an
// engine.BitsetProtocol rule (amnesiac, classic, and the probes built on
// them — validated at Session construction).
const (
	// Sequential is the deterministic single-goroutine reference engine.
	Sequential EngineKind = iota + 1
	// Channels is the goroutine-per-node, channel-per-edge engine.
	Channels
	// Fast is the zero-allocation CSR engine (fastengine package).
	Fast
	// Parallel is the fast engine with GOMAXPROCS sharded delivery workers.
	Parallel
	// Bitset is the word-parallel frontier engine (bitengine package):
	// rounds are OR/AND-NOT sweeps over edge-slot bitsets with degree-sorted
	// relabeling, for million-node graphs.
	Bitset
)

// ErrUnknownEngine is wrapped into errors for engine kinds or names outside
// the registered set, matchable with errors.Is.
var ErrUnknownEngine = errors.New("unknown engine")

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case Channels:
		return "channels"
	case Fast:
		return "fast"
	case Parallel:
		return "parallel"
	case Bitset:
		return "bitset"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// valid reports whether k is one of the five defined engines.
func (k EngineKind) valid() bool {
	return k >= Sequential && k <= Bitset
}

// EngineNames lists the accepted ParseEngine spellings, for flag usage
// strings.
func EngineNames() []string {
	return []string{"sequential", "channels", "fast", "parallel", "bitset"}
}

// ParseEngine resolves an engine name (as accepted by the -engine CLI
// flags) into its kind.
func ParseEngine(name string) (EngineKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "sequential", "seq":
		return Sequential, nil
	case "channels", "chan":
		return Channels, nil
	case "fast":
		return Fast, nil
	case "parallel", "fastparallel":
		return Parallel, nil
	case "bitset", "bit":
		return Bitset, nil
	default:
		return 0, fmt.Errorf("sim: %w %q (want one of %s)", ErrUnknownEngine, name, strings.Join(EngineNames(), ", "))
	}
}
