package sim_test

import (
	"context"
	"reflect"
	"testing"

	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
)

// TestAnalysisOnEveryEngine: the engines are trace-equivalent, so the
// streamed analysis metrics must be identical on all four synchronous
// substrates.
func TestAnalysisOnEveryEngine(t *testing.T) {
	g := gen.MustBuild("randnonbipartite:n=48,p=0.07", 3)
	var want map[string]float64
	for _, kind := range allEngines {
		sess, err := sim.New(g,
			sim.WithProtocol("amnesiac"),
			sim.WithEngine(kind),
			sim.WithOrigins(0),
			sim.WithAnalysis("coverage", "termination", "bipartite", "spantree"),
			sim.WithTrace(true), // full run: metrics must cover every round on every engine
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Metrics) == 0 {
			t.Fatalf("%v: no metrics", kind)
		}
		if want == nil {
			want = res.Metrics
			continue
		}
		if !reflect.DeepEqual(res.Metrics, want) {
			t.Fatalf("%v: metrics diverge:\n%v\nvs sequential\n%v", kind, res.Metrics, want)
		}
	}
}

// TestAnalysisStopGating: a stop-capable analysis ends the run early when
// it is the only consumer, but a requested trace disables analysis-driven
// stopping so the trace stays complete; a never-ready analysis in the set
// also holds the run open.
func TestAnalysisStopGating(t *testing.T) {
	g := gen.MustBuild("cycle:n=15", 1) // odd cycle: witness well before natural death
	full, err := sim.New(g, sim.WithProtocol("amnesiac"), sim.WithOrigins(0))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	probe, err := sim.New(g, sim.WithProtocol("amnesiac"), sim.WithOrigins(0), sim.WithAnalysis("bipartite"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := probe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Rounds >= ref.Rounds {
		t.Fatalf("bipartite-only run did not stop early: rounds=%d (full %d), stopped=%t",
			res.Rounds, ref.Rounds, res.Stopped)
	}

	traced, err := sim.New(g, sim.WithProtocol("amnesiac"), sim.WithOrigins(0),
		sim.WithAnalysis("bipartite"), sim.WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	tres, err := traced.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tres.Stopped || tres.Rounds != ref.Rounds || len(tres.Trace) != ref.Rounds {
		t.Fatalf("trace run was truncated: rounds=%d, trace=%d, stopped=%t",
			tres.Rounds, len(tres.Trace), tres.Stopped)
	}

	held, err := sim.New(g, sim.WithProtocol("amnesiac"), sim.WithOrigins(0),
		sim.WithAnalysis("bipartite", "coverage")) // coverage is never ready
	if err != nil {
		t.Fatal(err)
	}
	hres, err := held.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hres.Stopped || hres.Rounds != ref.Rounds {
		t.Fatalf("coverage did not hold the run open: rounds=%d, stopped=%t", hres.Rounds, hres.Stopped)
	}
	// Both variants agree on the verdict.
	for _, m := range []map[string]float64{res.Metrics, tres.Metrics, hres.Metrics} {
		if m["bipartite.bipartite"] != 0 {
			t.Fatalf("odd cycle judged bipartite: %v", m)
		}
	}
}

// TestAnalysisErrors: bad specs fail at New; origin-arity violations fail
// at Run.
func TestAnalysisErrors(t *testing.T) {
	g := gen.MustBuild("path:n=4", 1)
	if _, err := sim.New(g, sim.WithAnalysis("nosuch")); err == nil {
		t.Fatal("unknown analysis accepted")
	}
	if _, err := sim.New(g, sim.WithAnalysis("quantiles:metric=bogus")); err == nil {
		t.Fatal("bad analysis parameter accepted")
	}
	sess, err := sim.New(g, sim.WithProtocol("amnesiac"),
		sim.WithOrigins(0, 2), sim.WithAnalysis("bipartite"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err == nil {
		t.Fatal("bipartite analysis accepted two origins")
	}
}

// TestAnalysisOnModelEngines: analyses observe the model engines' round
// streams too; the bound metrics stay sync-only but the raw columns are
// populated.
func TestAnalysisOnModelEngines(t *testing.T) {
	g := gen.MustBuild("grid:rows=4,cols=4", 1)
	sess, err := sim.New(g, sim.WithModel("schedule:static"),
		sim.WithAnalysis("coverage", "termination"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["coverage.covered"] != 1 {
		t.Fatalf("static schedule left the grid uncovered: %v", res.Metrics)
	}
	if int(res.Metrics["termination.rounds"]) != res.Rounds {
		t.Fatalf("termination.rounds %v != %d", res.Metrics["termination.rounds"], res.Rounds)
	}
	if _, bound := res.Metrics["termination.boundUpper"]; bound {
		t.Fatal("bound metrics emitted for a non-sync model")
	}
}

// TestBipartiteVerdictSyncOnly: a delay adversary manufactures double
// receipts on bipartite graphs; the bipartite analysis must not turn them
// into a verdict (only the raw witness count is reported for non-sync
// models), and the delayed rounds must not trip the sync cross-check.
func TestBipartiteVerdictSyncOnly(t *testing.T) {
	for _, spec := range []string{"adversary:collision", "adversary:uniform:extra=2"} {
		sess, err := sim.New(gen.MustBuild("cycle:n=6", 1), sim.WithModel(spec),
			sim.WithMaxRounds(4096), sim.WithAnalysis("bipartite"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if _, ok := res.Metrics["bipartite.bipartite"]; ok {
			t.Fatalf("%s: verdict emitted for a non-sync model: %v", spec, res.Metrics)
		}
		if _, ok := res.Metrics["bipartite.lateRounds"]; ok {
			t.Fatalf("%s: lateRounds emitted for a non-sync model", spec)
		}
	}
}

// TestSpanTreeDepthUnderDelay: tree depth is parent-depth+1, not the
// delivery round, so delay adversaries stretch rounds without corrupting
// the tree artifact.
func TestSpanTreeDepthUnderDelay(t *testing.T) {
	g := gen.MustBuild("path:n=4", 1)
	sess, err := sim.New(g, sim.WithModel("adversary:uniform:extra=2"),
		sim.WithAnalysis("spantree"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := int(res.Metrics["spantree.depth"]); got != 3 {
		t.Fatalf("depth %d under delay, want the tree depth 3", got)
	}
	tree, ok := sess.SpanTree()
	if !ok {
		t.Fatal("no tree")
	}
	if err := tree.Validate(g); err != nil {
		t.Fatal(err)
	}
}
