package sim_test

import (
	"context"
	"testing"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/model"
	"amnesiacflood/internal/sim"

	// Model families under test self-register on import.
	_ "amnesiacflood/internal/async"
	_ "amnesiacflood/internal/dynamic"
)

// TestWithModelSyncIsDefault: the default session runs the sync model and
// stamps Result.Model and Result.Outcome.
func TestWithModelSyncIsDefault(t *testing.T) {
	sess, err := sim.New(gen.Cycle(6))
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Model().IsSync() {
		t.Fatalf("default model = %v, want sync", sess.Model())
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "sync" || res.Outcome != engine.OutcomeTerminated {
		t.Fatalf("res.Model=%q res.Outcome=%v", res.Model, res.Outcome)
	}
}

// TestWithModelAdversary: a non-sync model runs on its own substrate, can
// certify non-termination, and reports the canonical spec.
func TestWithModelAdversary(t *testing.T) {
	sess, err := sim.New(gen.Cycle(3),
		sim.WithModel("Adversary:Collision"), // canonicalises
		sim.WithOrigins(1),
		sim.WithTrace(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Model().String() != "adversary:collision" {
		t.Fatalf("model = %q", sess.Model().String())
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != engine.OutcomeCycle || res.Certificate == nil {
		t.Fatalf("outcome = %v cert = %+v", res.Outcome, res.Certificate)
	}
	if res.Engine != "async" || res.Model != "adversary:collision" {
		t.Fatalf("engine/model stamps = %q/%q", res.Engine, res.Model)
	}
	if res.Terminated {
		t.Fatal("certified-looping run reported Terminated")
	}
}

// TestWithModelSchedule: dynamic models flow losses into the result.
func TestWithModelSchedule(t *testing.T) {
	sess, err := sim.New(gen.Cycle(4),
		sim.WithModel("schedule:outage:round=1,u=0,v=3"),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != engine.OutcomeCycle || res.Lost != 1 {
		t.Fatalf("outcome = %v lost = %d", res.Outcome, res.Lost)
	}
	if res.Engine != "dynamic" {
		t.Fatalf("engine stamp = %q", res.Engine)
	}
}

// TestWithModelZeroDelayMatchesEngines: the adversary:sync model produces
// byte-identical traces to every synchronous engine through the façade.
func TestWithModelZeroDelayMatchesEngines(t *testing.T) {
	g := gen.MustBuild("randconnected:n=24,p=0.15", 3)
	want := runTraced(t, g, sim.WithEngine(sim.Sequential))
	for _, mdl := range []string{"adversary:sync", "schedule:static"} {
		got := runTraced(t, g, sim.WithModel(mdl))
		if !engine.EqualTraces(got.Trace, want.Trace) {
			t.Errorf("model %s trace differs from the sequential engine", mdl)
		}
	}
}

func runTraced(t *testing.T, g *graph.Graph, opt sim.Option) engine.Result {
	t.Helper()
	sess, err := sim.New(g, opt, sim.WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWithModelErrors: unknown specs fail at New; non-amnesiac protocols
// are rejected for non-sync models.
func TestWithModelErrors(t *testing.T) {
	g := gen.Path(4)
	if _, err := sim.New(g, sim.WithModel("warp")); err == nil {
		t.Error("unknown model kind accepted")
	}
	if _, err := sim.New(g, sim.WithModel("adversary:nope")); err == nil {
		t.Error("unknown adversary family accepted")
	}
	if _, err := sim.New(g, sim.WithModel("adversary:sync"), sim.WithProtocol("classic")); err == nil {
		t.Error("non-amnesiac protocol accepted for a non-sync model")
	}
	proto, err := sim.NewProtocol("classic", sim.Spec{Graph: g, Origins: []graph.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(g, sim.WithModel("schedule:static"), sim.WithProtocolInstance(proto)); err == nil {
		t.Error("explicit protocol instance accepted for a non-sync model")
	}
}

// TestWithModelRunBatch: batch runs reuse the session's model engine and
// flood from each source independently.
func TestWithModelRunBatch(t *testing.T) {
	g := gen.Cycle(9)
	sess, err := sim.New(g, sim.WithModel("adversary:collision"), sim.WithMaxRounds(4096))
	if err != nil {
		t.Fatal(err)
	}
	sources := []graph.NodeID{0, 3, 6}
	results, err := sess.RunBatch(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sources) {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		// The collision delayer certifies on the odd cycle from any
		// source (vertex-transitive), with the same cycle length.
		if res.Outcome != engine.OutcomeCycle {
			t.Errorf("source %d: outcome %v", sources[i], res.Outcome)
		}
		if res.Certificate == nil || res.Certificate.Length != results[0].Certificate.Length {
			t.Errorf("source %d: certificate %+v", sources[i], res.Certificate)
		}
	}
}

// TestWithModelSeedThreading: the session seed drives random model
// families, reproducibly.
func TestWithModelSeedThreading(t *testing.T) {
	run := func(seed int64) engine.Result {
		sess, err := sim.New(gen.Cycle(8),
			sim.WithModel("adversary:random:max=3"),
			sim.WithSeed(seed),
			sim.WithMaxRounds(512),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(99), run(99)
	if a.Rounds != b.Rounds || a.TotalMessages != b.TotalMessages {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestWithModelObserver: observers compose with model runs through the
// façade (a coverage observer counting dynamic receipt).
func TestWithModelObserver(t *testing.T) {
	g := gen.CompleteBinaryTree(4)
	cov := model.NewCoverage(g.N(), 0)
	sess, err := sim.New(g,
		sim.WithModel("schedule:outage:round=1,u=0,v=1"),
		sim.WithObserver(cov),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cov.Count() != 8 {
		t.Fatalf("coverage = %d, want 8 (left subtree severed)", cov.Count())
	}
}
