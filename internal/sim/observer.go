package sim

import (
	"amnesiacflood/internal/engine"
)

// MultiObserver fans one round stream out to several observers. Observers
// are invoked in slice order; the first error aborts immediately, and the
// round's remaining observers still see the round before a stop request
// takes effect — so every observer of a stopped run has observed the same
// prefix.
type MultiObserver []engine.RoundObserver

var _ engine.RoundObserver = MultiObserver(nil)

// ObserveRound implements engine.RoundObserver.
func (m MultiObserver) ObserveRound(rec engine.RoundRecord) (bool, error) {
	stop := false
	for _, obs := range m {
		if obs == nil {
			continue
		}
		s, err := obs.ObserveRound(rec)
		if err != nil {
			return false, err
		}
		stop = stop || s
	}
	return stop, nil
}

// TraceRecorder accumulates a deep copy of every observed round — the
// observer equivalent of Options.Trace, usable alongside other observers
// and reusable across runs via Reset. The recorded rounds are safe to
// retain: Sends are copied out of the engine's arenas.
type TraceRecorder struct {
	// Trace holds one record per observed round, in order.
	Trace []engine.RoundRecord
}

var _ engine.RoundObserver = (*TraceRecorder)(nil)

// ObserveRound implements engine.RoundObserver; it never stops the run.
func (t *TraceRecorder) ObserveRound(rec engine.RoundRecord) (bool, error) {
	t.Trace = append(t.Trace, engine.RoundRecord{
		Round: rec.Round,
		Sends: append([]engine.Send(nil), rec.Sends...),
	})
	return false, nil
}

// Reset clears the recorder for reuse, keeping the round-slice capacity.
func (t *TraceRecorder) Reset() { t.Trace = t.Trace[:0] }

// RoundBudget stops a run after the given number of rounds — round-budget
// serving in observer form: the result covers exactly the first Budget
// rounds (fewer if the run ends first). It is stateless (the decision
// reads the record's round number), so one RoundBudget serves every run of
// a reused Session or RunBatch without resetting.
type RoundBudget struct {
	// Budget is how many rounds to allow; <= 0 stops after the first.
	Budget int
}

var _ engine.RoundObserver = (*RoundBudget)(nil)

// ObserveRound implements engine.RoundObserver.
func (b *RoundBudget) ObserveRound(rec engine.RoundRecord) (bool, error) {
	return rec.Round >= b.Budget, nil
}
