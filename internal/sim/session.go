package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"amnesiacflood/internal/analysis"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/bitengine"
	"amnesiacflood/internal/engine/chanengine"
	"amnesiacflood/internal/engine/fastengine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/model"
)

// Session is a configured simulation: one graph, one protocol, one engine,
// run options. Build one with New and functional options, then call Run (or
// RunBatch) as many times as needed — a Session is reusable and, on the
// fast engines, amortises its arenas across runs. It is not safe for
// concurrent use; run several Sessions for that.
type Session struct {
	g             *graph.Graph
	kind          EngineKind
	protoName     string
	proto         engine.Protocol // explicit instance, overrides protoName
	modelSpec     string          // raw WithModel spec; parsed in New
	origins       []graph.NodeID
	seed          int64
	params        map[string]string
	maxRounds     int
	trace         bool
	observer      engine.RoundObserver
	parThreshold  int
	analysisSpecs []string
	analysisStop  bool

	built    engine.Protocol
	mdl      model.Model        // built execution model (sync: both nil)
	analyses *analysis.Set      // built analysis set (nil without WithAnalysis)
	fast     *fastengine.Engine // lazily created, reused across runs
	bit      *bitengine.Engine  // lazily created, reused across runs
	async    *model.AsyncEngine // lazily created, reused across runs
	dyn      *model.DynamicEngine
}

// Option configures a Session under construction.
type Option func(*Session)

// WithProtocol selects a registered protocol by name (see Protocols).
// Default: "amnesiac".
func WithProtocol(name string) Option {
	return func(s *Session) { s.protoName = name; s.proto = nil }
}

// WithProtocolInstance bypasses the registry with an explicit protocol
// instance — for callers composing custom protocols. WithOrigins, WithSeed,
// and WithParam have no effect on an explicit instance, and RunBatch is
// unavailable (it needs a factory to rebuild per source).
func WithProtocolInstance(p engine.Protocol) Option {
	return func(s *Session) { s.proto = p; s.protoName = "" }
}

// WithEngine selects the synchronous substrate. Default: Sequential.
func WithEngine(kind EngineKind) Option {
	return func(s *Session) { s.kind = kind }
}

// WithModel selects the execution model by spec (internal/model grammar:
// "sync", "adversary:collision", "schedule:blink:period=2,phase=1", ...).
// Default: "sync", the paper's synchronous model, executed by the engine
// chosen with WithEngine. Non-sync models run on their own dedicated
// substrate (model.AsyncEngine / model.DynamicEngine) — the WithEngine
// choice does not apply to them and Result.Engine reports "async" or
// "dynamic" — and execute amnesiac flooding only, so they compose with
// every option except a non-amnesiac protocol. Random model families
// (adversary:random) consume WithSeed.
func WithModel(spec string) Option {
	return func(s *Session) { s.modelSpec = spec }
}

// WithOrigins sets the origin node set handed to the protocol factory.
// Default: node 0.
func WithOrigins(origins ...graph.NodeID) Option {
	return func(s *Session) { s.origins = append([]graph.NodeID(nil), origins...) }
}

// WithSeed sets the seed handed to the protocol factory (randomised
// protocols such as faulty use it; deterministic ones ignore it).
func WithSeed(seed int64) Option {
	return func(s *Session) { s.seed = seed }
}

// WithParam passes one protocol-specific string parameter to the factory.
func WithParam(key, value string) Option {
	return func(s *Session) {
		if s.params == nil {
			s.params = map[string]string{}
		}
		s.params[key] = value
	}
}

// WithMaxRounds bounds each run; 0 means engine.DefaultMaxRounds.
func WithMaxRounds(n int) Option {
	return func(s *Session) { s.maxRounds = n }
}

// WithParallelThreshold tunes when the parallel-capable engines (Parallel,
// Bitset) shard a round across goroutines; 0 means the engine default, 1
// forces sharding on every round. See engine.Options.ParallelThreshold.
func WithParallelThreshold(n int) Option {
	return func(s *Session) { s.parThreshold = n }
}

// WithTrace enables per-round trace recording into Result.Trace.
func WithTrace(on bool) Option {
	return func(s *Session) { s.trace = on }
}

// WithObserver streams rounds to obs as they happen; obs may stop or abort
// the run (see engine.RoundObserver). Compose several with MultiObserver.
func WithObserver(obs engine.RoundObserver) Option {
	return func(s *Session) { s.observer = obs }
}

// WithAnalysis attaches streaming analyses by spec (internal/analysis
// grammar: "coverage", "termination", "bipartite", "spantree", "echo",
// "quantiles:metric=messages", ...). Each analysis observes the run round
// by round — no trace is retained or re-walked — and its metrics are merged
// into Result.Metrics under "<family>.<metric>" keys; typed artifacts
// (receive counts, spanning tree, witnesses) are reachable through the
// Session accessors. Analyses marked stop-capable may end the run early
// once every attached analysis has what it needs, unless WithTrace is set
// (an early stop would truncate the trace) or WithAnalysisStop(false)
// disabled stopping. Repeated options accumulate.
func WithAnalysis(specs ...string) Option {
	return func(s *Session) { s.analysisSpecs = append(s.analysisSpecs, specs...) }
}

// WithAnalysisStop gates analysis-driven early stopping (default true):
// pass false to always run to the natural end, e.g. so the bipartite
// analysis collects every witness instead of stopping at the first —
// without paying for a trace it does not need. It does not affect
// WithObserver observers.
func WithAnalysisStop(enabled bool) Option {
	return func(s *Session) { s.analysisStop = enabled }
}

// New validates the options, instantiates the protocol, and returns a
// ready-to-run Session.
func New(g *graph.Graph, opts ...Option) (*Session, error) {
	if g == nil {
		return nil, errors.New("sim: nil graph")
	}
	s := &Session{g: g, kind: Sequential, protoName: "amnesiac", analysisStop: true}
	for _, opt := range opts {
		opt(s)
	}
	if !s.kind.valid() {
		return nil, fmt.Errorf("sim: %w kind %d", ErrUnknownEngine, int(s.kind))
	}
	if len(s.origins) == 0 {
		s.origins = []graph.NodeID{0}
	}
	if s.modelSpec == "" {
		s.mdl = model.Model{Spec: model.SyncSpec()}
	} else {
		mdl, err := model.Build(s.modelSpec, s.seed)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		s.mdl = mdl
	}
	if !s.mdl.Spec.IsSync() {
		// The model engines execute amnesiac flooding only (see the
		// internal/model package comment); reject other protocols rather
		// than silently running the wrong one. Compare the normalised
		// name, matching NewProtocol's case/whitespace folding.
		if s.proto != nil || strings.ToLower(strings.TrimSpace(s.protoName)) != "amnesiac" {
			name := s.protoName
			if s.proto != nil {
				name = s.proto.Name()
			}
			return nil, fmt.Errorf("sim: model %s runs only the amnesiac protocol (got %q)", s.mdl.Spec, name)
		}
	}
	if len(s.analysisSpecs) > 0 {
		set, err := analysis.NewSet(s.analysisSpecs, analysis.Context{Graph: s.g, GraphSpec: s.g.Name()})
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		// Early stopping would truncate a requested trace; analyses stay
		// attached but lose their stop capability. WithAnalysisStop(false)
		// disables it explicitly.
		set.AllowStop = s.analysisStop && !s.trace
		s.analyses = set
	}
	if s.proto != nil {
		s.built = s.proto
	} else {
		built, err := NewProtocol(s.protoName, s.spec(s.origins))
		if err != nil {
			return nil, err
		}
		s.built = built
	}
	// The bitset engine executes declared set-operation rules only; reject
	// protocols without one here rather than at the first Run, mirroring the
	// model/protocol compatibility check above.
	if s.kind == Bitset && s.mdl.Spec.IsSync() && !bitengine.Supports(s.built) {
		return nil, fmt.Errorf("sim: engine bitset runs only bitset-rule protocols (amnesiac, classic, and probes built on them; got %q): %w",
			s.built.Name(), bitengine.ErrUnsupportedProtocol)
	}
	return s, nil
}

// spec assembles the factory spec for an origin set.
func (s *Session) spec(origins []graph.NodeID) Spec {
	return Spec{Graph: s.g, Origins: origins, Seed: s.seed, Params: s.params}
}

// options assembles the engine options for one run.
func (s *Session) options() engine.Options {
	return engine.Options{Trace: s.trace, MaxRounds: s.maxRounds, Observer: s.observer, ParallelThreshold: s.parThreshold}
}

// Protocol returns the protocol instance the session runs.
func (s *Session) Protocol() engine.Protocol { return s.built }

// Engine returns the session's engine kind.
func (s *Session) Engine() EngineKind { return s.kind }

// Model returns the session's parsed execution-model spec.
func (s *Session) Model() model.Spec { return s.mdl.Spec }

// Analysis returns the attached analyzer of the named family, if any —
// the untyped artifact accessor. After a Run, the analyzer holds that run's
// streamed state (overwritten by the next Run/RunBatch call).
func (s *Session) Analysis(family string) (analysis.Analyzer, bool) {
	if s.analyses == nil {
		return nil, false
	}
	return s.analyses.Analyzer(family)
}

// Coverage returns the coverage analyzer — per-node receive counts and
// first/last receive rounds — when the session runs the coverage analysis.
func (s *Session) Coverage() (*analysis.Coverage, bool) {
	a, ok := s.Analysis("coverage")
	if !ok {
		return nil, false
	}
	c, ok := a.(*analysis.Coverage)
	return c, ok
}

// SpanTree returns a copy of the BFS spanning tree of the last run when the
// session runs the spantree analysis.
func (s *Session) SpanTree() (*analysis.Tree, bool) {
	a, ok := s.Analysis("spantree")
	if !ok {
		return nil, false
	}
	t, ok := a.(*analysis.SpanTree)
	if !ok {
		return nil, false
	}
	return t.Tree(), true
}

// Witnesses returns the odd-cycle witnesses of the last run when the
// session runs the bipartite analysis (the slice is reused by the next
// run).
func (s *Session) Witnesses() ([]graph.NodeID, bool) {
	a, ok := s.Analysis("bipartite")
	if !ok {
		return nil, false
	}
	b, ok := a.(*analysis.Bipartite)
	if !ok {
		return nil, false
	}
	return b.Witnesses(), true
}

// Run executes the session's protocol once. The context is honoured by
// every engine with a per-round cancellation check; the returned Result is
// stamped with the substrate name, the model spec, the outcome, and the
// wall-clock duration.
func (s *Session) Run(ctx context.Context) (engine.Result, error) {
	// The protocol was built at New time, so the per-run build phase is 0.
	return s.runProto(ctx, s.built, s.origins, 0)
}

// runProto executes one protocol instance — the façade's single substrate
// dispatch. Non-sync models run on session-owned model engines; the sync
// model runs on the configured synchronous engine, with the Fast and
// Parallel kinds on a session-owned fastengine.Engine. All session-owned
// engines are reused across calls, so repeated runs amortise their arenas;
// New has already validated s.kind, so the default arm is Sequential.
// build is the already-spent per-run protocol construction time, stamped
// into Result.Phases alongside the run and analyze phases measured here —
// the per-run timing surfaced in service responses and suite telemetry.
func (s *Session) runProto(ctx context.Context, proto engine.Protocol, origins []graph.NodeID, build time.Duration) (engine.Result, error) {
	start := time.Now()
	opts := s.options()
	if s.analyses != nil {
		if err := s.analyses.Start(origins); err != nil {
			return engine.Result{}, fmt.Errorf("sim: %w", err)
		}
		if opts.Observer == nil {
			opts.Observer = s.analyses
		} else {
			opts.Observer = MultiObserver{opts.Observer, s.analyses}
		}
	}
	var (
		res engine.Result
		err error
	)
	switch s.mdl.Spec.Kind {
	case model.KindAdversary:
		if s.async == nil {
			s.async = model.NewAsync(s.g, s.mdl.Adversary)
		}
		res, err = s.async.Run(ctx, origins, opts)
		res.Engine = "async"
	case model.KindSchedule:
		if s.dyn == nil {
			s.dyn = model.NewDynamic(s.g, s.mdl.Schedule)
		}
		res, err = s.dyn.Run(ctx, origins, opts)
		res.Engine = "dynamic"
	default:
		switch s.kind {
		case Fast, Parallel:
			if s.fast == nil {
				s.fast = fastengine.New(s.g)
				if s.kind == Parallel {
					s.fast.Parallel(0)
				}
			}
			res, err = s.fast.Run(ctx, proto, opts)
		case Bitset:
			if s.bit == nil {
				s.bit = bitengine.New(s.g).Parallel(0)
			}
			res, err = s.bit.Run(ctx, proto, opts)
		case Channels:
			res, err = chanengine.Run(ctx, s.g, proto, opts)
		default:
			res, err = engine.Run(ctx, s.g, proto, opts)
		}
		res.Engine = s.kind.String()
	}
	res.Model = s.mdl.Spec.String()
	res.Phases.Build = build
	res.Phases.Run = time.Since(start)
	if res.Outcome == engine.OutcomeNone && res.Terminated {
		res.Outcome = engine.OutcomeTerminated
	}
	if err == nil && s.analyses != nil {
		analyzeStart := time.Now()
		metrics, ferr := s.analyses.Finish(res)
		if ferr != nil {
			return res, fmt.Errorf("sim: %w", ferr)
		}
		res.Metrics = metrics
		res.Phases.Analyze = time.Since(analyzeStart)
	}
	res.WallTime = build + time.Since(start)
	return res, err
}

// RunFrom executes one run flooding from the given origin set, rebuilding
// the session's registered protocol for those origins while reusing the
// session's engines, arenas, and attached analyses — the hook a serving
// layer's session pool uses to answer requests with per-request origins
// from one long-lived pooled Session (see internal/service). An empty
// origin set means node 0. Like RunBatch it needs a registry protocol; the
// session's configured origins are untouched, so Run keeps its meaning.
func (s *Session) RunFrom(ctx context.Context, origins []graph.NodeID) (engine.Result, error) {
	if s.proto != nil {
		return engine.Result{}, errors.New("sim: RunFrom needs a registry protocol (use WithProtocol, not WithProtocolInstance)")
	}
	if len(origins) == 0 {
		origins = []graph.NodeID{0}
	}
	buildStart := time.Now()
	proto, err := NewProtocol(s.protoName, s.spec(origins))
	if err != nil {
		return engine.Result{}, err
	}
	return s.runProto(ctx, proto, origins, time.Since(buildStart))
}

// RunBatch executes one run per source, each a fresh instance of the
// session's registered protocol flooding from that single origin. On the
// Fast and Parallel engines all runs share the session's arenas, so
// sweep-style workloads (one run per source over a big graph) stay
// allocation-free after the first run. The batch stops at the first error;
// results for completed runs are returned alongside it.
func (s *Session) RunBatch(ctx context.Context, sources []graph.NodeID) ([]engine.Result, error) {
	if s.proto != nil {
		return nil, errors.New("sim: RunBatch needs a registry protocol (use WithProtocol, not WithProtocolInstance)")
	}
	results := make([]engine.Result, 0, len(sources))
	for _, src := range sources {
		buildStart := time.Now()
		proto, err := NewProtocol(s.protoName, s.spec([]graph.NodeID{src}))
		if err != nil {
			return results, err
		}
		res, err := s.runProto(ctx, proto, []graph.NodeID{src}, time.Since(buildStart))
		if err != nil {
			return results, fmt.Errorf("sim: batch source %d: %w", src, err)
		}
		results = append(results, res)
	}
	return results, nil
}
