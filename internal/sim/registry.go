package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Spec is everything a protocol factory may need to instantiate a protocol
// for one session: the graph, the origin set, a seed for randomised
// behaviour (fault injection), and free-form string parameters from the
// CLI's -param flags.
type Spec struct {
	// Graph is the topology the protocol runs on. Never nil.
	Graph *graph.Graph
	// Origins is the non-empty origin set, validated against Graph by the
	// factory.
	Origins []graph.NodeID
	// Seed drives any randomised protocol behaviour (e.g. the faulty
	// protocol's loss injector).
	Seed int64
	// Params carries protocol-specific string options; factories must
	// ignore keys they do not know.
	Params map[string]string
}

// Param returns the named parameter, or def when absent.
func (s Spec) Param(key, def string) string {
	if v, ok := s.Params[key]; ok {
		return v
	}
	return def
}

// ProtocolFactory instantiates a protocol for one spec. Factories must be
// deterministic functions of the spec so runs remain reproducible.
type ProtocolFactory func(Spec) (engine.Protocol, error)

// ErrUnknownProtocol is wrapped into errors for protocol names outside the
// registry, matchable with errors.Is.
var ErrUnknownProtocol = errors.New("unknown protocol")

var (
	registryMu sync.RWMutex
	registry   = map[string]ProtocolFactory{}
)

// Register adds a protocol factory under a name, normally from the
// protocol package's init so importing the package is all it takes to make
// the protocol selectable by string. It panics on empty names or duplicate
// registration — both are programmer errors.
func Register(name string, factory ProtocolFactory) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		panic("sim: Register with empty protocol name")
	}
	if factory == nil {
		panic("sim: Register " + name + " with nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("sim: Register called twice for protocol " + name)
	}
	registry[name] = factory
}

// Protocols enumerates the registered protocol names, sorted.
func Protocols() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewProtocol instantiates the named protocol for the spec.
func NewProtocol(name string, spec Spec) (engine.Protocol, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	registryMu.RLock()
	factory, ok := registry[key]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sim: %w %q (registered: %s)", ErrUnknownProtocol, name, strings.Join(Protocols(), ", "))
	}
	proto, err := factory(spec)
	if err != nil {
		return nil, fmt.Errorf("sim: protocol %s: %w", key, err)
	}
	return proto, nil
}

// Rename wraps a protocol so Name reports the given name, preserving the
// engine.DenseProtocol fast path — and the engine.BitsetProtocol rule
// declaration — when the wrapped protocol has them. Used by registered
// protocols that reuse another protocol's behaviour under their own name
// (the detect and spantree probes are amnesiac floods).
func Rename(p engine.Protocol, name string) engine.Protocol {
	if bp, ok := p.(engine.BitsetProtocol); ok {
		return renamedBitset{renamedDense{renamed{Protocol: p, name: name}, bp}, bp}
	}
	if dp, ok := p.(engine.DenseProtocol); ok {
		return renamedDense{renamed{Protocol: p, name: name}, dp}
	}
	return renamed{Protocol: p, name: name}
}

type renamed struct {
	engine.Protocol
	name string
}

func (r renamed) Name() string { return r.name }

type renamedDense struct {
	renamed
	dense engine.DenseProtocol
}

func (r renamedDense) NewRun() engine.RoundAppender { return r.dense.NewRun() }

type renamedBitset struct {
	renamedDense
	bitset engine.BitsetProtocol
}

func (r renamedBitset) BitsetRule() engine.BitsetRule { return r.bitset.BitsetRule() }
