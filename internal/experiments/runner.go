package experiments

import (
	"context"
	"slices"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/sim"
)

// runReport executes amnesiac flooding from the origins on the configured
// engine through the sim façade and returns the analysed report. It is the
// single run path of the whole experiment suite, so every table's numbers
// are attributable to cfg.Engine.
func runReport(cfg Config, g *graph.Graph, origins ...graph.NodeID) (*core.Report, error) {
	sess, err := sim.New(g,
		sim.WithProtocol("amnesiac"),
		sim.WithEngine(cfg.EngineKind()),
		sim.WithOrigins(origins...),
		sim.WithTrace(true),
	)
	if err != nil {
		return nil, err
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return core.Analyze(g, uniqueSorted(origins), res), nil
}

// uniqueSorted returns the origin set deduplicated and ascending, matching
// core.NewFlood's canonicalisation.
func uniqueSorted(origins []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), origins...)
	slices.Sort(out)
	uniq := out[:0]
	for i, o := range out {
		if i == 0 || o != uniq[len(uniq)-1] {
			uniq = append(uniq, o)
		}
	}
	return uniq
}
