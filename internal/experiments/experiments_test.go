package experiments_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"amnesiacflood/internal/experiments"
	"amnesiacflood/internal/sim"
)

func TestAllExperimentsSucceed(t *testing.T) {
	cfg := experiments.DefaultConfig()
	for _, exp := range experiments.All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := exp.Run(cfg)
			if err != nil {
				t.Fatalf("%s (%s): %v", exp.ID, exp.Name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s returned no tables", exp.ID)
			}
			for _, table := range tables {
				if table.ID != exp.ID {
					t.Errorf("table ID %q under experiment %q", table.ID, exp.ID)
				}
				if len(table.Rows) == 0 {
					t.Errorf("%s table %q has no rows", exp.ID, table.Title)
				}
				for _, row := range table.Rows {
					if len(row) != len(table.Columns) {
						t.Errorf("%s: row width %d != %d columns", exp.ID, len(row), len(table.Columns))
					}
				}
			}
		})
	}
}

func TestExperimentIDsUniqueAndOrdered(t *testing.T) {
	seen := map[string]bool{}
	for _, exp := range experiments.All() {
		if seen[exp.ID] {
			t.Errorf("duplicate experiment ID %s", exp.ID)
		}
		seen[exp.ID] = true
		if exp.Run == nil || exp.Name == "" {
			t.Errorf("experiment %s incomplete", exp.ID)
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestRunAllPrintsEveryExperiment(t *testing.T) {
	var buf bytes.Buffer
	cfg := experiments.DefaultConfig()
	if err := experiments.RunAll(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18"} {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}

func TestDifferentSeedsStillSatisfyClaims(t *testing.T) {
	// The theorem checks inside the experiments must hold for any seed,
	// not just the recorded default.
	if testing.Short() {
		t.Skip("multi-seed sweep skipped in -short mode")
	}
	for _, seed := range []int64{1, 7, 123456789} {
		cfg := experiments.Config{Seed: seed, Scale: 1}
		for _, exp := range experiments.All() {
			if _, err := exp.Run(cfg); err != nil {
				t.Fatalf("seed %d: %s: %v", seed, exp.ID, err)
			}
		}
	}
}

func TestTableFprintAlignment(t *testing.T) {
	table := &experiments.Table{
		ID:      "T",
		Title:   "demo",
		Columns: []string{"col", "value"},
	}
	table.AddRow("x", 1)
	table.AddRow("longer", 22)
	table.AddNote("a note with %d", 42)
	var buf bytes.Buffer
	if err := table.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T: demo ==", "col", "longer  22", "note: a note with 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := experiments.DefaultConfig()
	if cfg.Seed == 0 || cfg.Scale != 1 {
		t.Fatalf("default config = %+v", cfg)
	}
}

func TestSuiteEngineInvariance(t *testing.T) {
	// The engine is an execution substrate, not a parameter of the claims:
	// every experiment must emit identical tables whichever engine runs it.
	want := map[string][]*experiments.Table{}
	base := experiments.DefaultConfig()
	picked := map[string]bool{"E1": true, "E3": true, "E5": true, "E8": true, "E13": true}
	for _, exp := range experiments.All() {
		if !picked[exp.ID] {
			continue
		}
		tables, err := exp.Run(base)
		if err != nil {
			t.Fatalf("%s sequential: %v", exp.ID, err)
		}
		want[exp.ID] = tables
	}
	for _, kind := range []sim.EngineKind{sim.Fast, sim.Parallel} {
		cfg := base
		cfg.Engine = kind
		for _, exp := range experiments.All() {
			if !picked[exp.ID] {
				continue
			}
			tables, err := exp.Run(cfg)
			if err != nil {
				t.Fatalf("%s on %s: %v", exp.ID, kind, err)
			}
			if !reflect.DeepEqual(tables, want[exp.ID]) {
				t.Errorf("%s: tables differ between sequential and %s engines", exp.ID, kind)
			}
		}
	}
}
