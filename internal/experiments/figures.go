package experiments

import (
	"fmt"
	"strings"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/theory"
	"amnesiacflood/internal/trace"
)

// figureTable renders a single-source run as a per-round table in the style
// of the paper's figures: the circled (sending) nodes and the message edges
// of every round.
func figureTable(id, title string, cfg Config, g *graph.Graph, source graph.NodeID) (*Table, *core.Report, error) {
	rep, err := runReport(cfg, g, source)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"round", "sending (circled)", "message edges"},
	}
	for _, rec := range rep.Result.Trace {
		senders := rec.Senders()
		names := make([]string, len(senders))
		for i, s := range senders {
			names[i] = trace.Letters(s)
		}
		edges := make([]string, len(rec.Sends))
		for i, s := range rec.Sends {
			edges[i] = trace.Letters(s.From) + "->" + trace.Letters(s.To)
		}
		t.AddRow(rec.Round, strings.Join(names, ","), strings.Join(edges, " "))
	}
	return t, rep, nil
}

// Fig1Line regenerates Figure 1: amnesiac flooding on the 4-node line
// a-b-c-d starting from b terminates in 2 rounds, less than the diameter 3.
func Fig1Line(cfg Config) ([]*Table, error) {
	g := gen.Path(4) // a=0, b=1, c=2, d=3
	source := graph.NodeID(1)
	t, rep, err := figureTable("E1", "Figure 1: AF on the line a-b-c-d from b", cfg, g, source)
	if err != nil {
		return nil, err
	}
	diam := algo.Diameter(g)
	ecc := algo.Eccentricity(g, source)
	t.AddNote("paper: terminates in 2 rounds (< diameter %d); measured: %d rounds", diam, rep.Rounds())
	t.AddNote("eccentricity of b is %d; Lemma 2.1 predicts exactly that", ecc)
	if err := theory.CheckBipartiteExact(g, rep); err != nil {
		return nil, fmt.Errorf("figure 1 violates Lemma 2.1: %w", err)
	}
	if rep.Rounds() != 2 {
		return nil, fmt.Errorf("figure 1: got %d rounds, paper shows 2", rep.Rounds())
	}
	return []*Table{t}, nil
}

// Fig2Triangle regenerates Figure 2: amnesiac flooding on the triangle
// (a, b, c) from b; a and c exchange M in round 2 and return it to b in
// round 3, terminating in 3 = 2D+1 rounds (D = 1).
func Fig2Triangle(cfg Config) ([]*Table, error) {
	g := gen.Cycle(3) // a=0, b=1, c=2
	source := graph.NodeID(1)
	t, rep, err := figureTable("E2", "Figure 2: AF on the triangle from b", cfg, g, source)
	if err != nil {
		return nil, err
	}
	diam := algo.Diameter(g)
	t.AddNote("paper: terminates in 3 = 2D+1 rounds (D=%d); measured: %d rounds", diam, rep.Rounds())
	if err := theory.CheckNonBipartiteStrict(g, rep); err != nil {
		return nil, fmt.Errorf("figure 2 violates Theorem 3.3: %w", err)
	}
	if rep.Rounds() != 2*diam+1 {
		return nil, fmt.Errorf("figure 2: got %d rounds, paper shows %d", rep.Rounds(), 2*diam+1)
	}
	// The figure's specific exchanges: a and c send to each other in
	// round 2, then both send to b in round 3.
	want := [][]string{
		{"b->a b->c"},
		{"a->c c->a"},
		{"a->b c->b"},
	}
	for i, rec := range rep.Result.Trace {
		edges := make([]string, len(rec.Sends))
		for j, s := range rec.Sends {
			edges[j] = trace.Letters(s.From) + "->" + trace.Letters(s.To)
		}
		if got := strings.Join(edges, " "); got != want[i][0] {
			return nil, fmt.Errorf("figure 2 round %d: got %q, paper shows %q", i+1, got, want[i][0])
		}
	}
	return []*Table{t}, nil
}

// Fig3EvenCycle regenerates Figure 3: amnesiac flooding on the 6-cycle
// terminates in diameter (= 3) rounds from every starting node, visiting
// each node exactly once.
func Fig3EvenCycle(cfg Config) ([]*Table, error) {
	g := gen.Cycle(6)
	t, rep, err := figureTable("E3", "Figure 3: AF on the even cycle C6 from a", cfg, g, 0)
	if err != nil {
		return nil, err
	}
	diam := algo.Diameter(g)
	t.AddNote("paper: terminates in D = %d rounds; measured: %d rounds", diam, rep.Rounds())
	if err := theory.CheckBipartiteExact(g, rep); err != nil {
		return nil, fmt.Errorf("figure 3 violates Lemma 2.1: %w", err)
	}

	// Second table: every source of C6 behaves identically (symmetry),
	// confirming the "from any originating node" claim.
	all := &Table{
		ID:      "E3",
		Title:   "Figure 3 (cont.): every C6 source",
		Columns: []string{"source", "rounds", "diameter", "each node visited once"},
	}
	for s := 0; s < g.N(); s++ {
		repS, err := runReport(cfg, g, graph.NodeID(s))
		if err != nil {
			return nil, err
		}
		if err := theory.CheckBipartiteExact(g, repS); err != nil {
			return nil, fmt.Errorf("figure 3 source %d: %w", s, err)
		}
		all.AddRow(trace.Letters(graph.NodeID(s)), repS.Rounds(), diam, repS.MaxReceives() == 1)
	}
	all.AddNote("paper: AF from any originating node terminates in diameter rounds")
	return []*Table{t, all}, nil
}
