package experiments

import (
	"fmt"
	"math/rand"

	"amnesiacflood/internal/faults"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/stats"
)

// LossCurve is experiment E15: the quantitative version of E12's findings.
// For each loss probability p, many independent seeded runs measure how
// often the flood dies on its own within the round budget, how long the
// surviving runs live, and how much of the graph gets covered.
//
// The curve's shape is the result: on trees, termination probability stays
// at 1 for every p while coverage decays with p; on dense cyclic graphs
// even p = 0.01 makes "still alive at the budget" the common case (every
// lost copy desynchronises the cancelling wavefronts) while coverage stays
// at 1 — loss trades termination for noise rather than reach. The bare
// cycle sits in between: its lonely wavefronts are single messages, so
// persistent loss eventually kills them and the flood still terminates.
func LossCurve(cfg Config) ([]*Table, error) {
	runsPer := 10 * cfg.scaled(1)
	budget := 512
	probs := []float64{0, 0.01, 0.05, 0.1, 0.2, 0.4}

	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	type family struct {
		label string
		g     *graph.Graph
	}
	families := []family{
		{"randomTree(100)", gen.RandomTree(100, rng)},
		{"cycle(32)", gen.Cycle(32)},
		{"grid(8x8)", gen.Grid(8, 8)},
		{"randomNonBipartite(100)", gen.RandomNonBipartite(100, 0.04, rng)},
	}

	t := &Table{
		ID:    "E15",
		Title: fmt.Sprintf("Loss curve: %d runs per point, %d-round budget", runsPer, budget),
		Columns: []string{
			"graph", "loss p", "terminated frac", "mean rounds (terminated)",
			"mean coverage frac", "min coverage frac",
		},
	}
	for _, fam := range families {
		isTree := fam.g.M() == fam.g.N()-1
		for _, p := range probs {
			var terminated []bool
			var rounds []float64
			var coverage []float64
			for i := 0; i < runsPer; i++ {
				inj := faults.RandomLoss{P: p, Seed: cfg.Seed + int64(i)*7919}
				src := graph.NodeID((i * 13) % fam.g.N())
				res, err := faults.Run(fam.g, inj, faults.Options{MaxRounds: budget}, src)
				if err != nil {
					return nil, fmt.Errorf("E15: %s p=%.2f: %w", fam.label, p, err)
				}
				done := res.Outcome == faults.Terminated
				terminated = append(terminated, done)
				if done {
					rounds = append(rounds, float64(res.Rounds))
				}
				coverage = append(coverage, float64(res.CoverageCount())/float64(fam.g.N()))
			}
			if isTree && stats.Fraction(terminated) != 1 {
				return nil, fmt.Errorf("E15: tree %s failed to terminate under loss p=%.2f", fam.label, p)
			}
			if p == 0 {
				if stats.Fraction(terminated) != 1 {
					return nil, fmt.Errorf("E15: %s failed to terminate with p=0", fam.label)
				}
				covSummary := stats.Summarize(coverage)
				if covSummary.Min != 1 {
					return nil, fmt.Errorf("E15: %s lost coverage with p=0", fam.label)
				}
			}
			roundSummary := stats.Summarize(rounds)
			covSummary := stats.Summarize(coverage)
			meanRounds := "-"
			if roundSummary.N > 0 {
				meanRounds = fmt.Sprintf("%.1f", roundSummary.Mean)
			}
			t.AddRow(fam.label, fmt.Sprintf("%.2f", p),
				fmt.Sprintf("%.2f", stats.Fraction(terminated)),
				meanRounds,
				fmt.Sprintf("%.2f", covSummary.Mean),
				fmt.Sprintf("%.2f", covSummary.Min))
		}
	}
	t.AddNote("trees: termination frac pinned at 1.00, coverage decays with p (loss only prunes)")
	t.AddNote("dense cyclic graphs: termination frac collapses even at p=0.01 — lost copies leave un-cancelled wavefronts that feed each other — while coverage stays at 1.00")
	t.AddNote("the bare cycle still terminates under persistent loss: a lonely wavefront is a single message per round, so repeated loss eventually kills it too (at the price of coverage)")
	return []*Table{t}, nil
}
