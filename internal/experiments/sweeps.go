package experiments

import (
	"fmt"
	"math/rand"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/theory"
)

// namedGraph couples an instance with the family label used in tables.
type namedGraph struct {
	family string
	g      *graph.Graph
}

// bipartiteFamilies returns the bipartite instance sweep of experiment E4.
func bipartiteFamilies(cfg Config, rng *rand.Rand) []namedGraph {
	n := cfg.scaled(1)
	instances := []namedGraph{
		{"path", gen.Path(16 * n)},
		{"path", gen.Path(256 * n)},
		{"evenCycle", gen.Cycle(16 * n)},
		{"evenCycle", gen.Cycle(256 * n)},
		{"star", gen.Star(64 * n)},
		{"grid", gen.Grid(8*n, 8*n)},
		{"grid", gen.Grid(16*n, 32*n)},
		{"binaryTree", gen.CompleteBinaryTree(7)},
		{"hypercube", gen.Hypercube(6)},
		{"hypercube", gen.Hypercube(9)},
		{"completeBipartite", gen.CompleteBipartite(12*n, 20*n)},
		{"randomTree", gen.RandomTree(512*n, rng)},
		{"randomBipartite", gen.Connectify(gen.RandomBipartite(40*n, 56*n, 0.05, rng), rng)},
	}
	return instances
}

// nonBipartiteInstance is an E5 sweep entry. strictAboveDiameter marks the
// source-symmetric classical families on which termination provably takes
// more than D rounds from every source; on irregular instances the paper's
// parenthetical "strictly larger than D" does not hold pointwise (see the
// E5 note and EXPERIMENTS.md) and is only reported, not asserted.
type nonBipartiteInstance struct {
	family              string
	g                   *graph.Graph
	strictAboveDiameter bool
}

// nonBipartiteFamilies returns the non-bipartite sweep of experiment E5.
func nonBipartiteFamilies(cfg Config, rng *rand.Rand) []nonBipartiteInstance {
	n := cfg.scaled(1)
	return []nonBipartiteInstance{
		{"triangle", gen.Cycle(3), true},
		{"oddCycle", gen.Cycle(15*n + 2), true}, // odd for every scale
		{"oddCycle", gen.Cycle(255*n + 2), true},
		{"clique", gen.Complete(8 * n), true},
		{"clique", gen.Complete(32 * n), true},
		{"wheel", gen.Wheel(32*n + 1), true},
		{"petersen", gen.Petersen(), true},
		{"oddTorus", gen.Torus(5, 7), true},
		{"lollipop", gen.Lollipop(5, 20*n), false},
		{"barbell", gen.Barbell(5, 16*n), false},
		{"randomNonBipartite", gen.RandomNonBipartite(128*n, 0.02, rng), false},
		{"randomNonBipartite", gen.RandomNonBipartite(512*n, 0.005, rng), false},
	}
}

// pickSources returns a deterministic spread of source nodes for an
// instance: node 0, a middle node, the last node, and two random ones.
func pickSources(g *graph.Graph, rng *rand.Rand) []graph.NodeID {
	if g.N() == 0 {
		return nil
	}
	candidates := []graph.NodeID{0, graph.NodeID(g.N() / 2), graph.NodeID(g.N() - 1)}
	for i := 0; i < 2; i++ {
		candidates = append(candidates, graph.NodeID(rng.Intn(g.N())))
	}
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, s := range candidates {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// BipartiteTermination is experiment E4: on every bipartite instance and
// every picked source, amnesiac flooding terminates in exactly e(source)
// rounds (Lemma 2.1), within the diameter (Corollary 2.2), visiting every
// node exactly once.
func BipartiteTermination(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		ID:      "E4",
		Title:   "Lemma 2.1 / Cor 2.2: AF on connected bipartite graphs",
		Columns: []string{"family", "graph", "n", "m", "diam", "source", "e(src)", "rounds", "rounds==e(src)", "max receives"},
	}
	checked := 0
	for _, inst := range bipartiteFamilies(cfg, rng) {
		if !algo.IsBipartite(inst.g) {
			return nil, fmt.Errorf("E4: instance %s is not bipartite (generator bug)", inst.g)
		}
		if !algo.Connected(inst.g) {
			return nil, fmt.Errorf("E4: instance %s is not connected", inst.g)
		}
		diam := algo.Diameter(inst.g)
		for _, src := range pickSources(inst.g, rng) {
			rep, err := runReport(cfg, inst.g, src)
			if err != nil {
				return nil, fmt.Errorf("E4: %s from %d: %w", inst.g, src, err)
			}
			if err := theory.CheckBipartiteExact(inst.g, rep); err != nil {
				return nil, fmt.Errorf("E4: %w", err)
			}
			ecc := algo.Eccentricity(inst.g, src)
			t.AddRow(inst.family, inst.g.Name(), inst.g.N(), inst.g.M(), diam, src,
				ecc, rep.Rounds(), rep.Rounds() == ecc, rep.MaxReceives())
			checked++
		}
	}
	t.AddNote("%d (instance, source) pairs; every run matched rounds == e(source) <= D with single receipt per node", checked)
	return []*Table{t}, nil
}

// NonBipartiteTermination is experiment E5: on every non-bipartite instance
// amnesiac flooding terminates (Theorem 3.1) strictly after the diameter
// and within 2D+1 rounds (Theorem 3.3), with no node receiving more than
// twice.
func NonBipartiteTermination(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	t := &Table{
		ID:      "E5",
		Title:   "Theorems 3.1 + 3.3: AF on connected non-bipartite graphs",
		Columns: []string{"family", "graph", "n", "m", "diam", "source", "rounds", "rounds<=2D+1", "rounds>D", "max receives"},
	}
	checked, strictHolds := 0, 0
	for _, inst := range nonBipartiteFamilies(cfg, rng) {
		if algo.IsBipartite(inst.g) {
			return nil, fmt.Errorf("E5: instance %s is bipartite (generator bug)", inst.g)
		}
		if !algo.Connected(inst.g) {
			return nil, fmt.Errorf("E5: instance %s is not connected", inst.g)
		}
		diam := algo.Diameter(inst.g)
		for _, src := range pickSources(inst.g, rng) {
			rep, err := runReport(cfg, inst.g, src)
			if err != nil {
				return nil, fmt.Errorf("E5: %s from %d: %w", inst.g, src, err)
			}
			if err := theory.CheckGeneralBounds(inst.g, rep); err != nil {
				return nil, fmt.Errorf("E5: %w", err)
			}
			if inst.strictAboveDiameter {
				if err := theory.CheckNonBipartiteStrict(inst.g, rep); err != nil {
					return nil, fmt.Errorf("E5: %w", err)
				}
			}
			aboveD := rep.Rounds() > diam
			if aboveD {
				strictHolds++
			}
			t.AddRow(inst.family, inst.g.Name(), inst.g.N(), inst.g.M(), diam, src,
				rep.Rounds(), rep.Rounds() <= 2*diam+1, aboveD, rep.MaxReceives())
			checked++
		}
	}
	t.AddNote("%d (instance, source) pairs; every run terminated within 2D+1 rounds with <= 2 receipts per node (Theorems 3.1, 3.3)", checked)
	t.AddNote("reproduction finding: the parenthetical 'strictly larger than D' held on %d/%d pairs — it holds on source-symmetric families (odd cycles, cliques, wheels) but not pointwise on irregular instances, where the odd-cycle echo can die before the primary wave finishes", strictHolds, checked)
	return []*Table{t}, nil
}

// RoundSetAnalysis is experiment E6: the proof machinery of Theorem 3.1.
// For a mixed set of graphs it reconstructs the round-sets R_0, R_1, ...
// and verifies that no node ever occurs in two round-sets an even duration
// apart — the paper's set Re stays empty, which is exactly what the two
// contradiction cases of Figure 4 establish.
func RoundSetAnalysis(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	t := &Table{
		ID:      "E6",
		Title:   "Figure 4 / Lemma 3.2: even-duration repeats never occur",
		Columns: []string{"graph", "source", "rounds", "|R| sequences", "|Re| even", "min d", "max d"},
	}
	instances := []namedGraph{
		{"triangle", gen.Cycle(3)},
		{"oddCycle", gen.Cycle(9)},
		{"evenCycle", gen.Cycle(10)},
		{"clique", gen.Complete(7)},
		{"petersen", gen.Petersen()},
		{"wheel", gen.Wheel(9)},
		{"grid", gen.Grid(5, 6)},
		{"lollipop", gen.Lollipop(3, 6)},
		{"randomNonBipartite", gen.RandomNonBipartite(60, 0.05, rng)},
		{"randomConnected", gen.RandomConnected(60, 0.05, rng)},
	}
	for _, inst := range instances {
		for _, src := range pickSources(inst.g, rng) {
			rep, err := runReport(cfg, inst.g, src)
			if err != nil {
				return nil, fmt.Errorf("E6: %s from %d: %w", inst.g, src, err)
			}
			if err := theory.CheckSequenceMachinery(rep); err != nil {
				return nil, fmt.Errorf("E6: %w", err)
			}
			analysis := theory.AnalyzeSequences(rep)
			t.AddRow(inst.g.Name(), src, rep.Rounds(), len(analysis.Sequences),
				analysis.EvenCount, analysis.MinDuration, analysis.MaxDuration)
		}
	}
	t.AddNote("|R| is the paper's set of node-repeat sequences (eq. 1); |Re| its even-duration subset, which Figure 4's two contradiction cases force to be empty — never observed non-empty")
	t.AddNote("all observed durations are odd: on non-bipartite graphs the two receipts of a node differ by an odd gap (cover parities differ)")
	return []*Table{t}, nil
}
