package experiments

import (
	"fmt"
	"math/rand"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/theory"
)

// namedGraph couples an instance with the family label used in tables. The
// graph itself is built from a registry spec, so g.Name() is the exact
// canonical spec string and every table row is attributable to a precise
// instance.
type namedGraph struct {
	family string
	g      *graph.Graph
}

// specInstance declares one sweep entry: a table label plus a registry
// spec.
type specInstance struct {
	family string
	spec   string
}

// buildAll materialises spec instances through the registry. The i-th
// instance is seeded with cfg.Seed+base+i, so random families vary with the
// configured seed but remain reproducible, and distinct instances of the
// same family get distinct graphs. Specs the registry rejects (e.g. -scale
// pushing a family past its size cap) surface as errors, not panics.
func buildAll(cfg Config, base int64, instances []specInstance) ([]namedGraph, error) {
	out := make([]namedGraph, len(instances))
	for i, inst := range instances {
		g, err := gen.Build(inst.spec, cfg.Seed+base+int64(i))
		if err != nil {
			return nil, err
		}
		out[i] = namedGraph{family: inst.family, g: g}
	}
	return out, nil
}

// bipartiteFamilies returns the bipartite instance sweep of experiment E4.
func bipartiteFamilies(cfg Config) ([]namedGraph, error) {
	n := cfg.scaled(1)
	return buildAll(cfg, 100, []specInstance{
		{"path", fmt.Sprintf("path:n=%d", 16*n)},
		{"path", fmt.Sprintf("path:n=%d", 256*n)},
		{"evenCycle", fmt.Sprintf("cycle:n=%d", 16*n)},
		{"evenCycle", fmt.Sprintf("cycle:n=%d", 256*n)},
		{"star", fmt.Sprintf("star:n=%d", 64*n)},
		{"grid", fmt.Sprintf("grid:rows=%d,cols=%d", 8*n, 8*n)},
		{"grid", fmt.Sprintf("grid:rows=%d,cols=%d", 16*n, 32*n)},
		{"binaryTree", "bintree:levels=7"},
		{"hypercube", "hypercube:d=6"},
		{"hypercube", "hypercube:d=9"},
		{"completeBipartite", fmt.Sprintf("bipartite:a=%d,b=%d", 12*n, 20*n)},
		{"randomTree", fmt.Sprintf("tree:n=%d", 512*n)},
		{"randomBipartite", fmt.Sprintf("randbipartite:a=%d,b=%d,p=0.05", 40*n, 56*n)},
	})
}

// nonBipartiteInstance is an E5 sweep entry. strictAboveDiameter marks the
// source-symmetric classical families on which termination provably takes
// more than D rounds from every source; on irregular instances the paper's
// parenthetical "strictly larger than D" does not hold pointwise (see the
// E5 note and EXPERIMENTS.md) and is only reported, not asserted.
type nonBipartiteInstance struct {
	family              string
	g                   *graph.Graph
	strictAboveDiameter bool
}

// nonBipartiteFamilies returns the non-bipartite sweep of experiment E5.
func nonBipartiteFamilies(cfg Config) ([]nonBipartiteInstance, error) {
	n := cfg.scaled(1)
	strict := map[string]bool{"triangle": true, "oddCycle": true, "clique": true,
		"wheel": true, "petersen": true, "oddTorus": true}
	instances, err := buildAll(cfg, 200, []specInstance{
		{"triangle", "cycle:n=3"},
		{"oddCycle", fmt.Sprintf("cycle:n=%d", 15*n+2)}, // odd for every scale
		{"oddCycle", fmt.Sprintf("cycle:n=%d", 255*n+2)},
		{"clique", fmt.Sprintf("complete:n=%d", 8*n)},
		{"clique", fmt.Sprintf("complete:n=%d", 32*n)},
		{"wheel", fmt.Sprintf("wheel:n=%d", 32*n+1)},
		{"petersen", "petersen"},
		{"oddTorus", "torus:rows=5,cols=7"},
		{"lollipop", fmt.Sprintf("lollipop:k=5,path=%d", 20*n)},
		{"barbell", fmt.Sprintf("barbell:k=5,path=%d", 16*n)},
		{"randomNonBipartite", fmt.Sprintf("randnonbipartite:n=%d,p=0.02", 128*n)},
		{"randomNonBipartite", fmt.Sprintf("randnonbipartite:n=%d,p=0.005", 512*n)},
	})
	if err != nil {
		return nil, err
	}
	out := make([]nonBipartiteInstance, len(instances))
	for i, inst := range instances {
		out[i] = nonBipartiteInstance{family: inst.family, g: inst.g, strictAboveDiameter: strict[inst.family]}
	}
	return out, nil
}

// pickSources returns a deterministic spread of source nodes for an
// instance: node 0, a middle node, the last node, and two random ones.
func pickSources(g *graph.Graph, rng *rand.Rand) []graph.NodeID {
	if g.N() == 0 {
		return nil
	}
	candidates := []graph.NodeID{0, graph.NodeID(g.N() / 2), graph.NodeID(g.N() - 1)}
	for i := 0; i < 2; i++ {
		candidates = append(candidates, graph.NodeID(rng.Intn(g.N())))
	}
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, s := range candidates {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// BipartiteTermination is experiment E4: on every bipartite instance and
// every picked source, amnesiac flooding terminates in exactly e(source)
// rounds (Lemma 2.1), within the diameter (Corollary 2.2), visiting every
// node exactly once.
func BipartiteTermination(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		ID:      "E4",
		Title:   "Lemma 2.1 / Cor 2.2: AF on connected bipartite graphs",
		Columns: []string{"family", "graph", "n", "m", "diam", "source", "e(src)", "rounds", "rounds==e(src)", "max receives"},
	}
	instances, err := bipartiteFamilies(cfg)
	if err != nil {
		return nil, fmt.Errorf("E4: %w", err)
	}
	checked := 0
	for _, inst := range instances {
		if !algo.IsBipartite(inst.g) {
			return nil, fmt.Errorf("E4: instance %s is not bipartite (generator bug)", inst.g)
		}
		if !algo.Connected(inst.g) {
			return nil, fmt.Errorf("E4: instance %s is not connected", inst.g)
		}
		diam := algo.Diameter(inst.g)
		for _, src := range pickSources(inst.g, rng) {
			rep, err := runReport(cfg, inst.g, src)
			if err != nil {
				return nil, fmt.Errorf("E4: %s from %d: %w", inst.g, src, err)
			}
			if err := theory.CheckBipartiteExact(inst.g, rep); err != nil {
				return nil, fmt.Errorf("E4: %w", err)
			}
			ecc := algo.Eccentricity(inst.g, src)
			t.AddRow(inst.family, inst.g.Name(), inst.g.N(), inst.g.M(), diam, src,
				ecc, rep.Rounds(), rep.Rounds() == ecc, rep.MaxReceives())
			checked++
		}
	}
	t.AddNote("%d (instance, source) pairs; every run matched rounds == e(source) <= D with single receipt per node", checked)
	t.AddNote("graph column is the registry spec (internal/graph/gen grammar); random instances seeded from the suite seed")
	return []*Table{t}, nil
}

// NonBipartiteTermination is experiment E5: on every non-bipartite instance
// amnesiac flooding terminates (Theorem 3.1) strictly after the diameter
// and within 2D+1 rounds (Theorem 3.3), with no node receiving more than
// twice.
func NonBipartiteTermination(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	t := &Table{
		ID:      "E5",
		Title:   "Theorems 3.1 + 3.3: AF on connected non-bipartite graphs",
		Columns: []string{"family", "graph", "n", "m", "diam", "source", "rounds", "rounds<=2D+1", "rounds>D", "max receives"},
	}
	instances, err := nonBipartiteFamilies(cfg)
	if err != nil {
		return nil, fmt.Errorf("E5: %w", err)
	}
	checked, strictHolds := 0, 0
	for _, inst := range instances {
		if algo.IsBipartite(inst.g) {
			return nil, fmt.Errorf("E5: instance %s is bipartite (generator bug)", inst.g)
		}
		if !algo.Connected(inst.g) {
			return nil, fmt.Errorf("E5: instance %s is not connected", inst.g)
		}
		diam := algo.Diameter(inst.g)
		for _, src := range pickSources(inst.g, rng) {
			rep, err := runReport(cfg, inst.g, src)
			if err != nil {
				return nil, fmt.Errorf("E5: %s from %d: %w", inst.g, src, err)
			}
			if err := theory.CheckGeneralBounds(inst.g, rep); err != nil {
				return nil, fmt.Errorf("E5: %w", err)
			}
			if inst.strictAboveDiameter {
				if err := theory.CheckNonBipartiteStrict(inst.g, rep); err != nil {
					return nil, fmt.Errorf("E5: %w", err)
				}
			}
			aboveD := rep.Rounds() > diam
			if aboveD {
				strictHolds++
			}
			t.AddRow(inst.family, inst.g.Name(), inst.g.N(), inst.g.M(), diam, src,
				rep.Rounds(), rep.Rounds() <= 2*diam+1, aboveD, rep.MaxReceives())
			checked++
		}
	}
	t.AddNote("%d (instance, source) pairs; every run terminated within 2D+1 rounds with <= 2 receipts per node (Theorems 3.1, 3.3)", checked)
	t.AddNote("reproduction finding: the parenthetical 'strictly larger than D' held on %d/%d pairs — it holds on source-symmetric families (odd cycles, cliques, wheels) but not pointwise on irregular instances, where the odd-cycle echo can die before the primary wave finishes", strictHolds, checked)
	return []*Table{t}, nil
}

// RoundSetAnalysis is experiment E6: the proof machinery of Theorem 3.1.
// For a mixed set of graphs it reconstructs the round-sets R_0, R_1, ...
// and verifies that no node ever occurs in two round-sets an even duration
// apart — the paper's set Re stays empty, which is exactly what the two
// contradiction cases of Figure 4 establish.
func RoundSetAnalysis(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	t := &Table{
		ID:      "E6",
		Title:   "Figure 4 / Lemma 3.2: even-duration repeats never occur",
		Columns: []string{"graph", "source", "rounds", "|R| sequences", "|Re| even", "min d", "max d"},
	}
	instances, err := buildAll(cfg, 300, []specInstance{
		{"triangle", "cycle:n=3"},
		{"oddCycle", "cycle:n=9"},
		{"evenCycle", "cycle:n=10"},
		{"clique", "complete:n=7"},
		{"petersen", "petersen"},
		{"wheel", "wheel:n=9"},
		{"grid", "grid:rows=5,cols=6"},
		{"lollipop", "lollipop:k=3,path=6"},
		{"randomNonBipartite", "randnonbipartite:n=60,p=0.05"},
		{"randomConnected", "randconnected:n=60,p=0.05"},
	})
	if err != nil {
		return nil, fmt.Errorf("E6: %w", err)
	}
	for _, inst := range instances {
		for _, src := range pickSources(inst.g, rng) {
			rep, err := runReport(cfg, inst.g, src)
			if err != nil {
				return nil, fmt.Errorf("E6: %s from %d: %w", inst.g, src, err)
			}
			if err := theory.CheckSequenceMachinery(rep); err != nil {
				return nil, fmt.Errorf("E6: %w", err)
			}
			analysis := theory.AnalyzeSequences(rep)
			t.AddRow(inst.g.Name(), src, rep.Rounds(), len(analysis.Sequences),
				analysis.EvenCount, analysis.MinDuration, analysis.MaxDuration)
		}
	}
	t.AddNote("|R| is the paper's set of node-repeat sequences (eq. 1); |Re| its even-duration subset, which Figure 4's two contradiction cases force to be empty — never observed non-empty")
	t.AddNote("all observed durations are odd: on non-bipartite graphs the two receipts of a node differ by an odd gap (cover parities differ)")
	return []*Table{t}, nil
}
