package experiments

import (
	"fmt"
	"math/rand"

	"amnesiacflood/internal/faults"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// FaultInjection is experiment E12, making the paper's robustness open
// question executable: does amnesiac-flooding termination survive message
// loss and crashes?
//
// Findings: (a) a SINGLE lost message on a cycle already breaks
// termination — the surviving wavefront has nothing to cancel against and
// laps the cycle forever (certified by configuration repetition); (b) on
// trees loss only shrinks the flood — termination holds but coverage
// fails; (c) sustained random loss on cyclic graphs typically keeps the
// flood alive indefinitely (full coverage, no termination within the round
// limit) because every lost copy desynchronises the cancelling wavefronts;
// (d) crashes only absorb messages — they shrink coverage but never extend
// the flood.
func FaultInjection(cfg Config) ([]*Table, error) {
	// Part 1: the minimal counterexample, spelled out.
	minimal := &Table{
		ID:      "E12",
		Title:   "Fault injection: one lost message on the even cycle C4",
		Columns: []string{"round", "surviving deliveries"},
	}
	inj := faults.AfterRound{Inner: faults.DropOnce{Round: 1, From: 0, To: 3}, Round: 1}
	res, err := faults.Run(gen.Cycle(4), inj, faults.Options{Trace: true}, 0)
	if err != nil {
		return nil, fmt.Errorf("E12: C4 single loss: %w", err)
	}
	for _, rec := range res.Trace {
		var edges string
		for i, s := range rec.Sends {
			if i > 0 {
				edges += " "
			}
			edges += s.String()
		}
		minimal.AddRow(rec.Round, edges)
	}
	if res.Outcome != faults.CycleDetected {
		return nil, fmt.Errorf("E12: C4 single loss outcome %v, want certified non-termination", res.Outcome)
	}
	minimal.AddNote("losing the single copy 0->3 in round 1 leaves a lonely wavefront that laps the cycle (period %d) — synchronous AF termination (Thm 3.1) is NOT robust to even one lost message", res.CycleLength)

	// Part 2: sweeps.
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	sweep := &Table{
		ID:      "E12",
		Title:   "Fault injection sweep",
		Columns: []string{"graph", "injector", "outcome", "rounds", "delivered", "dropped", "coverage"},
	}
	type testCase struct {
		g   *graph.Graph
		inj faults.Injector
	}
	cases := []testCase{
		{gen.Cycle(4), faults.NoFaults{}},
		{gen.Cycle(4), faults.AfterRound{Inner: faults.DropOnce{Round: 1, From: 0, To: 3}, Round: 1}},
		{gen.Cycle(6), faults.AfterRound{Inner: faults.DropOnce{Round: 1, From: 0, To: 5}, Round: 1}},
		{gen.Cycle(5), faults.AfterRound{Inner: faults.DropOnce{Round: 1, From: 0, To: 4}, Round: 1}},
		{gen.Path(8), faults.AfterRound{Inner: faults.DropOnce{Round: 2, From: 1, To: 2}, Round: 2}},
		{gen.CompleteBinaryTree(4), faults.RandomLoss{P: 0.1, Seed: cfg.Seed}},
		{gen.Grid(6, 6), faults.RandomLoss{P: 0.05, Seed: cfg.Seed}},
		{gen.Grid(6, 6), faults.RandomLoss{P: 0.25, Seed: cfg.Seed}},
		{gen.RandomNonBipartite(100, 0.04, rng), faults.RandomLoss{P: 0.1, Seed: cfg.Seed}},
		{gen.Path(6), faults.CrashAt{CrashRound: map[graph.NodeID]int{3: 1}}},
		{gen.Complete(8), faults.CrashAt{CrashRound: map[graph.NodeID]int{2: 2, 5: 2}}},
		{gen.Cycle(8), faults.CrashAt{CrashRound: map[graph.NodeID]int{4: 2}}},
	}
	for _, tc := range cases {
		r, err := faults.Run(tc.g, tc.inj, faults.Options{MaxRounds: 2048}, 0)
		if err != nil {
			return nil, fmt.Errorf("E12: %s under %s: %w", tc.g, tc.inj.Name(), err)
		}
		sweep.AddRow(tc.g.Name(), tc.inj.Name(), r.Outcome, r.Rounds,
			r.Delivered, r.Dropped, fmt.Sprintf("%d/%d", r.CoverageCount(), tc.g.N()))
	}
	sweep.AddNote("loss can both shrink the flood (trees: coverage gaps) and inflate it (cycles: eternal wavefronts); crashes only absorb — they never extend the flood")
	return []*Table{minimal, sweep}, nil
}
