package experiments

import (
	"fmt"
	"math/rand"

	"amnesiacflood/internal/doublecover"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/theory"
)

// DoubleCoverPrediction is experiment E11 (full-paper machinery): the
// bipartite double cover predicts every single-source run exactly — the
// termination round, the message total, the per-node receipt schedule, and
// the complete per-round trace — from two BFS passes and no simulation.
// This is the analysis that yields Theorem 3.3's 2D+1 bound; here it is
// checked as an executable law on every family in the suite.
func DoubleCoverPrediction(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	t := &Table{
		ID:    "E11",
		Title: "Full-paper machinery: exact prediction via the bipartite double cover",
		Columns: []string{
			"graph", "bipartite", "source",
			"predicted rounds", "measured rounds",
			"predicted msgs", "measured msgs",
			"double receivers", "trace identical",
		},
	}
	instances := []namedGraph{
		{"line", gen.Path(4)},
		{"triangle", gen.Cycle(3)},
		{"evenCycle", gen.Cycle(6)},
		{"oddCycle", gen.Cycle(31)},
		{"clique", gen.Complete(12)},
		{"wheel", gen.Wheel(13)},
		{"petersen", gen.Petersen()},
		{"grid", gen.Grid(6, 7)},
		{"hypercube", gen.Hypercube(6)},
		{"lollipop", gen.Lollipop(4, 10)},
		{"barbell", gen.Barbell(4, 8)},
		{"randomTree", gen.RandomTree(150, rng)},
		{"randomNonBipartite", gen.RandomNonBipartite(150, 0.03, rng)},
		{"randomConnected", gen.RandomConnected(150, 0.03, rng)},
	}
	for _, inst := range instances {
		for _, src := range pickSources(inst.g, rng) {
			rep, err := runReport(cfg, inst.g, src)
			if err != nil {
				return nil, fmt.Errorf("E11: %s from %d: %w", inst.g, src, err)
			}
			if err := theory.CheckDoubleCoverExact(inst.g, rep); err != nil {
				return nil, fmt.Errorf("E11: %w", err)
			}
			pred := doublecover.Predict(inst.g, src)
			dist := doublecover.BFS(inst.g, src)
			t.AddRow(
				inst.g.Name(), algo.IsBipartite(inst.g), src,
				pred.Rounds, rep.Rounds(),
				pred.TotalMessages, rep.TotalMessages(),
				len(dist.SecondReceivers()), true,
			)
		}
	}
	t.AddNote("every prediction matched the simulation byte for byte (rounds, messages, receipt schedules, full trace)")
	t.AddNote("the cover reduces Lemma 2.1 (bipartite: one reachable parity per node) and Theorem 3.3 (cover distances <= 2D+1) to BFS facts")
	return []*Table{t}, nil
}
