package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"amnesiacflood/internal/classic"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/sim"
)

// ClassicComparison is experiment E8: amnesiac flooding against the
// textbook flag-based flooding the paper contrasts it with (§1). Both run
// on the same synchronous engine and the same instances; the table reports
// rounds, total messages, and the persistent per-node memory each needs.
func ClassicComparison(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	t := &Table{
		ID:    "E8",
		Title: "Amnesiac flooding vs classic (flag-based) flooding",
		Columns: []string{
			"graph", "bipartite", "source",
			"AF rounds", "classic rounds",
			"AF msgs", "classic msgs", "msg ratio",
			"AF bits/node", "classic bits/node",
		},
	}
	instances, err := buildAll(cfg, 400, []specInstance{
		{"path", "path:n=64"},
		{"evenCycle", "cycle:n=64"},
		{"oddCycle", "cycle:n=65"},
		{"grid", "grid:rows=12,cols=12"},
		{"hypercube", "hypercube:d=7"},
		{"clique", "complete:n=24"},
		{"wheel", "wheel:n=25"},
		{"petersen", "petersen"},
		{"randomTree", "tree:n=200"},
		{"randomNonBipartite", "randnonbipartite:n=200,p=0.02"},
	})
	if err != nil {
		return nil, fmt.Errorf("E8: %w", err)
	}
	for _, inst := range instances {
		bip := algo.IsBipartite(inst.g)
		src := graph.NodeID(rng.Intn(inst.g.N()))

		afRep, err := runReport(cfg, inst.g, src)
		if err != nil {
			return nil, fmt.Errorf("E8: AF on %s: %w", inst.g, err)
		}
		clSess, err := sim.New(inst.g,
			sim.WithProtocol("classic"),
			sim.WithEngine(cfg.EngineKind()),
			sim.WithOrigins(src),
		)
		if err != nil {
			return nil, fmt.Errorf("E8: classic on %s: %w", inst.g, err)
		}
		clRes, err := clSess.Run(context.Background())
		if err != nil {
			return nil, fmt.Errorf("E8: classic on %s: %w", inst.g, err)
		}
		ratio := float64(afRep.TotalMessages()) / float64(clRes.TotalMessages)
		t.AddRow(
			inst.g.Name(), bip, src,
			afRep.Rounds(), clRes.Rounds,
			afRep.TotalMessages(), clRes.TotalMessages, fmt.Sprintf("%.2f", ratio),
			0, classic.PersistentBitsPerNode(),
		)
	}
	t.AddNote("paper's motivation: AF needs zero persistent bits per node; the price is up to ~2x messages and ~2x rounds on non-bipartite graphs")
	t.AddNote("on bipartite graphs AF and classic flooding send identical message sets (both are a parallel BFS)")
	return []*Table{t}, nil
}
