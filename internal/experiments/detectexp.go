package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
)

// BipartitenessDetection is experiment E9, the application sketched in
// §1.1: probe a connected graph with a single amnesiac flood and decide
// bipartiteness from the flood's behaviour alone (double receipts / late
// termination). Ground truth is BFS two-colouring; the experiment demands
// 100% agreement.
//
// The probe runs through the sim façade with the streaming "bipartite"
// analysis attached — the registry form of the old detect.Bipartiteness
// post-hoc walk: the verdict, witness count, and eccentricity all arrive as
// metric columns of the run itself, and the analysis cross-checks the two
// witness signals internally.
func BipartitenessDetection(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	t := &Table{
		ID:      "E9",
		Title:   "Topology detection: bipartiteness via a single amnesiac flood",
		Columns: []string{"graph", "source", "truth bipartite", "flood verdict", "rounds", "e(src)", "odd-cycle witnesses"},
	}
	instances := []namedGraph{
		{"path", gen.Path(40)},
		{"evenCycle", gen.Cycle(40)},
		{"oddCycle", gen.Cycle(41)},
		{"grid", gen.Grid(7, 9)},
		{"oddTorus", gen.Torus(5, 5)},
		{"evenTorus", gen.Torus(4, 6)},
		{"clique", gen.Complete(12)},
		{"petersen", gen.Petersen()},
		{"hypercube", gen.Hypercube(5)},
		{"randomTree", gen.RandomTree(120, rng)},
	}
	// Plus a batch of random connected graphs with unknown-by-construction
	// bipartiteness, sized by the config.
	for i := 0; i < cfg.scaled(10); i++ {
		instances = append(instances, namedGraph{
			"randomConnected",
			gen.RandomConnected(60+rng.Intn(60), 0.02+0.02*rng.Float64(), rng),
		})
	}
	agreements := 0
	for _, inst := range instances {
		truth := algo.IsBipartite(inst.g)
		src := graph.NodeID(rng.Intn(inst.g.N()))
		sess, err := sim.New(inst.g,
			sim.WithProtocol("amnesiac"),
			sim.WithEngine(cfg.EngineKind()),
			sim.WithOrigins(src),
			sim.WithAnalysis("bipartite"),
			sim.WithAnalysisStop(false), // full flood: collect every witness, not just the first
		)
		if err != nil {
			return nil, fmt.Errorf("E9: %s: %w", inst.g, err)
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			return nil, fmt.Errorf("E9: %s: %w", inst.g, err)
		}
		verdict := res.Metrics["bipartite.bipartite"] == 1
		if verdict != truth {
			return nil, fmt.Errorf("E9: %s from %d: flood verdict %t disagrees with two-colouring %t",
				inst.g, src, verdict, truth)
		}
		agreements++
		t.AddRow(inst.g.Name(), src, truth, verdict, res.Rounds,
			int(res.Metrics["bipartite.eccentricity"]), int(res.Metrics["bipartite.witnesses"]))
	}
	t.AddNote("%d/%d instances: flood verdict agrees with ground-truth two-colouring (paper §1.1 application)", agreements, agreements)
	t.AddNote("probe = sim façade + the streaming bipartite analysis (sim.WithAnalysis); the verdict, witnesses, and e(src) are the run's own metric columns")
	return []*Table{t}, nil
}
