package experiments

import (
	"fmt"
	"strings"

	"amnesiacflood/internal/async"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/trace"
)

// AsyncNonTermination is experiment E7 (Figure 5): under the paper's
// delaying adversary, asynchronous amnesiac flooding on the triangle never
// terminates — certified by a repeated configuration — while the same run
// under the synchronous (zero-delay) adversary terminates like Figure 2.
// The sweep extends the certificate to longer cycles and shows trees
// terminate under every adversary tried.
func AsyncNonTermination(cfg Config) ([]*Table, error) {
	// Part 1: the triangle schedule of Figure 5, round by round.
	tri := gen.Cycle(3)
	res, err := async.Run(tri, async.CollisionDelayer{}, async.Options{Trace: true}, 1)
	if err != nil {
		return nil, fmt.Errorf("E7: triangle: %w", err)
	}
	fig := &Table{
		ID:      "E7",
		Title:   "Figure 5: async AF on the triangle from b under the delaying adversary",
		Columns: []string{"round", "deliveries"},
	}
	for _, d := range res.Trace {
		edges := make([]string, len(d.Msgs))
		for i, m := range d.Msgs {
			edges[i] = trace.Letters(m.From) + "->" + trace.Letters(m.To)
		}
		fig.AddRow(d.Round, strings.Join(edges, " "))
	}
	if res.Outcome != async.CycleDetected {
		return nil, fmt.Errorf("E7: triangle outcome %v, want non-termination certificate", res.Outcome)
	}
	fig.AddNote("paper: the schedule loops forever; measured: configuration at round %d recurs at round %d (period %d) — non-termination certified",
		res.CycleStart, res.CycleStart+res.CycleLength, res.CycleLength)

	// Part 2: adversary sweep over topologies.
	sweep := &Table{
		ID:      "E7",
		Title:   "Figure 5 (cont.): adversary sweep",
		Columns: []string{"graph", "adversary", "outcome", "rounds", "period"},
	}
	type testCase struct {
		g   *graph.Graph
		adv async.Adversary
	}
	cases := []testCase{
		{gen.Cycle(3), async.SyncAdversary{}},
		{gen.Cycle(3), async.CollisionDelayer{}},
		{gen.Cycle(5), async.CollisionDelayer{}},
		{gen.Cycle(7), async.CollisionDelayer{}},
		{gen.Cycle(6), async.CollisionDelayer{}},
		{gen.Complete(4), async.CollisionDelayer{}},
		{gen.Path(8), async.CollisionDelayer{}},
		{gen.Path(8), async.HoldNode{Node: 3, Extra: 2}},
		{gen.CompleteBinaryTree(4), async.CollisionDelayer{}},
		{gen.CompleteBinaryTree(4), async.NewRandomAdversary(cfg.Seed, 3)},
		{gen.Cycle(3), async.NewRandomAdversary(cfg.Seed, 3)},
		{gen.Cycle(3), async.UniformDelayer{Extra: 2}},
		{gen.Cycle(9), async.UniformDelayer{Extra: 2}},
		{gen.Cycle(3), async.EdgeDelayer{Edge: graph.Edge{U: 1, V: 2}, Extra: 1}},
		{gen.Cycle(9), async.EdgeDelayer{Edge: graph.Edge{U: 0, V: 8}, Extra: 1}},
	}
	for _, tc := range cases {
		r, err := async.Run(tc.g, tc.adv, async.Options{MaxRounds: 4096}, 0)
		if err != nil {
			return nil, fmt.Errorf("E7: %s under %s: %w", tc.g, tc.adv.Name(), err)
		}
		period := "-"
		if r.Outcome == async.CycleDetected {
			period = fmt.Sprintf("%d", r.CycleLength)
		}
		sweep.AddRow(tc.g.Name(), tc.adv.Name(), r.Outcome, r.Rounds, period)
	}
	sweep.AddNote("paper claims an adversary can force non-termination; the delaying adversary certifies it on every cycle, while trees/paths terminate under all adversaries tried (messages only die at leaves)")
	sweep.AddNote("controls: uniform delay only stretches the synchronous run (termination preserved); one slow edge can even accelerate termination by merging wavefronts — asymmetric collision-splitting is the specific mechanism that breaks it")
	return []*Table{fig, sweep}, nil
}
