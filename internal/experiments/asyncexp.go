package experiments

import (
	"context"
	"fmt"
	"strings"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
	"amnesiacflood/internal/trace"

	// The model specs below address the adversary and schedule registries,
	// which their defining packages populate from init.
	_ "amnesiacflood/internal/async"
	_ "amnesiacflood/internal/dynamic"
)

// AsyncNonTermination is experiment E7 (Figure 5): under the paper's
// delaying adversary, asynchronous amnesiac flooding on the triangle never
// terminates — certified by a repeated configuration — while the same run
// under the synchronous (zero-delay) adversary terminates like Figure 2.
// The sweep extends the certificate to longer cycles and shows trees
// terminate under every adversary tried. All runs go through the sim
// façade's model axis (sim.WithModel), so the table's adversary column is
// the exact round-trippable model spec.
func AsyncNonTermination(cfg Config) ([]*Table, error) {
	// Part 1: the triangle schedule of Figure 5, round by round.
	res, err := runModel(cfg, "cycle:n=3", "adversary:collision", 0, true, 1)
	if err != nil {
		return nil, fmt.Errorf("E7: triangle: %w", err)
	}
	fig := &Table{
		ID:      "E7",
		Title:   "Figure 5: async AF on the triangle from b under the delaying adversary",
		Columns: []string{"round", "deliveries"},
	}
	for _, rec := range res.Trace {
		edges := make([]string, len(rec.Sends))
		for i, s := range rec.Sends {
			edges[i] = trace.Letters(s.From) + "->" + trace.Letters(s.To)
		}
		fig.AddRow(rec.Round, strings.Join(edges, " "))
	}
	if res.Outcome != engine.OutcomeCycle || res.Certificate == nil {
		return nil, fmt.Errorf("E7: triangle outcome %v, want non-termination certificate", res.Outcome)
	}
	fig.AddNote("paper: the schedule loops forever; measured: configuration at round %d recurs at round %d (period %d) — non-termination certified",
		res.Certificate.Start, res.Certificate.Start+res.Certificate.Length, res.Certificate.Length)

	// Part 2: adversary sweep over topologies, addressed by model spec.
	sweep := &Table{
		ID:      "E7",
		Title:   "Figure 5 (cont.): adversary sweep",
		Columns: []string{"graph", "model", "outcome", "rounds", "period"},
	}
	type testCase struct {
		graph string
		model string
	}
	cases := []testCase{
		{"cycle:n=3", "adversary:sync"},
		{"cycle:n=3", "adversary:collision"},
		{"cycle:n=5", "adversary:collision"},
		{"cycle:n=7", "adversary:collision"},
		{"cycle:n=6", "adversary:collision"},
		{"complete:n=4", "adversary:collision"},
		{"path:n=8", "adversary:collision"},
		{"path:n=8", "adversary:hold:node=3,extra=2"},
		{"bintree:levels=4", "adversary:collision"},
		{"bintree:levels=4", "adversary:random:max=3"},
		{"cycle:n=3", "adversary:random:max=3"},
		{"cycle:n=3", "adversary:uniform:extra=2"},
		{"cycle:n=9", "adversary:uniform:extra=2"},
		{"cycle:n=3", "adversary:edge:u=1,v=2,extra=1"},
		{"cycle:n=9", "adversary:edge:u=0,v=8,extra=1"},
	}
	for _, tc := range cases {
		r, err := runModel(cfg, tc.graph, tc.model, 4096, false, 0)
		if err != nil {
			return nil, fmt.Errorf("E7: %s under %s: %w", tc.graph, tc.model, err)
		}
		period := "-"
		if r.Certificate != nil {
			period = fmt.Sprintf("%d", r.Certificate.Length)
		}
		sweep.AddRow(tc.graph, tc.model, r.Outcome, r.Rounds, period)
	}
	sweep.AddNote("paper claims an adversary can force non-termination; the delaying adversary certifies it on every cycle, while trees/paths terminate under all adversaries tried (messages only die at leaves)")
	sweep.AddNote("controls: uniform delay only stretches the synchronous run (termination preserved); one slow edge can even accelerate termination by merging wavefronts — asymmetric collision-splitting is the specific mechanism that breaks it")
	return []*Table{fig, sweep}, nil
}

// runModel executes one model-axis run through the sim façade.
func runModel(cfg Config, graphSpec, modelSpec string, maxRounds int, traced bool, origin int) (engine.Result, error) {
	g, err := gen.Build(graphSpec, cfg.Seed)
	if err != nil {
		return engine.Result{}, err
	}
	sess, err := sim.New(g,
		sim.WithProtocol("amnesiac"),
		sim.WithModel(modelSpec),
		sim.WithOrigins(graph.NodeID(origin)),
		sim.WithSeed(cfg.Seed),
		sim.WithMaxRounds(maxRounds),
		sim.WithTrace(traced),
	)
	if err != nil {
		return engine.Result{}, err
	}
	return sess.Run(context.Background())
}
