package experiments

import (
	"fmt"

	"amnesiacflood/internal/dynamic"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// DynamicNetworks is experiment E14, executing the paper's open question
// about non-static networks: amnesiac flooding over graphs whose edges
// come and go between rounds.
//
// Findings: a static schedule reproduces the synchronous results exactly;
// one single-round edge outage on a cycle leaves an eternally circulating
// wavefront (the dynamic twin of the E12 message-loss finding); periodic
// churn (blinking links, alternating halves) can either cut the flood
// short, sustain it forever, or leave it untouched, depending on phase
// alignment — termination under dynamics is a property of the schedule,
// not the graph.
func DynamicNetworks(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Dynamic networks: AF under edge churn",
		Columns: []string{
			"graph", "schedule", "outcome", "rounds", "delivered", "lost", "coverage", "period",
		},
	}
	type testCase struct {
		g     *graph.Graph
		sched dynamic.Schedule
	}
	cases := []testCase{
		{gen.Cycle(4), dynamic.Static{}},
		{gen.Cycle(4), dynamic.OutageOnce{Round: 1, Edge: graph.Edge{U: 0, V: 3}}},
		{gen.Cycle(6), dynamic.OutageOnce{Round: 2, Edge: graph.Edge{U: 2, V: 3}}},
		{gen.Cycle(7), dynamic.OutageOnce{Round: 1, Edge: graph.Edge{U: 0, V: 6}}},
		{gen.CompleteBinaryTree(4), dynamic.OutageOnce{Round: 1, Edge: graph.Edge{U: 0, V: 1}}},
		{gen.Path(4), dynamic.Blinking{Edge: graph.Edge{U: 1, V: 2}, K: 2, Phase: 0}},
		{gen.Path(4), dynamic.Blinking{Edge: graph.Edge{U: 1, V: 2}, K: 2, Phase: 1}},
		{gen.Cycle(8), dynamic.Blinking{Edge: graph.Edge{U: 0, V: 7}, K: 3, Phase: 1}},
		{gen.Cycle(6), dynamic.Alternating{}},
		{gen.Grid(4, 4), dynamic.Alternating{}},
		{gen.Complete(6), dynamic.Alternating{}},
		{gen.Petersen(), dynamic.Alternating{}},
	}
	for _, tc := range cases {
		res, err := dynamic.Run(tc.g, tc.sched, dynamic.Options{MaxRounds: 4096}, 0)
		if err != nil {
			return nil, fmt.Errorf("E14: %s under %s: %w", tc.g, tc.sched.Name(), err)
		}
		period := "-"
		if res.Outcome == dynamic.CycleDetected {
			period = fmt.Sprintf("%d", res.CycleLength)
		}
		t.AddRow(tc.g.Name(), tc.sched.Name(), res.Outcome, res.Rounds,
			res.Delivered, res.Lost,
			fmt.Sprintf("%d/%d", res.CoverageCount(), tc.g.N()), period)
	}
	// Hard assertions for the headline rows.
	check, err := dynamic.Run(gen.Cycle(4),
		dynamic.OutageOnce{Round: 1, Edge: graph.Edge{U: 0, V: 3}}, dynamic.Options{}, 0)
	if err != nil {
		return nil, err
	}
	if check.Outcome != dynamic.CycleDetected {
		return nil, fmt.Errorf("E14: C4 single outage outcome %v, want certified non-termination", check.Outcome)
	}
	static, err := dynamic.Run(gen.Cycle(4), dynamic.Static{}, dynamic.Options{}, 0)
	if err != nil {
		return nil, err
	}
	if static.Outcome != dynamic.Terminated || static.Rounds != 2 {
		return nil, fmt.Errorf("E14: static C4 run diverged from the synchronous engine")
	}
	t.AddNote("a one-round outage of a single cycle edge leaves a wavefront circulating forever — the dynamic counterpart of E12's lost message")
	t.AddNote("periodic churn outcomes are certified (configuration x schedule-phase repetition), never timed out")
	return []*Table{t}, nil
}
