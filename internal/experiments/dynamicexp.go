package experiments

import (
	"context"
	"fmt"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/model"
	"amnesiacflood/internal/sim"
)

// DynamicNetworks is experiment E14, executing the paper's open question
// about non-static networks: amnesiac flooding over graphs whose edges
// come and go between rounds, addressed as "schedule:..." model specs
// through the sim façade.
//
// Findings: a static schedule reproduces the synchronous results exactly;
// one single-round edge outage on a cycle leaves an eternally circulating
// wavefront (the dynamic twin of the E12 message-loss finding); periodic
// churn (blinking links, alternating halves) can either cut the flood
// short, sustain it forever, or leave it untouched, depending on phase
// alignment — termination under dynamics is a property of the schedule,
// not the graph.
func DynamicNetworks(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Dynamic networks: AF under edge churn",
		Columns: []string{
			"graph", "model", "outcome", "rounds", "delivered", "lost", "coverage", "period",
		},
	}
	type testCase struct {
		graph string
		model string
	}
	cases := []testCase{
		{"cycle:n=4", "schedule:static"},
		{"cycle:n=4", "schedule:outage:round=1,u=0,v=3"},
		{"cycle:n=6", "schedule:outage:round=2,u=2,v=3"},
		{"cycle:n=7", "schedule:outage:round=1,u=0,v=6"},
		{"bintree:levels=4", "schedule:outage:round=1,u=0,v=1"},
		{"path:n=4", "schedule:blink:u=1,v=2,period=2,phase=0"},
		{"path:n=4", "schedule:blink:u=1,v=2,period=2,phase=1"},
		{"cycle:n=8", "schedule:blink:u=0,v=7,period=3,phase=1"},
		{"cycle:n=6", "schedule:alternating"},
		{"grid:rows=4,cols=4", "schedule:alternating"},
		{"complete:n=6", "schedule:alternating"},
		{"petersen", "schedule:alternating"},
	}
	for _, tc := range cases {
		res, cov, n, err := runSchedule(cfg, tc.graph, tc.model, 4096)
		if err != nil {
			return nil, fmt.Errorf("E14: %s under %s: %w", tc.graph, tc.model, err)
		}
		period := "-"
		if res.Certificate != nil {
			period = fmt.Sprintf("%d", res.Certificate.Length)
		}
		t.AddRow(tc.graph, tc.model, res.Outcome, res.Rounds,
			res.TotalMessages, res.Lost,
			fmt.Sprintf("%d/%d", cov.Count(), n), period)
	}
	// Hard assertions for the headline rows.
	check, _, _, err := runSchedule(cfg, "cycle:n=4", "schedule:outage:round=1,u=0,v=3", 0)
	if err != nil {
		return nil, err
	}
	if check.Outcome != engine.OutcomeCycle {
		return nil, fmt.Errorf("E14: C4 single outage outcome %v, want certified non-termination", check.Outcome)
	}
	static, _, _, err := runSchedule(cfg, "cycle:n=4", "schedule:static", 0)
	if err != nil {
		return nil, err
	}
	if static.Outcome != engine.OutcomeTerminated || static.Rounds != 2 {
		return nil, fmt.Errorf("E14: static C4 run diverged from the synchronous engine")
	}
	t.AddNote("a one-round outage of a single cycle edge leaves a wavefront circulating forever — the dynamic counterpart of E12's lost message")
	t.AddNote("periodic churn outcomes are certified (configuration x schedule-phase repetition), never timed out")
	return []*Table{t}, nil
}

// runSchedule executes one dynamic-model run through the sim façade with a
// coverage observer attached, returning the built graph's size alongside.
func runSchedule(cfg Config, graphSpec, modelSpec string, maxRounds int) (engine.Result, *model.Coverage, int, error) {
	g, err := gen.Build(graphSpec, cfg.Seed)
	if err != nil {
		return engine.Result{}, nil, 0, err
	}
	cov := model.NewCoverage(g.N(), 0)
	sess, err := sim.New(g,
		sim.WithProtocol("amnesiac"),
		sim.WithModel(modelSpec),
		sim.WithOrigins(graph.NodeID(0)),
		sim.WithSeed(cfg.Seed),
		sim.WithMaxRounds(maxRounds),
		sim.WithObserver(cov),
	)
	if err != nil {
		return engine.Result{}, nil, 0, err
	}
	res, err := sess.Run(context.Background())
	return res, cov, g.N(), err
}
