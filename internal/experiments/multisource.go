package experiments

import (
	"fmt"
	"math/rand"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/theory"
)

// MultiSource is experiment E13, the natural generalisation the full paper
// studies: all of a set S of origins start the flood in round 1.
//
// Findings: termination holds for every origin set tried (with the odd-gap
// invariant of the Theorem 3.1 machinery intact); on bipartite graphs the
// flood is a multi-source parallel BFS — exactly once per node — when all
// origins lie in the same colour class, while origins in different classes
// create parity conflicts that behave like odd cycles (double receipts),
// even though the graph has none.
func MultiSource(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	t := &Table{
		ID:    "E13",
		Title: "Multi-source amnesiac flooding",
		Columns: []string{
			"graph", "origins", "same colour class", "rounds",
			"multi-BFS depth", "max receives", "terminated",
		},
	}
	type testCase struct {
		g       *graph.Graph
		origins []graph.NodeID
	}
	cases := []testCase{
		// Bipartite, same colour class (even pairwise distances).
		{gen.Path(9), []graph.NodeID{0, 8}},
		{gen.Path(9), []graph.NodeID{0, 4, 8}},
		{gen.Cycle(12), []graph.NodeID{0, 6}},
		{gen.Grid(5, 5), []graph.NodeID{0, 24}},
		// Bipartite, mixed colour classes (some odd pairwise distance).
		{gen.Path(9), []graph.NodeID{0, 5}},
		{gen.Cycle(12), []graph.NodeID{0, 3}},
		{gen.Grid(5, 5), []graph.NodeID{0, 1}},
		// Non-bipartite.
		{gen.Cycle(9), []graph.NodeID{0, 3}},
		{gen.Complete(10), []graph.NodeID{0, 1, 2}},
		{gen.Petersen(), []graph.NodeID{0, 7}},
	}
	// Random instances with random origin sets.
	for i := 0; i < cfg.scaled(6); i++ {
		g := gen.RandomConnected(40+rng.Intn(80), 0.04, rng)
		k := 2 + rng.Intn(3)
		origins := make([]graph.NodeID, 0, k)
		for j := 0; j < k; j++ {
			origins = append(origins, graph.NodeID(rng.Intn(g.N())))
		}
		cases = append(cases, testCase{g, origins})
	}

	for _, tc := range cases {
		rep, err := runReport(cfg, tc.g, tc.origins...)
		if err != nil {
			return nil, fmt.Errorf("E13: %s from %v: %w", tc.g, tc.origins, err)
		}
		if !rep.Result.Terminated {
			return nil, fmt.Errorf("E13: %s from %v did not terminate", tc.g, tc.origins)
		}
		if !rep.Covered() {
			return nil, fmt.Errorf("E13: %s from %v: coverage gap", tc.g, tc.origins)
		}
		if err := theory.CheckOddGapInvariant(rep); err != nil {
			return nil, fmt.Errorf("E13: %w", err)
		}
		sameClass := sameColourClass(tc.g, rep.Origins)
		depth := maxFinite(algo.BFSMulti(tc.g, rep.Origins))
		// Same-class bipartite origin sets must behave as a multi-source
		// parallel BFS: depth rounds, single receipts.
		if algo.IsBipartite(tc.g) && sameClass {
			if rep.Rounds() != depth || rep.MaxReceives() > 1 {
				return nil, fmt.Errorf(
					"E13: bipartite same-class %s from %v: rounds=%d depth=%d maxReceives=%d, want multi-BFS",
					tc.g, rep.Origins, rep.Rounds(), depth, rep.MaxReceives())
			}
		}
		t.AddRow(tc.g.Name(), fmt.Sprint(rep.Origins), sameClass, rep.Rounds(),
			depth, rep.MaxReceives(), rep.Result.Terminated)
	}
	t.AddNote("every origin set terminated, covered the graph, and respected the odd-gap invariant")
	t.AddNote("same-colour-class origins on bipartite graphs give a clean multi-source BFS; mixed classes create parity conflicts and double receipts without any odd cycle")
	return []*Table{t}, nil
}

// sameColourClass reports whether all origins fall in one side of some
// proper 2-colouring (false for non-bipartite graphs or mixed origins).
func sameColourClass(g *graph.Graph, origins []graph.NodeID) bool {
	col := algo.TwoColor(g)
	if !col.Bipartite || len(origins) == 0 {
		return false
	}
	side := col.Sides[origins[0]]
	for _, o := range origins[1:] {
		if col.Sides[o] != side {
			return false
		}
	}
	return true
}

// maxFinite returns the maximum non-negative entry of dist.
func maxFinite(dist []int) int {
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	return max
}
