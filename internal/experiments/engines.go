package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
)

// EngineEquivalence is experiment E10: every synchronous engine — the
// deterministic sequential reference, the goroutine-per-node channel engine,
// and the zero-allocation CSR engine in sequential and parallel mode — must
// produce byte-identical traces for amnesiac flooding on every instance.
// This validates that the paper's round semantics survive both a genuinely
// concurrent substrate and an aggressively optimised one. The runs go
// through the sim façade, so the dispatch it exercises is exactly the one
// the CLIs and any serving layer use.
func EngineEquivalence(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	t := &Table{
		ID:      "E10",
		Title:   "Engine equivalence: sequential vs channels vs fast vs fast-parallel",
		Columns: []string{"graph", "source", "rounds", "messages", "traces identical"},
	}
	instances := []namedGraph{
		{"path", gen.Path(32)},
		{"evenCycle", gen.Cycle(32)},
		{"oddCycle", gen.Cycle(33)},
		{"clique", gen.Complete(16)},
		{"grid", gen.Grid(8, 8)},
		{"petersen", gen.Petersen()},
		{"wheel", gen.Wheel(17)},
		{"lollipop", gen.Lollipop(5, 40)},
		{"torus", gen.Torus(5, 7)},
		{"randomTree", gen.RandomTree(100, rng)},
		{"randomNonBipartite", gen.RandomNonBipartite(100, 0.04, rng)},
		{"randomConnected", gen.RandomConnected(100, 0.04, rng)},
	}
	ctx := context.Background()
	others := []sim.EngineKind{sim.Channels, sim.Fast, sim.Parallel}
	for _, inst := range instances {
		src := graph.NodeID(rng.Intn(inst.g.N()))
		runOn := func(kind sim.EngineKind) (engine.Result, error) {
			sess, err := sim.New(inst.g,
				sim.WithProtocol("amnesiac"),
				sim.WithEngine(kind),
				sim.WithOrigins(src),
				sim.WithTrace(true),
			)
			if err != nil {
				return engine.Result{}, err
			}
			return sess.Run(ctx)
		}
		seq, err := runOn(sim.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E10: sequential on %s: %w", inst.g, err)
		}
		if seq.Engine != sim.Sequential.String() {
			return nil, fmt.Errorf("E10: façade attributed %q, want sequential", seq.Engine)
		}
		same := true
		for _, kind := range others {
			res, err := runOn(kind)
			if err != nil {
				return nil, fmt.Errorf("E10: %s on %s: %w", kind, inst.g, err)
			}
			if !engine.EqualTraces(seq.Trace, res.Trace) {
				return nil, fmt.Errorf("E10: %s on %s from %d: traces differ", kind, inst.g, src)
			}
			if seq.Rounds != res.Rounds || seq.TotalMessages != res.TotalMessages {
				return nil, fmt.Errorf("E10: %s on %s from %d: summary mismatch (%d/%d rounds, %d/%d msgs)",
					kind, inst.g, src, seq.Rounds, res.Rounds, seq.TotalMessages, res.TotalMessages)
			}
			if res.Engine != kind.String() {
				return nil, fmt.Errorf("E10: façade attributed %q, want %s", res.Engine, kind)
			}
		}
		t.AddRow(inst.g.Name(), src, seq.Rounds, seq.TotalMessages, same)
	}
	t.AddNote("all four substrates implement the same synchronous round abstraction; every trace compared byte-identical")
	t.AddNote("runs dispatched through the sim façade (protocol registry + session API)")
	return []*Table{t}, nil
}
