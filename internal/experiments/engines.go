package experiments

import (
	"fmt"
	"math/rand"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// EngineEquivalence is experiment E10: every synchronous engine — the
// deterministic sequential reference, the goroutine-per-node channel engine,
// and the zero-allocation CSR engine in sequential and parallel mode — must
// produce byte-identical traces for amnesiac flooding on every instance.
// This validates that the paper's round semantics survive both a genuinely
// concurrent substrate and an aggressively optimised one.
func EngineEquivalence(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	t := &Table{
		ID:      "E10",
		Title:   "Engine equivalence: sequential vs channels vs fast vs fast-parallel",
		Columns: []string{"graph", "source", "rounds", "messages", "traces identical"},
	}
	instances := []namedGraph{
		{"path", gen.Path(32)},
		{"evenCycle", gen.Cycle(32)},
		{"oddCycle", gen.Cycle(33)},
		{"clique", gen.Complete(16)},
		{"grid", gen.Grid(8, 8)},
		{"petersen", gen.Petersen()},
		{"wheel", gen.Wheel(17)},
		{"lollipop", gen.Lollipop(5, 40)},
		{"torus", gen.Torus(5, 7)},
		{"randomTree", gen.RandomTree(100, rng)},
		{"randomNonBipartite", gen.RandomNonBipartite(100, 0.04, rng)},
		{"randomConnected", gen.RandomConnected(100, 0.04, rng)},
	}
	others := []core.EngineKind{core.Channels, core.Fast, core.Parallel}
	for _, inst := range instances {
		src := graph.NodeID(rng.Intn(inst.g.N()))
		flood, err := core.NewFlood(inst.g, src)
		if err != nil {
			return nil, fmt.Errorf("E10: %s: %w", inst.g, err)
		}
		seq, err := core.RunEngine(core.Sequential, inst.g, flood, engine.Options{Trace: true})
		if err != nil {
			return nil, fmt.Errorf("E10: sequential on %s: %w", inst.g, err)
		}
		same := true
		for _, kind := range others {
			res, err := core.RunEngine(kind, inst.g, flood, engine.Options{Trace: true})
			if err != nil {
				return nil, fmt.Errorf("E10: %s on %s: %w", kind, inst.g, err)
			}
			if !engine.EqualTraces(seq.Trace, res.Trace) {
				return nil, fmt.Errorf("E10: %s on %s from %d: traces differ", kind, inst.g, src)
			}
			if seq.Rounds != res.Rounds || seq.TotalMessages != res.TotalMessages {
				return nil, fmt.Errorf("E10: %s on %s from %d: summary mismatch (%d/%d rounds, %d/%d msgs)",
					kind, inst.g, src, seq.Rounds, res.Rounds, seq.TotalMessages, res.TotalMessages)
			}
		}
		t.AddRow(inst.g.Name(), src, seq.Rounds, seq.TotalMessages, same)
	}
	t.AddNote("all four substrates implement the same synchronous round abstraction; every trace compared byte-identical")
	return []*Table{t}, nil
}
