package experiments

import (
	"fmt"
	"math/rand"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/chanengine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// EngineEquivalence is experiment E10: the deterministic sequential engine
// and the goroutine-per-node channel engine must produce byte-identical
// traces for amnesiac flooding on every instance. This validates that the
// paper's round semantics survive a genuinely concurrent implementation
// where Go channels carry the per-round messages.
func EngineEquivalence(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	t := &Table{
		ID:      "E10",
		Title:   "Engine equivalence: sequential vs goroutine/channel engine",
		Columns: []string{"graph", "source", "rounds", "messages", "traces identical"},
	}
	instances := []namedGraph{
		{"path", gen.Path(32)},
		{"evenCycle", gen.Cycle(32)},
		{"oddCycle", gen.Cycle(33)},
		{"clique", gen.Complete(16)},
		{"grid", gen.Grid(8, 8)},
		{"petersen", gen.Petersen()},
		{"wheel", gen.Wheel(17)},
		{"randomTree", gen.RandomTree(100, rng)},
		{"randomNonBipartite", gen.RandomNonBipartite(100, 0.04, rng)},
		{"randomConnected", gen.RandomConnected(100, 0.04, rng)},
	}
	for _, inst := range instances {
		src := graph.NodeID(rng.Intn(inst.g.N()))
		flood, err := core.NewFlood(inst.g, src)
		if err != nil {
			return nil, fmt.Errorf("E10: %s: %w", inst.g, err)
		}
		seq, err := engine.Run(inst.g, flood, engine.Options{Trace: true})
		if err != nil {
			return nil, fmt.Errorf("E10: sequential on %s: %w", inst.g, err)
		}
		chn, err := chanengine.Run(inst.g, flood, engine.Options{Trace: true})
		if err != nil {
			return nil, fmt.Errorf("E10: channels on %s: %w", inst.g, err)
		}
		same := engine.EqualTraces(seq.Trace, chn.Trace)
		if !same {
			return nil, fmt.Errorf("E10: %s from %d: traces differ", inst.g, src)
		}
		if seq.Rounds != chn.Rounds || seq.TotalMessages != chn.TotalMessages {
			return nil, fmt.Errorf("E10: %s from %d: summary mismatch (%d/%d rounds, %d/%d msgs)",
				inst.g, src, seq.Rounds, chn.Rounds, seq.TotalMessages, chn.TotalMessages)
		}
		t.AddRow(inst.g.Name(), src, seq.Rounds, seq.TotalMessages, same)
	}
	t.AddNote("the two substrates implement the same synchronous round abstraction; every trace compared byte-identical")
	return []*Table{t}, nil
}
