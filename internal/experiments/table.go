// Package experiments regenerates every evaluation artifact of the paper —
// Figures 1, 2, 3 and 5, the proof machinery of Figure 4, and the three
// termination theorems — as reproducible tables. DESIGN.md §3 is the
// authoritative index; EXPERIMENTS.md records paper-vs-measured for each.
//
// Every experiment is a pure function of its Config (sizes and RNG seed),
// so reruns are bit-identical.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"amnesiacflood/internal/sim"
)

// Table is a printable experiment result: a title, a header row, data rows,
// and free-form notes comparing the measurement with the paper's claim.
// The JSON field tags define the machine-readable form emitted by
// cmd/afbench -json.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a data row; values are stringified with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = fmt.Sprintf("%v", v)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = pad(cell, widths[i])
			} else {
				parts[i] = cell
			}
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := printRow(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := printRow(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := printRow(row); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Config parameterises the experiment suite.
type Config struct {
	// Seed drives every random generator in the suite.
	Seed int64
	// Scale multiplies the default instance sizes; 1 is the standard
	// suite, smaller values (the benchmarks use Scale handled per
	// experiment) shrink runtimes.
	Scale int
	// Engine selects the synchronous engine executing the single-run
	// experiments; the zero value means sim.Sequential. Every engine
	// produces identical tables (the engines are trace-equivalent), so
	// this only changes how fast the suite runs.
	Engine sim.EngineKind
}

// EngineKind resolves the configured engine, defaulting to sim.Sequential.
func (c Config) EngineKind() sim.EngineKind {
	if c.Engine == 0 {
		return sim.Sequential
	}
	return c.Engine
}

// DefaultConfig is the configuration used by cmd/afbench and the recorded
// EXPERIMENTS.md numbers.
func DefaultConfig() Config {
	return Config{Seed: 20190729, Scale: 1} // PODC 2019 started July 29
}

// scaled returns n*Scale, minimum 1.
func (c Config) scaled(n int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := n * s
	if v < 1 {
		v = 1
	}
	return v
}

// Experiment couples an experiment ID with its runner, for the registry
// used by cmd/afbench.
type Experiment struct {
	ID   string
	Name string
	Run  func(Config) ([]*Table, error)
}

// All returns the full suite in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "Figure 1: line graph", Run: Fig1Line},
		{ID: "E2", Name: "Figure 2: triangle", Run: Fig2Triangle},
		{ID: "E3", Name: "Figure 3: even cycle", Run: Fig3EvenCycle},
		{ID: "E4", Name: "Lemma 2.1 / Corollary 2.2: bipartite termination", Run: BipartiteTermination},
		{ID: "E5", Name: "Theorems 3.1 + 3.3: general termination", Run: NonBipartiteTermination},
		{ID: "E6", Name: "Figure 4 / Lemma 3.2: round-set analysis", Run: RoundSetAnalysis},
		{ID: "E7", Name: "Figure 5: asynchronous adversary", Run: AsyncNonTermination},
		{ID: "E8", Name: "Baseline: amnesiac vs classic flooding", Run: ClassicComparison},
		{ID: "E9", Name: "Application: bipartiteness detection", Run: BipartitenessDetection},
		{ID: "E10", Name: "Engine equivalence: sequential vs channels", Run: EngineEquivalence},
		{ID: "E11", Name: "Full-paper machinery: double-cover exact prediction", Run: DoubleCoverPrediction},
		{ID: "E12", Name: "Extension: fault injection (loss, crashes)", Run: FaultInjection},
		{ID: "E13", Name: "Extension: multi-source flooding", Run: MultiSource},
		{ID: "E14", Name: "Extension: dynamic networks", Run: DynamicNetworks},
		{ID: "E15", Name: "Extension: loss-probability curve", Run: LossCurve},
		{ID: "E16", Name: "Extension: broadcast congestion", Run: BroadcastLoad},
		{ID: "E17", Name: "Baseline: termination detection price", Run: TerminationDetection},
		{ID: "E18", Name: "Wavefront profile: messages per round", Run: WavefrontProfile},
	}
}

// RunAll executes the whole suite against w.
func RunAll(w io.Writer, cfg Config) error {
	for _, exp := range All() {
		tables, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s (%s): %w", exp.ID, exp.Name, err)
		}
		for _, t := range tables {
			if err := t.Fprint(w); err != nil {
				return err
			}
		}
	}
	return nil
}
