package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/multiflood"
	"amnesiacflood/internal/sim"
)

// BroadcastLoad is experiment E16: flooding as the paper's "broadcast
// mechanism" under concurrency. k messages flood the same network either
// simultaneously or staggered; the table reports makespan (last round any
// flood is active), total messages, and the peak per-edge and per-round
// load. Total traffic is schedule-invariant (floods are independent), so
// the experiment exposes the latency/congestion trade-off cleanly.
func BroadcastLoad(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	t := &Table{
		ID:    "E16",
		Title: "Flooding as a broadcast mechanism: simultaneous vs staggered",
		Columns: []string{
			"graph", "broadcasts", "schedule", "makespan",
			"total msgs", "peak edge load", "peak round load",
		},
	}
	type testCase struct {
		g *graph.Graph
		k int
	}
	cases := []testCase{
		{gen.Cycle(32), 4},
		{gen.Grid(8, 8), 8},
		{gen.Complete(16), 8},
		{gen.Hypercube(6), 8},
		{gen.RandomConnected(200, 0.02, rng), 8},
	}
	for _, tc := range cases {
		origins := make([]graph.NodeID, tc.k)
		for i := range origins {
			origins[i] = graph.NodeID(rng.Intn(tc.g.N()))
		}
		simul, err := multiflood.Run(tc.g, multiflood.AllFromOrigins(origins))
		if err != nil {
			return nil, fmt.Errorf("E16: %s simultaneous: %w", tc.g, err)
		}
		// Stagger by a gap exceeding the longest solo run, which
		// guarantees disjoint floods.
		gap := 0
		for _, pb := range simul.PerBroadcast {
			if pb.Rounds+1 > gap {
				gap = pb.Rounds + 1
			}
		}
		stag, err := multiflood.Run(tc.g, multiflood.Staggered(origins, gap))
		if err != nil {
			return nil, fmt.Errorf("E16: %s staggered: %w", tc.g, err)
		}
		if simul.TotalMessages != stag.TotalMessages {
			return nil, fmt.Errorf("E16: %s: schedules changed total traffic (%d vs %d)",
				tc.g, simul.TotalMessages, stag.TotalMessages)
		}
		if stag.MaxEdgeLoad != 1 {
			return nil, fmt.Errorf("E16: %s: fully staggered schedule congested an edge (%d)",
				tc.g, stag.MaxEdgeLoad)
		}
		t.AddRow(tc.g.Name(), tc.k, "simultaneous", simul.Rounds,
			simul.TotalMessages, simul.MaxEdgeLoad, simul.MaxRoundLoad)
		t.AddRow(tc.g.Name(), tc.k, fmt.Sprintf("staggered(gap=%d)", gap), stag.Rounds,
			stag.TotalMessages, stag.MaxEdgeLoad, stag.MaxRoundLoad)
	}
	t.AddNote("concurrent amnesiac floods never interact logically (per-message rule); total traffic is schedule-invariant")
	t.AddNote("simultaneous broadcast minimises makespan but stacks messages on shared edges; full staggering serialises load at the cost of k-fold makespan")
	return []*Table{t}, nil
}

// TerminationDetection is experiment E17: the price of *knowing* the flood
// is over. Amnesiac flooding terminates silently with zero persistent state;
// classic flooding + Dijkstra-Scholten acknowledgements gives the origin a
// definite signal, at the cost of doubling the messages and waiting for the
// ack wave to drain.
func TerminationDetection(cfg Config) ([]*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	t := &Table{
		ID:    "E17",
		Title: "The price of detecting termination (classic flooding + Dijkstra-Scholten)",
		Columns: []string{
			"graph", "source", "flood rounds", "detected at",
			"flood msgs", "ack msgs", "amnesiac msgs", "overhead vs amnesiac",
		},
	}
	instances := []namedGraph{
		{"path", gen.Path(32)},
		{"evenCycle", gen.Cycle(32)},
		{"oddCycle", gen.Cycle(33)},
		{"grid", gen.Grid(8, 8)},
		{"clique", gen.Complete(16)},
		{"petersen", gen.Petersen()},
		{"randomTree", gen.RandomTree(150, rng)},
		{"randomConnected", gen.RandomConnected(150, 0.03, rng)},
	}
	for _, inst := range instances {
		src := graph.NodeID(rng.Intn(inst.g.N()))
		// The echo analysis pairs the Dijkstra–Scholten baseline with the
		// amnesiac run it accompanies — one façade call yields both sides
		// of the trade-off as metric columns.
		sess, err := sim.New(inst.g,
			sim.WithProtocol("amnesiac"),
			sim.WithEngine(cfg.EngineKind()),
			sim.WithOrigins(src),
			sim.WithAnalysis("echo"),
		)
		if err != nil {
			return nil, fmt.Errorf("E17: %s: %w", inst.g, err)
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			return nil, fmt.Errorf("E17: %s: %w", inst.g, err)
		}
		floodMsgs := int(res.Metrics["echo.floodMessages"])
		ackMsgs := int(res.Metrics["echo.ackMessages"])
		floodRounds := int(res.Metrics["echo.floodRounds"])
		detected := int(res.Metrics["echo.detectionRound"])
		if ackMsgs != floodMsgs {
			return nil, fmt.Errorf("E17: %s: acks %d != flood msgs %d (Dijkstra-Scholten invariant)",
				inst.g, ackMsgs, floodMsgs)
		}
		if detected < floodRounds {
			return nil, fmt.Errorf("E17: %s: detected before quiescence", inst.g)
		}
		// The observed amnesiac run is the other side of the paper's
		// trade-off: knowing the flood ended costs this many times the
		// traffic of simply going quiet.
		overhead := fmt.Sprintf("+%d rounds, %.2fx msgs",
			detected-floodRounds, res.Metrics["echo.messageOverhead"])
		t.AddRow(inst.g.Name(), src, floodRounds, detected,
			floodMsgs, ackMsgs, res.TotalMessages, overhead)
	}
	t.AddNote("the paper's motivation in numbers: explicit termination detection costs one ack per message (exactly 2x traffic) plus the drain-back delay, and per-node parent/deficit state")
	t.AddNote("amnesiac flooding pays none of this — it simply goes quiet (Theorem 3.1) — but no node ever learns that it has")
	return []*Table{t}, nil
}
