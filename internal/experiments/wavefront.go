package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/theory"
)

// WavefrontProfile is experiment E18: the per-round message series behind
// the paper's figures — how many edges carry M in each round, from the
// first send to the last. The shapes are sharply family-specific and each
// is asserted:
//
//   - bipartite graphs: the series is the BFS frontier cut (messages in
//     round i run from layer i-1 to layer i), collapsing to zero at
//     e(source);
//   - odd cycles: after round 1 the series is the constant 2 — two lonely
//     wavefronts chase each other for n rounds before annihilating at the
//     origin's antipodal edge;
//   - cliques: a 3-round spike (n-1, then (n-1)(n-2), then n-1);
//   - non-bipartite graphs in general: the double-cover law makes the
//     series the layer cuts of the cover.
func WavefrontProfile(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "Wavefront profile: messages in flight per round",
		Columns: []string{"graph", "source", "rounds", "profile (messages per round)"},
	}
	type testCase struct {
		g      *graph.Graph
		source graph.NodeID
	}
	cases := []testCase{
		{gen.Path(10), 0},
		{gen.Path(10), 4},
		{gen.Cycle(10), 0},
		{gen.Cycle(11), 0},
		{gen.Complete(8), 0},
		{gen.Grid(4, 5), 0},
		{gen.Hypercube(4), 0},
		{gen.Petersen(), 0},
		{gen.Lollipop(4, 6), 9},
	}
	for _, tc := range cases {
		rep, err := runReport(cfg, tc.g, tc.source)
		if err != nil {
			return nil, fmt.Errorf("E18: %s: %w", tc.g, err)
		}
		profile := messagesPerRound(rep)
		sum := 0
		for _, m := range profile {
			sum += m
		}
		if sum != rep.TotalMessages() {
			return nil, fmt.Errorf("E18: %s: profile sums to %d, want %d", tc.g, sum, rep.TotalMessages())
		}
		t.AddRow(tc.g.Name(), tc.source, rep.Rounds(), renderProfile(profile))
	}

	// Assertions on the characteristic shapes.
	odd, err := runReport(cfg, gen.Cycle(11), 0)
	if err != nil {
		return nil, err
	}
	for i, m := range messagesPerRound(odd) {
		if m != 2 {
			return nil, fmt.Errorf("E18: odd cycle round %d carries %d messages, want constant 2", i+1, m)
		}
	}
	clique, err := runReport(cfg, gen.Complete(8), 0)
	if err != nil {
		return nil, err
	}
	wantClique := []int{7, 42, 7} // n-1, (n-1)(n-2), n-1
	gotClique := messagesPerRound(clique)
	if len(gotClique) != 3 || gotClique[0] != wantClique[0] || gotClique[1] != wantClique[1] || gotClique[2] != wantClique[2] {
		return nil, fmt.Errorf("E18: K8 profile %v, want %v", gotClique, wantClique)
	}
	// Bipartite: the profile equals the BFS layer cuts.
	bip := gen.Grid(4, 5)
	bipRep, err := runReport(cfg, bip, 0)
	if err != nil {
		return nil, err
	}
	if err := theory.CheckBipartiteExact(bip, bipRep); err != nil {
		return nil, fmt.Errorf("E18: %w", err)
	}
	dist := algo.BFS(bip, 0)
	for i, m := range messagesPerRound(bipRep) {
		round := i + 1
		cut := 0
		for _, e := range bip.Edges() {
			if (dist[e.U] == round-1 && dist[e.V] == round) ||
				(dist[e.V] == round-1 && dist[e.U] == round) {
				cut++
			}
		}
		if m != cut {
			return nil, fmt.Errorf("E18: grid round %d carries %d messages, BFS cut is %d", round, m, cut)
		}
	}
	t.AddNote("odd cycles: two lonely wavefronts, constant 2 messages/round for n rounds (why 2D+1 is tight)")
	t.AddNote("cliques: a single 3-round spike n-1 / (n-1)(n-2) / n-1 — the 'echo' is one giant cross-exchange")
	t.AddNote("bipartite graphs: the profile is exactly the BFS layer-cut sequence (verified edge for edge on the grid)")
	return []*Table{t}, nil
}

// messagesPerRound extracts the per-round send counts from a traced run.
func messagesPerRound(rep *core.Report) []int {
	out := make([]int, len(rep.Result.Trace))
	for i, rec := range rep.Result.Trace {
		out[i] = len(rec.Sends)
	}
	return out
}

// renderProfile prints a short series like "2 2 2 2" with long series
// elided in the middle.
func renderProfile(profile []int) string {
	parts := make([]string, len(profile))
	for i, m := range profile {
		parts[i] = strconv.Itoa(m)
	}
	if len(parts) > 14 {
		parts = append(append(append([]string{}, parts[:6]...), "..."), parts[len(parts)-6:]...)
	}
	return strings.Join(parts, " ")
}
