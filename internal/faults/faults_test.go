package faults_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/faults"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

func TestValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := faults.Run(g, faults.NoFaults{}, faults.Options{}); err == nil {
		t.Fatal("no origins accepted")
	}
	if _, err := faults.Run(g, faults.NoFaults{}, faults.Options{}, 99); err == nil {
		t.Fatal("invalid origin accepted")
	}
}

func TestNoFaultsMatchesEngine(t *testing.T) {
	// Property: the faults runner with no faults equals the fault-free
	// engine on rounds and message counts.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		fr, err := faults.Run(g, faults.NoFaults{}, faults.Options{}, src)
		if err != nil || fr.Outcome != faults.Terminated {
			return false
		}
		rep, err := core.Run(g, src)
		if err != nil {
			return false
		}
		return fr.Rounds == rep.Rounds() &&
			fr.Delivered == rep.TotalMessages() &&
			fr.Dropped == 0 && fr.Absorbed == 0 &&
			fr.CoverageCount() == g.N()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleLossBreaksTerminationOnEvenCycle(t *testing.T) {
	// The E12 headline: drop ONE message on C4 — the copy a->d in round 1
	// — and the surviving wavefront circulates forever.
	g := gen.Cycle(4)
	inj := faults.AfterRound{Inner: faults.DropOnce{Round: 1, From: 0, To: 3}, Round: 1}
	res, err := faults.Run(g, inj, faults.Options{Trace: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != faults.CycleDetected {
		t.Fatalf("outcome = %v, want CycleDetected (lonely wavefront)", res.Outcome)
	}
	if res.CycleLength != 4 {
		t.Fatalf("cycle length = %d, want 4 (one lap of C4)", res.CycleLength)
	}
	if res.Dropped != 1 {
		t.Fatalf("dropped = %d, want exactly 1", res.Dropped)
	}
}

func TestSingleLossOnPathStillTerminates(t *testing.T) {
	// With no cycle there is nowhere to circulate: loss only shrinks the
	// flood.
	g := gen.Path(8)
	inj := faults.AfterRound{Inner: faults.DropOnce{Round: 2, From: 1, To: 2}, Round: 2}
	res, err := faults.Run(g, inj, faults.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != faults.Terminated {
		t.Fatalf("outcome = %v, want Terminated", res.Outcome)
	}
	// The drop cuts coverage: nodes beyond the lost edge never hear M.
	if res.CoverageCount() != 2 { // nodes 0 and 1
		t.Fatalf("coverage = %d, want 2", res.CoverageCount())
	}
}

func TestSingleLossOnOddCycle(t *testing.T) {
	// Odd cycles have no even closed walk for a lonely wavefront, but the
	// echo structure changes; whatever happens must be either termination
	// or a certified loop, never a silent round-limit (the injector is
	// settled).
	g := gen.Cycle(5)
	inj := faults.AfterRound{Inner: faults.DropOnce{Round: 1, From: 0, To: 4}, Round: 1}
	res, err := faults.Run(g, inj, faults.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == faults.RoundLimit {
		t.Fatalf("outcome = %v; settled injector must certify or terminate", res.Outcome)
	}
	t.Logf("C5 with one loss: %v after %d rounds", res.Outcome, res.Rounds)
}

func TestRandomLossAlwaysEndsSomehow(t *testing.T) {
	// Random loss is round-dependent (no certificates); runs must finish
	// as Terminated or RoundLimit and never error.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(3+rng.Intn(30), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		res, err := faults.Run(g, faults.RandomLoss{P: 0.1, Seed: seed}, faults.Options{MaxRounds: 512}, src)
		if err != nil {
			return false
		}
		return res.Outcome == faults.Terminated || res.Outcome == faults.RoundLimit
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomLossDeterministicPerSeed(t *testing.T) {
	g := gen.Grid(5, 5)
	run := func() faults.Result {
		res, err := faults.Run(g, faults.RandomLoss{P: 0.2, Seed: 7}, faults.Options{MaxRounds: 512}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Outcome != b.Outcome || a.Rounds != b.Rounds || a.Delivered != b.Delivered || a.Dropped != b.Dropped {
		t.Fatalf("same seed, different runs: %+v vs %+v", a, b)
	}
}

func TestCrashAbsorbsMessages(t *testing.T) {
	// Crash the middle of a path before the flood arrives: the far side
	// never hears M, and the message into the crashed node is absorbed.
	g := gen.Path(5)
	inj := faults.CrashAt{CrashRound: map[graph.NodeID]int{2: 1}}
	res, err := faults.Run(g, inj, faults.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != faults.Terminated {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.CoverageCount() != 2 {
		t.Fatalf("coverage = %d, want 2 (nodes 0, 1)", res.CoverageCount())
	}
	if res.Absorbed != 1 {
		t.Fatalf("absorbed = %d, want 1", res.Absorbed)
	}
}

func TestCrashedSenderDropsOutput(t *testing.T) {
	// Crash the origin in round 1: nothing is ever sent.
	g := gen.Star(5)
	inj := faults.CrashAt{CrashRound: map[graph.NodeID]int{0: 1}}
	res, err := faults.Run(g, inj, faults.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != faults.Terminated || res.Delivered != 0 {
		t.Fatalf("crashed-origin run = %+v", res)
	}
	if res.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4 (the origin's sends)", res.Dropped)
	}
}

func TestLateCrashCanEndWithEcho(t *testing.T) {
	// Crash a clique node mid-flood; the run must still end (cliques have
	// diameter 1, echoes die fast) and coverage stays full since the
	// crash happens after delivery.
	g := gen.Complete(6)
	inj := faults.CrashAt{CrashRound: map[graph.NodeID]int{3: 2}}
	res, err := faults.Run(g, inj, faults.Options{MaxRounds: 512}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == faults.CycleDetected {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.CoverageCount() != 6 {
		t.Fatalf("coverage = %d, want 6", res.CoverageCount())
	}
}

func TestInjectorNames(t *testing.T) {
	names := []struct {
		inj  faults.Injector
		want string
	}{
		{faults.NoFaults{}, "none"},
		{faults.DropOnce{Round: 1, From: 0, To: 3}, "dropOnce(r1,0->3)"},
		{faults.RandomLoss{P: 0.25}, "randomLoss(p=0.25)"},
		{faults.CrashAt{CrashRound: map[graph.NodeID]int{2: 1}}, "crash(2@r1)"},
		{faults.AfterRound{Inner: faults.NoFaults{}, Round: 3}, "none+settled"},
	}
	for _, tc := range names {
		if got := tc.inj.Name(); got != tc.want {
			t.Errorf("name = %q, want %q", got, tc.want)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if faults.Terminated.String() != "terminated" ||
		faults.CycleDetected.String() != "non-termination-certified" ||
		faults.RoundLimit.String() != "round-limit" {
		t.Fatal("outcome strings wrong")
	}
}

func TestMultiOriginWithFaults(t *testing.T) {
	g := gen.Cycle(8)
	res, err := faults.Run(g, faults.NoFaults{}, faults.Options{}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != faults.Terminated || res.CoverageCount() != 8 {
		t.Fatalf("multi-origin run = %+v", res)
	}
}
