// Package faults runs synchronous amnesiac flooding under failure
// injection: lost messages and crashed nodes. The paper proves termination
// for the fault-free synchronous model and asks (in its open questions)
// how robust the process is; this package makes the question executable.
//
// The headline finding (experiment E12): amnesiac-flooding termination is
// NOT robust to message loss. Losing a single message can leave a "lonely
// wavefront" that circulates around a cycle (even or odd) forever —
// dropping a message shrinks a node's sender set, which ENLARGES the
// complement it forwards to, so less communication can mean more flooding.
// The runner
// certifies such loops with the same configuration-repeat technique as the
// asynchronous simulator: with memoryless nodes the global state is exactly
// the set of in-flight messages, so a repeat under a deterministic injector
// proves non-termination.
package faults

import (
	"fmt"
	"hash/fnv"
	"slices"
	"strconv"
	"strings"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Injector decides which messages are lost and which nodes are down.
// Implementations must be deterministic functions of their arguments for
// non-termination certificates to be sound (all provided injectors are).
type Injector interface {
	// Name identifies the injector in reports.
	Name() string
	// DropMessage reports whether the copy of M crossing from -> to in
	// the given round is lost in transit.
	DropMessage(round int, from, to graph.NodeID) bool
	// Crashed reports whether node v is down in the given round: it
	// neither receives nor forwards. Crashes need not be permanent.
	Crashed(round int, v graph.NodeID) bool
}

// Outcome classifies a faulty run.
type Outcome int

// Possible outcomes.
const (
	// Terminated: a round with no surviving messages arrived.
	Terminated Outcome = iota + 1
	// CycleDetected: the in-flight configuration repeated — the flood
	// circulates forever under this injector.
	CycleDetected
	// RoundLimit: the limit was reached first (only possible for
	// injectors whose decisions depend on the round number, which breaks
	// configuration stationarity; the provided random injector is
	// round-dependent by design).
	RoundLimit
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Terminated:
		return "terminated"
	case CycleDetected:
		return "non-termination-certified"
	case RoundLimit:
		return "round-limit"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result summarises a faulty flood.
type Result struct {
	Outcome   Outcome
	Injector  string
	Rounds    int
	Delivered int // messages that survived transit
	Dropped   int // messages lost in transit
	Absorbed  int // messages that reached a crashed receiver
	// Covered[v] is true when v received M (or is an origin).
	Covered []bool
	// CycleStart / CycleLength describe the certified loop when Outcome
	// is CycleDetected.
	CycleStart, CycleLength int
	// Trace records surviving deliveries per round when requested.
	Trace []engine.RoundRecord
}

// CoverageCount returns how many nodes hold or have held M.
func (r Result) CoverageCount() int {
	count := 0
	for _, c := range r.Covered {
		if c {
			count++
		}
	}
	return count
}

// Options configures a faulty run.
type Options struct {
	Trace     bool
	MaxRounds int // 0 means DefaultMaxRounds
}

// DefaultMaxRounds bounds faulty runs, which may legitimately never
// terminate.
const DefaultMaxRounds = 1 << 16

// Run executes amnesiac flooding from the origins on g with the injector's
// faults applied. Round semantics match the engine package: messages sent
// in round r are received in round r (unless dropped), and responses go out
// in round r+1.
func Run(g *graph.Graph, inj Injector, opts Options, origins ...graph.NodeID) (Result, error) {
	if len(origins) == 0 {
		return Result{}, fmt.Errorf("faults: need at least one origin on %s", g)
	}
	for _, o := range origins {
		if !g.HasNode(o) {
			return Result{}, fmt.Errorf("faults: origin %d is not a node of %s", o, g)
		}
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	res := Result{Injector: inj.Name(), Covered: make([]bool, g.N())}

	var pending []engine.Send
	for _, o := range origins {
		res.Covered[o] = true
		for _, nbr := range g.Neighbors(o) {
			pending = append(pending, engine.Send{From: o, To: nbr})
		}
	}
	pending = dedupSends(pending)

	stationary := isStationary(inj)
	settled := settledAfter(inj)
	seen := map[string]int{}
	for round := 1; len(pending) > 0; round++ {
		if round > maxRounds {
			res.Outcome = RoundLimit
			res.Rounds = maxRounds
			return res, nil
		}
		if stationary && round > settled {
			key := sendsKey(pending)
			if first, ok := seen[key]; ok {
				res.Outcome = CycleDetected
				res.CycleStart = first
				res.CycleLength = round - first
				res.Rounds = round
				return res, nil
			}
			seen[key] = round
		}
		res.Rounds = round

		// Apply transit loss and receiver crashes.
		var delivered []engine.Send
		for _, s := range pending {
			switch {
			case inj.Crashed(round, s.From):
				// A crashed sender never put the message on the wire;
				// count it as dropped output.
				res.Dropped++
			case inj.DropMessage(round, s.From, s.To):
				res.Dropped++
			case inj.Crashed(round, s.To):
				res.Absorbed++
			default:
				delivered = append(delivered, s)
			}
		}
		res.Delivered += len(delivered)
		if opts.Trace {
			res.Trace = append(res.Trace, engine.RoundRecord{
				Round: round,
				Sends: append([]engine.Send(nil), delivered...),
			})
		}

		// Group by receiver, forward to complements.
		byTo := map[graph.NodeID][]graph.NodeID{}
		for _, s := range delivered {
			res.Covered[s.To] = true
			byTo[s.To] = append(byTo[s.To], s.From)
		}
		receivers := make([]graph.NodeID, 0, len(byTo))
		for v := range byTo {
			receivers = append(receivers, v)
		}
		slices.Sort(receivers)
		var next []engine.Send
		for _, v := range receivers {
			senders := byTo[v]
			slices.Sort(senders)
			i := 0
			for _, nbr := range g.Neighbors(v) {
				for i < len(senders) && senders[i] < nbr {
					i++
				}
				if i < len(senders) && senders[i] == nbr {
					continue
				}
				next = append(next, engine.Send{From: v, To: nbr})
			}
		}
		pending = dedupSends(next)
	}
	res.Outcome = Terminated
	return res, nil
}

// isStationary reports whether the injector's decisions are independent of
// the round number, which is what makes configuration repeats a proof of
// non-termination. Injectors advertise this via the optional interface.
func isStationary(inj Injector) bool {
	type stationer interface{ Stationary() bool }
	if s, ok := inj.(stationer); ok {
		return s.Stationary()
	}
	return false
}

// settledAfter returns the round after which a stationary-promising
// injector is actually round-independent (0 for always-stationary ones);
// configuration recording starts only after it.
func settledAfter(inj Injector) int {
	type settler interface{ SettledAfter() int }
	if s, ok := inj.(settler); ok {
		return s.SettledAfter()
	}
	return 0
}

func dedupSends(sends []engine.Send) []engine.Send {
	if len(sends) == 0 {
		return nil
	}
	slices.SortFunc(sends, func(a, b engine.Send) int {
		if a.From != b.From {
			return int(a.From) - int(b.From)
		}
		return int(a.To) - int(b.To)
	})
	out := sends[:1]
	for _, s := range sends[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

func sendsKey(sends []engine.Send) string {
	parts := make([]string, len(sends))
	for i, s := range sends {
		parts[i] = strconv.Itoa(int(s.From)) + ">" + strconv.Itoa(int(s.To))
	}
	return strings.Join(parts, ",")
}

// hash64 gives a deterministic uniform value in [0,1) for loss decisions,
// independent of evaluation order.
func hash64(seed int64, parts ...int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(x int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	write(seed)
	for _, p := range parts {
		write(int64(p))
	}
	return float64(h.Sum64()>>11) / float64(1<<53)
}
