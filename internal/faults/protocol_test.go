package faults_test

import (
	"context"
	"math/rand"
	"testing"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/chanengine"
	"amnesiacflood/internal/engine/fastengine"
	"amnesiacflood/internal/faults"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// trimTrailingEmpty drops the final all-dropped round the dedicated runner
// records (the protocol form never emits a doomed send, so its run ends one
// round earlier when the last round's messages are all lost).
func trimTrailingEmpty(trace []engine.RoundRecord) []engine.RoundRecord {
	for len(trace) > 0 && len(trace[len(trace)-1].Sends) == 0 {
		trace = trace[:len(trace)-1]
	}
	return trace
}

// TestProtocolMatchesDedicatedRunner is the differential test between the
// two fault execution paths: the engine-hosted Protocol (drops folded into
// emission) and the package's own Run (drops applied at delivery) must see
// the same surviving deliveries round for round.
func TestProtocolMatchesDedicatedRunner(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	graphs := []*graph.Graph{
		gen.Cycle(12), gen.Cycle(13), gen.Grid(6, 6),
		gen.Petersen(), gen.RandomConnected(40, 0.1, rng),
	}
	injectors := []faults.Injector{
		faults.NoFaults{},
		faults.RandomLoss{P: 0.1, Seed: 3},
		faults.RandomLoss{P: 0.4, Seed: 9},
		faults.DropOnce{Round: 2, From: 0, To: 1},
		faults.CrashAt{CrashRound: map[graph.NodeID]int{3: 2}},
	}
	for _, g := range graphs {
		for _, inj := range injectors {
			src := graph.NodeID(rng.Intn(g.N()))
			want, err := faults.Run(g, inj, faults.Options{Trace: true, MaxRounds: 128}, src)
			if err != nil {
				t.Fatalf("runner %s on %s: %v", inj.Name(), g, err)
			}
			if want.Outcome != faults.Terminated {
				continue // protocol-form runs cannot certify loops; skip
			}
			proto, err := faults.NewProtocol(g, inj, src)
			if err != nil {
				t.Fatal(err)
			}
			got, err := engine.Run(context.Background(), g, proto, engine.Options{Trace: true, MaxRounds: 128})
			if err != nil {
				t.Fatalf("engine %s on %s: %v", inj.Name(), g, err)
			}
			wantTrace := trimTrailingEmpty(want.Trace)
			if !engine.EqualTraces(wantTrace, got.Trace) {
				t.Errorf("%s on %s from %d: protocol trace differs from dedicated runner", inj.Name(), g, src)
			}
			if got.TotalMessages != want.Delivered {
				t.Errorf("%s on %s: protocol delivered %d, runner %d", inj.Name(), g, got.TotalMessages, want.Delivered)
			}
		}
	}
}

// TestProtocolEngineEquivalence: the faulty protocol is a pure function of
// (round, node, senders), so all four engines must agree on its trace.
// Message loss legitimately breaks termination (the paper's E12 finding),
// so the runs are bounded and the traces compared over the bounded prefix,
// with every engine reporting the same round-limit outcome.
func TestProtocolEngineEquivalence(t *testing.T) {
	g := gen.Grid(8, 8)
	inj := faults.RandomLoss{P: 0.15, Seed: 21}
	proto, err := faults.NewProtocol(g, inj, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := engine.Options{Trace: true, MaxRounds: 256}
	ctx := context.Background()
	want, wantErr := engine.Run(ctx, g, proto, opts)
	runners := map[string]func() (engine.Result, error){
		"channels": func() (engine.Result, error) { return chanengine.Run(ctx, g, proto, opts) },
		"fast":     func() (engine.Result, error) { return fastengine.Run(ctx, g, proto, opts) },
		"parallel": func() (engine.Result, error) { return fastengine.RunParallel(ctx, g, proto, opts) },
	}
	for name, run := range runners {
		got, err := run()
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("%s: err = %v, sequential err = %v", name, err, wantErr)
		}
		if !engine.EqualTraces(want.Trace, got.Trace) {
			t.Errorf("%s: faulty-protocol trace differs from sequential", name)
		}
	}
}
