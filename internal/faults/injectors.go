package faults

import (
	"fmt"
	"sort"
	"strings"

	"amnesiacflood/internal/graph"
)

// NoFaults injects nothing: the run must match the fault-free engine.
type NoFaults struct{}

var _ Injector = NoFaults{}

// Name implements Injector.
func (NoFaults) Name() string { return "none" }

// DropMessage implements Injector.
func (NoFaults) DropMessage(int, graph.NodeID, graph.NodeID) bool { return false }

// Crashed implements Injector.
func (NoFaults) Crashed(int, graph.NodeID) bool { return false }

// Stationary marks configuration repeats as sound (vacuously: fault-free
// synchronous AF never repeats, by the paper's Theorem 3.1).
func (NoFaults) Stationary() bool { return true }

// DropOnce loses exactly one message: the copy crossing From -> To in the
// given Round. The minimal adversarial loss — one lost message on an even
// cycle already breaks termination.
type DropOnce struct {
	Round    int
	From, To graph.NodeID
}

var _ Injector = DropOnce{}

// Name implements Injector.
func (d DropOnce) Name() string {
	return fmt.Sprintf("dropOnce(r%d,%d->%d)", d.Round, d.From, d.To)
}

// DropMessage implements Injector.
func (d DropOnce) DropMessage(round int, from, to graph.NodeID) bool {
	return round == d.Round && from == d.From && to == d.To
}

// Crashed implements Injector.
func (DropOnce) Crashed(int, graph.NodeID) bool { return false }

// Stationary: DropOnce is round-dependent, but after Round has passed the
// injector behaves like NoFaults, so repeats seen strictly after Round are
// genuine. The runner's map only certifies repeats whose first occurrence
// is at a round where behaviour is already stationary; to keep the logic
// simple DropOnce reports non-stationary until Round has passed — the
// runner handles this via the dynamic check below.
func (DropOnce) Stationary() bool { return false }

// RandomLoss drops each message independently with probability P, decided
// by a deterministic hash of (Seed, round, from, to) — reproducible and
// order-independent, but round-dependent, so loops cannot be certified
// (runs end in Terminated or RoundLimit).
type RandomLoss struct {
	P    float64
	Seed int64
}

var _ Injector = RandomLoss{}

// Name implements Injector.
func (r RandomLoss) Name() string { return fmt.Sprintf("randomLoss(p=%.2f)", r.P) }

// DropMessage implements Injector.
func (r RandomLoss) DropMessage(round int, from, to graph.NodeID) bool {
	return hash64(r.Seed, round, int(from), int(to)) < r.P
}

// Crashed implements Injector.
func (RandomLoss) Crashed(int, graph.NodeID) bool { return false }

// CrashAt permanently crashes a set of nodes from given rounds on:
// CrashRound[v] = r means v is down in every round >= r.
type CrashAt struct {
	CrashRound map[graph.NodeID]int
}

var _ Injector = CrashAt{}

// Name implements Injector.
func (c CrashAt) Name() string {
	parts := make([]string, 0, len(c.CrashRound))
	for v, r := range c.CrashRound {
		parts = append(parts, fmt.Sprintf("%d@r%d", v, r))
	}
	sort.Strings(parts)
	return "crash(" + strings.Join(parts, ",") + ")"
}

// DropMessage implements Injector.
func (CrashAt) DropMessage(int, graph.NodeID, graph.NodeID) bool { return false }

// Crashed implements Injector.
func (c CrashAt) Crashed(round int, v graph.NodeID) bool {
	r, ok := c.CrashRound[v]
	return ok && round >= r
}

// Stationary: crashes are permanent, so once every CrashRound has passed
// the system is stationary; like DropOnce this is round-dependent early on
// and reports false, trading certificate power for simplicity.
func (CrashAt) Stationary() bool { return false }

// AfterRound wraps a round-dependent injector and reports stationary
// behaviour once the given round has passed; the faults runner uses it to
// certify loops created by transient faults such as DropOnce.
type AfterRound struct {
	Inner Injector
	// Round is the last round in which Inner may behave
	// round-dependently.
	Round int
}

var _ Injector = AfterRound{}

// Name implements Injector.
func (a AfterRound) Name() string { return a.Inner.Name() + "+settled" }

// DropMessage implements Injector.
func (a AfterRound) DropMessage(round int, from, to graph.NodeID) bool {
	return a.Inner.DropMessage(round, from, to)
}

// Crashed implements Injector.
func (a AfterRound) Crashed(round int, v graph.NodeID) bool {
	return a.Inner.Crashed(round, v)
}

// Stationary is true: AfterRound promises Inner is settled. The runner
// begins recording configurations only after a.Round (see settledAfter),
// so early round-dependent behaviour cannot poison certificates.
func (a AfterRound) Stationary() bool { return true }

// SettledAfter reports the round after which the injector keeps its
// promise.
func (a AfterRound) SettledAfter() int { return a.Round }
