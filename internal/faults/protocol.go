package faults

import (
	"fmt"
	"strconv"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/sim"
)

// Protocol folds an Injector's decisions into amnesiac flooding's emission
// rule, so faulty floods run on any synchronous engine. A message crossing
// from -> to in round r survives only if the sender is up in r, the copy is
// not dropped in transit in r, and the receiver is up in r; instead of
// filtering deliveries like Run, the protocol never emits doomed sends —
// the engine's round-r send set then equals Run's round-r delivered set,
// and traces match Run's surviving-delivery trace exactly (experimentally
// asserted by the differential test).
//
// The injector must be deterministic (all provided ones are), which makes
// the automaton a pure function of (round, node, senders) and the protocol
// trace-equivalent across all four engines. Faulty floods may legitimately
// never terminate; bound runs with MaxRounds, and use Run when a
// non-termination certificate is needed.
type Protocol struct {
	g       *graph.Graph
	origins []graph.NodeID
	inj     Injector
}

var _ engine.Protocol = (*Protocol)(nil)

// NewProtocol returns faulty amnesiac flooding on g under the injector.
func NewProtocol(g *graph.Graph, inj Injector, origins ...graph.NodeID) (*Protocol, error) {
	if len(origins) == 0 {
		return nil, fmt.Errorf("faults: need at least one origin on %s", g)
	}
	for _, o := range origins {
		if !g.HasNode(o) {
			return nil, fmt.Errorf("faults: origin %d is not a node of %s", o, g)
		}
	}
	return &Protocol{g: g, origins: append([]graph.NodeID(nil), origins...), inj: inj}, nil
}

// Name implements engine.Protocol.
func (p *Protocol) Name() string {
	return "amnesiac-faulty[" + p.inj.Name() + "]"
}

// survives reports whether the copy crossing from -> to in the given
// delivery round makes it onto the wire and into an up receiver.
func (p *Protocol) survives(round int, from, to graph.NodeID) bool {
	return !p.inj.Crashed(round, from) &&
		!p.inj.DropMessage(round, from, to) &&
		!p.inj.Crashed(round, to)
}

// Bootstrap implements engine.Protocol: every origin's round-1 sends,
// minus the ones round-1 faults would kill.
func (p *Protocol) Bootstrap() []engine.Send {
	var sends []engine.Send
	for _, o := range p.origins {
		for _, nbr := range p.g.Neighbors(o) {
			if p.survives(1, o, nbr) {
				sends = append(sends, engine.Send{From: o, To: nbr})
			}
		}
	}
	return sends
}

// NewNode implements engine.Protocol: the amnesiac complement rule with the
// next round's doomed sends filtered out at emission. Responses to round r
// are delivered in round r+1, so fault decisions use round r+1.
func (p *Protocol) NewNode(v graph.NodeID) engine.NodeAutomaton {
	nbrs := p.g.Neighbors(v)
	return func(round int, senders []graph.NodeID) []graph.NodeID {
		delivery := round + 1
		if p.inj.Crashed(delivery, v) {
			return nil
		}
		out := make([]graph.NodeID, 0, len(nbrs))
		i := 0
		for _, nbr := range nbrs {
			for i < len(senders) && senders[i] < nbr {
				i++
			}
			if i < len(senders) && senders[i] == nbr {
				continue
			}
			if p.survives(delivery, v, nbr) {
				out = append(out, nbr)
			}
		}
		return out
	}
}

// init self-registers faulty flooding with the sim façade's protocol
// registry as -protocol faulty. Parameters: loss (drop probability in
// [0,1], default 0 = fault-free) with the spec seed driving the loss hash.
func init() {
	sim.Register("faulty", func(spec sim.Spec) (engine.Protocol, error) {
		var inj Injector = NoFaults{}
		if raw := spec.Param("loss", ""); raw != "" {
			p, err := strconv.ParseFloat(raw, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("faults: bad loss parameter %q (want a probability in [0,1])", raw)
			}
			inj = RandomLoss{P: p, Seed: spec.Seed}
		}
		return NewProtocol(spec.Graph, inj, spec.Origins...)
	})
}
