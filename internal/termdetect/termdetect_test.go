package termdetect_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/classic"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/termdetect"
)

func TestValidation(t *testing.T) {
	if _, err := termdetect.Run(gen.Path(3), 9); err == nil {
		t.Fatal("bad origin accepted")
	}
}

func TestPathDetection(t *testing.T) {
	g := gen.Path(5)
	res, err := termdetect.Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flood reaches node 4 in round 4; acks drain back 4 more rounds.
	if res.FloodRounds != 4 {
		t.Fatalf("flood rounds = %d, want 4", res.FloodRounds)
	}
	if res.DetectionRound <= res.FloodRounds {
		t.Fatalf("detection at %d, not after the flood end %d", res.DetectionRound, res.FloodRounds)
	}
	if res.FloodMessages != 4 || res.AckMessages != 4 {
		t.Fatalf("messages = %d flood / %d ack, want 4/4", res.FloodMessages, res.AckMessages)
	}
	if res.CoverageCount() != 5 {
		t.Fatalf("coverage = %d", res.CoverageCount())
	}
}

func TestIsolatedOrigin(t *testing.T) {
	g, err := graph.FromEdges("", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := termdetect.Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FloodMessages != 0 || res.DetectionRound == 0 {
		t.Fatalf("isolated origin: %+v", res)
	}
}

func TestFloodPartMatchesClassicEngine(t *testing.T) {
	// Property: the detector's flood component is exactly classic
	// flooding — same rounds, same message count, full coverage.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		res, err := termdetect.Run(g, src)
		if err != nil {
			return false
		}
		proto, err := classic.NewFlood(g, src)
		if err != nil {
			return false
		}
		cl, err := engine.Run(context.Background(), g, proto, engine.Options{})
		if err != nil {
			return false
		}
		return res.FloodRounds == cl.Rounds &&
			res.FloodMessages == cl.TotalMessages &&
			res.CoverageCount() == g.N()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEveryFloodMessageAckedOnce(t *testing.T) {
	// Dijkstra–Scholten invariant: exactly one ack per flood message.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		res, err := termdetect.Run(g, src)
		if err != nil {
			return false
		}
		return res.AckMessages == res.FloodMessages
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectionAfterFloodEnds(t *testing.T) {
	// Detection can never precede actual quiescence of the flood wave.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		res, err := termdetect.Run(g, src)
		if err != nil {
			return false
		}
		return res.DetectionRound >= res.FloodRounds
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParentTreeIsValid(t *testing.T) {
	g := gen.Grid(4, 5)
	res, err := termdetect.Run(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	dist := algo.BFS(g, 7)
	edges := 0
	for v := 0; v < g.N(); v++ {
		node := graph.NodeID(v)
		p := res.Parent[v]
		if p == node {
			continue
		}
		edges++
		if !g.HasEdge(p, node) {
			t.Fatalf("parent edge (%d,%d) not in graph", p, node)
		}
		if dist[p] != dist[v]-1 {
			t.Fatalf("parent %d of %d not one BFS level up", p, v)
		}
	}
	if edges != g.N()-1 {
		t.Fatalf("tree edges = %d, want %d", edges, g.N()-1)
	}
}

func TestDetectionOnTriangle(t *testing.T) {
	// K3 from b: flood takes 2 rounds (classic), acks return; the origin
	// must detect strictly after round 2.
	res, err := termdetect.Run(gen.Cycle(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FloodRounds != 2 {
		t.Fatalf("flood rounds = %d, want 2", res.FloodRounds)
	}
	if res.DetectionRound <= 2 {
		t.Fatalf("detection round = %d, want > 2", res.DetectionRound)
	}
}
