// Package termdetect implements explicit termination detection for classic
// flooding, the machinery the paper alludes to in its introduction: "often
// flooding is implemented with a flag ... and with other mechanisms to
// detect termination of the process (see e.g. [Attiya & Welch])".
//
// The detector is Dijkstra–Scholten scoped to flooding: the computation
// spawned by the origin forms a tree — every node's parent is its first
// deliverer — and each flood message is acknowledged. A node acknowledges a
// non-parent delivery immediately, and acknowledges its parent once all its
// own messages are acknowledged. When the origin collects its last
// acknowledgement, it *knows* the flood has terminated.
//
// The point of the package is the contrast that motivates the paper:
//
//   - amnesiac flooding terminates silently — no node ever knows; but it
//     needs zero persistent state and zero extra messages;
//   - classic flooding + Dijkstra–Scholten gives the origin a definite
//     "done" signal at the cost of one ack per flood message (2x message
//     complexity), per-node parent/counter state, and extra rounds for the
//     ack wave to drain back.
//
// Experiment E17 measures that price across families.
package termdetect

import (
	"fmt"
	"slices"

	"amnesiacflood/internal/graph"
)

// Result summarises a detected flood.
type Result struct {
	// DetectionRound is the round in which the origin learned that the
	// flood was over (its deficit hit zero).
	DetectionRound int
	// FloodRounds is the last round in which a flood (non-ack) message
	// was delivered: when the flood actually finished.
	FloodRounds int
	// FloodMessages counts flood deliveries, AckMessages ack deliveries.
	FloodMessages, AckMessages int
	// Covered[v] reports whether v received the flood message.
	Covered []bool
	// Parent[v] is the Dijkstra–Scholten tree parent (v itself for the
	// origin and unreached nodes).
	Parent []graph.NodeID
}

// TotalMessages returns flood + ack deliveries.
func (r Result) TotalMessages() int {
	return r.FloodMessages + r.AckMessages
}

// CoverageCount returns the number of covered nodes.
func (r Result) CoverageCount() int {
	n := 0
	for _, c := range r.Covered {
		if c {
			n++
		}
	}
	return n
}

// message kinds inside the detector's own synchronous simulation.
type kind uint8

const (
	flood kind = iota + 1
	ack
)

type message struct {
	from, to graph.NodeID
	kind     kind
}

// nodeState is the per-node Dijkstra–Scholten bookkeeping.
type nodeState struct {
	seen    bool
	parent  graph.NodeID
	deficit int  // own messages not yet acknowledged
	engaged bool // still owes its parent an ack
}

// Run executes classic flooding from origin on g with Dijkstra–Scholten
// acknowledgements, in the same synchronous round model as the engine
// package (messages sent in round r are delivered in round r; responses go
// out in round r+1).
func Run(g *graph.Graph, origin graph.NodeID) (Result, error) {
	if !g.HasNode(origin) {
		return Result{}, fmt.Errorf("termdetect: origin %d is not a node of %s", origin, g)
	}
	n := g.N()
	res := Result{
		Covered: make([]bool, n),
		Parent:  make([]graph.NodeID, n),
	}
	states := make([]nodeState, n)
	for v := range res.Parent {
		res.Parent[v] = graph.NodeID(v)
	}
	res.Covered[origin] = true
	states[origin].seen = true
	states[origin].engaged = true // engaged until its own deficit drains

	// Round 1: the origin floods its neighbourhood.
	var pending []message
	for _, nbr := range g.Neighbors(origin) {
		pending = append(pending, message{from: origin, to: nbr, kind: flood})
		states[origin].deficit++
	}
	sortMessages(pending)

	detected := 0
	for round := 1; len(pending) > 0; round++ {
		if round > 4*n+8 {
			return Result{}, fmt.Errorf("termdetect: no quiescence after %d rounds on %s (bug)", round, g)
		}
		var next []message
		// Group deliveries by receiver for deterministic processing.
		byTo := map[graph.NodeID][]message{}
		var order []graph.NodeID
		for _, m := range pending {
			if len(byTo[m.to]) == 0 {
				order = append(order, m.to)
			}
			byTo[m.to] = append(byTo[m.to], m)
		}
		slices.Sort(order)

		for _, m := range pending {
			if m.kind == flood {
				res.FloodMessages++
				if round > res.FloodRounds {
					res.FloodRounds = round
				}
			} else {
				res.AckMessages++
			}
		}

		for _, v := range order {
			st := &states[v]
			for _, m := range byTo[v] {
				switch m.kind {
				case flood:
					res.Covered[v] = true
					if !st.seen {
						// First delivery: adopt the sender as parent,
						// forward to the complement, defer the parent's
						// ack until the subtree drains.
						st.seen = true
						st.parent = m.from
						st.engaged = true
						res.Parent[v] = m.from
						senders := sendersOf(byTo[v])
						for _, nbr := range g.Neighbors(v) {
							if containsNode(senders, nbr) {
								continue
							}
							next = append(next, message{from: v, to: nbr, kind: flood})
							st.deficit++
						}
					} else {
						// Later copies are acknowledged immediately.
						next = append(next, message{from: v, to: m.from, kind: ack})
					}
				case ack:
					st.deficit--
				}
			}
			// A drained, engaged, non-origin node releases its parent.
			if st.engaged && st.deficit == 0 && v != origin && st.seen {
				next = append(next, message{from: v, to: st.parent, kind: ack})
				st.engaged = false
			}
			if v == origin && st.engaged && st.deficit == 0 {
				st.engaged = false
				detected = round
			}
		}
		// First deliveries acknowledge their parent only after the
		// subtree drains; but a leaf that forwarded nothing drains in the
		// same round it was reached — handled above because its deficit
		// is already 0 when checked.
		sortMessages(next)
		pending = next
	}
	if states[origin].engaged && states[origin].deficit == 0 {
		// Origin drained exactly when the queue emptied.
		detected = res.FloodRounds + 1
	}
	if detected == 0 {
		return Result{}, fmt.Errorf("termdetect: origin never detected termination on %s (bug)", g)
	}
	res.DetectionRound = detected
	return res, nil
}

func sendersOf(msgs []message) []graph.NodeID {
	var out []graph.NodeID
	for _, m := range msgs {
		if m.kind == flood {
			out = append(out, m.from)
		}
	}
	slices.Sort(out)
	return out
}

func containsNode(sorted []graph.NodeID, v graph.NodeID) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == v
}

func sortMessages(msgs []message) {
	slices.SortFunc(msgs, func(a, b message) int {
		if a.from != b.from {
			return int(a.from) - int(b.from)
		}
		if a.to != b.to {
			return int(a.to) - int(b.to)
		}
		return int(a.kind) - int(b.kind)
	})
}
