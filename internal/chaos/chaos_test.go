package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"chaos:rate=0.15,kinds=err|panic|stall,seed=7,stall=100ms",
		"chaos:rate=1,kinds=err,seed=-3,stall=1s",
		"chaos:rate=0,kinds=panic|stall,seed=0,stall=2m0s",
	}
	for _, spec := range cases {
		inj, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := inj.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
		again, err := Parse(inj.String())
		if err != nil || again.String() != inj.String() {
			t.Errorf("round-trip of %q failed: %v", spec, err)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	for _, spec := range []string{"chaos", "CHAOS", " chaos :rate=0.1"} {
		inj, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if inj.Rate() != 0.1 || len(inj.kinds) != 3 || inj.seed != 1 || inj.stall != DefaultStall {
			t.Errorf("Parse(%q) defaults wrong: %+v", spec, inj)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"havoc:rate=0.1",          // wrong name
		"chaos:rate=2",            // rate out of range
		"chaos:rate=-0.1",         // negative rate
		"chaos:rate=x",            // non-numeric rate
		"chaos:kinds=err|fire",    // unknown kind
		"chaos:kinds=err|err",     // duplicate kind
		"chaos:seed=x",            // non-integer seed
		"chaos:stall=-1s",         // negative stall
		"chaos:stall=soon",        // non-duration stall
		"chaos:verbosity=11",      // unknown parameter
		"chaos:rate",              // not key=value
		"chaos:rate=",             // empty value
	}
	for _, spec := range cases {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

// TestDecideDeterministic: the schedule is a pure function of
// (seed, site, id, attempt) — equal seeds agree everywhere, and distinct
// seeds or attempts disagree somewhere.
func TestDecideDeterministic(t *testing.T) {
	a := New(0.5, nil, 7)
	b := New(0.5, nil, 7)
	c := New(0.5, nil, 8)
	sameAsC, attemptVaries := true, false
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("spec-%d", i)
		if a.Decide(SiteRun, id, 1) != b.Decide(SiteRun, id, 1) {
			t.Fatalf("equal seeds disagree on %s", id)
		}
		if a.Decide(SiteRun, id, 1) != c.Decide(SiteRun, id, 1) {
			sameAsC = false
		}
		if a.Decide(SiteRun, id, 1) != a.Decide(SiteRun, id, 2) {
			attemptVaries = true
		}
	}
	if sameAsC {
		t.Error("seeds 7 and 8 produce identical schedules (suspicious)")
	}
	if !attemptVaries {
		t.Error("attempt number never changes the verdict (retries could never converge)")
	}
}

// TestDecideRate: the empirical injection frequency tracks the configured
// rate, and only configured kinds are drawn.
func TestDecideRate(t *testing.T) {
	inj := New(0.2, []Kind{Err, Stall}, 3)
	const n = 5000
	fired := 0
	for i := 0; i < n; i++ {
		switch inj.Decide(SiteRun, fmt.Sprintf("id-%d", i), 1) {
		case None:
		case Err, Stall:
			fired++
		case Panic:
			t.Fatal("drew a kind outside the configured mix")
		}
	}
	if got := float64(fired) / n; math.Abs(got-0.2) > 0.03 {
		t.Errorf("empirical rate %.3f, want ~0.2", got)
	}
}

func TestDecideEdges(t *testing.T) {
	if k := New(0, nil, 1).Decide(SiteRun, "x", 1); k != None {
		t.Errorf("rate 0 injected %v", k)
	}
	var nilInj *Injector
	if k := nilInj.Decide(SiteRun, "x", 1); k != None {
		t.Errorf("nil injector injected %v", k)
	}
	always := New(1, []Kind{Err}, 1)
	for i := 0; i < 50; i++ {
		if k := always.Decide(SiteRun, fmt.Sprintf("id-%d", i), 1); k != Err {
			t.Fatalf("rate 1 skipped injection (%v)", k)
		}
	}
}

func TestInjectErr(t *testing.T) {
	inj := New(1, []Kind{Err}, 1)
	err := inj.Inject(context.Background(), SiteRun, "spec", 1)
	if !IsInjected(err) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "spec") || !strings.Contains(err.Error(), SiteRun) {
		t.Errorf("error %q does not address the injection point", err)
	}
}

func TestInjectPanic(t *testing.T) {
	inj := New(1, []Kind{Panic}, 1)
	defer func() {
		v := recover()
		p, ok := v.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want InjectedPanic", v, v)
		}
		if p.Site != SiteBuild || p.ID != "group" || p.Attempt != 2 {
			t.Errorf("panic value %+v does not address the injection point", p)
		}
		if !strings.Contains(fmt.Sprintf("%v", v), "injected panic") {
			t.Errorf("panic value renders as %v", v)
		}
	}()
	inj.Inject(context.Background(), SiteBuild, "group", 2)
	t.Fatal("Inject did not panic")
}

// TestInjectStall: a stall returns the context error once the deadline
// fires, and an injected error once the stall bound elapses without one.
func TestInjectStall(t *testing.T) {
	inj, err := Parse("chaos:rate=1,kinds=stall,seed=1,stall=50ms")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := inj.Inject(ctx, SiteRun, "spec", 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline-bounded stall returned %v, want DeadlineExceeded", err)
	}
	start := time.Now()
	if err := inj.Inject(context.Background(), SiteRun, "spec", 1); !IsInjected(err) {
		t.Errorf("unbounded stall returned %v, want ErrInjected", err)
	} else if time.Since(start) < 50*time.Millisecond {
		t.Error("stall returned before its bound elapsed")
	}
}

func TestInjectNone(t *testing.T) {
	inj := New(0, nil, 1)
	if err := inj.Inject(context.Background(), SiteRun, "spec", 1); err != nil {
		t.Fatalf("rate-0 Inject returned %v", err)
	}
}
