// Package chaos is the deterministic fault-injection harness behind the
// scenario layer's resilience gates: an Injector decides, from a seed and
// nothing else, whether a given (site, id, attempt) triple suffers an
// injected error, an injected panic, or an injected stall. Because the
// schedule is a pure function of (seed, site, id, attempt), a faulted suite
// is exactly reproducible, and a retrying runner converges on the fault-free
// results — the property the differential chaos gate asserts.
//
// Injectors are addressed by the repository's shared spec grammar:
//
//	chaos:rate=0.15,kinds=err|panic|stall,seed=7,stall=100ms
//
// rate is the per-attempt injection probability in [0, 1], kinds the
// fault mix drawn from (uniformly, by a second hash), seed the schedule
// seed, and stall the bound on how long a stall-kind fault blocks when the
// caller's context has no earlier deadline. Sites name the injection points
// a harness wires up (SiteRun, SiteBuild, SiteSink).
package chaos

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"
)

// Kind is one fault flavour an Injector can produce.
type Kind uint8

// The fault kinds. None means "no fault this attempt".
const (
	None Kind = iota
	// Err surfaces as an error wrapping ErrInjected from Inject.
	Err
	// Panic makes Inject panic with an InjectedPanic value, exercising the
	// caller's recover path.
	Panic
	// Stall makes Inject block until the context is done or the injector's
	// stall bound elapses, exercising the caller's watchdog path.
	Stall
)

// String implements fmt.Stringer with the spec-grammar spellings.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Err:
		return "err"
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injection sites the scenario runner wires up. Sites are free-form strings;
// these constants just keep the runner and its tests in agreement.
const (
	// SiteRun is consulted once per run attempt, before the engine runs.
	SiteRun = "run"
	// SiteBuild is consulted once per graph-build attempt of a spec group.
	SiteBuild = "build"
	// SiteSink is consulted once per sink write (see scenario.NewChaosSink).
	SiteSink = "sink"
)

// ErrInjected is wrapped into every error Inject returns for Err and
// elapsed-Stall faults, matchable with errors.Is — the signal that a failure
// is chaos-transient rather than a property of the spec.
var ErrInjected = errors.New("chaos: injected fault")

// IsInjected reports whether err carries ErrInjected.
func IsInjected(err error) bool {
	return errors.Is(err, ErrInjected)
}

// InjectedPanic is the value Panic-kind faults are thrown with, so recover
// sites can tell injected panics from real ones.
type InjectedPanic struct {
	// Site, ID, and Attempt address the injection that fired.
	Site    string
	ID      string
	Attempt int
}

// String implements fmt.Stringer, so recovered values render legibly.
func (p InjectedPanic) String() string {
	return fmt.Sprintf("chaos: injected panic at %s %q (attempt %d)", p.Site, p.ID, p.Attempt)
}

// Injector is a seeded fault schedule. The zero value injects nothing; build
// one with New or Parse. Injectors are immutable and safe for concurrent
// use.
type Injector struct {
	rate  float64
	kinds []Kind
	seed  int64
	stall time.Duration
}

// DefaultStall bounds Stall faults when the spec does not set stall=: a
// stalled attempt under a caller with no deadline resumes (with an injected
// error) after this long instead of hanging its worker forever.
const DefaultStall = time.Second

// New returns an injector firing each (site, id, attempt) with probability
// rate, drawing uniformly from kinds. An empty kinds list means all three.
func New(rate float64, kinds []Kind, seed int64) *Injector {
	if len(kinds) == 0 {
		kinds = []Kind{Err, Panic, Stall}
	}
	return &Injector{rate: rate, kinds: append([]Kind(nil), kinds...), seed: seed, stall: DefaultStall}
}

// Parse builds an injector from its spec string (see the package comment for
// the grammar). Parameters default to rate=0.1, kinds=err|panic|stall,
// seed=1, stall=1s.
func Parse(spec string) (*Injector, error) {
	name, params, hasParams := strings.Cut(spec, ":")
	if strings.ToLower(strings.TrimSpace(name)) != "chaos" {
		return nil, fmt.Errorf("chaos: spec %q does not start with \"chaos\"", spec)
	}
	inj := &Injector{rate: 0.1, kinds: []Kind{Err, Panic, Stall}, seed: 1, stall: DefaultStall}
	if !hasParams {
		return inj, nil
	}
	for _, kv := range strings.Split(params, ",") {
		key, value, ok := strings.Cut(kv, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		if !ok || value == "" {
			return nil, fmt.Errorf("chaos: parameter %q is not key=value", kv)
		}
		switch key {
		case "rate":
			r, err := strconv.ParseFloat(value, 64)
			if err != nil || r < 0 || r > 1 {
				return nil, fmt.Errorf("chaos: rate %q is not a probability in [0, 1]", value)
			}
			inj.rate = r
		case "kinds":
			kinds, err := parseKinds(value)
			if err != nil {
				return nil, err
			}
			inj.kinds = kinds
		case "seed":
			s, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: seed %q is not an integer", value)
			}
			inj.seed = s
		case "stall":
			d, err := time.ParseDuration(value)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("chaos: stall %q is not a positive duration", value)
			}
			inj.stall = d
		default:
			return nil, fmt.Errorf("chaos: unknown parameter %q (want rate, kinds, seed, stall)", key)
		}
	}
	return inj, nil
}

// parseKinds resolves a '|'-separated kind list, preserving order and
// rejecting duplicates and unknown names.
func parseKinds(value string) ([]Kind, error) {
	var kinds []Kind
	seen := map[Kind]bool{}
	for _, part := range strings.Split(value, "|") {
		var k Kind
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "err":
			k = Err
		case "panic":
			k = Panic
		case "stall":
			k = Stall
		default:
			return nil, fmt.Errorf("chaos: unknown kind %q (want err, panic, stall)", part)
		}
		if seen[k] {
			return nil, fmt.Errorf("chaos: kind %q listed twice", part)
		}
		seen[k] = true
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, errors.New("chaos: empty kinds list")
	}
	return kinds, nil
}

// String renders the canonical spec form; Parse(inj.String()) round-trips.
func (inj *Injector) String() string {
	names := make([]string, len(inj.kinds))
	for i, k := range inj.kinds {
		names[i] = k.String()
	}
	return fmt.Sprintf("chaos:rate=%s,kinds=%s,seed=%d,stall=%s",
		strconv.FormatFloat(inj.rate, 'g', -1, 64), strings.Join(names, "|"), inj.seed, inj.stall)
}

// Rate returns the per-attempt injection probability.
func (inj *Injector) Rate() float64 { return inj.rate }

// Decide returns the fault for (site, id, attempt), or None. The verdict is
// a pure function of the injector's seed and the triple: re-deciding the
// same triple always agrees, and distinct attempts of the same run are
// decided independently — which is why a retrying caller converges.
func (inj *Injector) Decide(site, id string, attempt int) Kind {
	if inj == nil || inj.rate <= 0 || len(inj.kinds) == 0 {
		return None
	}
	// Top 53 bits of the hash as a uniform float in [0, 1).
	u := float64(inj.hash(0, site, id, attempt)>>11) / float64(uint64(1)<<53)
	if u >= inj.rate {
		return None
	}
	pick := inj.hash(0x9e3779b97f4a7c15, site, id, attempt)
	return inj.kinds[pick%uint64(len(inj.kinds))]
}

// hash mixes the seed (xor'd with salt) and the triple through FNV-1a.
func (inj *Injector) hash(salt uint64, site, id string, attempt int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	mixed := uint64(inj.seed) ^ salt
	for i := range buf {
		buf[i] = byte(mixed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(site))
	h.Write([]byte{0})
	h.Write([]byte(id))
	h.Write([]byte{0})
	for i := range buf {
		buf[i] = byte(uint64(attempt) >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// Inject executes the fault Decide picks for (site, id, attempt): Err-kind
// faults return an error wrapping ErrInjected, Panic-kind faults panic with
// an InjectedPanic, and Stall-kind faults block until the context is done
// (returning the wrapped context error, so deadline classification at the
// call site still works) or the stall bound elapses (returning an injected
// error). A None verdict returns nil, so callers can wire Inject in
// unconditionally.
func (inj *Injector) Inject(ctx context.Context, site, id string, attempt int) error {
	switch inj.Decide(site, id, attempt) {
	case Err:
		return fmt.Errorf("%w: err at %s %q (attempt %d)", ErrInjected, site, id, attempt)
	case Panic:
		panic(InjectedPanic{Site: site, ID: id, Attempt: attempt})
	case Stall:
		timer := time.NewTimer(inj.stall)
		defer timer.Stop()
		select {
		case <-ctx.Done():
			return fmt.Errorf("chaos: injected stall at %s %q (attempt %d) interrupted: %w", site, id, attempt, ctx.Err())
		case <-timer.C:
			return fmt.Errorf("%w: stall %s elapsed at %s %q (attempt %d)", ErrInjected, inj.stall, site, id, attempt)
		}
	}
	return nil
}
