package specgrammar_test

import (
	"strings"
	"testing"

	"amnesiacflood/internal/specgrammar"
)

var decls = specgrammar.Params{
	{Name: "n", Kind: specgrammar.IntParam, Default: "8", Doc: "size"},
	{Name: "p", Kind: specgrammar.FloatParam, Default: "0.5", Doc: "probability"},
	{Name: "connect", Kind: specgrammar.BoolParam, Default: "false", Doc: "connectify"},
	{Name: "metric", Kind: specgrammar.StringParam, Default: "rounds", Doc: "quantity"},
}

func TestKindCheck(t *testing.T) {
	cases := []struct {
		kind specgrammar.Kind
		raw  string
		ok   bool
	}{
		{specgrammar.IntParam, "42", true},
		{specgrammar.IntParam, "4.2", false},
		{specgrammar.FloatParam, "0.25", true},
		{specgrammar.FloatParam, "x", false},
		{specgrammar.BoolParam, "true", true},
		{specgrammar.BoolParam, "yes", false},
		{specgrammar.StringParam, "messages", true},
		{specgrammar.StringParam, "a=b", false},
		{specgrammar.StringParam, "a,b", false},
		{specgrammar.StringParam, "a:b", false},
	}
	for _, c := range cases {
		if err := c.kind.Check(c.raw); (err == nil) != c.ok {
			t.Errorf("Kind(%s).Check(%q) = %v, want ok=%v", c.kind, c.raw, err, c.ok)
		}
	}
}

func TestParseAssignmentsRoundTrip(t *testing.T) {
	for _, raw := range []string{"n=4", "n=4,p=0.25", "p=0.25,connect=true", "metric=messages", "n=1,p=2,connect=true,metric=x"} {
		got, err := decls.ParseAssignments("test", "fam:"+raw, "family fam", raw)
		if err != nil {
			t.Fatalf("ParseAssignments(%q): %v", raw, err)
		}
		// Canonical re-renders declared-order inputs identically.
		if canon := decls.Canonical(got); canon != raw {
			t.Errorf("Canonical(Parse(%q)) = %q", raw, canon)
		}
	}
	// Out-of-order input canonicalises to declared order.
	got, err := decls.ParseAssignments("test", "s", "family fam", "p=0.25,n=4")
	if err != nil {
		t.Fatal(err)
	}
	if canon := decls.Canonical(got); canon != "n=4,p=0.25" {
		t.Errorf("Canonical out-of-order = %q, want n=4,p=0.25", canon)
	}
}

func TestParseAssignmentsErrors(t *testing.T) {
	for _, raw := range []string{"", "  ", "n", "n=", "=4", "n=x", "n=4,n=5", "q=1", "p=zero", "connect=maybe", "metric=a=b"} {
		if _, err := decls.ParseAssignments("test", "fam:"+raw, "family fam", raw); err == nil {
			t.Errorf("ParseAssignments(%q) succeeded, want error", raw)
		}
	}
}

func TestResolveDefaultsAndOverrides(t *testing.T) {
	v, err := decls.Resolve("test", "family fam", map[string]string{"n": "16", "metric": "messages"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int("n") != 16 || v.Float("p") != 0.5 || v.Bool("connect") || v.String("metric") != "messages" {
		t.Errorf("Resolve mixed explicit/default values wrong: n=%d p=%v connect=%v metric=%q",
			v.Int("n"), v.Float("p"), v.Bool("connect"), v.String("metric"))
	}
	if _, err := decls.Resolve("test", "family fam", map[string]string{"nope": "1"}); err == nil || !strings.Contains(err.Error(), "no parameter") {
		t.Errorf("Resolve undeclared key: err = %v, want 'no parameter'", err)
	}
	if _, err := decls.Resolve("test", "family fam", map[string]string{"n": "x"}); err == nil {
		t.Error("Resolve unparseable value succeeded, want error")
	}
}

func TestFull(t *testing.T) {
	full := decls.Full(map[string]string{"n": "3"})
	want := map[string]string{"n": "3", "p": "0.5", "connect": "false", "metric": "rounds"}
	if len(full) != len(want) {
		t.Fatalf("Full = %v, want %v", full, want)
	}
	for k, v := range want {
		if full[k] != v {
			t.Errorf("Full[%q] = %q, want %q", k, full[k], v)
		}
	}
	if specgrammar.Params(nil).Full(nil) != nil {
		t.Error("empty Params.Full should be nil")
	}
}

func TestValuesPanicsOnUndeclared(t *testing.T) {
	v, err := decls.Resolve("test", "family fam", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("reading undeclared parameter did not panic")
		}
	}()
	v.Int("undeclared")
}

func TestValidatePanics(t *testing.T) {
	cases := map[string]specgrammar.Params{
		"empty name":    {{Name: "", Kind: specgrammar.IntParam, Default: "1"}},
		"metacharacter": {{Name: "a=b", Kind: specgrammar.IntParam, Default: "1"}},
		"duplicate":     {{Name: "n", Kind: specgrammar.IntParam, Default: "1"}, {Name: "n", Kind: specgrammar.IntParam, Default: "2"}},
		"bad default":   {{Name: "n", Kind: specgrammar.IntParam, Default: "x"}},
	}
	for name, ps := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Validate did not panic", name)
				}
			}()
			ps.Validate("test", "family fam")
		}()
	}
	// A well-formed list must not panic.
	decls.Validate("test", "family fam")
}

func TestCheckName(t *testing.T) {
	if got := specgrammar.CheckName("test", "  GrId ", ""); got != "grid" {
		t.Errorf("CheckName normalised to %q, want grid", got)
	}
	for name, extra := range map[string]string{"": "", "a:b": "", "a b": "", "a.b": "."} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CheckName(%q) did not panic", name)
				}
			}()
			specgrammar.CheckName("test", name, extra)
		}()
	}
	// '.' is allowed without the extra ban.
	if got := specgrammar.CheckName("test", "a.b", ""); got != "a.b" {
		t.Errorf("CheckName(a.b) = %q", got)
	}
}
