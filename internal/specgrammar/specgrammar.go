// Package specgrammar is the shared typed-parameter kernel of the spec
// grammars used across the simulator's registry axes. The graph
// (internal/graph/gen), execution-model (internal/model), and analysis
// (internal/analysis) registries all address their families with one-line
// spec strings of the shape
//
//	family[:key=value[,key=value]...]
//
// and all need the same machinery underneath: typed parameter declarations
// (int, float, bool, string), registration-time validation of those
// declarations, parsing of key=value assignment lists against them,
// canonical rendering in declared order (so Parse(s).String() == s for
// canonically ordered s), and resolution of explicit assignments over
// declared defaults into type-checked values.
//
// Before this package existed each registry carried a near-verbatim copy of
// that machinery, and the copies had already diverged (the string kind
// existed only in analysis). This kernel is the single source of truth the
// three registries instantiate — and, transitively, the wire format of the
// afsimd service, whose requests are exactly canonical spec strings. The
// registries keep their own top-level grammar (the model axis has a
// kind:family prefix, graph and analysis specs are bare families) and their
// own family storage; only the parameter layer lives here.
//
// Error messages are prefixed with the instantiating registry's package
// name (the prefix argument) so they read identically to the pre-extraction
// errors callers already match on.
package specgrammar

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
)

// Kind types a family parameter.
type Kind int

// Parameter kinds.
const (
	// IntParam values parse with strconv.Atoi.
	IntParam Kind = iota + 1
	// FloatParam values parse with strconv.ParseFloat (probabilities).
	FloatParam
	// BoolParam values parse with strconv.ParseBool.
	BoolParam
	// StringParam values are free-form except for the spec metacharacters
	// ':', ',' and '='.
	StringParam
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case IntParam:
		return "int"
	case FloatParam:
		return "float"
	case BoolParam:
		return "bool"
	case StringParam:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Check validates that raw parses as a value of kind k.
func (k Kind) Check(raw string) error {
	var err error
	switch k {
	case IntParam:
		_, err = strconv.Atoi(raw)
	case FloatParam:
		_, err = strconv.ParseFloat(raw, 64)
	case BoolParam:
		_, err = strconv.ParseBool(raw)
	case StringParam:
		if strings.ContainsAny(raw, ":,=") {
			err = fmt.Errorf("string value %q contains spec metacharacters", raw)
		}
	default:
		err = fmt.Errorf("unknown parameter kind %d", int(k))
	}
	return err
}

// Param declares one parameter of a family: its name, type, default value
// (a canonical literal of the declared kind), and a one-line doc string for
// -list output.
type Param struct {
	Name    string
	Kind    Kind
	Default string
	Doc     string
}

// Params is an ordered parameter declaration list; the order defines the
// canonical spec order of a family's assignments.
type Params []Param

// Lookup returns the declaration of the named parameter, or nil.
func (ps Params) Lookup(name string) *Param {
	for i := range ps {
		if ps[i].Name == name {
			return &ps[i]
		}
	}
	return nil
}

// Doc renders the declarations for error messages and listings, e.g.
// "rows int, cols int", or "no parameters" for an empty list.
func (ps Params) Doc() string {
	if len(ps) == 0 {
		return "no parameters"
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Name + " " + p.Kind.String()
	}
	return strings.Join(parts, ", ")
}

// Validate panics on malformed declarations — empty or metacharacter-bearing
// names, duplicate names, defaults that do not parse as their declared kind.
// Registries call it at Register time; a bad declaration is a programmer
// error in the registering package, never user input. prefix is the
// registry's package name, owner the family being registered (both only feed
// the panic message).
func (ps Params) Validate(prefix, owner string) {
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || strings.ContainsAny(p.Name, ":,= \t") {
			panic(prefix + ": " + owner + " declares invalid parameter name " + strconv.Quote(p.Name))
		}
		if seen[p.Name] {
			panic(prefix + ": " + owner + " declares parameter " + p.Name + " twice")
		}
		seen[p.Name] = true
		if err := p.Kind.Check(p.Default); err != nil {
			panic(fmt.Sprintf("%s: %s parameter %s has unparseable default %q: %v", prefix, owner, p.Name, p.Default, err))
		}
	}
}

// ParseAssignments parses a raw "key=value[,key=value]..." list against the
// declarations: every key must be declared, every value parseable as the
// declared kind, no key assigned twice. Keys are lower-cased and
// whitespace-trimmed; empty keys or values are errors. spec is the full
// original spec string and owner the family description — both feed error
// messages only. An empty raw list is an error (a trailing ':' with nothing
// after it).
func (ps Params) ParseAssignments(prefix, spec, owner, raw string) (map[string]string, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("%s: spec %q has an empty parameter list (drop the trailing ':')", prefix, spec)
	}
	out := map[string]string{}
	for _, kv := range strings.Split(raw, ",") {
		key, value, ok := strings.Cut(kv, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		if !ok || key == "" || value == "" {
			return nil, fmt.Errorf("%s: spec %q: want key=value, got %q", prefix, spec, kv)
		}
		decl := ps.Lookup(key)
		if decl == nil {
			return nil, fmt.Errorf("%s: spec %q: %s has no parameter %q (accepts %s)", prefix, spec, owner, key, ps.Doc())
		}
		if err := decl.Kind.Check(value); err != nil {
			return nil, fmt.Errorf("%s: spec %q: parameter %s wants %s, got %q", prefix, spec, key, decl.Kind, value)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("%s: spec %q assigns parameter %s twice", prefix, spec, key)
		}
		out[key] = value
	}
	return out, nil
}

// Canonical renders explicit assignments as "key=value,..." with declared
// parameters first in declaration order, then any undeclared keys trailing
// in alphabetical order (possible only on hand-built specs, which the
// registries' builders reject) — so rendering stays total and
// deterministic. An empty assignment map renders as "".
func (ps Params) Canonical(explicit map[string]string) string {
	if len(explicit) == 0 {
		return ""
	}
	ordered := make([]string, 0, len(explicit))
	emitted := map[string]bool{}
	for _, p := range ps {
		if v, set := explicit[p.Name]; set {
			ordered = append(ordered, p.Name+"="+v)
			emitted[p.Name] = true
		}
	}
	var extra []string
	for k, v := range explicit {
		if !emitted[k] {
			extra = append(extra, k+"="+v)
		}
	}
	slices.Sort(extra)
	return strings.Join(append(ordered, extra...), ",")
}

// Full returns the fully explicit assignment map: every declared parameter
// present, explicit values over declared defaults. Undeclared explicit keys
// are dropped (Resolve rejects them before any caller needs Full). The graph
// registry names built graphs with Canonical(Full(...)) so every instance
// carries its exact parameters.
func (ps Params) Full(explicit map[string]string) map[string]string {
	if len(ps) == 0 {
		return nil
	}
	full := make(map[string]string, len(ps))
	for _, p := range ps {
		raw, set := explicit[p.Name]
		if !set {
			raw = p.Default
		}
		full[p.Name] = raw
	}
	return full
}

// Resolve type-checks explicit assignments over declared defaults into
// Values. Undeclared keys and unparseable values are errors (user input, not
// programmer errors). prefix and owner feed error messages only.
func (ps Params) Resolve(prefix, owner string, explicit map[string]string) (Values, error) {
	for k := range explicit {
		if ps.Lookup(k) == nil {
			return Values{}, fmt.Errorf("%s: %s has no parameter %q (accepts %s)", prefix, owner, k, ps.Doc())
		}
	}
	values := Values{ints: map[string]int{}, floats: map[string]float64{}, bools: map[string]bool{}, strs: map[string]string{}}
	for _, p := range ps {
		raw, set := explicit[p.Name]
		if !set {
			raw = p.Default
		}
		var err error
		switch p.Kind {
		case IntParam:
			values.ints[p.Name], err = strconv.Atoi(raw)
		case FloatParam:
			values.floats[p.Name], err = strconv.ParseFloat(raw, 64)
		case BoolParam:
			values.bools[p.Name], err = strconv.ParseBool(raw)
		case StringParam:
			err = p.Kind.Check(raw)
			values.strs[p.Name] = raw
		}
		if err != nil {
			return Values{}, fmt.Errorf("%s: %s: parameter %s wants %s, got %q", prefix, owner, p.Name, p.Kind, raw)
		}
	}
	return values, nil
}

// Values holds the resolved, type-checked parameters handed to a family's
// constructor. Accessors are keyed by declared parameter name; asking for an
// undeclared parameter is a programmer error and panics.
type Values struct {
	ints   map[string]int
	floats map[string]float64
	bools  map[string]bool
	strs   map[string]string
}

// Int returns the named int parameter.
func (v Values) Int(name string) int {
	n, ok := v.ints[name]
	if !ok {
		panic("specgrammar: constructor read undeclared int parameter " + name)
	}
	return n
}

// Float returns the named float parameter.
func (v Values) Float(name string) float64 {
	f, ok := v.floats[name]
	if !ok {
		panic("specgrammar: constructor read undeclared float parameter " + name)
	}
	return f
}

// Bool returns the named bool parameter.
func (v Values) Bool(name string) bool {
	b, ok := v.bools[name]
	if !ok {
		panic("specgrammar: constructor read undeclared bool parameter " + name)
	}
	return b
}

// String returns the named string parameter.
func (v Values) String(name string) string {
	s, ok := v.strs[name]
	if !ok {
		panic("specgrammar: constructor read undeclared string parameter " + name)
	}
	return s
}

// CheckName validates a family name at registration time: non-empty after
// lower-casing and trimming, and free of the grammar's metacharacters plus
// any registry-specific extras (the analysis registry also bans '.', which
// separates family and metric in flattened column names). It returns the
// normalised name and panics on violations — registration happens from
// package inits, so a bad name is always a programmer error.
func CheckName(prefix, name, extraBanned string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		panic(prefix + ": Register with empty family name")
	}
	if strings.ContainsAny(name, ":,= \t"+extraBanned) {
		panic(prefix + ": family name " + name + " contains spec metacharacters")
	}
	return name
}
