// Package trace renders and exports execution traces. Its ASCII renderers
// reproduce the content of the paper's figures: for each round, the set of
// sending nodes (the circled nodes of Figures 1-3 and 5) and the edges the
// message crosses; the timeline view shows per-node receive/send activity
// over the whole run.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Labeler maps node IDs to display labels. The paper labels nodes a, b,
// c, ...; Letters reproduces that for small graphs.
type Labeler func(graph.NodeID) string

// Numbers labels nodes by their numeric ID.
func Numbers(v graph.NodeID) string {
	return strconv.Itoa(int(v))
}

// Letters labels nodes a, b, ..., z, then aa, ab, ... like spreadsheet
// columns, matching the paper's figure labels for small graphs.
func Letters(v graph.NodeID) string {
	if v < 0 {
		return strconv.Itoa(int(v))
	}
	n := int(v)
	var sb []byte
	for {
		sb = append([]byte{byte('a' + n%26)}, sb...)
		n = n/26 - 1
		if n < 0 {
			break
		}
	}
	return string(sb)
}

// RenderRounds writes one line per round in the style of the paper's
// figures: the circled (sending) nodes followed by the message edges.
//
//	round 1: sending {b}  edges b->a b->c
//	round 2: sending {a,c}  edges a->c c->a
func RenderRounds(w io.Writer, records []engine.RoundRecord, label Labeler) error {
	if label == nil {
		label = Numbers
	}
	for _, rec := range records {
		senders := rec.Senders()
		names := make([]string, len(senders))
		for i, s := range senders {
			names[i] = label(s)
		}
		var edges []string
		for _, s := range rec.Sends {
			edges = append(edges, label(s.From)+"->"+label(s.To))
		}
		if _, err := fmt.Fprintf(w, "round %d: sending {%s}  edges %s\n",
			rec.Round, strings.Join(names, ","), strings.Join(edges, " ")); err != nil {
			return err
		}
	}
	return nil
}

// Timeline writes a per-node activity grid: one row per node, one column
// per round, with "S" where the node sends, "R" where it receives, "B"
// where it does both, and "." when idle. The origin's spontaneous round-1
// send appears as S.
func Timeline(w io.Writer, g *graph.Graph, rep *core.Report, label Labeler) error {
	if label == nil {
		label = Numbers
	}
	rounds := rep.Rounds()
	sendAt := make([]map[int]bool, g.N())
	recvAt := make([]map[int]bool, g.N())
	for v := 0; v < g.N(); v++ {
		sendAt[v] = map[int]bool{}
		recvAt[v] = map[int]bool{}
	}
	for _, rec := range rep.Result.Trace {
		for _, s := range rec.Sends {
			sendAt[s.From][rec.Round] = true
			recvAt[s.To][rec.Round] = true
		}
	}
	// Header.
	if _, err := fmt.Fprintf(w, "%-6s", "node"); err != nil {
		return err
	}
	for r := 1; r <= rounds; r++ {
		if _, err := fmt.Fprintf(w, "%3d", r); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if _, err := fmt.Fprintf(w, "%-6s", label(graph.NodeID(v))); err != nil {
			return err
		}
		for r := 1; r <= rounds; r++ {
			mark := "."
			switch {
			case sendAt[v][r] && recvAt[v][r]:
				mark = "B"
			case sendAt[v][r]:
				mark = "S"
			case recvAt[v][r]:
				mark = "R"
			}
			if _, err := fmt.Fprintf(w, "%3s", mark); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports a trace as rows of (round, from, to).
func WriteCSV(w io.Writer, records []engine.RoundRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "from", "to"}); err != nil {
		return err
	}
	for _, rec := range records {
		for _, s := range rec.Sends {
			row := []string{
				strconv.Itoa(rec.Round),
				strconv.Itoa(int(s.From)),
				strconv.Itoa(int(s.To)),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON exports a trace as a JSON array of round records.
func WriteJSON(w io.Writer, records []engine.RoundRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
