package trace

import (
	"fmt"
	"io"
	"math"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// SVG rendering reproduces the paper's figure style as vector graphics:
// nodes on a circle, idle edges in light grey, the edges carrying M in the
// rendered round as directed arrows, and the sending nodes drawn with a
// double outline — the paper's "circled nodes". One SVG per round, like the
// sub-figures (a), (b), (c) of Figures 1-3 and 5.

// SVGOptions controls rendering; the zero value gives a 480x480 canvas with
// letter labels for small graphs.
type SVGOptions struct {
	// Size is the canvas width and height in pixels (default 480).
	Size int
	// Label maps nodes to display labels (default Letters for graphs of
	// at most 26 nodes, Numbers otherwise).
	Label Labeler
}

func (o SVGOptions) withDefaults(g *graph.Graph) SVGOptions {
	if o.Size <= 0 {
		o.Size = 480
	}
	if o.Label == nil {
		if g.N() <= 26 {
			o.Label = Letters
		} else {
			o.Label = Numbers
		}
	}
	return o
}

// WriteSVG renders one round of a trace over g as an SVG document: the
// graph on a circular layout, the round's message edges as arrows, and the
// senders double-circled.
func WriteSVG(w io.Writer, g *graph.Graph, rec engine.RoundRecord, opts SVGOptions) error {
	opts = opts.withDefaults(g)
	size := float64(opts.Size)
	center := size / 2
	radius := size*0.5 - 60
	if g.N() == 1 {
		radius = 0
	}

	pos := make([][2]float64, g.N())
	for v := 0; v < g.N(); v++ {
		angle := 2*math.Pi*float64(v)/float64(g.N()) - math.Pi/2
		pos[v] = [2]float64{
			center + radius*math.Cos(angle),
			center + radius*math.Sin(angle),
		}
	}
	senders := map[graph.NodeID]bool{}
	for _, s := range rec.Senders() {
		senders[s] = true
	}

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Size, opts.Size, opts.Size, opts.Size); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"  <defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" refY=\"5\" markerWidth=\"7\" markerHeight=\"7\" orient=\"auto-start-reverse\"><path d=\"M 0 0 L 10 5 L 0 10 z\"/></marker></defs>\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  <title>round %d</title>\n", rec.Round); err != nil {
		return err
	}

	// Idle edges first (light), then active message arrows on top.
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w,
			"  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#cccccc\" stroke-width=\"1.5\"/>\n",
			pos[e.U][0], pos[e.U][1], pos[e.V][0], pos[e.V][1]); err != nil {
			return err
		}
	}
	for _, s := range rec.Sends {
		// Shorten the arrow so the head stops at the node circle.
		x1, y1 := pos[s.From][0], pos[s.From][1]
		x2, y2 := pos[s.To][0], pos[s.To][1]
		dx, dy := x2-x1, y2-y1
		length := math.Hypot(dx, dy)
		if length == 0 {
			continue
		}
		trim := 22.0
		x1, y1 = x1+dx/length*trim, y1+dy/length*trim
		x2, y2 = x2-dx/length*trim, y2-dy/length*trim
		if _, err := fmt.Fprintf(w,
			"  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#000000\" stroke-width=\"2.5\" marker-end=\"url(#arrow)\"/>\n",
			x1, y1, x2, y2); err != nil {
			return err
		}
	}
	for v := 0; v < g.N(); v++ {
		node := graph.NodeID(v)
		if _, err := fmt.Fprintf(w,
			"  <circle cx=\"%.1f\" cy=\"%.1f\" r=\"16\" fill=\"#ffffff\" stroke=\"#333333\" stroke-width=\"1.5\"/>\n",
			pos[v][0], pos[v][1]); err != nil {
			return err
		}
		if senders[node] {
			// The paper's circled (sending) node: a second outline.
			if _, err := fmt.Fprintf(w,
				"  <circle cx=\"%.1f\" cy=\"%.1f\" r=\"20\" fill=\"none\" stroke=\"#333333\" stroke-width=\"1.5\"/>\n",
				pos[v][0], pos[v][1]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w,
			"  <text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" dominant-baseline=\"central\" font-family=\"sans-serif\" font-size=\"13\">%s</text>\n",
			pos[v][0], pos[v][1], opts.Label(node)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"  <text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"15\">round %d</text>\n",
		center, opts.Size-14, rec.Round); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "</svg>")
	return err
}
