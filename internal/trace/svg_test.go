package trace_test

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/trace"
)

func TestWriteSVGIsWellFormedXML(t *testing.T) {
	rep, err := core.Run(gen.Cycle(6), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range rep.Result.Trace {
		var buf bytes.Buffer
		if err := trace.WriteSVG(&buf, gen.Cycle(6), rec, trace.SVGOptions{}); err != nil {
			t.Fatal(err)
		}
		decoder := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
		for {
			if _, err := decoder.Token(); err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("round %d produced malformed XML: %v\n%s", rec.Round, err, buf.String())
			}
		}
	}
}

func TestWriteSVGMarksSenders(t *testing.T) {
	// Figure 2 round 2: a and c send. Their nodes carry the double
	// outline (radius-20 circle); b does not.
	rep, err := core.Run(gen.Cycle(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteSVG(&buf, gen.Cycle(3), rep.Result.Trace[1], trace.SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, `r="20"`); got != 2 {
		t.Fatalf("double outlines = %d, want 2 (senders a and c)", got)
	}
	if got := strings.Count(out, "marker-end"); got != 2 {
		t.Fatalf("arrows = %d, want 2 (a->c, c->a)", got)
	}
	if !strings.Contains(out, ">a<") || !strings.Contains(out, ">c<") {
		t.Fatal("letter labels missing")
	}
	if !strings.Contains(out, "round 2") {
		t.Fatal("round caption missing")
	}
}

func TestWriteSVGOptions(t *testing.T) {
	rep, err := core.Run(gen.Path(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opts := trace.SVGOptions{Size: 200, Label: trace.Numbers}
	if err := trace.WriteSVG(&buf, gen.Path(3), rep.Result.Trace[0], opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `width="200"`) {
		t.Fatal("custom size ignored")
	}
	if !strings.Contains(out, ">0<") {
		t.Fatal("numeric labels ignored")
	}
}

func TestWriteSVGSingleNode(t *testing.T) {
	g, err := graph.FromEdges("", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// A run with no rounds still allows rendering an empty round record.
	if err := trace.WriteSVG(&buf, g, engine.RoundRecord{Round: 1}, trace.SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("no SVG produced")
	}
}
