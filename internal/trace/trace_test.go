package trace_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/trace"
)

func TestLetters(t *testing.T) {
	cases := map[graph.NodeID]string{
		0: "a", 1: "b", 25: "z", 26: "aa", 27: "ab", 51: "az", 52: "ba", 701: "zz", 702: "aaa",
	}
	for id, want := range cases {
		if got := trace.Letters(id); got != want {
			t.Errorf("Letters(%d) = %q, want %q", id, got, want)
		}
	}
	if got := trace.Letters(-3); got != "-3" {
		t.Errorf("Letters(-3) = %q", got)
	}
}

func TestNumbers(t *testing.T) {
	if got := trace.Numbers(17); got != "17" {
		t.Errorf("Numbers(17) = %q", got)
	}
}

func fig1Report(t *testing.T) *core.Report {
	t.Helper()
	rep, err := core.Run(gen.Path(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRenderRoundsFig1(t *testing.T) {
	rep := fig1Report(t)
	var buf bytes.Buffer
	if err := trace.RenderRounds(&buf, rep.Result.Trace, trace.Letters); err != nil {
		t.Fatal(err)
	}
	want := "round 1: sending {b}  edges b->a b->c\n" +
		"round 2: sending {c}  edges c->d\n"
	if buf.String() != want {
		t.Fatalf("render = %q, want %q", buf.String(), want)
	}
}

func TestRenderRoundsDefaultsToNumbers(t *testing.T) {
	rep := fig1Report(t)
	var buf bytes.Buffer
	if err := trace.RenderRounds(&buf, rep.Result.Trace, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1->0") {
		t.Fatalf("numeric render = %q", buf.String())
	}
}

func TestTimelineFig2(t *testing.T) {
	rep, err := core.Run(gen.Cycle(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Timeline(&buf, gen.Cycle(3), rep, trace.Letters); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("timeline lines = %d, want 4 (header + 3 nodes):\n%s", len(lines), buf.String())
	}
	// Node a receives in round 1, both-sends-and-receives in round 2,
	// sends in round 3.
	if !strings.HasPrefix(lines[1], "a") || !strings.Contains(lines[1], "R") {
		t.Errorf("row a = %q", lines[1])
	}
	if !strings.Contains(lines[1], "B") {
		t.Errorf("row a missing B (send+receive round): %q", lines[1])
	}
	// Origin b sends in round 1, receives in round 3.
	if !strings.HasPrefix(lines[2], "b") || !strings.Contains(lines[2], "S") {
		t.Errorf("row b = %q", lines[2])
	}
}

func TestWriteCSV(t *testing.T) {
	rep := fig1Report(t)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, rep.Result.Trace); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 3 messages.
	if len(records) != 4 {
		t.Fatalf("CSV rows = %d, want 4: %v", len(records), records)
	}
	if records[0][0] != "round" || records[1][0] != "1" || records[3][2] != "3" {
		t.Fatalf("CSV contents: %v", records)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	rep := fig1Report(t)
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, rep.Result.Trace); err != nil {
		t.Fatal(err)
	}
	var back []engine.RoundRecord
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !engine.EqualTraces(rep.Result.Trace, back) {
		t.Fatalf("JSON round trip changed trace: %v vs %v", rep.Result.Trace, back)
	}
}

func TestTimelineEmptyRun(t *testing.T) {
	g, err := graph.FromEdges("", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Timeline(&buf, g, rep, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "node") {
		t.Fatalf("timeline header missing: %q", buf.String())
	}
}
