package graph

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build() error: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustBuild(t, NewBuilder(0))
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d, want 0 0", g.N(), g.M())
	}
	if len(g.Edges()) != 0 || len(g.Nodes()) != 0 {
		t.Fatalf("empty graph has edges or nodes")
	}
	if g.MaxDegree() != 0 || g.MinDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatalf("empty graph degree stats non-zero")
	}
}

func TestZeroValueGraph(t *testing.T) {
	var g Graph
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("zero value: n=%d m=%d, want 0 0", g.N(), g.M())
	}
	if g.HasNode(0) {
		t.Fatal("zero-value graph claims to have node 0")
	}
}

func TestSingleNode(t *testing.T) {
	g := mustBuild(t, NewBuilder(1))
	if g.N() != 1 || g.M() != 0 || g.Degree(0) != 0 {
		t.Fatalf("singleton: n=%d m=%d deg=%d", g.N(), g.M(), g.Degree(0))
	}
}

func TestBuilderTriangle(t *testing.T) {
	g := mustBuild(t, NewBuilder(3).Name("tri").AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 0))
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("triangle: n=%d m=%d, want 3 3", g.N(), g.M())
	}
	if g.Name() != "tri" {
		t.Fatalf("name = %q, want tri", g.Name())
	}
	for u := NodeID(0); u < 3; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("degree(%d) = %d, want 2", u, g.Degree(u))
		}
		for v := NodeID(0); v < 3; v++ {
			want := u != v
			if got := g.HasEdge(u, v); got != want {
				t.Errorf("HasEdge(%d,%d) = %t, want %t", u, v, got, want)
			}
		}
	}
}

func TestBuilderCollapsesDuplicates(t *testing.T) {
	g := mustBuild(t, NewBuilder(2).AddEdge(0, 1).AddEdge(1, 0).AddEdge(0, 1))
	if g.M() != 1 {
		t.Fatalf("duplicate edges not collapsed: m = %d, want 1", g.M())
	}
	if deg := g.Degree(0); deg != 1 {
		t.Fatalf("degree(0) = %d, want 1", deg)
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	_, err := NewBuilder(3).AddEdge(1, 1).Build()
	if !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self-loop error = %v, want ErrSelfLoop", err)
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	for _, e := range []Edge{{0, 3}, {3, 0}, {-1, 0}, {0, -1}} {
		_, err := NewBuilder(3).AddEdge(e.U, e.V).Build()
		if !errors.Is(err, ErrNodeOutOfRange) {
			t.Errorf("edge %v error = %v, want ErrNodeOutOfRange", e, err)
		}
	}
}

func TestBuilderRejectsNegativeN(t *testing.T) {
	_, err := NewBuilder(-1).Build()
	if !errors.Is(err, ErrNoNodes) {
		t.Fatalf("negative n error = %v, want ErrNoNodes", err)
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	b := NewBuilder(3).AddEdge(5, 0) // error
	b.AddEdge(0, 1)                  // valid, but after error
	if _, err := b.Build(); err == nil {
		t.Fatal("Build() after bad edge succeeded, want error")
	}
}

func TestAddPath(t *testing.T) {
	g := mustBuild(t, NewBuilder(4).AddPath(0, 1, 2, 3))
	if g.M() != 3 {
		t.Fatalf("path edges = %d, want 3", g.M())
	}
	for i := NodeID(0); i < 3; i++ {
		if !g.HasEdge(i, i+1) {
			t.Errorf("missing path edge (%d,%d)", i, i+1)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild on invalid input did not panic")
		}
	}()
	NewBuilder(1).AddEdge(0, 0).MustBuild()
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges("square", 4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.N() != 4 || g.M() != 4 || g.Name() != "square" {
		t.Fatalf("FromEdges result: %s", g)
	}
}

func TestEdgesSortedAndNormalized(t *testing.T) {
	g := mustBuild(t, NewBuilder(4).AddEdge(3, 1).AddEdge(2, 0).AddEdge(1, 0))
	edges := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := mustBuild(t, NewBuilder(5).AddEdge(2, 4).AddEdge(2, 0).AddEdge(2, 3).AddEdge(2, 1))
	nbrs := g.Neighbors(2)
	if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] }) {
		t.Fatalf("neighbours not sorted: %v", nbrs)
	}
	if len(nbrs) != 4 {
		t.Fatalf("degree(2) = %d, want 4", len(nbrs))
	}
}

func TestDegreeStats(t *testing.T) {
	// Star over 5 nodes: hub degree 4, leaves degree 1.
	b := NewBuilder(5)
	for i := NodeID(1); i < 5; i++ {
		b.AddEdge(0, i)
	}
	g := mustBuild(t, b)
	if g.MaxDegree() != 4 {
		t.Errorf("MaxDegree = %d, want 4", g.MaxDegree())
	}
	if g.MinDegree() != 1 {
		t.Errorf("MinDegree = %d, want 1", g.MinDegree())
	}
	if got, want := g.AvgDegree(), 2*4.0/5.0; got != want {
		t.Errorf("AvgDegree = %f, want %f", got, want)
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := Edge{U: 5, V: 2}
	if n := e.Normalize(); n.U != 2 || n.V != 5 {
		t.Errorf("Normalize = %v", n)
	}
	if other, ok := e.Other(5); !ok || other != 2 {
		t.Errorf("Other(5) = %d, %t", other, ok)
	}
	if other, ok := e.Other(2); !ok || other != 5 {
		t.Errorf("Other(2) = %d, %t", other, ok)
	}
	if _, ok := e.Other(7); ok {
		t.Error("Other(7) reported membership")
	}
	if e.String() != "(5,2)" {
		t.Errorf("String = %q", e.String())
	}
}

func TestGraphString(t *testing.T) {
	g := mustBuild(t, NewBuilder(2).Name("pair").AddEdge(0, 1))
	if got := g.String(); got != "pair{n=2 m=1}" {
		t.Errorf("String = %q", got)
	}
	unnamed := mustBuild(t, NewBuilder(1))
	if got := unnamed.String(); got != "graph{n=1 m=0}" {
		t.Errorf("unnamed String = %q", got)
	}
}

func TestHasEdgeOnRandomGraphs(t *testing.T) {
	// Property: HasEdge agrees with a brute-force adjacency set on random
	// graphs of various densities.
	rng := rand.New(rand.NewSource(42))
	check := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 2 + local.Intn(30)
		b := NewBuilder(n)
		truth := map[Edge]bool{}
		for i := 0; i < n*2; i++ {
			u, v := NodeID(local.Intn(n)), NodeID(local.Intn(n))
			if u == v {
				continue
			}
			b.AddEdge(u, v)
			truth[Edge{U: u, V: v}.Normalize()] = true
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		for u := NodeID(0); int(u) < n; u++ {
			for v := NodeID(0); int(v) < n; v++ {
				want := truth[Edge{U: u, V: v}.Normalize()] && u != v
				if g.HasEdge(u, v) != want {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeSumEqualsTwiceEdges(t *testing.T) {
	// Handshake lemma as a quick property over random builders.
	check := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 1 + local.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < n*3; i++ {
			u, v := NodeID(local.Intn(n)), NodeID(local.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		sum := 0
		for v := NodeID(0); int(v) < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRMatchesNeighbors(t *testing.T) {
	check := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 1 + local.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < n*3; i++ {
			u, v := NodeID(local.Intn(n)), NodeID(local.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		csr := g.CSR()
		if csr.N() != g.N() || len(csr.Offsets) != g.N()+1 {
			return false
		}
		if csr.Offsets[0] != 0 || int(csr.Offsets[g.N()]) != 2*g.M() || len(csr.Targets) != 2*g.M() {
			return false
		}
		for v := NodeID(0); int(v) < n; v++ {
			row := csr.Row(v)
			nbrs := g.Neighbors(v)
			if len(row) != len(nbrs) || csr.Degree(v) != g.Degree(v) {
				return false
			}
			for i := range row {
				if row[i] != nbrs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSREmptyAndZeroValue(t *testing.T) {
	var zero Graph
	if csr := zero.CSR(); csr.N() != 0 {
		t.Fatalf("zero-value CSR has %d rows, want 0", csr.N())
	}
	g := mustBuild(t, NewBuilder(3)) // 3 isolated nodes
	csr := g.CSR()
	if csr.N() != 3 || len(csr.Targets) != 0 {
		t.Fatalf("isolated-node CSR: rows=%d targets=%d", csr.N(), len(csr.Targets))
	}
	for v := NodeID(0); v < 3; v++ {
		if len(csr.Row(v)) != 0 {
			t.Fatalf("isolated node %d has CSR neighbours", v)
		}
	}
}
