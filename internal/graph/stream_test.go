package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// replay adapts a fixed edge list (with duplicates welcome) into a
// FromStream emit closure.
func replay(edges [][2]NodeID) func(add func(u, v NodeID)) error {
	return func(add func(u, v NodeID)) error {
		for _, e := range edges {
			add(e[0], e[1])
		}
		return nil
	}
}

// TestFromStreamMatchesBuilder: a random multigraph stream builds the exact
// graph the Builder produces from the same edges — same CSR, same adjacency,
// same counts — including duplicate collapse.
func TestFromStreamMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n = 60
	var edges [][2]NodeID
	b := NewBuilder(n).Name("streamed")
	for i := 0; i < 400; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, [2]NodeID{u, v})
		b.AddEdge(u, v)
		if rng.Intn(4) == 0 { // duplicate some edges, both orientations
			edges = append(edges, [2]NodeID{v, u})
			b.AddEdge(v, u)
		}
	}
	want := mustBuild(t, b)
	got, err := FromStream("streamed", n, replay(edges))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || got.M() != want.M() || got.Name() != want.Name() {
		t.Fatalf("got n=%d m=%d %q, want n=%d m=%d %q", got.N(), got.M(), got.Name(), want.N(), want.M(), want.Name())
	}
	if !reflect.DeepEqual(got.CSR(), want.CSR()) {
		t.Fatal("CSR differs from Builder's")
	}
	for v := NodeID(0); int(v) < n; v++ {
		if !reflect.DeepEqual(got.Neighbors(v), want.Neighbors(v)) {
			t.Fatalf("neighbors of %d differ: %v vs %v", v, got.Neighbors(v), want.Neighbors(v))
		}
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Fatal("edge lists differ")
	}
}

func TestFromStreamErrors(t *testing.T) {
	if _, err := FromStream("", -1, replay(nil)); !errors.Is(err, ErrNoNodes) {
		t.Errorf("negative n: %v, want ErrNoNodes", err)
	}
	if _, err := FromStream("", 4, replay([][2]NodeID{{1, 1}})); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self-loop: %v, want ErrSelfLoop", err)
	}
	if _, err := FromStream("", 4, replay([][2]NodeID{{0, 4}})); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("out of range: %v, want ErrNodeOutOfRange", err)
	}
	boom := errors.New("boom")
	if _, err := FromStream("", 4, func(func(u, v NodeID)) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("emit error: %v, want it propagated", err)
	}
	// A non-deterministic stream — different edge counts per pass — must be
	// rejected, in either direction.
	pass := 0
	grow := func(add func(u, v NodeID)) error {
		pass++
		add(0, 1)
		if pass > 1 {
			add(1, 2)
		}
		return nil
	}
	if _, err := FromStream("", 4, grow); !errors.Is(err, ErrStreamMismatch) {
		t.Errorf("growing stream: %v, want ErrStreamMismatch", err)
	}
	pass = 0
	shrink := func(add func(u, v NodeID)) error {
		pass++
		if pass == 1 {
			add(0, 1)
		}
		add(1, 2)
		if pass == 1 {
			add(2, 3)
		}
		return nil
	}
	if _, err := FromStream("", 4, shrink); !errors.Is(err, ErrStreamMismatch) {
		t.Errorf("shrinking stream: %v, want ErrStreamMismatch", err)
	}
}

// TestFromStreamReplayDivergence: a stream that replays the same edge COUNT
// but a different edge SEQUENCE is a contract violation that pass 2 must
// surface as ErrStreamMismatch — never as an index-out-of-range panic or a
// silently corrupted arena.
func TestFromStreamReplayDivergence(t *testing.T) {
	twoPass := func(first, second [][2]NodeID) func(add func(u, v NodeID)) error {
		pass := 0
		return func(add func(u, v NodeID)) error {
			pass++
			edges := first
			if pass > 1 {
				edges = second
			}
			for _, e := range edges {
				add(e[0], e[1])
			}
			return nil
		}
	}
	cases := []struct {
		name          string
		first, second [][2]NodeID
	}{
		{"out-of-range endpoint", [][2]NodeID{{0, 1}}, [][2]NodeID{{0, 7}}},
		{"negative endpoint", [][2]NodeID{{0, 1}}, [][2]NodeID{{-1, 1}}},
		{"self-loop", [][2]NodeID{{0, 1}}, [][2]NodeID{{1, 1}}},
		{"row overfill", [][2]NodeID{{0, 1}, {2, 3}}, [][2]NodeID{{0, 1}, {0, 1}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := FromStream("", 4, twoPass(c.first, c.second)); !errors.Is(err, ErrStreamMismatch) {
				t.Errorf("divergent replay: %v, want ErrStreamMismatch", err)
			}
		})
	}
}

func TestFromStreamEmpty(t *testing.T) {
	g, err := FromStream("empty", 3, replay(nil))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("n=%d m=%d, want 3 0", g.N(), g.M())
	}
	zero, err := FromStream("", 0, replay(nil))
	if err != nil {
		t.Fatal(err)
	}
	if zero.N() != 0 {
		t.Fatalf("n=%d, want 0", zero.N())
	}
}

// TestReadEdgeListStream: both readers accept the WriteEdgeList format and
// agree with each other, and the streamed reader rejects the same malformed
// inputs the Builder-backed one does.
func TestReadEdgeListStream(t *testing.T) {
	b := NewBuilder(7).Name("roundtrip")
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {0, 6}} {
		b.AddEdge(e[0], e[1])
	}
	want := mustBuild(t, b)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, want); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	got, err := ReadEdgeListStream(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := ReadEdgeList(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.CSR(), legacy.CSR()) || got.Name() != legacy.Name() || got.N() != legacy.N() {
		t.Fatal("streamed and Builder-backed readers disagree")
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Fatal("round trip changed the edge set")
	}
	for _, bad := range []string{
		"",             // no node-count line
		"0 1\nn 4\n",   // edge before node count
		"n 4\nn 4\n",   // duplicate node count
		"n x\n",        // unparseable count
		"n 4\n0\n",     // malformed edge line
		"n 4\n0 one\n", // unparseable endpoint
		"n 4\n0 0\n",   // self-loop
		"n 2\n0 5\n",   // endpoint out of range
	} {
		if _, err := ReadEdgeListStream(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadEdgeListStream(%q) succeeded, want error", bad)
		}
	}
}

// TestReadEdgeListStreamEdgeCap: the streamed reader fails fast with
// ErrTooManyEdges once the file exceeds the edge cap, instead of buffering
// an unbounded pair array first. The cap is lowered for the test; exercising
// the real 2^26 value would need a multi-GB fixture.
func TestReadEdgeListStreamEdgeCap(t *testing.T) {
	old := maxEdgeListEdges
	maxEdgeListEdges = 2
	defer func() { maxEdgeListEdges = old }()
	if _, err := ReadEdgeListStream(strings.NewReader("n 5\n0 1\n1 2\n2 3\n")); !errors.Is(err, ErrTooManyEdges) {
		t.Errorf("over cap: %v, want ErrTooManyEdges", err)
	}
	g, err := ReadEdgeListStream(strings.NewReader("n 5\n0 1\n1 2\n"))
	if err != nil {
		t.Fatalf("at cap: %v", err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%d, want 2", g.M())
	}
}
