package graph

import (
	"slices"
	"sort"
)

// DegreeSorted returns a copy of g with nodes relabeled in descending degree
// order (ties broken by original identifier, so the relabeling is
// deterministic and is the identity on regular graphs). perm maps original
// identifiers to new ones; inv is its inverse (inv[new] = old).
//
// High-degree rows land at the front of the CSR arena, which improves cache
// locality for frontier engines that sweep adjacency words: the hottest rows
// share cache lines instead of being scattered across the arena. Flooding
// dynamics are label-independent, so a run on the relabeled graph maps back
// to the original through inv.
func DegreeSorted(g *Graph) (relabeled *Graph, perm, inv []NodeID) {
	n := g.N()
	inv = make([]NodeID, n)
	for v := range inv {
		inv[v] = NodeID(v)
	}
	sort.SliceStable(inv, func(i, j int) bool {
		di, dj := g.Degree(inv[i]), g.Degree(inv[j])
		if di != dj {
			return di > dj
		}
		return inv[i] < inv[j]
	})
	perm = make([]NodeID, n)
	identity := true
	for nw, old := range inv {
		perm[old] = NodeID(nw)
		identity = identity && old == NodeID(nw)
	}
	if identity {
		return g, perm, inv
	}

	// Build the relabeled CSR directly: row perm[v] is v's neighbour list
	// mapped through perm and re-sorted.
	src := g.CSR()
	offsets := make([]int32, n+1)
	for nw := 0; nw < n; nw++ {
		offsets[nw+1] = offsets[nw] + int32(g.Degree(inv[nw]))
	}
	targets := make([]NodeID, len(src.Targets))
	adj := make([][]NodeID, n)
	for nw := 0; nw < n; nw++ {
		row := targets[offsets[nw]:offsets[nw+1]:offsets[nw+1]]
		for i, t := range src.Row(inv[nw]) {
			row[i] = perm[t]
		}
		slices.Sort(row)
		adj[nw] = row
	}
	relabeled = &Graph{
		name: g.name,
		adj:  adj,
		csr:  CSR{Offsets: offsets, Targets: targets},
		m:    g.m,
	}
	return relabeled, perm, inv
}
