package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
)

// The text edge-list format is line-oriented:
//
//	# comment
//	n <nodeCount>
//	<u> <v>
//	...
//
// It round-trips through WriteEdgeList / ReadEdgeList and is the on-disk
// format accepted by the cmd/afsim CLI.

// WriteEdgeList writes g in the text edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if g.Name() != "" {
		if _, err := fmt.Fprintf(bw, "# %s\n", g.Name()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format produced by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		b      *Builder
		name   string
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#"):
			if name == "" {
				name = strings.TrimSpace(strings.TrimPrefix(line, "#"))
			}
			continue
		case strings.HasPrefix(line, "n "):
			if b != nil {
				return nil, fmt.Errorf("edge list line %d: duplicate node-count line", lineNo)
			}
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "n ")))
			if err != nil {
				return nil, fmt.Errorf("edge list line %d: parse node count: %w", lineNo, err)
			}
			b = NewBuilder(n).Name(name)
		default:
			if b == nil {
				return nil, fmt.Errorf("edge list line %d: edge before node-count line", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("edge list line %d: want %q, got %q", lineNo, "u v", line)
			}
			u, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("edge list line %d: parse endpoint: %w", lineNo, err)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("edge list line %d: parse endpoint: %w", lineNo, err)
			}
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edge list: scan: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("edge list: missing node-count line")
	}
	return b.Build()
}

// maxEdgeListEdges caps how many edge lines ReadEdgeListStream accepts
// before failing with ErrTooManyEdges. The pair array costs 16 bytes per
// edge, so without a scan-time cap a hostile or runaway file would allocate
// without bound before FromStream's 2^31 directed-edge check ever ran. The
// value matches the streamed generators' cap (gen's maxStreamEdges). A var,
// not a const, so tests can lower it without 2^26-line fixtures.
var maxEdgeListEdges = 1 << 26

// ReadEdgeListStream parses the same text edge-list format as ReadEdgeList
// but builds the graph through FromStream: endpoints are collected into one
// packed pair array (16 bytes per edge) and replayed into the CSR arena, so
// peak memory is pairs + CSR rather than the Builder's edge list plus
// per-node append slices. Use it for million-edge files; the two readers
// accept the identical format and produce identical graphs. Files with more
// than maxEdgeListEdges edge lines fail fast with ErrTooManyEdges.
func ReadEdgeListStream(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		pairs  []NodeID
		name   string
		n      int
		haveN  bool
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#"):
			if name == "" {
				name = strings.TrimSpace(strings.TrimPrefix(line, "#"))
			}
			continue
		case strings.HasPrefix(line, "n "):
			if haveN {
				return nil, fmt.Errorf("edge list line %d: duplicate node-count line", lineNo)
			}
			count, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "n ")))
			if err != nil {
				return nil, fmt.Errorf("edge list line %d: parse node count: %w", lineNo, err)
			}
			n, haveN = count, true
		default:
			if !haveN {
				return nil, fmt.Errorf("edge list line %d: edge before node-count line", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("edge list line %d: want %q, got %q", lineNo, "u v", line)
			}
			u, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("edge list line %d: parse endpoint: %w", lineNo, err)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("edge list line %d: parse endpoint: %w", lineNo, err)
			}
			if len(pairs) >= 2*maxEdgeListEdges {
				return nil, fmt.Errorf("edge list line %d: more than %d edges: %w", lineNo, maxEdgeListEdges, ErrTooManyEdges)
			}
			pairs = append(pairs, NodeID(u), NodeID(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edge list: scan: %w", err)
	}
	if !haveN {
		return nil, fmt.Errorf("edge list: missing node-count line")
	}
	return FromStream(name, n, func(add func(u, v NodeID)) error {
		for i := 0; i < len(pairs); i += 2 {
			add(pairs[i], pairs[i+1])
		}
		return nil
	})
}

// graphJSON is the stable JSON wire form of a Graph.
type graphJSON struct {
	Name  string   `json:"name,omitempty"`
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON encodes the graph as {"name", "n", "edges"}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	edges := g.Edges()
	out := graphJSON{Name: g.name, N: g.N(), Edges: make([][2]int, len(edges))}
	for i, e := range edges {
		out.Edges[i] = [2]int{int(e.U), int(e.V)}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the form produced by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var in graphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("graph json: %w", err)
	}
	b := NewBuilder(in.N).Name(in.Name)
	for _, e := range in.Edges {
		b.AddEdge(NodeID(e[0]), NodeID(e[1]))
	}
	built, err := b.Build()
	if err != nil {
		return fmt.Errorf("graph json: %w", err)
	}
	*g = *built
	return nil
}

// WriteDOT writes g in Graphviz DOT format, with optional per-node
// highlighting (used by cmd/afviz to mark the sending nodes of a round, like
// the circled nodes in the paper's figures).
func WriteDOT(w io.Writer, g *Graph, highlight map[NodeID]bool) error {
	bw := bufio.NewWriter(w)
	name := g.Name()
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(bw, "graph %q {\n", sanitizeDOTName(name)); err != nil {
		return err
	}
	hl := make([]NodeID, 0, len(highlight))
	for v, on := range highlight {
		if on {
			hl = append(hl, v)
		}
	}
	slices.Sort(hl)
	for _, v := range hl {
		if _, err := fmt.Fprintf(bw, "  %d [style=bold, peripheries=2];\n", v); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}

func sanitizeDOTName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
