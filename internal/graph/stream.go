package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// ErrStreamMismatch is returned by FromStream when the two replays of the
// edge stream emit different numbers of edges. Streamed generators must be
// deterministic: both passes have to produce the same sequence.
var ErrStreamMismatch = errors.New("edge stream emitted a different edge count on replay")

// FromStream builds a named graph over n nodes from a replayable edge
// stream, without ever materialising an []Edge list. The emit callback is
// invoked exactly twice with an add(u, v) sink and must produce the same
// deterministic edge sequence both times: the first pass sizes the CSR rows,
// the second fills them in place. Duplicate edges are collapsed; self-loops
// and out-of-range endpoints are sticky errors, as with Builder.
//
// This is the construction path for graph families too large for the
// quadratic Builder pipeline (sort + per-node append of a 2m-element edge
// list): peak memory is the final CSR arena plus per-node offsets, so
// million-node graphs build in a few hundred MB instead of several GB.
func FromStream(name string, n int, emit func(add func(u, v NodeID)) error) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("stream: %w: %d", ErrNoNodes, n)
	}

	// Pass 1: count each node's (pre-dedup) degree.
	var sticky error
	degree := make([]int32, n+1) // shifted by one so it doubles as offsets
	var directed uint64
	count := func(u, v NodeID) {
		if sticky != nil {
			return
		}
		if u == v {
			sticky = fmt.Errorf("stream: edge (%d,%d): %w", u, v, ErrSelfLoop)
			return
		}
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			sticky = fmt.Errorf("stream: edge (%d,%d) with n=%d: %w", u, v, n, ErrNodeOutOfRange)
			return
		}
		degree[u+1]++
		degree[v+1]++
		directed += 2
	}
	if err := emit(count); err != nil {
		return nil, err
	}
	if sticky != nil {
		return nil, sticky
	}
	if directed > math.MaxInt32 {
		return nil, fmt.Errorf("stream: %d edges: %w", directed/2, ErrTooManyEdges)
	}

	// Prefix-sum the shifted degrees into row offsets.
	offsets := degree
	for v := 1; v <= n; v++ {
		offsets[v] += offsets[v-1]
	}

	// Pass 2: replay the stream, scattering endpoints into the arena. The
	// contract says both passes emit the same sequence, but a buggy emit can
	// diverge in ways count comparison alone misses — so the fill revalidates
	// endpoints and row capacity (sticky error, like pass 1) instead of
	// letting a contract violation panic on an out-of-range index.
	targets := make([]NodeID, directed)
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	var replayed uint64
	fill := func(u, v NodeID) {
		if sticky != nil {
			return
		}
		if u == v || u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			sticky = fmt.Errorf("stream: replay emitted edge (%d,%d) with n=%d, absent from pass 1: %w",
				u, v, n, ErrStreamMismatch)
			return
		}
		if replayed+2 > directed {
			replayed += 2 // overflow detected after the loop
			return
		}
		if cursor[u] >= offsets[u+1] || cursor[v] >= offsets[v+1] {
			sticky = fmt.Errorf("stream: replay overfilled the row of edge (%d,%d): %w",
				u, v, ErrStreamMismatch)
			return
		}
		targets[cursor[u]] = v
		targets[cursor[v]] = u
		cursor[u]++
		cursor[v]++
		replayed += 2
	}
	if err := emit(fill); err != nil {
		return nil, err
	}
	if sticky != nil {
		return nil, sticky
	}
	if replayed != directed {
		return nil, fmt.Errorf("stream: pass 1 saw %d directed edges, pass 2 saw %d: %w",
			directed, replayed, ErrStreamMismatch)
	}

	// Sort each row and compact duplicates in place. The write cursor never
	// overtakes the read cursor, so the dedup reuses the same arena.
	write := int32(0)
	for v := 0; v < n; v++ {
		row := targets[offsets[v]:offsets[v+1]]
		slices.Sort(row)
		start := write
		for i, t := range row {
			if i > 0 && t == row[i-1] {
				continue
			}
			targets[write] = t
			write++
		}
		offsets[v] = start // reuse as the *new* start of row v
	}
	// offsets[v] now holds the deduped start of row v for every v < n (row 0
	// starts at 0), so closing the final slot restores canonical CSR form.
	offsets[n] = write
	targets = targets[:write:write]

	// Adjacency rows alias the CSR arena — same invariant buildCSR
	// establishes, just in the opposite direction.
	adj := make([][]NodeID, n)
	for v := 0; v < n; v++ {
		adj[v] = targets[offsets[v]:offsets[v+1]:offsets[v+1]]
	}
	return &Graph{
		name: name,
		adj:  adj,
		csr:  CSR{Offsets: offsets, Targets: targets},
		m:    int(write) / 2,
	}, nil
}
