package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// Common builder errors, matchable with errors.Is.
var (
	// ErrSelfLoop is returned when an edge joins a node to itself.
	ErrSelfLoop = errors.New("self-loop is not allowed in a simple graph")
	// ErrNodeOutOfRange is returned when an edge references a node outside
	// 0..n-1.
	ErrNodeOutOfRange = errors.New("node identifier out of range")
	// ErrNoNodes is returned when building a graph with a negative node
	// count.
	ErrNoNodes = errors.New("node count must be non-negative")
	// ErrTooManyEdges is returned when the graph exceeds the CSR view's
	// int32 offset capacity of 2^31-1 directed edges.
	ErrTooManyEdges = errors.New("graph exceeds 2^31-1 directed edges (CSR offset capacity)")
)

// Builder accumulates nodes and edges and produces an immutable Graph.
// Duplicate edges are tolerated and collapsed (the result is always a simple
// graph). Builders are not safe for concurrent use.
type Builder struct {
	name  string
	n     int
	edges []Edge
	err   error
}

// NewBuilder returns a builder for a graph over n nodes (identifiers
// 0..n-1). A negative n is reported at Build time.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n}
	if n < 0 {
		b.err = fmt.Errorf("builder: %w: %d", ErrNoNodes, n)
	}
	return b
}

// Name sets the human-readable graph name and returns the builder for
// chaining.
func (b *Builder) Name(name string) *Builder {
	b.name = name
	return b
}

// AddEdge records the undirected edge {u, v}. Errors (self-loop, out of
// range) are sticky and reported by Build.
func (b *Builder) AddEdge(u, v NodeID) *Builder {
	if b.err != nil {
		return b
	}
	if u == v {
		b.err = fmt.Errorf("builder: edge (%d,%d): %w", u, v, ErrSelfLoop)
		return b
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		b.err = fmt.Errorf("builder: edge (%d,%d) with n=%d: %w", u, v, b.n, ErrNodeOutOfRange)
		return b
	}
	b.edges = append(b.edges, Edge{U: u, V: v}.Normalize())
	return b
}

// AddPath records edges joining consecutive nodes of the given walk.
func (b *Builder) AddPath(walk ...NodeID) *Builder {
	for i := 1; i < len(walk); i++ {
		b.AddEdge(walk[i-1], walk[i])
	}
	return b
}

// Build validates the accumulated edges and returns the immutable graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	slices.SortFunc(b.edges, func(a, b Edge) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.V) - int(b.V)
	})
	adj := make([][]NodeID, b.n)
	m := 0
	var prev Edge
	for i, e := range b.edges {
		if i > 0 && e == prev {
			continue // collapse duplicates
		}
		prev = e
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
		m++
	}
	for _, nbrs := range adj {
		slices.Sort(nbrs)
	}
	if uint64(m) > math.MaxInt32/2 {
		return nil, fmt.Errorf("builder: %d edges: %w", m, ErrTooManyEdges)
	}
	return &Graph{name: b.name, adj: adj, csr: buildCSR(adj, m), m: m}, nil
}

// buildCSR flattens sorted adjacency lists into the compressed-sparse-row
// view shared by the graph's accessors.
func buildCSR(adj [][]NodeID, m int) CSR {
	csr := CSR{
		Offsets: make([]int32, len(adj)+1),
		Targets: make([]NodeID, 0, 2*m),
	}
	for v, nbrs := range adj {
		csr.Targets = append(csr.Targets, nbrs...)
		csr.Offsets[v+1] = int32(len(csr.Targets))
	}
	return csr
}

// MustBuild is Build for graphs known to be valid by construction, such as
// the generators in the gen subpackage. It panics on error and must not be
// used with untrusted input.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a named graph over n nodes from an edge list.
func FromEdges(name string, n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n).Name(name)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}
