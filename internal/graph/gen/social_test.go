package gen_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
)

func TestPreferentialAttachmentShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.PreferentialAttachment(200, 3, rng)
	if g.N() != 200 {
		t.Fatalf("n = %d", g.N())
	}
	// Seed clique K4 has 6 edges; each of the 196 later nodes adds 3.
	want := 6 + 196*3
	if g.M() != want {
		t.Fatalf("m = %d, want %d", g.M(), want)
	}
	if !algo.Connected(g) {
		t.Fatal("preferential attachment graph disconnected")
	}
	if g.MinDegree() < 3 {
		t.Fatalf("min degree = %d, want >= 3", g.MinDegree())
	}
}

func TestPreferentialAttachmentHeavyTail(t *testing.T) {
	// Hubs must emerge: the max degree should far exceed the attachment
	// parameter m.
	rng := rand.New(rand.NewSource(2))
	g := gen.PreferentialAttachment(500, 2, rng)
	if g.MaxDegree() < 5*2 {
		t.Fatalf("max degree = %d; no hubs formed", g.MaxDegree())
	}
}

func TestPreferentialAttachmentDeterministic(t *testing.T) {
	a := gen.PreferentialAttachment(80, 2, rand.New(rand.NewSource(9)))
	b := gen.PreferentialAttachment(80, 2, rand.New(rand.NewSource(9)))
	if a.M() != b.M() {
		t.Fatalf("same seed, different graphs: %d vs %d edges", a.M(), b.M())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed, edge %d differs", i)
		}
	}
}

func TestPreferentialAttachmentAlwaysConnected(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		n := m + 1 + rng.Intn(60)
		g := gen.PreferentialAttachment(n, m, rng)
		return g.N() == n && algo.Connected(g) && g.MinDegree() >= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPreferentialAttachmentPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad params accepted")
		}
	}()
	gen.PreferentialAttachment(2, 2, rand.New(rand.NewSource(1)))
}
