package gen

import (
	"fmt"
	"math/rand"
	"os"

	"amnesiacflood/internal/graph"
)

// families.go registers every generator of this package so each family is a
// parseable, enumerable spec (see registry.go for the grammar). Build
// functions validate ranges and return errors where the underlying
// constructors would panic, so Parse+New never panic on user input.
//
// Size caps keep hostile specs from allocating the machine away: sparse
// families accept up to maxSparseNodes nodes, families with Θ(n²)
// edges or work up to maxDenseNodes.
const (
	maxSparseNodes = 1 << 24
	maxDenseNodes  = 1 << 13
)

// intRange validates lo <= v <= hi for parameter name.
func intRange(name string, v, lo, hi int) error {
	if v < lo || v > hi {
		return fmt.Errorf("parameter %s must be in [%d, %d], got %d", name, lo, hi, v)
	}
	return nil
}

// probability validates 0 <= p <= 1.
func probability(name string, p float64) error {
	if p < 0 || p > 1 || p != p {
		return fmt.Errorf("parameter %s must be a probability in [0, 1], got %v", name, p)
	}
	return nil
}

func init() {
	Register("path", Family{
		Doc:    "path graph P_n (bipartite, diameter n-1)",
		Params: []Param{{Name: "n", Kind: IntParam, Default: "8", Doc: "number of nodes"}},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := intRange("n", n, 1, maxSparseNodes); err != nil {
				return nil, err
			}
			return Path(n), nil
		},
	})
	Register("cycle", Family{
		Doc:    "cycle C_n (bipartite iff n even)",
		Params: []Param{{Name: "n", Kind: IntParam, Default: "8", Doc: "number of nodes (>= 3)"}},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := intRange("n", n, 3, maxSparseNodes); err != nil {
				return nil, err
			}
			return Cycle(n), nil
		},
	})
	Register("complete", Family{
		Doc:    "complete graph K_n (non-bipartite for n >= 3)",
		Params: []Param{{Name: "n", Kind: IntParam, Default: "8", Doc: "number of nodes"}},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := intRange("n", n, 1, maxDenseNodes); err != nil {
				return nil, err
			}
			return Complete(n), nil
		},
	})
	Register("star", Family{
		Doc:    "star K_{1,n-1}: hub node 0 joined to all others",
		Params: []Param{{Name: "n", Kind: IntParam, Default: "8", Doc: "number of nodes"}},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := intRange("n", n, 1, maxSparseNodes); err != nil {
				return nil, err
			}
			return Star(n), nil
		},
	})
	Register("wheel", Family{
		Doc:    "wheel W_n: hub plus rim cycle (non-bipartite)",
		Params: []Param{{Name: "n", Kind: IntParam, Default: "8", Doc: "number of nodes (>= 4)"}},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := intRange("n", n, 4, maxSparseNodes); err != nil {
				return nil, err
			}
			return Wheel(n), nil
		},
	})
	Register("bipartite", Family{
		Doc: "complete bipartite K_{a,b}",
		Params: []Param{
			{Name: "a", Kind: IntParam, Default: "4", Doc: "left part size"},
			{Name: "b", Kind: IntParam, Default: "4", Doc: "right part size"},
		},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			a, b := v.Int("a"), v.Int("b")
			if err := intRange("a", a, 1, maxDenseNodes); err != nil {
				return nil, err
			}
			if err := intRange("b", b, 1, maxDenseNodes); err != nil {
				return nil, err
			}
			return CompleteBipartite(a, b), nil
		},
	})
	Register("grid", Family{
		Doc: "rows x cols grid (bipartite, diameter rows+cols-2)",
		Params: []Param{
			{Name: "rows", Kind: IntParam, Default: "8", Doc: "grid rows"},
			{Name: "cols", Kind: IntParam, Default: "8", Doc: "grid columns"},
		},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			rows, cols := v.Int("rows"), v.Int("cols")
			if err := gridDims(rows, cols, 1); err != nil {
				return nil, err
			}
			return Grid(rows, cols), nil
		},
	})
	Register("torus", Family{
		Doc: "rows x cols torus (bipartite iff both dimensions even)",
		Params: []Param{
			{Name: "rows", Kind: IntParam, Default: "4", Doc: "torus rows (>= 3)"},
			{Name: "cols", Kind: IntParam, Default: "4", Doc: "torus columns (>= 3)"},
		},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			rows, cols := v.Int("rows"), v.Int("cols")
			if err := gridDims(rows, cols, 3); err != nil {
				return nil, err
			}
			return Torus(rows, cols), nil
		},
	})
	Register("hypercube", Family{
		Doc:    "d-dimensional hypercube Q_d over 2^d nodes (bipartite)",
		Params: []Param{{Name: "d", Kind: IntParam, Default: "4", Doc: "dimension (0..20)"}},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			d := v.Int("d")
			if err := intRange("d", d, 0, 20); err != nil {
				return nil, err
			}
			return Hypercube(d), nil
		},
	})
	Register("petersen", Family{
		Doc: "the Petersen graph (10 nodes, girth 5, non-bipartite)",
		Build: func(Values, *rand.Rand) (*graph.Graph, error) {
			return Petersen(), nil
		},
	})
	Register("barbell", Family{
		Doc: "two K_k cliques joined by a path of extra nodes",
		Params: []Param{
			{Name: "k", Kind: IntParam, Default: "4", Doc: "clique size"},
			{Name: "path", Kind: IntParam, Default: "4", Doc: "bridge path length (>= 0)"},
		},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			k, pathLen := v.Int("k"), v.Int("path")
			if err := intRange("k", k, 1, maxDenseNodes); err != nil {
				return nil, err
			}
			if err := intRange("path", pathLen, 0, maxSparseNodes); err != nil {
				return nil, err
			}
			return Barbell(k, pathLen), nil
		},
	})
	Register("lollipop", Family{
		Doc: "clique K_k with a path of extra nodes attached",
		Params: []Param{
			{Name: "k", Kind: IntParam, Default: "4", Doc: "clique size"},
			{Name: "path", Kind: IntParam, Default: "4", Doc: "tail path length (>= 0)"},
		},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			k, pathLen := v.Int("k"), v.Int("path")
			if err := intRange("k", k, 1, maxDenseNodes); err != nil {
				return nil, err
			}
			if err := intRange("path", pathLen, 0, maxSparseNodes); err != nil {
				return nil, err
			}
			return Lollipop(k, pathLen), nil
		},
	})
	Register("bintree", Family{
		Doc:    "complete binary tree with the given number of levels",
		Params: []Param{{Name: "levels", Kind: IntParam, Default: "4", Doc: "tree levels (1..22)"}},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			levels := v.Int("levels")
			if err := intRange("levels", levels, 1, 22); err != nil {
				return nil, err
			}
			return CompleteBinaryTree(levels), nil
		},
	})
	Register("tree", Family{
		Doc:    "uniform random attachment tree (seeded, bipartite, connected)",
		Random: true,
		Params: []Param{{Name: "n", Kind: IntParam, Default: "8", Doc: "number of nodes"}},
		Build: func(v Values, rng *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := intRange("n", n, 1, maxSparseNodes); err != nil {
				return nil, err
			}
			return RandomTree(n, rng), nil
		},
	})
	Register("gnp", Family{
		Doc:    "Erdős–Rényi G(n,p) (seeded; connect=true joins components; streamed above 2^13 nodes)",
		Random: true,
		Params: []Param{
			{Name: "n", Kind: IntParam, Default: "16", Doc: "number of nodes"},
			{Name: "p", Kind: FloatParam, Default: "0.25", Doc: "edge probability"},
			{Name: "connect", Kind: BoolParam, Default: "false", Doc: "join components with extra edges"},
		},
		Build: func(v Values, rng *rand.Rand) (*graph.Graph, error) {
			n, p := v.Int("n"), v.Float("p")
			if err := intRange("n", n, 1, maxSparseNodes); err != nil {
				return nil, err
			}
			if err := probability("p", p); err != nil {
				return nil, err
			}
			// The quadratic Builder path is kept for small n so historical
			// (spec, seed) outputs stay byte-identical; larger instances
			// stream through geometric skip sampling.
			if n <= maxDenseNodes {
				g := RandomGNP(n, p, rng)
				if v.Bool("connect") {
					g = Connectify(g, rng)
				}
				return g, nil
			}
			if err := expectedEdges("gnp", float64(n)*float64(n-1)/2*p); err != nil {
				return nil, err
			}
			g, err := RandomGNPStream(n, p, rng)
			if err != nil {
				return nil, err
			}
			if v.Bool("connect") {
				return ConnectifyStream(g, rng)
			}
			return g, nil
		},
	})
	Register("randbipartite", Family{
		Doc:    "random bipartite graph with min degree 1 (seeded)",
		Random: true,
		Params: []Param{
			{Name: "a", Kind: IntParam, Default: "8", Doc: "left part size"},
			{Name: "b", Kind: IntParam, Default: "8", Doc: "right part size"},
			{Name: "p", Kind: FloatParam, Default: "0.25", Doc: "cross-edge probability"},
			{Name: "connect", Kind: BoolParam, Default: "true", Doc: "join components with extra edges"},
		},
		Build: func(v Values, rng *rand.Rand) (*graph.Graph, error) {
			a, b, p := v.Int("a"), v.Int("b"), v.Float("p")
			if err := intRange("a", a, 1, maxDenseNodes); err != nil {
				return nil, err
			}
			if err := intRange("b", b, 1, maxDenseNodes); err != nil {
				return nil, err
			}
			if err := probability("p", p); err != nil {
				return nil, err
			}
			g := RandomBipartite(a, b, p, rng)
			if v.Bool("connect") {
				g = Connectify(g, rng)
			}
			return g, nil
		},
	})
	Register("randconnected", Family{
		Doc:    "random tree backbone plus G(n,p) edges (seeded, connected)",
		Random: true,
		Params: []Param{
			{Name: "n", Kind: IntParam, Default: "16", Doc: "number of nodes"},
			{Name: "p", Kind: FloatParam, Default: "0.1", Doc: "extra-edge probability"},
		},
		Build: func(v Values, rng *rand.Rand) (*graph.Graph, error) {
			n, p := v.Int("n"), v.Float("p")
			if err := intRange("n", n, 1, maxDenseNodes); err != nil {
				return nil, err
			}
			if err := probability("p", p); err != nil {
				return nil, err
			}
			return RandomConnected(n, p, rng), nil
		},
	})
	Register("randnonbipartite", Family{
		Doc:    "connected random graph with a grafted triangle (seeded, non-bipartite)",
		Random: true,
		Params: []Param{
			{Name: "n", Kind: IntParam, Default: "16", Doc: "number of nodes (>= 3)"},
			{Name: "p", Kind: FloatParam, Default: "0.1", Doc: "extra-edge probability"},
		},
		Build: func(v Values, rng *rand.Rand) (*graph.Graph, error) {
			n, p := v.Int("n"), v.Float("p")
			if err := intRange("n", n, 3, maxDenseNodes); err != nil {
				return nil, err
			}
			if err := probability("p", p); err != nil {
				return nil, err
			}
			return RandomNonBipartite(n, p, rng), nil
		},
	})
	Register("prefattach", Family{
		Doc:    "Barabási–Albert preferential attachment (seeded, connected)",
		Random: true,
		Params: []Param{
			{Name: "n", Kind: IntParam, Default: "16", Doc: "number of nodes (>= m+1)"},
			{Name: "m", Kind: IntParam, Default: "2", Doc: "edges per arriving node (>= 1)"},
		},
		Build: func(v Values, rng *rand.Rand) (*graph.Graph, error) {
			n, m := v.Int("n"), v.Int("m")
			if err := intRange("m", m, 1, maxDenseNodes); err != nil {
				return nil, err
			}
			if n < m+1 || n > maxSparseNodes {
				return nil, fmt.Errorf("parameter n must be in [m+1, %d], got %d (m=%d)", maxSparseNodes, n, m)
			}
			if n > maxSparseNodes/m {
				return nil, fmt.Errorf("prefattach of n=%d,m=%d exceeds %d edges", n, m, maxSparseNodes)
			}
			// Same historical-output boundary as gnp: Builder below, FromStream
			// above (identical sampling, different rng consumption).
			if n <= maxDenseNodes {
				return PreferentialAttachment(n, m, rng), nil
			}
			return PreferentialAttachmentStream(n, m, rng)
		},
	})
	Register("rmat", Family{
		Doc:    "R-MAT recursive-matrix graph: e skewed edge attempts over a power-of-two node count (seeded, streamed)",
		Random: true,
		Params: []Param{
			{Name: "n", Kind: IntParam, Default: "16", Doc: "number of nodes (power of two)"},
			{Name: "e", Kind: IntParam, Default: "32", Doc: "edge attempts (self-loops and duplicates collapse)"},
			{Name: "a", Kind: FloatParam, Default: "0.45", Doc: "top-left quadrant probability"},
			{Name: "b", Kind: FloatParam, Default: "0.22", Doc: "top-right quadrant probability"},
			{Name: "c", Kind: FloatParam, Default: "0.22", Doc: "bottom-left quadrant probability"},
		},
		Build: func(v Values, rng *rand.Rand) (*graph.Graph, error) {
			n, e := v.Int("n"), v.Int("e")
			a, b, c := v.Float("a"), v.Float("b"), v.Float("c")
			if err := intRange("n", n, 2, maxSparseNodes); err != nil {
				return nil, err
			}
			if err := intRange("e", e, 1, maxStreamEdges); err != nil {
				return nil, err
			}
			return RMAT(n, e, a, b, c, rng)
		},
	})
	Register("edgefile", Family{
		Doc:   "graph loaded from a text edge-list file (WriteEdgeList format), streamed into CSR",
		Local: true,
		Params: []Param{
			{Name: "path", Kind: StringParam, Default: "graph.edges", Doc: "path to the edge-list file"},
		},
		Build: func(v Values, _ *rand.Rand) (*graph.Graph, error) {
			f, err := os.Open(v.String("path"))
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return graph.ReadEdgeListStream(f)
		},
	})
}

// gridDims validates grid/torus dimensions including the product cap.
func gridDims(rows, cols, lo int) error {
	if err := intRange("rows", rows, lo, maxSparseNodes); err != nil {
		return err
	}
	if err := intRange("cols", cols, lo, maxSparseNodes); err != nil {
		return err
	}
	if rows > maxSparseNodes/cols {
		return fmt.Errorf("grid of %dx%d exceeds %d nodes", rows, cols, maxSparseNodes)
	}
	return nil
}
