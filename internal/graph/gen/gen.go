// Package gen constructs the graph families used throughout the paper and
// the experiment suite.
//
// Deterministic families (paths, cycles, cliques, grids, hypercubes, ...)
// take only size parameters. Random families take an explicit *rand.Rand so
// that every experiment is reproducible from a seed; no generator touches
// global randomness.
//
// The families cover both sides of the paper's dichotomy: bipartite graphs
// (paths, even cycles, trees, grids, hypercubes, complete bipartite) where
// amnesiac flooding terminates within the diameter, and non-bipartite graphs
// (odd cycles, cliques n>=3, wheels, Petersen, ...) where it needs up to
// 2D+1 rounds.
//
// Above the dense-sampler cutoff the registry's random families switch to
// streamed construction (graph.FromStream): gnp draws edges by geometric
// skip sampling and prefattach replays its sampler per pass, so million-node
// instances build without an O(n²) scan or an intermediate adjacency.
// Historical outputs are frozen — at or below the cutoff the legacy
// builders run, so a (spec, seed) pair keeps producing the same graph it
// always did. Two families exist only streamed: rmat
// ("rmat:n=N,e=E,a=..,b=..,c=..", recursive-matrix quadrant descent over a
// power-of-two node count) and edgefile ("edgefile:path=FILE", the
// WriteEdgeList format read back through the two-pass CSR loader). edgefile
// is marked Local in the registry: it opens whatever path the spec names, so
// it is for operators with shell access — remote-facing resolvers (the
// afsimd service) reject Local families.
package gen

import (
	"fmt"

	"amnesiacflood/internal/graph"
)

// Path returns the path graph P_n: nodes 0..n-1 joined in a line.
// Bipartite; diameter n-1. Figure 1 of the paper is Path(4).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n).Name(fmt.Sprintf("path(%d)", n))
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.MustBuild()
}

// Cycle returns the cycle graph C_n (n >= 3). Bipartite iff n is even.
// Figure 2 is Cycle(3), Figure 3 is Cycle(6).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: cycle needs n >= 3, got %d", n))
	}
	b := graph.NewBuilder(n).Name(fmt.Sprintf("cycle(%d)", n))
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.MustBuild()
}

// Complete returns the complete graph K_n. Non-bipartite for n >= 3;
// diameter 1. The triangle of Figure 2 is also Complete(3).
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n).Name(fmt.Sprintf("complete(%d)", n))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return b.MustBuild()
}

// Star returns the star K_{1,n-1}: node 0 joined to all others. Bipartite;
// diameter 2 (for n >= 3).
func Star(n int) *graph.Graph {
	if n < 1 {
		panic(fmt.Sprintf("gen: star needs n >= 1, got %d", n))
	}
	b := graph.NewBuilder(n).Name(fmt.Sprintf("star(%d)", n))
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	return b.MustBuild()
}

// Wheel returns the wheel W_n: a cycle over nodes 1..n-1 plus hub node 0
// joined to every rim node (n >= 4). Always non-bipartite (contains
// triangles); diameter <= 2.
func Wheel(n int) *graph.Graph {
	if n < 4 {
		panic(fmt.Sprintf("gen: wheel needs n >= 4, got %d", n))
	}
	rim := n - 1
	b := graph.NewBuilder(n).Name(fmt.Sprintf("wheel(%d)", n))
	for i := 1; i <= rim; i++ {
		b.AddEdge(0, graph.NodeID(i))
		next := i%rim + 1
		b.AddEdge(graph.NodeID(i), graph.NodeID(next))
	}
	return b.MustBuild()
}

// CompleteBipartite returns K_{a,b}: every one of the first a nodes joined
// to every one of the last b nodes. Bipartite; diameter 2 for a, b >= 2.
func CompleteBipartite(a, b int) *graph.Graph {
	bld := graph.NewBuilder(a + b).Name(fmt.Sprintf("completeBipartite(%d,%d)", a, b))
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bld.AddEdge(graph.NodeID(i), graph.NodeID(a+j))
		}
	}
	return bld.MustBuild()
}

// Grid returns the rows x cols grid graph. Bipartite; diameter
// rows+cols-2.
func Grid(rows, cols int) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("gen: grid needs positive dimensions, got %dx%d", rows, cols))
	}
	b := graph.NewBuilder(rows * cols).Name(fmt.Sprintf("grid(%dx%d)", rows, cols))
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// Torus returns the rows x cols torus (grid with wraparound). Bipartite iff
// both dimensions are even.
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("gen: torus needs dimensions >= 3, got %dx%d", rows, cols))
	}
	b := graph.NewBuilder(rows * cols).Name(fmt.Sprintf("torus(%dx%d)", rows, cols))
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.MustBuild()
}

// Hypercube returns the d-dimensional hypercube Q_d over 2^d nodes.
// Bipartite; diameter d.
func Hypercube(d int) *graph.Graph {
	if d < 0 || d > 20 {
		panic(fmt.Sprintf("gen: hypercube dimension out of range: %d", d))
	}
	n := 1 << d
	b := graph.NewBuilder(n).Name(fmt.Sprintf("hypercube(%d)", d))
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if v < u {
				b.AddEdge(graph.NodeID(v), graph.NodeID(u))
			}
		}
	}
	return b.MustBuild()
}

// Petersen returns the Petersen graph: 10 nodes, 15 edges, girth 5,
// non-bipartite, diameter 2. A classic adversarial topology.
func Petersen() *graph.Graph {
	b := graph.NewBuilder(10).Name("petersen")
	// Outer 5-cycle 0..4, inner 5-star 5..9, spokes i -- i+5.
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%5))
		b.AddEdge(graph.NodeID(5+i), graph.NodeID(5+(i+2)%5))
		b.AddEdge(graph.NodeID(i), graph.NodeID(5+i))
	}
	return b.MustBuild()
}

// Barbell returns two cliques K_k joined by a path of pathLen extra nodes
// (pathLen >= 0; pathLen == 0 joins the cliques by a single edge).
// Non-bipartite for k >= 3, with large diameter: a stress case mixing dense
// and sparse regions.
func Barbell(k, pathLen int) *graph.Graph {
	if k < 1 {
		panic(fmt.Sprintf("gen: barbell needs k >= 1, got %d", k))
	}
	n := 2*k + pathLen
	b := graph.NewBuilder(n).Name(fmt.Sprintf("barbell(%d,%d)", k, pathLen))
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			b.AddEdge(graph.NodeID(k+pathLen+i), graph.NodeID(k+pathLen+j))
		}
	}
	// Path from node k-1 through the bridge nodes to node k+pathLen.
	prev := graph.NodeID(k - 1)
	for i := 0; i < pathLen; i++ {
		next := graph.NodeID(k + i)
		b.AddEdge(prev, next)
		prev = next
	}
	b.AddEdge(prev, graph.NodeID(k+pathLen))
	return b.MustBuild()
}

// Lollipop returns a clique K_k with a path of pathLen nodes attached.
// Non-bipartite for k >= 3.
func Lollipop(k, pathLen int) *graph.Graph {
	if k < 1 || pathLen < 0 {
		panic(fmt.Sprintf("gen: lollipop needs k >= 1, pathLen >= 0, got %d,%d", k, pathLen))
	}
	n := k + pathLen
	b := graph.NewBuilder(n).Name(fmt.Sprintf("lollipop(%d,%d)", k, pathLen))
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	prev := graph.NodeID(k - 1)
	for i := 0; i < pathLen; i++ {
		next := graph.NodeID(k + i)
		b.AddEdge(prev, next)
		prev = next
	}
	return b.MustBuild()
}

// CompleteBinaryTree returns the complete binary tree with the given number
// of levels (levels >= 1; 2^levels - 1 nodes). Bipartite.
func CompleteBinaryTree(levels int) *graph.Graph {
	if levels < 1 || levels > 24 {
		panic(fmt.Sprintf("gen: binary tree levels out of range: %d", levels))
	}
	n := (1 << levels) - 1
	b := graph.NewBuilder(n).Name(fmt.Sprintf("binaryTree(%d)", levels))
	for v := 1; v < n; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID((v-1)/2))
	}
	return b.MustBuild()
}
