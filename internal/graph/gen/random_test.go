package gen_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
)

func TestRandomGNPDeterministicFromSeed(t *testing.T) {
	a := gen.RandomGNP(30, 0.2, rand.New(rand.NewSource(7)))
	b := gen.RandomGNP(30, 0.2, rand.New(rand.NewSource(7)))
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed, different edge %d: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestRandomGNPDensityExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if g := gen.RandomGNP(20, 0, rng); g.M() != 0 {
		t.Errorf("G(n,0) has %d edges", g.M())
	}
	if g := gen.RandomGNP(20, 1, rng); g.M() != 20*19/2 {
		t.Errorf("G(n,1) has %d edges, want %d", g.M(), 20*19/2)
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		g := gen.RandomConnected(n, rng.Float64()*0.1, rng)
		return g.N() == n && algo.Connected(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBipartiteIsBipartite(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := 1+rng.Intn(30), 1+rng.Intn(30)
		g := gen.RandomBipartite(a, b, rng.Float64()*0.3, rng)
		if g.N() != a+b || !algo.IsBipartite(g) {
			return false
		}
		// The augmentation guarantees no isolated nodes.
		return g.MinDegree() >= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomNonBipartiteIsNonBipartiteAndConnected(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(60)
		g := gen.RandomNonBipartite(n, rng.Float64()*0.1, rng)
		return g.N() == n && algo.Connected(g) && !algo.IsBipartite(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomNonBipartitePanicsBelow3(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RandomNonBipartite(2) did not panic")
		}
	}()
	gen.RandomNonBipartite(2, 0.5, rand.New(rand.NewSource(1)))
}

func TestConnectifyJoinsComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Sparse GNP is almost surely disconnected at this size/density.
	g := gen.RandomGNP(50, 0.01, rng)
	joined := gen.Connectify(g, rng)
	if !algo.Connected(joined) {
		t.Fatal("Connectify result is disconnected")
	}
	comps := len(algo.Components(g))
	wantEdges := g.M() + comps - 1
	if joined.M() != wantEdges {
		t.Fatalf("Connectify added %d edges, want %d (one per extra component)",
			joined.M()-g.M(), comps-1)
	}
}

func TestConnectifyNoOpWhenConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.Path(10)
	if got := gen.Connectify(g, rng); got != g {
		t.Fatal("Connectify on a connected graph did not return it unchanged")
	}
}

func TestConnectifyPreservesBipartiteness(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBipartite(2+rng.Intn(20), 2+rng.Intn(20), 0.05, rng)
		joined := gen.Connectify(g, rng)
		return algo.Connected(joined) && algo.IsBipartite(joined)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeSingleNode(t *testing.T) {
	g := gen.RandomTree(1, rand.New(rand.NewSource(1)))
	if g.N() != 1 || g.M() != 0 {
		t.Fatalf("RandomTree(1) = %s", g)
	}
}
