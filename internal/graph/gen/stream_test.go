package gen_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
)

// TestStreamedGNPDistribution sanity-checks the skip sampler: determinism
// per seed, edge count near n(n-1)/2·p, and no out-of-range endpoints
// (FromStream would have errored on those).
func TestStreamedGNPDistribution(t *testing.T) {
	const n, p = 4000, 0.002
	g, err := gen.RandomGNPStream(n, p, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	again, err := gen.RandomGNPStream(n, p, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), again.Edges()) {
		t.Fatal("same seed built different graphs")
	}
	expected := float64(n) * float64(n-1) / 2 * p
	if m := float64(g.M()); m < expected/2 || m > expected*2 {
		t.Fatalf("edge count %v wildly off expectation %v", m, expected)
	}
}

// TestStreamedGNPExtremes pins the degenerate probabilities: p=0 builds the
// empty graph and p=1 the complete graph, through the same skip-sampling
// round-trip.
func TestStreamedGNPExtremes(t *testing.T) {
	empty, err := gen.RandomGNPStream(50, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if empty.M() != 0 {
		t.Fatalf("p=0 built %d edges", empty.M())
	}
	full, err := gen.RandomGNPStream(50, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if full.M() != 50*49/2 {
		t.Fatalf("p=1 built %d edges, want %d", full.M(), 50*49/2)
	}
}

// TestConnectifyStream joins every component exactly like Connectify: the
// result is connected, supersets the input's edges, and adds exactly one
// bridge per extra component.
func TestConnectifyStream(t *testing.T) {
	g, err := gen.RandomGNPStream(300, 0.002, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	comps := len(algo.Components(g))
	if comps < 2 {
		t.Skipf("instance happened to be connected (%d comps); pick a sparser p", comps)
	}
	cg, err := gen.ConnectifyStream(g, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !algo.Connected(cg) {
		t.Fatal("ConnectifyStream result not connected")
	}
	if cg.M() != g.M()+comps-1 {
		t.Fatalf("added %d edges for %d components", cg.M()-g.M(), comps)
	}
	for _, e := range g.Edges() {
		if !cg.HasEdge(e.U, e.V) {
			t.Fatalf("edge (%d,%d) lost", e.U, e.V)
		}
	}
	connected := gen.Cycle(12)
	same, err := gen.ConnectifyStream(connected, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if same != connected {
		t.Fatal("already-connected graph must be returned unchanged")
	}
}

// TestStreamedPrefAttach checks the streamed sampler keeps the family's
// structural promises: connected, every arriving node has degree >= m, and
// the edge count matches the attachment process exactly.
func TestStreamedPrefAttach(t *testing.T) {
	const n, m = 500, 3
	g, err := gen.PreferentialAttachmentStream(n, m, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	if !algo.Connected(g) {
		t.Fatal("preferential attachment must be connected")
	}
	if want := m*(m+1)/2 + (n-m-1)*m; g.M() != want {
		t.Fatalf("edge count %d, want %d", g.M(), want)
	}
	if g.MinDegree() < m {
		t.Fatalf("min degree %d below m=%d", g.MinDegree(), m)
	}
	if _, err := gen.PreferentialAttachmentStream(2, 3, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("n < m+1 must error")
	}
}

// TestRMAT checks seed determinism, the power-of-two gate, and that skew
// parameters actually skew: with a=1 every attempt lands in the top-left
// quadrant, which collapses to node pair (0,0) — a self-loop — so the graph
// is empty.
func TestRMAT(t *testing.T) {
	a, err := gen.RMAT(128, 300, 0.45, 0.22, 0.22, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.RMAT(128, 300, 0.45, 0.22, 0.22, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Fatal("same seed built different rmat graphs")
	}
	if a.M() == 0 || a.M() > 300 {
		t.Fatalf("rmat built %d edges from 300 attempts", a.M())
	}
	if _, err := gen.RMAT(100, 10, 0.45, 0.22, 0.22, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("non-power-of-two n must error")
	}
	if _, err := gen.RMAT(64, 10, 0.5, 0.4, 0.3, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("a+b+c > 1 must error")
	}
	diag, err := gen.RMAT(64, 50, 1, 0, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if diag.M() != 0 {
		t.Fatalf("a=1 rmat must collapse to self-loops only, got %d edges", diag.M())
	}
}

// TestEdgeFileFamily is the registry-level counterpart of
// TestEveryFamilyBuilds for the one family that needs a file on disk: a
// graph written with WriteEdgeList and rebuilt through the edgefile spec is
// edge-identical, and the result carries the explicit spec as its name.
func TestEdgeFileFamily(t *testing.T) {
	orig := gen.MustBuild("prefattach:n=40,m=2", 9)
	path := filepath.Join(t.TempDir(), "g.edges")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, orig); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	spec := "edgefile:path=" + path
	g, err := gen.Build(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Edges(), g.Edges()) {
		t.Fatal("edgefile round-trip changed the edge set")
	}
	if g.N() != orig.N() {
		t.Fatalf("node count %d, want %d", g.N(), orig.N())
	}
	if g.Name() != spec {
		t.Fatalf("graph named %q, want %q", g.Name(), spec)
	}
}
