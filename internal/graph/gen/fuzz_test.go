package gen_test

import (
	"reflect"
	"testing"

	"amnesiacflood/internal/graph/gen"
)

// FuzzGenParse asserts the spec grammar's two safety properties on
// arbitrary input: Parse never panics, and every accepted spec round-trips
// through its canonical String form — same string, same parsed Spec.
func FuzzGenParse(f *testing.F) {
	for _, name := range gen.Families() {
		f.Add(name)
		if canon, err := gen.Canonical(name); err == nil {
			f.Add(canon.String())
		}
	}
	f.Add("grid:rows=64,cols=64")
	f.Add("gnp:n=10,p=0.5,connect=true")
	f.Add("grid:cols=2,rows=3")
	f.Add("grid:rows=4,rows=4")
	f.Add(":::")
	f.Add("path:n==3")
	f.Add("path:n=3,")
	f.Add("  CYCLE : N = 12  ")
	f.Add("\x00\xff")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := gen.Parse(s)
		if err != nil {
			return
		}
		canonical := spec.String()
		back, err := gen.Parse(canonical)
		if err != nil {
			t.Fatalf("Parse(%q) ok but Parse(String()=%q) failed: %v", s, canonical, err)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Fatalf("round trip changed the spec: %#v vs %#v", spec, back)
		}
		if again := back.String(); again != canonical {
			t.Fatalf("String not a fixed point: %q then %q", canonical, again)
		}
	})
}
