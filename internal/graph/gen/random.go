package gen

import (
	"fmt"
	"math/rand"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
)

// RandomGNP returns an Erdős–Rényi graph G(n, p): each of the n(n-1)/2
// possible edges is present independently with probability p. The result is
// not necessarily connected; combine with Connectify when the experiment
// needs a connected instance.
func RandomGNP(n int, p float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n).Name(fmt.Sprintf("gnp(%d,%.3f)", n, p))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return b.MustBuild()
}

// RandomTree returns a uniformly random labelled tree over n nodes via a
// random Prüfer-like attachment: node i (i >= 1) attaches to a uniformly
// random earlier node. Bipartite and connected by construction.
func RandomTree(n int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n).Name(fmt.Sprintf("randomTree(%d)", n))
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)))
	}
	return b.MustBuild()
}

// RandomBipartite returns a random bipartite graph on parts of size a and b:
// each cross edge is present with probability p, and a random perfect
// matching-style augmentation guarantees no isolated node, keeping instances
// usable for flooding experiments. Connectivity is not guaranteed; use
// Connectify if required.
func RandomBipartite(a, b int, p float64, rng *rand.Rand) *graph.Graph {
	bld := graph.NewBuilder(a + b).Name(fmt.Sprintf("randomBipartite(%d,%d,%.3f)", a, b, p))
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			if rng.Float64() < p {
				bld.AddEdge(graph.NodeID(i), graph.NodeID(a+j))
			}
		}
	}
	// Ensure minimum degree 1 on both sides without breaking bipartiteness.
	for i := 0; i < a; i++ {
		bld.AddEdge(graph.NodeID(i), graph.NodeID(a+rng.Intn(b)))
	}
	for j := 0; j < b; j++ {
		bld.AddEdge(graph.NodeID(rng.Intn(a)), graph.NodeID(a+j))
	}
	return bld.MustBuild()
}

// Connectify returns g if it is already connected; otherwise it returns a
// copy with one extra edge per additional component, joining a random node
// of each later component to a random node of the first. Added edges join
// distinct components, so bipartiteness is preserved.
func Connectify(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	comps := algo.Components(g)
	if len(comps) <= 1 {
		return g
	}
	b := graph.NewBuilder(g.N()).Name(g.Name() + "+connected")
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	base := comps[0]
	for _, comp := range comps[1:] {
		u := base[rng.Intn(len(base))]
		v := comp[rng.Intn(len(comp))]
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// RandomConnected returns a connected G(n, p)-style graph: a random tree
// backbone (guaranteeing connectivity) plus each remaining edge with
// probability p. For p = 0 this is exactly a random tree.
func RandomConnected(n int, p float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n).Name(fmt.Sprintf("randomConnected(%d,%.3f)", n, p))
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return b.MustBuild()
}

// RandomNonBipartite returns a connected non-bipartite graph: a random
// connected graph with one random triangle grafted on, which forces an odd
// cycle regardless of the rest of the topology. Requires n >= 3.
func RandomNonBipartite(n int, p float64, rng *rand.Rand) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: non-bipartite graph needs n >= 3, got %d", n))
	}
	b := graph.NewBuilder(n).Name(fmt.Sprintf("randomNonBipartite(%d,%.3f)", n, p))
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	// Graft a triangle on three distinct random nodes.
	perm := rng.Perm(n)
	x, y, z := graph.NodeID(perm[0]), graph.NodeID(perm[1]), graph.NodeID(perm[2])
	b.AddEdge(x, y)
	b.AddEdge(y, z)
	b.AddEdge(z, x)
	return b.MustBuild()
}
