package gen_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
)

// shape asserts the basic invariants of a deterministic family instance.
func shape(t *testing.T, g *graph.Graph, wantN, wantM int, wantBipartite, wantConnected bool) {
	t.Helper()
	if g.N() != wantN {
		t.Errorf("%s: n = %d, want %d", g, g.N(), wantN)
	}
	if g.M() != wantM {
		t.Errorf("%s: m = %d, want %d", g, g.M(), wantM)
	}
	if got := algo.IsBipartite(g); got != wantBipartite {
		t.Errorf("%s: bipartite = %t, want %t", g, got, wantBipartite)
	}
	if got := algo.Connected(g); got != wantConnected {
		t.Errorf("%s: connected = %t, want %t", g, got, wantConnected)
	}
}

func TestPath(t *testing.T) {
	shape(t, gen.Path(1), 1, 0, true, true)
	shape(t, gen.Path(2), 2, 1, true, true)
	shape(t, gen.Path(10), 10, 9, true, true)
	if d := algo.Diameter(gen.Path(10)); d != 9 {
		t.Errorf("path(10) diameter = %d, want 9", d)
	}
}

func TestCycle(t *testing.T) {
	shape(t, gen.Cycle(3), 3, 3, false, true)
	shape(t, gen.Cycle(4), 4, 4, true, true)
	shape(t, gen.Cycle(17), 17, 17, false, true)
	shape(t, gen.Cycle(18), 18, 18, true, true)
	if d := algo.Diameter(gen.Cycle(12)); d != 6 {
		t.Errorf("cycle(12) diameter = %d, want 6", d)
	}
	if d := algo.Diameter(gen.Cycle(13)); d != 6 {
		t.Errorf("cycle(13) diameter = %d, want 6", d)
	}
}

func TestCyclePanicsBelow3(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cycle(2) did not panic")
		}
	}()
	gen.Cycle(2)
}

func TestComplete(t *testing.T) {
	shape(t, gen.Complete(1), 1, 0, true, true)
	shape(t, gen.Complete(2), 2, 1, true, true)
	shape(t, gen.Complete(3), 3, 3, false, true)
	shape(t, gen.Complete(6), 6, 15, false, true)
	if d := algo.Diameter(gen.Complete(6)); d != 1 {
		t.Errorf("K6 diameter = %d, want 1", d)
	}
}

func TestStar(t *testing.T) {
	shape(t, gen.Star(1), 1, 0, true, true)
	shape(t, gen.Star(5), 5, 4, true, true)
	g := gen.Star(8)
	if g.Degree(0) != 7 {
		t.Errorf("star hub degree = %d, want 7", g.Degree(0))
	}
	for v := graph.NodeID(1); int(v) < 8; v++ {
		if g.Degree(v) != 1 {
			t.Errorf("star leaf %d degree = %d, want 1", v, g.Degree(v))
		}
	}
}

func TestWheel(t *testing.T) {
	// Wheel over n nodes: rim n-1 edges + n-1 spokes.
	shape(t, gen.Wheel(4), 4, 6, false, true)
	shape(t, gen.Wheel(9), 9, 16, false, true)
	g := gen.Wheel(9)
	if g.Degree(0) != 8 {
		t.Errorf("wheel hub degree = %d, want 8", g.Degree(0))
	}
	for v := graph.NodeID(1); int(v) < 9; v++ {
		if g.Degree(v) != 3 {
			t.Errorf("wheel rim %d degree = %d, want 3", v, g.Degree(v))
		}
	}
}

func TestCompleteBipartite(t *testing.T) {
	shape(t, gen.CompleteBipartite(3, 4), 7, 12, true, true)
	g := gen.CompleteBipartite(2, 5)
	for i := graph.NodeID(0); i < 2; i++ {
		if g.Degree(i) != 5 {
			t.Errorf("left node %d degree = %d, want 5", i, g.Degree(i))
		}
	}
}

func TestGrid(t *testing.T) {
	shape(t, gen.Grid(1, 1), 1, 0, true, true)
	shape(t, gen.Grid(1, 5), 5, 4, true, true)
	shape(t, gen.Grid(3, 4), 12, 17, true, true)
	if d := algo.Diameter(gen.Grid(3, 4)); d != 5 {
		t.Errorf("grid(3x4) diameter = %d, want 5", d)
	}
}

func TestTorus(t *testing.T) {
	shape(t, gen.Torus(4, 4), 16, 32, true, true)
	shape(t, gen.Torus(3, 4), 12, 24, false, true)
	shape(t, gen.Torus(5, 5), 25, 50, false, true)
	g := gen.Torus(4, 6)
	for v := 0; v < g.N(); v++ {
		if g.Degree(graph.NodeID(v)) != 4 {
			t.Fatalf("torus node %d degree = %d, want 4", v, g.Degree(graph.NodeID(v)))
		}
	}
}

func TestHypercube(t *testing.T) {
	shape(t, gen.Hypercube(0), 1, 0, true, true)
	shape(t, gen.Hypercube(1), 2, 1, true, true)
	shape(t, gen.Hypercube(4), 16, 32, true, true)
	if d := algo.Diameter(gen.Hypercube(5)); d != 5 {
		t.Errorf("Q5 diameter = %d, want 5", d)
	}
}

func TestPetersen(t *testing.T) {
	g := gen.Petersen()
	shape(t, g, 10, 15, false, true)
	for v := 0; v < 10; v++ {
		if g.Degree(graph.NodeID(v)) != 3 {
			t.Fatalf("petersen node %d degree = %d, want 3", v, g.Degree(graph.NodeID(v)))
		}
	}
	if d := algo.Diameter(g); d != 2 {
		t.Errorf("petersen diameter = %d, want 2", d)
	}
	if og := algo.OddGirth(g); og != 5 {
		t.Errorf("petersen odd girth = %d, want 5", og)
	}
}

func TestBarbell(t *testing.T) {
	// Two K4s joined by 2 bridge nodes: 4*3/2*2 + 3 path edges.
	g := gen.Barbell(4, 2)
	shape(t, g, 10, 15, false, true)
	// With pathLen = 0 the cliques join by a single edge.
	g0 := gen.Barbell(3, 0)
	shape(t, g0, 6, 7, false, true)
}

func TestLollipop(t *testing.T) {
	g := gen.Lollipop(4, 3)
	shape(t, g, 7, 9, false, true)
	if d := g.Degree(graph.NodeID(6)); d != 1 {
		t.Errorf("lollipop tail end degree = %d, want 1", d)
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	shape(t, gen.CompleteBinaryTree(1), 1, 0, true, true)
	shape(t, gen.CompleteBinaryTree(4), 15, 14, true, true)
	if d := algo.Diameter(gen.CompleteBinaryTree(4)); d != 6 {
		t.Errorf("binary tree(4) diameter = %d, want 6", d)
	}
}

func TestDeterministicFamiliesHaveNames(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Path(3), gen.Cycle(4), gen.Complete(3), gen.Star(3), gen.Wheel(5),
		gen.CompleteBipartite(2, 2), gen.Grid(2, 2), gen.Torus(3, 3),
		gen.Hypercube(2), gen.Petersen(), gen.Barbell(3, 1), gen.Lollipop(3, 1),
		gen.CompleteBinaryTree(2),
	}
	for _, g := range graphs {
		if g.Name() == "" {
			t.Errorf("generator produced unnamed graph: %s", g)
		}
	}
}

func TestTreesHaveNMinus1Edges(t *testing.T) {
	// Property: every random tree is connected, bipartite, with n-1 edges.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := gen.RandomTree(n, rng)
		return g.N() == n && g.M() == n-1 && algo.Connected(g) && algo.IsBipartite(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
