package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/specgrammar"
)

// This file is the family registry and the spec grammar: every graph family
// in this package self-registers under a name, and a one-line spec string
// selects a family and binds its parameters:
//
//	family[:key=value[,key=value]...]
//
// Examples: "petersen", "path:n=64", "grid:rows=64,cols=64",
// "gnp:n=200,p=0.05,connect=true". Family and key names are
// case-insensitive; values must not contain ',' or '='. Omitted parameters
// take the family's declared defaults. Random families consume the seed
// passed to New, so equal (spec, seed) pairs build byte-identical graphs.
//
// A parsed Spec round-trips: String emits the parameters in the family's
// declared order, so Parse(spec.String()) == spec for every parseable spec,
// and Parse(s).String() == s for every canonically ordered s.
//
// The typed-parameter machinery (kinds, declarations, assignment parsing,
// canonical rendering, default resolution) is the shared kernel in
// internal/specgrammar, instantiated identically by the execution-model and
// analysis registries — one grammar, five axes.

// Kind types a family parameter.
type Kind = specgrammar.Kind

// Parameter kinds.
const (
	// IntParam values parse with strconv.Atoi.
	IntParam = specgrammar.IntParam
	// FloatParam values parse with strconv.ParseFloat (probabilities).
	FloatParam = specgrammar.FloatParam
	// BoolParam values parse with strconv.ParseBool.
	BoolParam = specgrammar.BoolParam
	// StringParam values are free-form except for spec metacharacters.
	StringParam = specgrammar.StringParam
)

// Param declares one parameter of a family: its name, type, default value
// (a canonical literal of the declared kind), and a one-line doc string for
// -list output.
type Param = specgrammar.Param

// Values holds the resolved, type-checked parameters handed to a family's
// Build function. Accessors are keyed by declared parameter name; asking
// for an undeclared parameter is a programmer error and panics.
type Values = specgrammar.Values

// Family describes one registered graph family: its parameter declarations
// (order defines the canonical spec order), whether it consumes the seed,
// and the constructor.
type Family struct {
	// Params declares the accepted parameters in canonical order.
	Params []Param
	// Random marks families that consume the seed passed to New;
	// deterministic families receive a nil rng.
	Random bool
	// Local marks families whose Build reads local host resources (files,
	// paths) named by the spec. Such specs are only safe from operators who
	// already have shell access to the machine; services resolving specs on
	// behalf of remote callers must reject Local families, or an attacker
	// could probe or ingest arbitrary server paths.
	Local bool
	// Doc is a one-line description for listings.
	Doc string
	// Build constructs the graph from resolved values. It must validate
	// ranges and return an error (never panic) on unusable parameters,
	// and must be a pure function of (v, rng) so runs are reproducible.
	Build func(v Values, rng *rand.Rand) (*graph.Graph, error)
}

// params returns the family's declarations as the kernel's ordered list.
func (f Family) params() specgrammar.Params { return specgrammar.Params(f.Params) }

var (
	famMu    sync.RWMutex
	famReg   = map[string]Family{}
	famNames []string // sorted cache, rebuilt on Register
)

// Register adds a family under a name, normally from this package's init so
// that importing gen is all it takes to make every family spec-addressable.
// It panics on empty or duplicate names, nil constructors, and malformed
// parameter declarations — all programmer errors.
func Register(name string, fam Family) {
	name = specgrammar.CheckName("gen", name, "")
	if fam.Build == nil {
		panic("gen: Register " + name + " with nil Build")
	}
	fam.params().Validate("gen", "family "+name)
	famMu.Lock()
	defer famMu.Unlock()
	if _, dup := famReg[name]; dup {
		panic("gen: Register called twice for family " + name)
	}
	famReg[name] = fam
	famNames = append(famNames, name)
	sort.Strings(famNames)
}

// Families enumerates the registered family names, sorted.
func Families() []string {
	famMu.RLock()
	defer famMu.RUnlock()
	return append([]string(nil), famNames...)
}

// Lookup returns the named family's declaration.
func Lookup(name string) (Family, bool) {
	famMu.RLock()
	defer famMu.RUnlock()
	fam, ok := famReg[strings.ToLower(strings.TrimSpace(name))]
	return fam, ok
}

// Spec is a parsed graph specification: a family name plus explicit
// parameter assignments. The zero value is invalid; build Specs with Parse
// or Canonical.
type Spec struct {
	// Family is the lower-case registered family name.
	Family string
	// Params maps explicitly assigned parameter names to their raw
	// values; omitted parameters default at build time.
	Params map[string]string
}

// String renders the canonical spec string: the family name, then any
// explicit parameters in the family's declared order. For specs produced by
// Parse, Parse(spec.String()) reproduces spec exactly.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Family
	}
	var decls specgrammar.Params
	if fam, ok := Lookup(s.Family); ok {
		decls = fam.params()
	}
	return s.Family + ":" + decls.Canonical(s.Params)
}

// ErrUnknownFamily is wrapped into errors for family names outside the
// registry, matchable with errors.Is.
var ErrUnknownFamily = fmt.Errorf("unknown graph family")

// Parse parses a spec string (see the grammar at the top of this file)
// against the registry: the family must be registered, every key declared,
// and every value parseable as the declared kind. Parse never panics, and
// never builds a graph — use New for that.
func Parse(s string) (Spec, error) {
	famName, rest, hasParams := strings.Cut(strings.TrimSpace(s), ":")
	famName = strings.ToLower(strings.TrimSpace(famName))
	if famName == "" {
		return Spec{}, fmt.Errorf("gen: empty graph spec")
	}
	fam, ok := Lookup(famName)
	if !ok {
		return Spec{}, fmt.Errorf("gen: %w %q (registered: %s)", ErrUnknownFamily, famName, strings.Join(Families(), ", "))
	}
	spec := Spec{Family: famName}
	if !hasParams {
		return spec, nil
	}
	params, err := fam.params().ParseAssignments("gen", s, "family "+famName, rest)
	if err != nil {
		return Spec{}, err
	}
	spec.Params = params
	return spec, nil
}

// MustParse is Parse for specs known good at compile time; it panics on
// error.
func MustParse(s string) Spec {
	spec, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// Canonical returns the named family's fully explicit spec: every declared
// parameter present at its default value, in declared order. It is the
// natural enumeration seed for tools sweeping Families().
func Canonical(name string) (Spec, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	fam, ok := Lookup(key)
	if !ok {
		return Spec{}, fmt.Errorf("gen: %w %q", ErrUnknownFamily, name)
	}
	return Spec{Family: key, Params: fam.params().Full(nil)}, nil
}

// New builds the graph a spec describes. Omitted parameters take their
// declared defaults; random families derive all randomness from seed. The
// returned graph is named with the fully explicit canonical spec string
// (defaults included), so reports and benchmark rows identify the exact
// instance.
func New(spec Spec, seed int64) (*graph.Graph, error) {
	fam, ok := Lookup(spec.Family)
	if !ok {
		return nil, fmt.Errorf("gen: %w %q (registered: %s)", ErrUnknownFamily, spec.Family, strings.Join(Families(), ", "))
	}
	values, err := fam.params().Resolve("gen", "family "+spec.Family, spec.Params)
	if err != nil {
		return nil, err
	}
	full := Spec{Family: spec.Family, Params: fam.params().Full(spec.Params)}
	var rng *rand.Rand
	if fam.Random {
		rng = rand.New(rand.NewSource(seed))
	}
	g, err := fam.Build(values, rng)
	if err != nil {
		return nil, fmt.Errorf("gen: %s: %w", full, err)
	}
	return graph.Renamed(g, full.String()), nil
}

// Build parses and builds in one step — the convenience entry point for
// CLIs and suites holding spec strings.
func Build(spec string, seed int64) (*graph.Graph, error) {
	parsed, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(parsed, seed)
}

// MustBuild is Build for specs known good at compile time; it panics on
// error.
func MustBuild(spec string, seed int64) *graph.Graph {
	g, err := Build(spec, seed)
	if err != nil {
		panic(err)
	}
	return g
}
