package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"amnesiacflood/internal/graph"
)

// This file is the family registry and the spec grammar: every graph family
// in this package self-registers under a name, and a one-line spec string
// selects a family and binds its parameters:
//
//	family[:key=value[,key=value]...]
//
// Examples: "petersen", "path:n=64", "grid:rows=64,cols=64",
// "gnp:n=200,p=0.05,connect=true". Family and key names are
// case-insensitive; values must not contain ',' or '='. Omitted parameters
// take the family's declared defaults. Random families consume the seed
// passed to New, so equal (spec, seed) pairs build byte-identical graphs.
//
// A parsed Spec round-trips: String emits the parameters in the family's
// declared order, so Parse(spec.String()) == spec for every parseable spec,
// and Parse(s).String() == s for every canonically ordered s.

// Kind types a family parameter.
type Kind int

// Parameter kinds.
const (
	// IntParam values parse with strconv.Atoi.
	IntParam Kind = iota + 1
	// FloatParam values parse with strconv.ParseFloat (probabilities).
	FloatParam
	// BoolParam values parse with strconv.ParseBool.
	BoolParam
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case IntParam:
		return "int"
	case FloatParam:
		return "float"
	case BoolParam:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// check validates that raw parses as a value of kind k.
func (k Kind) check(raw string) error {
	var err error
	switch k {
	case IntParam:
		_, err = strconv.Atoi(raw)
	case FloatParam:
		_, err = strconv.ParseFloat(raw, 64)
	case BoolParam:
		_, err = strconv.ParseBool(raw)
	default:
		err = fmt.Errorf("unknown kind %d", int(k))
	}
	return err
}

// Param declares one parameter of a family: its name, type, default value
// (a canonical literal of the declared kind), and a one-line doc string for
// -list output.
type Param struct {
	Name    string
	Kind    Kind
	Default string
	Doc     string
}

// Values holds the resolved, type-checked parameters handed to a family's
// Build function. Accessors are keyed by declared parameter name; asking
// for an undeclared parameter is a programmer error and panics.
type Values struct {
	ints   map[string]int
	floats map[string]float64
	bools  map[string]bool
}

// Int returns the named int parameter.
func (v Values) Int(name string) int {
	n, ok := v.ints[name]
	if !ok {
		panic("gen: Build read undeclared int parameter " + name)
	}
	return n
}

// Float returns the named float parameter.
func (v Values) Float(name string) float64 {
	f, ok := v.floats[name]
	if !ok {
		panic("gen: Build read undeclared float parameter " + name)
	}
	return f
}

// Bool returns the named bool parameter.
func (v Values) Bool(name string) bool {
	b, ok := v.bools[name]
	if !ok {
		panic("gen: Build read undeclared bool parameter " + name)
	}
	return b
}

// Family describes one registered graph family: its parameter declarations
// (order defines the canonical spec order), whether it consumes the seed,
// and the constructor.
type Family struct {
	// Params declares the accepted parameters in canonical order.
	Params []Param
	// Random marks families that consume the seed passed to New;
	// deterministic families receive a nil rng.
	Random bool
	// Doc is a one-line description for listings.
	Doc string
	// Build constructs the graph from resolved values. It must validate
	// ranges and return an error (never panic) on unusable parameters,
	// and must be a pure function of (v, rng) so runs are reproducible.
	Build func(v Values, rng *rand.Rand) (*graph.Graph, error)
}

// param returns the declaration of the named parameter, or nil.
func (f Family) param(name string) *Param {
	for i := range f.Params {
		if f.Params[i].Name == name {
			return &f.Params[i]
		}
	}
	return nil
}

var (
	famMu    sync.RWMutex
	famReg   = map[string]Family{}
	famNames []string // sorted cache, rebuilt on Register
)

// Register adds a family under a name, normally from this package's init so
// that importing gen is all it takes to make every family spec-addressable.
// It panics on empty or duplicate names, nil constructors, and malformed
// parameter declarations — all programmer errors.
func Register(name string, fam Family) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		panic("gen: Register with empty family name")
	}
	if strings.ContainsAny(name, ":,= \t") {
		panic("gen: family name " + name + " contains spec metacharacters")
	}
	if fam.Build == nil {
		panic("gen: Register " + name + " with nil Build")
	}
	seen := map[string]bool{}
	for _, p := range fam.Params {
		if p.Name == "" || strings.ContainsAny(p.Name, ":,= \t") {
			panic("gen: family " + name + " declares invalid parameter name " + strconv.Quote(p.Name))
		}
		if seen[p.Name] {
			panic("gen: family " + name + " declares parameter " + p.Name + " twice")
		}
		seen[p.Name] = true
		if err := p.Kind.check(p.Default); err != nil {
			panic(fmt.Sprintf("gen: family %s parameter %s has unparseable default %q: %v", name, p.Name, p.Default, err))
		}
	}
	famMu.Lock()
	defer famMu.Unlock()
	if _, dup := famReg[name]; dup {
		panic("gen: Register called twice for family " + name)
	}
	famReg[name] = fam
	famNames = append(famNames, name)
	sort.Strings(famNames)
}

// Families enumerates the registered family names, sorted.
func Families() []string {
	famMu.RLock()
	defer famMu.RUnlock()
	return append([]string(nil), famNames...)
}

// Lookup returns the named family's declaration.
func Lookup(name string) (Family, bool) {
	famMu.RLock()
	defer famMu.RUnlock()
	fam, ok := famReg[strings.ToLower(strings.TrimSpace(name))]
	return fam, ok
}

// Spec is a parsed graph specification: a family name plus explicit
// parameter assignments. The zero value is invalid; build Specs with Parse
// or Canonical.
type Spec struct {
	// Family is the lower-case registered family name.
	Family string
	// Params maps explicitly assigned parameter names to their raw
	// values; omitted parameters default at build time.
	Params map[string]string
}

// String renders the canonical spec string: the family name, then any
// explicit parameters in the family's declared order. For specs produced by
// Parse, Parse(spec.String()) reproduces spec exactly.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Family
	}
	ordered := make([]string, 0, len(s.Params))
	emitted := map[string]bool{}
	if fam, ok := Lookup(s.Family); ok {
		for _, p := range fam.Params {
			if v, set := s.Params[p.Name]; set {
				ordered = append(ordered, p.Name+"="+v)
				emitted[p.Name] = true
			}
		}
	}
	// Parameters the family does not declare (possible only on hand-built
	// specs, which New rejects) trail in alphabetical order so String
	// stays total and deterministic.
	var extra []string
	for k, v := range s.Params {
		if !emitted[k] {
			extra = append(extra, k+"="+v)
		}
	}
	sort.Strings(extra)
	return s.Family + ":" + strings.Join(append(ordered, extra...), ",")
}

// ErrUnknownFamily is wrapped into errors for family names outside the
// registry, matchable with errors.Is.
var ErrUnknownFamily = fmt.Errorf("unknown graph family")

// Parse parses a spec string (see the grammar at the top of this file)
// against the registry: the family must be registered, every key declared,
// and every value parseable as the declared kind. Parse never panics, and
// never builds a graph — use New for that.
func Parse(s string) (Spec, error) {
	famName, rest, hasParams := strings.Cut(strings.TrimSpace(s), ":")
	famName = strings.ToLower(strings.TrimSpace(famName))
	if famName == "" {
		return Spec{}, fmt.Errorf("gen: empty graph spec")
	}
	fam, ok := Lookup(famName)
	if !ok {
		return Spec{}, fmt.Errorf("gen: %w %q (registered: %s)", ErrUnknownFamily, famName, strings.Join(Families(), ", "))
	}
	spec := Spec{Family: famName}
	if !hasParams {
		return spec, nil
	}
	if strings.TrimSpace(rest) == "" {
		return Spec{}, fmt.Errorf("gen: spec %q has an empty parameter list (drop the trailing ':')", s)
	}
	spec.Params = map[string]string{}
	for _, kv := range strings.Split(rest, ",") {
		key, value, ok := strings.Cut(kv, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		if !ok || key == "" || value == "" {
			return Spec{}, fmt.Errorf("gen: spec %q: want key=value, got %q", s, kv)
		}
		decl := fam.param(key)
		if decl == nil {
			return Spec{}, fmt.Errorf("gen: spec %q: family %s has no parameter %q (accepts %s)", s, famName, key, paramNames(fam))
		}
		if err := decl.Kind.check(value); err != nil {
			return Spec{}, fmt.Errorf("gen: spec %q: parameter %s wants %s, got %q", s, key, decl.Kind, value)
		}
		if _, dup := spec.Params[key]; dup {
			return Spec{}, fmt.Errorf("gen: spec %q assigns parameter %s twice", s, key)
		}
		spec.Params[key] = value
	}
	return spec, nil
}

// MustParse is Parse for specs known good at compile time; it panics on
// error.
func MustParse(s string) Spec {
	spec, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// Canonical returns the named family's fully explicit spec: every declared
// parameter present at its default value, in declared order. It is the
// natural enumeration seed for tools sweeping Families().
func Canonical(name string) (Spec, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	fam, ok := Lookup(key)
	if !ok {
		return Spec{}, fmt.Errorf("gen: %w %q", ErrUnknownFamily, name)
	}
	spec := Spec{Family: key}
	if len(fam.Params) > 0 {
		spec.Params = map[string]string{}
		for _, p := range fam.Params {
			spec.Params[p.Name] = p.Default
		}
	}
	return spec, nil
}

// New builds the graph a spec describes. Omitted parameters take their
// declared defaults; random families derive all randomness from seed. The
// returned graph is named with the fully explicit canonical spec string
// (defaults included), so reports and benchmark rows identify the exact
// instance.
func New(spec Spec, seed int64) (*graph.Graph, error) {
	fam, ok := Lookup(spec.Family)
	if !ok {
		return nil, fmt.Errorf("gen: %w %q (registered: %s)", ErrUnknownFamily, spec.Family, strings.Join(Families(), ", "))
	}
	values := Values{ints: map[string]int{}, floats: map[string]float64{}, bools: map[string]bool{}}
	full := Spec{Family: spec.Family}
	if len(fam.Params) > 0 {
		full.Params = map[string]string{}
	}
	for k := range spec.Params {
		if fam.param(k) == nil {
			return nil, fmt.Errorf("gen: family %s has no parameter %q (accepts %s)", spec.Family, k, paramNames(fam))
		}
	}
	for _, p := range fam.Params {
		raw, set := spec.Params[p.Name]
		if !set {
			raw = p.Default
		}
		full.Params[p.Name] = raw
		var err error
		switch p.Kind {
		case IntParam:
			values.ints[p.Name], err = strconv.Atoi(raw)
		case FloatParam:
			values.floats[p.Name], err = strconv.ParseFloat(raw, 64)
		case BoolParam:
			values.bools[p.Name], err = strconv.ParseBool(raw)
		}
		if err != nil {
			return nil, fmt.Errorf("gen: %s: parameter %s wants %s, got %q", spec.Family, p.Name, p.Kind, raw)
		}
	}
	var rng *rand.Rand
	if fam.Random {
		rng = rand.New(rand.NewSource(seed))
	}
	g, err := fam.Build(values, rng)
	if err != nil {
		return nil, fmt.Errorf("gen: %s: %w", full, err)
	}
	return graph.Renamed(g, full.String()), nil
}

// Build parses and builds in one step — the convenience entry point for
// CLIs and suites holding spec strings.
func Build(spec string, seed int64) (*graph.Graph, error) {
	parsed, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(parsed, seed)
}

// MustBuild is Build for specs known good at compile time; it panics on
// error.
func MustBuild(spec string, seed int64) *graph.Graph {
	g, err := Build(spec, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// paramNames renders a family's parameter declarations for error messages,
// e.g. "rows int, cols int".
func paramNames(fam Family) string {
	if len(fam.Params) == 0 {
		return "no parameters"
	}
	parts := make([]string, len(fam.Params))
	for i, p := range fam.Params {
		parts[i] = p.Name + " " + p.Kind.String()
	}
	return strings.Join(parts, ", ")
}
