package gen

import (
	"fmt"
	"math/rand"
	"slices"

	"amnesiacflood/internal/graph"
)

// PreferentialAttachment returns a Barabási–Albert-style graph: nodes
// arrive one at a time and attach m edges to existing nodes chosen with
// probability proportional to their current degree. The result is connected
// with a heavy-tailed degree distribution — the natural stand-in for the
// social networks of the paper's §1 motivation (and of reference [3]).
// Requires n >= m+1 and m >= 1.
func PreferentialAttachment(n, m int, rng *rand.Rand) *graph.Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("gen: preferential attachment needs n >= m+1 >= 2, got n=%d m=%d", n, m))
	}
	b := graph.NewBuilder(n).Name(fmt.Sprintf("prefAttach(%d,%d)", n, m))
	// Seed clique over the first m+1 nodes.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	// endpoints holds every edge endpoint once; sampling uniformly from
	// it is degree-proportional sampling.
	var endpoints []graph.NodeID
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			if i != j {
				endpoints = append(endpoints, graph.NodeID(i))
			}
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[graph.NodeID]bool{}
		for len(chosen) < m {
			chosen[endpoints[rng.Intn(len(endpoints))]] = true
		}
		// Sort targets so edge insertion (and hence future sampling) is a
		// pure function of the seed.
		targets := make([]graph.NodeID, 0, m)
		for target := range chosen {
			targets = append(targets, target)
		}
		slices.Sort(targets)
		for _, target := range targets {
			b.AddEdge(graph.NodeID(v), target)
			endpoints = append(endpoints, graph.NodeID(v), target)
		}
	}
	return b.MustBuild()
}
