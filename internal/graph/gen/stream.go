package gen

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
)

// stream.go holds the streamed generators: families whose edge sets are too
// large for the Builder pipeline (which materialises a 2m-element edge list
// and per-node append slices before sorting) emit their edges twice through
// graph.FromStream instead, so peak memory is the final CSR arena.
//
// Replay determinism is the load-bearing invariant: FromStream calls the
// emit closure twice and both passes must produce the identical sequence.
// Every streamed generator therefore draws one sub-seed from the caller's
// rng up front and opens a fresh rand.Rand from it inside each pass, making
// the pass a pure function of (parameters, sub-seed).
//
// The registry keeps the legacy Builder-based generators for sizes up to
// maxDenseNodes so historical (spec, seed) outputs stay byte-identical, and
// switches to the streamed variants above it; the two samplers draw the rng
// differently, so their outputs are deliberately not comparable across the
// boundary.

// maxStreamEdges caps the undirected edge count a streamed spec may request
// (directly for rmat, in expectation for gnp). The CSR hard limit is 2^31-1
// directed edges; this lower cap keeps a hostile spec from allocating tens
// of gigabytes before that limit trips.
const maxStreamEdges = 1 << 26

// RandomGNPStream returns an Erdős–Rényi graph G(n, p) built by geometric
// skip sampling: instead of flipping a coin per candidate pair, each row
// jumps straight to its next present edge with a geometrically distributed
// skip, so work is O(n + m) rather than Θ(n²). The edge distribution is
// exactly G(n, p), but the draw sequence differs from RandomGNP, so the two
// generators produce different graphs for the same seed.
func RandomGNPStream(n int, p float64, rng *rand.Rand) (*graph.Graph, error) {
	name := fmt.Sprintf("gnp(%d,%.3f)", n, p)
	if p <= 0 {
		return graph.FromStream(name, n, func(func(u, v graph.NodeID)) error { return nil })
	}
	subSeed := rng.Int63()
	logq := math.Log1p(-p) // log(1-p), the geometric tail rate; -Inf for p=1
	return graph.FromStream(name, n, func(add func(u, v graph.NodeID)) error {
		r := rand.New(rand.NewSource(subSeed))
		for u := 0; u < n-1; u++ {
			for v := u + 1; v < n; v++ {
				// Skip the geometrically distributed run of absent edges.
				skip := math.Log1p(-r.Float64()) / logq
				if skip >= float64(n-v) {
					break
				}
				v += int(skip)
				add(graph.NodeID(u), graph.NodeID(v))
			}
		}
		return nil
	})
}

// ConnectifyStream is Connectify for CSR-built graphs: it joins a random
// node of each later component to a random node of the first, rebuilding
// through FromStream (replaying g's own adjacency plus the bridge edges)
// instead of the Builder. Returns g itself when already connected.
func ConnectifyStream(g *graph.Graph, rng *rand.Rand) (*graph.Graph, error) {
	comps := algo.Components(g)
	if len(comps) <= 1 {
		return g, nil
	}
	bridges := make([][2]graph.NodeID, 0, len(comps)-1)
	base := comps[0]
	for _, comp := range comps[1:] {
		bridges = append(bridges, [2]graph.NodeID{base[rng.Intn(len(base))], comp[rng.Intn(len(comp))]})
	}
	return graph.FromStream(g.Name()+"+connected", g.N(), func(add func(u, v graph.NodeID)) error {
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				if graph.NodeID(u) < v {
					add(graph.NodeID(u), v)
				}
			}
		}
		for _, b := range bridges {
			add(b[0], b[1])
		}
		return nil
	})
}

// PreferentialAttachmentStream is PreferentialAttachment built through
// FromStream: the full degree-proportional sampling (endpoint list and all)
// is replayed identically on both passes from a sub-seeded rng, so no edge
// list is ever materialised outside the sampler's own endpoint pool.
func PreferentialAttachmentStream(n, m int, rng *rand.Rand) (*graph.Graph, error) {
	if m < 1 || n < m+1 {
		return nil, fmt.Errorf("preferential attachment needs n >= m+1 >= 2, got n=%d m=%d", n, m)
	}
	subSeed := rng.Int63()
	name := fmt.Sprintf("prefAttach(%d,%d)", n, m)
	return graph.FromStream(name, n, func(add func(u, v graph.NodeID)) error {
		r := rand.New(rand.NewSource(subSeed))
		for i := 0; i <= m; i++ {
			for j := i + 1; j <= m; j++ {
				add(graph.NodeID(i), graph.NodeID(j))
			}
		}
		endpoints := make([]graph.NodeID, 0, 2*m*(n-m)+m*(m+1))
		for i := 0; i <= m; i++ {
			for j := 0; j <= m; j++ {
				if i != j {
					endpoints = append(endpoints, graph.NodeID(i))
				}
			}
		}
		chosen := make(map[graph.NodeID]bool, m)
		targets := make([]graph.NodeID, 0, m)
		for v := m + 1; v < n; v++ {
			clear(chosen)
			for len(chosen) < m {
				chosen[endpoints[r.Intn(len(endpoints))]] = true
			}
			targets = targets[:0]
			for target := range chosen {
				targets = append(targets, target)
			}
			slices.Sort(targets)
			for _, target := range targets {
				add(graph.NodeID(v), target)
				endpoints = append(endpoints, graph.NodeID(v), target)
			}
		}
		return nil
	})
}

// RMAT returns a recursive-matrix (R-MAT, Chakrabarti–Zhan–Faloutsos) graph:
// e edge attempts each descend log2(n) levels of the adjacency matrix,
// picking the (a, b, c, 1-a-b-c) quadrant at every level. Self-loop attempts
// are dropped and duplicates collapse, so the final edge count is at most e.
// The skew parameters make RMAT the standard generator for power-law graphs
// with community structure. Requires n a power of two.
func RMAT(n, e int, a, b, c float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("rmat needs a power-of-two node count >= 2, got %d", n)
	}
	if a < 0 || b < 0 || c < 0 || a+b+c > 1 {
		return nil, fmt.Errorf("rmat quadrant probabilities need a, b, c >= 0 and a+b+c <= 1, got %.3f %.3f %.3f", a, b, c)
	}
	if e < 0 {
		return nil, fmt.Errorf("rmat edge attempts must be non-negative, got %d", e)
	}
	subSeed := rng.Int63()
	name := fmt.Sprintf("rmat(%d,%d,%.2f,%.2f,%.2f)", n, e, a, b, c)
	return graph.FromStream(name, n, func(add func(u, v graph.NodeID)) error {
		r := rand.New(rand.NewSource(subSeed))
		for i := 0; i < e; i++ {
			var u, v int
			for half := n >> 1; half >= 1; half >>= 1 {
				switch x := r.Float64(); {
				case x < a: // top-left: neither bit set
				case x < a+b:
					v += half
				case x < a+b+c:
					u += half
				default:
					u += half
					v += half
				}
			}
			if u != v {
				add(graph.NodeID(u), graph.NodeID(v))
			}
		}
		return nil
	})
}

// expectedEdges rejects specs whose expected undirected edge count exceeds
// the streaming cap. The check is on the expectation, not the realisation;
// FromStream's own 2^31-1 directed-edge limit backstops pathological draws.
func expectedEdges(family string, expected float64) error {
	if expected > maxStreamEdges {
		return fmt.Errorf("%s spec expects ~%.0f edges, above the %d cap", family, expected, maxStreamEdges)
	}
	return nil
}
