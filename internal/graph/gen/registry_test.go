package gen_test

import (
	"errors"
	"reflect"
	"testing"

	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
)

func TestFamiliesSortedAndComplete(t *testing.T) {
	names := gen.Families()
	if len(names) < 16 {
		t.Fatalf("only %d families registered: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("families not sorted: %v", names)
		}
	}
	// Every generator exported by the package must be reachable by spec.
	for _, want := range []string{
		"path", "cycle", "complete", "star", "wheel", "bipartite", "grid",
		"torus", "hypercube", "petersen", "barbell", "lollipop", "bintree",
		"tree", "gnp", "randbipartite", "randconnected", "randnonbipartite",
		"prefattach", "rmat", "edgefile",
	} {
		if _, ok := gen.Lookup(want); !ok {
			t.Errorf("family %q not registered", want)
		}
	}
}

// TestLocalFamilies pins down which families are marked Local — the flag
// remote-facing services key their rejection on. edgefile opens
// caller-named server paths, so forgetting the flag (or a new
// filesystem-reading family shipping without it) must fail here.
func TestLocalFamilies(t *testing.T) {
	for _, name := range gen.Families() {
		fam, ok := gen.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if want := name == "edgefile"; fam.Local != want {
			t.Errorf("family %q Local = %v, want %v", name, fam.Local, want)
		}
	}
}

// TestCanonicalRoundTrip is the acceptance criterion: for every registered
// family, Parse(s).String() == s holds both for the bare family name and
// for the fully explicit canonical spec.
func TestCanonicalRoundTrip(t *testing.T) {
	for _, name := range gen.Families() {
		bare, err := gen.Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if got := bare.String(); got != name {
			t.Errorf("Parse(%q).String() = %q", name, got)
		}
		canon, err := gen.Canonical(name)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", name, err)
		}
		s := canon.String()
		back, err := gen.Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := back.String(); got != s {
			t.Errorf("family %s: Parse(%q).String() = %q", name, s, got)
		}
		if !reflect.DeepEqual(back, canon) {
			t.Errorf("family %s: Parse(String()) spec mismatch: %#v vs %#v", name, back, canon)
		}
	}
}

func TestParseNormalisesOrderAndCase(t *testing.T) {
	spec, err := gen.Parse(" GRID : cols=5 , ROWS=4 ")
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.String(); got != "grid:rows=4,cols=5" {
		t.Fatalf("canonical form = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                   // empty
		"   ",                // blank
		"nosuchfamily",       // unknown family
		"grid:",              // empty parameter list
		"grid:rows",          // missing value
		"grid:rows=",         // empty value
		"grid:=4",            // empty key
		"grid:depth=4",       // undeclared parameter
		"grid:rows=4,rows=5", // duplicate key
		"grid:rows=four",     // non-integer value
		"gnp:p=high",         // non-float value
		"gnp:connect=maybe",  // non-bool value
	}
	for _, s := range cases {
		if _, err := gen.Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
	if _, err := gen.Parse("nosuch"); !errors.Is(err, gen.ErrUnknownFamily) {
		t.Errorf("unknown family error not matchable: %v", err)
	}
}

// TestEveryFamilyBuilds builds every family at its canonical defaults and
// checks the graph is non-empty and named by its fully explicit spec.
func TestEveryFamilyBuilds(t *testing.T) {
	for _, name := range gen.Families() {
		if name == "edgefile" {
			continue // needs a file on disk; exercised by TestEdgeFileFamily
		}
		g, err := gen.Build(name, 1)
		if err != nil {
			t.Errorf("Build(%q): %v", name, err)
			continue
		}
		if g.N() == 0 {
			t.Errorf("family %s built an empty graph", name)
		}
		canon, _ := gen.Canonical(name)
		if g.Name() != canon.String() {
			t.Errorf("family %s: graph named %q, want canonical %q", name, g.Name(), canon.String())
		}
	}
}

func TestNewErrors(t *testing.T) {
	badValues := []string{
		"cycle:n=2",                          // below range
		"wheel:n=3",                          // below range
		"hypercube:d=21",                     // above range
		"bintree:levels=0",                   // below range
		"gnp:p=1.5",                          // not a probability
		"randnonbipartite:n=2",               // needs a triangle
		"prefattach:n=2,m=3",                 // n < m+1
		"grid:rows=100000000,cols=100000000", // node-count cap
		"rmat:n=63,e=10",                     // not a power of two
		"rmat:n=64,e=10,a=0.9,b=0.2",         // a+b+c > 1
		"rmat:n=64,e=10,a=-0.1",              // negative quadrant probability
		"gnp:n=1000000,p=0.5",                // expected edges above stream cap
		"edgefile:path=/nonexistent.edges",   // unreadable file
	}
	for _, s := range badValues {
		if _, err := gen.Build(s, 1); err == nil {
			t.Errorf("Build(%q) succeeded, want error", s)
		}
	}
	// Hand-built specs with undeclared parameters are rejected at New.
	if _, err := gen.New(gen.Spec{Family: "path", Params: map[string]string{"zz": "1"}}, 1); err == nil {
		t.Error("undeclared parameter accepted by New")
	}
	if _, err := gen.New(gen.Spec{Family: "nosuch"}, 1); !errors.Is(err, gen.ErrUnknownFamily) {
		t.Error("unknown family accepted by New")
	}
}

// randomSpecs are the seeded families with sizes large enough that distinct
// seeds almost surely build distinct graphs.
var randomSpecs = []string{
	"tree:n=64",
	"gnp:n=48,p=0.15",
	"gnp:n=48,p=0.1,connect=true",
	"gnp:n=16384,p=0.001",   // streamed skip-sampling path
	"prefattach:n=9000,m=2", // streamed replayed-sampler path
	"rmat:n=256,e=400",
	"randbipartite:a=24,b=24,p=0.1",
	"randconnected:n=48,p=0.05",
	"randnonbipartite:n=48,p=0.05",
	"prefattach:n=48,m=2",
}

// TestSeedDeterminism: every random generator produces byte-identical edge
// sets for equal seeds across two independent constructions, and distinct
// graphs for distinct seeds.
func TestSeedDeterminism(t *testing.T) {
	for _, spec := range randomSpecs {
		t.Run(spec, func(t *testing.T) {
			a := gen.MustBuild(spec, 7)
			b := gen.MustBuild(spec, 7)
			if !reflect.DeepEqual(a.Edges(), b.Edges()) {
				t.Fatalf("same seed built different edge sets (%d vs %d edges)", a.M(), b.M())
			}
			c := gen.MustBuild(spec, 8)
			if reflect.DeepEqual(a.Edges(), c.Edges()) {
				t.Fatalf("seeds 7 and 8 built identical graphs (%d edges)", a.M())
			}
		})
	}
	// Deterministic families ignore the seed entirely.
	a, b := gen.MustBuild("grid:rows=4,cols=5", 1), gen.MustBuild("grid:rows=4,cols=5", 99)
	if !reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Fatal("deterministic family varied with the seed")
	}
}

// TestDeclaredStructureHolds spot-checks that spec-built graphs keep the
// structural promises their families advertise.
func TestDeclaredStructureHolds(t *testing.T) {
	bipartite := []string{"path:n=9", "cycle:n=10", "star:n=7", "grid:rows=3,cols=4",
		"hypercube:d=5", "bipartite:a=3,b=5", "bintree:levels=4", "tree:n=40",
		"randbipartite:a=10,b=12,p=0.2"}
	for _, s := range bipartite {
		if g := gen.MustBuild(s, 3); !algo.IsBipartite(g) {
			t.Errorf("%s is not bipartite", s)
		}
	}
	nonBipartite := []string{"cycle:n=9", "complete:n=5", "wheel:n=8", "petersen",
		"randnonbipartite:n=30,p=0.05", "prefattach:n=30,m=2"}
	for _, s := range nonBipartite {
		if g := gen.MustBuild(s, 3); algo.IsBipartite(g) {
			t.Errorf("%s is bipartite", s)
		}
	}
	connected := []string{"randconnected:n=40,p=0.02", "gnp:n=40,p=0.02,connect=true",
		"randbipartite:a=20,b=20,p=0.03", "tree:n=50", "prefattach:n=40,m=1",
		"gnp:n=10000,p=0.0002,connect=true", // streamed sampler + ConnectifyStream
		"prefattach:n=9000,m=1"}             // streamed preferential attachment
	for _, s := range connected {
		if g := gen.MustBuild(s, 5); !algo.Connected(g) {
			t.Errorf("%s is not connected", s)
		}
	}
}

func TestMustBuildPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild on a bad spec did not panic")
		}
	}()
	gen.MustBuild("cycle:n=1", 1)
}
