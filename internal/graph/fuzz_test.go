package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList feeds arbitrary text to the edge-list parser: it must
// never panic, and everything it accepts must round-trip through
// WriteEdgeList into an equivalent graph.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("# name\nn 1\n")
	f.Add("")
	f.Add("n 0\n")
	f.Add("n 2\n0 0\n")
	f.Add("n 2\n0 1\n0 1\n")
	f.Add("garbage\n")
	f.Add("n 99999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(bytes.NewReader([]byte(input)))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write accepted graph: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparse own output: %v\noutput:\n%s", err, buf.String())
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip changed shape: %s vs %s", back, g)
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e.U, e.V) {
				t.Fatalf("edge %v lost in round trip", e)
			}
		}
	})
}
