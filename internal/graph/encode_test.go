package graph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildSquare(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges("square", 4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := buildSquare(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if back.N() != g.N() || back.M() != g.M() || back.Name() != g.Name() {
		t.Fatalf("round trip changed shape: %s vs %s", back, g)
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e.U, e.V) {
			t.Errorf("edge %v lost in round trip", e)
		}
	}
}

func TestEdgeListFormat(t *testing.T) {
	g := buildSquare(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := "# square\nn 4\n0 1\n0 3\n1 2\n2 3\n"
	if buf.String() != want {
		t.Fatalf("edge list = %q, want %q", buf.String(), want)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"edgeBeforeN":    "0 1\n",
		"badCount":       "n x\n",
		"duplicateCount": "n 2\nn 2\n",
		"threeFields":    "n 3\n0 1 2\n",
		"badEndpoint":    "n 3\na 1\n",
		"selfLoop":       "n 3\n1 1\n",
		"outOfRange":     "n 3\n0 5\n",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(input)); err == nil {
				t.Fatalf("ReadEdgeList(%q) succeeded, want error", input)
			}
		})
	}
}

func TestReadEdgeListSkipsBlankAndComments(t *testing.T) {
	input := "# my graph\n\n# another comment\nn 3\n\n0 1\n# mid comment\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || g.Name() != "my graph" {
		t.Fatalf("parsed %s name=%q", g, g.Name())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildSquare(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.N() != g.N() || back.M() != g.M() || back.Name() != g.Name() {
		t.Fatalf("JSON round trip changed shape: %s vs %s", &back, g)
	}
}

func TestJSONUnmarshalRejectsBadEdges(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"n":2,"edges":[[0,5]]}`), &g); err == nil {
		t.Fatal("unmarshal out-of-range edge succeeded")
	}
	if err := json.Unmarshal([]byte(`{"n":2,"edges":`), &g); err == nil {
		t.Fatal("unmarshal truncated JSON succeeded")
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildSquare(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, map[NodeID]bool{1: true, 2: false}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"square\"", "0 -- 1;", "2 -- 3;", "1 [style=bold"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "2 [style=bold") {
		t.Error("DOT highlighted node 2, which was mapped to false")
	}
}

func TestWriteDOTSanitizesName(t *testing.T) {
	g, err := FromEdges(`bad"name {x}`, 2, []Edge{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"bad"name`) {
		t.Fatalf("DOT name not sanitised: %s", buf.String())
	}
}

func TestEdgeListRoundTripRandom(t *testing.T) {
	// Property: WriteEdgeList / ReadEdgeList is the identity on random
	// graphs.
	check := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 1 + local.Intn(25)
		b := NewBuilder(n).Name("rt")
		for i := 0; i < n*2; i++ {
			u, v := NodeID(local.Intn(n)), NodeID(local.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if back.N() != g.N() || back.M() != g.M() {
			return false
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
