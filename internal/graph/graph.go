// Package graph provides the immutable undirected-graph substrate used by
// every simulation in this repository.
//
// The amnesiac-flooding paper (Hussak & Trehan, PODC 2019) models the network
// as a finite simple undirected graph G(V, E). This package implements that
// model: simple graphs (no self-loops, no parallel edges), dense node
// identifiers 0..n-1, and adjacency lists that are sorted so every traversal
// in the repository is deterministic.
//
// Graphs are built through a Builder and are immutable afterwards; all
// accessors are safe for concurrent use.
package graph

import (
	"fmt"
	"strings"
)

// NodeID identifies a node. Node identifiers are dense: a graph over n nodes
// uses exactly the identifiers 0..n-1.
type NodeID int

// Edge is an undirected edge between two nodes. Edges returned by Graph
// methods are normalised so that U < V.
type Edge struct {
	U, V NodeID
}

// Normalize returns the same edge with endpoints ordered so that U <= V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not x. The second return is false
// if x is not an endpoint of e.
func (e Edge) Other(x NodeID) (NodeID, bool) {
	switch x {
	case e.U:
		return e.V, true
	case e.V:
		return e.U, true
	default:
		return 0, false
	}
}

// String renders the edge as "(u,v)".
func (e Edge) String() string {
	return fmt.Sprintf("(%d,%d)", e.U, e.V)
}

// Graph is an immutable simple undirected graph. The zero value is the empty
// graph with no nodes. Construct non-trivial graphs with a Builder.
type Graph struct {
	name string
	adj  [][]NodeID // sorted neighbour lists, index = NodeID
	csr  CSR        // flat adjacency view over the same data
	m    int        // number of undirected edges
}

// CSR is a compressed-sparse-row view of a graph's adjacency: one flat arena
// of neighbour identifiers plus per-node offsets into it. Row v occupies
// Targets[Offsets[v]:Offsets[v+1]] and is sorted ascending, mirroring
// Neighbors(v) exactly.
//
// The layout exists for the hot simulation loops: a single contiguous arena
// keeps neighbour scans cache-friendly and lets engines index adjacency with
// no per-node slice headers or pointer chasing. Offsets are int32, which caps
// supported graphs at ~2^31 directed edges — far beyond anything this
// repository simulates.
//
// Both slices are shared with the graph and must not be modified.
type CSR struct {
	// Offsets has length n+1; Offsets[0] is 0 and Offsets[n] is 2m.
	Offsets []int32
	// Targets concatenates all sorted neighbour lists; length 2m.
	Targets []NodeID
}

// Row returns the sorted neighbour list of v as a subslice of the arena. It
// is the flat-view equivalent of Graph.Neighbors.
func (c CSR) Row(v NodeID) []NodeID {
	return c.Targets[c.Offsets[v]:c.Offsets[v+1]]
}

// Degree returns the number of neighbours of v.
func (c CSR) Degree(v NodeID) int {
	return int(c.Offsets[v+1] - c.Offsets[v])
}

// N returns the number of nodes covered by the view.
func (c CSR) N() int {
	if len(c.Offsets) == 0 {
		return 0
	}
	return len(c.Offsets) - 1
}

// CSR returns the compressed-sparse-row view of the adjacency, built once at
// construction time. For the zero-value empty graph the view has no rows
// (Row must not be called). Safe for concurrent use, like all accessors.
func (g *Graph) CSR() CSR {
	return g.csr
}

// Name returns the optional human-readable name given at build time (for
// example "cycle(6)"). It is used only for reporting.
func (g *Graph) Name() string {
	return g.name
}

// N returns the number of nodes.
func (g *Graph) N() int {
	return len(g.adj)
}

// M returns the number of undirected edges.
func (g *Graph) M() int {
	return g.m
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v NodeID) int {
	return len(g.adj[v])
}

// Neighbors returns the sorted neighbour list of v. The returned slice is
// shared with the graph and must not be modified; copy it if mutation is
// needed.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[v]
}

// HasNode reports whether v is a valid node identifier for this graph.
func (g *Graph) HasNode(v NodeID) bool {
	return v >= 0 && int(v) < len(g.adj)
}

// HasEdge reports whether {u, v} is an edge. It runs in O(log deg(u)) time.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if !g.HasNode(u) || !g.HasNode(v) || u == v {
		return false
	}
	// Search the smaller adjacency list.
	list := g.adj[u]
	target := v
	if len(g.adj[v]) < len(list) {
		list, target = g.adj[v], u
	}
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case list[mid] < target:
			lo = mid + 1
		case list[mid] > target:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Edges returns all undirected edges, normalised (U < V) and sorted
// lexicographically. The slice is freshly allocated.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				edges = append(edges, Edge{U: NodeID(u), V: v})
			}
		}
	}
	return edges
}

// Nodes returns all node identifiers 0..n-1. The slice is freshly allocated.
func (g *Graph) Nodes() []NodeID {
	nodes := make([]NodeID, g.N())
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	return nodes
}

// MaxDegree returns the maximum degree over all nodes, or 0 for the empty
// graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// MinDegree returns the minimum degree over all nodes, or 0 for the empty
// graph.
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, nbrs := range g.adj[1:] {
		if len(nbrs) < min {
			min = len(nbrs)
		}
	}
	return min
}

// AvgDegree returns the average degree 2m/n, or 0 for the empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.N())
}

// Renamed returns a view of g under a different name. The copy shares g's
// adjacency storage (graphs are immutable, so sharing is safe); only the
// reporting name differs. The generator registry uses it to stamp graphs
// with their canonical spec string.
func Renamed(g *Graph, name string) *Graph {
	h := *g
	h.name = name
	return &h
}

// String renders a short human-readable summary such as
// "cycle(6){n=6 m=6}".
func (g *Graph) String() string {
	var sb strings.Builder
	if g.name != "" {
		sb.WriteString(g.name)
	} else {
		sb.WriteString("graph")
	}
	fmt.Fprintf(&sb, "{n=%d m=%d}", g.N(), g.m)
	return sb.String()
}
