// Package algo implements the classical graph algorithms the reproduction
// needs as ground truth: BFS distances, eccentricity/diameter/radius,
// bipartiteness testing with two-colouring and odd-cycle witnesses, and
// connectivity.
//
// Every result the simulators produce is checked against these reference
// implementations (for example: amnesiac flooding on a bipartite graph must
// take exactly Eccentricity(source) rounds, per Lemma 2.1 of the paper).
package algo

import (
	"amnesiacflood/internal/graph"
)

// Unreachable is the distance reported for nodes not reachable from the
// source.
const Unreachable = -1

// BFS returns the vector of hop distances from source to every node.
// Unreachable nodes get Unreachable (-1).
func BFS(g *graph.Graph, source graph.NodeID) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	if !g.HasNode(source) {
		return dist
	}
	dist[source] = 0
	queue := make([]graph.NodeID, 0, g.N())
	queue = append(queue, source)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSMulti returns hop distances from the nearest of several sources, the
// multi-source analogue of BFS. It is the reference for multi-source
// amnesiac flooding on bipartite graphs.
func BFSMulti(g *graph.Graph, sources []graph.NodeID) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]graph.NodeID, 0, g.N())
	for _, s := range sources {
		if g.HasNode(s) && dist[s] == Unreachable {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the greatest hop distance from v to any node of its
// connected component, i.e. e(v) in the paper's notation.
func Eccentricity(g *graph.Graph, v graph.NodeID) int {
	ecc := 0
	for _, d := range BFS(g, v) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum eccentricity over all nodes. For a graph with
// more than one connected component it returns the maximum over components
// (unreachable pairs are ignored); the empty graph has diameter 0.
func Diameter(g *graph.Graph) int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if e := Eccentricity(g, graph.NodeID(v)); e > diam {
			diam = e
		}
	}
	return diam
}

// Radius returns the minimum eccentricity over all nodes of a connected
// graph. For the empty graph it returns 0.
func Radius(g *graph.Graph) int {
	if g.N() == 0 {
		return 0
	}
	rad := Eccentricity(g, 0)
	for v := 1; v < g.N(); v++ {
		if e := Eccentricity(g, graph.NodeID(v)); e < rad {
			rad = e
		}
	}
	return rad
}

// Connected reports whether g is connected. The empty graph and singletons
// are connected.
func Connected(g *graph.Graph) bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range BFS(g, 0) {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns the connected components of g as sorted node slices,
// ordered by their smallest member.
func Components(g *graph.Graph) [][]graph.NodeID {
	seen := make([]bool, g.N())
	var comps [][]graph.NodeID
	for start := 0; start < g.N(); start++ {
		if seen[start] {
			continue
		}
		var comp []graph.NodeID
		queue := []graph.NodeID{graph.NodeID(start)}
		seen[start] = true
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			comp = append(comp, u)
			for _, v := range g.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
