package algo_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
)

func TestBFSPath(t *testing.T) {
	g := gen.Path(5)
	got := algo.BFS(g, 0)
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("algo.BFS(path, 0) = %v, want %v", got, want)
	}
	got = algo.BFS(g, 2)
	want = []int{2, 1, 0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("algo.BFS(path, 2) = %v, want %v", got, want)
	}
}

func TestBFSCycle(t *testing.T) {
	g := gen.Cycle(6)
	got := algo.BFS(g, 0)
	want := []int{0, 1, 2, 3, 2, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("algo.BFS(C6, 0) = %v, want %v", got, want)
	}
}

func TestBFSDisconnected(t *testing.T) {
	g, err := graph.FromEdges("two pairs", 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	got := algo.BFS(g, 0)
	want := []int{0, 1, algo.Unreachable, algo.Unreachable}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("algo.BFS(disconnected, 0) = %v, want %v", got, want)
	}
}

func TestBFSInvalidSource(t *testing.T) {
	g := gen.Path(3)
	got := algo.BFS(g, 99)
	for v, d := range got {
		if d != algo.Unreachable {
			t.Fatalf("BFS with invalid source: dist[%d] = %d, want -1", v, d)
		}
	}
}

func TestBFSMulti(t *testing.T) {
	g := gen.Path(7)
	got := algo.BFSMulti(g, []graph.NodeID{0, 6})
	want := []int{0, 1, 2, 3, 2, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("algo.BFSMulti(path7, {0,6}) = %v, want %v", got, want)
	}
}

func TestBFSMultiEmptySources(t *testing.T) {
	g := gen.Path(3)
	for _, d := range algo.BFSMulti(g, nil) {
		if d != algo.Unreachable {
			t.Fatal("BFSMulti with no sources reached a node")
		}
	}
}

func TestEccentricityDiameterRadius(t *testing.T) {
	cases := []struct {
		name         string
		g            *graph.Graph
		source       graph.NodeID
		ecc          int
		diam, radius int
	}{
		{"path5 end", gen.Path(5), 0, 4, 4, 2},
		{"path5 mid", gen.Path(5), 2, 2, 4, 2},
		{"C6", gen.Cycle(6), 0, 3, 3, 3},
		{"C7", gen.Cycle(7), 3, 3, 3, 3},
		{"K5", gen.Complete(5), 0, 1, 1, 1},
		{"star10 hub", gen.Star(10), 0, 1, 2, 1},
		{"star10 leaf", gen.Star(10), 5, 2, 2, 1},
		{"hypercube4", gen.Hypercube(4), 0, 4, 4, 4},
		{"grid3x4 corner", gen.Grid(3, 4), 0, 5, 5, 3},
		{"petersen", gen.Petersen(), 0, 2, 2, 2},
		{"singleton", gen.Path(1), 0, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := algo.Eccentricity(tc.g, tc.source); got != tc.ecc {
				t.Errorf("algo.Eccentricity(%s, %d) = %d, want %d", tc.g, tc.source, got, tc.ecc)
			}
			if got := algo.Diameter(tc.g); got != tc.diam {
				t.Errorf("algo.Diameter(%s) = %d, want %d", tc.g, got, tc.diam)
			}
			if got := algo.Radius(tc.g); got != tc.radius {
				t.Errorf("algo.Radius(%s) = %d, want %d", tc.g, got, tc.radius)
			}
		})
	}
}

func TestConnected(t *testing.T) {
	if !algo.Connected(gen.Path(10)) {
		t.Error("path reported disconnected")
	}
	if !algo.Connected(gen.Path(1)) {
		t.Error("singleton reported disconnected")
	}
	empty, _ := graph.FromEdges("", 0, nil)
	if !algo.Connected(empty) {
		t.Error("empty graph reported disconnected")
	}
	two, _ := graph.FromEdges("", 2, nil)
	if algo.Connected(two) {
		t.Error("two isolated nodes reported connected")
	}
}

func TestComponents(t *testing.T) {
	g, err := graph.FromEdges("", 6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 4, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	comps := algo.Components(g)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3 (%v)", len(comps), comps)
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2])}
	if !reflect.DeepEqual(sizes, []int{3, 1, 2}) {
		t.Fatalf("component sizes = %v, want [3 1 2]", sizes)
	}
}

func TestRadiusLeDiameterLe2Radius(t *testing.T) {
	// Property: for connected graphs, radius <= diameter <= 2*radius.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.1, rng)
		r, d := algo.Radius(g), algo.Diameter(g)
		return r <= d && d <= 2*r
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSTriangleInequality(t *testing.T) {
	// Property: BFS distances satisfy |d(u) - d(v)| <= 1 across any edge.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.1, rng)
		dist := algo.BFS(g, 0)
		for _, e := range g.Edges() {
			diff := dist[e.U] - dist[e.V]
			if diff < -1 || diff > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
