package algo

import (
	"amnesiacflood/internal/graph"
)

// Side is the part of the bipartition a node is assigned by TwoColor.
type Side int8

// Bipartition sides. Unassigned marks nodes of graphs that are not
// bipartite (TwoColor stops at the first conflict) or nodes in untouched
// components when colouring is restricted.
const (
	Unassigned Side = 0
	Left       Side = 1
	Right      Side = 2
)

// Coloring is the result of a bipartiteness test.
type Coloring struct {
	// Bipartite reports whether the graph is bipartite.
	Bipartite bool
	// Sides assigns every node to Left or Right when Bipartite is true.
	Sides []Side
	// OddCycle is a witness cycle of odd length when Bipartite is false:
	// a closed walk c_0, c_1, ..., c_k = c_0 with k odd, as node IDs
	// without the repeated endpoint (so len(OddCycle) is odd).
	OddCycle []graph.NodeID
}

// TwoColor tests bipartiteness by BFS two-colouring. For a bipartite graph
// it returns the bipartition; otherwise it returns an odd-cycle witness.
// Disconnected graphs are handled component by component.
func TwoColor(g *graph.Graph) Coloring {
	n := g.N()
	sides := make([]Side, n)
	parent := make([]graph.NodeID, n)
	depth := make([]int, n)
	for start := 0; start < n; start++ {
		if sides[start] != Unassigned {
			continue
		}
		sides[start] = Left
		parent[start] = graph.NodeID(start)
		depth[start] = 0
		queue := []graph.NodeID{graph.NodeID(start)}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			next := Right
			if sides[u] == Right {
				next = Left
			}
			for _, v := range g.Neighbors(u) {
				switch sides[v] {
				case Unassigned:
					sides[v] = next
					parent[v] = u
					depth[v] = depth[u] + 1
					queue = append(queue, v)
				case sides[u]:
					// Same colour on both endpoints: odd cycle through
					// the BFS-tree paths of u and v plus edge {u,v}.
					return Coloring{
						Bipartite: false,
						OddCycle:  oddCycleWitness(u, v, parent, depth),
					}
				}
			}
		}
	}
	return Coloring{Bipartite: true, Sides: sides}
}

// oddCycleWitness builds the odd cycle formed by the tree paths from u and v
// up to their lowest common ancestor, closed by the non-tree edge {u, v}.
func oddCycleWitness(u, v graph.NodeID, parent []graph.NodeID, depth []int) []graph.NodeID {
	var up, vp []graph.NodeID
	// Lift the deeper endpoint until both are at equal depth.
	for depth[u] > depth[v] {
		up = append(up, u)
		u = parent[u]
	}
	for depth[v] > depth[u] {
		vp = append(vp, v)
		v = parent[v]
	}
	for u != v {
		up = append(up, u)
		vp = append(vp, v)
		u = parent[u]
		v = parent[v]
	}
	cycle := make([]graph.NodeID, 0, len(up)+len(vp)+1)
	cycle = append(cycle, up...)
	cycle = append(cycle, u) // the common ancestor
	for i := len(vp) - 1; i >= 0; i-- {
		cycle = append(cycle, vp[i])
	}
	return cycle
}

// IsBipartite is a convenience wrapper around TwoColor.
func IsBipartite(g *graph.Graph) bool {
	return TwoColor(g).Bipartite
}

// OddGirth returns the length of the shortest odd cycle, or 0 if the graph
// is bipartite. It runs one BFS per node and is intended for the moderate
// graph sizes used in experiments.
func OddGirth(g *graph.Graph) int {
	best := 0
	for s := 0; s < g.N(); s++ {
		dist := BFS(g, graph.NodeID(s))
		for _, e := range g.Edges() {
			du, dv := dist[e.U], dist[e.V]
			if du == Unreachable || dv == Unreachable {
				continue
			}
			if (du+dv)%2 == 0 { // BFS levels differ by <= 1, so this means du == dv: odd closed walk
				length := du + dv + 1
				if best == 0 || length < best {
					best = length
				}
			}
		}
	}
	return best
}
