package algo_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
)

func TestTwoColorBipartiteFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(10)},
		{"evenCycle", gen.Cycle(8)},
		{"star", gen.Star(9)},
		{"grid", gen.Grid(4, 5)},
		{"hypercube", gen.Hypercube(5)},
		{"tree", gen.CompleteBinaryTree(5)},
		{"completeBipartite", gen.CompleteBipartite(3, 7)},
		{"evenTorus", gen.Torus(4, 6)},
		{"K2", gen.Path(2)},
		{"singleton", gen.Path(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col := algo.TwoColor(tc.g)
			if !col.Bipartite {
				t.Fatalf("%s reported non-bipartite", tc.g)
			}
			assertValidColoring(t, tc.g, col)
		})
	}
}

func TestTwoColorNonBipartiteFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"triangle", gen.Cycle(3)},
		{"oddCycle", gen.Cycle(9)},
		{"clique", gen.Complete(5)},
		{"wheel", gen.Wheel(6)},
		{"petersen", gen.Petersen()},
		{"oddTorus", gen.Torus(3, 5)},
		{"lollipop", gen.Lollipop(3, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col := algo.TwoColor(tc.g)
			if col.Bipartite {
				t.Fatalf("%s reported bipartite", tc.g)
			}
			assertValidOddCycle(t, tc.g, col.OddCycle)
		})
	}
}

// assertValidColoring checks that every edge joins different sides.
func assertValidColoring(t *testing.T, g *graph.Graph, col algo.Coloring) {
	t.Helper()
	if len(col.Sides) != g.N() {
		t.Fatalf("coloring covers %d nodes, graph has %d", len(col.Sides), g.N())
	}
	for _, e := range g.Edges() {
		if col.Sides[e.U] == algo.Unassigned || col.Sides[e.V] == algo.Unassigned {
			t.Fatalf("edge %v touches unassigned node", e)
		}
		if col.Sides[e.U] == col.Sides[e.V] {
			t.Fatalf("edge %v is monochromatic", e)
		}
	}
}

// assertValidOddCycle checks the witness is a closed walk of odd length
// whose consecutive nodes are adjacent.
func assertValidOddCycle(t *testing.T, g *graph.Graph, cycle []graph.NodeID) {
	t.Helper()
	if len(cycle) == 0 {
		t.Fatal("no odd-cycle witness returned")
	}
	if len(cycle)%2 == 0 {
		t.Fatalf("witness length %d is even: %v", len(cycle), cycle)
	}
	for i := range cycle {
		u, v := cycle[i], cycle[(i+1)%len(cycle)]
		if !g.HasEdge(u, v) {
			t.Fatalf("witness step (%d,%d) is not an edge (cycle %v)", u, v, cycle)
		}
	}
}

func TestTwoColorDisconnected(t *testing.T) {
	// A bipartite component plus a triangle: non-bipartite overall.
	g, err := graph.FromEdges("", 6, []graph.Edge{
		{U: 0, V: 1},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	col := algo.TwoColor(g)
	if col.Bipartite {
		t.Fatal("triangle component not detected")
	}
	assertValidOddCycle(t, g, col.OddCycle)

	// Two bipartite components: bipartite overall.
	g2, err := graph.FromEdges("", 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if col := algo.TwoColor(g2); !col.Bipartite {
		t.Fatal("two disjoint edges reported non-bipartite")
	}
}

func TestOddGirth(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"bipartite", gen.Grid(3, 3), 0},
		{"triangle", gen.Cycle(3), 3},
		{"C9", gen.Cycle(9), 9},
		{"petersen", gen.Petersen(), 5},
		{"clique", gen.Complete(6), 3},
		{"wheel", gen.Wheel(6), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := algo.OddGirth(tc.g); got != tc.want {
				t.Errorf("algo.OddGirth(%s) = %d, want %d", tc.g, got, tc.want)
			}
		})
	}
}

func TestTwoColorAgreesWithOddGirth(t *testing.T) {
	// Property: bipartite verdict agrees with the absence of odd cycles.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomGNP(3+rng.Intn(25), 0.15, rng)
		return algo.TwoColor(g).Bipartite == (algo.OddGirth(g) == 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoColorRandomWitnesses(t *testing.T) {
	// Property: every verdict on random graphs carries a valid proof —
	// either a proper two-colouring or a genuine odd cycle.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomGNP(3+rng.Intn(25), 0.2, rng)
		col := algo.TwoColor(g)
		if col.Bipartite {
			for _, e := range g.Edges() {
				if col.Sides[e.U] == col.Sides[e.V] {
					return false
				}
			}
			return true
		}
		if len(col.OddCycle) == 0 || len(col.OddCycle)%2 == 0 {
			return false
		}
		for i := range col.OddCycle {
			u, v := col.OddCycle[i], col.OddCycle[(i+1)%len(col.OddCycle)]
			if !g.HasEdge(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
