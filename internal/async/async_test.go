package async_test

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/async"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/trace"
)

func TestRunValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := async.Run(g, async.SyncAdversary{}, async.Options{}); err == nil {
		t.Fatal("run with no origins succeeded")
	}
	if _, err := async.Run(g, async.SyncAdversary{}, async.Options{}, 99); err == nil {
		t.Fatal("run with invalid origin succeeded")
	}
}

func TestSyncAdversaryMatchesSynchronousEngine(t *testing.T) {
	// Under the all-zero-delay adversary, the async model must reproduce
	// the synchronous engine's deliveries round for round.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(30), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))

		asyncRes, err := async.Run(g, async.SyncAdversary{}, async.Options{Trace: true}, src)
		if err != nil || asyncRes.Outcome != async.Terminated {
			return false
		}
		flood, err := core.NewFlood(g, src)
		if err != nil {
			return false
		}
		syncRes, err := engine.Run(context.Background(), g, flood, engine.Options{Trace: true})
		if err != nil {
			return false
		}
		if asyncRes.Rounds != syncRes.Rounds || asyncRes.TotalMessages != syncRes.TotalMessages {
			return false
		}
		if len(asyncRes.Trace) != len(syncRes.Trace) {
			return false
		}
		for i, d := range asyncRes.Trace {
			if d.Round != syncRes.Trace[i].Round || len(d.Msgs) != len(syncRes.Trace[i].Sends) {
				return false
			}
			for j, m := range d.Msgs {
				s := syncRes.Trace[i].Sends[j]
				if m.From != s.From || m.To != s.To {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure5TriangleCertificate(t *testing.T) {
	res, err := async.Run(gen.Cycle(3), async.CollisionDelayer{}, async.Options{Trace: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != async.CycleDetected {
		t.Fatalf("outcome = %v, want CycleDetected", res.Outcome)
	}
	if res.CycleStart != 2 || res.CycleLength != 4 {
		t.Fatalf("cycle = start %d len %d, want start 2 len 4", res.CycleStart, res.CycleLength)
	}
	// The first rounds must match the paper's schedule: b floods, a and c
	// exchange, then the delayed message splits the collision at b.
	var got []string
	for _, d := range res.Trace {
		var edges []string
		for _, m := range d.Msgs {
			edges = append(edges, trace.Letters(m.From)+">"+trace.Letters(m.To))
		}
		got = append(got, strings.Join(edges, " "))
	}
	want := []string{
		"b>a b>c",
		"a>c c>a",
		"a>b",     // c's message to b held back
		"b>c c>b", // b answers a; c's delayed message lands
		"b>a",     // c's next message delayed again
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
}

func TestCollisionDelayerOnOddCycles(t *testing.T) {
	for _, n := range []int{3, 5, 7, 9, 11} {
		res, err := async.Run(gen.Cycle(n), async.CollisionDelayer{}, async.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != async.CycleDetected {
			t.Errorf("C%d: outcome = %v, want CycleDetected", n, res.Outcome)
		}
	}
}

func TestCollisionDelayerTerminatesOnTrees(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Path(9), gen.Star(8), gen.CompleteBinaryTree(4), gen.RandomTree(40, rand.New(rand.NewSource(2)))} {
		res, err := async.Run(g, async.CollisionDelayer{}, async.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != async.Terminated {
			t.Errorf("%s: outcome = %v, want Terminated", g, res.Outcome)
		}
	}
}

func TestHoldNodeDeterministicAndTerminatesOnPath(t *testing.T) {
	res, err := async.Run(gen.Path(8), async.HoldNode{Node: 3, Extra: 2}, async.Options{Trace: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != async.Terminated {
		t.Fatalf("outcome = %v, want Terminated", res.Outcome)
	}
	// Delays stretch the schedule: strictly more rounds than the
	// synchronous run (which takes 7).
	if res.Rounds <= 7 {
		t.Fatalf("rounds = %d, want > 7 (delays must stretch the run)", res.Rounds)
	}
}

func TestRandomAdversaryReproducibleBySeed(t *testing.T) {
	run := func() async.Result {
		res, err := async.Run(gen.Cycle(6), async.NewRandomAdversary(99, 2), async.Options{Trace: true, MaxRounds: 512}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Outcome != b.Outcome || a.Rounds != b.Rounds || a.TotalMessages != b.TotalMessages {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestRandomAdversaryNeverCertifies(t *testing.T) {
	// Non-deterministic adversaries must not claim cycle certificates.
	res, err := async.Run(gen.Cycle(3), async.NewRandomAdversary(7, 3), async.Options{MaxRounds: 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == async.CycleDetected {
		t.Fatal("random adversary produced a cycle certificate")
	}
}

// buggyAdversary returns malformed schedules to exercise sanitisation.
type buggyAdversary struct{}

func (buggyAdversary) Name() string { return "buggy" }
func (buggyAdversary) Schedule(batch []graph.Edge, _ async.ConfigView) []int {
	// Too short and negative: the runner must clamp and pad.
	if len(batch) > 0 {
		return []int{-5}
	}
	return nil
}
func (buggyAdversary) Deterministic() bool { return true }

func TestBuggyAdversarySanitized(t *testing.T) {
	res, err := async.Run(gen.Path(5), buggyAdversary{}, async.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With all effective delays clamped to zero this must equal the
	// synchronous run: 4 rounds on a path of 5 from an end.
	if res.Outcome != async.Terminated || res.Rounds != 4 {
		t.Fatalf("buggy adversary run = %+v, want terminated in 4 rounds", res)
	}
}

func TestRoundLimitOutcome(t *testing.T) {
	// The collision delayer loops on the triangle; with certificates
	// suppressed by a tiny MaxRounds the limit must fire first... the
	// certificate needs ~6 rounds, so use MaxRounds=3.
	res, err := async.Run(gen.Cycle(3), async.CollisionDelayer{}, async.Options{MaxRounds: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != async.RoundLimit {
		t.Fatalf("outcome = %v, want RoundLimit", res.Outcome)
	}
}

func TestAdversaryViewRelativeDelays(t *testing.T) {
	// The adversary view must expose in-flight messages with delays
	// relative to the current round, never absolute rounds.
	var sawInFlight bool
	spy := &spyAdversary{onView: func(view async.ConfigView) {
		for _, rem := range view.Remaining {
			if rem < 0 {
				t.Errorf("negative remaining delay %d in view", rem)
			}
			sawInFlight = true
		}
	}}
	if _, err := async.Run(gen.Cycle(5), spy, async.Options{MaxRounds: 64}, 0); err != nil {
		t.Fatal(err)
	}
	if !sawInFlight {
		t.Log("no in-flight messages observed (acceptable for this topology)")
	}
}

// spyAdversary delays the second message of every batch by 1 and records
// views.
type spyAdversary struct {
	onView func(async.ConfigView)
}

func (s *spyAdversary) Name() string { return "spy" }
func (s *spyAdversary) Schedule(batch []graph.Edge, view async.ConfigView) []int {
	if s.onView != nil {
		s.onView(view)
	}
	delays := make([]int, len(batch))
	if len(delays) > 1 {
		delays[1] = 1
	}
	return delays
}
func (s *spyAdversary) Deterministic() bool { return true }

func TestOutcomeString(t *testing.T) {
	cases := map[async.Outcome]string{
		async.Terminated:    "terminated",
		async.CycleDetected: "non-termination-certified",
		async.RoundLimit:    "round-limit",
		async.Outcome(9):    "Outcome(9)",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

func TestMultiOriginAsync(t *testing.T) {
	res, err := async.Run(gen.Path(7), async.SyncAdversary{}, async.Options{}, 0, 6, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != async.Terminated {
		t.Fatalf("outcome = %v, want Terminated", res.Outcome)
	}
}

func TestAdversaryNames(t *testing.T) {
	names := map[string]async.Adversary{
		"sync":              async.SyncAdversary{},
		"collision-delayer": async.CollisionDelayer{},
		"hold-node":         async.HoldNode{Node: 1, Extra: 1},
		"random":            async.NewRandomAdversary(1, 1),
	}
	for want, adv := range names {
		if adv.Name() != want {
			t.Errorf("adversary name = %q, want %q", adv.Name(), want)
		}
	}
}
