// Package async defines the delay adversaries of the asynchronous amnesiac
// flooding model from Section 4 of the paper, in which a scheduling
// adversary adaptively chooses the delay of every message.
//
// The adversaries implement model.Adversary and self-register in the
// model-spec registry from this package's init, so importing the package is
// all it takes to make them addressable as execution-model specs
// ("adversary:collision", "adversary:hold:node=3,extra=2", ...) through
// sim.WithModel, scenario matrices, and the CLIs. The model itself — in-
// flight arenas, delivery semantics, configuration-repeat certificates — is
// executed by model.AsyncEngine; this package holds only the scheduling
// policies.
package async

import (
	"math/rand"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/model"
)

// SyncAdversary delivers every message with zero extra delay, making the
// asynchronous model coincide with the synchronous one. It is the control
// adversary: runs under it must terminate exactly like the synchronous
// engines (verified by fuzz tests against byte-identical traces).
type SyncAdversary struct{}

var _ model.Adversary = SyncAdversary{}

// Name implements model.Adversary.
func (SyncAdversary) Name() string { return "sync" }

// Delays implements model.Adversary with all-zero delays.
func (SyncAdversary) Delays([]graph.Edge, model.ConfigView, []int) {}

// Deterministic implements model.Adversary.
func (SyncAdversary) Deterministic() bool { return true }

// IgnoresView implements model.ViewIgnorer: delays never depend on the
// in-flight configuration.
func (SyncAdversary) IgnoresView() bool { return true }

// CollisionDelayer is the paper's Figure 5 adversary, generalised: whenever
// two or more messages sent in the same round target the same node, the one
// from the lowest-identifier sender is delivered on time and every other is
// held back one extra round. On the triangle this reproduces the schedule
// of Figure 5 round for round and yields a configuration cycle, i.e. a
// certificate of non-termination; experiments show the same on longer odd
// cycles.
type CollisionDelayer struct{}

var _ model.Adversary = CollisionDelayer{}

// Name implements model.Adversary.
func (CollisionDelayer) Name() string { return "collision-delayer" }

// Delays implements model.Adversary. batch is sorted by (From, To), so
// within a target the lowest-ID sender appears first.
func (CollisionDelayer) Delays(batch []graph.Edge, _ model.ConfigView, delays []int) {
	firstTo := map[graph.NodeID]graph.NodeID{} // target -> lowest sender
	for _, e := range batch {
		if cur, ok := firstTo[e.V]; !ok || e.U < cur {
			firstTo[e.V] = e.U
		}
	}
	for i, e := range batch {
		if firstTo[e.V] != e.U {
			delays[i] = 1
		}
	}
}

// Deterministic implements model.Adversary.
func (CollisionDelayer) Deterministic() bool { return true }

// IgnoresView implements model.ViewIgnorer: delays depend only on the
// batch's collision structure.
func (CollisionDelayer) IgnoresView() bool { return true }

// HoldNode delays every message sent *by* one fixed node by a constant
// amount, modelling a single slow link/node; all other messages are
// synchronous. Deterministic, so certificates apply.
type HoldNode struct {
	// Node is the slow sender.
	Node graph.NodeID
	// Extra is the extra delay applied to its messages (>= 0).
	Extra int
}

var _ model.Adversary = HoldNode{}

// Name implements model.Adversary.
func (a HoldNode) Name() string { return "hold-node" }

// Delays implements model.Adversary.
func (a HoldNode) Delays(batch []graph.Edge, _ model.ConfigView, delays []int) {
	for i, e := range batch {
		if e.U == a.Node {
			delays[i] = a.Extra
		}
	}
}

// Deterministic implements model.Adversary.
func (a HoldNode) Deterministic() bool { return true }

// IgnoresView implements model.ViewIgnorer.
func (a HoldNode) IgnoresView() bool { return true }

// UniformDelayer delays every message by the same constant k. The
// execution is the synchronous one stretched in time (message lifetimes
// never overlap differently), so termination is preserved — a useful
// control showing that delay per se is harmless; only *asymmetric* delay
// breaks termination.
type UniformDelayer struct {
	// Extra is the constant extra delay (>= 0).
	Extra int
}

var _ model.Adversary = UniformDelayer{}

// Name implements model.Adversary.
func (a UniformDelayer) Name() string { return "uniform-delayer" }

// Delays implements model.Adversary.
func (a UniformDelayer) Delays(batch []graph.Edge, _ model.ConfigView, delays []int) {
	for i := range delays {
		delays[i] = a.Extra
	}
}

// Deterministic implements model.Adversary.
func (a UniformDelayer) Deterministic() bool { return true }

// IgnoresView implements model.ViewIgnorer.
func (a UniformDelayer) IgnoresView() bool { return true }

// EdgeDelayer adds a fixed extra delay to every message crossing one
// specific undirected edge (in either direction), modelling a single slow
// link. Deterministic and stationary, so certificates apply.
type EdgeDelayer struct {
	// Edge is the slow link.
	Edge graph.Edge
	// Extra is its extra delay (>= 0).
	Extra int
}

var _ model.Adversary = EdgeDelayer{}

// Name implements model.Adversary.
func (a EdgeDelayer) Name() string { return "edge-delayer" }

// Delays implements model.Adversary.
func (a EdgeDelayer) Delays(batch []graph.Edge, _ model.ConfigView, delays []int) {
	slow := a.Edge.Normalize()
	for i, e := range batch {
		if e.Normalize() == slow {
			delays[i] = a.Extra
		}
	}
}

// Deterministic implements model.Adversary.
func (a EdgeDelayer) Deterministic() bool { return true }

// IgnoresView implements model.ViewIgnorer.
func (a EdgeDelayer) IgnoresView() bool { return true }

// RandomAdversary delays each message independently and uniformly in
// {0..MaxExtra}, seeded for reproducibility. It is not deterministic in the
// certificate sense, so runs under it can only end in termination or the
// round limit.
type RandomAdversary struct {
	rng      *rand.Rand
	maxExtra int
}

var _ model.Adversary = (*RandomAdversary)(nil)

// NewRandomAdversary returns a seeded random adversary with delays in
// {0..maxExtra}.
func NewRandomAdversary(seed int64, maxExtra int) *RandomAdversary {
	if maxExtra < 0 {
		maxExtra = 0
	}
	return &RandomAdversary{rng: rand.New(rand.NewSource(seed)), maxExtra: maxExtra}
}

// Name implements model.Adversary.
func (a *RandomAdversary) Name() string { return "random" }

// Delays implements model.Adversary.
func (a *RandomAdversary) Delays(batch []graph.Edge, _ model.ConfigView, delays []int) {
	for i := range delays {
		delays[i] = a.rng.Intn(a.maxExtra + 1)
	}
}

// Deterministic implements model.Adversary.
func (a *RandomAdversary) Deterministic() bool { return false }

// IgnoresView implements model.ViewIgnorer.
func (a *RandomAdversary) IgnoresView() bool { return true }
