package async

import (
	"math/rand"

	"amnesiacflood/internal/graph"
)

// SyncAdversary delivers every message with zero extra delay, making the
// asynchronous model coincide with the synchronous one. It is the control
// adversary: runs under it must terminate exactly like the synchronous
// engine (verified by tests).
type SyncAdversary struct{}

var _ Adversary = SyncAdversary{}

// Name implements Adversary.
func (SyncAdversary) Name() string { return "sync" }

// Schedule implements Adversary with all-zero delays.
func (SyncAdversary) Schedule(batch []graph.Edge, _ ConfigView) []int {
	return make([]int, len(batch))
}

// Deterministic implements Adversary.
func (SyncAdversary) Deterministic() bool { return true }

// CollisionDelayer is the paper's Figure 5 adversary, generalised: whenever
// two or more messages sent in the same round target the same node, the one
// from the lowest-identifier sender is delivered on time and every other is
// held back one extra round. On the triangle this reproduces the schedule
// of Figure 5 round for round and yields a configuration cycle, i.e. a
// certificate of non-termination; experiments show the same on longer odd
// cycles.
type CollisionDelayer struct{}

var _ Adversary = CollisionDelayer{}

// Name implements Adversary.
func (CollisionDelayer) Name() string { return "collision-delayer" }

// Schedule implements Adversary. batch is sorted by (From, To), so within a
// target the lowest-ID sender appears first.
func (CollisionDelayer) Schedule(batch []graph.Edge, _ ConfigView) []int {
	delays := make([]int, len(batch))
	firstTo := map[graph.NodeID]graph.NodeID{} // target -> lowest sender
	for _, e := range batch {
		if cur, ok := firstTo[e.V]; !ok || e.U < cur {
			firstTo[e.V] = e.U
		}
	}
	for i, e := range batch {
		if firstTo[e.V] != e.U {
			delays[i] = 1
		}
	}
	return delays
}

// Deterministic implements Adversary.
func (CollisionDelayer) Deterministic() bool { return true }

// HoldNode delays every message sent *by* one fixed node by a constant
// amount, modelling a single slow link/node; all other messages are
// synchronous. Deterministic, so certificates apply.
type HoldNode struct {
	// Node is the slow sender.
	Node graph.NodeID
	// Extra is the extra delay applied to its messages (>= 0).
	Extra int
}

var _ Adversary = HoldNode{}

// Name implements Adversary.
func (a HoldNode) Name() string { return "hold-node" }

// Schedule implements Adversary.
func (a HoldNode) Schedule(batch []graph.Edge, _ ConfigView) []int {
	delays := make([]int, len(batch))
	for i, e := range batch {
		if e.U == a.Node {
			delays[i] = a.Extra
		}
	}
	return delays
}

// Deterministic implements Adversary.
func (a HoldNode) Deterministic() bool { return true }

// UniformDelayer delays every message by the same constant k. The
// execution is the synchronous one stretched in time (message lifetimes
// never overlap differently), so termination is preserved — a useful
// control showing that delay per se is harmless; only *asymmetric* delay
// breaks termination.
type UniformDelayer struct {
	// Extra is the constant extra delay (>= 0).
	Extra int
}

var _ Adversary = UniformDelayer{}

// Name implements Adversary.
func (a UniformDelayer) Name() string { return "uniform-delayer" }

// Schedule implements Adversary.
func (a UniformDelayer) Schedule(batch []graph.Edge, _ ConfigView) []int {
	delays := make([]int, len(batch))
	for i := range delays {
		delays[i] = a.Extra
	}
	return delays
}

// Deterministic implements Adversary.
func (a UniformDelayer) Deterministic() bool { return true }

// EdgeDelayer adds a fixed extra delay to every message crossing one
// specific undirected edge (in either direction), modelling a single slow
// link. Deterministic and stationary, so certificates apply.
type EdgeDelayer struct {
	// Edge is the slow link.
	Edge graph.Edge
	// Extra is its extra delay (>= 0).
	Extra int
}

var _ Adversary = EdgeDelayer{}

// Name implements Adversary.
func (a EdgeDelayer) Name() string { return "edge-delayer" }

// Schedule implements Adversary.
func (a EdgeDelayer) Schedule(batch []graph.Edge, _ ConfigView) []int {
	slow := a.Edge.Normalize()
	delays := make([]int, len(batch))
	for i, e := range batch {
		if e.Normalize() == slow {
			delays[i] = a.Extra
		}
	}
	return delays
}

// Deterministic implements Adversary.
func (a EdgeDelayer) Deterministic() bool { return true }

// RandomAdversary delays each message independently and uniformly in
// {0..MaxExtra}, seeded for reproducibility. It is not deterministic in the
// certificate sense, so runs under it can only end in Terminated or
// RoundLimit.
type RandomAdversary struct {
	rng      *rand.Rand
	maxExtra int
}

var _ Adversary = (*RandomAdversary)(nil)

// NewRandomAdversary returns a seeded random adversary with delays in
// {0..maxExtra}.
func NewRandomAdversary(seed int64, maxExtra int) *RandomAdversary {
	if maxExtra < 0 {
		maxExtra = 0
	}
	return &RandomAdversary{rng: rand.New(rand.NewSource(seed)), maxExtra: maxExtra}
}

// Name implements Adversary.
func (a *RandomAdversary) Name() string { return "random" }

// Schedule implements Adversary.
func (a *RandomAdversary) Schedule(batch []graph.Edge, _ ConfigView) []int {
	delays := make([]int, len(batch))
	for i := range delays {
		delays[i] = a.rng.Intn(a.maxExtra + 1)
	}
	return delays
}

// Deterministic implements Adversary.
func (a *RandomAdversary) Deterministic() bool { return false }
