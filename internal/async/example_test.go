package async_test

import (
	"fmt"
	"log"

	"amnesiacflood/internal/async"
	"amnesiacflood/internal/graph/gen"
)

// ExampleRun reproduces the paper's Section 4 result: under a delaying
// adversary the triangle flood never terminates, proven in finite time by a
// repeated configuration.
func ExampleRun() {
	res, err := async.Run(gen.Cycle(3), async.CollisionDelayer{}, async.Options{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Outcome)
	fmt.Printf("configuration at round %d recurs at round %d\n",
		res.CycleStart, res.CycleStart+res.CycleLength)
	// Output:
	// non-termination-certified
	// configuration at round 2 recurs at round 6
}

// ExampleRun_control shows the zero-delay adversary matching the
// synchronous Figure 2 run: 3 rounds and done.
func ExampleRun_control() {
	res, err := async.Run(gen.Cycle(3), async.SyncAdversary{}, async.Options{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s after %d rounds\n", res.Outcome, res.Rounds)
	// Output:
	// terminated after 3 rounds
}
