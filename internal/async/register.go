package async

import (
	"fmt"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/model"
)

// The adversary families of the model-spec registry. Parameter order here
// is the canonical spec order (model.Spec.String emits it), so these
// declarations are the grammar of "adversary:..." specs.
func init() {
	model.RegisterAdversary("sync", model.AdversaryFamily{
		Doc: "zero extra delay everywhere; coincides with the synchronous model",
		New: func(model.Values, int64) (model.Adversary, error) { return SyncAdversary{}, nil },
	})
	model.RegisterAdversary("collision", model.AdversaryFamily{
		Doc: "the paper's Figure 5 adversary: holds back all but the lowest-sender copy of colliding messages",
		New: func(model.Values, int64) (model.Adversary, error) { return CollisionDelayer{}, nil },
	})
	model.RegisterAdversary("hold", model.AdversaryFamily{
		Params: []model.Param{
			{Name: "node", Kind: model.IntParam, Default: "0", Doc: "the slow sender"},
			{Name: "extra", Kind: model.IntParam, Default: "1", Doc: "extra delay on its messages"},
		},
		Doc: "delays every message sent by one node by a constant",
		New: func(v model.Values, _ int64) (model.Adversary, error) {
			if v.Int("extra") < 0 {
				return nil, fmt.Errorf("extra must be >= 0, got %d", v.Int("extra"))
			}
			return HoldNode{Node: graph.NodeID(v.Int("node")), Extra: v.Int("extra")}, nil
		},
	})
	model.RegisterAdversary("uniform", model.AdversaryFamily{
		Params: []model.Param{
			{Name: "extra", Kind: model.IntParam, Default: "1", Doc: "constant extra delay on every message"},
		},
		Doc: "stretches the synchronous run uniformly; termination-preserving control",
		New: func(v model.Values, _ int64) (model.Adversary, error) {
			if v.Int("extra") < 0 {
				return nil, fmt.Errorf("extra must be >= 0, got %d", v.Int("extra"))
			}
			return UniformDelayer{Extra: v.Int("extra")}, nil
		},
	})
	model.RegisterAdversary("edge", model.AdversaryFamily{
		Params: []model.Param{
			{Name: "u", Kind: model.IntParam, Default: "0", Doc: "one endpoint of the slow link"},
			{Name: "v", Kind: model.IntParam, Default: "1", Doc: "the other endpoint"},
			{Name: "extra", Kind: model.IntParam, Default: "1", Doc: "extra delay on that link"},
		},
		Doc: "delays every message crossing one undirected edge",
		New: func(v model.Values, _ int64) (model.Adversary, error) {
			if v.Int("extra") < 0 {
				return nil, fmt.Errorf("extra must be >= 0, got %d", v.Int("extra"))
			}
			return EdgeDelayer{Edge: graph.Edge{U: graph.NodeID(v.Int("u")), V: graph.NodeID(v.Int("v"))}, Extra: v.Int("extra")}, nil
		},
	})
	model.RegisterAdversary("random", model.AdversaryFamily{
		Params: []model.Param{
			{Name: "max", Kind: model.IntParam, Default: "3", Doc: "delays drawn uniformly from {0..max}"},
		},
		Random: true,
		Doc:    "seeded random delays; no certificates (non-deterministic)",
		New: func(v model.Values, seed int64) (model.Adversary, error) {
			if v.Int("max") < 0 {
				return nil, fmt.Errorf("max must be >= 0, got %d", v.Int("max"))
			}
			return NewRandomAdversary(seed, v.Int("max")), nil
		},
	})
}
