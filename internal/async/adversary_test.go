package async_test

import (
	"testing"

	"amnesiacflood/internal/async"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/model"
)

// Engine-level behaviour of these adversaries (termination, certificates,
// equivalence with the synchronous engines) is covered by the differential
// and fuzz tests in internal/model; this file unit-tests the scheduling
// policies themselves.

func delaysOf(adv model.Adversary, batch []graph.Edge) []int {
	delays := make([]int, len(batch))
	adv.Delays(batch, model.ConfigView{}, delays)
	return delays
}

func TestAdversaryNames(t *testing.T) {
	names := map[string]model.Adversary{
		"sync":              async.SyncAdversary{},
		"collision-delayer": async.CollisionDelayer{},
		"hold-node":         async.HoldNode{Node: 1, Extra: 1},
		"uniform-delayer":   async.UniformDelayer{},
		"edge-delayer":      async.EdgeDelayer{},
		"random":            async.NewRandomAdversary(1, 1),
	}
	for want, adv := range names {
		if adv.Name() != want {
			t.Errorf("adversary name = %q, want %q", adv.Name(), want)
		}
	}
}

func TestCollisionDelayerHoldsAllButLowestSender(t *testing.T) {
	// Two messages collide at node 2; the copy from the higher sender is
	// held one round. The lone message to node 3 is on time.
	batch := []graph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 1, V: 3}}
	got := delaysOf(async.CollisionDelayer{}, batch)
	want := []int{0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delays = %v, want %v", got, want)
		}
	}
}

func TestHoldNodeDelaysOnlyItsSender(t *testing.T) {
	batch := []graph.Edge{{U: 0, V: 1}, {U: 3, V: 1}, {U: 3, V: 4}}
	got := delaysOf(async.HoldNode{Node: 3, Extra: 2}, batch)
	want := []int{0, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delays = %v, want %v", got, want)
		}
	}
}

func TestEdgeDelayerBothDirections(t *testing.T) {
	adv := async.EdgeDelayer{Edge: graph.Edge{U: 2, V: 1}, Extra: 3}
	batch := []graph.Edge{{U: 1, V: 2}, {U: 2, V: 1}, {U: 2, V: 3}}
	got := delaysOf(adv, batch)
	want := []int{3, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delays = %v, want %v", got, want)
		}
	}
}

func TestUniformAndSyncDelays(t *testing.T) {
	batch := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}}
	for _, d := range delaysOf(async.UniformDelayer{Extra: 2}, batch) {
		if d != 2 {
			t.Fatal("uniform delayer must delay everything equally")
		}
	}
	for _, d := range delaysOf(async.SyncAdversary{}, batch) {
		if d != 0 {
			t.Fatal("sync adversary must never delay")
		}
	}
}

func TestRandomAdversarySeedReproducible(t *testing.T) {
	batch := make([]graph.Edge, 8)
	a := delaysOf(async.NewRandomAdversary(42, 3), batch)
	b := delaysOf(async.NewRandomAdversary(42, 3), batch)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different delays")
		}
		if a[i] < 0 || a[i] > 3 {
			t.Fatalf("delay %d outside {0..3}", a[i])
		}
	}
	if async.NewRandomAdversary(1, 1).Deterministic() {
		t.Fatal("random adversary must not claim determinism")
	}
}

func TestDeterministicFlags(t *testing.T) {
	for _, adv := range []model.Adversary{
		async.SyncAdversary{}, async.CollisionDelayer{}, async.HoldNode{},
		async.UniformDelayer{}, async.EdgeDelayer{},
	} {
		if !adv.Deterministic() {
			t.Errorf("%s must be deterministic", adv.Name())
		}
	}
}
