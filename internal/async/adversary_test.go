package async_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/async"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

func TestUniformDelayerPreservesTermination(t *testing.T) {
	// Uniform delay stretches the synchronous schedule without reordering
	// anything, so every run must terminate with the synchronous message
	// count.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(30), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		extra := rng.Intn(4)
		res, err := async.Run(g, async.UniformDelayer{Extra: extra}, async.Options{}, src)
		if err != nil || res.Outcome != async.Terminated {
			return false
		}
		rep, err := core.Run(g, src)
		if err != nil {
			return false
		}
		if res.TotalMessages != rep.TotalMessages() {
			return false
		}
		// The stretched run takes (extra+1) times the rounds, up to the
		// trailing delivery offset.
		return res.Rounds == rep.Rounds()*(extra+1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformDelayerZeroEqualsSync(t *testing.T) {
	g := gen.Cycle(7)
	a, err := async.Run(g, async.UniformDelayer{}, async.Options{Trace: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := async.Run(g, async.SyncAdversary{}, async.Options{Trace: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.TotalMessages != b.TotalMessages {
		t.Fatalf("zero uniform delay diverged from sync: %+v vs %+v", a, b)
	}
}

func TestEdgeDelayerOnTriangle(t *testing.T) {
	// Slowing one triangle edge merges the wavefronts at node c: c hears
	// the delayed b->c copy and a's forward in the same round, so its
	// complement is empty and the flood dies after 2 rounds — one round
	// FASTER than the synchronous 2D+1 = 3. Asymmetric delay can
	// accelerate termination as well as (with the collision-delayer's
	// schedule) destroy it.
	g := gen.Cycle(3)
	res, err := async.Run(g, async.EdgeDelayer{Edge: graph.Edge{U: 1, V: 2}, Extra: 1}, async.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != async.Terminated || res.Rounds != 2 {
		t.Fatalf("run = %+v, want termination in 2 rounds", res)
	}
}

func TestEdgeDelayerOnPathTerminates(t *testing.T) {
	g := gen.Path(6)
	res, err := async.Run(g, async.EdgeDelayer{Edge: graph.Edge{U: 2, V: 3}, Extra: 3}, async.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != async.Terminated {
		t.Fatalf("outcome = %v, want Terminated", res.Outcome)
	}
	// The slow edge adds exactly its extra delay to the one crossing.
	if res.Rounds != 5+3 {
		t.Fatalf("rounds = %d, want 8", res.Rounds)
	}
}

func TestNewAdversaryNames(t *testing.T) {
	if (async.UniformDelayer{}).Name() != "uniform-delayer" {
		t.Fatal("uniform delayer name")
	}
	if (async.EdgeDelayer{}).Name() != "edge-delayer" {
		t.Fatal("edge delayer name")
	}
}
