// Package async implements the asynchronous variant of amnesiac flooding
// from Section 4 of the paper, in which a scheduling adversary adaptively
// chooses the delay of every message.
//
// # Model
//
// The brief announcement leaves the model informal ("the adversary can
// adaptively choose the delay on every message edge"). We formalise it as
// follows, and record the choice in DESIGN.md §4:
//
//   - When a node sends a batch of messages in round r, the adversary
//     assigns each message an extra delay k >= 0; the message is delivered
//     in round r+k.
//   - A node processes all messages delivered to it in the same round as a
//     single batch and responds (to the complement of that batch's senders)
//     in the next round.
//   - With every delay equal to zero the model coincides exactly with the
//     synchronous model (verified by tests against the synchronous engine).
//
// # Non-termination certificates
//
// Amnesiac nodes carry no state, so the global configuration is fully
// described by the multiset of in-flight messages together with their
// remaining delays. Under a deterministic adversary whose choices depend
// only on that configuration (Adversary.Deterministic), a repeated
// configuration proves the execution is periodic and therefore never
// terminates. Runner detects such repeats and reports them as a
// non-termination certificate, which is how the paper's Figure 5 triangle
// schedule is reproduced without running forever.
package async

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"amnesiacflood/internal/graph"
)

// Message is an in-flight copy of M crossing a directed edge.
type Message struct {
	From, To graph.NodeID
	// DeliverAt is the round in which the message is delivered.
	DeliverAt int
}

// ConfigView exposes the adversary-visible state when a batch is scheduled:
// the messages already in flight, with delays relative to the current round.
// Absolute round numbers are deliberately not exposed so that adversaries
// are stationary (round-invariant), which is what makes configuration-
// repeat certificates sound.
type ConfigView struct {
	// InFlight lists messages already scheduled but not yet delivered;
	// Remaining[i] rounds remain before InFlight[i] is delivered (0 means
	// "delivered this round").
	InFlight  []graph.Edge
	Remaining []int
}

// Adversary assigns delivery delays to outgoing message batches.
type Adversary interface {
	// Name identifies the adversary in reports.
	Name() string
	// Schedule returns one extra delay >= 0 per message in batch. batch
	// holds the directed edges being sent this round, sorted by
	// (From, To). view is the rest of the configuration.
	Schedule(batch []graph.Edge, view ConfigView) []int
	// Deterministic reports whether Schedule is a pure function of its
	// arguments. Only deterministic adversaries support configuration-
	// repeat certificates.
	Deterministic() bool
}

// Outcome classifies how an asynchronous run ended.
type Outcome int

// Possible outcomes.
const (
	// Terminated: a round arrived with no message in flight.
	Terminated Outcome = iota + 1
	// CycleDetected: the configuration repeated under a deterministic
	// adversary — a certificate of non-termination.
	CycleDetected
	// RoundLimit: the round limit was reached without termination or a
	// certificate (possible for randomised adversaries).
	RoundLimit
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Terminated:
		return "terminated"
	case CycleDetected:
		return "non-termination-certified"
	case RoundLimit:
		return "round-limit"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Delivery records the messages delivered to nodes in one round.
type Delivery struct {
	Round int
	Msgs  []Message // sorted by (From, To)
}

// Result is the outcome of an asynchronous run.
type Result struct {
	Outcome       Outcome
	Adversary     string
	Rounds        int // rounds simulated before stopping
	TotalMessages int // total deliveries performed
	// CycleStart and CycleLength describe the certified period when
	// Outcome == CycleDetected: the configuration at the start of round
	// CycleStart reoccurred at CycleStart+CycleLength.
	CycleStart, CycleLength int
	// Trace holds per-round deliveries when tracing was requested.
	Trace []Delivery
}

// Options configures a run.
type Options struct {
	// Trace records per-round deliveries.
	Trace bool
	// MaxRounds bounds the simulation; 0 means DefaultMaxRounds.
	MaxRounds int
}

// DefaultMaxRounds bounds asynchronous runs. Asynchronous amnesiac flooding
// can legitimately run forever, so this is a working bound, not a
// correctness bound.
const DefaultMaxRounds = 1 << 16

// Run simulates asynchronous amnesiac flooding on g from the given origins
// under the adversary.
func Run(g *graph.Graph, adv Adversary, opts Options, origins ...graph.NodeID) (Result, error) {
	if len(origins) == 0 {
		return Result{}, fmt.Errorf("async: %s: need at least one origin", g)
	}
	for _, o := range origins {
		if !g.HasNode(o) {
			return Result{}, fmt.Errorf("async: origin %d is not a node of %s", o, g)
		}
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	res := Result{Adversary: adv.Name()}

	// Bootstrap: origins send to all neighbours; the adversary schedules
	// this batch like any other (sent "in round 1", so delays are added to
	// delivery round 1).
	var inFlight []Message
	bootstrap := make([]graph.Edge, 0)
	for _, o := range sortedUnique(origins) {
		for _, nbr := range g.Neighbors(o) {
			bootstrap = append(bootstrap, graph.Edge{U: o, V: nbr})
		}
	}
	delays := scheduleBatch(adv, bootstrap, nil)
	for i, e := range bootstrap {
		inFlight = append(inFlight, Message{From: e.U, To: e.V, DeliverAt: 1 + delays[i]})
	}

	seen := map[string]int{} // configuration key -> round first seen
	for round := 1; len(inFlight) > 0; round++ {
		if round > maxRounds {
			res.Outcome = RoundLimit
			res.Rounds = maxRounds
			return res, nil
		}
		if adv.Deterministic() {
			key := configKey(inFlight, round)
			if first, ok := seen[key]; ok {
				res.Outcome = CycleDetected
				res.CycleStart = first
				res.CycleLength = round - first
				res.Rounds = round
				return res, nil
			}
			seen[key] = round
		}

		// Split deliveries due this round from messages still in flight.
		var due, later []Message
		for _, m := range inFlight {
			if m.DeliverAt == round {
				due = append(due, m)
			} else {
				later = append(later, m)
			}
		}
		if len(due) == 0 {
			// Nothing delivered this round; time passes.
			inFlight = later
			res.Rounds = round
			continue
		}
		sort.Slice(due, func(i, j int) bool {
			if due[i].From != due[j].From {
				return due[i].From < due[j].From
			}
			return due[i].To < due[j].To
		})
		res.Rounds = round
		res.TotalMessages += len(due)
		if opts.Trace {
			res.Trace = append(res.Trace, Delivery{Round: round, Msgs: append([]Message(nil), due...)})
		}

		// Group by receiver; each receiver responds to the complement of
		// its senders, sent in round+1.
		batch := respond(g, due)
		view := makeView(later, round)
		delays := scheduleBatch(adv, batch, &view)
		for i, e := range batch {
			later = append(later, Message{From: e.U, To: e.V, DeliverAt: round + 1 + delays[i]})
		}
		inFlight = later
	}
	res.Outcome = Terminated
	return res, nil
}

// respond computes the next-round send batch: for every node receiving at
// least one message this round, one send per neighbour that is not among its
// senders. The batch is sorted by (From, To).
func respond(g *graph.Graph, due []Message) []graph.Edge {
	senders := map[graph.NodeID][]graph.NodeID{}
	for _, m := range due {
		senders[m.To] = append(senders[m.To], m.From)
	}
	receivers := make([]graph.NodeID, 0, len(senders))
	for v := range senders {
		receivers = append(receivers, v)
	}
	sort.Slice(receivers, func(i, j int) bool { return receivers[i] < receivers[j] })

	var batch []graph.Edge
	for _, v := range receivers {
		from := senders[v]
		sort.Slice(from, func(i, j int) bool { return from[i] < from[j] })
		i := 0
		for _, nbr := range g.Neighbors(v) {
			for i < len(from) && from[i] < nbr {
				i++
			}
			if i < len(from) && from[i] == nbr {
				continue
			}
			batch = append(batch, graph.Edge{U: v, V: nbr})
		}
	}
	return batch
}

// scheduleBatch invokes the adversary and sanitises its output: a nil or
// short answer is padded with zero delays, and negative delays are clamped
// to zero, so a buggy adversary cannot corrupt the simulation.
func scheduleBatch(adv Adversary, batch []graph.Edge, view *ConfigView) []int {
	if len(batch) == 0 {
		return nil
	}
	v := ConfigView{}
	if view != nil {
		v = *view
	}
	raw := adv.Schedule(batch, v)
	out := make([]int, len(batch))
	for i := range out {
		if i < len(raw) && raw[i] > 0 {
			out[i] = raw[i]
		}
	}
	return out
}

// makeView builds the adversary's view of messages still in flight,
// relative to the current round.
func makeView(later []Message, round int) ConfigView {
	view := ConfigView{
		InFlight:  make([]graph.Edge, len(later)),
		Remaining: make([]int, len(later)),
	}
	for i, m := range later {
		view.InFlight[i] = graph.Edge{U: m.From, V: m.To}
		view.Remaining[i] = m.DeliverAt - round
	}
	return view
}

// configKey canonically serialises the in-flight multiset with delays
// relative to the current round. Two rounds with equal keys have identical
// futures under a deterministic stationary adversary.
func configKey(inFlight []Message, round int) string {
	entries := make([]string, len(inFlight))
	for i, m := range inFlight {
		entries[i] = strconv.Itoa(int(m.From)) + ">" + strconv.Itoa(int(m.To)) + "@" + strconv.Itoa(m.DeliverAt-round)
	}
	sort.Strings(entries)
	return strings.Join(entries, ",")
}

// sortedUnique returns the sorted distinct node IDs of origins.
func sortedUnique(origins []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), origins...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	uniq := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}
