package multiflood

import (
	"fmt"
	"slices"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/sim"
)

// Protocol is the union wavefront of several simultaneous amnesiac floods
// as a replayable engine.Protocol: one flood per origin, all starting in
// round 1, superimposed edge-wise per round (an edge carrying copies of
// several messages in one round appears once — the engine model's single
// shared payload M).
//
// Concurrent amnesiac floods do not interact logically — each message's
// schedule equals its solo run — so the union schedule is fully determined
// at construction time. The constructor simulates every solo flood on the
// reference engine and the protocol replays the superposition; every node's
// replayed sends in round r+1 respond to a receipt in round r (each
// message's forwarding needs a receipt of that message), so the replay is a
// well-formed synchronous protocol and runs byte-identically on all four
// engines.
type Protocol struct {
	origins   []graph.NodeID
	bootstrap []engine.Send
	// next[r][v] lists v's destinations for the sends delivered in round
	// r, ascending; rounds beyond the schedule are absent.
	next []map[graph.NodeID][]graph.NodeID
}

var _ engine.Protocol = (*Protocol)(nil)

// NewProtocol builds the union replay of one amnesiac flood per origin,
// all starting simultaneously in round 1.
func NewProtocol(g *graph.Graph, origins ...graph.NodeID) (*Protocol, error) {
	if len(origins) == 0 {
		return nil, fmt.Errorf("multiflood: no origins on %s", g)
	}
	res, err := Run(g, AllFromOrigins(origins))
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		origins: append([]graph.NodeID(nil), origins...),
		next:    make([]map[graph.NodeID][]graph.NodeID, res.Rounds+1),
	}
	// Superimpose the solo traces: union of distinct (From, To) per round.
	union := make([]map[engine.Send]bool, res.Rounds+1)
	for _, solo := range res.PerBroadcast {
		for _, rec := range solo.Trace {
			if union[rec.Round] == nil {
				union[rec.Round] = map[engine.Send]bool{}
			}
			for _, s := range rec.Sends {
				union[rec.Round][s] = true
			}
		}
	}
	for round := 1; round <= res.Rounds; round++ {
		byFrom := map[graph.NodeID][]graph.NodeID{}
		for s := range union[round] {
			byFrom[s.From] = append(byFrom[s.From], s.To)
		}
		for from, dsts := range byFrom {
			slices.Sort(dsts)
			if round == 1 {
				for _, to := range dsts {
					p.bootstrap = append(p.bootstrap, engine.Send{From: from, To: to})
				}
				continue
			}
			if p.next[round] == nil {
				p.next[round] = map[graph.NodeID][]graph.NodeID{}
			}
			p.next[round][from] = dsts
		}
	}
	slices.SortFunc(p.bootstrap, func(a, b engine.Send) int {
		if a.From != b.From {
			return int(a.From) - int(b.From)
		}
		return int(a.To) - int(b.To)
	})
	return p, nil
}

// Name implements engine.Protocol.
func (p *Protocol) Name() string {
	return fmt.Sprintf("multiflood[%d sources]", len(p.origins))
}

// Origins returns the origin set, one flood each.
func (p *Protocol) Origins() []graph.NodeID {
	return append([]graph.NodeID(nil), p.origins...)
}

// Bootstrap implements engine.Protocol: the union of every flood's round-1
// sends.
func (p *Protocol) Bootstrap() []engine.Send {
	return p.bootstrap
}

// NewNode implements engine.Protocol by replaying v's slice of the union
// schedule: the sends answered at round r are exactly the scheduled
// deliveries of round r+1.
func (p *Protocol) NewNode(v graph.NodeID) engine.NodeAutomaton {
	return func(round int, _ []graph.NodeID) []graph.NodeID {
		if round+1 >= len(p.next) || p.next[round+1] == nil {
			return nil
		}
		return p.next[round+1][v]
	}
}

// init self-registers the union replay with the sim façade's protocol
// registry, making simultaneous multi-message broadcast selectable as
// -protocol multiflood on any engine.
func init() {
	sim.Register("multiflood", func(spec sim.Spec) (engine.Protocol, error) {
		return NewProtocol(spec.Graph, spec.Origins...)
	})
}
