package multiflood_test

import (
	"context"
	"testing"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/chanengine"
	"amnesiacflood/internal/engine/fastengine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/multiflood"
)

// TestProtocolReplaysUnionSchedule: the replay protocol's trace must equal
// the superposition of the solo floods — same rounds, and each round's send
// set the deduplicated union of the solo rounds.
func TestProtocolReplaysUnionSchedule(t *testing.T) {
	g := gen.Grid(5, 5)
	origins := []graph.NodeID{0, 12, 24}
	proto, err := multiflood.NewProtocol(g, origins...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(context.Background(), g, proto, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := multiflood.Run(g, multiflood.AllFromOrigins(origins))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != solo.Rounds {
		t.Fatalf("replay rounds = %d, union of solos = %d", res.Rounds, solo.Rounds)
	}
	// Rebuild the union per round and compare as sets.
	union := make([]map[engine.Send]bool, solo.Rounds+1)
	for _, s := range solo.PerBroadcast {
		for _, rec := range s.Trace {
			if union[rec.Round] == nil {
				union[rec.Round] = map[engine.Send]bool{}
			}
			for _, send := range rec.Sends {
				union[rec.Round][send] = true
			}
		}
	}
	for _, rec := range res.Trace {
		want := union[rec.Round]
		if len(rec.Sends) != len(want) {
			t.Fatalf("round %d: replay has %d sends, union has %d", rec.Round, len(rec.Sends), len(want))
		}
		for _, s := range rec.Sends {
			if !want[s] {
				t.Fatalf("round %d: replay send %v not in union", rec.Round, s)
			}
		}
	}
}

// TestProtocolEngineEquivalence: the replay is deterministic, so all four
// engines must agree byte for byte.
func TestProtocolEngineEquivalence(t *testing.T) {
	g := gen.Cycle(17) // odd cycle: overlapping, long-lived wavefronts
	proto, err := multiflood.NewProtocol(g, 0, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	opts := engine.Options{Trace: true}
	ctx := context.Background()
	want, err := engine.Run(ctx, g, proto, opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (engine.Result, error){
		"channels": func() (engine.Result, error) { return chanengine.Run(ctx, g, proto, opts) },
		"fast":     func() (engine.Result, error) { return fastengine.Run(ctx, g, proto, opts) },
		"parallel": func() (engine.Result, error) { return fastengine.RunParallel(ctx, g, proto, opts) },
	} {
		got, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !engine.EqualTraces(want.Trace, got.Trace) {
			t.Errorf("%s: replay trace differs from sequential", name)
		}
	}
}

func TestProtocolRejectsNoOrigins(t *testing.T) {
	if _, err := multiflood.NewProtocol(gen.Cycle(4)); err == nil {
		t.Fatal("no-origin protocol accepted")
	}
}
