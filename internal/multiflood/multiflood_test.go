package multiflood_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/multiflood"
)

func TestRunValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := multiflood.Run(g, nil); err == nil {
		t.Fatal("empty broadcast list accepted")
	}
	if _, err := multiflood.Run(g, []multiflood.Broadcast{{ID: 0, Origin: 0, Start: 0}}); err == nil {
		t.Fatal("start round 0 accepted")
	}
	if _, err := multiflood.Run(g, []multiflood.Broadcast{{ID: 0, Origin: 9, Start: 1}}); err == nil {
		t.Fatal("bad origin accepted")
	}
}

func TestSingleBroadcastEqualsSoloRun(t *testing.T) {
	g := gen.Cycle(9)
	res, err := multiflood.Run(g, multiflood.AllFromOrigins([]graph.NodeID{4}))
	if err != nil {
		t.Fatal(err)
	}
	solo, err := core.Run(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != solo.Rounds() || res.TotalMessages != solo.TotalMessages() {
		t.Fatalf("single broadcast diverged from solo run: %+v vs %d/%d",
			res, solo.Rounds(), solo.TotalMessages())
	}
	if res.MaxEdgeLoad != 1 {
		t.Fatalf("single flood edge load = %d, want 1", res.MaxEdgeLoad)
	}
}

func TestFloodsAreIndependent(t *testing.T) {
	// Property: each broadcast's per-flood result equals its solo run —
	// concurrent floods of distinct messages never interact.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(3+rng.Intn(30), 0.1, rng)
		k := 1 + rng.Intn(4)
		origins := make([]graph.NodeID, k)
		for i := range origins {
			origins[i] = graph.NodeID(rng.Intn(g.N()))
		}
		res, err := multiflood.Run(g, multiflood.AllFromOrigins(origins))
		if err != nil {
			return false
		}
		for i, o := range origins {
			solo, err := core.Run(g, o)
			if err != nil {
				return false
			}
			if res.PerBroadcast[i].Rounds != solo.Rounds() ||
				res.PerBroadcast[i].TotalMessages != solo.TotalMessages() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSimultaneousCongestsMoreThanStaggered(t *testing.T) {
	// Broadcasting from every clique node at once puts k-1 messages on
	// some edge in round 2; staggering with a gap wider than a solo run
	// keeps every edge at load 1.
	g := gen.Complete(8)
	origins := g.Nodes()
	simul, err := multiflood.Run(g, multiflood.AllFromOrigins(origins))
	if err != nil {
		t.Fatal(err)
	}
	stag, err := multiflood.Run(g, multiflood.Staggered(origins, 4)) // solo run takes 3 rounds
	if err != nil {
		t.Fatal(err)
	}
	if simul.MaxEdgeLoad <= stag.MaxEdgeLoad {
		t.Fatalf("simultaneous edge load %d <= staggered %d", simul.MaxEdgeLoad, stag.MaxEdgeLoad)
	}
	if stag.MaxEdgeLoad != 1 {
		t.Fatalf("fully staggered edge load = %d, want 1", stag.MaxEdgeLoad)
	}
	if simul.TotalMessages != stag.TotalMessages {
		t.Fatalf("total messages differ between schedules: %d vs %d",
			simul.TotalMessages, stag.TotalMessages)
	}
	if stag.Rounds <= simul.Rounds {
		t.Fatalf("staggering did not lengthen the makespan: %d vs %d", stag.Rounds, simul.Rounds)
	}
}

func TestLoadProfileSumsToTotal(t *testing.T) {
	g := gen.Grid(4, 4)
	broadcasts := multiflood.Staggered([]graph.NodeID{0, 5, 15}, 2)
	res, err := multiflood.Run(g, broadcasts)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := multiflood.LoadProfile(g, broadcasts)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	peak := 0
	for _, load := range profile {
		sum += load
		if load > peak {
			peak = load
		}
	}
	if sum != res.TotalMessages {
		t.Fatalf("profile sums to %d, want %d", sum, res.TotalMessages)
	}
	if peak != res.MaxRoundLoad {
		t.Fatalf("profile peak %d != MaxRoundLoad %d", peak, res.MaxRoundLoad)
	}
}

func TestStaggeredStartRounds(t *testing.T) {
	bcs := multiflood.Staggered([]graph.NodeID{3, 4, 5}, 5)
	for i, want := range []int{1, 6, 11} {
		if bcs[i].Start != want {
			t.Fatalf("broadcast %d starts at %d, want %d", i, bcs[i].Start, want)
		}
	}
}
