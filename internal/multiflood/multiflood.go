// Package multiflood runs many amnesiac floods concurrently — the paper's
// §1 framing of flooding as "a broadcast mechanism" taken at face value: a
// network where several distinct messages are being flooded at once, each
// following the amnesiac rule independently (a node's forwarding decision
// for message k depends only on who delivered message k this round).
//
// Because the amnesiac rule is per-message, concurrent floods do not
// interact logically: each message's schedule equals its solo run (verified
// by property test). What concurrency changes is *load*: several floods
// crossing the same edge in the same round congest it. The package tracks
// per-edge, per-round load so experiment E16 can compare simultaneous
// versus staggered broadcast, which is exactly the operational question a
// deployment of flooding-as-broadcast would ask.
package multiflood

import (
	"context"
	"fmt"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Broadcast is one message to flood: an identifier, its origin, and the
// round at which its origin starts (1 = immediately; later starts model
// staggered broadcast).
type Broadcast struct {
	ID     int
	Origin graph.NodeID
	Start  int
}

// Result summarises a concurrent multi-flood run.
type Result struct {
	// Rounds is the round in which the last flood died.
	Rounds int
	// TotalMessages sums deliveries over all floods.
	TotalMessages int
	// PerBroadcast holds each flood's own rounds (relative to its start)
	// and message count, index-aligned with the input broadcasts.
	PerBroadcast []engine.Result
	// MaxEdgeLoad is the largest number of distinct messages crossing one
	// directed edge in one round.
	MaxEdgeLoad int
	// MaxRoundLoad is the largest total number of messages in flight in
	// any single round.
	MaxRoundLoad int
}

// Run floods all broadcasts concurrently on g. Each flood is simulated with
// the deterministic engine (their schedules are independent), then the
// per-round loads are superimposed according to the start offsets.
func Run(g *graph.Graph, broadcasts []Broadcast) (Result, error) {
	if len(broadcasts) == 0 {
		return Result{}, fmt.Errorf("multiflood: no broadcasts on %s", g)
	}
	res := Result{PerBroadcast: make([]engine.Result, len(broadcasts))}

	type slot struct {
		round int
		edge  engine.Send
	}
	edgeLoad := map[slot]int{}
	roundLoad := map[int]int{}

	for i, bc := range broadcasts {
		if bc.Start < 1 {
			return Result{}, fmt.Errorf("multiflood: broadcast %d starts at round %d, want >= 1", bc.ID, bc.Start)
		}
		flood, err := core.NewFlood(g, bc.Origin)
		if err != nil {
			return Result{}, fmt.Errorf("multiflood: broadcast %d: %w", bc.ID, err)
		}
		solo, err := engine.Run(context.Background(), g, flood, engine.Options{Trace: true})
		if err != nil {
			return Result{}, fmt.Errorf("multiflood: broadcast %d: %w", bc.ID, err)
		}
		res.PerBroadcast[i] = solo
		res.TotalMessages += solo.TotalMessages
		end := bc.Start - 1 + solo.Rounds
		if end > res.Rounds {
			res.Rounds = end
		}
		for _, rec := range solo.Trace {
			absolute := bc.Start - 1 + rec.Round
			roundLoad[absolute] += len(rec.Sends)
			for _, s := range rec.Sends {
				edgeLoad[slot{round: absolute, edge: s}]++
			}
		}
	}
	for _, load := range edgeLoad {
		if load > res.MaxEdgeLoad {
			res.MaxEdgeLoad = load
		}
	}
	for _, load := range roundLoad {
		if load > res.MaxRoundLoad {
			res.MaxRoundLoad = load
		}
	}
	return res, nil
}

// AllFromOrigins is a convenience constructor: one broadcast per origin,
// all starting in round 1 (fully simultaneous broadcast).
func AllFromOrigins(origins []graph.NodeID) []Broadcast {
	out := make([]Broadcast, len(origins))
	for i, o := range origins {
		out[i] = Broadcast{ID: i, Origin: o, Start: 1}
	}
	return out
}

// Staggered is a convenience constructor: one broadcast per origin, the
// k-th starting gap rounds after the (k-1)-th.
func Staggered(origins []graph.NodeID, gap int) []Broadcast {
	out := make([]Broadcast, len(origins))
	for i, o := range origins {
		out[i] = Broadcast{ID: i, Origin: o, Start: 1 + i*gap}
	}
	return out
}

// LoadProfile reconstructs the total in-flight message count per round for
// a run over the given broadcasts (mirror of the computation in Run,
// exposed for tables and plots).
func LoadProfile(g *graph.Graph, broadcasts []Broadcast) ([]int, error) {
	res, err := Run(g, broadcasts)
	if err != nil {
		return nil, err
	}
	profile := make([]int, res.Rounds+1) // index = round, 0 unused
	for i, bc := range broadcasts {
		for _, rec := range res.PerBroadcast[i].Trace {
			profile[bc.Start-1+rec.Round] += len(rec.Sends)
		}
	}
	return profile, nil
}
