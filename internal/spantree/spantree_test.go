package spantree_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/spantree"
)

func TestBuildOnPath(t *testing.T) {
	tree, err := spantree.Build(gen.Path(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	wantParent := []graph.NodeID{1, 2, 2, 2, 3}
	if !reflect.DeepEqual(tree.Parent, wantParent) {
		t.Fatalf("parents = %v, want %v", tree.Parent, wantParent)
	}
	wantDepth := []int{2, 1, 0, 1, 2}
	if !reflect.DeepEqual(tree.Depth, wantDepth) {
		t.Fatalf("depths = %v, want %v", tree.Depth, wantDepth)
	}
	if err := tree.Validate(gen.Path(5)); err != nil {
		t.Fatal(err)
	}
}

func TestBuildOnTriangle(t *testing.T) {
	// From b, both a and c adopt b; nothing adopts later echoes.
	tree, err := spantree.Build(gen.Cycle(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Parent[0] != 1 || tree.Parent[2] != 1 {
		t.Fatalf("parents = %v, want both 1", tree.Parent)
	}
	if err := tree.Validate(gen.Cycle(3)); err != nil {
		t.Fatal(err)
	}
}

func TestSmallestSenderWinsTies(t *testing.T) {
	// On C4 from node 0, node 2 hears from 1 and 3 simultaneously; the
	// smallest-ID sender must become the parent.
	tree, err := spantree.Build(gen.Cycle(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Parent[2] != 1 {
		t.Fatalf("parent of 2 = %d, want 1 (smallest simultaneous sender)", tree.Parent[2])
	}
}

func TestEdgesAndPathToRoot(t *testing.T) {
	g := gen.Grid(3, 3)
	tree, err := spantree.Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Edges()) != g.N()-1 {
		t.Fatalf("edges = %d, want %d", len(tree.Edges()), g.N()-1)
	}
	path := tree.PathToRoot(8)
	if path[0] != 8 || path[len(path)-1] != 0 {
		t.Fatalf("path = %v", path)
	}
	if len(path)-1 != tree.Depth[8] {
		t.Fatalf("path length %d vs depth %d", len(path)-1, tree.Depth[8])
	}
}

func TestDisconnectedGraphPartialTree(t *testing.T) {
	g, err := graph.FromEdges("", 5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := spantree.Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Reached(3) || tree.Reached(4) {
		t.Fatal("unreachable component marked reached")
	}
	if tree.PathToRoot(4) != nil {
		t.Fatal("path from unreached node")
	}
	if err := tree.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestFromReportRejectsMultiSource(t *testing.T) {
	g := gen.Path(4)
	rep, err := core.Run(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spantree.FromReport(g, rep); !errors.Is(err, spantree.ErrNotSingleSource) {
		t.Fatalf("error = %v, want ErrNotSingleSource", err)
	}
}

func TestTreeIsAlwaysBFSTree(t *testing.T) {
	// Property: on random connected graphs the extracted tree is a valid
	// BFS tree — depths equal BFS distances and all invariants hold.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(50), 0.08, rng)
		root := graph.NodeID(rng.Intn(g.N()))
		tree, err := spantree.Build(g, root)
		if err != nil {
			return false
		}
		if err := tree.Validate(g); err != nil {
			return false
		}
		dist := algo.BFS(g, root)
		for v := 0; v < g.N(); v++ {
			if tree.Depth[v] != dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruptTree(t *testing.T) {
	g := gen.Path(4)
	tree, err := spantree.Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree.Parent[3] = 0 // not a graph edge to 3
	if err := tree.Validate(g); err == nil {
		t.Fatal("corrupt parent accepted")
	}
	tree2, err := spantree.Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree2.Depth[2] = 5 // breaks the depth rule
	if err := tree2.Validate(g); err == nil {
		t.Fatal("corrupt depth accepted")
	}
}
