package spantree_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/spantree"
)

// TestRecorderMatchesFromReport: the streaming recorder must build exactly
// the tree FromReport reads off a full trace, on bipartite and
// non-bipartite instances alike.
func TestRecorderMatchesFromReport(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	graphs := []*graph.Graph{
		gen.Path(20), gen.Cycle(21), gen.Grid(7, 7),
		gen.Petersen(), gen.RandomConnected(80, 0.05, rng),
	}
	for _, g := range graphs {
		root := graph.NodeID(rng.Intn(g.N()))
		rep, err := core.Run(g, root)
		if err != nil {
			t.Fatal(err)
		}
		want, err := spantree.FromReport(g, rep)
		if err != nil {
			t.Fatal(err)
		}
		got, err := spantree.Build(g, root)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s from %d: streaming tree differs from trace-derived tree", g, root)
		}
	}
}

// TestRecorderStopsEarlyOnNonBipartite: on an odd cycle the tree is
// complete at round ~n/2 while the flood runs past the diameter; the
// recorder must stop the run before the flood dies.
func TestRecorderStopsEarlyOnNonBipartite(t *testing.T) {
	g := gen.Cycle(31)
	full, err := core.Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := spantree.NewRecorder(g, 0)
	flood, err := core.NewFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(context.Background(), g, flood, engine.Options{Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("recorder did not stop the run")
	}
	if res.Rounds >= full.Rounds() {
		t.Fatalf("recorder stopped at round %d, full flood runs %d — no early stop", res.Rounds, full.Rounds())
	}
	if err := rec.Tree().Validate(g); err != nil {
		t.Fatalf("early-stopped tree invalid: %v", err)
	}
}
