// Package spantree extracts rooted spanning trees from amnesiac-flooding
// executions. The paper opens by quoting Aspnes: flooding "gives you both a
// broadcast mechanism and a way to build rooted spanning trees"; this
// package shows the amnesiac variant keeps that byproduct, even though
// nodes themselves remember nothing — the tree is read off the execution
// trace by an external observer (or, in a deployment, by each node
// remembering only its first sender, which is exactly the one bit of state
// amnesiac flooding itself refuses to keep).
//
// The parent of node v is the smallest-ID neighbour that delivered M to v
// in v's first receipt round. Because first receipts happen exactly at BFS
// distance from the source (the flood's wavefront moves at speed one), the
// result is always a BFS tree: every tree edge joins consecutive BFS
// layers.
package spantree

import (
	"context"
	"errors"
	"fmt"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/sim"
)

// init self-registers the spanning-tree probe with the sim façade's
// protocol registry: a single-root amnesiac flood under its probe name
// (the tree is read off the trace by a Recorder or FromReport).
func init() {
	sim.Register("spantree", func(spec sim.Spec) (engine.Protocol, error) {
		if len(spec.Origins) != 1 {
			return nil, fmt.Errorf("spantree: the rooted-tree probe needs exactly one root, got %d", len(spec.Origins))
		}
		flood, err := core.NewFlood(spec.Graph, spec.Origins...)
		if err != nil {
			return nil, err
		}
		return sim.Rename(flood, "spantree-probe"), nil
	})
}

// ErrNotSingleSource is returned for reports with more than one origin;
// the rooted-tree notion needs a single root.
var ErrNotSingleSource = errors.New("spanning tree extraction needs a single-source run")

// Tree is a rooted spanning tree (or forest restricted to the root's
// component) extracted from a flood.
type Tree struct {
	Root graph.NodeID
	// Parent[v] is v's tree parent; the root and unreached nodes are
	// their own parent.
	Parent []graph.NodeID
	// Depth[v] is the tree depth (root = 0); unreached nodes have -1.
	Depth []int
}

// FromReport extracts the tree from an analysed single-source run.
func FromReport(g *graph.Graph, rep *core.Report) (*Tree, error) {
	if len(rep.Origins) != 1 {
		return nil, ErrNotSingleSource
	}
	root := rep.Origins[0]
	tree := &Tree{
		Root:   root,
		Parent: make([]graph.NodeID, g.N()),
		Depth:  make([]int, g.N()),
	}
	for v := range tree.Parent {
		tree.Parent[v] = graph.NodeID(v)
		tree.Depth[v] = -1
	}
	tree.Depth[root] = 0

	for _, rec := range rep.Result.Trace {
		for _, s := range rec.Sends {
			v := s.To
			if tree.Depth[v] != -1 {
				continue // already adopted in an earlier round
			}
			if rec.Round != rep.FirstReceive[v] {
				continue
			}
			// Sends are sorted by (From, To), so the first matching
			// sender is the smallest-ID one.
			tree.Parent[v] = s.From
			tree.Depth[v] = rec.Round
		}
	}
	return tree, nil
}

// Build extracts the tree from a flood from root, streaming: the flood
// runs under a Recorder observer that adopts parents round by round and
// stops the run the moment the tree is complete — on non-bipartite graphs
// that is before the flood dies, so Build does strictly less work than a
// full run.
func Build(g *graph.Graph, root graph.NodeID) (*Tree, error) {
	rec := NewRecorder(g, root)
	flood, err := core.NewFlood(g, root)
	if err != nil {
		return nil, fmt.Errorf("spantree: flood: %w", err)
	}
	if _, err := engine.Run(context.Background(), g, flood, engine.Options{Observer: rec}); err != nil {
		return nil, fmt.Errorf("spantree: flood: %w", err)
	}
	return rec.Tree(), nil
}

// Recorder builds the spanning tree incrementally from a round stream, as
// an engine.RoundObserver: node v is adopted on its first receipt round by
// the smallest-ID sender of that round (sends arrive sorted by (From, To),
// so the first sender seen is the smallest), exactly FromReport's rule.
// Once every node is reached the observer stops the run early.
type Recorder struct {
	tree      *Tree
	remaining int
}

var _ engine.RoundObserver = (*Recorder)(nil)

// NewRecorder returns a recorder for a flood rooted at root on g.
func NewRecorder(g *graph.Graph, root graph.NodeID) *Recorder {
	tree := &Tree{
		Root:   root,
		Parent: make([]graph.NodeID, g.N()),
		Depth:  make([]int, g.N()),
	}
	for v := range tree.Parent {
		tree.Parent[v] = graph.NodeID(v)
		tree.Depth[v] = -1
	}
	tree.Depth[root] = 0
	return &Recorder{tree: tree, remaining: g.N() - 1}
}

// ObserveRound implements engine.RoundObserver, adopting first-time
// receivers and stopping once the tree spans the graph.
func (r *Recorder) ObserveRound(rec engine.RoundRecord) (bool, error) {
	for _, s := range rec.Sends {
		v := s.To
		if r.tree.Depth[v] != -1 {
			continue // already adopted; same-round later senders are larger
		}
		r.tree.Parent[v] = s.From
		r.tree.Depth[v] = rec.Round
		r.remaining--
	}
	return r.remaining == 0, nil
}

// Tree returns the tree built so far (complete once the observed flood
// reached every node).
func (r *Recorder) Tree() *Tree { return r.tree }

// Edges returns the tree edges (parent, child), sorted by child.
func (t *Tree) Edges() []graph.Edge {
	var edges []graph.Edge
	for v, p := range t.Parent {
		if graph.NodeID(v) != p {
			edges = append(edges, graph.Edge{U: p, V: graph.NodeID(v)})
		}
	}
	return edges
}

// Reached reports whether v is in the root's component.
func (t *Tree) Reached(v graph.NodeID) bool {
	return t.Depth[v] >= 0
}

// PathToRoot returns the node sequence from v up to the root, inclusive.
// It returns nil for unreached nodes.
func (t *Tree) PathToRoot(v graph.NodeID) []graph.NodeID {
	if !t.Reached(v) {
		return nil
	}
	path := []graph.NodeID{v}
	for v != t.Root {
		v = t.Parent[v]
		path = append(path, v)
	}
	return path
}

// Validate checks the structural invariants: tree edges are graph edges,
// depths decrease by exactly one toward the root, every reached non-root
// node has a reached parent, and the edge count matches the reached count.
func (t *Tree) Validate(g *graph.Graph) error {
	reached, edges := 0, 0
	for v := 0; v < g.N(); v++ {
		node := graph.NodeID(v)
		if !t.Reached(node) {
			continue
		}
		reached++
		if node == t.Root {
			if t.Depth[v] != 0 {
				return fmt.Errorf("spantree: root depth %d", t.Depth[v])
			}
			continue
		}
		edges++
		p := t.Parent[v]
		if !g.HasEdge(p, node) {
			return fmt.Errorf("spantree: tree edge (%d,%d) is not a graph edge", p, node)
		}
		if !t.Reached(p) || t.Depth[p] != t.Depth[v]-1 {
			return fmt.Errorf("spantree: node %d depth %d but parent %d depth %d",
				node, t.Depth[v], p, t.Depth[p])
		}
	}
	if edges != reached-1 {
		return fmt.Errorf("spantree: %d edges for %d reached nodes", edges, reached)
	}
	return nil
}
