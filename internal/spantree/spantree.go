// Package spantree extracts rooted spanning trees from amnesiac-flooding
// executions. The paper opens by quoting Aspnes: flooding "gives you both a
// broadcast mechanism and a way to build rooted spanning trees"; this
// package shows the amnesiac variant keeps that byproduct, even though
// nodes themselves remember nothing — the tree is read off the execution
// trace by an external observer (or, in a deployment, by each node
// remembering only its first sender, which is exactly the one bit of state
// amnesiac flooding itself refuses to keep).
//
// The parent of node v is the smallest-ID neighbour that delivered M to v
// in v's first receipt round. Because first receipts happen exactly at BFS
// distance from the source (the flood's wavefront moves at speed one), the
// result is always a BFS tree: every tree edge joins consecutive BFS
// layers.
package spantree

import (
	"context"
	"errors"
	"fmt"

	"amnesiacflood/internal/analysis"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/sim"
)

// init self-registers the spanning-tree probe with the sim façade's
// protocol registry: a single-root amnesiac flood under its probe name
// (the tree is read off the trace by a Recorder or FromReport).
func init() {
	sim.Register("spantree", func(spec sim.Spec) (engine.Protocol, error) {
		if len(spec.Origins) != 1 {
			return nil, fmt.Errorf("spantree: the rooted-tree probe needs exactly one root, got %d", len(spec.Origins))
		}
		flood, err := core.NewFlood(spec.Graph, spec.Origins...)
		if err != nil {
			return nil, err
		}
		return sim.Rename(flood, "spantree-probe"), nil
	})
}

// ErrNotSingleSource is returned for reports with more than one origin;
// the rooted-tree notion needs a single root.
var ErrNotSingleSource = errors.New("spanning tree extraction needs a single-source run")

// Tree is a rooted spanning tree (or forest restricted to the root's
// component) extracted from a flood. It is an alias of the analysis
// package's artifact type — the streaming "spantree" analysis
// (sim.WithAnalysis("spantree")) produces the same trees this package's
// Recorder and FromReport do, asserted by differential tests.
type Tree = analysis.Tree

// FromReport extracts the tree from an analysed single-source run.
func FromReport(g *graph.Graph, rep *core.Report) (*Tree, error) {
	if len(rep.Origins) != 1 {
		return nil, ErrNotSingleSource
	}
	root := rep.Origins[0]
	tree := &Tree{
		Root:   root,
		Parent: make([]graph.NodeID, g.N()),
		Depth:  make([]int, g.N()),
	}
	for v := range tree.Parent {
		tree.Parent[v] = graph.NodeID(v)
		tree.Depth[v] = -1
	}
	tree.Depth[root] = 0

	for _, rec := range rep.Result.Trace {
		for _, s := range rec.Sends {
			v := s.To
			if tree.Depth[v] != -1 {
				continue // already adopted in an earlier round
			}
			if rec.Round != rep.FirstReceive[v] {
				continue
			}
			// Sends are sorted by (From, To), so the first matching
			// sender is the smallest-ID one.
			tree.Parent[v] = s.From
			tree.Depth[v] = rec.Round
		}
	}
	return tree, nil
}

// Build extracts the tree from a flood from root, streaming: the flood
// runs under a Recorder observer that adopts parents round by round and
// stops the run the moment the tree is complete — on non-bipartite graphs
// that is before the flood dies, so Build does strictly less work than a
// full run.
func Build(g *graph.Graph, root graph.NodeID) (*Tree, error) {
	rec := NewRecorder(g, root)
	flood, err := core.NewFlood(g, root)
	if err != nil {
		return nil, fmt.Errorf("spantree: flood: %w", err)
	}
	if _, err := engine.Run(context.Background(), g, flood, engine.Options{Observer: rec}); err != nil {
		return nil, fmt.Errorf("spantree: flood: %w", err)
	}
	return rec.Tree(), nil
}

// Recorder builds the spanning tree incrementally from a round stream, as
// an engine.RoundObserver: node v is adopted on its first receipt round by
// the smallest-ID sender of that round (sends arrive sorted by (From, To),
// so the first sender seen is the smallest), exactly FromReport's rule.
// Once every node is reached the observer stops the run early.
type Recorder struct {
	tree      *Tree
	remaining int
}

var _ engine.RoundObserver = (*Recorder)(nil)

// NewRecorder returns a recorder for a flood rooted at root on g.
func NewRecorder(g *graph.Graph, root graph.NodeID) *Recorder {
	tree := &Tree{
		Root:   root,
		Parent: make([]graph.NodeID, g.N()),
		Depth:  make([]int, g.N()),
	}
	for v := range tree.Parent {
		tree.Parent[v] = graph.NodeID(v)
		tree.Depth[v] = -1
	}
	tree.Depth[root] = 0
	return &Recorder{tree: tree, remaining: g.N() - 1}
}

// ObserveRound implements engine.RoundObserver, adopting first-time
// receivers and stopping once the tree spans the graph.
func (r *Recorder) ObserveRound(rec engine.RoundRecord) (bool, error) {
	for _, s := range rec.Sends {
		v := s.To
		if r.tree.Depth[v] != -1 {
			continue // already adopted; same-round later senders are larger
		}
		r.tree.Parent[v] = s.From
		r.tree.Depth[v] = rec.Round
		r.remaining--
	}
	return r.remaining == 0, nil
}

// Tree returns the tree built so far (complete once the observed flood
// reached every node).
func (r *Recorder) Tree() *Tree { return r.tree }
