package scenario

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
)

// Result is the outcome of one spec's run. Every field except WallMicros is
// a deterministic function of the Spec, so suites executed under any worker
// count agree result-for-result once order-normalised by Spec ID.
type Result struct {
	// Spec identifies the run.
	Spec Spec `json:"spec"`
	// N and M record the built graph's size, attributing results to the
	// exact instance even for seeded random families.
	N int `json:"n"`
	M int `json:"m"`
	// Rounds, TotalMessages, Lost, Terminated, and Stopped mirror
	// engine.Result.
	Rounds        int  `json:"rounds"`
	TotalMessages int  `json:"totalMessages"`
	Lost          int  `json:"lost,omitempty"`
	Terminated    bool `json:"terminated"`
	Stopped       bool `json:"stopped,omitempty"`
	// Outcome is the run's verdict ("terminated",
	// "non-termination-certified", "round-limit"); CycleStart/CycleLength
	// describe the certificate when the outcome is a certified cycle.
	Outcome     string `json:"outcome,omitempty"`
	CycleStart  int    `json:"cycleStart,omitempty"`
	CycleLength int    `json:"cycleLength,omitempty"`
	// Metrics holds the merged streaming-analysis metrics of the run
	// ("<family>.<metric>" keys), present when the spec attaches analyses.
	// Metric values are deterministic functions of the Spec, like every
	// other outcome field.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// WallMicros is the wall-clock run time in microseconds. It is the
	// one nondeterministic field; comparisons must ignore it.
	WallMicros int64 `json:"wallMicros"`
	// Err carries the run error, if any; errored runs leave the outcome
	// fields (Rounds, TotalMessages, ...) zero, and N/M too when the
	// failure precedes graph construction. A failed run does not abort
	// the suite.
	Err string `json:"err,omitempty"`
}

// Runner executes a suite of specs over a bounded worker pool. The zero
// value is usable: DefaultWorkers workers and no sink.
type Runner struct {
	// Workers bounds the pool; <= 0 means DefaultWorkers.
	Workers int
	// Sink, when non-nil, receives every Result as it completes.
	// Completion order is nondeterministic under more than one worker;
	// Write calls are serialised by the runner, so sinks need no locking
	// of their own.
	Sink Sink
}

// DefaultWorkers is the pool bound used when Runner.Workers is zero:
// GOMAXPROCS capped at 8 (the parallel engine shards each single run
// further, so wider suite pools mostly fight it for cores).
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// group is the unit of work handed to a pool worker: all specs sharing a
// graph, protocol, engine, seed, params, and round limit. One group = one
// built graph and one sim.Session, so the fast engines amortise their
// arenas across the group's runs via sim.RunBatch.
type group struct {
	key   string
	specs []Spec
}

// groupKey buckets specs that can share a Session (everything but origins
// and rep).
func groupKey(s Spec) string {
	return Spec{Graph: s.Graph, Protocol: s.Protocol, Engine: s.Engine,
		Model: s.Model, Analyses: s.Analyses, Seed: s.Seed, Params: s.Params,
		MaxRounds: s.MaxRounds}.ID()
}

// Run executes every spec and returns the results sorted by Spec ID (the
// order-normalised form). Individual run failures are recorded in
// Result.Err and do not abort the suite; Run itself fails only on context
// cancellation or a sink write error — either cancels the remaining work —
// returning the results completed so far.
func (r *Runner) Run(ctx context.Context, specs []Spec) ([]Result, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Bucket specs into session-sharing groups, preserving first-seen
	// order so sequential execution (workers=1) follows the suite order.
	var groups []*group
	index := map[string]*group{}
	for _, s := range specs {
		key := groupKey(s)
		grp, ok := index[key]
		if !ok {
			grp = &group{key: key}
			index[key] = grp
			groups = append(groups, grp)
		}
		grp.specs = append(grp.specs, s)
	}
	if workers > len(groups) && len(groups) > 0 {
		workers = len(groups)
	}

	jobs := make(chan *group)
	resultCh := make(chan Result)
	cache := newGraphCache()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for grp := range jobs {
				runGroup(runCtx, grp, cache, resultCh)
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, grp := range groups {
			select {
			case jobs <- grp:
			case <-runCtx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(resultCh)
	}()

	results := make([]Result, 0, len(specs))
	var sinkErr error
	for res := range resultCh {
		results = append(results, res)
		if r.Sink != nil && sinkErr == nil {
			if err := r.Sink.Write(res); err != nil {
				sinkErr = fmt.Errorf("scenario: sink: %w", err)
				cancel() // stop the remaining work; keep draining resultCh
			}
		}
	}
	sortByID(results)
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, sinkErr
}

// sortByID order-normalises results by Spec ID, computing each key once
// up front instead of inside the comparator (Spec.ID allocates): results
// are sorted indirectly through a keyed index and permuted into place.
func sortByID(results []Result) {
	type keyed struct {
		key   string
		index int
	}
	keys := make([]keyed, len(results))
	for i := range results {
		keys[i] = keyed{key: results[i].Spec.ID(), index: i}
	}
	slices.SortFunc(keys, func(a, b keyed) int { return strings.Compare(a.key, b.key) })
	sorted := make([]Result, len(results))
	for i, k := range keys {
		sorted[i] = results[k.index]
	}
	copy(results, sorted)
}

// graphCache builds each distinct (spec, seed) instance exactly once and
// shares it across groups — a graph swept over P protocols and E engines
// forms P*E groups but is constructed a single time. Graphs are immutable,
// so cross-worker sharing is safe.
type graphCache struct {
	mu      sync.Mutex
	entries map[string]*graphEntry
}

type graphEntry struct {
	once sync.Once
	g    *graph.Graph
	err  error
}

func newGraphCache() *graphCache {
	return &graphCache{entries: map[string]*graphEntry{}}
}

// build returns the cached instance for (spec, seed), constructing it on
// first use. Deterministic families ignore the seed (the registry
// guarantees it), so they are keyed and built once per spec regardless of
// the suite's seed axis. Distinct instances still build concurrently on
// distinct workers; only duplicates wait.
func (c *graphCache) build(spec string, seed int64) (*graph.Graph, error) {
	key := spec
	if famName, _, _ := strings.Cut(spec, ":"); famName != "" {
		if fam, ok := gen.Lookup(famName); ok && fam.Random {
			key = fmt.Sprintf("%s|%d", spec, seed)
		}
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &graphEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.g, e.err = gen.Build(spec, seed) })
	return e.g, e.err
}

// runGroup executes one group's specs on a shared graph and Session,
// emitting one Result per spec.
func runGroup(ctx context.Context, grp *group, cache *graphCache, out chan<- Result) {
	emit := func(res Result) bool {
		select {
		case out <- res:
			return true
		case <-ctx.Done():
			return false
		}
	}
	// n/m are stamped onto every Result once the graph exists, so failure
	// rows after construction still attribute to the instance size.
	var n, m int
	fail := func(specs []Spec, err error) {
		for _, s := range specs {
			if !emit(Result{Spec: s, N: n, M: m, Err: err.Error()}) {
				return
			}
		}
	}
	head := grp.specs[0]
	g, err := cache.build(head.Graph, head.Seed)
	if err != nil {
		fail(grp.specs, err)
		return
	}
	n, m = g.N(), g.M()
	kind, err := sim.ParseEngine(head.Engine)
	if err != nil {
		fail(grp.specs, err)
		return
	}

	// Partition: single-origin specs share one Session through RunBatch
	// (arena reuse); multi-origin specs each need their own protocol
	// instance and run individually on the shared graph.
	var batch []Spec
	var solo []Spec
	for _, s := range grp.specs {
		if err := badOrigin(g, s.Origins); err != nil {
			if !emit(Result{Spec: s, N: n, M: m, Err: err.Error()}) {
				return
			}
			continue
		}
		if len(s.Origins) <= 1 {
			batch = append(batch, s)
		} else {
			solo = append(solo, s)
		}
	}

	if len(batch) > 0 {
		opts := sessionOptions(head, kind)
		sess, err := sim.New(g, append(opts, sim.WithOrigins(originOf(batch[0])))...)
		if err != nil {
			fail(append(batch, solo...), err)
			return
		}
		for _, s := range batch {
			if ctx.Err() != nil {
				return
			}
			res, runErr := sess.RunBatch(ctx, []graph.NodeID{originOf(s)})
			out1 := Result{Spec: s, N: g.N(), M: g.M()}
			if runErr != nil {
				out1.Err = runErr.Error()
			} else {
				out1.fill(res[0])
			}
			if !emit(out1) {
				return
			}
		}
	}
	for _, s := range solo {
		if ctx.Err() != nil {
			return
		}
		out1 := Result{Spec: s, N: g.N(), M: g.M()}
		sess, err := sim.New(g, append(sessionOptions(s, kind), sim.WithOrigins(s.Origins...))...)
		if err != nil {
			out1.Err = err.Error()
		} else if res, runErr := sess.Run(ctx); runErr != nil {
			out1.Err = runErr.Error()
		} else {
			out1.fill(res)
		}
		if !emit(out1) {
			return
		}
	}
}

// fill copies one engine result into the scenario result row.
func (out *Result) fill(r engine.Result) {
	out.Rounds, out.TotalMessages, out.Lost = r.Rounds, r.TotalMessages, r.Lost
	out.Terminated, out.Stopped = r.Terminated, r.Stopped
	out.Outcome = r.Outcome.String()
	if r.Certificate != nil {
		out.CycleStart, out.CycleLength = r.Certificate.Start, r.Certificate.Length
	}
	out.Metrics = r.Metrics
	out.WallMicros = r.WallTime.Microseconds()
}

// sessionOptions assembles the shared sim options of a spec (origins are
// appended by the caller).
func sessionOptions(s Spec, kind sim.EngineKind) []sim.Option {
	opts := []sim.Option{
		sim.WithProtocol(s.Protocol),
		sim.WithEngine(kind),
		sim.WithSeed(s.Seed),
		sim.WithMaxRounds(s.MaxRounds),
	}
	if s.Model != "" {
		opts = append(opts, sim.WithModel(s.Model))
	}
	if len(s.Analyses) > 0 {
		opts = append(opts, sim.WithAnalysis(s.Analyses...))
	}
	for k, v := range s.Params {
		opts = append(opts, sim.WithParam(k, v))
	}
	return opts
}

// originOf returns a spec's single origin, defaulting to node 0.
func originOf(s Spec) graph.NodeID {
	if len(s.Origins) == 0 {
		return 0
	}
	return s.Origins[0]
}

// badOrigin reports the first origin outside the graph, or nil.
func badOrigin(g *graph.Graph, origins []graph.NodeID) error {
	for _, o := range origins {
		if !g.HasNode(o) {
			return fmt.Errorf("origin %d is not a node of %s", o, g)
		}
	}
	return nil
}
