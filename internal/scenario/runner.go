package scenario

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"slices"
	"strings"
	"sync"
	"time"

	"amnesiacflood/internal/chaos"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
)

// Result is the outcome of one spec's run. Every field except WallMicros
// (and, under retries, Attempts) is a deterministic function of the Spec, so
// suites executed under any worker count agree result-for-result once
// order-normalised by Spec ID.
type Result struct {
	// Spec identifies the run.
	Spec Spec `json:"spec"`
	// N and M record the built graph's size, attributing results to the
	// exact instance even for seeded random families.
	N int `json:"n"`
	M int `json:"m"`
	// Rounds, TotalMessages, Lost, Terminated, and Stopped mirror
	// engine.Result.
	Rounds        int  `json:"rounds"`
	TotalMessages int  `json:"totalMessages"`
	Lost          int  `json:"lost,omitempty"`
	Terminated    bool `json:"terminated"`
	Stopped       bool `json:"stopped,omitempty"`
	// Outcome is the run's verdict ("terminated",
	// "non-termination-certified", "round-limit", or the scenario-level
	// "timeout" when the watchdog expired every attempt);
	// CycleStart/CycleLength describe the certificate when the outcome is a
	// certified cycle.
	Outcome     string `json:"outcome,omitempty"`
	CycleStart  int    `json:"cycleStart,omitempty"`
	CycleLength int    `json:"cycleLength,omitempty"`
	// Metrics holds the merged streaming-analysis metrics of the run
	// ("<family>.<metric>" keys), present when the spec attaches analyses.
	// Metric values are deterministic functions of the Spec, like every
	// other outcome field.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Attempts counts the run attempts this row consumed: 1 without faults,
	// more when transient failures (timeouts, injected faults, panics, run
	// errors) were retried. Rows that failed before any run attempt (bad
	// origin, graph-build failure) report 0. Like WallMicros it is execution
	// bookkeeping, not part of the deterministic outcome; order-normalised
	// comparisons zero it.
	Attempts int `json:"attempts,omitempty"`
	// WallMicros is the wall-clock run time in microseconds. It is
	// nondeterministic; comparisons must ignore it.
	WallMicros int64 `json:"wallMicros"`
	// Err carries the run error, if any; errored runs leave the outcome
	// fields (Rounds, TotalMessages, ...) zero, and N/M too when the
	// failure precedes graph construction. A failed run does not abort
	// the suite — a recovered panic, a timeout, or an exhausted retry
	// budget all degrade to an error row.
	Err string `json:"err,omitempty"`
}

// Runner executes a suite of specs over a bounded worker pool. The zero
// value is usable: DefaultWorkers workers, no sink, no watchdog, no retries.
type Runner struct {
	// Workers bounds the pool; <= 0 means DefaultWorkers.
	Workers int
	// Sink, when non-nil, receives every Result as it completes.
	// Completion order is nondeterministic under more than one worker;
	// Write calls are serialised by the runner, so sinks need no locking
	// of their own.
	Sink Sink
	// RunTimeout, when positive, bounds every run attempt with a derived
	// deadline (Spec.Timeout overrides it per spec). Engines observe the
	// deadline at round granularity, so a runaway round loop — a
	// non-terminating model without MaxRounds, say — becomes a Result row
	// with Outcome "timeout" instead of a hung worker. A protocol that
	// blocks inside a single round callback still blocks its worker until
	// the callback returns.
	RunTimeout time.Duration
	// Retries is how many times a transiently failed run attempt is retried
	// (total attempts = Retries + 1). Transient failures are timeouts,
	// chaos-injected faults, recovered panics, and run-stage errors;
	// deterministic spec failures (unparseable graph, bad origin, session
	// construction) are never retried.
	Retries int
	// Backoff is the base delay of the capped exponential backoff between
	// attempts (attempt n waits base << (n-1), capped at 64x base, scaled
	// by a jitter in [0.5, 1.5) seeded from the spec). <= 0 means 10ms.
	Backoff time.Duration
	// Chaos, when non-nil, injects deterministic faults at the run and
	// graph-build points of every attempt — the fault-injection harness the
	// differential chaos gate drives (see internal/chaos).
	Chaos *chaos.Injector
	// Metrics, when non-nil, records attempts, retries, backoff sleeps,
	// timeouts, recovered panics, chaos faults, emitted rows, and phase
	// timings into an obs registry (see NewTelemetry). Recording is
	// read-only with respect to the rows themselves: metrics-on output is
	// byte-identical to metrics-off output.
	Metrics *Telemetry
}

// DefaultWorkers is the pool bound used when Runner.Workers is zero:
// GOMAXPROCS capped at 8 (the parallel engine shards each single run
// further, so wider suite pools mostly fight it for cores).
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// defaultBackoff is the base retry delay when Runner.Backoff is unset.
const defaultBackoff = 10 * time.Millisecond

// runConfig is the per-suite slice of Runner the workers need.
type runConfig struct {
	timeout time.Duration
	retries int
	backoff time.Duration
	chaos   *chaos.Injector
	tel     *Telemetry // nil when the suite runs without metrics
}

// group is the unit of work handed to a pool worker: all specs sharing a
// graph, protocol, engine, seed, params, and round limit. One group = one
// built graph and one sim.Session, so the fast engines amortise their
// arenas across the group's runs via sim.RunBatch.
type group struct {
	key   string
	specs []Spec
}

// groupKey buckets specs that can share a Session (everything but origins,
// rep, and the per-spec timeout override — deadlines are per run, so they
// do not split sessions).
func groupKey(s Spec) string {
	return Spec{Graph: s.Graph, Protocol: s.Protocol, Engine: s.Engine,
		Model: s.Model, Analyses: s.Analyses, Seed: s.Seed, Params: s.Params,
		MaxRounds: s.MaxRounds}.ID()
}

// GroupKey exposes the runner's session-sharing partition: specs with equal
// keys share one built graph and one sim.Session (and hence fast-engine
// arenas) when executed together. It is the natural unit of distributed
// work — internal/shard leases whole groups to shard workers so each lease
// keeps the runner's arena-reuse locality.
func GroupKey(s Spec) string { return groupKey(s) }

// Run executes every spec and returns the results sorted by Spec ID (the
// order-normalised form). Individual run failures — including recovered
// panics, expired watchdogs, and exhausted retry budgets — are recorded in
// Result.Err and do not abort the suite; Run itself fails only on context
// cancellation or a sink write error — either cancels the remaining work —
// returning the results completed so far (still sorted). When both happen,
// the returned error joins them.
func (r *Runner) Run(ctx context.Context, specs []Spec) ([]Result, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	cfg := runConfig{timeout: r.RunTimeout, retries: r.Retries, backoff: r.Backoff, chaos: r.Chaos, tel: r.Metrics}
	if cfg.retries < 0 {
		cfg.retries = 0
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Bucket specs into session-sharing groups, preserving first-seen
	// order so sequential execution (workers=1) follows the suite order.
	var groups []*group
	index := map[string]*group{}
	for _, s := range specs {
		key := groupKey(s)
		grp, ok := index[key]
		if !ok {
			grp = &group{key: key}
			index[key] = grp
			groups = append(groups, grp)
		}
		grp.specs = append(grp.specs, s)
	}
	if workers > len(groups) && len(groups) > 0 {
		workers = len(groups)
	}

	jobs := make(chan *group)
	resultCh := make(chan Result)
	cache := newGraphCache()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for grp := range jobs {
				runGroup(runCtx, grp, cache, cfg, resultCh)
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, grp := range groups {
			select {
			case jobs <- grp:
			case <-runCtx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(resultCh)
	}()

	results := make([]Result, 0, len(specs))
	var sinkErr error
	for res := range resultCh {
		results = append(results, res)
		cfg.tel.row(&res)
		if r.Sink != nil && sinkErr == nil {
			var sinkStart time.Time
			if cfg.tel != nil {
				sinkStart = time.Now()
			}
			err := r.Sink.Write(res)
			if cfg.tel != nil {
				cfg.tel.sinkWrite(time.Since(sinkStart))
			}
			if err != nil {
				sinkErr = fmt.Errorf("scenario: sink: %w", err)
				cancel() // stop the remaining work; keep draining resultCh
			}
		}
	}
	sortByID(results)
	// Surface both failure modes: a cancelled suite whose sink also broke
	// must not mask the sink error behind ctx.Err().
	return results, errors.Join(ctx.Err(), sinkErr)
}

// SortResults order-normalises results in place by Spec ID — the canonical
// order every suite comparison (and the shard coordinator's merge) uses.
func SortResults(results []Result) { sortByID(results) }

// sortByID order-normalises results by Spec ID, computing each key once
// up front instead of inside the comparator (Spec.ID allocates): results
// are sorted indirectly through a keyed index and permuted into place.
func sortByID(results []Result) {
	type keyed struct {
		key   string
		index int
	}
	keys := make([]keyed, len(results))
	for i := range results {
		keys[i] = keyed{key: results[i].Spec.ID(), index: i}
	}
	slices.SortFunc(keys, func(a, b keyed) int { return strings.Compare(a.key, b.key) })
	sorted := make([]Result, len(results))
	for i, k := range keys {
		sorted[i] = results[k.index]
	}
	copy(results, sorted)
}

// graphCache builds each distinct (spec, seed) instance exactly once and
// shares it across groups — a graph swept over P protocols and E engines
// forms P*E groups but is constructed a single time. Graphs are immutable,
// so cross-worker sharing is safe.
type graphCache struct {
	mu      sync.Mutex
	entries map[string]*graphEntry
}

type graphEntry struct {
	once sync.Once
	g    *graph.Graph
	err  error
}

func newGraphCache() *graphCache {
	return &graphCache{entries: map[string]*graphEntry{}}
}

// build returns the cached instance for (spec, seed), constructing it on
// first use. Deterministic families ignore the seed (the registry
// guarantees it), so they are keyed and built once per spec regardless of
// the suite's seed axis. Distinct instances still build concurrently on
// distinct workers; only duplicates wait.
func (c *graphCache) build(spec string, seed int64) (*graph.Graph, error) {
	key := spec
	if famName, _, _ := strings.Cut(spec, ":"); famName != "" {
		if fam, ok := gen.Lookup(famName); ok && fam.Random {
			key = fmt.Sprintf("%s|%d", spec, seed)
		}
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &graphEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.g, e.err = gen.Build(spec, seed) })
	return e.g, e.err
}

// panicError is a panic recovered at a runner isolation boundary, carrying
// the panic value and a trimmed stack into the error row.
type panicError struct {
	value any
	stack string
}

// newPanicError captures the recovered value and the current (trimmed)
// stack.
func newPanicError(v any) *panicError {
	return &panicError{value: v, stack: trimStack(debug.Stack())}
}

// Error renders "panic: <value>" followed by the trimmed stack.
func (e *panicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.value, e.stack)
}

// injected reports whether the panic was thrown by the chaos harness.
func (e *panicError) injected() bool {
	_, ok := e.value.(chaos.InjectedPanic)
	return ok
}

// maxStackLines bounds the stack carried into an error row — enough to
// locate the crash, small enough to keep JSONL rows readable.
const maxStackLines = 16

// trimStack keeps the head of a debug.Stack dump.
func trimStack(stack []byte) string {
	lines := strings.Split(strings.TrimRight(string(stack), "\n"), "\n")
	if len(lines) <= maxStackLines {
		return strings.Join(lines, "\n")
	}
	return strings.Join(lines[:maxStackLines], "\n") + "\n\t... (stack trimmed)"
}

// errRunTimeout marks a run attempt killed by the watchdog, matchable with
// errors.Is; the emitting row gets Outcome "timeout".
var errRunTimeout = errors.New("run timed out")

// execute runs one spec's execution function under the watchdog deadline,
// chaos injection, panic recovery, and the retry policy, returning the
// result, the attempts consumed, and the final error (nil on success,
// errRunTimeout-wrapped when every attempt timed out, the parent context
// error when the suite was cancelled mid-attempt — callers must not emit a
// row for that case).
func (cfg runConfig) execute(ctx context.Context, s Spec, run func(context.Context) (engine.Result, error)) (engine.Result, int, error) {
	id := s.ID()
	timeout := cfg.timeout
	if s.Timeout > 0 {
		timeout = s.Timeout
	}
	for attempt := 1; ; attempt++ {
		runCtx, cancelRun := ctx, context.CancelFunc(func() {})
		if timeout > 0 {
			runCtx, cancelRun = context.WithTimeout(ctx, timeout)
		}
		res, err := cfg.protectedRun(runCtx, id, attempt, run)
		timedOut := ctx.Err() == nil &&
			(errors.Is(runCtx.Err(), context.DeadlineExceeded) || errors.Is(err, context.DeadlineExceeded))
		cancelRun()
		cfg.tel.attempt(attempt)
		if timedOut {
			cfg.tel.timeout()
		}
		if err != nil && injectedFault(err) {
			cfg.tel.chaosFault(chaos.SiteRun)
		}
		if ctx.Err() != nil {
			return res, attempt, ctx.Err()
		}
		if err == nil {
			return res, attempt, nil
		}
		if timedOut {
			err = fmt.Errorf("scenario: %w after %v (attempt %d)", errRunTimeout, timeout, attempt)
		}
		// Every failure reaching this point is run-stage and therefore
		// transient (timeout, injected fault, recovered panic, engine or
		// analysis error); deterministic spec failures never enter execute.
		if attempt > cfg.retries {
			return res, attempt, err
		}
		if !cfg.sleep(ctx, id, s.Seed, attempt) {
			return res, attempt, ctx.Err()
		}
	}
}

// protectedRun is the panic isolation boundary around one attempt: chaos
// injection plus the protocol/engine/analysis code, with panics recovered
// into panicError.
func (cfg runConfig) protectedRun(ctx context.Context, id string, attempt int, run func(context.Context) (engine.Result, error)) (res engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(r)
			cfg.tel.panicRecovered()
		}
	}()
	if cfg.chaos != nil {
		if err := cfg.chaos.Inject(ctx, chaos.SiteRun, id, attempt); err != nil {
			return res, err
		}
	}
	return run(ctx)
}

// buildGraph resolves a group's shared graph through the cache, with chaos
// injection at the build site and panic protection. Only injected faults
// retry here: a real build failure is a deterministic property of the spec.
func (cfg runConfig) buildGraph(ctx context.Context, key string, head Spec, cache *graphCache) (*graph.Graph, error) {
	for attempt := 1; ; attempt++ {
		g, err := func() (g *graph.Graph, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = newPanicError(r)
					cfg.tel.panicRecovered()
				}
			}()
			if cfg.chaos != nil {
				if err := cfg.chaos.Inject(ctx, chaos.SiteBuild, key, attempt); err != nil {
					return nil, err
				}
			}
			return cache.build(head.Graph, head.Seed)
		}()
		if err == nil {
			return g, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if injectedFault(err) {
			cfg.tel.chaosFault(chaos.SiteBuild)
		}
		if attempt > cfg.retries || !injectedFault(err) {
			return nil, err
		}
		if !cfg.sleep(ctx, key, head.Seed, attempt) {
			return nil, ctx.Err()
		}
	}
}

// injectedFault reports whether err is a chaos-injected error or panic.
func injectedFault(err error) bool {
	if chaos.IsInjected(err) {
		return true
	}
	var pe *panicError
	return errors.As(err, &pe) && pe.injected()
}

// sleep blocks for the capped exponential backoff of the given attempt,
// scaled by a jitter in [0.5, 1.5) seeded from (id, seed, attempt) so the
// delay schedule is deterministic per spec. Returns false when the context
// was cancelled while waiting.
func (cfg runConfig) sleep(ctx context.Context, id string, seed int64, attempt int) bool {
	base := cfg.backoff
	if base <= 0 {
		base = defaultBackoff
	}
	shift := attempt - 1
	if shift > 6 { // cap at 64x base
		shift = 6
	}
	d := base << shift
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", id, seed, attempt)
	jitter := 0.5 + float64(h.Sum64()>>11)/float64(uint64(1)<<53)
	d = time.Duration(float64(d) * jitter)
	cfg.tel.backoffSleep()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runGroup executes one group's specs on a shared graph and Session,
// emitting one Result per spec. Panics anywhere inside — protocol, engine,
// analysis, or the group bookkeeping itself — degrade to error rows for the
// specs still missing one, so a crashing group never takes down the suite.
func runGroup(ctx context.Context, grp *group, cache *graphCache, cfg runConfig, out chan<- Result) {
	done := make([]bool, len(grp.specs))
	emit := func(i int, res Result) bool {
		done[i] = true
		select {
		case out <- res:
			return true
		case <-ctx.Done():
			return false
		}
	}
	// n/m are stamped onto every Result once the graph exists, so failure
	// rows after construction still attribute to the instance size.
	var n, m int
	defer func() {
		if r := recover(); r != nil {
			err := newPanicError(r)
			cfg.tel.panicRecovered()
			for i, s := range grp.specs {
				if done[i] {
					continue
				}
				if !emit(i, Result{Spec: s, N: n, M: m, Err: err.Error()}) {
					return
				}
			}
		}
	}()
	fail := func(idx []int, err error) {
		for _, i := range idx {
			if !emit(i, Result{Spec: grp.specs[i], N: n, M: m, Err: err.Error()}) {
				return
			}
		}
	}
	all := make([]int, len(grp.specs))
	for i := range all {
		all[i] = i
	}
	head := grp.specs[0]
	g, err := cfg.buildGraph(ctx, grp.key, head, cache)
	if err != nil {
		if ctx.Err() == nil {
			fail(all, err)
		}
		return
	}
	n, m = g.N(), g.M()
	kind, err := sim.ParseEngine(head.Engine)
	if err != nil {
		fail(all, err)
		return
	}

	// Partition: single-origin specs share one Session through RunBatch
	// (arena reuse); multi-origin specs each need their own protocol
	// instance and run individually on the shared graph.
	var batch []int
	var solo []int
	for i, s := range grp.specs {
		if err := badOrigin(g, s.Origins); err != nil {
			if !emit(i, Result{Spec: s, N: n, M: m, Err: err.Error()}) {
				return
			}
			continue
		}
		if len(s.Origins) <= 1 {
			batch = append(batch, i)
		} else {
			solo = append(solo, i)
		}
	}

	// emitRun builds and emits the row for one executed spec, translating
	// exhausted-timeout errors into Outcome "timeout" rows. A false return
	// means the suite is cancelled.
	emitRun := func(i int, res engine.Result, attempts int, runErr error) bool {
		s := grp.specs[i]
		out1 := Result{Spec: s, N: n, M: m, Attempts: attempts}
		if runErr != nil {
			out1.Err = runErr.Error()
			if errors.Is(runErr, errRunTimeout) {
				out1.Outcome = "timeout"
			}
		} else {
			out1.fill(res)
			cfg.tel.runPhases(res.Phases)
		}
		return emit(i, out1)
	}

	if len(batch) > 0 {
		opts := sessionOptions(head, kind)
		sess, err := sim.New(g, append(opts, sim.WithOrigins(originOf(grp.specs[batch[0]])))...)
		if err != nil {
			fail(append(batch, solo...), err)
			return
		}
		for _, i := range batch {
			s := grp.specs[i]
			if ctx.Err() != nil {
				return
			}
			res, attempts, runErr := cfg.execute(ctx, s, func(rc context.Context) (engine.Result, error) {
				rs, err := sess.RunBatch(rc, []graph.NodeID{originOf(s)})
				if err != nil {
					return engine.Result{}, err
				}
				return rs[0], nil
			})
			if ctx.Err() != nil {
				return
			}
			if !emitRun(i, res, attempts, runErr) {
				return
			}
		}
	}
	for _, i := range solo {
		s := grp.specs[i]
		if ctx.Err() != nil {
			return
		}
		sess, err := sim.New(g, append(sessionOptions(s, kind), sim.WithOrigins(s.Origins...))...)
		if err != nil {
			if !emit(i, Result{Spec: s, N: n, M: m, Err: err.Error()}) {
				return
			}
			continue
		}
		res, attempts, runErr := cfg.execute(ctx, s, sess.Run)
		if ctx.Err() != nil {
			return
		}
		if !emitRun(i, res, attempts, runErr) {
			return
		}
	}
}

// fill copies one engine result into the scenario result row.
func (out *Result) fill(r engine.Result) {
	out.Rounds, out.TotalMessages, out.Lost = r.Rounds, r.TotalMessages, r.Lost
	out.Terminated, out.Stopped = r.Terminated, r.Stopped
	out.Outcome = r.Outcome.String()
	if r.Certificate != nil {
		out.CycleStart, out.CycleLength = r.Certificate.Start, r.Certificate.Length
	}
	out.Metrics = r.Metrics
	out.WallMicros = r.WallTime.Microseconds()
}

// sessionOptions assembles the shared sim options of a spec (origins are
// appended by the caller).
func sessionOptions(s Spec, kind sim.EngineKind) []sim.Option {
	opts := []sim.Option{
		sim.WithProtocol(s.Protocol),
		sim.WithEngine(kind),
		sim.WithSeed(s.Seed),
		sim.WithMaxRounds(s.MaxRounds),
	}
	if s.Model != "" {
		opts = append(opts, sim.WithModel(s.Model))
	}
	if len(s.Analyses) > 0 {
		opts = append(opts, sim.WithAnalysis(s.Analyses...))
	}
	for k, v := range s.Params {
		opts = append(opts, sim.WithParam(k, v))
	}
	return opts
}

// originOf returns a spec's single origin, defaulting to node 0.
func originOf(s Spec) graph.NodeID {
	if len(s.Origins) == 0 {
		return 0
	}
	return s.Origins[0]
}

// badOrigin reports the first origin outside the graph, or nil.
func badOrigin(g *graph.Graph, origins []graph.NodeID) error {
	for _, o := range origins {
		if !g.HasNode(o) {
			return fmt.Errorf("origin %d is not a node of %s", o, g)
		}
	}
	return nil
}
