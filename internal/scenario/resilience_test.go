package scenario_test

// Resilience tests: the failure semantics of the Runner — watchdog
// timeouts, retry with backoff, panic isolation, resumable checkpoints —
// and the differential chaos gate proving that a suite under injected
// faults plus retries converges on the fault-free results.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"amnesiacflood/internal/chaos"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/scenario"
	"amnesiacflood/internal/sim"
)

// Test-only protocols, registered once for the whole test binary:
// panicproto crashes the moment its first automaton is built, bounce echoes
// every message back to its sender forever (the shape of a run that needs
// the watchdog).
func init() {
	sim.Register("panicproto", func(spec sim.Spec) (engine.Protocol, error) {
		return panicProto{origin: spec.Origins[0], g: spec.Graph}, nil
	})
	sim.Register("bounce", func(spec sim.Spec) (engine.Protocol, error) {
		return bounceProto{origin: spec.Origins[0], g: spec.Graph}, nil
	})
}

type panicProto struct {
	origin graph.NodeID
	g      *graph.Graph
}

func (p panicProto) Name() string { return "panicproto" }
func (p panicProto) Bootstrap() []engine.Send {
	sends := make([]engine.Send, 0, p.g.Degree(p.origin))
	for _, v := range p.g.Neighbors(p.origin) {
		sends = append(sends, engine.Send{From: p.origin, To: v})
	}
	return sends
}
func (p panicProto) NewNode(v graph.NodeID) engine.NodeAutomaton {
	panic(fmt.Sprintf("panicproto: node %d refuses to exist", v))
}

type bounceProto struct {
	origin graph.NodeID
	g      *graph.Graph
}

func (p bounceProto) Name() string { return "bounce" }
func (p bounceProto) Bootstrap() []engine.Send {
	n := p.g.Neighbors(p.origin)
	if len(n) == 0 {
		return nil
	}
	return []engine.Send{{From: p.origin, To: n[0]}}
}
func (p bounceProto) NewNode(v graph.NodeID) engine.NodeAutomaton {
	return func(round int, senders []graph.NodeID) []graph.NodeID {
		return append([]graph.NodeID(nil), senders...) // echo forever
	}
}

// normalizeResilient zeroes the two nondeterministic execution-bookkeeping
// fields (wall time and attempts) for order-normalised comparison.
func normalizeResilient(results []scenario.Result) []scenario.Result {
	out := append([]scenario.Result(nil), results...)
	for i := range out {
		out[i].WallMicros = 0
		out[i].Attempts = 0
	}
	return out
}

// toJSONL renders results as sorted JSONL — the byte-identity form the
// checkpoint acceptance criterion compares.
func toJSONL(t *testing.T, results []scenario.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, res := range normalizeResilient(results) {
		if err := enc.Encode(res); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestPanicIsolation: a crashing protocol degrades to per-spec error rows
// carrying the panic value and a trimmed stack; the rest of the suite keeps
// draining and the process survives (this test finishing is the proof).
func TestPanicIsolation(t *testing.T) {
	specs := []scenario.Spec{
		{Graph: "path:n=6", Protocol: "panicproto", Engine: "sequential", Seed: 1},
		{Graph: "path:n=6", Protocol: "amnesiac", Engine: "sequential", Seed: 1},
		{Graph: "cycle:n=7", Protocol: "panicproto", Engine: "fast", Seed: 1},
		{Graph: "cycle:n=7", Protocol: "amnesiac", Engine: "parallel", Seed: 1},
	}
	results, err := (&scenario.Runner{Workers: 4}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	var panicked, clean int
	for _, res := range results {
		if res.Spec.Protocol == "panicproto" {
			panicked++
			if !strings.Contains(res.Err, "panic: panicproto") {
				t.Errorf("panic row lacks the panic value: %q", res.Err)
			}
			if !strings.Contains(res.Err, "goroutine") {
				t.Errorf("panic row lacks a stack: %q", res.Err)
			}
			if res.Attempts != 1 {
				t.Errorf("panic row ran %d attempts without retries configured", res.Attempts)
			}
			continue
		}
		clean++
		if res.Err != "" || !res.Terminated {
			t.Errorf("healthy spec %s failed: %q", res.Spec.ID(), res.Err)
		}
	}
	if panicked != 2 || clean != 2 {
		t.Fatalf("panicked=%d clean=%d, want 2/2", panicked, clean)
	}
}

// TestPanicRetryAttempts: panics are transient-class, so a deterministic
// panic consumes the whole attempt budget before degrading to an error row.
func TestPanicRetryAttempts(t *testing.T) {
	specs := []scenario.Spec{{Graph: "path:n=4", Protocol: "panicproto", Engine: "sequential", Seed: 1}}
	runner := &scenario.Runner{Workers: 1, Retries: 2, Backoff: time.Millisecond}
	results, err := runner.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err == "" {
		t.Fatalf("want one error row, got %+v", results)
	}
	if results[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (retries 2 + 1)", results[0].Attempts)
	}
}

// TestWatchdogTimeout: a run that never terminates becomes an
// Outcome "timeout" row instead of a hung worker — under both the
// runner-wide deadline and the per-spec override.
func TestWatchdogTimeout(t *testing.T) {
	huge := 1 << 30 // keep the round-limit far beyond the watchdog
	specs := []scenario.Spec{
		{Graph: "path:n=4", Protocol: "bounce", Engine: "sequential", Seed: 1, MaxRounds: huge},
		{Graph: "path:n=4", Protocol: "amnesiac", Engine: "sequential", Seed: 1},
	}
	runner := &scenario.Runner{Workers: 2, RunTimeout: 30 * time.Millisecond}
	start := time.Now()
	results, err := runner.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("suite took %v; the watchdog did not fire", elapsed)
	}
	byProto := map[string]scenario.Result{}
	for _, res := range results {
		byProto[res.Spec.Protocol] = res
	}
	bounced := byProto["bounce"]
	if bounced.Outcome != "timeout" || !strings.Contains(bounced.Err, "timed out") {
		t.Errorf("bounce row = outcome %q err %q, want a timeout row", bounced.Outcome, bounced.Err)
	}
	if bounced.Attempts != 1 {
		t.Errorf("bounce attempts = %d, want 1", bounced.Attempts)
	}
	if clean := byProto["amnesiac"]; clean.Err != "" || !clean.Terminated {
		t.Errorf("fast spec suffered from the slow one: %+v", clean)
	}

	// Per-spec override: no runner-wide deadline, one spec opts in.
	specs[0].Timeout = 30 * time.Millisecond
	results, err = (&scenario.Runner{Workers: 2}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Spec.Protocol == "bounce" && res.Outcome != "timeout" {
			t.Errorf("per-spec timeout did not fire: %+v", res)
		}
	}
}

// TestSpecIDTimeoutSuffix: the watchdog override distinguishes spec IDs
// without disturbing the untimed form.
func TestSpecIDTimeoutSuffix(t *testing.T) {
	plain := scenario.Spec{Graph: "path:n=4"}
	timed := scenario.Spec{Graph: "path:n=4", Timeout: 50 * time.Millisecond}
	if strings.Contains(plain.ID(), "|to=") {
		t.Errorf("untimed ID %q grew a timeout field", plain.ID())
	}
	if !strings.HasSuffix(timed.ID(), "|to=50ms") {
		t.Errorf("timed ID %q lacks the override suffix", timed.ID())
	}
	if plain.ID() == timed.ID() {
		t.Error("timeout override does not distinguish spec IDs")
	}
}

// TestChaosDifferential is the differential chaos gate: a suite under
// >= 10% injected faults (err/panic/stall mix at the run and build sites)
// plus retries yields order-normalised results identical to the fault-free
// suite.
func TestChaosDifferential(t *testing.T) {
	matrix := scenario.Matrix{
		Graphs:    []string{"grid:rows=4,cols=5", "cycle:n=9", "prefattach:n=24,m=2"},
		Protocols: []string{"amnesiac", "classic"},
		Engines:   []string{"sequential", "parallel"},
		Analyses:  []string{"coverage"},
		Seeds:     []int64{1, 2},
	}
	specs, err := matrix.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	clean, err := (&scenario.Runner{Workers: 4}).Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.Parse("chaos:rate=0.25,kinds=err|panic|stall,seed=11,stall=5ms")
	if err != nil {
		t.Fatal(err)
	}
	chaotic, err := (&scenario.Runner{
		Workers:    4,
		Retries:    8,
		Backoff:    time.Millisecond,
		RunTimeout: 5 * time.Second,
		Chaos:      inj,
	}).Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	cleanJSON, _ := json.Marshal(normalizeResilient(clean))
	chaoticJSON, _ := json.Marshal(normalizeResilient(chaotic))
	if !bytes.Equal(cleanJSON, chaoticJSON) {
		t.Fatalf("faulted suite diverged from the fault-free suite:\n%s\nvs\n%s", chaoticJSON, cleanJSON)
	}
	for _, res := range chaotic {
		if res.Err != "" {
			t.Errorf("retries failed to absorb the faults of %s: %s", res.Spec.ID(), res.Err)
		}
	}
	retried := 0
	for _, res := range chaotic {
		if res.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no run was retried — the injector never fired, so the gate proved nothing")
	}
	t.Logf("chaos gate: %d/%d runs retried and converged", retried, len(chaotic))
}

// cancelSink cancels a context after writing k rows, modelling a sweep
// killed mid-flight, and records everything it saw.
type cancelSink struct {
	mu     sync.Mutex
	after  int
	cancel context.CancelFunc
	rows   []scenario.Result
}

func (c *cancelSink) Write(res scenario.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rows = append(c.rows, res)
	if len(c.rows) == c.after {
		c.cancel()
	}
	return nil
}

func (c *cancelSink) seen() []scenario.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]scenario.Result(nil), c.rows...)
}

// TestCancellationAndResume is the checkpoint acceptance criterion: a suite
// killed mid-run journals its completed rows; resuming from the checkpoint
// replays only the remainder, and the merged JSONL is byte-identical to an
// uninterrupted run — across worker counts 1, 4, and 8. Along the way it
// asserts the kill-path invariants: partial results stay sorted and the
// sink saw exactly the returned rows.
func TestCancellationAndResume(t *testing.T) {
	matrix := scenario.Matrix{
		Graphs:    []string{"grid:rows=4,cols=5", "cycle:n=9", "path:n=12"},
		Protocols: []string{"amnesiac", "classic"},
		Engines:   []string{"sequential", "fast"},
		Seeds:     []int64{1, 2},
	}
	specs, err := matrix.Expand()
	if err != nil {
		t.Fatal(err)
	}
	full, err := (&scenario.Runner{Workers: 4}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	fullJSONL := toJSONL(t, full)

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "checkpoint.jsonl")
			m, err := scenario.OpenManifest(path)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			sink := &cancelSink{after: 5, cancel: cancel}
			partial, err := (&scenario.Runner{Workers: workers, Sink: sink}).Resume(ctx, m, specs)
			if err == nil {
				t.Fatal("cancelled sweep returned no error")
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			// Partial results stay order-normalised even on the error path.
			for i := 1; i < len(partial); i++ {
				if partial[i-1].Spec.ID() > partial[i].Spec.ID() {
					t.Fatalf("partial results unsorted at %d", i)
				}
			}
			// The sink saw exactly the returned rows (order aside).
			seen := seenByID(sink.seen())
			if len(seen) != len(partial) {
				t.Fatalf("sink saw %d rows, runner returned %d", len(seen), len(partial))
			}
			for _, res := range partial {
				if _, ok := seen[res.Spec.ID()]; !ok {
					t.Fatalf("returned row %s never reached the sink", res.Spec.ID())
				}
			}

			// Resume from the journal: only the remainder replays.
			m2, err := scenario.OpenManifest(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			journaled := m2.Len()
			if journaled == 0 || journaled >= len(specs) {
				t.Fatalf("checkpoint journals %d of %d rows; the kill was not mid-suite", journaled, len(specs))
			}
			merged, err := (&scenario.Runner{Workers: workers}).Resume(context.Background(), m2, specs)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(toJSONL(t, merged), fullJSONL) {
				t.Fatal("merged resume JSONL differs from the uninterrupted run")
			}
			// The journal now holds the whole suite; a second resume runs
			// nothing and still reproduces the merged output.
			m3, err := scenario.OpenManifest(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m3.Close()
			if m3.Len() != len(specs) {
				t.Fatalf("journal holds %d rows after resume, want %d", m3.Len(), len(specs))
			}
			again, err := (&scenario.Runner{Workers: workers}).Resume(context.Background(), m3, specs)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(toJSONL(t, again), fullJSONL) {
				t.Fatal("no-op resume JSONL differs from the uninterrupted run")
			}
		})
	}
}

func seenByID(rows []scenario.Result) map[string]scenario.Result {
	out := make(map[string]scenario.Result, len(rows))
	for _, res := range rows {
		out[res.Spec.ID()] = res
	}
	return out
}

// TestManifestTornTail: a kill mid-write leaves a truncated final line; the
// manifest drops it on open and stays appendable.
func TestManifestTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	m, err := scenario.OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := []scenario.Result{
		{Spec: scenario.Spec{Graph: "path:n=4", Seed: 1}, N: 4, M: 3, Rounds: 3},
		{Spec: scenario.Spec{Graph: "path:n=5", Seed: 1}, N: 5, M: 4, Rounds: 4},
	}
	for _, res := range rows {
		if err := m.Write(res); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"spec":{"graph":"cycle`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, err := scenario.OpenManifest(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if m2.Len() != 2 {
		t.Fatalf("recovered %d rows, want 2", m2.Len())
	}
	extra := scenario.Result{Spec: scenario.Spec{Graph: "path:n=6", Seed: 1}, N: 6, M: 5, Rounds: 5}
	if err := m2.Write(extra); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, err := scenario.OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if m3.Len() != 3 {
		t.Fatalf("after append-past-torn-tail the journal holds %d rows, want 3", m3.Len())
	}
	// A corrupt interior line is a different file, not a torn tail: refuse.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n{\"spec\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.OpenManifest(bad); err == nil {
		t.Fatal("corrupt interior row accepted")
	}
}

// failingSink fails every write with its label.
type failingSink string

func (f failingSink) Write(scenario.Result) error { return errors.New(string(f)) }

// recordSink retains rows.
type recordSink struct{ rows []scenario.Result }

func (r *recordSink) Write(res scenario.Result) error {
	r.rows = append(r.rows, res)
	return nil
}

// TestMultiSinkAttemptsAll: one broken sink no longer blinds the rest, and
// every failure is reported.
func TestMultiSinkAttemptsAll(t *testing.T) {
	rec := &recordSink{}
	sink := scenario.MultiSink{failingSink("broken-file"), rec, failingSink("full-disk"), nil}
	err := sink.Write(scenario.Result{Spec: scenario.Spec{Graph: "path:n=4"}})
	if err == nil {
		t.Fatal("joined failure lost")
	}
	if !strings.Contains(err.Error(), "broken-file") || !strings.Contains(err.Error(), "full-disk") {
		t.Errorf("joined error %q lacks a member failure", err)
	}
	if len(rec.rows) != 1 {
		t.Fatalf("healthy sink saw %d rows, want 1", len(rec.rows))
	}
}

// TestCSVHeaderOnEmptySuite: an all-skipped suite still emits a valid CSV
// header from Flush.
func TestCSVHeaderOnEmptySuite(t *testing.T) {
	var buf bytes.Buffer
	sink := scenario.NewCSVSink(&buf, "coverage.covered")
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	header := strings.TrimSpace(buf.String())
	if !strings.HasPrefix(header, "graph,protocol,engine") || !strings.HasSuffix(header, "coverage.covered") {
		t.Fatalf("empty-suite CSV = %q, want the header row", header)
	}
}

// TestChaosSinkAndErrorJoin: the chaos sink wrapper surfaces injected write
// failures; the runner reports them even when the suite is also cancelled,
// and sinks beside the broken one still receive the row (satellites: sink
// error masking, MultiSink fan-out).
func TestChaosSinkAndErrorJoin(t *testing.T) {
	specs, err := scenario.Matrix{Graphs: []string{"path:n=4", "path:n=5", "path:n=6"}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	agg := scenario.NewAggregate()
	broken := scenario.NewChaosSink(agg, chaos.New(1, []chaos.Kind{chaos.Err}, 1))
	rec := &recordSink{}
	runner := &scenario.Runner{Workers: 1, Sink: scenario.MultiSink{broken, rec}}
	_, err = runner.Run(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "sink") || !chaos.IsInjected(err) {
		t.Fatalf("err = %v, want an injected sink failure", err)
	}
	if len(rec.rows) == 0 {
		t.Fatal("sibling sink was blinded by the broken one")
	}

	// Cancellation no longer masks a sink failure: both surface.
	ctx, cancel := context.WithCancel(context.Background())
	canceller := &cancelAndFailSink{cancel: cancel}
	_, err = (&scenario.Runner{Workers: 1, Sink: canceller}).Run(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want the context error", err)
	}
	if err == nil || !strings.Contains(err.Error(), "sink") {
		t.Errorf("err = %v, want the sink error to survive cancellation", err)
	}
}

// cancelAndFailSink cancels the suite and fails the write, producing the
// cancelled-plus-sink-error overlap.
type cancelAndFailSink struct{ cancel context.CancelFunc }

func (c *cancelAndFailSink) Write(scenario.Result) error {
	c.cancel()
	return errors.New("pipe closed")
}

// TestResumeDoesNotRetryDeterministicErrors: error rows (bad origin) are
// journaled like any other and skipped on resume — resume must not burn
// attempts re-deriving deterministic failures.
func TestResumeDeterministicErrorRows(t *testing.T) {
	specs := []scenario.Spec{
		{Graph: "path:n=4", Protocol: "amnesiac", Engine: "sequential", Origins: []graph.NodeID{99}, Seed: 1},
		{Graph: "path:n=4", Protocol: "amnesiac", Engine: "sequential", Seed: 1},
	}
	path := filepath.Join(t.TempDir(), "err.jsonl")
	m, err := scenario.OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := (&scenario.Runner{Workers: 1}).Resume(context.Background(), m, specs)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if len(first) != 2 {
		t.Fatalf("got %d rows", len(first))
	}
	m2, err := scenario.OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 2 {
		t.Fatalf("journal holds %d rows, want 2 (error rows are completed rows)", m2.Len())
	}
	again, err := (&scenario.Runner{Workers: 1}).Resume(context.Background(), m2, specs)
	if err != nil {
		t.Fatal(err)
	}
	aJSON, _ := json.Marshal(normalizeResilient(first))
	bJSON, _ := json.Marshal(normalizeResilient(again))
	if !bytes.Equal(aJSON, bJSON) {
		t.Fatal("resumed error rows differ from the original run")
	}
}
