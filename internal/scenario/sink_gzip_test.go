package scenario_test

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"

	"amnesiacflood/internal/scenario"
)

// TestJSONLFileSinkGzipRoundTrip: the same rows written through a plain file
// sink and a .gz one decompress to identical bytes — the compressed sink is a
// transparent wrapper, not a different format.
func TestJSONLFileSinkGzipRoundTrip(t *testing.T) {
	specs, err := scenario.Matrix{
		Graphs:    []string{"cycle:n=9", "path:n=6"},
		Protocols: []string{"amnesiac"},
		Seeds:     []int64{1, 2},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plainPath := filepath.Join(dir, "suite.jsonl")
	gzPath := filepath.Join(dir, "suite.jsonl.gz")

	// One execution, two sinks: WallMicros is execution-dependent, so the
	// byte comparison needs identical rows, not identical specs.
	results, err := (&scenario.Runner{}).Run(t.Context(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{plainPath, gzPath} {
		sink, closer, err := scenario.NewJSONLFileSink(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range results {
			if err := sink.Write(row); err != nil {
				t.Fatal(err)
			}
		}
		if err := closer.Close(); err != nil {
			t.Fatal(err)
		}
	}

	plain, err := os.ReadFile(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) == 0 {
		t.Fatal("plain sink wrote nothing")
	}
	raw, err := os.ReadFile(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw, plain) {
		t.Fatal(".gz sink wrote uncompressed bytes")
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("gz sink output is not gzip: %v", err)
	}
	var inflated bytes.Buffer
	if _, err := inflated.ReadFrom(bufio.NewReader(zr)); err != nil {
		t.Fatal(err)
	}
	if err := zr.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inflated.Bytes(), plain) {
		t.Fatalf("gzip round trip diverged:\n%s\nvs\n%s", inflated.Bytes(), plain)
	}
}
