// Package scenario is the declarative suite layer over the sim façade: a
// Spec names one run as data (graph spec × protocol × engine × model ×
// origins × seed, plus the attached analysis set), a Matrix expands the
// cross-product of those axes, and a Runner executes a suite over a bounded
// worker pool, streaming results to pluggable sinks (JSONL, CSV, in-memory
// aggregation). Analyses (internal/analysis specs) stream per-round metrics
// into every run; their merged "<family>.<metric>" columns flow through all
// sinks and are summarised per cell by Aggregate.
//
// Where the sim package answers "run this protocol on this graph", scenario
// answers "sweep every protocol over every family at every seed and tell me
// what happened" — the quantified-over-graph-families shape of the paper's
// termination claims, and the shape of any serving benchmark harness:
//
//	specs, _ := scenario.Matrix{
//	        Graphs:    []string{"grid:rows=8,cols=8", "cycle:n=65", "prefattach:n=64,m=2"},
//	        Protocols: []string{"amnesiac", "classic"},
//	        Engines:   []string{"sequential", "parallel"},
//	        Seeds:     []int64{1, 2},
//	}.Expand()
//	agg := scenario.NewAggregate()
//	results, _ := (&scenario.Runner{Workers: 8, Sink: agg}).Run(ctx, specs)
//
// Every run is deterministic given its Spec, so the same suite executed
// with any worker count produces the same results up to ordering (and wall
// time); the Runner returns them sorted by Spec ID.
package scenario

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"time"

	"amnesiacflood/internal/analysis"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/model"
	"amnesiacflood/internal/sim"
)

// Spec fully determines one simulation run: it is pure data, safe to
// marshal, log, and replay. The graph is a gen spec string, the protocol a
// sim registry name, the engine a sim.ParseEngine spelling, the model an
// internal/model spec string.
type Spec struct {
	// Graph is the graph spec, e.g. "grid:rows=64,cols=64" (see
	// internal/graph/gen). Random families consume Seed.
	Graph string `json:"graph"`
	// Protocol is the registered protocol name (see sim.Protocols).
	Protocol string `json:"protocol"`
	// Engine is the engine name (see sim.EngineNames).
	Engine string `json:"engine"`
	// Model is the execution-model spec ("sync", "adversary:collision",
	// "schedule:blink:period=2", ...; see internal/model). Empty means
	// sync. Non-sync models run amnesiac flooding on their own substrate;
	// the Engine axis then does not apply (see sim.WithModel). Random
	// model families consume Seed.
	Model string `json:"model,omitempty"`
	// Origins is the origin node set; empty means node 0.
	Origins []graph.NodeID `json:"origins,omitempty"`
	// Analyses lists streaming-analysis specs (internal/analysis grammar:
	// "coverage", "quantiles:metric=messages", ...) attached to the run;
	// their merged metrics land in Result.Metrics.
	Analyses []string `json:"analyses,omitempty"`
	// Seed drives graph construction and protocol randomness.
	Seed int64 `json:"seed"`
	// Rep distinguishes repetitions of an otherwise identical spec.
	Rep int `json:"rep,omitempty"`
	// Params carries protocol parameters (sim.WithParam).
	Params map[string]string `json:"params,omitempty"`
	// MaxRounds bounds the run; 0 means the engine default.
	MaxRounds int `json:"maxRounds,omitempty"`
	// Timeout, when positive, overrides the Runner's per-run watchdog for
	// this spec (JSON: nanoseconds). 0 means the Runner's RunTimeout.
	Timeout time.Duration `json:"timeout,omitempty"`
}

// ID renders a stable, human-readable identity for the spec — the sort key
// for order-normalised result comparison.
func (s Spec) ID() string {
	origins := make([]string, len(s.Origins))
	for i, o := range s.Origins {
		origins[i] = strconv.Itoa(int(o))
	}
	var params []string
	for k, v := range s.Params {
		// Quote values so free-form strings containing ',' or '=' cannot
		// make two distinct specs render the same ID.
		params = append(params, k+"="+strconv.Quote(v))
	}
	slices.Sort(params)
	mdl := s.Model
	if mdl == "" {
		mdl = string(model.KindSync)
	}
	id := fmt.Sprintf("%s|%s|%s|%s|o=%s|a=%s|seed=%d|rep=%d|%s|max=%d",
		s.Graph, s.Protocol, s.Engine, mdl, strings.Join(origins, ","),
		strings.Join(s.Analyses, "+"), s.Seed, s.Rep,
		strings.Join(params, ","), s.MaxRounds)
	// The watchdog override is appended only when set, keeping the common
	// untimed form (and every pre-existing checkpoint) stable.
	if s.Timeout > 0 {
		id += "|to=" + s.Timeout.String()
	}
	return id
}

// Validate checks the spec against the graph, protocol, engine, and model
// registries without running anything.
func (s Spec) Validate() error {
	if _, err := gen.Parse(s.Graph); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if _, err := sim.ParseEngine(s.Engine); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if s.Model != "" {
		if _, err := model.Parse(s.Model); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	for _, a := range s.Analyses {
		if _, err := analysis.Parse(a); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	proto := strings.ToLower(strings.TrimSpace(s.Protocol))
	for _, name := range sim.Protocols() {
		if name == proto {
			return nil
		}
	}
	return fmt.Errorf("scenario: %w %q (registered: %s)",
		sim.ErrUnknownProtocol, s.Protocol, strings.Join(sim.Protocols(), ", "))
}

// Matrix declares a suite as the cross-product of its axes. Zero-valued
// axes default to the identity: protocols to amnesiac, engines to
// sequential, models to sync, origin sets to {0}, seeds to {1}, reps to 1.
// Graphs is the only mandatory axis.
type Matrix struct {
	// Graphs lists gen spec strings.
	Graphs []string
	// Protocols lists registered protocol names.
	Protocols []string
	// Engines lists engine names.
	Engines []string
	// Models lists execution-model specs (internal/model grammar). Note
	// that non-sync models run only the amnesiac protocol; cells crossing
	// them with another protocol fail at run time with Result.Err set.
	Models []string
	// OriginSets lists origin sets; each set is one run's origins.
	OriginSets [][]graph.NodeID
	// Analyses lists streaming-analysis specs attached to *every* cell of
	// the matrix (it is a measurement set, not a cross-product axis): each
	// run streams all of them and its Result carries their merged metric
	// columns. Analyses with origin-arity requirements (bipartite,
	// spantree, echo need a single origin) fail per-run with Result.Err on
	// cells that violate them.
	Analyses []string
	// Seeds lists seeds; each seed rebuilds random graphs and reseeds
	// randomised protocols.
	Seeds []int64
	// Reps repeats every cell, for timing stability; min 1.
	Reps int
	// Params applies to every run (protocol parameters).
	Params map[string]string
	// MaxRounds bounds every run; 0 means the engine default.
	MaxRounds int
}

// Expand enumerates the cross-product in deterministic order (graphs ×
// protocols × engines × models × origin sets × seeds × reps), validating
// every axis value against its registry up front. Graph and model specs
// are canonically ordered (lower-cased, parameters in declared order), so
// two spellings of the same explicit parameter set expand to equal Specs;
// defaults are not expanded, so "gnp" and its fully explicit form remain
// distinct cells.
func (m Matrix) Expand() ([]Spec, error) {
	if len(m.Graphs) == 0 {
		return nil, fmt.Errorf("scenario: matrix has no graphs")
	}
	graphs := make([]string, len(m.Graphs))
	for i, g := range m.Graphs {
		parsed, err := gen.Parse(g)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		graphs[i] = parsed.String()
	}
	protocols := make([]string, 0, len(m.Protocols))
	registered := map[string]bool{}
	for _, name := range sim.Protocols() {
		registered[name] = true
	}
	for _, p := range m.Protocols {
		p = strings.ToLower(strings.TrimSpace(p))
		if !registered[p] {
			return nil, fmt.Errorf("scenario: %w %q (registered: %s)",
				sim.ErrUnknownProtocol, p, strings.Join(sim.Protocols(), ", "))
		}
		protocols = append(protocols, p)
	}
	if len(protocols) == 0 {
		protocols = []string{"amnesiac"}
	}
	engines := make([]string, len(m.Engines))
	for i, e := range m.Engines {
		kind, err := sim.ParseEngine(e)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		// Canonical spelling, so alias spellings ("seq") expand to the
		// same Spec (and hence group/ID) as their full names.
		engines[i] = kind.String()
	}
	if len(engines) == 0 {
		engines = []string{sim.Sequential.String()}
	}
	models := make([]string, len(m.Models))
	for i, spec := range m.Models {
		parsed, err := model.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		models[i] = parsed.String()
	}
	if len(models) == 0 {
		models = []string{string(model.KindSync)}
	}
	analyses := make([]string, len(m.Analyses))
	for i, spec := range m.Analyses {
		parsed, err := analysis.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		analyses[i] = parsed.String()
	}
	originSets := m.OriginSets
	if len(originSets) == 0 {
		originSets = [][]graph.NodeID{{0}}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	reps := m.Reps
	if reps < 1 {
		reps = 1
	}
	specs := make([]Spec, 0, len(graphs)*len(protocols)*len(engines)*len(models)*len(originSets)*len(seeds)*reps)
	params := func() map[string]string {
		if len(m.Params) == 0 {
			return nil
		}
		cp := make(map[string]string, len(m.Params))
		for k, v := range m.Params {
			cp[k] = v
		}
		return cp
	}
	for _, g := range graphs {
		for _, proto := range protocols {
			for _, eng := range engines {
				for _, mdl := range models {
					for _, origins := range originSets {
						for _, seed := range seeds {
							// Every axis value was validated against its
							// registry above, so the cells need no
							// per-spec re-validation.
							for rep := 0; rep < reps; rep++ {
								specs = append(specs, Spec{
									Graph:     g,
									Protocol:  proto,
									Engine:    eng,
									Model:     mdl,
									Origins:   append([]graph.NodeID(nil), origins...),
									Analyses:  slices.Clone(analyses),
									Seed:      seed,
									Rep:       rep,
									Params:    params(),
									MaxRounds: m.MaxRounds,
								})
							}
						}
					}
				}
			}
		}
	}
	return specs, nil
}
