package scenario

import (
	"time"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/obs"
)

// Telemetry records the runner's resilience bookkeeping — attempts,
// retries, backoff sleeps, timeouts, recovered panics, chaos-injected
// faults, emitted rows — plus per-run phase timings, into an obs.Registry.
// Attach one via Runner.Metrics; a nil *Telemetry is a valid no-op, so the
// recording call sites need no conditionals.
//
// The determinism contract (see internal/obs/README.md): every recording
// method is called strictly on the observing side of an already-made
// decision — after an attempt finished, after a row was built, around a
// sink write — and never feeds back into retry policy, scheduling, or row
// contents. TestTelemetryDoesNotPerturbRows asserts metrics-on output is
// byte-identical to metrics-off output under the race detector.
type Telemetry struct {
	reg      *obs.Registry
	attempts *obs.Counter
	retries  *obs.Counter
	sleeps   *obs.Counter
	timeouts *obs.Counter
	panics   *obs.Counter
	chaos    *obs.CounterVec
	rows     *obs.CounterVec
	phases   *obs.HistogramVec
}

// NewTelemetry registers the scenario_* metric families on reg (idempotent:
// several Telemetry instances over one registry share series, which is how
// in-process shard workers and the afbench summary stanza see one total).
func NewTelemetry(reg *obs.Registry) *Telemetry {
	return &Telemetry{
		reg:      reg,
		attempts: reg.Counter("scenario_run_attempts_total", "Run attempts executed, including retries."),
		retries:  reg.Counter("scenario_retries_total", "Run attempts that were retries of a transient failure."),
		sleeps:   reg.Counter("scenario_backoff_sleeps_total", "Backoff sleeps taken between retry attempts."),
		timeouts: reg.Counter("scenario_run_timeouts_total", "Run attempts killed by the watchdog deadline."),
		panics:   reg.Counter("scenario_panics_recovered_total", "Panics recovered at runner isolation boundaries."),
		chaos:    reg.CounterVec("scenario_chaos_faults_total", "Chaos-injected faults observed, by injection site.", "site"),
		rows:     reg.CounterVec("scenario_rows_total", "Result rows emitted, by outcome class.", "class"),
		phases:   reg.HistogramVec("scenario_phase_seconds", "Per-run phase durations (build/run/analyze) and per-row sink writes.", obs.LatencyBuckets(), "phase"),
	}
}

// attempt records one executed run attempt (attempt numbers start at 1;
// attempts past the first are retries).
func (t *Telemetry) attempt(n int) {
	if t == nil {
		return
	}
	t.attempts.Inc()
	if n > 1 {
		t.retries.Inc()
	}
}

// backoffSleep records one retry backoff sleep.
func (t *Telemetry) backoffSleep() {
	if t == nil {
		return
	}
	t.sleeps.Inc()
}

// timeout records one watchdog-killed attempt.
func (t *Telemetry) timeout() {
	if t == nil {
		return
	}
	t.timeouts.Inc()
}

// panicRecovered records one recovered panic.
func (t *Telemetry) panicRecovered() {
	if t == nil {
		return
	}
	t.panics.Inc()
}

// chaosFault records one observed chaos-injected fault at a site
// (chaos.SiteRun / chaos.SiteBuild).
func (t *Telemetry) chaosFault(site string) {
	if t == nil {
		return
	}
	t.chaos.With(site).Inc()
}

// row records one emitted result row, classed ok / error / timeout.
func (t *Telemetry) row(res *Result) {
	if t == nil {
		return
	}
	class := "ok"
	switch {
	case res.Outcome == "timeout":
		class = "timeout"
	case res.Err != "":
		class = "error"
	}
	t.rows.With(class).Inc()
}

// runPhases records one successful run's phase split.
func (t *Telemetry) runPhases(p engine.PhaseTimings) {
	if t == nil {
		return
	}
	t.phases.With("build").Observe(p.Build.Seconds())
	t.phases.With("run").Observe(p.Run.Seconds())
	t.phases.With("analyze").Observe(p.Analyze.Seconds())
}

// sinkWrite records one sink write's duration.
func (t *Telemetry) sinkWrite(d time.Duration) {
	if t == nil {
		return
	}
	t.phases.With("sink").Observe(d.Seconds())
}

// Registry returns the registry the telemetry records into.
func (t *Telemetry) Registry() *obs.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// TelemetrySummary is the end-of-suite rollup afbench prints.
type TelemetrySummary struct {
	Attempts, Retries, BackoffSleeps uint64
	Timeouts, Panics, ChaosFaults    uint64
	Rows                             uint64
	PhaseSeconds                     map[string]float64 // phase -> total seconds
}

// Summary snapshots the counters for an end-of-suite stanza. Safe on a nil
// receiver (zero summary). Because registration is idempotent, a Telemetry
// built over a shared registry (the sharded-suite case: every in-process
// worker records into the same one) summarises the shared totals.
func (t *Telemetry) Summary() TelemetrySummary {
	var s TelemetrySummary
	if t == nil {
		return s
	}
	snap := t.reg.Snapshot()
	s.Attempts = uint64(snap.Total("scenario_run_attempts_total"))
	s.Retries = uint64(snap.Total("scenario_retries_total"))
	s.BackoffSleeps = uint64(snap.Total("scenario_backoff_sleeps_total"))
	s.Timeouts = uint64(snap.Total("scenario_run_timeouts_total"))
	s.Panics = uint64(snap.Total("scenario_panics_recovered_total"))
	s.ChaosFaults = uint64(snap.Total("scenario_chaos_faults_total"))
	s.Rows = uint64(snap.Total("scenario_rows_total"))
	s.PhaseSeconds = map[string]float64{}
	for _, f := range snap.Families {
		if f.Name != "scenario_phase_seconds" {
			continue
		}
		for _, ser := range f.Series {
			if len(ser.Labels) == 1 {
				s.PhaseSeconds[ser.Labels[0]] = ser.Sum
			}
		}
	}
	return s
}
