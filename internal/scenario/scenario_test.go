package scenario_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/scenario"

	// Protocols and model families under test self-register on import.
	_ "amnesiacflood/internal/async"
	_ "amnesiacflood/internal/classic"
	_ "amnesiacflood/internal/core"
	_ "amnesiacflood/internal/detect"
	_ "amnesiacflood/internal/dynamic"
	_ "amnesiacflood/internal/multiflood"
)

// acceptanceMatrix is the issue's acceptance shape: >= 3 graph families ×
// >= 2 protocols × >= 2 engines.
func acceptanceMatrix() scenario.Matrix {
	return scenario.Matrix{
		Graphs:     []string{"grid:rows=4,cols=5", "cycle:n=9", "prefattach:n=24,m=2", "petersen"},
		Protocols:  []string{"amnesiac", "classic"},
		Engines:    []string{"sequential", "parallel"},
		OriginSets: [][]graph.NodeID{{0}, {3}},
		Seeds:      []int64{1, 2},
	}
}

func TestMatrixExpand(t *testing.T) {
	specs, err := acceptanceMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 2 * 2 * 2 * 2; len(specs) != want {
		t.Fatalf("expanded %d specs, want %d", len(specs), want)
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.ID()] {
			t.Fatalf("duplicate spec %s", s.ID())
		}
		seen[s.ID()] = true
		if err := s.Validate(); err != nil {
			t.Fatalf("expanded spec invalid: %v", err)
		}
	}
	// Expansion is deterministic.
	again, err := acceptanceMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specs, again) {
		t.Fatal("two expansions of the same matrix differ")
	}
}

func TestMatrixDefaults(t *testing.T) {
	specs, err := scenario.Matrix{Graphs: []string{"path:n=4"}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("got %d specs", len(specs))
	}
	s := specs[0]
	if s.Protocol != "amnesiac" || s.Engine != "sequential" || s.Model != "sync" || s.Seed != 1 || len(s.Origins) != 1 || s.Origins[0] != 0 {
		t.Fatalf("defaults wrong: %+v", s)
	}
}

// TestMatrixModelAxis expands and runs the fourth axis: sync, an
// adversary, and a schedule over two graphs, asserting canonicalisation,
// certified outcomes, and the model column in the sinks.
func TestMatrixModelAxis(t *testing.T) {
	matrix := scenario.Matrix{
		Graphs: []string{"cycle:n=9", "path:n=6"},
		// Non-canonical spellings canonicalise on expansion.
		Models:    []string{"SYNC", "adversary:collision", "schedule:blink:phase=1,period=2"},
		MaxRounds: 4096,
	}
	specs, err := matrix.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3; len(specs) != want {
		t.Fatalf("expanded %d specs, want %d", len(specs), want)
	}
	models := map[string]bool{}
	for _, s := range specs {
		models[s.Model] = true
		if err := s.Validate(); err != nil {
			t.Fatalf("expanded spec invalid: %v", err)
		}
	}
	for _, want := range []string{"sync", "adversary:collision", "schedule:blink:period=2,phase=1"} {
		if !models[want] {
			t.Fatalf("model axis missing %q (have %v)", want, models)
		}
	}

	agg := scenario.NewAggregate()
	results, err := (&scenario.Runner{Workers: 4, Sink: agg}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	certified := 0
	for _, res := range results {
		if res.Err != "" {
			t.Fatalf("run %s failed: %s", res.Spec.ID(), res.Err)
		}
		if res.Outcome == "" {
			t.Fatalf("run %s has no outcome", res.Spec.ID())
		}
		if res.Outcome == "non-termination-certified" {
			certified++
			if res.CycleLength == 0 {
				t.Fatalf("certified run %s lacks a cycle length", res.Spec.ID())
			}
		}
	}
	if certified == 0 {
		t.Fatal("collision delayer on the odd cycle should have certified non-termination")
	}
	var cells int
	for _, c := range agg.Cells() {
		if c.Model == "" {
			t.Fatalf("aggregate cell lacks a model: %+v", c)
		}
		cells++
	}
	if cells != len(specs) {
		t.Fatalf("aggregate has %d cells, want %d", cells, len(specs))
	}

	if _, err := (scenario.Matrix{Graphs: []string{"path:n=4"}, Models: []string{"warp"}}).Expand(); err == nil {
		t.Fatal("unknown model kind accepted")
	}
	if _, err := (scenario.Matrix{Graphs: []string{"path:n=4"}, Models: []string{"adversary:nope"}}).Expand(); err == nil {
		t.Fatal("unknown model family accepted")
	}
}

// TestAnalysisMetricDeterminism is the acceptance criterion of the
// analysis axis: a matrix carrying analyses produces, under an 8-worker
// pool, metric columns byte-identical to sequential execution — analysis
// buffers are per-session, so worker interleaving cannot perturb them.
func TestAnalysisMetricDeterminism(t *testing.T) {
	matrix := scenario.Matrix{
		Graphs:   []string{"grid:rows=4,cols=5", "cycle:n=9", "prefattach:n=24,m=2"},
		Engines:  []string{"sequential", "parallel"},
		Models:   []string{"sync", "schedule:static"},
		Analyses: []string{"coverage", "termination", "quantiles:metric=messages"},
		Seeds:    []int64{1, 2},
	}
	specs, err := matrix.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if len(s.Analyses) != 3 {
			t.Fatalf("spec %s lost its analyses", s.ID())
		}
	}
	ctx := context.Background()
	par, err := (&scenario.Runner{Workers: 8}).Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := (&scenario.Runner{Workers: 1}).Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, _ := json.Marshal(normalize(par))
	seqJSON, _ := json.Marshal(normalize(seq))
	if !bytes.Equal(parJSON, seqJSON) {
		t.Fatalf("parallel and sequential metric columns disagree:\n%s\nvs\n%s", parJSON, seqJSON)
	}
	for _, res := range par {
		if res.Err != "" {
			t.Fatalf("run %s failed: %s", res.Spec.ID(), res.Err)
		}
		if res.Metrics["coverage.covered"] != 1 {
			t.Fatalf("run %s not covered: %v", res.Spec.ID(), res.Metrics)
		}
		if int(res.Metrics["quantiles.messages"]) != res.TotalMessages {
			t.Fatalf("run %s: quantiles.messages %v != messages %d",
				res.Spec.ID(), res.Metrics["quantiles.messages"], res.TotalMessages)
		}
	}
	// The aggregate folds the metric columns into per-cell summaries.
	agg := scenario.NewAggregate()
	if _, err := (&scenario.Runner{Workers: 4, Sink: agg}).Run(ctx, specs); err != nil {
		t.Fatal(err)
	}
	for _, c := range agg.Cells() {
		summary, ok := c.MetricSummary("quantiles.messages")
		if !ok || summary.N == 0 {
			t.Fatalf("cell %s/%s lacks a quantiles.messages summary", c.Graph, c.Model)
		}
		if q, ok := c.MetricQuantile("quantiles.messages", 0.5); !ok || q != summary.Median {
			t.Fatalf("cell %s/%s: median quantile %g != summary median %g", c.Graph, c.Model, q, summary.Median)
		}
	}

	if _, err := (scenario.Matrix{Graphs: []string{"path:n=4"}, Analyses: []string{"nosuch"}}).Expand(); err == nil {
		t.Fatal("unknown analysis family accepted")
	}
}

func TestMatrixErrors(t *testing.T) {
	cases := []scenario.Matrix{
		{},                               // no graphs
		{Graphs: []string{"nosuch:n=4"}}, // unknown family
		{Graphs: []string{"path:zz=1"}},  // bad graph parameter
		{Graphs: []string{"path:n=4"}, Engines: []string{"warp"}},            // unknown engine
		{Graphs: []string{"path:n=4"}, Protocols: []string{"nosuch"}},        // unknown protocol
		{Graphs: []string{"path:n=4"}, Analyses: []string{"nosuch"}},         // unknown analysis
		{Graphs: []string{"path:n=4"}, Analyses: []string{"quantiles:zz=1"}}, // bad analysis parameter
	}
	for i, m := range cases {
		if _, err := m.Expand(); err == nil {
			t.Errorf("case %d: Expand succeeded, want error", i)
		}
	}
}

// normalize zeroes the one nondeterministic field so runs can be compared
// byte-for-byte.
func normalize(results []scenario.Result) []scenario.Result {
	out := append([]scenario.Result(nil), results...)
	for i := range out {
		out[i].WallMicros = 0
	}
	return out
}

// TestRunnerParallelMatchesSequential is the acceptance criterion: the full
// matrix under an 8-worker pool produces results byte-identical
// (order-normalised, wall time excluded) to sequential execution of the
// same specs.
func TestRunnerParallelMatchesSequential(t *testing.T) {
	specs, err := acceptanceMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	par, err := (&scenario.Runner{Workers: 8}).Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := (&scenario.Runner{Workers: 1}).Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(specs) || len(seq) != len(specs) {
		t.Fatalf("result counts %d/%d, want %d", len(par), len(seq), len(specs))
	}
	parJSON, err := json.Marshal(normalize(par))
	if err != nil {
		t.Fatal(err)
	}
	seqJSON, err := json.Marshal(normalize(seq))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parJSON, seqJSON) {
		t.Fatalf("parallel and sequential suites disagree:\n%s\nvs\n%s", parJSON, seqJSON)
	}
	for _, res := range par {
		if res.Err != "" {
			t.Errorf("%s failed: %s", res.Spec.ID(), res.Err)
		}
		if !res.Terminated {
			t.Errorf("%s did not terminate", res.Spec.ID())
		}
		if res.N == 0 || res.Rounds == 0 || res.TotalMessages == 0 {
			t.Errorf("%s has empty outcome: %+v", res.Spec.ID(), res)
		}
	}
}

// TestRunnerSeedsVaryRandomFamilies: distinct seeds rebuild random graphs,
// so the same family yields different instances across the seed axis.
func TestRunnerSeedsVaryRandomFamilies(t *testing.T) {
	specs, err := scenario.Matrix{
		Graphs: []string{"randconnected:n=40,p=0.05"},
		Seeds:  []int64{1, 2},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&scenario.Runner{Workers: 2}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].M == results[1].M && results[0].TotalMessages == results[1].TotalMessages {
		t.Error("two seeds produced identical instances and runs (suspicious)")
	}
}

func TestRunnerMultiOriginAndErrorSpecs(t *testing.T) {
	specs := []scenario.Spec{
		{Graph: "cycle:n=12", Protocol: "multiflood", Engine: "fast", Origins: []graph.NodeID{0, 6}, Seed: 1},
		{Graph: "cycle:n=12", Protocol: "amnesiac", Engine: "fast", Origins: []graph.NodeID{99}, Seed: 1},
		{Graph: "cycle:n=2", Protocol: "amnesiac", Engine: "fast", Origins: []graph.NodeID{0}, Seed: 1},
	}
	results, err := (&scenario.Runner{Workers: 4}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	var okRuns, errRuns int
	for _, r := range results {
		if r.Err == "" {
			okRuns++
			if !r.Terminated {
				t.Errorf("%s did not terminate", r.Spec.ID())
			}
		} else {
			errRuns++
		}
	}
	if okRuns != 1 || errRuns != 2 {
		t.Fatalf("ok=%d err=%d, want 1 ok (multiflood) and 2 errors (bad origin, bad graph)", okRuns, errRuns)
	}
}

func TestRunnerCancellation(t *testing.T) {
	specs, err := scenario.Matrix{
		Graphs:  []string{"grid:rows=40,cols=40"},
		Engines: []string{"sequential"},
		Reps:    50,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := (&scenario.Runner{Workers: 2}).Run(ctx, specs)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if len(results) == len(specs) {
		t.Log("cancelled run still completed everything (tiny suite); acceptable but unexpected")
	}
}

func TestSinks(t *testing.T) {
	specs, err := scenario.Matrix{
		Graphs:    []string{"path:n=6", "cycle:n=7"},
		Protocols: []string{"amnesiac"},
		Engines:   []string{"sequential", "fast"},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var jsonl, csvBuf bytes.Buffer
	csvSink := scenario.NewCSVSink(&csvBuf)
	agg := scenario.NewAggregate()
	sink := scenario.MultiSink{scenario.NewJSONLSink(&jsonl), csvSink, agg}
	results, err := (&scenario.Runner{Workers: 2, Sink: sink}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := csvSink.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != len(specs) {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), len(specs))
	}
	for _, line := range lines {
		var res scenario.Result
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if res.Spec.Graph == "" || res.Rounds == 0 {
			t.Fatalf("JSONL line missing fields: %q", line)
		}
	}

	csvLines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(csvLines) != len(specs)+1 {
		t.Fatalf("CSV has %d lines, want header + %d", len(csvLines), len(specs))
	}
	if !strings.HasPrefix(csvLines[0], "graph,protocol,engine") {
		t.Fatalf("CSV header = %q", csvLines[0])
	}

	if got := agg.Results(); !reflect.DeepEqual(got, results) {
		t.Fatal("aggregate retained different results than the runner returned")
	}
	cells := agg.Cells()
	if len(cells) != 4 { // 2 graphs x 1 protocol x 2 engines
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Runs != 1 || c.Errors != 0 || c.MinRounds == 0 || c.MeanRounds() == 0 {
			t.Errorf("cell %+v has wrong stats", c)
		}
	}
	var table bytes.Buffer
	if err := agg.Fprint(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "path:n=6") {
		t.Fatalf("aggregate table missing rows:\n%s", table.String())
	}
}

func TestSpecIDStable(t *testing.T) {
	s := scenario.Spec{Graph: "path:n=4", Protocol: "amnesiac", Engine: "fast",
		Origins: []graph.NodeID{1, 2}, Analyses: []string{"coverage", "termination"},
		Seed: 3, Rep: 1,
		Params: map[string]string{"b": "2", "a": "1"}, MaxRounds: 9}
	want := `path:n=4|amnesiac|fast|sync|o=1,2|a=coverage+termination|seed=3|rep=1|a="1",b="2"|max=9`
	if got := s.ID(); got != want {
		t.Fatalf("ID = %q, want %q", got, want)
	}
	// Param values containing the separator cannot collide two specs.
	a := scenario.Spec{Graph: "path:n=4", Params: map[string]string{"a": "1,b=2"}}
	b := scenario.Spec{Graph: "path:n=4", Params: map[string]string{"a": "1", "b": "2"}}
	if a.ID() == b.ID() {
		t.Fatalf("distinct specs share ID %q", a.ID())
	}
}

// errorSink fails every write, standing in for a closed pipe or full disk.
type errorSink struct{}

func (errorSink) Write(scenario.Result) error { return errors.New("pipe closed") }

// TestRunnerStopsOnSinkError: the first sink failure cancels the remaining
// work instead of burning through the whole suite with writes skipped.
func TestRunnerStopsOnSinkError(t *testing.T) {
	matrix := scenario.Matrix{Graphs: []string{"path:n=4"}, Seeds: make([]int64, 0, 200)}
	for s := int64(1); s <= 200; s++ {
		matrix.Seeds = append(matrix.Seeds, s)
	}
	specs, err := matrix.Expand()
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&scenario.Runner{Workers: 1, Sink: errorSink{}}).Run(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "sink") {
		t.Fatalf("err = %v, want sink error", err)
	}
	if len(results) == len(specs) {
		t.Fatalf("suite ran all %d specs despite the sink failing on the first", len(specs))
	}
}
