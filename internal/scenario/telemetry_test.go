package scenario_test

// Telemetry gate tests: the observability subsystem's hard constraint is
// that instrumentation is read-only with respect to simulation state. The
// two differential gates here prove it — a metrics-on suite produces
// byte-identical rows to a metrics-off suite (under chaos, retries, and
// watchdog timeouts, so every counter fires), and an obs-feeding round
// observer leaves traces byte-identical across every engine kind. CI runs
// this package under the race detector, so the lock-free metric updates are
// exercised concurrently while the gates compare.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"amnesiacflood/internal/chaos"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/obs"
	"amnesiacflood/internal/scenario"
	"amnesiacflood/internal/sim"
)

// sortedJSONL decodes sink-order JSONL, order-normalises it, zeroes the
// execution bookkeeping, and re-renders — the canonical comparison form for
// rows that travelled through a sink.
func sortedJSONL(t *testing.T, raw []byte) []byte {
	t.Helper()
	var rows []scenario.Result
	dec := json.NewDecoder(bytes.NewReader(raw))
	for dec.More() {
		var res scenario.Result
		if err := dec.Decode(&res); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, res)
	}
	scenario.SortResults(rows)
	return toJSONL(t, rows)
}

// TestTelemetryDoesNotPerturbRows is the row half of the differential gate:
// the same suite — with chaos injection, retries, and a watchdog-killed
// bounce spec, so attempts, retries, backoff sleeps, timeouts, recovered
// panics, chaos faults, and every row class all fire — run once without and
// once with a Telemetry attached, must produce byte-identical normalised
// rows both as returned results and through a JSONL sink.
func TestTelemetryDoesNotPerturbRows(t *testing.T) {
	matrix := scenario.Matrix{
		Graphs:    []string{"grid:rows=4,cols=4", "cycle:n=9"},
		Protocols: []string{"amnesiac", "classic"},
		Engines:   []string{"sequential", "parallel"},
		Analyses:  []string{"coverage"},
		Seeds:     []int64{1, 2},
	}
	specs, err := matrix.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// A watchdog-killed run and a deterministic error row (an origin outside
	// the graph — unlike a panic row, its message carries no stack, so it is
	// byte-stable across runs), covering the timeout and error row classes.
	specs = append(specs,
		scenario.Spec{Graph: "path:n=6", Protocol: "bounce", Engine: "sequential", Seed: 1, Timeout: 30 * time.Millisecond},
		scenario.Spec{Graph: "path:n=6", Protocol: "amnesiac", Engine: "sequential", Seed: 1, Origins: []graph.NodeID{99}},
	)
	ctx := context.Background()
	run := func(tel *scenario.Telemetry) ([]scenario.Result, []byte) {
		inj, err := chaos.Parse("chaos:rate=0.25,kinds=err|panic,seed=7")
		if err != nil {
			t.Fatal(err)
		}
		var sinkBuf bytes.Buffer
		results, err := (&scenario.Runner{
			Workers:    4,
			Retries:    8,
			Backoff:    time.Millisecond,
			RunTimeout: 5 * time.Second,
			Chaos:      inj,
			Metrics:    tel,
			Sink:       scenario.NewJSONLSink(&sinkBuf),
		}).Run(ctx, specs)
		if err != nil {
			t.Fatal(err)
		}
		return results, sinkBuf.Bytes()
	}

	plain, plainSink := run(nil)
	tel := scenario.NewTelemetry(obs.NewRegistry())
	metered, meteredSink := run(tel)

	if got, want := toJSONL(t, metered), toJSONL(t, plain); !bytes.Equal(got, want) {
		t.Fatalf("metrics-on rows diverged from metrics-off rows:\n%s\nvs\n%s", got, want)
	}
	if got, want := sortedJSONL(t, meteredSink), sortedJSONL(t, plainSink); !bytes.Equal(got, want) {
		t.Fatalf("metrics-on sink output diverged from metrics-off sink output:\n%s\nvs\n%s", got, want)
	}

	// The gate proves nothing if the counters never fired: every resilience
	// path must have been exercised by the run above.
	sum := tel.Summary()
	if sum.Rows != uint64(len(specs)) {
		t.Fatalf("rows counter = %d, want %d", sum.Rows, len(specs))
	}
	if sum.Attempts < sum.Rows {
		t.Fatalf("attempts (%d) < rows (%d)", sum.Attempts, sum.Rows)
	}
	if sum.Retries == 0 || sum.BackoffSleeps == 0 {
		t.Fatalf("chaos suite recorded no retries (%d) or sleeps (%d)", sum.Retries, sum.BackoffSleeps)
	}
	if sum.Timeouts == 0 {
		t.Fatal("bounce spec recorded no watchdog timeout")
	}
	if sum.Panics == 0 {
		t.Fatal("chaos panic kind recorded no recovered panic")
	}
	if sum.ChaosFaults == 0 {
		t.Fatal("injector fired no recorded fault")
	}
	for _, phase := range []string{"build", "run", "analyze", "sink"} {
		if _, ok := sum.PhaseSeconds[phase]; !ok {
			t.Fatalf("phase %q missing from summary %v", phase, sum.PhaseSeconds)
		}
	}
	t.Logf("telemetry summary: %+v", sum)
}

// TestObserverMetricsDoNotPerturbTraces is the trace half of the gate:
// attaching a round observer that streams every round into obs metrics must
// leave the recorded trace (and the whole result) byte-identical to an
// unobserved traced run, for every engine kind.
func TestObserverMetricsDoNotPerturbTraces(t *testing.T) {
	g, err := gen.Build("grid:rows=5,cols=5", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []sim.EngineKind{sim.Sequential, sim.Channels, sim.Fast, sim.Parallel, sim.Bitset} {
		opts := []sim.Option{
			sim.WithProtocol("amnesiac"),
			sim.WithEngine(kind),
			sim.WithTrace(true),
			sim.WithOrigins(0),
		}
		runOnce := func(extra ...sim.Option) engine.Result {
			sess, err := sim.New(g, append(append([]sim.Option(nil), opts...), extra...)...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sess.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			res.WallTime, res.Phases = 0, engine.PhaseTimings{}
			return res
		}

		plain := runOnce()
		reg := obs.NewRegistry()
		rounds := reg.Counter("test_rounds_total", "")
		msgs := reg.Counter("test_messages_total", "")
		fanout := reg.Histogram("test_round_sends", "", obs.LinearBuckets(1, 4, 8))
		observed := runOnce(sim.WithObserver(engine.ObserverFunc(func(rec engine.RoundRecord) (bool, error) {
			rounds.Inc()
			msgs.Add(uint64(len(rec.Sends)))
			fanout.Observe(float64(len(rec.Sends)))
			return false, nil
		})))

		plainJSON, _ := json.Marshal(plain)
		observedJSON, _ := json.Marshal(observed)
		if !bytes.Equal(plainJSON, observedJSON) {
			t.Fatalf("%v: observed run diverged from plain run:\n%s\nvs\n%s", kind, observedJSON, plainJSON)
		}
		if len(plain.Trace) == 0 {
			t.Fatalf("%v: traced run recorded no rounds", kind)
		}
		snap := reg.Snapshot()
		if got, _ := snap.Value("test_rounds_total"); int(got) != observed.Rounds {
			t.Fatalf("%v: observer counted %v rounds, result says %d", kind, got, observed.Rounds)
		}
		if got, _ := snap.Value("test_messages_total"); int(got) != observed.TotalMessages {
			t.Fatalf("%v: observer counted %v messages, result says %d", kind, got, observed.TotalMessages)
		}
	}
}
