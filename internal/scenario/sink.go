package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Sink consumes results as the Runner completes them. The Runner serialises
// Write calls, so implementations need no internal locking for its sake;
// Aggregate locks anyway because callers read it while or after a suite
// runs.
type Sink interface {
	Write(Result) error
}

// MultiSink fans every result out to several sinks in order, stopping at
// the first error.
type MultiSink []Sink

// Write implements Sink.
func (m MultiSink) Write(res Result) error {
	for _, s := range m {
		if err := s.Write(res); err != nil {
			return err
		}
	}
	return nil
}

// jsonlSink streams one JSON object per line.
type jsonlSink struct {
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing each result as one JSON line — the
// append-friendly format for long sweeps and the `make suite` smoke test.
func NewJSONLSink(w io.Writer) Sink {
	return jsonlSink{enc: json.NewEncoder(w)}
}

// Write implements Sink.
func (s jsonlSink) Write(res Result) error {
	return s.enc.Encode(res)
}

// CSVSink streams results as CSV with a fixed header. Call Flush when the
// suite is done.
type CSVSink struct {
	w           *csv.Writer
	wroteHeader bool
}

// NewCSVSink returns a CSV sink over w.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

// csvHeader is the column layout of CSVSink.
var csvHeader = []string{
	"graph", "protocol", "engine", "model", "origins", "seed", "rep",
	"n", "m", "rounds", "messages", "lost", "terminated", "stopped",
	"outcome", "cycle_start", "cycle_length", "wall_us", "err",
}

// Write implements Sink.
func (s *CSVSink) Write(res Result) error {
	if !s.wroteHeader {
		if err := s.w.Write(csvHeader); err != nil {
			return err
		}
		s.wroteHeader = true
	}
	origins := make([]string, len(res.Spec.Origins))
	for i, o := range res.Spec.Origins {
		origins[i] = strconv.Itoa(int(o))
	}
	return s.w.Write([]string{
		res.Spec.Graph, res.Spec.Protocol, res.Spec.Engine, modelOf(res.Spec), strings.Join(origins, " "),
		strconv.FormatInt(res.Spec.Seed, 10), strconv.Itoa(res.Spec.Rep),
		strconv.Itoa(res.N), strconv.Itoa(res.M),
		strconv.Itoa(res.Rounds), strconv.Itoa(res.TotalMessages), strconv.Itoa(res.Lost),
		strconv.FormatBool(res.Terminated), strconv.FormatBool(res.Stopped),
		res.Outcome, strconv.Itoa(res.CycleStart), strconv.Itoa(res.CycleLength),
		strconv.FormatInt(res.WallMicros, 10), res.Err,
	})
}

// modelOf renders a spec's model axis with the empty spelling normalised.
func modelOf(s Spec) string {
	if s.Model == "" {
		return "sync"
	}
	return s.Model
}

// Flush drains the CSV writer's buffer and reports any deferred write
// error.
func (s *CSVSink) Flush() error {
	s.w.Flush()
	return s.w.Error()
}

// Aggregate is the in-memory sink: it retains every result and folds
// per-(graph, protocol, engine) statistics as they stream in.
type Aggregate struct {
	mu      sync.Mutex
	results []Result
	cells   map[string]*Cell
}

// Cell is one aggregation bucket of an Aggregate.
type Cell struct {
	// Graph, Protocol, Engine, and Model identify the bucket.
	Graph    string
	Protocol string
	Engine   string
	Model    string
	// Runs and Errors count completed and failed runs.
	Runs   int
	Errors int
	// Certified counts runs ending in a non-termination certificate.
	Certified int
	// MinRounds/MaxRounds/SumRounds summarise round counts over the
	// non-failed runs, and SumMessages their message totals.
	MinRounds   int
	MaxRounds   int
	SumRounds   int
	SumMessages int
	// SumWallMicros accumulates wall time over non-failed runs.
	SumWallMicros int64
}

// MeanRounds returns the mean round count over successful runs.
func (c *Cell) MeanRounds() float64 {
	if n := c.Runs - c.Errors; n > 0 {
		return float64(c.SumRounds) / float64(n)
	}
	return 0
}

// NewAggregate returns an empty in-memory sink.
func NewAggregate() *Aggregate {
	return &Aggregate{cells: map[string]*Cell{}}
}

// Write implements Sink.
func (a *Aggregate) Write(res Result) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.results = append(a.results, res)
	key := res.Spec.Graph + "|" + res.Spec.Protocol + "|" + res.Spec.Engine + "|" + modelOf(res.Spec)
	cell, ok := a.cells[key]
	if !ok {
		cell = &Cell{Graph: res.Spec.Graph, Protocol: res.Spec.Protocol, Engine: res.Spec.Engine, Model: modelOf(res.Spec)}
		a.cells[key] = cell
	}
	cell.Runs++
	if res.Err != "" {
		cell.Errors++
		return nil
	}
	if res.CycleLength > 0 {
		cell.Certified++
	}
	if cell.Runs-cell.Errors == 1 || res.Rounds < cell.MinRounds {
		cell.MinRounds = res.Rounds
	}
	if res.Rounds > cell.MaxRounds {
		cell.MaxRounds = res.Rounds
	}
	cell.SumRounds += res.Rounds
	cell.SumMessages += res.TotalMessages
	cell.SumWallMicros += res.WallMicros
	return nil
}

// Results returns every retained result sorted by Spec ID (the
// order-normalised form).
func (a *Aggregate) Results() []Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := append([]Result(nil), a.results...)
	sortByID(out)
	return out
}

// Cells returns the aggregation buckets sorted by (graph, protocol,
// engine).
func (a *Aggregate) Cells() []*Cell {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Cell, 0, len(a.cells))
	for _, c := range a.cells {
		cp := *c
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graph != out[j].Graph {
			return out[i].Graph < out[j].Graph
		}
		if out[i].Protocol != out[j].Protocol {
			return out[i].Protocol < out[j].Protocol
		}
		if out[i].Engine != out[j].Engine {
			return out[i].Engine < out[j].Engine
		}
		return out[i].Model < out[j].Model
	})
	return out
}

// Fprint renders the aggregate as an aligned text table, one row per cell.
func (a *Aggregate) Fprint(w io.Writer) error {
	cells := a.Cells()
	if _, err := fmt.Fprintf(w, "%-40s %-12s %-12s %-28s %5s %4s %5s %6s %6s %8s %10s %10s\n",
		"graph", "protocol", "engine", "model", "runs", "err", "cert", "minR", "maxR", "meanR", "msgs", "wall_us"); err != nil {
		return err
	}
	for _, c := range cells {
		if _, err := fmt.Fprintf(w, "%-40s %-12s %-12s %-28s %5d %4d %5d %6d %6d %8.1f %10d %10d\n",
			c.Graph, c.Protocol, c.Engine, c.Model, c.Runs, c.Errors, c.Certified,
			c.MinRounds, c.MaxRounds, c.MeanRounds(), c.SumMessages, c.SumWallMicros); err != nil {
			return err
		}
	}
	return nil
}
