package scenario

import (
	"compress/gzip"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"

	"amnesiacflood/internal/chaos"
	"amnesiacflood/internal/stats"
)

// Sink consumes results as the Runner completes them. The Runner serialises
// Write calls, so implementations need no internal locking for its sake;
// Aggregate locks anyway because callers read it while or after a suite
// runs.
type Sink interface {
	Write(Result) error
}

// MultiSink fans every result out to several sinks in order. Every sink is
// attempted even when an earlier one fails — one broken file sink must not
// blind the aggregate riding beside it — and the failures are joined into
// the returned error (matchable individually with errors.Is/errors.As).
type MultiSink []Sink

// Write implements Sink.
func (m MultiSink) Write(res Result) error {
	var errs []error
	for _, s := range m {
		if s == nil {
			continue
		}
		if err := s.Write(res); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// NewChaosSink wraps sink with fault injection at the chaos sink site, keyed
// by each row's Spec ID: injected errors surface as Write failures (and
// injected panics as real panics) — the harness for exercising suite
// sink-failure paths deterministically (see internal/chaos).
func NewChaosSink(sink Sink, inj *chaos.Injector) Sink {
	return chaosSink{sink: sink, inj: inj}
}

type chaosSink struct {
	sink Sink
	inj  *chaos.Injector
}

// Write implements Sink.
func (c chaosSink) Write(res Result) error {
	if err := c.inj.Inject(context.Background(), chaos.SiteSink, res.Spec.ID(), 1); err != nil {
		return err
	}
	return c.sink.Write(res)
}

// jsonlSink streams one JSON object per line.
type jsonlSink struct {
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing each result as one JSON line — the
// append-friendly format for long sweeps and the `make suite` smoke test.
func NewJSONLSink(w io.Writer) Sink {
	return jsonlSink{enc: json.NewEncoder(w)}
}

// Write implements Sink.
func (s jsonlSink) Write(res Result) error {
	return s.enc.Encode(res)
}

// NewJSONLFileSink creates (truncating) the file at path and returns a JSONL
// sink over it. A path ending in ".gz" is transparently gzip-compressed
// (stdlib compress/gzip — rows land as one gzip stream whose decompressed
// bytes are exactly the plain sink's output). The returned Closer flushes
// the compressor (when present) and closes the file; callers must Close to
// get a complete stream.
func NewJSONLFileSink(path string) (Sink, io.Closer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: jsonl sink: %w", err)
	}
	if !strings.HasSuffix(path, ".gz") {
		return NewJSONLSink(f), f, nil
	}
	zw := gzip.NewWriter(f)
	return NewJSONLSink(zw), closerFunc(func() error {
		err := zw.Close()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}), nil
}

// closerFunc adapts a func to io.Closer.
type closerFunc func() error

// Close implements io.Closer.
func (f closerFunc) Close() error { return f() }

// CSVSink streams results as CSV with a fixed header. Call Flush when the
// suite is done.
type CSVSink struct {
	w           *csv.Writer
	metricCols  []string
	wroteHeader bool
}

// NewCSVSink returns a CSV sink over w. metricCols, when given, appends one
// flattened column per analysis metric name ("<family>.<metric>"; plan them
// with analysis.MetricColumns over the suite's analysis specs) — a run that
// did not emit a planned metric leaves the cell empty.
func NewCSVSink(w io.Writer, metricCols ...string) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w), metricCols: metricCols}
}

// csvHeader is the column layout of CSVSink.
var csvHeader = []string{
	"graph", "protocol", "engine", "model", "origins", "seed", "rep",
	"n", "m", "rounds", "messages", "lost", "terminated", "stopped",
	"outcome", "cycle_start", "cycle_length", "wall_us", "err",
}

// writeHeader emits the header row once.
func (s *CSVSink) writeHeader() error {
	if s.wroteHeader {
		return nil
	}
	if err := s.w.Write(append(append([]string(nil), csvHeader...), s.metricCols...)); err != nil {
		return err
	}
	s.wroteHeader = true
	return nil
}

// Write implements Sink.
func (s *CSVSink) Write(res Result) error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	origins := make([]string, len(res.Spec.Origins))
	for i, o := range res.Spec.Origins {
		origins[i] = strconv.Itoa(int(o))
	}
	row := []string{
		res.Spec.Graph, res.Spec.Protocol, res.Spec.Engine, modelOf(res.Spec), strings.Join(origins, " "),
		strconv.FormatInt(res.Spec.Seed, 10), strconv.Itoa(res.Spec.Rep),
		strconv.Itoa(res.N), strconv.Itoa(res.M),
		strconv.Itoa(res.Rounds), strconv.Itoa(res.TotalMessages), strconv.Itoa(res.Lost),
		strconv.FormatBool(res.Terminated), strconv.FormatBool(res.Stopped),
		res.Outcome, strconv.Itoa(res.CycleStart), strconv.Itoa(res.CycleLength),
		strconv.FormatInt(res.WallMicros, 10), res.Err,
	}
	for _, col := range s.metricCols {
		v, ok := res.Metrics[col]
		if !ok {
			row = append(row, "")
			continue
		}
		row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
	}
	return s.w.Write(row)
}

// modelOf renders a spec's model axis with the empty spelling normalised.
func modelOf(s Spec) string {
	if s.Model == "" {
		return "sync"
	}
	return s.Model
}

// Flush drains the CSV writer's buffer and reports any deferred write
// error. An empty or all-skipped suite still gets its header: Flush emits it
// when no row did, so the output is a valid (if rowless) CSV file rather
// than empty bytes.
func (s *CSVSink) Flush() error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	s.w.Flush()
	return s.w.Error()
}

// Aggregate is the in-memory sink: it retains every result and folds
// per-(graph, protocol, engine) statistics as they stream in.
type Aggregate struct {
	mu      sync.Mutex
	results []Result
	cells   map[string]*Cell
}

// Cell is one aggregation bucket of an Aggregate.
type Cell struct {
	// Graph, Protocol, Engine, and Model identify the bucket.
	Graph    string
	Protocol string
	Engine   string
	Model    string
	// Runs and Errors count completed and failed runs.
	Runs   int
	Errors int
	// Certified counts runs ending in a non-termination certificate.
	Certified int
	// MinRounds/MaxRounds/SumRounds summarise round counts over the
	// non-failed runs, and SumMessages their message totals.
	MinRounds   int
	MaxRounds   int
	SumRounds   int
	SumMessages int
	// SumWallMicros accumulates wall time over non-failed runs.
	SumWallMicros int64
	// metricSamples retains every analysis metric value of the cell's
	// non-failed runs, keyed by "<family>.<metric>" — the input to
	// MetricSummary.
	metricSamples map[string][]float64
}

// MeanRounds returns the mean round count over successful runs.
func (c *Cell) MeanRounds() float64 {
	if n := c.Runs - c.Errors; n > 0 {
		return float64(c.SumRounds) / float64(n)
	}
	return 0
}

// MetricNames lists the analysis metric columns observed in this cell,
// sorted.
func (c *Cell) MetricNames() []string {
	names := make([]string, 0, len(c.metricSamples))
	for name := range c.metricSamples {
		names = append(names, name)
	}
	slices.Sort(names)
	return names
}

// MetricSummary folds the cell's sample of the named analysis metric into
// a stats.Summary (n, mean, stddev, min, median, max) — the scenario-layer
// aggregation the quantiles analysis family feeds. ok is false when no run
// of the cell emitted the metric. The sample is sorted before summing:
// samples accumulate in worker-completion order, and float addition is not
// associative, so sorting keeps the summary bit-identical across worker
// counts like every other aggregate quantity.
func (c *Cell) MetricSummary(name string) (stats.Summary, bool) {
	sample, ok := c.metricSamples[name]
	if !ok {
		return stats.Summary{}, false
	}
	sorted := append([]float64(nil), sample...)
	slices.Sort(sorted)
	return stats.Summarize(sorted), true
}

// MetricQuantile returns the q-quantile of the cell's sample of the named
// metric (linear interpolation between order statistics).
func (c *Cell) MetricQuantile(name string, q float64) (float64, bool) {
	sample, ok := c.metricSamples[name]
	if !ok {
		return 0, false
	}
	return stats.Quantile(sample, q), true
}

// NewAggregate returns an empty in-memory sink.
func NewAggregate() *Aggregate {
	return &Aggregate{cells: map[string]*Cell{}}
}

// Write implements Sink.
func (a *Aggregate) Write(res Result) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.results = append(a.results, res)
	key := res.Spec.Graph + "|" + res.Spec.Protocol + "|" + res.Spec.Engine + "|" + modelOf(res.Spec)
	cell, ok := a.cells[key]
	if !ok {
		cell = &Cell{Graph: res.Spec.Graph, Protocol: res.Spec.Protocol, Engine: res.Spec.Engine, Model: modelOf(res.Spec)}
		a.cells[key] = cell
	}
	cell.Runs++
	if res.Err != "" {
		cell.Errors++
		return nil
	}
	if res.CycleLength > 0 {
		cell.Certified++
	}
	if cell.Runs-cell.Errors == 1 || res.Rounds < cell.MinRounds {
		cell.MinRounds = res.Rounds
	}
	if res.Rounds > cell.MaxRounds {
		cell.MaxRounds = res.Rounds
	}
	cell.SumRounds += res.Rounds
	cell.SumMessages += res.TotalMessages
	cell.SumWallMicros += res.WallMicros
	if len(res.Metrics) > 0 {
		if cell.metricSamples == nil {
			cell.metricSamples = map[string][]float64{}
		}
		for name, v := range res.Metrics {
			cell.metricSamples[name] = append(cell.metricSamples[name], v)
		}
	}
	return nil
}

// Results returns every retained result sorted by Spec ID (the
// order-normalised form).
func (a *Aggregate) Results() []Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := append([]Result(nil), a.results...)
	sortByID(out)
	return out
}

// Cells returns the aggregation buckets sorted by (graph, protocol,
// engine).
func (a *Aggregate) Cells() []*Cell {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Cell, 0, len(a.cells))
	for _, c := range a.cells {
		cp := *c
		if len(c.metricSamples) > 0 {
			cp.metricSamples = make(map[string][]float64, len(c.metricSamples))
			for name, sample := range c.metricSamples {
				cp.metricSamples[name] = append([]float64(nil), sample...)
			}
		}
		out = append(out, &cp)
	}
	slices.SortFunc(out, func(a, b *Cell) int {
		if c := strings.Compare(a.Graph, b.Graph); c != 0 {
			return c
		}
		if c := strings.Compare(a.Protocol, b.Protocol); c != 0 {
			return c
		}
		if c := strings.Compare(a.Engine, b.Engine); c != 0 {
			return c
		}
		return strings.Compare(a.Model, b.Model)
	})
	return out
}

// Fprint renders the aggregate as an aligned text table, one row per cell,
// followed by one summary line per analysis metric column the cell
// collected (mean, stddev, min, median, max over the cell's runs).
func (a *Aggregate) Fprint(w io.Writer) error {
	cells := a.Cells()
	if _, err := fmt.Fprintf(w, "%-40s %-12s %-12s %-28s %5s %4s %5s %6s %6s %8s %10s %10s\n",
		"graph", "protocol", "engine", "model", "runs", "err", "cert", "minR", "maxR", "meanR", "msgs", "wall_us"); err != nil {
		return err
	}
	for _, c := range cells {
		if _, err := fmt.Fprintf(w, "%-40s %-12s %-12s %-28s %5d %4d %5d %6d %6d %8.1f %10d %10d\n",
			c.Graph, c.Protocol, c.Engine, c.Model, c.Runs, c.Errors, c.Certified,
			c.MinRounds, c.MaxRounds, c.MeanRounds(), c.SumMessages, c.SumWallMicros); err != nil {
			return err
		}
		for _, name := range c.MetricNames() {
			summary, _ := c.MetricSummary(name)
			if _, err := fmt.Fprintf(w, "    %-36s %s\n", name, summary); err != nil {
				return err
			}
		}
	}
	return nil
}
