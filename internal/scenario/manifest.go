package scenario

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Manifest is the resumable-checkpoint sink: it journals every completed
// Result as one JSON line to an append-only file, and on open replays the
// journal so Runner.Resume can skip the specs a killed sweep already
// finished. The file format is exactly the JSONL sink's — a checkpoint is a
// valid (unordered) suite output in its own right.
//
// A process killed mid-write may leave a truncated final line; OpenManifest
// detects it and truncates the file back to the last complete row, so the
// journal stays appendable across any number of kills.
type Manifest struct {
	mu   sync.Mutex
	f    *os.File
	enc  *json.Encoder
	done map[string]Result // completed rows by Spec ID, first write wins
}

// OpenManifest opens (creating if needed) the checkpoint at path, replays
// its completed rows, and positions it for appending.
func OpenManifest(path string) (*Manifest, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("scenario: open manifest: %w", err)
	}
	m := &Manifest{f: f, enc: json.NewEncoder(f), done: map[string]Result{}}
	if err := m.load(); err != nil {
		f.Close()
		return nil, err
	}
	return m, nil
}

// load replays the journal, recording each decodable row and truncating the
// file after the last complete line (dropping a torn tail from a mid-write
// kill).
func (m *Manifest) load() error {
	if _, err := m.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("scenario: manifest: %w", err)
	}
	r := bufio.NewReader(m.f)
	var good int64
	for {
		line, err := r.ReadBytes('\n')
		if err == nil {
			var res Result
			if jsonErr := json.Unmarshal(line, &res); jsonErr != nil {
				// A corrupt interior line means the file is not our journal;
				// refuse rather than silently rerun or overwrite.
				return fmt.Errorf("scenario: manifest has a corrupt row at byte %d: %w", good, jsonErr)
			}
			id := res.Spec.ID()
			if _, dup := m.done[id]; !dup {
				m.done[id] = res
			}
			good += int64(len(line))
			continue
		}
		if err == io.EOF {
			// Anything after the last newline is a torn tail; len(line) may
			// be 0 (clean EOF) or a partial row to drop.
			break
		}
		return fmt.Errorf("scenario: manifest: %w", err)
	}
	if err := m.f.Truncate(good); err != nil {
		return fmt.Errorf("scenario: manifest: %w", err)
	}
	if _, err := m.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("scenario: manifest: %w", err)
	}
	return nil
}

// Write implements Sink: it journals the row and records its Spec ID as
// completed. A row whose spec is already journaled is dropped (the journal
// keeps the first outcome), so replays cannot duplicate lines.
func (m *Manifest) Write(res Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := res.Spec.ID()
	if _, ok := m.done[id]; ok {
		return nil
	}
	if err := m.enc.Encode(res); err != nil {
		return fmt.Errorf("scenario: manifest: %w", err)
	}
	m.done[id] = res
	return nil
}

// Done reports whether a spec with the given ID has a journaled row.
func (m *Manifest) Done(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.done[id]
	return ok
}

// Row returns the journaled row for the given Spec ID, if any.
func (m *Manifest) Row(id string) (Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	res, ok := m.done[id]
	return res, ok
}

// Len counts the journaled rows.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.done)
}

// Results returns every journaled row sorted by Spec ID (the
// order-normalised form).
func (m *Manifest) Results() []Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Result, 0, len(m.done))
	for _, res := range m.done {
		out = append(out, res)
	}
	sortByID(out)
	return out
}

// Close syncs and closes the journal file.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.f.Sync(); err != nil {
		m.f.Close()
		return fmt.Errorf("scenario: manifest: %w", err)
	}
	return m.f.Close()
}

// Resume executes the suite like Run, but against a checkpoint: specs whose
// rows the manifest already journals are skipped (their prior rows are
// replayed into r.Sink and merged into the returned results), and every
// newly completed row is journaled to the manifest as well as r.Sink. A
// sweep killed partway and resumed this way replays only the remainder, and
// — because every row is a deterministic function of its Spec — the merged,
// order-normalised results are identical to an uninterrupted run's (up to
// WallMicros/Attempts). A nil manifest degrades to plain Run.
func (r *Runner) Resume(ctx context.Context, m *Manifest, specs []Spec) ([]Result, error) {
	if m == nil {
		return r.Run(ctx, specs)
	}
	merged := make([]Result, 0, len(specs))
	var todo []Spec
	replayed := map[string]bool{}
	for _, s := range specs {
		id := s.ID()
		if row, ok := m.Row(id); ok && !replayed[id] {
			replayed[id] = true
			merged = append(merged, row)
			if r.Sink != nil {
				if err := r.Sink.Write(row); err != nil {
					sortByID(merged)
					return merged, fmt.Errorf("scenario: sink: %w", err)
				}
			}
			continue
		}
		todo = append(todo, s)
	}
	sub := *r
	sub.Sink = MultiSink{m, r.Sink}
	results, err := sub.Run(ctx, todo)
	merged = append(merged, results...)
	sortByID(merged)
	return merged, err
}
