// Package cli holds the small helpers shared by the cmd/ binaries: built-in
// topology lookup, graph loading, and adversary lookup. It exists so the
// binaries stay single-purpose mains. (Engine selection lives in core:
// ParseEngine and RunEngine.)
package cli

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"amnesiacflood/internal/async"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// topologies maps -topo names to constructors taking the -n size parameter.
var topologies = map[string]func(n int) *graph.Graph{
	"path":     gen.Path,
	"cycle":    gen.Cycle,
	"complete": gen.Complete,
	"clique":   gen.Complete,
	"star":     gen.Star,
	"wheel":    gen.Wheel,
	"grid": func(n int) *graph.Graph {
		return gen.Grid(n, n)
	},
	"torus": func(n int) *graph.Graph {
		return gen.Torus(n, n)
	},
	"hypercube": gen.Hypercube,
	"bintree":   gen.CompleteBinaryTree,
	"petersen": func(int) *graph.Graph {
		return gen.Petersen()
	},
	"lollipop": func(n int) *graph.Graph {
		return gen.Lollipop(4, n)
	},
	"barbell": func(n int) *graph.Graph {
		return gen.Barbell(4, n)
	},
	"randomtree": func(n int) *graph.Graph {
		return gen.RandomTree(n, rand.New(rand.NewSource(1)))
	},
	"random": func(n int) *graph.Graph {
		return gen.RandomConnected(n, 4/float64(n+1), rand.New(rand.NewSource(1)))
	},
}

// TopologyNames lists the -topo values, sorted.
func TopologyNames() []string {
	names := make([]string, 0, len(topologies))
	for name := range topologies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LoadGraph resolves the -topo/-n or -file flags into a graph.
func LoadGraph(topo string, n int, file string) (*graph.Graph, error) {
	switch {
	case topo != "" && file != "":
		return nil, fmt.Errorf("use either -topo or -file, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := graph.ReadEdgeList(f)
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", file, err)
		}
		return g, nil
	case topo != "":
		ctor, ok := topologies[strings.ToLower(topo)]
		if !ok {
			return nil, fmt.Errorf("unknown topology %q (have: %s)", topo, strings.Join(TopologyNames(), ", "))
		}
		return ctor(n), nil
	default:
		return nil, fmt.Errorf("need -topo or -file")
	}
}

// Adversary resolves the -async flag into an adversary.
func Adversary(name string, seed int64) (async.Adversary, error) {
	switch strings.ToLower(name) {
	case "sync":
		return async.SyncAdversary{}, nil
	case "collision":
		return async.CollisionDelayer{}, nil
	case "uniform":
		return async.UniformDelayer{Extra: 2}, nil
	case "random":
		return async.NewRandomAdversary(seed, 3), nil
	default:
		return nil, fmt.Errorf("unknown adversary %q (want sync, collision, uniform, or random)", name)
	}
}

