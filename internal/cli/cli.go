// Package cli holds the small helpers shared by the cmd/ binaries: graph
// loading through the gen spec registry, legacy -topo aliases, and legacy
// -async adversary aliases over the model-spec registry. It exists so the
// binaries stay single-purpose mains. (Engine, protocol, and model
// selection live in the sim façade.)
package cli

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// topoAliases maps legacy -topo names to spec templates over the single -n
// size knob. New call sites should pass full specs (-graph / LoadGraphSpec);
// the aliases keep every historical -topo/-n invocation working on top of
// the registry.
var topoAliases = map[string]func(n int) string{
	"path":       func(n int) string { return fmt.Sprintf("path:n=%d", n) },
	"cycle":      func(n int) string { return fmt.Sprintf("cycle:n=%d", n) },
	"complete":   func(n int) string { return fmt.Sprintf("complete:n=%d", n) },
	"clique":     func(n int) string { return fmt.Sprintf("complete:n=%d", n) },
	"star":       func(n int) string { return fmt.Sprintf("star:n=%d", n) },
	"wheel":      func(n int) string { return fmt.Sprintf("wheel:n=%d", n) },
	"grid":       func(n int) string { return fmt.Sprintf("grid:rows=%d,cols=%d", n, n) },
	"torus":      func(n int) string { return fmt.Sprintf("torus:rows=%d,cols=%d", n, n) },
	"hypercube":  func(n int) string { return fmt.Sprintf("hypercube:d=%d", n) },
	"bintree":    func(n int) string { return fmt.Sprintf("bintree:levels=%d", n) },
	"petersen":   func(int) string { return "petersen" },
	"lollipop":   func(n int) string { return fmt.Sprintf("lollipop:k=4,path=%d", n) },
	"barbell":    func(n int) string { return fmt.Sprintf("barbell:k=4,path=%d", n) },
	"randomtree": func(n int) string { return fmt.Sprintf("tree:n=%d", n) },
	"random": func(n int) string {
		// The historical default density: expected degree ~4.
		return fmt.Sprintf("randconnected:n=%d,p=%g", n, 4/float64(n+1))
	},
}

// TopologyNames lists the legacy -topo alias names, sorted. Full spec
// strings (gen.Families) are additionally accepted anywhere a -topo name
// is.
func TopologyNames() []string {
	names := make([]string, 0, len(topoAliases))
	for name := range topoAliases {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LoadGraph resolves the legacy -topo/-n or -file flags into a graph,
// seeding random families with 1 (the historical fixed seed). New call
// sites should use LoadGraphSpec.
func LoadGraph(topo string, n int, file string) (*graph.Graph, error) {
	return LoadGraphSpec("", topo, n, file, 1)
}

// LoadGraphSpec resolves the graph-selection flags into a graph: exactly
// one of spec (-graph, a gen spec string), topo (-topo, a legacy alias or a
// spec string, sized by n), or file (-file, an edge-list path) must be set.
// Random families derive all randomness from seed.
func LoadGraphSpec(spec, topo string, n int, file string, seed int64) (*graph.Graph, error) {
	set := 0
	for _, s := range []string{spec, topo, file} {
		if s != "" {
			set++
		}
	}
	switch {
	case set > 1:
		return nil, fmt.Errorf("use exactly one of -graph, -topo, or -file")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := graph.ReadEdgeList(f)
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", file, err)
		}
		return g, nil
	case spec != "":
		return gen.Build(spec, seed)
	case topo != "":
		if alias, ok := topoAliases[strings.ToLower(strings.TrimSpace(topo))]; ok {
			return gen.Build(alias(n), seed)
		}
		// Not an alias: accept a full spec string in -topo too, so the
		// two flags converge on the same grammar — but only a spec with
		// explicit parameters (or a parameter-less family). A bare
		// family name like "tree" would silently discard -n and build
		// the default size, so it stays an error here.
		if spec, err := gen.Parse(topo); err == nil {
			if fam, ok := gen.Lookup(spec.Family); ok && len(fam.Params) > 0 && len(spec.Params) == 0 {
				return nil, fmt.Errorf("topology %q is a graph family; -n does not apply to specs, spell out its parameters (e.g. %q) or use an alias (%s)",
					topo, spec.Family+":"+fam.Params[0].Name+"=8", strings.Join(TopologyNames(), ", "))
			}
			return gen.New(spec, seed)
		}
		return nil, fmt.Errorf("unknown topology %q (aliases: %s; or a graph spec, see -list)",
			topo, strings.Join(TopologyNames(), ", "))
	default:
		return nil, fmt.Errorf("need -graph, -topo, or -file")
	}
}

// asyncAliases maps the historical -async adversary names onto model specs
// with the historical parameter choices baked in. New call sites should
// pass full model specs (-model).
var asyncAliases = map[string]string{
	"sync":      "adversary:sync",
	"collision": "adversary:collision",
	"uniform":   "adversary:uniform:extra=2",
	"random":    "adversary:random:max=3",
}

// AsyncAlias resolves a legacy -async adversary name into its model spec.
// Full "adversary:..." specs are additionally accepted, so the two flags
// converge on the same grammar.
func AsyncAlias(name string) (string, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if spec, ok := asyncAliases[key]; ok {
		return spec, nil
	}
	if strings.HasPrefix(key, "adversary:") {
		return key, nil
	}
	return "", fmt.Errorf("unknown adversary %q (want sync, collision, uniform, random, or an adversary:... model spec)", name)
}
