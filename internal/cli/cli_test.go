package cli_test

import (
	"os"
	"path/filepath"
	"testing"

	"amnesiacflood/internal/cli"
)

func TestTopologyNamesSortedAndNonEmpty(t *testing.T) {
	names := cli.TopologyNames()
	if len(names) < 10 {
		t.Fatalf("only %d topologies", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestLoadGraphTopo(t *testing.T) {
	g, err := cli.LoadGraph("cycle", 6, "")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || g.M() != 6 {
		t.Fatalf("cycle(6) = %s", g)
	}
	// Case-insensitive.
	if _, err := cli.LoadGraph("CYCLE", 6, ""); err != nil {
		t.Fatalf("uppercase topo rejected: %v", err)
	}
}

func TestLoadGraphEveryTopoBuilds(t *testing.T) {
	for _, name := range cli.TopologyNames() {
		if _, err := cli.LoadGraph(name, 8, ""); err != nil {
			t.Errorf("topology %s: %v", name, err)
		}
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := cli.LoadGraph("", 4, ""); err == nil {
		t.Error("no topo and no file accepted")
	}
	if _, err := cli.LoadGraph("cycle", 4, "x.txt"); err == nil {
		t.Error("both topo and file accepted")
	}
	if _, err := cli.LoadGraph("nosuch", 4, ""); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := cli.LoadGraph("", 4, "/does/not/exist.txt"); err == nil {
		t.Error("missing file accepted")
	}
	// Out-of-range sizes now fail with an error instead of panicking.
	if _, err := cli.LoadGraph("cycle", 2, ""); err == nil {
		t.Error("cycle of 2 nodes accepted")
	}
}

func TestLoadGraphSpec(t *testing.T) {
	g, err := cli.LoadGraphSpec("grid:rows=4,cols=5", "", 0, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.M() != 31 {
		t.Fatalf("grid:rows=4,cols=5 = %s", g)
	}
	// The seed reaches random families: distinct seeds, distinct graphs.
	a, err := cli.LoadGraphSpec("randconnected:n=40,p=0.1", "", 0, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cli.LoadGraphSpec("randconnected:n=40,p=0.1", "", 0, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() == b.M() {
		t.Log("seeds 1 and 2 built graphs with equal edge counts (possible but unlikely)")
	}
	// -topo accepts full spec strings too, converging both flags on the
	// same grammar.
	if g, err = cli.LoadGraphSpec("", "torus:rows=3,cols=5", 0, "", 1); err != nil || g.N() != 15 {
		t.Fatalf("full spec via -topo: %v, %v", g, err)
	}
}

func TestLoadGraphSpecErrors(t *testing.T) {
	cases := []struct {
		spec, topo, file string
	}{
		{"grid:rows=4", "cycle", ""}, // -graph + -topo conflict
		{"grid:rows=4", "", "g.txt"}, // -graph + -file conflict
		{"", "cycle", "g.txt"},       // -topo + -file conflict
		{"nosuchfamily:n=4", "", ""}, // unknown family
		{"grid:depth=4", "", ""},     // undeclared parameter
		{"grid:rows=four", "", ""},   // malformed value
		{"cycle:n=2", "", ""},        // out-of-range value
		{"", "", ""},                 // nothing selected
		{"", "tree", ""},             // bare family via -topo would ignore -n
		{"", "gnp", ""},              // same for any parameterised family
	}
	for _, tc := range cases {
		if _, err := cli.LoadGraphSpec(tc.spec, tc.topo, 8, tc.file, 1); err == nil {
			t.Errorf("LoadGraphSpec(%q, %q, %q) succeeded, want error", tc.spec, tc.topo, tc.file)
		}
	}
}

// TestTopoAliasesMatchSpecs: every legacy alias builds the same graph as
// the spec it expands to (spot-checked via node/edge counts).
func TestTopoAliasesMatchSpecs(t *testing.T) {
	cases := []struct {
		topo string
		n    int
		spec string
	}{
		{"grid", 6, "grid:rows=6,cols=6"},
		{"clique", 7, "complete:n=7"},
		{"hypercube", 5, "hypercube:d=5"},
		{"bintree", 4, "bintree:levels=4"},
		{"lollipop", 9, "lollipop:k=4,path=9"},
		{"randomtree", 30, "tree:n=30"},
	}
	for _, tc := range cases {
		viaTopo, err := cli.LoadGraph(tc.topo, tc.n, "")
		if err != nil {
			t.Fatalf("alias %s: %v", tc.topo, err)
		}
		viaSpec, err := cli.LoadGraphSpec(tc.spec, "", 0, "", 1)
		if err != nil {
			t.Fatalf("spec %s: %v", tc.spec, err)
		}
		if viaTopo.N() != viaSpec.N() || viaTopo.M() != viaSpec.M() {
			t.Errorf("alias %s (n=%d) built %s, spec %s built %s", tc.topo, tc.n, viaTopo, tc.spec, viaSpec)
		}
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("# from file\nn 3\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := cli.LoadGraph("", 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("loaded %s", g)
	}
}

func TestAsyncAlias(t *testing.T) {
	cases := map[string]string{
		"sync":                  "adversary:sync",
		"collision":             "adversary:collision",
		"uniform":               "adversary:uniform:extra=2",
		"random":                "adversary:random:max=3",
		"SYNC":                  "adversary:sync",
		"adversary:hold:node=3": "adversary:hold:node=3",
	}
	for name, want := range cases {
		spec, err := cli.AsyncAlias(name)
		if err != nil {
			t.Errorf("alias %s: %v", name, err)
			continue
		}
		if spec != want {
			t.Errorf("alias %s = %q, want %q", name, spec, want)
		}
	}
	if _, err := cli.AsyncAlias("nosuch"); err == nil {
		t.Error("unknown adversary accepted")
	}
}
