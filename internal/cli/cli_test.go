package cli_test

import (
	"os"
	"path/filepath"
	"testing"

	"amnesiacflood/internal/cli"
)

func TestTopologyNamesSortedAndNonEmpty(t *testing.T) {
	names := cli.TopologyNames()
	if len(names) < 10 {
		t.Fatalf("only %d topologies", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestLoadGraphTopo(t *testing.T) {
	g, err := cli.LoadGraph("cycle", 6, "")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || g.M() != 6 {
		t.Fatalf("cycle(6) = %s", g)
	}
	// Case-insensitive.
	if _, err := cli.LoadGraph("CYCLE", 6, ""); err != nil {
		t.Fatalf("uppercase topo rejected: %v", err)
	}
}

func TestLoadGraphEveryTopoBuilds(t *testing.T) {
	for _, name := range cli.TopologyNames() {
		if _, err := cli.LoadGraph(name, 8, ""); err != nil {
			t.Errorf("topology %s: %v", name, err)
		}
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := cli.LoadGraph("", 4, ""); err == nil {
		t.Error("no topo and no file accepted")
	}
	if _, err := cli.LoadGraph("cycle", 4, "x.txt"); err == nil {
		t.Error("both topo and file accepted")
	}
	if _, err := cli.LoadGraph("nosuch", 4, ""); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := cli.LoadGraph("", 4, "/does/not/exist.txt"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("# from file\nn 3\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := cli.LoadGraph("", 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("loaded %s", g)
	}
}

func TestAdversaryLookup(t *testing.T) {
	for _, name := range []string{"sync", "collision", "random", "SYNC"} {
		if _, err := cli.Adversary(name, 1); err != nil {
			t.Errorf("adversary %s: %v", name, err)
		}
	}
	if _, err := cli.Adversary("nosuch", 1); err == nil {
		t.Error("unknown adversary accepted")
	}
}

