package model_test

import (
	"context"
	"strings"
	"testing"

	"amnesiacflood/internal/async"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/dynamic"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/model"
)

// fuzzGraph builds a small seeded random connected graph and picks a
// source from the fuzz inputs.
func fuzzGraph(t *testing.T, seed int64, srcPick uint8) (*graph.Graph, graph.NodeID) {
	t.Helper()
	n := 2 + int(uint64(seed)%29)
	g, err := gen.Build("randconnected:n="+itoa(n)+",p=0.15", seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, graph.NodeID(int(srcPick) % g.N())
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// syncTrace runs the synchronous reference engine on amnesiac flooding.
func syncTrace(t *testing.T, g *graph.Graph, src graph.NodeID) engine.Result {
	t.Helper()
	flood, err := core.NewFlood(g, src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(context.Background(), g, flood, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// FuzzZeroDelayAdversaryEquivalence: under the zero-delay adversary the
// asynchronous model engine must reproduce the synchronous engine's run
// byte for byte — rounds, deliveries, and the full trace.
func FuzzZeroDelayAdversaryEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(42), uint8(3))
	f.Add(int64(-7), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, srcPick uint8) {
		g, src := fuzzGraph(t, seed, srcPick)
		want := syncTrace(t, g, src)
		got, err := model.NewAsync(g, async.SyncAdversary{}).
			Run(context.Background(), []graph.NodeID{src}, engine.Options{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if got.Outcome != engine.OutcomeTerminated {
			t.Fatalf("outcome = %v", got.Outcome)
		}
		if got.Rounds != want.Rounds || got.TotalMessages != want.TotalMessages {
			t.Fatalf("rounds/messages = %d/%d, synchronous %d/%d", got.Rounds, got.TotalMessages, want.Rounds, want.TotalMessages)
		}
		if !engine.EqualTraces(got.Trace, want.Trace) {
			t.Fatal("zero-delay async trace differs from the synchronous trace")
		}
	})
}

// FuzzStaticScheduleEquivalence: under the static schedule the dynamic
// model engine must reproduce the synchronous engine's run byte for byte,
// with zero losses.
func FuzzStaticScheduleEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(99), uint8(7))
	f.Add(int64(-3), uint8(128))
	f.Fuzz(func(t *testing.T, seed int64, srcPick uint8) {
		g, src := fuzzGraph(t, seed, srcPick)
		want := syncTrace(t, g, src)
		got, err := model.NewDynamic(g, dynamic.Static{}).
			Run(context.Background(), []graph.NodeID{src}, engine.Options{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if got.Outcome != engine.OutcomeTerminated || got.Lost != 0 {
			t.Fatalf("outcome = %v lost = %d", got.Outcome, got.Lost)
		}
		if got.Rounds != want.Rounds || got.TotalMessages != want.TotalMessages {
			t.Fatalf("rounds/messages = %d/%d, synchronous %d/%d", got.Rounds, got.TotalMessages, want.Rounds, want.TotalMessages)
		}
		if !engine.EqualTraces(got.Trace, want.Trace) {
			t.Fatal("static dynamic trace differs from the synchronous trace")
		}
	})
}

// FuzzModelParse: for every string the parser accepts, the canonical form
// must round-trip exactly (Parse(s).String() == s after one
// canonicalisation) and rebuild an identical spec.
func FuzzModelParse(f *testing.F) {
	for _, s := range roundTripSpecs {
		f.Add(s)
	}
	f.Add("adversary:hold:extra=2,node=1")
	f.Add("schedule:blink:phase=1")
	f.Add("Adversary:EDGE:u=3,v=4")
	f.Add("garbage")
	f.Add("sync:::")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := model.Parse(s)
		if err != nil {
			return // rejected input; nothing to round-trip
		}
		canon := spec.String()
		if strings.ContainsAny(canon, " \t\n") {
			t.Fatalf("canonical form %q contains whitespace", canon)
		}
		again, err := model.Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", canon, again.String())
		}
		if again.Kind != spec.Kind || again.Family != spec.Family || len(again.Params) != len(spec.Params) {
			t.Fatalf("re-parsed spec diverged: %+v vs %+v", again, spec)
		}
		for k, v := range spec.Params {
			if again.Params[k] != v {
				t.Fatalf("parameter %s diverged: %q vs %q", k, again.Params[k], v)
			}
		}
	})
}
