package model_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"amnesiacflood/internal/async"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/dynamic"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/model"
	"amnesiacflood/internal/model/modeltest"
	"amnesiacflood/internal/trace"
)

func edge(u, v graph.NodeID) graph.Edge { return graph.Edge{U: u, V: v} }

func opts(maxRounds int, traced bool) engine.Options {
	return engine.Options{MaxRounds: maxRounds, Trace: traced}
}

func origins(os ...graph.NodeID) []graph.NodeID { return os }

// asyncCase is one instance of the async differential corpus.
type asyncCase struct {
	name    string
	graph   string
	seed    int64
	model   string // model spec; the seed also feeds random adversaries
	origins []graph.NodeID
}

// asyncCorpus crosses the paper's topologies with every adversary family —
// the seeded corpus the packed engine must reproduce the legacy string-key
// runner on, outcome for outcome and trace for trace.
var asyncCorpus = []asyncCase{
	{"fig5-triangle", "cycle:n=3", 1, "adversary:collision", origins(1)},
	{"triangle-sync", "cycle:n=3", 1, "adversary:sync", origins(1)},
	{"triangle-uniform", "cycle:n=3", 1, "adversary:uniform:extra=2", origins(0)},
	{"triangle-edge", "cycle:n=3", 1, "adversary:edge:u=1,v=2,extra=1", origins(1)},
	{"c5-collision", "cycle:n=5", 1, "adversary:collision", origins(0)},
	{"c6-collision", "cycle:n=6", 1, "adversary:collision", origins(0)},
	{"c7-collision", "cycle:n=7", 1, "adversary:collision", origins(2)},
	{"c9-uniform", "cycle:n=9", 1, "adversary:uniform:extra=2", origins(0)},
	{"c9-edge", "cycle:n=9", 1, "adversary:edge:u=0,v=8,extra=1", origins(0)},
	{"path8-collision", "path:n=8", 1, "adversary:collision", origins(0)},
	{"path8-hold", "path:n=8", 1, "adversary:hold:node=3,extra=2", origins(0)},
	{"path7-multi", "path:n=7", 1, "adversary:sync", origins(0, 6)},
	{"star-collision", "star:n=9", 1, "adversary:collision", origins(0)},
	{"bintree-collision", "bintree:levels=4", 1, "adversary:collision", origins(0)},
	{"bintree-random", "bintree:levels=4", 11, "adversary:random:max=3", origins(0)},
	{"k4-collision", "complete:n=4", 1, "adversary:collision", origins(0)},
	{"k5-hold", "complete:n=5", 1, "adversary:hold:node=2,extra=1", origins(1)},
	{"grid-collision", "grid:rows=4,cols=4", 1, "adversary:collision", origins(0)},
	{"petersen-collision", "petersen", 1, "adversary:collision", origins(0)},
	{"wheel-collision", "wheel:n=8", 1, "adversary:collision", origins(3)},
	{"randtree-random", "tree:n=24", 5, "adversary:random:max=2", origins(0)},
	{"randconn-collision", "randconnected:n=20,p=0.15", 7, "adversary:collision", origins(0)},
	{"randconn-random", "randconnected:n=16,p=0.2", 9, "adversary:random:max=3", origins(0)},
	{"gnp-uniform", "randconnected:n=18,p=0.18", 13, "adversary:uniform:extra=1", origins(4)},
	{"c3-multi", "cycle:n=3", 1, "adversary:collision", origins(0, 1)},
}

// TestAsyncEngineMatchesLegacyRunner is the differential gate: on every
// corpus instance the packed engine must reproduce the legacy string-key
// runner's outcome, certificate (cycle start and length), round count,
// delivery count, and full trace.
func TestAsyncEngineMatchesLegacyRunner(t *testing.T) {
	if len(asyncCorpus) < 20 {
		t.Fatalf("corpus has %d instances, want >= 20", len(asyncCorpus))
	}
	const maxRounds = 4096
	for _, tc := range asyncCorpus {
		t.Run(tc.name, func(t *testing.T) {
			g := gen.MustBuild(tc.graph, tc.seed)
			// Two independently built adversaries: random adversaries own
			// rng state, so the engines must not share one.
			legacyAdv := model.MustBuild(tc.model, tc.seed).Adversary
			packedAdv := model.MustBuild(tc.model, tc.seed).Adversary

			want, err := modeltest.AsyncRun(g, legacyAdv, maxRounds, true, tc.origins...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := model.NewAsync(g, packedAdv).Run(context.Background(), tc.origins, opts(maxRounds, true))
			if err != nil {
				t.Fatal(err)
			}

			if got.Outcome != want.Outcome {
				t.Fatalf("outcome = %v, legacy %v", got.Outcome, want.Outcome)
			}
			if got.Rounds != want.Rounds || got.TotalMessages != want.TotalMessages {
				t.Fatalf("rounds/messages = %d/%d, legacy %d/%d", got.Rounds, got.TotalMessages, want.Rounds, want.TotalMessages)
			}
			if want.Outcome == engine.OutcomeCycle {
				if got.Certificate == nil {
					t.Fatal("legacy certified non-termination, packed engine returned no certificate")
				}
				if got.Certificate.Start != want.CycleStart || got.Certificate.Length != want.CycleLength {
					t.Fatalf("certificate = start %d len %d, legacy start %d len %d",
						got.Certificate.Start, got.Certificate.Length, want.CycleStart, want.CycleLength)
				}
			} else if got.Certificate != nil {
				t.Fatalf("unexpected certificate %+v", got.Certificate)
			}
			if !engine.EqualTraces(got.Trace, want.Trace) {
				t.Fatal("packed trace differs from the legacy runner's")
			}
		})
	}
}

// dynamicCase is one instance of the dynamic differential corpus.
type dynamicCase struct {
	name    string
	graph   string
	seed    int64
	model   string
	origins []graph.NodeID
}

var dynamicCorpus = []dynamicCase{
	{"c4-static", "cycle:n=4", 1, "schedule:static", origins(0)},
	{"c4-outage", "cycle:n=4", 1, "schedule:outage:round=1,u=0,v=3", origins(0)},
	{"c6-outage", "cycle:n=6", 1, "schedule:outage:round=2,u=2,v=3", origins(0)},
	{"c7-outage", "cycle:n=7", 1, "schedule:outage:round=1,u=0,v=6", origins(0)},
	{"bintree-outage", "bintree:levels=4", 1, "schedule:outage:round=1,u=0,v=1", origins(0)},
	{"path4-blink-aligned", "path:n=4", 1, "schedule:blink:u=1,v=2,period=2,phase=0", origins(0)},
	{"path4-blink-misaligned", "path:n=4", 1, "schedule:blink:u=1,v=2,period=2,phase=1", origins(0)},
	{"c8-blink", "cycle:n=8", 1, "schedule:blink:u=0,v=7,period=3,phase=1", origins(0)},
	{"c6-alternating", "cycle:n=6", 1, "schedule:alternating", origins(0)},
	{"c7-alternating", "cycle:n=7", 1, "schedule:alternating", origins(0)},
	{"grid-alternating", "grid:rows=4,cols=4", 1, "schedule:alternating", origins(0)},
	{"k6-alternating", "complete:n=6", 1, "schedule:alternating", origins(0)},
	{"petersen-alternating", "petersen", 1, "schedule:alternating", origins(0)},
	{"grid55-blink", "grid:rows=5,cols=5", 1, "schedule:blink:u=0,v=1,period=3,phase=0", origins(0)},
	{"c10-static-multi", "cycle:n=10", 1, "schedule:static", origins(0, 5)},
	{"star-outage", "star:n=9", 1, "schedule:outage:round=1,u=0,v=4", origins(4)},
	{"wheel-alternating", "wheel:n=9", 1, "schedule:alternating", origins(2)},
	{"randconn-static", "randconnected:n=24,p=0.12", 3, "schedule:static", origins(0)},
	{"randconn-outage", "randconnected:n=20,p=0.15", 5, "schedule:outage:round=2,u=0,v=1", origins(0)},
	{"randtree-blink", "tree:n=20", 7, "schedule:blink:u=0,v=1,period=2,phase=1", origins(0)},
	{"hypercube-alternating", "hypercube:d=4", 1, "schedule:alternating", origins(0)},
}

// TestDynamicEngineMatchesLegacyRunner mirrors the async differential gate
// for the dynamic model, additionally comparing loss and coverage.
func TestDynamicEngineMatchesLegacyRunner(t *testing.T) {
	if len(dynamicCorpus) < 20 {
		t.Fatalf("corpus has %d instances, want >= 20", len(dynamicCorpus))
	}
	const maxRounds = 4096
	for _, tc := range dynamicCorpus {
		t.Run(tc.name, func(t *testing.T) {
			g := gen.MustBuild(tc.graph, tc.seed)
			sched := model.MustBuild(tc.model, tc.seed).Schedule

			want, err := modeltest.DynamicRun(g, sched, maxRounds, true, tc.origins...)
			if err != nil {
				t.Fatal(err)
			}
			cov := model.NewCoverage(g.N(), tc.origins...)
			e := model.NewDynamic(g, sched)
			o := opts(maxRounds, true)
			o.Observer = cov
			got, err := e.Run(context.Background(), tc.origins, o)
			if err != nil {
				t.Fatal(err)
			}

			if got.Outcome != want.Outcome {
				t.Fatalf("outcome = %v, legacy %v", got.Outcome, want.Outcome)
			}
			if got.Rounds != want.Rounds || got.TotalMessages != want.Delivered || got.Lost != want.Lost {
				t.Fatalf("rounds/delivered/lost = %d/%d/%d, legacy %d/%d/%d",
					got.Rounds, got.TotalMessages, got.Lost, want.Rounds, want.Delivered, want.Lost)
			}
			if want.Outcome == engine.OutcomeCycle {
				if got.Certificate == nil || got.Certificate.Start != want.CycleStart || got.Certificate.Length != want.CycleLength {
					t.Fatalf("certificate = %+v, legacy start %d len %d", got.Certificate, want.CycleStart, want.CycleLength)
				}
			}
			if !engine.EqualTraces(got.Trace, want.Trace) {
				t.Fatal("packed trace differs from the legacy runner's")
			}
			if cov.Count() != want.CoverageCount() {
				t.Fatalf("coverage = %d, legacy %d", cov.Count(), want.CoverageCount())
			}
			for v := 0; v < g.N(); v++ {
				if cov.Covered(graph.NodeID(v)) != want.Covered[v] {
					t.Fatalf("coverage of node %d diverged", v)
				}
			}
		})
	}
}

// TestFigure5TriangleCertificate pins the paper's Figure 5 schedule: the
// collision delayer on the triangle from b loops with the exact published
// rounds, and the certificate names the exact cycle.
func TestFigure5TriangleCertificate(t *testing.T) {
	e := model.NewAsync(gen.Cycle(3), async.CollisionDelayer{})
	res, err := e.Run(context.Background(), origins(1), opts(0, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != engine.OutcomeCycle {
		t.Fatalf("outcome = %v, want OutcomeCycle", res.Outcome)
	}
	if res.Certificate == nil || res.Certificate.Start != 2 || res.Certificate.Length != 4 {
		t.Fatalf("certificate = %+v, want start 2 len 4", res.Certificate)
	}
	var got []string
	for _, rec := range res.Trace {
		var edges []string
		for _, s := range rec.Sends {
			edges = append(edges, trace.Letters(s.From)+">"+trace.Letters(s.To))
		}
		got = append(got, strings.Join(edges, " "))
	}
	want := []string{
		"b>a b>c",
		"a>c c>a",
		"a>b",     // c's message to b held back
		"b>c c>b", // b answers a; c's delayed message lands
		"b>a",     // c's next message delayed again
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
}

// TestCollisionDelayerAcrossTopologies ports the historical behavioural
// suite: odd and even cycles certify, trees terminate under every
// adversary tried.
func TestCollisionDelayerAcrossTopologies(t *testing.T) {
	for _, n := range []int{3, 5, 7, 9, 11} {
		res, err := model.NewAsync(gen.Cycle(n), async.CollisionDelayer{}).
			Run(context.Background(), origins(0), opts(0, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != engine.OutcomeCycle {
			t.Errorf("C%d: outcome = %v, want OutcomeCycle", n, res.Outcome)
		}
	}
	for _, spec := range []string{"path:n=9", "star:n=8", "bintree:levels=4", "tree:n=40"} {
		g := gen.MustBuild(spec, 2)
		res, err := model.NewAsync(g, async.CollisionDelayer{}).
			Run(context.Background(), origins(0), opts(0, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != engine.OutcomeTerminated {
			t.Errorf("%s: outcome = %v, want OutcomeTerminated", g, res.Outcome)
		}
	}
}

// TestUniformDelayerPreservesTermination: uniform delay stretches the
// synchronous schedule without reordering anything.
func TestUniformDelayerPreservesTermination(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := gen.MustBuild("randconnected:n=20,p=0.12", seed)
		src := graph.NodeID(int(seed) % g.N())
		extra := int(seed) % 4
		res, err := model.NewAsync(g, async.UniformDelayer{Extra: extra}).
			Run(context.Background(), origins(src), opts(0, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != engine.OutcomeTerminated {
			t.Fatalf("seed %d: outcome = %v", seed, res.Outcome)
		}
		rep, err := core.Run(g, src)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalMessages != rep.TotalMessages() {
			t.Fatalf("seed %d: messages %d != synchronous %d", seed, res.TotalMessages, rep.TotalMessages())
		}
		if res.Rounds != rep.Rounds()*(extra+1) {
			t.Fatalf("seed %d: rounds %d != stretched %d", seed, res.Rounds, rep.Rounds()*(extra+1))
		}
	}
}

// TestEdgeDelayerCanAccelerate pins the counter-intuitive control: slowing
// one triangle edge merges wavefronts and terminates FASTER than the
// synchronous 3 rounds.
func TestEdgeDelayerCanAccelerate(t *testing.T) {
	res, err := model.NewAsync(gen.Cycle(3), async.EdgeDelayer{Edge: edge(1, 2), Extra: 1}).
		Run(context.Background(), origins(1), opts(0, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != engine.OutcomeTerminated || res.Rounds != 2 {
		t.Fatalf("run = %+v, want termination in 2 rounds", res)
	}
}

// TestRoundLimitOutcome: with certificates out of reach the limit fires as
// an outcome, not an error.
func TestRoundLimitOutcome(t *testing.T) {
	res, err := model.NewAsync(gen.Cycle(3), async.CollisionDelayer{}).
		Run(context.Background(), origins(0), opts(3, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != engine.OutcomeRoundLimit {
		t.Fatalf("outcome = %v, want OutcomeRoundLimit", res.Outcome)
	}
	if res.Terminated {
		t.Error("round-limited run reported Terminated")
	}
}

// TestRandomAdversaryNeverCertifies: non-deterministic adversaries must not
// claim cycle certificates.
func TestRandomAdversaryNeverCertifies(t *testing.T) {
	res, err := model.NewAsync(gen.Cycle(3), async.NewRandomAdversary(7, 3)).
		Run(context.Background(), origins(0), opts(64, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == engine.OutcomeCycle {
		t.Fatal("random adversary produced a cycle certificate")
	}
}

// buggyAdversary writes malformed delays to exercise sanitisation.
type buggyAdversary struct{}

func (buggyAdversary) Name() string { return "buggy" }
func (buggyAdversary) Delays(batch []graph.Edge, _ model.ConfigView, delays []int) {
	for i := range delays {
		delays[i] = -5
	}
}
func (buggyAdversary) Deterministic() bool { return true }

func TestBuggyAdversarySanitized(t *testing.T) {
	res, err := model.NewAsync(gen.Path(5), buggyAdversary{}).
		Run(context.Background(), origins(0), opts(0, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != engine.OutcomeTerminated || res.Rounds != 4 {
		t.Fatalf("buggy adversary run = %+v, want terminated in 4 rounds", res)
	}
}

// spyAdversary delays the second message of every batch and records views.
type spyAdversary struct {
	onView func(model.ConfigView)
}

func (s *spyAdversary) Name() string { return "spy" }
func (s *spyAdversary) Delays(batch []graph.Edge, view model.ConfigView, delays []int) {
	if s.onView != nil {
		s.onView(view)
	}
	if len(delays) > 1 {
		delays[1] = 1
	}
}
func (s *spyAdversary) Deterministic() bool { return true }

// TestAdversaryViewRelativeDelays: the view must expose in-flight messages
// with delays relative to the current round, never absolute rounds, and
// the view length must match.
func TestAdversaryViewRelativeDelays(t *testing.T) {
	spy := &spyAdversary{onView: func(view model.ConfigView) {
		if len(view.InFlight) != len(view.Remaining) {
			t.Errorf("view lengths diverge: %d edges, %d delays", len(view.InFlight), len(view.Remaining))
		}
		for _, rem := range view.Remaining {
			if rem < 1 {
				t.Errorf("non-positive remaining delay %d in view", rem)
			}
		}
	}}
	if _, err := model.NewAsync(gen.Cycle(5), spy).Run(context.Background(), origins(0), opts(64, false)); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncValidation ports the historical argument checks.
func TestAsyncValidation(t *testing.T) {
	e := model.NewAsync(gen.Path(3), async.SyncAdversary{})
	if _, err := e.Run(context.Background(), nil, opts(0, false)); err == nil {
		t.Fatal("run with no origins succeeded")
	}
	if _, err := e.Run(context.Background(), origins(99), opts(0, false)); err == nil {
		t.Fatal("run with invalid origin succeeded")
	}
	d := model.NewDynamic(gen.Path(3), dynamic.Static{})
	if _, err := d.Run(context.Background(), nil, opts(0, false)); err == nil {
		t.Fatal("dynamic run with no origins succeeded")
	}
	if _, err := d.Run(context.Background(), origins(42), opts(0, false)); err == nil {
		t.Fatal("dynamic run with bad origin succeeded")
	}
}

// TestOutageOnEvenCycleBreaksTermination ports the headline dynamic
// finding: one lost crossing on C4 leaves a circulating wavefront.
func TestOutageOnEvenCycleBreaksTermination(t *testing.T) {
	res, err := model.NewDynamic(gen.Cycle(4), dynamic.OutageOnce{Round: 1, Edge: edge(0, 3)}).
		Run(context.Background(), origins(0), opts(0, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != engine.OutcomeCycle {
		t.Fatalf("outcome = %v, want OutcomeCycle", res.Outcome)
	}
	if res.Lost != 1 {
		t.Fatalf("lost = %d, want 1", res.Lost)
	}
	if res.Certificate.Length != 4 {
		t.Fatalf("period = %d, want 4 (one lap)", res.Certificate.Length)
	}
}

// TestOutageOnTreeOnlyShrinks: cutting the root edge once severs the left
// subtree; coverage comes from the observer.
func TestOutageOnTreeOnlyShrinks(t *testing.T) {
	g := gen.CompleteBinaryTree(4)
	cov := model.NewCoverage(g.N(), 0)
	o := opts(0, false)
	o.Observer = cov
	res, err := model.NewDynamic(g, dynamic.OutageOnce{Round: 1, Edge: edge(0, 1)}).
		Run(context.Background(), origins(0), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != engine.OutcomeTerminated {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if cov.Count() != 8 {
		t.Fatalf("coverage = %d, want 8", cov.Count())
	}
}

// TestBlinkingEdgePhases ports the phase-alignment finding.
func TestBlinkingEdgePhases(t *testing.T) {
	g := gen.Path(4)
	run := func(phase int) (engine.Result, *model.Coverage) {
		cov := model.NewCoverage(g.N(), 0)
		o := opts(0, false)
		o.Observer = cov
		res, err := model.NewDynamic(g, dynamic.Blinking{Edge: edge(1, 2), K: 2, Phase: phase}).
			Run(context.Background(), origins(0), o)
		if err != nil {
			t.Fatal(err)
		}
		return res, cov
	}
	res, cov := run(0)
	if res.Outcome != engine.OutcomeTerminated || cov.Count() != 4 {
		t.Fatalf("aligned blinking: %+v coverage %d", res, cov.Count())
	}
	res2, cov2 := run(1)
	if res2.Outcome != engine.OutcomeTerminated || cov2.Count() != 2 {
		t.Fatalf("misaligned blinking: %+v coverage %d", res2, cov2.Count())
	}
}

// TestAlternatingHalvesEndsDeterministically: periodic schedules must
// never hit the round limit — they terminate or certify.
func TestAlternatingHalvesEndsDeterministically(t *testing.T) {
	for _, spec := range []string{"cycle:n=6", "cycle:n=7", "grid:rows=4,cols=4", "complete:n=6"} {
		g := gen.MustBuild(spec, 1)
		res, err := model.NewDynamic(g, dynamic.Alternating{}).
			Run(context.Background(), origins(0), opts(0, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == engine.OutcomeRoundLimit {
			t.Fatalf("%s: periodic schedule hit the round limit", g)
		}
	}
}

// TestEnginesReusableAcrossRuns: a session-style reuse of one engine must
// be deterministic run to run (the arenas and detector reset correctly).
func TestEnginesReusableAcrossRuns(t *testing.T) {
	e := model.NewAsync(gen.Cycle(9), async.CollisionDelayer{})
	first, err := e.Run(context.Background(), origins(0), opts(0, true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := e.Run(context.Background(), origins(0), opts(0, true))
		if err != nil {
			t.Fatal(err)
		}
		if again.Outcome != first.Outcome || again.Rounds != first.Rounds ||
			!engine.EqualTraces(again.Trace, first.Trace) {
			t.Fatalf("run %d diverged from the first", i+2)
		}
	}
	d := model.NewDynamic(gen.Grid(5, 5), dynamic.Blinking{Edge: edge(0, 1), K: 3})
	dfirst, err := d.Run(context.Background(), origins(0), opts(0, true))
	if err != nil {
		t.Fatal(err)
	}
	dagain, err := d.Run(context.Background(), origins(0), opts(0, true))
	if err != nil {
		t.Fatal(err)
	}
	if dagain.Outcome != dfirst.Outcome || !engine.EqualTraces(dagain.Trace, dfirst.Trace) {
		t.Fatal("dynamic engine reuse diverged")
	}
}

// TestModelEngineCancellation: a cancelled context ends both engines with
// the context error.
func TestModelEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := model.NewAsync(gen.Cycle(3), async.CollisionDelayer{}).
		Run(ctx, origins(0), opts(0, false)); err == nil {
		t.Fatal("cancelled async run returned nil error")
	}
	if _, err := model.NewDynamic(gen.Cycle(4), dynamic.OutageOnce{Round: 1, Edge: edge(0, 3)}).
		Run(ctx, origins(0), opts(0, false)); err == nil {
		t.Fatal("cancelled dynamic run returned nil error")
	}
}

// stopAfter stops a run after n observed rounds.
type stopAfter struct{ n int }

func (s *stopAfter) ObserveRound(rec engine.RoundRecord) (bool, error) {
	return rec.Round >= s.n, nil
}

// TestModelEngineObserverStop: observers can end model runs early, and the
// observed prefix matches the full trace byte for byte.
func TestModelEngineObserverStop(t *testing.T) {
	full, err := model.NewAsync(gen.Cycle(9), async.CollisionDelayer{}).
		Run(context.Background(), origins(0), opts(0, true))
	if err != nil {
		t.Fatal(err)
	}
	o := opts(0, true)
	o.Observer = &stopAfter{n: 3}
	short, err := model.NewAsync(gen.Cycle(9), async.CollisionDelayer{}).
		Run(context.Background(), origins(0), o)
	if err != nil {
		t.Fatal(err)
	}
	if !short.Stopped || short.Rounds != 3 {
		t.Fatalf("stopped run = %+v", short)
	}
	if !engine.EqualTraces(short.Trace, full.Trace[:len(short.Trace)]) {
		t.Fatal("stopped trace is not a prefix of the full trace")
	}
}

// TestDetectorCollisionSafety drives the detector directly with
// hash-colliding inputs: since verification compares configurations, a
// collision must not fabricate a repeat.
func TestDetectorCollisionSafety(t *testing.T) {
	var d model.Detector
	d.Reset()
	// Feed many distinct single-word configurations; none may repeat.
	for r := 1; r <= 10000; r++ {
		if first, ok := d.Check(r, []uint64{uint64(r)}); ok {
			t.Fatalf("round %d falsely matched round %d", r, first)
		}
	}
	// A genuine repeat is found.
	fresh := []uint64{1 << 40}
	if first, ok := d.Check(10001, fresh); ok {
		t.Fatalf("fresh config falsely matched round %d", first)
	}
	if first, ok := d.Check(10002, fresh); !ok || first != 10001 {
		t.Fatalf("repeat not found: first=%d ok=%t", first, ok)
	}
	// Reset clears history.
	d.Reset()
	if _, ok := d.Check(1, fresh); ok {
		t.Fatal("Reset did not clear the detector")
	}
}
