package model

import (
	"fmt"
	"slices"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// amnesiacName is the protocol name both model engines stamp on their
// results; the model is an axis of *amnesiac* flooding (see the package
// comment), and the spelling matches core.Flood's Name so model runs and
// synchronous runs attribute to the same protocol in reports.
const amnesiacName = "amnesiac-flooding"

// csrIndex is the directed-edge view shared by both model engines: the
// graph's CSR plus the inverse row map. Directed edge i runs
// edgeFrom[i] -> csr.Targets[i], and edge indices sort exactly like
// (From, To) pairs, which is what lets the engines keep messages as packed
// integers yet deliver in the reference engines' canonical order.
type csrIndex struct {
	csr      graph.CSR
	edgeFrom []graph.NodeID
}

func newCSRIndex(g *graph.Graph) csrIndex {
	csr := g.CSR()
	edgeFrom := make([]graph.NodeID, len(csr.Targets))
	for v := 0; v < csr.N(); v++ {
		row := csr.Targets[csr.Offsets[v]:csr.Offsets[v+1]]
		for i := range row {
			edgeFrom[int(csr.Offsets[v])+i] = graph.NodeID(v)
		}
	}
	return csrIndex{csr: csr, edgeFrom: edgeFrom}
}

// decode returns the endpoints of directed edge idx.
func (x csrIndex) decode(idx int32) (from, to graph.NodeID) {
	return x.edgeFrom[idx], x.csr.Targets[idx]
}

// grouper buckets one round's deliveries by receiver with the counting-sort
// arena of the fastengine: one pass counts senders per receiver, one pass
// scatters them. Because rounds are processed in (From, To) order, each
// receiver's senders land in the arena already sorted ascending. The count
// array is reset sparsely (only touched entries), so short rounds on huge
// graphs stay cheap.
type grouper struct {
	count, cursor []int32
	senderArena   []graph.NodeID
	receivers     []graph.NodeID
}

func newGrouper(n int) grouper {
	return grouper{count: make([]int32, n), cursor: make([]int32, n)}
}

// group buckets sends (sorted by (From, To)) by receiver. Afterwards
// receivers holds the sorted distinct receivers and senders(v) returns
// each one's ascending sender batch. It leaves count populated; the caller
// must call reset once the batches have been consumed.
func (gr *grouper) group(sends []engine.Send) {
	gr.receivers = gr.receivers[:0]
	for _, s := range sends {
		if gr.count[s.To] == 0 {
			gr.receivers = append(gr.receivers, s.To)
		}
		gr.count[s.To]++
	}
	slices.Sort(gr.receivers)
	if cap(gr.senderArena) < len(sends) {
		gr.senderArena = make([]graph.NodeID, len(sends))
	}
	gr.senderArena = gr.senderArena[:len(sends)]
	off := int32(0)
	for _, v := range gr.receivers {
		gr.cursor[v] = off
		off += gr.count[v]
	}
	for _, s := range sends {
		gr.senderArena[gr.cursor[s.To]] = s.From
		gr.cursor[s.To]++
	}
}

// senders returns receiver v's delivery batch within the arena.
func (gr *grouper) senders(v graph.NodeID) []graph.NodeID {
	end := gr.cursor[v]
	return gr.senderArena[end-gr.count[v] : end]
}

// reset sparsely clears the count array for the next round.
func (gr *grouper) reset() {
	for _, v := range gr.receivers {
		gr.count[v] = 0
	}
}

// validateOrigins checks the origin set and returns it sorted and
// deduplicated, appending into buf (reused across runs).
func validateOrigins(g *graph.Graph, origins []graph.NodeID, buf []graph.NodeID, model string) ([]graph.NodeID, error) {
	if len(origins) == 0 {
		return nil, fmt.Errorf("model: %s: need at least one origin on %s", model, g)
	}
	for _, o := range origins {
		if !g.HasNode(o) {
			return nil, fmt.Errorf("model: %s: origin %d is not a node of %s", model, o, g)
		}
	}
	buf = append(buf[:0], origins...)
	slices.Sort(buf)
	return slices.Compact(buf), nil
}
