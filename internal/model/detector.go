package model

// Detector certifies non-termination by configuration repetition. Callers
// feed it one packed configuration per round — a canonically ordered
// []uint64 encoding of the global state (for the asynchronous engine the
// in-flight multiset as (remaining delay, edge index) words; for the
// dynamic engine the schedule phase followed by the pending edge indices) —
// and it reports the first round an equal configuration was seen.
//
// It replaces the two historical map[string]int detectors that serialised
// every configuration to a string per round: configurations are now hashed
// word-wise (FNV-1a over the packed words) into a map of arena offsets, and
// a hash hit is verified word-for-word against the stored configuration
// before a repeat is reported, so hash collisions can never fabricate a
// certificate. All storage is amortised: recorded configurations append to
// one growing arena, so the steady-state per-round cost is the hash and the
// map insert.
//
// A Detector is not safe for concurrent use; Reset recycles it (and its
// arena capacity) across runs.
type Detector struct {
	seen  map[uint64][]detEntry
	arena []uint64
}

// detEntry locates one recorded configuration: the round it was seen and
// its window in the arena.
type detEntry struct {
	round  int
	off, n int
}

// Reset clears the detector for a new run, keeping allocated capacity.
func (d *Detector) Reset() {
	if d.seen == nil {
		d.seen = map[uint64][]detEntry{}
	} else {
		clear(d.seen)
	}
	d.arena = d.arena[:0]
}

// Check records cfg as round's configuration and returns the first round an
// equal configuration was recorded, if any. cfg must be in canonical order
// (two equal global states must encode to identical slices); the detector
// copies it, so callers may reuse the slice.
func (d *Detector) Check(round int, cfg []uint64) (first int, repeated bool) {
	h := hashWords(cfg)
	for _, e := range d.seen[h] {
		if wordsEqual(d.arena[e.off:e.off+e.n], cfg) {
			return e.round, true
		}
	}
	d.seen[h] = append(d.seen[h], detEntry{round: round, off: len(d.arena), n: len(cfg)})
	d.arena = append(d.arena, cfg...)
	return 0, false
}

// hashWords is FNV-1a folded one uint64 word at a time. Word-wise folding
// is weaker than byte-wise but an order of magnitude cheaper, and Check
// verifies every hit, so a collision costs a comparison, never a wrong
// certificate.
func hashWords(cfg []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range cfg {
		h = (h ^ w) * prime64
	}
	return h
}

// wordsEqual compares two packed configurations.
func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
