// Package model makes the execution model a registry-driven axis of the
// simulator, alongside protocol, engine, and graph.
//
// The paper's headline results are about *termination*: amnesiac flooding
// always terminates synchronously (Theorems 3.1/3.3), but an adversarial
// asynchronous scheduler (Section 4, Figure 5) or a changing edge set can
// keep the wave alive forever. This package gives those non-synchronous
// models the same shape the rest of the repository already has: adversaries
// (internal/async) and schedules (internal/dynamic) self-register under a
// canonical, round-trippable spec grammar mirroring internal/graph/gen,
//
//	sync
//	adversary:<family>[:key=value[,key=value]...]
//	schedule:<family>[:key=value[,key=value]...]
//
// (examples: "adversary:collision", "adversary:hold:node=3,extra=2",
// "schedule:blink:period=2,phase=1"), and two dedicated engines — AsyncEngine
// and DynamicEngine — run amnesiac flooding under them over the graph's CSR
// view with context cancellation, stop-capable engine.RoundObservers, and
// reused double-buffered in-flight arenas. Messages are packed as
// edge-index+delay integers, never structs, so the per-round certificate
// path allocates nothing beyond amortised arena growth.
//
// # Non-termination certificates
//
// Amnesiac nodes carry no state, so the global configuration is fully
// described by the multiset of in-flight messages (asynchronous model: with
// their remaining delays; dynamic model: with the schedule phase). Under a
// deterministic stationary model a repeated configuration proves the
// execution is periodic and therefore never terminates. Both engines share
// one Detector keyed on hashed packed configurations with collision
// verification, replacing the two historical map[string]int implementations
// and their per-round string serialisation.
//
// The model engines execute amnesiac flooding only — the paper's Section 4
// model is defined for it, and the "respond to the complement of this
// round's senders" rule is built into the delivery loop. Every other
// protocol runs on the synchronous engines ("sync" model).
package model

import (
	"amnesiacflood/internal/graph"
)

// ConfigView exposes the adversary-visible state when a batch is scheduled:
// the messages already in flight, with delays relative to the current round.
// Absolute round numbers are deliberately not exposed so that adversaries
// are stationary (round-invariant), which is what makes configuration-
// repeat certificates sound.
//
// InFlight is sorted by (remaining delay, sender, receiver); both slices
// alias engine-internal storage and must not be retained past the call.
type ConfigView struct {
	// InFlight lists messages already scheduled but not yet delivered;
	// Remaining[i] rounds remain before InFlight[i] is delivered (always
	// >= 1: this round's deliveries are in the batch, not the view).
	InFlight  []graph.Edge
	Remaining []int
}

// Adversary assigns delivery delays to outgoing message batches — the
// asynchronous scheduler of the paper's Section 4.
type Adversary interface {
	// Name identifies the adversary in reports.
	Name() string
	// Delays fills delays (len(delays) == len(batch), pre-zeroed by the
	// engine) with one extra delay >= 0 per message in batch. batch holds
	// the directed edges being sent this round, sorted by (From, To);
	// view is the rest of the configuration. Negative entries are clamped
	// to zero by the engine, so a buggy adversary cannot corrupt the run.
	Delays(batch []graph.Edge, view ConfigView, delays []int)
	// Deterministic reports whether Delays is a pure function of its
	// arguments. Only deterministic adversaries support configuration-
	// repeat certificates.
	Deterministic() bool
}

// ViewIgnorer is an optional Adversary extension declaring that Delays
// never reads its ConfigView argument. The async engine then skips
// building the per-round in-flight view (an O(in-flight) decode per
// round) entirely. Every adversary shipped in this repository ignores the
// view and implements this; adversaries that omit it, or return false,
// always receive a fully populated view.
type ViewIgnorer interface {
	IgnoresView() bool
}

// Schedule decides edge liveness per round — the dynamic-network model in
// which the edge set may change between rounds. Messages sent in round r
// cross only edges alive in round r; a message whose edge is down is lost.
type Schedule interface {
	// Name identifies the schedule in reports.
	Name() string
	// Alive reports whether the undirected edge {u, v} carries messages
	// in the given round. The engine passes e normalised (U <= V).
	Alive(round int, e graph.Edge) bool
	// Period returns p > 0 when Alive depends on the round only through
	// round mod p (a static schedule has period 1). It returns 0 when the
	// schedule is aperiodic; certificates are then disabled.
	Period() int
}

// Settler is an optional Schedule extension for schedules with a transient:
// SettledAfter returns the last round with transient behaviour, after which
// the declared Period actually holds. The engines start recording
// configurations only once the transient has passed, so pre-transient
// configurations can never alias post-transient ones.
type Settler interface {
	SettledAfter() int
}

// settledAfter returns the round after which a schedule's declared period
// actually holds (0 for always-periodic schedules).
func settledAfter(sched Schedule) int {
	if s, ok := sched.(Settler); ok {
		return s.SettledAfter()
	}
	return 0
}

// DefaultMaxRounds bounds model-engine runs when Options.MaxRounds is 0.
// Unlike the synchronous engines, asynchronous and dynamic amnesiac
// flooding can legitimately run forever, so this is a working bound, not a
// correctness bound: hitting it yields Outcome == engine.OutcomeRoundLimit
// with a nil error, never engine.ErrMaxRounds.
const DefaultMaxRounds = 1 << 16
