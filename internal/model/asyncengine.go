package model

import (
	"context"
	"fmt"
	"math"
	"slices"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// AsyncEngine runs asynchronous amnesiac flooding (paper Section 4) on one
// graph under one Adversary. It owns reusable round state — double-buffered
// in-flight arenas of packed (delivery round, edge index) words, the
// counting-sort grouper, the cycle detector, and the adversary-facing view
// buffers — so a single engine amortises everything across runs; it is not
// safe for concurrent use (run several engines for that).
//
// # Semantics
//
// When a node sends a batch of messages in round r, the adversary assigns
// each message an extra delay k >= 0; the message is delivered in round
// r+k. A node processes all messages delivered to it in the same round as
// a single batch and responds (to the complement of that batch's senders)
// in the next round. With every delay zero the model coincides exactly with
// the synchronous model: traces are byte-identical to the synchronous
// engines' (asserted by fuzz tests).
//
// Under a deterministic adversary the engine feeds each round's
// configuration — the in-flight multiset with delays relative to the
// current round — to the shared Detector and certifies non-termination on
// the first repeat (engine.OutcomeCycle with a Certificate), which is how
// the paper's Figure 5 triangle schedule is reproduced without running
// forever.
//
// Rounds in which every in-flight message is still delayed deliver nothing:
// they are counted, but produce no trace record and no observer call, so a
// trace under the zero-delay adversary aligns round-for-round with the
// synchronous engines'.
type AsyncEngine struct {
	g         *graph.Graph
	idx       csrIndex
	adv       Adversary
	wantsView bool // false when adv declares IgnoresView (see ViewIgnorer)

	cur, nxt  []uint64 // in-flight arenas: deliverAt<<32 | edgeIdx, sorted
	cfg       []uint64 // scratch: round-relative configuration
	sends     []engine.Send
	gr        grouper
	batch     []graph.Edge // adversary-facing response batch
	batchIdx  []int32      // edge index of each batch entry
	delays    []int
	viewEdges []graph.Edge
	viewRem   []int
	origins   []graph.NodeID
	det       Detector
}

// NewAsync returns an engine running amnesiac flooding on g under adv.
func NewAsync(g *graph.Graph, adv Adversary) *AsyncEngine {
	wantsView := true
	if vi, ok := adv.(ViewIgnorer); ok && vi.IgnoresView() {
		wantsView = false
	}
	return &AsyncEngine{g: g, idx: newCSRIndex(g), adv: adv, wantsView: wantsView, gr: newGrouper(g.N())}
}

// Adversary returns the engine's adversary.
func (e *AsyncEngine) Adversary() Adversary { return e.adv }

// Run floods from the origins to termination, a non-termination
// certificate, or the round limit. Options are honoured as in the
// synchronous engines — per-round context checks, Trace, and a
// stop-capable Observer — except that MaxRounds == 0 means
// model.DefaultMaxRounds and hitting the limit is an outcome
// (engine.OutcomeRoundLimit), not an error: asynchronous runs can
// legitimately never terminate.
func (e *AsyncEngine) Run(ctx context.Context, origins []graph.NodeID, opts engine.Options) (engine.Result, error) {
	var err error
	e.origins, err = validateOrigins(e.g, origins, e.origins, "async under "+e.adv.Name())
	if err != nil {
		return engine.Result{}, err
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	res := engine.Result{Protocol: amnesiacName}

	// Bootstrap: origins send to all neighbours; the adversary schedules
	// this batch like any other (sent "in round 1", so delays are added
	// to delivery round 1), seeing an empty in-flight view.
	e.batch, e.batchIdx = e.batch[:0], e.batchIdx[:0]
	for _, o := range e.origins {
		base := e.idx.csr.Offsets[o]
		for i, w := range e.idx.csr.Row(o) {
			e.batch = append(e.batch, graph.Edge{U: o, V: w})
			e.batchIdx = append(e.batchIdx, base+int32(i))
		}
	}
	e.scheduleDelays(ConfigView{})
	e.cur = e.cur[:0]
	if err := e.commitBatch(&e.cur, 0); err != nil {
		return engine.Result{}, err
	}
	slices.Sort(e.cur)

	deterministic := e.adv.Deterministic()
	e.det.Reset()
	for round := 1; len(e.cur) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("model: async %s on %s: %w", e.adv.Name(), e.g, err)
		}
		if round > maxRounds {
			res.Outcome = engine.OutcomeRoundLimit
			res.Rounds = maxRounds
			return res, nil
		}
		if deterministic {
			// The round-relative configuration is the sorted arena with
			// the round subtracted from every delivery time — one linear
			// pass, already canonically ordered.
			e.cfg = e.cfg[:0]
			for _, p := range e.cur {
				e.cfg = append(e.cfg, p-uint64(round)<<32)
			}
			if first, ok := e.det.Check(round, e.cfg); ok {
				res.Outcome = engine.OutcomeCycle
				res.Certificate = &engine.Certificate{Start: first, Length: round - first}
				res.Rounds = round
				return res, nil
			}
		}
		res.Rounds = round

		// Deliveries due this round are the arena prefix with
		// deliverAt == round, sorted by edge index, i.e. by (From, To).
		nDue := 0
		for nDue < len(e.cur) && e.cur[nDue]>>32 == uint64(round) {
			nDue++
		}
		if nDue == 0 {
			// Nothing delivered this round; time passes.
			continue
		}
		later := e.cur[nDue:]
		res.TotalMessages += nDue
		e.sends = e.sends[:0]
		for _, p := range e.cur[:nDue] {
			from, to := e.idx.decode(int32(uint32(p)))
			e.sends = append(e.sends, engine.Send{From: from, To: to})
		}
		if opts.Trace {
			res.Trace = append(res.Trace, engine.RoundRecord{Round: round, Sends: append([]engine.Send(nil), e.sends...)})
		}
		stop, err := opts.Observe(engine.RoundRecord{Round: round, Sends: e.sends})
		if err != nil {
			return res, fmt.Errorf("model: async %s on %s: observer at round %d: %w", e.adv.Name(), e.g, round, err)
		}
		if stop {
			res.Stopped = true
			return res, nil
		}

		// Each receiver responds to the complement of its senders, sent
		// in round+1 under adversary-chosen delays.
		e.gr.group(e.sends)
		e.batch, e.batchIdx = e.batch[:0], e.batchIdx[:0]
		for _, v := range e.gr.receivers {
			senders := e.gr.senders(v)
			base := e.idx.csr.Offsets[v]
			i := 0
			for j, w := range e.idx.csr.Row(v) {
				for i < len(senders) && senders[i] < w {
					i++
				}
				if i < len(senders) && senders[i] == w {
					continue
				}
				e.batch = append(e.batch, graph.Edge{U: v, V: w})
				e.batchIdx = append(e.batchIdx, base+int32(j))
			}
		}
		e.gr.reset()

		view := ConfigView{}
		if e.wantsView {
			e.viewEdges, e.viewRem = e.viewEdges[:0], e.viewRem[:0]
			for _, p := range later {
				from, to := e.idx.decode(int32(uint32(p)))
				e.viewEdges = append(e.viewEdges, graph.Edge{U: from, V: to})
				e.viewRem = append(e.viewRem, int(p>>32)-round)
			}
			view = ConfigView{InFlight: e.viewEdges, Remaining: e.viewRem}
		}
		e.scheduleDelays(view)

		e.nxt = append(e.nxt[:0], later...)
		if err := e.commitBatch(&e.nxt, round); err != nil {
			return res, err
		}
		slices.Sort(e.nxt)
		e.cur, e.nxt = e.nxt, e.cur
	}
	res.Terminated = true
	res.Outcome = engine.OutcomeTerminated
	return res, nil
}

// scheduleDelays invokes the adversary on the current batch with a
// pre-zeroed delay buffer.
func (e *AsyncEngine) scheduleDelays(view ConfigView) {
	if cap(e.delays) < len(e.batch) {
		e.delays = make([]int, len(e.batch))
	}
	e.delays = e.delays[:len(e.batch)]
	for i := range e.delays {
		e.delays[i] = 0
	}
	if len(e.batch) > 0 {
		e.adv.Delays(e.batch, view, e.delays)
	}
}

// commitBatch packs the scheduled batch (sent in round, delivered in
// round+1+delay) into the arena, clamping negative delays to zero so a
// buggy adversary cannot corrupt the run. The overflow guard compares
// before adding, so an absurd delay near MaxInt cannot wrap past it.
func (e *AsyncEngine) commitBatch(arena *[]uint64, round int) error {
	for i, idx := range e.batchIdx {
		d := e.delays[i]
		if d < 0 {
			d = 0
		}
		if d > math.MaxInt32-round-1 {
			return fmt.Errorf("model: async %s on %s: delay %d at round %d overflows the packed delivery time", e.adv.Name(), e.g, d, round)
		}
		*arena = append(*arena, uint64(round+1+d)<<32|uint64(uint32(idx)))
	}
	return nil
}
