package model

import (
	"context"
	"fmt"
	"slices"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// DynamicEngine runs amnesiac flooding over a dynamic network: the edge set
// of one base graph changes between rounds as one Schedule dictates. Like
// AsyncEngine it owns reusable round state — double-buffered pending-edge
// arenas of packed edge indices, the grouper, and the cycle detector — so a
// single engine amortises everything across runs; it is not safe for
// concurrent use.
//
// # Semantics
//
// Messages sent in round r cross only edges alive in round r; a message
// whose edge is down is lost and counted in Result.Lost (the natural
// reading of "the link is gone" — lossless buffering would be the
// asynchronous model instead). Nodes apply the usual amnesiac rule over
// their *base* neighbourhood: forward to every base neighbour not among
// this round's senders. Under the static schedule the engine reproduces the
// synchronous engines' traces byte for byte (asserted by fuzz tests).
//
// For periodic schedules the per-round configuration handed to the shared
// Detector is the schedule phase followed by the pending edge indices, so a
// repeat of the (configuration, phase) pair certifies non-termination;
// aperiodic schedules disable certificates and can only terminate or hit
// the round limit.
type DynamicEngine struct {
	g     *graph.Graph
	idx   csrIndex
	sched Schedule

	cur, nxt []int32  // pending directed edge indices, sorted
	cfg      []uint64 // scratch: phase-prefixed configuration
	alive    []int32
	sends    []engine.Send
	gr       grouper
	origins  []graph.NodeID
	det      Detector
}

// NewDynamic returns an engine running amnesiac flooding on g under sched.
func NewDynamic(g *graph.Graph, sched Schedule) *DynamicEngine {
	return &DynamicEngine{g: g, idx: newCSRIndex(g), sched: sched, gr: newGrouper(g.N())}
}

// Schedule returns the engine's schedule.
func (e *DynamicEngine) Schedule() Schedule { return e.sched }

// Run floods from the origins to termination, a non-termination
// certificate, or the round limit, with the same Options semantics as
// AsyncEngine.Run. Unlike the asynchronous engine, every round while
// messages are pending produces a trace record and an observer call, even
// when the schedule drops all of them — a zero-delivery round is an
// observable event of this model.
func (e *DynamicEngine) Run(ctx context.Context, origins []graph.NodeID, opts engine.Options) (engine.Result, error) {
	var err error
	e.origins, err = validateOrigins(e.g, origins, e.origins, "dynamic under "+e.sched.Name())
	if err != nil {
		return engine.Result{}, err
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	res := engine.Result{Protocol: amnesiacName}

	e.cur = e.cur[:0]
	for _, o := range e.origins {
		base := e.idx.csr.Offsets[o]
		for i := range e.idx.csr.Row(o) {
			e.cur = append(e.cur, base+int32(i))
		}
	}
	slices.Sort(e.cur)

	period := e.sched.Period()
	settled := settledAfter(e.sched)
	e.det.Reset()
	for round := 1; len(e.cur) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("model: dynamic %s on %s: %w", e.sched.Name(), e.g, err)
		}
		if round > maxRounds {
			res.Outcome = engine.OutcomeRoundLimit
			res.Rounds = maxRounds
			return res, nil
		}
		if period > 0 && round > settled {
			e.cfg = append(e.cfg[:0], uint64(round%period))
			for _, idx := range e.cur {
				e.cfg = append(e.cfg, uint64(uint32(idx)))
			}
			if first, ok := e.det.Check(round, e.cfg); ok {
				res.Outcome = engine.OutcomeCycle
				res.Certificate = &engine.Certificate{Start: first, Length: round - first}
				res.Rounds = round
				return res, nil
			}
		}
		res.Rounds = round

		// Split this round's sends into delivered (edge alive) and lost.
		e.alive = e.alive[:0]
		e.sends = e.sends[:0]
		for _, idx := range e.cur {
			from, to := e.idx.decode(idx)
			if e.sched.Alive(round, graph.Edge{U: from, V: to}.Normalize()) {
				e.alive = append(e.alive, idx)
				e.sends = append(e.sends, engine.Send{From: from, To: to})
			} else {
				res.Lost++
			}
		}
		res.TotalMessages += len(e.alive)
		if opts.Trace {
			res.Trace = append(res.Trace, engine.RoundRecord{Round: round, Sends: append([]engine.Send(nil), e.sends...)})
		}
		stop, err := opts.Observe(engine.RoundRecord{Round: round, Sends: e.sends})
		if err != nil {
			return res, fmt.Errorf("model: dynamic %s on %s: observer at round %d: %w", e.sched.Name(), e.g, round, err)
		}
		if stop {
			res.Stopped = true
			return res, nil
		}

		// Receivers respond over their base neighbourhood. Receivers
		// ascend and each row ascends, so the next arena is born sorted.
		e.gr.group(e.sends)
		e.nxt = e.nxt[:0]
		for _, v := range e.gr.receivers {
			senders := e.gr.senders(v)
			base := e.idx.csr.Offsets[v]
			i := 0
			for j, w := range e.idx.csr.Row(v) {
				for i < len(senders) && senders[i] < w {
					i++
				}
				if i < len(senders) && senders[i] == w {
					continue
				}
				e.nxt = append(e.nxt, base+int32(j))
			}
		}
		e.gr.reset()
		e.cur, e.nxt = e.nxt, e.cur
	}
	res.Terminated = true
	res.Outcome = engine.OutcomeTerminated
	return res, nil
}
