package model

import (
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Coverage is a RoundObserver tracking which nodes hold or have held M —
// the dynamic-model coverage metric, usable with any engine or model
// through sim.WithObserver. It never stops the run.
type Coverage struct {
	covered []bool
	count   int
}

var _ engine.RoundObserver = (*Coverage)(nil)

// NewCoverage returns a coverage tracker for an n-node graph with the
// origins pre-marked (origins hold M before any delivery).
func NewCoverage(n int, origins ...graph.NodeID) *Coverage {
	c := &Coverage{covered: make([]bool, n)}
	c.Reset(origins...)
	return c
}

// Reset clears the tracker for a new run and pre-marks the origins.
func (c *Coverage) Reset(origins ...graph.NodeID) {
	for i := range c.covered {
		c.covered[i] = false
	}
	c.count = 0
	for _, o := range origins {
		c.mark(o)
	}
}

// ObserveRound implements engine.RoundObserver.
func (c *Coverage) ObserveRound(rec engine.RoundRecord) (bool, error) {
	for _, s := range rec.Sends {
		c.mark(s.To)
	}
	return false, nil
}

func (c *Coverage) mark(v graph.NodeID) {
	if !c.covered[v] {
		c.covered[v] = true
		c.count++
	}
}

// Count returns how many nodes hold or have held M.
func (c *Coverage) Count() int { return c.count }

// Covered reports whether v holds or has held M.
func (c *Coverage) Covered(v graph.NodeID) bool { return c.covered[v] }
