// Package modeltest preserves the pre-registry model runners verbatim as
// frozen reference implementations. internal/async and internal/dynamic
// used to ship bespoke Run functions that serialised every configuration to
// a map[string]int key; the production paths were replaced by the packed
// engines in internal/model, and these ports exist for exactly two
// purposes:
//
//   - the differential tests in internal/model, which prove on a seeded
//     corpus that the packed engines reproduce the legacy runners'
//     outcomes, certificates, and traces exactly;
//   - the BenchmarkModels string-key baseline, which quantifies what the
//     packed certificate path saves.
//
// Nothing else may import this package; it is deliberately allocation-happy
// and must stay behaviourally frozen. The only deltas from the historical
// code are the adapted adversary call (model.Adversary fills a delay buffer
// instead of returning one) and traces emitted as engine.RoundRecords so
// the tests can compare them with engine.EqualTraces.
package modeltest

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/model"
)

// DefaultMaxRounds mirrors the historical runners' bound.
const DefaultMaxRounds = 1 << 16

// AsyncResult mirrors the historical async.Result, with the outcome mapped
// onto the unified engine.Outcome and the trace onto engine.RoundRecords.
type AsyncResult struct {
	Outcome                 engine.Outcome
	Rounds                  int
	TotalMessages           int
	CycleStart, CycleLength int
	Trace                   []engine.RoundRecord
}

// message is an in-flight copy of M crossing a directed edge.
type message struct {
	from, to  graph.NodeID
	deliverAt int
}

// AsyncRun is the frozen port of the historical async.Run: asynchronous
// amnesiac flooding with a map[string]int configuration-repeat detector.
func AsyncRun(g *graph.Graph, adv model.Adversary, maxRounds int, trace bool, origins ...graph.NodeID) (AsyncResult, error) {
	if len(origins) == 0 {
		return AsyncResult{}, fmt.Errorf("modeltest: need at least one origin on %s", g)
	}
	for _, o := range origins {
		if !g.HasNode(o) {
			return AsyncResult{}, fmt.Errorf("modeltest: origin %d is not a node of %s", o, g)
		}
	}
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	var res AsyncResult

	var inFlight []message
	bootstrap := make([]graph.Edge, 0)
	for _, o := range sortedUnique(origins) {
		for _, nbr := range g.Neighbors(o) {
			bootstrap = append(bootstrap, graph.Edge{U: o, V: nbr})
		}
	}
	delays := scheduleBatch(adv, bootstrap, model.ConfigView{})
	for i, e := range bootstrap {
		inFlight = append(inFlight, message{from: e.U, to: e.V, deliverAt: 1 + delays[i]})
	}

	seen := map[string]int{} // configuration key -> round first seen
	for round := 1; len(inFlight) > 0; round++ {
		if round > maxRounds {
			res.Outcome = engine.OutcomeRoundLimit
			res.Rounds = maxRounds
			return res, nil
		}
		if adv.Deterministic() {
			key := configKey(inFlight, round)
			if first, ok := seen[key]; ok {
				res.Outcome = engine.OutcomeCycle
				res.CycleStart = first
				res.CycleLength = round - first
				res.Rounds = round
				return res, nil
			}
			seen[key] = round
		}

		var due, later []message
		for _, m := range inFlight {
			if m.deliverAt == round {
				due = append(due, m)
			} else {
				later = append(later, m)
			}
		}
		if len(due) == 0 {
			inFlight = later
			res.Rounds = round
			continue
		}
		slices.SortFunc(due, func(a, b message) int {
			if a.from != b.from {
				return int(a.from - b.from)
			}
			return int(a.to - b.to)
		})
		res.Rounds = round
		res.TotalMessages += len(due)
		if trace {
			sends := make([]engine.Send, len(due))
			for i, m := range due {
				sends[i] = engine.Send{From: m.from, To: m.to}
			}
			res.Trace = append(res.Trace, engine.RoundRecord{Round: round, Sends: sends})
		}

		batch := respond(g, due)
		view := makeView(later, round)
		delays := scheduleBatch(adv, batch, view)
		for i, e := range batch {
			later = append(later, message{from: e.U, to: e.V, deliverAt: round + 1 + delays[i]})
		}
		inFlight = later
	}
	res.Outcome = engine.OutcomeTerminated
	return res, nil
}

// respond computes the next-round send batch, sorted by (From, To).
func respond(g *graph.Graph, due []message) []graph.Edge {
	senders := map[graph.NodeID][]graph.NodeID{}
	for _, m := range due {
		senders[m.to] = append(senders[m.to], m.from)
	}
	receivers := make([]graph.NodeID, 0, len(senders))
	for v := range senders {
		receivers = append(receivers, v)
	}
	slices.Sort(receivers)

	var batch []graph.Edge
	for _, v := range receivers {
		from := senders[v]
		slices.Sort(from)
		i := 0
		for _, nbr := range g.Neighbors(v) {
			for i < len(from) && from[i] < nbr {
				i++
			}
			if i < len(from) && from[i] == nbr {
				continue
			}
			batch = append(batch, graph.Edge{U: v, V: nbr})
		}
	}
	return batch
}

// scheduleBatch invokes the adversary and sanitises its output exactly like
// the historical runner: negative delays are clamped to zero.
func scheduleBatch(adv model.Adversary, batch []graph.Edge, view model.ConfigView) []int {
	out := make([]int, len(batch))
	if len(batch) == 0 {
		return out
	}
	adv.Delays(batch, view, out)
	for i := range out {
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// makeView builds the adversary's view of messages still in flight.
func makeView(later []message, round int) model.ConfigView {
	view := model.ConfigView{
		InFlight:  make([]graph.Edge, len(later)),
		Remaining: make([]int, len(later)),
	}
	for i, m := range later {
		view.InFlight[i] = graph.Edge{U: m.from, V: m.to}
		view.Remaining[i] = m.deliverAt - round
	}
	return view
}

// configKey is the historical string serialisation of the in-flight
// multiset with delays relative to the current round — the allocation
// baseline the packed Detector replaced.
func configKey(inFlight []message, round int) string {
	entries := make([]string, len(inFlight))
	for i, m := range inFlight {
		entries[i] = strconv.Itoa(int(m.from)) + ">" + strconv.Itoa(int(m.to)) + "@" + strconv.Itoa(m.deliverAt-round)
	}
	slices.Sort(entries)
	return strings.Join(entries, ",")
}

// sortedUnique returns the sorted distinct node IDs of origins.
func sortedUnique(origins []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), origins...)
	slices.Sort(out)
	return slices.Compact(out)
}

// DynamicResult mirrors the historical dynamic.Result.
type DynamicResult struct {
	Outcome                 engine.Outcome
	Rounds                  int
	Delivered               int
	Lost                    int
	Covered                 []bool
	CycleStart, CycleLength int
	Trace                   []engine.RoundRecord
}

// CoverageCount returns how many nodes hold or have held M.
func (r DynamicResult) CoverageCount() int {
	n := 0
	for _, c := range r.Covered {
		if c {
			n++
		}
	}
	return n
}

// DynamicRun is the frozen port of the historical dynamic.Run: amnesiac
// flooding over a dynamic edge schedule with a map[string]int
// (configuration, phase)-repeat detector.
func DynamicRun(g *graph.Graph, sched model.Schedule, maxRounds int, trace bool, origins ...graph.NodeID) (DynamicResult, error) {
	if len(origins) == 0 {
		return DynamicResult{}, fmt.Errorf("modeltest: need at least one origin on %s", g)
	}
	for _, o := range origins {
		if !g.HasNode(o) {
			return DynamicResult{}, fmt.Errorf("modeltest: origin %d is not a node of %s", o, g)
		}
	}
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	res := DynamicResult{Covered: make([]bool, g.N())}

	var pending []engine.Send
	for _, o := range origins {
		res.Covered[o] = true
		for _, nbr := range g.Neighbors(o) {
			pending = append(pending, engine.Send{From: o, To: nbr})
		}
	}
	pending = dedup(pending)

	period := sched.Period()
	settled := 0
	if s, ok := sched.(model.Settler); ok {
		settled = s.SettledAfter()
	}
	seen := map[string]int{}
	for round := 1; len(pending) > 0; round++ {
		if round > maxRounds {
			res.Outcome = engine.OutcomeRoundLimit
			res.Rounds = maxRounds
			return res, nil
		}
		if period > 0 && round > settled {
			key := strconv.Itoa(round%period) + "|" + sendsKey(pending)
			if first, ok := seen[key]; ok {
				res.Outcome = engine.OutcomeCycle
				res.CycleStart = first
				res.CycleLength = round - first
				res.Rounds = round
				return res, nil
			}
			seen[key] = round
		}
		res.Rounds = round

		var delivered []engine.Send
		for _, s := range pending {
			if sched.Alive(round, graph.Edge{U: s.From, V: s.To}.Normalize()) {
				delivered = append(delivered, s)
			} else {
				res.Lost++
			}
		}
		res.Delivered += len(delivered)
		if trace {
			res.Trace = append(res.Trace, engine.RoundRecord{
				Round: round,
				Sends: append([]engine.Send(nil), delivered...),
			})
		}

		byTo := map[graph.NodeID][]graph.NodeID{}
		for _, s := range delivered {
			res.Covered[s.To] = true
			byTo[s.To] = append(byTo[s.To], s.From)
		}
		receivers := make([]graph.NodeID, 0, len(byTo))
		for v := range byTo {
			receivers = append(receivers, v)
		}
		slices.Sort(receivers)
		var next []engine.Send
		for _, v := range receivers {
			senders := byTo[v]
			slices.Sort(senders)
			i := 0
			for _, nbr := range g.Neighbors(v) {
				for i < len(senders) && senders[i] < nbr {
					i++
				}
				if i < len(senders) && senders[i] == nbr {
					continue
				}
				next = append(next, engine.Send{From: v, To: nbr})
			}
		}
		pending = dedup(next)
	}
	res.Outcome = engine.OutcomeTerminated
	return res, nil
}

func dedup(sends []engine.Send) []engine.Send {
	if len(sends) == 0 {
		return nil
	}
	slices.SortFunc(sends, func(a, b engine.Send) int {
		if a.From != b.From {
			return int(a.From - b.From)
		}
		return int(a.To - b.To)
	})
	return slices.Compact(sends)
}

func sendsKey(sends []engine.Send) string {
	parts := make([]string, len(sends))
	for i, s := range sends {
		parts[i] = strconv.Itoa(int(s.From)) + ">" + strconv.Itoa(int(s.To))
	}
	return strings.Join(parts, ",")
}
