package model_test

import (
	"errors"
	"strings"
	"testing"

	_ "amnesiacflood/internal/async"   // registers the adversary families
	_ "amnesiacflood/internal/dynamic" // registers the schedule families
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/model"
)

// roundTripSpecs is the canonical-spelling corpus: Parse(s).String() must
// reproduce every entry byte for byte.
var roundTripSpecs = []string{
	"sync",
	"adversary:sync",
	"adversary:collision",
	"adversary:hold",
	"adversary:hold:node=3,extra=2",
	"adversary:hold:extra=2",
	"adversary:uniform:extra=2",
	"adversary:edge:u=1,v=2,extra=1",
	"adversary:random:max=3",
	"schedule:static",
	"schedule:outage:round=1,u=0,v=3",
	"schedule:blink:period=2,phase=1",
	"schedule:blink:u=1,v=2,period=2,phase=0",
	"schedule:alternating",
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, s := range roundTripSpecs {
		spec, err := model.Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
		again, err := model.Parse(spec.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", spec.String(), err)
		}
		if again.String() != spec.String() {
			t.Errorf("second round trip diverged: %q vs %q", again.String(), spec.String())
		}
	}
}

func TestParseNormalisesSpelling(t *testing.T) {
	// Case and whitespace fold; parameters re-order canonically.
	cases := map[string]string{
		" SYNC ":                               "sync",
		"Adversary:Collision":                  "adversary:collision",
		"adversary:hold:extra=2,node=3":        "adversary:hold:node=3,extra=2",
		"schedule:blink:phase=1, period=2":     "schedule:blink:period=2,phase=1",
		"SCHEDULE:OUTAGE:v=3, u=0 , round = 1": "schedule:outage:round=1,u=0,v=3",
	}
	for in, want := range cases {
		spec, err := model.Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got := spec.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"sync:collision",       // sync takes no family
		"tachyonic:collision",  // unknown kind
		"adversary",            // kind without family
		"adversary:",           // empty family
		"adversary:nope",       // unknown family
		"adversary:hold:",      // trailing colon, empty params
		"adversary:hold:node",  // not key=value
		"adversary:hold:bad=1", // undeclared key
		"adversary:hold:node=x",
		"adversary:hold:node=1,node=2", // duplicate key
		"schedule:blink:period=2.5",    // float for int
	}
	for _, s := range cases {
		if _, err := model.Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
	if _, err := model.Parse("adversary:nope"); !errors.Is(err, model.ErrUnknownModel) {
		t.Errorf("unknown family error not matchable: %v", err)
	}
}

func TestFamiliesEnumeration(t *testing.T) {
	advs := model.Families(model.KindAdversary)
	scheds := model.Families(model.KindSchedule)
	for _, want := range []string{"sync", "collision", "hold", "uniform", "edge", "random"} {
		if !contains(advs, want) {
			t.Errorf("adversary family %q not registered (have %v)", want, advs)
		}
	}
	for _, want := range []string{"static", "outage", "blink", "alternating"} {
		if !contains(scheds, want) {
			t.Errorf("schedule family %q not registered (have %v)", want, scheds)
		}
	}
	if len(model.Families(model.KindSync)) != 0 {
		t.Error("sync kind must have no families")
	}
	for _, s := range model.Specs() {
		if _, err := model.Parse(s); err != nil {
			t.Errorf("Specs() entry %q does not parse: %v", s, err)
		}
	}
	if model.Specs()[0] != "sync" {
		t.Errorf("Specs() must lead with sync, got %v", model.Specs()[0])
	}
}

func TestLookupInfo(t *testing.T) {
	info, ok := model.Lookup(model.KindAdversary, "hold")
	if !ok {
		t.Fatal("hold not registered")
	}
	if len(info.Params) != 2 || info.Params[0].Name != "node" || info.Params[1].Name != "extra" {
		t.Fatalf("hold params = %+v", info.Params)
	}
	if info.Random {
		t.Error("hold must not be random")
	}
	if info, _ := model.Lookup(model.KindAdversary, "random"); !info.Random {
		t.Error("random adversary must be marked Random")
	}
	if _, ok := model.Lookup(model.KindSchedule, "hold"); ok {
		t.Error("adversary family leaked into the schedule kind")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := model.Build("adversary:hold:extra=-1", 1); err == nil {
		t.Error("negative extra accepted")
	}
	if _, err := model.Build("schedule:blink:period=0", 1); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := model.Build("schedule:blink:period=2,phase=-1", 1); err == nil {
		t.Error("negative phase accepted (edge would be permanently dead)")
	}
	if _, err := model.Build("schedule:blink:period=2,phase=2", 1); err == nil {
		t.Error("phase >= period accepted (edge would be permanently dead)")
	}
	if _, err := model.New(model.Spec{Kind: model.KindSync, Family: "x"}, 1); err == nil {
		t.Error("sync spec with family accepted")
	}
	m, err := model.Build("sync", 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Adversary != nil || m.Schedule != nil || !m.Spec.IsSync() {
		t.Fatalf("sync model = %+v", m)
	}
}

func TestBuildDefaultsApplied(t *testing.T) {
	m := model.MustBuild("schedule:blink", 1)
	sched := m.Schedule
	// Defaults: edge {0,1}, period 2, phase 0 — alive on even rounds only.
	if sched.Alive(1, edge(0, 1)) || !sched.Alive(2, edge(0, 1)) || !sched.Alive(1, edge(1, 2)) {
		t.Error("blink defaults wrong")
	}
	if sched.Period() != 2 {
		t.Errorf("period = %d, want 2", sched.Period())
	}
}

// TestSeedDeterminism: equal (spec, seed) pairs must behave identically,
// and the model axis must thread the seed into random families.
func TestSeedDeterminism(t *testing.T) {
	g := gen.MustBuild("cycle:n=9", 1)
	run := func(seed int64) model.Model {
		m, err := model.Build("adversary:random:max=3", seed)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	resA, err := model.NewAsync(g, run(99).Adversary).Run(t.Context(), origins(0), opts(512, true))
	if err != nil {
		t.Fatal(err)
	}
	resB, err := model.NewAsync(g, run(99).Adversary).Run(t.Context(), origins(0), opts(512, true))
	if err != nil {
		t.Fatal(err)
	}
	if resA.Rounds != resB.Rounds || resA.TotalMessages != resB.TotalMessages {
		t.Fatalf("same seed diverged: %+v vs %+v", resA, resB)
	}
	resC, err := model.NewAsync(g, run(7).Adversary).Run(t.Context(), origins(0), opts(512, true))
	if err != nil {
		t.Fatal(err)
	}
	if resA.Rounds == resC.Rounds && resA.TotalMessages == resC.TotalMessages {
		t.Log("different seeds happened to agree (unlikely but legal)")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestSpecsListIsCanonical(t *testing.T) {
	for _, s := range model.Specs() {
		spec := model.MustParse(s)
		if spec.String() != s {
			t.Errorf("Specs() entry %q is not canonical (String() = %q)", s, spec.String())
		}
		if strings.Contains(s, " ") {
			t.Errorf("Specs() entry %q contains whitespace", s)
		}
	}
}
