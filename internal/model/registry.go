package model

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"amnesiacflood/internal/specgrammar"
)

// This file is the model registry and the spec grammar: every adversary and
// schedule family self-registers under a name, and a one-line spec string
// selects a model and binds its parameters:
//
//	sync
//	adversary:<family>[:key=value[,key=value]...]
//	schedule:<family>[:key=value[,key=value]...]
//
// Kind, family, and key names are case-insensitive; values must not contain
// ',' or '='. Omitted parameters take the family's declared defaults.
// Random families consume the seed passed to New, so equal (spec, seed)
// pairs build identically-behaving models.
//
// A parsed Spec round-trips: String emits the parameters in the family's
// declared order, so Parse(spec.String()) == spec for every parseable spec,
// and Parse(s).String() == s for every canonically ordered s.
//
// The typed-parameter machinery is the shared kernel in
// internal/specgrammar, instantiated identically by the graph and analysis
// registries; only the kind:family prefix level is model-specific.

// Kind partitions the model axis.
type Kind string

// The three model kinds.
const (
	// KindSync is the paper's synchronous model — the identity model,
	// executed by the ordinary engines. It has no families or parameters.
	KindSync Kind = "sync"
	// KindAdversary is the asynchronous model under a delay adversary.
	KindAdversary Kind = "adversary"
	// KindSchedule is the dynamic-network model under an edge schedule.
	KindSchedule Kind = "schedule"
)

// ParamKind types a family parameter.
type ParamKind = specgrammar.Kind

// Parameter kinds.
const (
	// IntParam values parse with strconv.Atoi.
	IntParam = specgrammar.IntParam
	// FloatParam values parse with strconv.ParseFloat.
	FloatParam = specgrammar.FloatParam
	// BoolParam values parse with strconv.ParseBool.
	BoolParam = specgrammar.BoolParam
	// StringParam values are free-form except for spec metacharacters.
	StringParam = specgrammar.StringParam
)

// Param declares one parameter of a family: its name, type, default value
// (a canonical literal of the declared kind), and a one-line doc string for
// -list output.
type Param = specgrammar.Param

// Values holds the resolved, type-checked parameters handed to a family's
// constructor. Accessors are keyed by declared parameter name; asking for
// an undeclared parameter is a programmer error and panics.
type Values = specgrammar.Values

// AdversaryFamily declares one registered adversary: its parameters (order
// defines the canonical spec order), whether it consumes the seed, and the
// constructor.
type AdversaryFamily struct {
	// Params declares the accepted parameters in canonical order.
	Params []Param
	// Random marks families that consume the seed passed to New.
	Random bool
	// Doc is a one-line description for listings.
	Doc string
	// New constructs the adversary from resolved values. It must validate
	// ranges and return an error (never panic) on unusable parameters.
	New func(v Values, seed int64) (Adversary, error)
}

// ScheduleFamily declares one registered schedule, mirroring
// AdversaryFamily.
type ScheduleFamily struct {
	Params []Param
	Random bool
	Doc    string
	New    func(v Values, seed int64) (Schedule, error)
}

// family is the kind-agnostic registry entry.
type family struct {
	params specgrammar.Params
	random bool
	doc    string
	newAdv func(Values, int64) (Adversary, error)
	newSch func(Values, int64) (Schedule, error)
}

// Info describes a registered family for listings (afsim -list).
type Info struct {
	Params []Param
	Random bool
	Doc    string
}

var (
	regMu sync.RWMutex
	reg   = map[Kind]map[string]family{
		KindAdversary: {},
		KindSchedule:  {},
	}
)

// RegisterAdversary adds an adversary family under a name, normally from
// the defining package's init so importing it is all it takes to make the
// adversary spec-addressable. It panics on empty or duplicate names, nil
// constructors, and malformed parameter declarations — programmer errors.
func RegisterAdversary(name string, fam AdversaryFamily) {
	if fam.New == nil {
		panic("model: RegisterAdversary " + name + " with nil New")
	}
	register(KindAdversary, name, family{params: fam.Params, random: fam.Random, doc: fam.Doc, newAdv: fam.New})
}

// RegisterSchedule adds a schedule family under a name; see
// RegisterAdversary.
func RegisterSchedule(name string, fam ScheduleFamily) {
	if fam.New == nil {
		panic("model: RegisterSchedule " + name + " with nil New")
	}
	register(KindSchedule, name, family{params: fam.Params, random: fam.Random, doc: fam.Doc, newSch: fam.New})
}

func register(kind Kind, name string, fam family) {
	name = specgrammar.CheckName("model", name, "")
	fam.params.Validate("model", "family "+name)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[kind][name]; dup {
		panic(fmt.Sprintf("model: Register called twice for %s %s", kind, name))
	}
	reg[kind][name] = fam
}

// Families enumerates the registered family names of a kind, sorted.
// KindSync has none.
func Families(kind Kind) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(reg[kind]))
	for name := range reg[kind] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the named family's declaration.
func Lookup(kind Kind, name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	fam, ok := reg[kind][strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Info{}, false
	}
	return Info{Params: fam.params, Random: fam.random, Doc: fam.doc}, true
}

// lookup is the internal accessor returning the constructor-bearing entry.
func lookup(kind Kind, name string) (family, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	fam, ok := reg[kind][name]
	return fam, ok
}

// Spec is a parsed model specification: a kind, a family name (empty for
// sync), and explicit parameter assignments. The zero value is invalid;
// build Specs with Parse. SyncSpec is the canonical synchronous spec.
type Spec struct {
	// Kind is the model kind.
	Kind Kind
	// Family is the lower-case registered family name; empty for sync.
	Family string
	// Params maps explicitly assigned parameter names to their raw
	// values; omitted parameters default at build time.
	Params map[string]string
}

// SyncSpec returns the canonical spec of the synchronous model.
func SyncSpec() Spec { return Spec{Kind: KindSync} }

// IsSync reports whether the spec names the synchronous model.
func (s Spec) IsSync() bool { return s.Kind == KindSync }

// String renders the canonical spec string: "sync", or the kind, family
// name, and any explicit parameters in the family's declared order. For
// specs produced by Parse, Parse(spec.String()) reproduces spec exactly.
func (s Spec) String() string {
	if s.Kind == KindSync {
		return string(KindSync)
	}
	head := string(s.Kind) + ":" + s.Family
	if len(s.Params) == 0 {
		return head
	}
	var decls specgrammar.Params
	if fam, ok := lookup(s.Kind, s.Family); ok {
		decls = fam.params
	}
	return head + ":" + decls.Canonical(s.Params)
}

// ErrUnknownModel is wrapped into errors for kinds or families outside the
// registry, matchable with errors.Is.
var ErrUnknownModel = fmt.Errorf("unknown execution model")

// Parse parses a model spec string (see the grammar at the top of this
// file) against the registry: the kind must be sync/adversary/schedule, the
// family registered, every key declared, and every value parseable as the
// declared kind. Parse never panics and never builds a model — use New for
// that.
func Parse(s string) (Spec, error) {
	kindName, rest, hasFamily := strings.Cut(strings.TrimSpace(s), ":")
	kindName = strings.ToLower(strings.TrimSpace(kindName))
	switch Kind(kindName) {
	case KindSync:
		if hasFamily && strings.TrimSpace(rest) != "" {
			return Spec{}, fmt.Errorf("model: the sync model takes no family or parameters (got %q)", s)
		}
		return SyncSpec(), nil
	case KindAdversary, KindSchedule:
		// parsed below
	case "":
		return Spec{}, fmt.Errorf("model: empty model spec")
	default:
		return Spec{}, fmt.Errorf("model: %w kind %q (want sync, adversary, or schedule)", ErrUnknownModel, kindName)
	}
	kind := Kind(kindName)
	famName, paramStr, hasParams := strings.Cut(rest, ":")
	famName = strings.ToLower(strings.TrimSpace(famName))
	if famName == "" {
		return Spec{}, fmt.Errorf("model: spec %q names no %s family (registered: %s)", s, kind, strings.Join(Families(kind), ", "))
	}
	fam, ok := lookup(kind, famName)
	if !ok {
		return Spec{}, fmt.Errorf("model: %w %s:%s (registered: %s)", ErrUnknownModel, kind, famName, strings.Join(Families(kind), ", "))
	}
	spec := Spec{Kind: kind, Family: famName}
	if !hasParams {
		return spec, nil
	}
	params, err := fam.params.ParseAssignments("model", s, string(kind)+" "+famName, paramStr)
	if err != nil {
		return Spec{}, err
	}
	spec.Params = params
	return spec, nil
}

// MustParse is Parse for specs known good at compile time; it panics on
// error.
func MustParse(s string) Spec {
	spec, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// Model is a built execution model: the sync model (both fields nil), an
// adversary, or a schedule. Spec is the parsed spec that built it.
type Model struct {
	Spec      Spec
	Adversary Adversary
	Schedule  Schedule
}

// New builds the model a spec describes. Omitted parameters take their
// declared defaults; random families derive all randomness from seed.
func New(spec Spec, seed int64) (Model, error) {
	if spec.Kind == KindSync {
		if spec.Family != "" || len(spec.Params) > 0 {
			return Model{}, fmt.Errorf("model: the sync model takes no family or parameters")
		}
		return Model{Spec: SyncSpec()}, nil
	}
	fam, ok := lookup(spec.Kind, spec.Family)
	if !ok {
		return Model{}, fmt.Errorf("model: %w %s:%s (registered: %s)", ErrUnknownModel, spec.Kind, spec.Family, strings.Join(Families(spec.Kind), ", "))
	}
	values, err := fam.params.Resolve("model", fmt.Sprintf("%s %s", spec.Kind, spec.Family), spec.Params)
	if err != nil {
		return Model{}, err
	}
	m := Model{Spec: spec}
	switch spec.Kind {
	case KindAdversary:
		m.Adversary, err = fam.newAdv(values, seed)
	case KindSchedule:
		m.Schedule, err = fam.newSch(values, seed)
	}
	if err != nil {
		return Model{}, fmt.Errorf("model: %s: %w", spec, err)
	}
	return m, nil
}

// Build parses and builds in one step — the convenience entry point for
// CLIs and suites holding spec strings.
func Build(spec string, seed int64) (Model, error) {
	parsed, err := Parse(spec)
	if err != nil {
		return Model{}, err
	}
	return New(parsed, seed)
}

// MustBuild is Build for specs known good at compile time; it panics on
// error.
func MustBuild(spec string, seed int64) Model {
	m, err := Build(spec, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Specs enumerates the canonical family specs of every registered model,
// sync first — the natural seed for tools sweeping the model axis.
func Specs() []string {
	out := []string{string(KindSync)}
	for _, name := range Families(KindAdversary) {
		out = append(out, string(KindAdversary)+":"+name)
	}
	for _, name := range Families(KindSchedule) {
		out = append(out, string(KindSchedule)+":"+name)
	}
	return out
}
