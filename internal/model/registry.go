package model

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the model registry and the spec grammar: every adversary and
// schedule family self-registers under a name, and a one-line spec string
// selects a model and binds its parameters:
//
//	sync
//	adversary:<family>[:key=value[,key=value]...]
//	schedule:<family>[:key=value[,key=value]...]
//
// Kind, family, and key names are case-insensitive; values must not contain
// ',' or '='. Omitted parameters take the family's declared defaults.
// Random families consume the seed passed to New, so equal (spec, seed)
// pairs build identically-behaving models.
//
// A parsed Spec round-trips: String emits the parameters in the family's
// declared order, so Parse(spec.String()) == spec for every parseable spec,
// and Parse(s).String() == s for every canonically ordered s.

// Kind partitions the model axis.
type Kind string

// The three model kinds.
const (
	// KindSync is the paper's synchronous model — the identity model,
	// executed by the ordinary engines. It has no families or parameters.
	KindSync Kind = "sync"
	// KindAdversary is the asynchronous model under a delay adversary.
	KindAdversary Kind = "adversary"
	// KindSchedule is the dynamic-network model under an edge schedule.
	KindSchedule Kind = "schedule"
)

// ParamKind types a family parameter.
type ParamKind int

// Parameter kinds.
const (
	// IntParam values parse with strconv.Atoi.
	IntParam ParamKind = iota + 1
	// FloatParam values parse with strconv.ParseFloat.
	FloatParam
	// BoolParam values parse with strconv.ParseBool.
	BoolParam
)

// String implements fmt.Stringer.
func (k ParamKind) String() string {
	switch k {
	case IntParam:
		return "int"
	case FloatParam:
		return "float"
	case BoolParam:
		return "bool"
	default:
		return fmt.Sprintf("ParamKind(%d)", int(k))
	}
}

// check validates that raw parses as a value of kind k.
func (k ParamKind) check(raw string) error {
	var err error
	switch k {
	case IntParam:
		_, err = strconv.Atoi(raw)
	case FloatParam:
		_, err = strconv.ParseFloat(raw, 64)
	case BoolParam:
		_, err = strconv.ParseBool(raw)
	default:
		err = fmt.Errorf("unknown parameter kind %d", int(k))
	}
	return err
}

// Param declares one parameter of a family: its name, type, default value
// (a canonical literal of the declared kind), and a one-line doc string for
// -list output.
type Param struct {
	Name    string
	Kind    ParamKind
	Default string
	Doc     string
}

// Values holds the resolved, type-checked parameters handed to a family's
// constructor. Accessors are keyed by declared parameter name; asking for
// an undeclared parameter is a programmer error and panics.
type Values struct {
	ints   map[string]int
	floats map[string]float64
	bools  map[string]bool
}

// Int returns the named int parameter.
func (v Values) Int(name string) int {
	n, ok := v.ints[name]
	if !ok {
		panic("model: constructor read undeclared int parameter " + name)
	}
	return n
}

// Float returns the named float parameter.
func (v Values) Float(name string) float64 {
	f, ok := v.floats[name]
	if !ok {
		panic("model: constructor read undeclared float parameter " + name)
	}
	return f
}

// Bool returns the named bool parameter.
func (v Values) Bool(name string) bool {
	b, ok := v.bools[name]
	if !ok {
		panic("model: constructor read undeclared bool parameter " + name)
	}
	return b
}

// AdversaryFamily declares one registered adversary: its parameters (order
// defines the canonical spec order), whether it consumes the seed, and the
// constructor.
type AdversaryFamily struct {
	// Params declares the accepted parameters in canonical order.
	Params []Param
	// Random marks families that consume the seed passed to New.
	Random bool
	// Doc is a one-line description for listings.
	Doc string
	// New constructs the adversary from resolved values. It must validate
	// ranges and return an error (never panic) on unusable parameters.
	New func(v Values, seed int64) (Adversary, error)
}

// ScheduleFamily declares one registered schedule, mirroring
// AdversaryFamily.
type ScheduleFamily struct {
	Params []Param
	Random bool
	Doc    string
	New    func(v Values, seed int64) (Schedule, error)
}

// family is the kind-agnostic registry entry.
type family struct {
	params []Param
	random bool
	doc    string
	newAdv func(Values, int64) (Adversary, error)
	newSch func(Values, int64) (Schedule, error)
}

// Info describes a registered family for listings (afsim -list).
type Info struct {
	Params []Param
	Random bool
	Doc    string
}

func (f family) param(name string) *Param {
	for i := range f.params {
		if f.params[i].Name == name {
			return &f.params[i]
		}
	}
	return nil
}

var (
	regMu sync.RWMutex
	reg   = map[Kind]map[string]family{
		KindAdversary: {},
		KindSchedule:  {},
	}
)

// RegisterAdversary adds an adversary family under a name, normally from
// the defining package's init so importing it is all it takes to make the
// adversary spec-addressable. It panics on empty or duplicate names, nil
// constructors, and malformed parameter declarations — programmer errors.
func RegisterAdversary(name string, fam AdversaryFamily) {
	if fam.New == nil {
		panic("model: RegisterAdversary " + name + " with nil New")
	}
	register(KindAdversary, name, family{params: fam.Params, random: fam.Random, doc: fam.Doc, newAdv: fam.New})
}

// RegisterSchedule adds a schedule family under a name; see
// RegisterAdversary.
func RegisterSchedule(name string, fam ScheduleFamily) {
	if fam.New == nil {
		panic("model: RegisterSchedule " + name + " with nil New")
	}
	register(KindSchedule, name, family{params: fam.Params, random: fam.Random, doc: fam.Doc, newSch: fam.New})
}

func register(kind Kind, name string, fam family) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		panic("model: Register with empty family name")
	}
	if strings.ContainsAny(name, ":,= \t") {
		panic("model: family name " + name + " contains spec metacharacters")
	}
	seen := map[string]bool{}
	for _, p := range fam.params {
		if p.Name == "" || strings.ContainsAny(p.Name, ":,= \t") {
			panic("model: family " + name + " declares invalid parameter name " + strconv.Quote(p.Name))
		}
		if seen[p.Name] {
			panic("model: family " + name + " declares parameter " + p.Name + " twice")
		}
		seen[p.Name] = true
		if err := p.Kind.check(p.Default); err != nil {
			panic(fmt.Sprintf("model: family %s parameter %s has unparseable default %q: %v", name, p.Name, p.Default, err))
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[kind][name]; dup {
		panic(fmt.Sprintf("model: Register called twice for %s %s", kind, name))
	}
	reg[kind][name] = fam
}

// Families enumerates the registered family names of a kind, sorted.
// KindSync has none.
func Families(kind Kind) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(reg[kind]))
	for name := range reg[kind] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the named family's declaration.
func Lookup(kind Kind, name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	fam, ok := reg[kind][strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Info{}, false
	}
	return Info{Params: fam.params, Random: fam.random, Doc: fam.doc}, true
}

// lookup is the internal accessor returning the constructor-bearing entry.
func lookup(kind Kind, name string) (family, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	fam, ok := reg[kind][name]
	return fam, ok
}

// Spec is a parsed model specification: a kind, a family name (empty for
// sync), and explicit parameter assignments. The zero value is invalid;
// build Specs with Parse. SyncSpec is the canonical synchronous spec.
type Spec struct {
	// Kind is the model kind.
	Kind Kind
	// Family is the lower-case registered family name; empty for sync.
	Family string
	// Params maps explicitly assigned parameter names to their raw
	// values; omitted parameters default at build time.
	Params map[string]string
}

// SyncSpec returns the canonical spec of the synchronous model.
func SyncSpec() Spec { return Spec{Kind: KindSync} }

// IsSync reports whether the spec names the synchronous model.
func (s Spec) IsSync() bool { return s.Kind == KindSync }

// String renders the canonical spec string: "sync", or the kind, family
// name, and any explicit parameters in the family's declared order. For
// specs produced by Parse, Parse(spec.String()) reproduces spec exactly.
func (s Spec) String() string {
	if s.Kind == KindSync {
		return string(KindSync)
	}
	head := string(s.Kind) + ":" + s.Family
	if len(s.Params) == 0 {
		return head
	}
	ordered := make([]string, 0, len(s.Params))
	emitted := map[string]bool{}
	if fam, ok := lookup(s.Kind, s.Family); ok {
		for _, p := range fam.params {
			if v, set := s.Params[p.Name]; set {
				ordered = append(ordered, p.Name+"="+v)
				emitted[p.Name] = true
			}
		}
	}
	// Parameters the family does not declare (possible only on hand-built
	// specs, which New rejects) trail in alphabetical order so String
	// stays total and deterministic.
	var extra []string
	for k, v := range s.Params {
		if !emitted[k] {
			extra = append(extra, k+"="+v)
		}
	}
	sort.Strings(extra)
	return head + ":" + strings.Join(append(ordered, extra...), ",")
}

// ErrUnknownModel is wrapped into errors for kinds or families outside the
// registry, matchable with errors.Is.
var ErrUnknownModel = fmt.Errorf("unknown execution model")

// Parse parses a model spec string (see the grammar at the top of this
// file) against the registry: the kind must be sync/adversary/schedule, the
// family registered, every key declared, and every value parseable as the
// declared kind. Parse never panics and never builds a model — use New for
// that.
func Parse(s string) (Spec, error) {
	kindName, rest, hasFamily := strings.Cut(strings.TrimSpace(s), ":")
	kindName = strings.ToLower(strings.TrimSpace(kindName))
	switch Kind(kindName) {
	case KindSync:
		if hasFamily && strings.TrimSpace(rest) != "" {
			return Spec{}, fmt.Errorf("model: the sync model takes no family or parameters (got %q)", s)
		}
		return SyncSpec(), nil
	case KindAdversary, KindSchedule:
		// parsed below
	case "":
		return Spec{}, fmt.Errorf("model: empty model spec")
	default:
		return Spec{}, fmt.Errorf("model: %w kind %q (want sync, adversary, or schedule)", ErrUnknownModel, kindName)
	}
	kind := Kind(kindName)
	famName, paramStr, hasParams := strings.Cut(rest, ":")
	famName = strings.ToLower(strings.TrimSpace(famName))
	if famName == "" {
		return Spec{}, fmt.Errorf("model: spec %q names no %s family (registered: %s)", s, kind, strings.Join(Families(kind), ", "))
	}
	fam, ok := lookup(kind, famName)
	if !ok {
		return Spec{}, fmt.Errorf("model: %w %s:%s (registered: %s)", ErrUnknownModel, kind, famName, strings.Join(Families(kind), ", "))
	}
	spec := Spec{Kind: kind, Family: famName}
	if !hasParams {
		return spec, nil
	}
	if strings.TrimSpace(paramStr) == "" {
		return Spec{}, fmt.Errorf("model: spec %q has an empty parameter list (drop the trailing ':')", s)
	}
	spec.Params = map[string]string{}
	for _, kv := range strings.Split(paramStr, ",") {
		key, value, ok := strings.Cut(kv, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		if !ok || key == "" || value == "" {
			return Spec{}, fmt.Errorf("model: spec %q: want key=value, got %q", s, kv)
		}
		decl := fam.param(key)
		if decl == nil {
			return Spec{}, fmt.Errorf("model: spec %q: %s %s has no parameter %q (accepts %s)", s, kind, famName, key, paramNames(fam))
		}
		if err := decl.Kind.check(value); err != nil {
			return Spec{}, fmt.Errorf("model: spec %q: parameter %s wants %s, got %q", s, key, decl.Kind, value)
		}
		if _, dup := spec.Params[key]; dup {
			return Spec{}, fmt.Errorf("model: spec %q assigns parameter %s twice", s, key)
		}
		spec.Params[key] = value
	}
	return spec, nil
}

// MustParse is Parse for specs known good at compile time; it panics on
// error.
func MustParse(s string) Spec {
	spec, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// Model is a built execution model: the sync model (both fields nil), an
// adversary, or a schedule. Spec is the parsed spec that built it.
type Model struct {
	Spec      Spec
	Adversary Adversary
	Schedule  Schedule
}

// New builds the model a spec describes. Omitted parameters take their
// declared defaults; random families derive all randomness from seed.
func New(spec Spec, seed int64) (Model, error) {
	if spec.Kind == KindSync {
		if spec.Family != "" || len(spec.Params) > 0 {
			return Model{}, fmt.Errorf("model: the sync model takes no family or parameters")
		}
		return Model{Spec: SyncSpec()}, nil
	}
	fam, ok := lookup(spec.Kind, spec.Family)
	if !ok {
		return Model{}, fmt.Errorf("model: %w %s:%s (registered: %s)", ErrUnknownModel, spec.Kind, spec.Family, strings.Join(Families(spec.Kind), ", "))
	}
	for k := range spec.Params {
		if fam.param(k) == nil {
			return Model{}, fmt.Errorf("model: %s %s has no parameter %q (accepts %s)", spec.Kind, spec.Family, k, paramNames(fam))
		}
	}
	values := Values{ints: map[string]int{}, floats: map[string]float64{}, bools: map[string]bool{}}
	for _, p := range fam.params {
		raw, set := spec.Params[p.Name]
		if !set {
			raw = p.Default
		}
		var err error
		switch p.Kind {
		case IntParam:
			values.ints[p.Name], err = strconv.Atoi(raw)
		case FloatParam:
			values.floats[p.Name], err = strconv.ParseFloat(raw, 64)
		case BoolParam:
			values.bools[p.Name], err = strconv.ParseBool(raw)
		}
		if err != nil {
			return Model{}, fmt.Errorf("model: %s:%s: parameter %s wants %s, got %q", spec.Kind, spec.Family, p.Name, p.Kind, raw)
		}
	}
	m := Model{Spec: spec}
	var err error
	switch spec.Kind {
	case KindAdversary:
		m.Adversary, err = fam.newAdv(values, seed)
	case KindSchedule:
		m.Schedule, err = fam.newSch(values, seed)
	}
	if err != nil {
		return Model{}, fmt.Errorf("model: %s: %w", spec, err)
	}
	return m, nil
}

// Build parses and builds in one step — the convenience entry point for
// CLIs and suites holding spec strings.
func Build(spec string, seed int64) (Model, error) {
	parsed, err := Parse(spec)
	if err != nil {
		return Model{}, err
	}
	return New(parsed, seed)
}

// MustBuild is Build for specs known good at compile time; it panics on
// error.
func MustBuild(spec string, seed int64) Model {
	m, err := Build(spec, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Specs enumerates the canonical family specs of every registered model,
// sync first — the natural seed for tools sweeping the model axis.
func Specs() []string {
	out := []string{string(KindSync)}
	for _, name := range Families(KindAdversary) {
		out = append(out, string(KindAdversary)+":"+name)
	}
	for _, name := range Families(KindSchedule) {
		out = append(out, string(KindSchedule)+":"+name)
	}
	return out
}

// paramNames renders a family's parameter declarations for error messages,
// e.g. "node int, extra int".
func paramNames(fam family) string {
	if len(fam.params) == 0 {
		return "no parameters"
	}
	parts := make([]string, len(fam.params))
	for i, p := range fam.params {
		parts[i] = p.Name + " " + p.Kind.String()
	}
	return strings.Join(parts, ", ")
}
