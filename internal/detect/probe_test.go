package detect_test

import (
	"context"
	"math/rand"
	"testing"

	"amnesiacflood/internal/detect"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
)

// TestProbeMatchesGroundTruth: the early-stopping streaming probe must
// agree with BFS two-colouring on every instance and every engine.
func TestProbeMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	graphs := []*graph.Graph{
		gen.Path(16), gen.Cycle(20), gen.Cycle(21), gen.Grid(6, 6),
		gen.Petersen(), gen.Hypercube(4), gen.Wheel(12),
		gen.RandomTree(40, rng), gen.RandomConnected(50, 0.08, rng),
	}
	ctx := context.Background()
	for _, g := range graphs {
		truth := algo.IsBipartite(g)
		for _, kind := range []sim.EngineKind{sim.Sequential, sim.Channels, sim.Fast, sim.Parallel} {
			src := graph.NodeID(rng.Intn(g.N()))
			verdict, err := detect.Probe(ctx, g, src, kind)
			if err != nil {
				t.Fatalf("%s from %d on %s: %v", g, src, kind, err)
			}
			if verdict.Bipartite != truth {
				t.Errorf("%s from %d on %s: probe says %t, two-colouring says %t",
					g, src, kind, verdict.Bipartite, truth)
			}
		}
	}
}

// TestProbeStopsBeforeFullFlood: on a non-bipartite graph the probe's
// stopping round must be at most the full verdict's round count, and a
// witness must be reported.
func TestProbeStopsBeforeFullFlood(t *testing.T) {
	g := gen.Cycle(41)
	full, err := detect.Bipartiteness(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := detect.Probe(context.Background(), g, 0, sim.Fast)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Bipartite {
		t.Fatal("odd cycle declared bipartite")
	}
	if len(probe.DoubleReceivers) == 0 {
		t.Fatal("no witness reported")
	}
	if probe.Rounds >= full.Rounds {
		t.Fatalf("probe ran %d rounds, full flood %d — expected an early stop", probe.Rounds, full.Rounds)
	}
}

func TestProbeRejectsDisconnected(t *testing.T) {
	g, err := graph.FromEdges("", 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := detect.Probe(context.Background(), g, 0, sim.Sequential); err == nil {
		t.Fatal("disconnected probe accepted")
	}
}
