package detect

import (
	"context"
	"fmt"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/sim"
)

// Monitor is a streaming odd-cycle detector: attached to a single-source
// flood as an engine.RoundObserver, it watches receipts round by round and
// stops the run at the first witness — a node hearing M in two distinct
// rounds, or the source hearing M at all. On a bipartite graph neither can
// happen (Lemma 2.1: every node hears M exactly once, strictly away from
// the source), so a stopped run certifies non-bipartiteness without
// flooding to completion; a run that dies unstopped certifies
// bipartiteness.
type Monitor struct {
	source graph.NodeID
	// firstHeard[v] is the first round v received M, 0 if not yet.
	firstHeard []int
	witness    graph.NodeID
	found      bool
}

var _ engine.RoundObserver = (*Monitor)(nil)

// NewMonitor returns a monitor for a flood from source on g.
func NewMonitor(g *graph.Graph, source graph.NodeID) *Monitor {
	return &Monitor{source: source, firstHeard: make([]int, g.N())}
}

// ObserveRound implements engine.RoundObserver, stopping at the first
// odd-cycle witness.
func (m *Monitor) ObserveRound(rec engine.RoundRecord) (bool, error) {
	for _, s := range rec.Sends {
		v := s.To
		if v == m.source || (m.firstHeard[v] != 0 && m.firstHeard[v] != rec.Round) {
			m.witness = v
			m.found = true
			return true, nil
		}
		if m.firstHeard[v] == 0 {
			m.firstHeard[v] = rec.Round
		}
	}
	return false, nil
}

// Witness returns the odd-cycle witness node and whether one was found.
func (m *Monitor) Witness() (graph.NodeID, bool) {
	return m.witness, m.found
}

// Probe decides bipartiteness with early termination: the probe flood runs
// on the selected engine under a Monitor and is stopped the moment an
// odd-cycle witness appears, instead of flooding to completion as
// Bipartiteness does. Rounds in the verdict is the stopping round for
// non-bipartite graphs.
func Probe(ctx context.Context, g *graph.Graph, source graph.NodeID, kind sim.EngineKind) (Verdict, error) {
	if !algo.Connected(g) {
		return Verdict{}, ErrDisconnected
	}
	monitor := NewMonitor(g, source)
	sess, err := sim.New(g,
		sim.WithProtocol("detect"),
		sim.WithEngine(kind),
		sim.WithOrigins(source),
		sim.WithObserver(monitor),
	)
	if err != nil {
		return Verdict{}, err
	}
	res, err := sess.Run(ctx)
	if err != nil {
		return Verdict{}, fmt.Errorf("detect: probe flood: %w", err)
	}
	v := Verdict{
		Source:       source,
		Rounds:       res.Rounds,
		Eccentricity: algo.Eccentricity(g, source),
		Bipartite:    !res.Stopped,
	}
	if w, ok := monitor.Witness(); ok {
		v.DoubleReceivers = []graph.NodeID{w}
	}
	return v, nil
}

// init self-registers the bipartiteness probe with the sim façade's
// protocol registry: a single-source amnesiac flood under its probe name,
// rejecting multi-origin specs (the detection signals need one source).
func init() {
	sim.Register("detect", func(spec sim.Spec) (engine.Protocol, error) {
		if len(spec.Origins) != 1 {
			return nil, fmt.Errorf("detect: the bipartiteness probe needs exactly one origin, got %d", len(spec.Origins))
		}
		flood, err := core.NewFlood(spec.Graph, spec.Origins...)
		if err != nil {
			return nil, err
		}
		return sim.Rename(flood, "bipartite-probe"), nil
	})
}
