package detect_test

import (
	"fmt"
	"log"

	"amnesiacflood/internal/detect"
	"amnesiacflood/internal/graph/gen"
)

// ExampleBipartiteness probes two cycles with a single flood each: the even
// cycle looks like a parallel BFS, the odd one betrays itself through
// double receipts.
func ExampleBipartiteness() {
	even, err := detect.Bipartiteness(gen.Cycle(6), 0)
	if err != nil {
		log.Fatal(err)
	}
	odd, err := detect.Bipartiteness(gen.Cycle(7), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C6 bipartite=%t witnesses=%d\n", even.Bipartite, len(even.DoubleReceivers))
	fmt.Printf("C7 bipartite=%t witnesses=%d\n", odd.Bipartite, len(odd.DoubleReceivers))
	// Output:
	// C6 bipartite=true witnesses=0
	// C7 bipartite=false witnesses=7
}
