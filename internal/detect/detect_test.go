package detect_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/detect"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
)

func TestBipartiteVerdicts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"path", gen.Path(12), true},
		{"evenCycle", gen.Cycle(10), true},
		{"oddCycle", gen.Cycle(11), false},
		{"triangle", gen.Cycle(3), false},
		{"grid", gen.Grid(5, 4), true},
		{"clique", gen.Complete(8), false},
		{"petersen", gen.Petersen(), false},
		{"hypercube", gen.Hypercube(4), true},
		{"star", gen.Star(9), true},
		{"singleton", gen.Path(1), true},
		{"K2", gen.Path(2), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for src := 0; src < tc.g.N(); src++ {
				v, err := detect.Bipartiteness(tc.g, graph.NodeID(src))
				if err != nil {
					t.Fatalf("source %d: %v", src, err)
				}
				if v.Bipartite != tc.want {
					t.Fatalf("source %d: verdict %t, want %t", src, v.Bipartite, tc.want)
				}
				if !tc.want && len(v.DoubleReceivers) == 0 {
					t.Fatalf("source %d: non-bipartite verdict without witnesses", src)
				}
				if tc.want && len(v.DoubleReceivers) != 0 {
					t.Fatalf("source %d: bipartite verdict with witnesses %v", src, v.DoubleReceivers)
				}
			}
		})
	}
}

func TestDisconnectedRejected(t *testing.T) {
	g, err := graph.FromEdges("", 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := detect.Bipartiteness(g, 0); !errors.Is(err, detect.ErrDisconnected) {
		t.Fatalf("error = %v, want ErrDisconnected", err)
	}
}

func TestFromReportReusesRun(t *testing.T) {
	g := gen.Cycle(7)
	rep, err := core.Run(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := detect.FromReport(g, rep)
	if err != nil {
		t.Fatal(err)
	}
	if v.Bipartite {
		t.Fatal("C7 reported bipartite")
	}
	if v.Rounds != rep.Rounds() {
		t.Fatalf("verdict rounds = %d, want %d", v.Rounds, rep.Rounds())
	}
}

func TestFromReportRejectsMultiSource(t *testing.T) {
	g := gen.Cycle(6)
	rep, err := core.Run(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := detect.FromReport(g, rep); err == nil {
		t.Fatal("multi-source report accepted")
	}
}

func TestVerdictString(t *testing.T) {
	g := gen.Cycle(3)
	v, err := detect.Bipartiteness(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.String(), "non-bipartite") {
		t.Fatalf("verdict string = %q", v.String())
	}
	g2 := gen.Path(4)
	v2, err := detect.Bipartiteness(g2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v2.String(), "bipartite") {
		t.Fatalf("verdict string = %q", v2.String())
	}
}

func TestAgreesWithTwoColoringOnRandomGraphs(t *testing.T) {
	// Property (E9 core claim): flooding-based detection agrees with BFS
	// two-colouring on every connected random graph from every random
	// source.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(50), 0.03+0.1*rng.Float64(), rng)
		src := graph.NodeID(rng.Intn(g.N()))
		v, err := detect.Bipartiteness(g, src)
		if err != nil {
			return false
		}
		return v.Bipartite == algo.IsBipartite(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestWitnessesAreGenuineDoubleReceivers(t *testing.T) {
	// Every reported witness node must indeed have received M in two
	// distinct rounds (or be the origin hearing it back).
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomNonBipartite(3+rng.Intn(40), 0.05, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		rep, err := core.Run(g, src)
		if err != nil {
			return false
		}
		v, err := detect.FromReport(g, rep)
		if err != nil || v.Bipartite {
			return false
		}
		for _, w := range v.DoubleReceivers {
			if w == src {
				if rep.ReceiveCounts[w] < 1 {
					return false
				}
				continue
			}
			if rep.ReceiveCounts[w] < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
