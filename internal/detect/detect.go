// Package detect implements the topology-detection application the paper
// motivates in Section 1.1: using amnesiac flooding itself to test a
// network for (non-)bipartiteness.
//
// The principle follows from the paper's results. On a connected bipartite
// graph a single-source flood behaves as a parallel BFS: every node receives
// M exactly once and the flood dies after e(source) rounds (Lemma 2.1). On
// a connected non-bipartite graph there is, for every source, an edge whose
// endpoints are equidistant from the source; both endpoints first receive M
// in the same round and then deliver it to each other one round later, so
// some node receives M twice and the flood outlives e(source). Either
// signal — a double receipt or a late round — therefore witnesses an odd
// cycle.
package detect

import (
	"errors"
	"fmt"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
)

// ErrDisconnected is returned when the probed graph is not connected; the
// flood only explores the source's component, so no global verdict is
// possible.
var ErrDisconnected = errors.New("detect: graph is not connected")

// Verdict is the outcome of a flooding-based bipartiteness probe.
type Verdict struct {
	// Bipartite is the verdict: true iff no odd cycle was witnessed.
	Bipartite bool
	// Source is the probe's origin node.
	Source graph.NodeID
	// Rounds is how long the probe flood ran.
	Rounds int
	// Eccentricity is e(source), the expected round count for a bipartite
	// graph.
	Eccentricity int
	// DoubleReceivers lists the nodes that received M in two distinct
	// rounds — each is a witness of an odd cycle. Empty for bipartite
	// graphs.
	DoubleReceivers []graph.NodeID
}

// String renders the verdict for reports.
func (v Verdict) String() string {
	if v.Bipartite {
		return fmt.Sprintf("bipartite (flood from %d died at round %d = e(source))", v.Source, v.Rounds)
	}
	return fmt.Sprintf("non-bipartite (flood from %d ran %d rounds > e(source)=%d; %d double receivers)",
		v.Source, v.Rounds, v.Eccentricity, len(v.DoubleReceivers))
}

// Bipartiteness probes g with a single amnesiac flood from source and
// returns the verdict. The two witness signals (double receipt, late
// termination) are computed independently and cross-checked; a disagreement
// would indicate a simulator bug and is returned as an error.
func Bipartiteness(g *graph.Graph, source graph.NodeID) (Verdict, error) {
	if !algo.Connected(g) {
		return Verdict{}, ErrDisconnected
	}
	rep, err := core.Run(g, source)
	if err != nil {
		return Verdict{}, fmt.Errorf("detect: probe flood: %w", err)
	}
	return verdictFromReport(g, source, rep)
}

// FromReport derives a verdict from an existing single-source run, avoiding
// a second simulation when the caller already has one.
func FromReport(g *graph.Graph, rep *core.Report) (Verdict, error) {
	if len(rep.Origins) != 1 {
		return Verdict{}, fmt.Errorf("detect: need a single-source report, got %d origins", len(rep.Origins))
	}
	if !algo.Connected(g) {
		return Verdict{}, ErrDisconnected
	}
	return verdictFromReport(g, rep.Origins[0], rep)
}

func verdictFromReport(g *graph.Graph, source graph.NodeID, rep *core.Report) (Verdict, error) {
	v := Verdict{
		Source:       source,
		Rounds:       rep.Rounds(),
		Eccentricity: algo.Eccentricity(g, source),
	}
	for node, count := range rep.ReceiveCounts {
		if count >= 2 {
			v.DoubleReceivers = append(v.DoubleReceivers, graph.NodeID(node))
		}
	}
	// The origin hearing M back is also an odd-cycle witness: on a
	// bipartite graph every round's messages travel strictly away from
	// the source.
	if rep.ReceiveCounts[source] >= 1 {
		v.DoubleReceivers = appendUnique(v.DoubleReceivers, source)
	}
	byReceipts := len(v.DoubleReceivers) > 0
	byRounds := v.Rounds > v.Eccentricity
	if byReceipts != byRounds {
		return Verdict{}, fmt.Errorf(
			"detect: witness signals disagree on %s from %d: doubleReceipts=%t lateRounds=%t (rounds=%d, e=%d)",
			g, source, byReceipts, byRounds, v.Rounds, v.Eccentricity)
	}
	v.Bipartite = !byReceipts
	return v, nil
}

func appendUnique(list []graph.NodeID, v graph.NodeID) []graph.NodeID {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}
