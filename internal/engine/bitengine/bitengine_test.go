package bitengine_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"amnesiacflood/internal/classic"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/bitengine"
	"amnesiacflood/internal/engine/fastengine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// instances is the differential corpus, mirroring fastengine's: bipartite
// and non-bipartite, trees, dense and sparse, random and structured —
// including degree-skewed instances (star, wheel, lollipop, prefattach)
// where the degree-sorted relabeling is far from the identity.
func instances(tb testing.TB) []*graph.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	gs := []*graph.Graph{
		gen.Path(2),
		gen.Path(33),
		gen.Path(130), // rows straddle many 64-bit word boundaries
		gen.Cycle(3),  // non-bipartite
		gen.Cycle(4),
		gen.Cycle(101), // non-bipartite
		gen.Star(17),
		gen.Star(130),
		gen.Wheel(16),    // non-bipartite
		gen.Complete(2),  // single edge
		gen.Complete(17), // non-bipartite
		gen.Complete(65), // a row wider than one word
		gen.Grid(7, 9),
		gen.Torus(4, 5), // non-bipartite
		gen.Hypercube(5),
		gen.Petersen(),      // non-bipartite
		gen.Lollipop(5, 20), // non-bipartite
		gen.Barbell(4, 12),  // non-bipartite
		gen.CompleteBinaryTree(6),
		gen.RandomTree(64, rng),
		gen.RandomBipartite(16, 20, 0.2, rng),
		gen.RandomNonBipartite(80, 0.06, rng),
		gen.RandomConnected(120, 0.04, rng),
		gen.RandomGNP(60, 0.08, rng), // possibly disconnected
		gen.PreferentialAttachment(90, 3, rng),
	}
	if len(gs) < 20 {
		tb.Fatalf("differential corpus has %d instances, want >= 20", len(gs))
	}
	return gs
}

type runner struct {
	name string
	run  func(context.Context, *graph.Graph, engine.Protocol, engine.Options) (engine.Result, error)
}

func allRunners() []runner {
	return []runner{
		{"bitset", bitengine.Run},
		{"bitsetNoRelabel", func(ctx context.Context, g *graph.Graph, p engine.Protocol, o engine.Options) (engine.Result, error) {
			return bitengine.New(g).Relabel(false).Run(ctx, p, o)
		}},
		// Word-sharded sweep on every round (ParallelThreshold 1): the test
		// graphs never reach the default frontier-word threshold.
		{"bitsetSharded", func(ctx context.Context, g *graph.Graph, p engine.Protocol, o engine.Options) (engine.Result, error) {
			o.ParallelThreshold = 1
			return bitengine.New(g).Parallel(4).Run(ctx, p, o)
		}},
		{"bitsetShardedNoRelabel", func(ctx context.Context, g *graph.Graph, p engine.Protocol, o engine.Options) (engine.Result, error) {
			o.ParallelThreshold = 1
			return bitengine.New(g).Relabel(false).Parallel(4).Run(ctx, p, o)
		}},
	}
}

// assertSameRun compares every bitset runner against the sequential
// reference and the fast engine on one protocol instance.
func assertSameRun(t *testing.T, g *graph.Graph, proto engine.Protocol) {
	t.Helper()
	opts := engine.Options{Trace: true}
	want, err := engine.Run(context.Background(), g, proto, opts)
	if err != nil {
		t.Fatalf("sequential on %s: %v", g, err)
	}
	fast, err := fastengine.Run(context.Background(), g, proto, opts)
	if err != nil {
		t.Fatalf("fast on %s: %v", g, err)
	}
	if !engine.EqualTraces(want.Trace, fast.Trace) {
		t.Fatalf("fast on %s: trace differs from sequential", g)
	}
	for _, r := range allRunners() {
		got, err := r.run(context.Background(), g, proto, opts)
		if err != nil {
			t.Fatalf("%s on %s: %v", r.name, g, err)
		}
		if !engine.EqualTraces(want.Trace, got.Trace) {
			t.Errorf("%s on %s: trace differs from sequential", r.name, g)
		}
		if got.Rounds != want.Rounds || got.TotalMessages != want.TotalMessages ||
			got.Terminated != want.Terminated || got.Protocol != want.Protocol {
			t.Errorf("%s on %s: result %+v, want %+v", r.name, g, got, want)
		}
	}
}

func TestEngineEquivalenceAmnesiac(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range instances(t) {
		src := graph.NodeID(rng.Intn(g.N()))
		assertSameRun(t, g, core.MustNewFlood(g, src))
	}
}

func TestEngineEquivalenceMultiSource(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, g := range instances(t) {
		origins := []graph.NodeID{
			graph.NodeID(rng.Intn(g.N())),
			graph.NodeID(rng.Intn(g.N())),
			graph.NodeID(rng.Intn(g.N())),
		}
		assertSameRun(t, g, core.MustNewFlood(g, origins...))
	}
}

func TestEngineEquivalenceClassic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, g := range instances(t) {
		src := graph.NodeID(rng.Intn(g.N()))
		assertSameRun(t, g, classic.MustNewFlood(g, src))
	}
}

// TestEngineReuse runs the same Engine repeatedly, across protocols and
// rules, and after an early stop: the bitsets must carry no state between
// runs.
func TestEngineReuse(t *testing.T) {
	g := gen.Lollipop(5, 30)
	e := bitengine.New(g)
	flood := core.MustNewFlood(g, 3)
	want, err := engine.Run(context.Background(), g, flood, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := e.Run(context.Background(), flood, engine.Options{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if !engine.EqualTraces(want.Trace, got.Trace) {
			t.Fatalf("run %d: trace differs", i)
		}
	}
	// A run stopped mid-flight must not leak frontier bits into the next.
	stopped, err := e.Run(context.Background(), flood, engine.Options{Observer: engine.ObserverFunc(func(r engine.RoundRecord) (bool, error) {
		return r.Round == 2, nil
	})})
	if err != nil || !stopped.Stopped || stopped.Rounds != 2 {
		t.Fatalf("stopped run: %+v, err %v", stopped, err)
	}
	cl := classic.MustNewFlood(g, 3)
	wantCl, err := engine.Run(context.Background(), g, cl, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	gotCl, err := e.Run(context.Background(), cl, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !engine.EqualTraces(wantCl.Trace, gotCl.Trace) {
		t.Fatal("classic after amnesiac on a reused engine: trace differs")
	}
}

// unsupported implements DenseProtocol but not BitsetProtocol.
type unsupported struct {
	engine.Protocol
}

func TestUnsupportedProtocolError(t *testing.T) {
	g := gen.Cycle(9)
	flood := core.MustNewFlood(g, 0)
	_, err := bitengine.Run(context.Background(), g, unsupported{flood}, engine.Options{})
	if !errors.Is(err, bitengine.ErrUnsupportedProtocol) {
		t.Fatalf("err = %v, want ErrUnsupportedProtocol", err)
	}
	if bitengine.Supports(unsupported{flood}) {
		t.Fatal("Supports must be false without a BitsetRule")
	}
	if !bitengine.Supports(flood) {
		t.Fatal("Supports must be true for amnesiac flooding")
	}
}

func TestMaxRoundsError(t *testing.T) {
	g := gen.Cycle(64)
	flood := core.MustNewFlood(g, 0)
	_, err := bitengine.Run(context.Background(), g, flood, engine.Options{MaxRounds: 3})
	if !errors.Is(err, engine.ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	res, err := bitengine.Run(context.Background(), g, flood, engine.Options{MaxRounds: 64})
	if err != nil {
		t.Fatalf("64 rounds on C64 must suffice: %v", err)
	}
	if !res.Terminated || res.Rounds != 32 {
		t.Fatalf("C64 from 0: rounds=%d terminated=%t, want 32 true", res.Rounds, res.Terminated)
	}
}

func TestObserverSeesEveryRound(t *testing.T) {
	g := gen.Path(9)
	flood := core.MustNewFlood(g, 0)
	var rounds []int
	var msgs int
	_, err := bitengine.Run(context.Background(), g, flood, engine.Options{Observer: engine.ObserverFunc(func(r engine.RoundRecord) (bool, error) {
		rounds = append(rounds, r.Round)
		msgs += len(r.Sends)
		return false, nil
	})})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 8 || rounds[0] != 1 || rounds[7] != 8 {
		t.Fatalf("observer rounds = %v", rounds)
	}
	if msgs != 8 {
		t.Fatalf("observer saw %d messages on P9 from an end, want 8", msgs)
	}
}

func TestObserverErrorAborts(t *testing.T) {
	g := gen.Cycle(12)
	flood := core.MustNewFlood(g, 0)
	boom := errors.New("boom")
	_, err := bitengine.Run(context.Background(), g, flood, engine.Options{Observer: engine.ObserverFunc(func(r engine.RoundRecord) (bool, error) {
		if r.Round == 3 {
			return false, boom
		}
		return false, nil
	})})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the observer's error", err)
	}
}

func TestCancellation(t *testing.T) {
	g := gen.Cycle(64)
	flood := core.MustNewFlood(g, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := bitengine.Run(ctx, g, flood, engine.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDegreeSorted pins the relabeling contract: descending degree, stable
// ties, inverse consistency, identity on regular graphs, and preserved
// adjacency.
func TestDegreeSorted(t *testing.T) {
	// Path degrees are [1 2 2 ... 2 1]: the endpoints must relabel to the
	// back, interior nodes shift forward in stable (original-id) order.
	g := gen.Path(6)
	rg, perm, inv := graph.DegreeSorted(g)
	if rg == g {
		t.Fatal("path must relabel (endpoints have the minimum degree)")
	}
	if perm[0] != 4 || perm[5] != 5 || perm[1] != 0 {
		t.Fatalf("unexpected permutation: %v", perm)
	}
	for v := 0; v < g.N(); v++ {
		if inv[perm[v]] != graph.NodeID(v) {
			t.Fatalf("inv[perm[%d]] = %d", v, inv[perm[v]])
		}
		if rg.Degree(perm[graph.NodeID(v)]) != g.Degree(graph.NodeID(v)) {
			t.Fatalf("degree of %d changed under relabeling", v)
		}
	}
	for nw := 1; nw < rg.N(); nw++ {
		if rg.Degree(graph.NodeID(nw-1)) < rg.Degree(graph.NodeID(nw)) {
			t.Fatalf("degrees not descending at %d", nw)
		}
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if !rg.HasEdge(perm[v], perm[u]) {
				t.Fatalf("edge (%d,%d) lost under relabeling", v, u)
			}
		}
	}
	cyc := gen.Cycle(10)
	if rg2, _, _ := graph.DegreeSorted(cyc); rg2 != cyc {
		t.Fatal("regular graph must relabel to the identity (same *Graph)")
	}
}
