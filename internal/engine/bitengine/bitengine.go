// Package bitengine is the word-parallel synchronous round engine for
// flooding protocols whose whole round is a set operation over
// received-from directions (engine.BitsetProtocol). It produces traces
// byte-identical to the sequential reference engine while never
// materialising per-message Send records on the hot path.
//
// The state of an amnesiac-flooding round is exactly "which directed edges
// carry the message" — a subset of the 2m CSR edge slots. The engine packs
// that frontier into []uint64 bitsets and replaces the per-message loops of
// the other engines with three word-granular passes:
//
//   - Scatter: for every set bit e = (u→v) in the current frontier, set the
//     reciprocal slot mirror[e] in the receive bitset (v's
//     received-from-u direction) and mark v in a per-node bitset. mirror is
//     the precomputed permutation pairing each directed slot with its
//     reverse slot.
//   - Respond: for every marked node v, OR rowMask(v) AND-NOT receive into
//     the next frontier, word by word over v's contiguous CSR row span —
//     the paper's "forward to everyone you did not just hear from" as a
//     branch-free word sweep. Classic flooding is the same sweep gated by a
//     per-node seen bit (engine.RuleComplementOnce).
//   - Clear and swap: per-buffer dirty-word lists record which words went
//     nonzero, so clearing costs O(frontier words) rather than O(m/64) —
//     essential on path-like graphs whose floods run Θ(n) rounds with a
//     constant-size frontier.
//
// Rounds whose frontier covers at least half of the directed slots flip to a
// pull kernel instead: every row gathers its received-from bits directly
// through the mirror permutation (pure loads, no scattered read-modify-write,
// no dirty-list bookkeeping) and ORs its response row-locally into the next
// frontier. Push touches O(frontier) state and wins while the flood is
// ramping up; pull touches O(m) with a smaller constant and wins once the
// flood saturates — the regime million-node dense instances spend almost all
// their rounds in. Both kernels compute the identical next-frontier bitset,
// so the switch is invisible in traces.
//
// Frontiers are double-buffered and every buffer is reused across rounds
// and runs, so a warmed-up engine allocates nothing per round. Rounds are
// only materialised into Send records when a trace or observer asks.
//
// An optional sharded mode partitions the dirty *words* (not nodes) of a
// round across worker goroutines. All writes are idempotent bitwise ORs
// into word-aligned slots, and OR is commutative and associative, so the
// final bitset state — and therefore every materialised trace — is
// byte-identical regardless of worker interleaving; atomic OR's returned
// old value dedups the dirty-word lists without coordination.
//
// A degree-sorted relabeling pass (graph.DegreeSorted, on by default) packs
// high-degree rows at the front of the arena for cache locality; traces are
// mapped back through the inverse permutation and re-sorted, so relabeling
// is invisible in every output.
package bitengine

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// ErrUnsupportedProtocol is returned (wrapped) when the protocol does not
// implement engine.BitsetProtocol. Unlike the other engines, this one never
// calls NewNode or AppendSends — it executes the declared BitsetRule
// directly — so protocols with bespoke per-node behaviour cannot fall back.
var ErrUnsupportedProtocol = errors.New("protocol does not declare a bitset rule (engine.BitsetProtocol)")

// DefaultParallelThreshold is the frontier size, in dirty 64-bit words,
// below which the sharded mode runs a round sequentially when
// engine.Options.ParallelThreshold is 0. Sharding a handful of words costs
// more in goroutine wakeups than the OR sweep itself.
const DefaultParallelThreshold = 64

// Supports reports whether proto can run on this engine.
func Supports(proto engine.Protocol) bool {
	_, ok := proto.(engine.BitsetProtocol)
	return ok
}

// Engine executes bitset-capable protocols on one graph. It owns all
// frontier state, so a single Engine amortises setup (mirror permutation,
// relabeling, bitset arenas) across many runs; it is not safe for
// concurrent use (run several Engines for that).
type Engine struct {
	orig    *graph.Graph
	workers int
	relabel bool

	ready bool
	run   *graph.Graph   // graph the kernel runs on (== orig unless relabeled)
	perm  []graph.NodeID // orig → run labels; nil when identity
	inv   []graph.NodeID // run → orig labels; nil when identity
	csr   graph.CSR
	// mirror pairs each directed CSR slot e = (u→v) with the reverse slot
	// (v→u), so scattering a send sets the receiver's direction bit with
	// one permuted store.
	mirror []int32

	cur, nxt  []uint64 // frontier bitsets over directed slots, double-buffered
	recv      []uint64 // received-from-direction bits of the round
	mark      []uint64 // nodes receiving this round (per-node bits)
	seen      []uint64 // nodes already done (RuleComplementOnce only)
	dirtyCur  []int32  // nonzero word indices of cur
	dirtyNxt  []int32  // nonzero word indices of nxt
	dirtyRecv []int32  // nonzero word indices of recv
	dirtyMark []int32  // nonzero word indices of mark

	// rowBuf holds one row's gathered receive words during a pull round;
	// denseScan records that the previous round was a pull, whose row-local
	// writes skip dirty-list bookkeeping, so the next round must rebuild
	// dirtyCur with a full sweep.
	rowBuf    []uint64
	denseScan bool

	sends []engine.Send // round materialisation buffer (trace/observer only)

	shardDirty [][]int32  // per-worker dirty-list arenas (sharded mode)
	shardBuf   [][]uint64 // per-worker row gather buffers (sharded pull)
}

// New returns a sequential engine for g with degree-sorted relabeling
// enabled.
func New(g *graph.Graph) *Engine {
	return &Engine{orig: g, workers: 1, relabel: true}
}

// Parallel sets the number of sweep workers and returns e for chaining.
// workers <= 0 means GOMAXPROCS. Traces stay byte-identical: the sharded
// passes only perform commutative OR writes, so worker interleaving cannot
// change the resulting bitsets.
func (e *Engine) Parallel(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.workers = workers
	return e
}

// Relabel toggles the degree-sorted relabeling pass (default on) and
// returns e for chaining. Must be called before the first Run.
func (e *Engine) Relabel(enabled bool) *Engine {
	if e.ready && enabled != e.relabel {
		panic("bitengine: Relabel after first Run")
	}
	e.relabel = enabled
	return e
}

// Run is the one-shot convenience wrapper: a fresh sequential engine per
// call. Reuse an Engine for allocation-free repeated runs.
func Run(ctx context.Context, g *graph.Graph, proto engine.Protocol, opts engine.Options) (engine.Result, error) {
	return New(g).Run(ctx, proto, opts)
}

// RunParallel is Run with GOMAXPROCS sweep workers.
func RunParallel(ctx context.Context, g *graph.Graph, proto engine.Protocol, opts engine.Options) (engine.Result, error) {
	return New(g).Parallel(0).Run(ctx, proto, opts)
}

// init builds the run graph, mirror permutation, and bitset arenas once per
// Engine.
func (e *Engine) init() {
	if e.ready {
		return
	}
	e.ready = true
	e.run = e.orig
	if e.relabel {
		rg, perm, inv := graph.DegreeSorted(e.orig)
		if rg != e.orig { // identity permutations keep the fast paths below
			e.run, e.perm, e.inv = rg, perm, inv
		}
	}
	e.csr = e.run.CSR()
	n, slots := e.csr.N(), len(e.csr.Targets)

	e.mirror = make([]int32, slots)
	cursor := make([]int32, n)
	for u := 0; u < n; u++ {
		lo, hi := e.csr.Offsets[u], e.csr.Offsets[u+1]
		for s := lo; s < hi; s++ {
			v := e.csr.Targets[s]
			// Sweeping u ascending visits row v's back-targets in ascending
			// order, so a per-node cursor yields u's rank in row v directly.
			e.mirror[s] = e.csr.Offsets[v] + cursor[v]
			cursor[v]++
		}
	}

	slotWords := (slots + 63) / 64
	nodeWords := (n + 63) / 64
	e.cur = make([]uint64, slotWords)
	e.nxt = make([]uint64, slotWords)
	e.recv = make([]uint64, slotWords)
	e.mark = make([]uint64, nodeWords)
	e.seen = make([]uint64, nodeWords)

	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := int(e.csr.Offsets[v+1] - e.csr.Offsets[v]); d > maxDeg {
			maxDeg = d
		}
	}
	// A row of degree d spans at most d/64+2 words of the slot bitsets.
	e.rowBuf = make([]uint64, maxDeg>>6+2)
}

// reset clears all per-run state. Runs that end early (observer stop,
// cancellation, round limit) leave bits behind, so every Run starts from a
// wiped slate; the wipe is a handful of memclr sweeps, far below the cost
// of any run.
func (e *Engine) reset() {
	clear(e.cur)
	clear(e.nxt)
	clear(e.recv)
	clear(e.mark)
	clear(e.seen)
	e.dirtyCur = e.dirtyCur[:0]
	e.dirtyNxt = e.dirtyNxt[:0]
	e.dirtyRecv = e.dirtyRecv[:0]
	e.dirtyMark = e.dirtyMark[:0]
	e.denseScan = false
}

// Run executes proto to termination or the round limit, with the same
// semantics, results, and traces as engine.Run. Cancellation of ctx is
// checked once per round, before the round is counted. Protocols without a
// bitset rule fail immediately with ErrUnsupportedProtocol (wrapped).
func (e *Engine) Run(ctx context.Context, proto engine.Protocol, opts engine.Options) (engine.Result, error) {
	bp, ok := proto.(engine.BitsetProtocol)
	if !ok {
		return engine.Result{Protocol: proto.Name()}, fmt.Errorf("bitengine: %s on %s: %w", proto.Name(), e.orig, ErrUnsupportedProtocol)
	}
	rule := bp.BitsetRule()
	if rule != engine.RuleComplement && rule != engine.RuleComplementOnce {
		return engine.Result{Protocol: proto.Name()}, fmt.Errorf("bitengine: %s on %s: unknown bitset rule %d: %w", proto.Name(), e.orig, rule, ErrUnsupportedProtocol)
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = engine.DefaultMaxRounds
	}
	minWords := opts.ParallelThreshold
	if minWords == 0 {
		minWords = DefaultParallelThreshold
	}
	e.init()
	e.reset()
	res := engine.Result{Protocol: proto.Name()}

	if err := e.bootstrap(proto, rule); err != nil {
		return res, fmt.Errorf("bitengine: %s on %s: %w", proto.Name(), e.orig, err)
	}
	materialise := opts.Trace || opts.Observer != nil
	for round := 1; ; round++ {
		frontier := 0
		if e.denseScan {
			// The previous round ran the pull kernel, whose row-local writes
			// skip dirty-list bookkeeping; one full sweep rebuilds the
			// (sorted) list. Pull only fires on saturated frontiers, so the
			// sweep is proportional to the work just done.
			e.denseScan = false
			e.dirtyCur = e.dirtyCur[:0]
			for wi, w := range e.cur {
				if w != 0 {
					e.dirtyCur = append(e.dirtyCur, int32(wi))
					frontier += bits.OnesCount64(w)
				}
			}
		} else {
			for _, wi := range e.dirtyCur {
				frontier += bits.OnesCount64(e.cur[wi])
			}
		}
		if len(e.dirtyCur) == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("bitengine: %s on %s: %w", proto.Name(), e.orig, err)
		}
		if round > maxRounds {
			return res, fmt.Errorf("bitengine: %s on %s: %w (%d)", proto.Name(), e.orig, engine.ErrMaxRounds, maxRounds)
		}
		res.Rounds = round
		res.TotalMessages += frontier
		if materialise {
			e.materialise()
			if opts.Trace {
				res.Trace = append(res.Trace, engine.RoundRecord{Round: round, Sends: append([]engine.Send(nil), e.sends...)})
			}
			stop, err := opts.Observe(engine.RoundRecord{Round: round, Sends: e.sends})
			if err != nil {
				return res, fmt.Errorf("bitengine: %s on %s: observer at round %d: %w", proto.Name(), e.orig, round, err)
			}
			if stop {
				res.Stopped = true
				return res, nil
			}
		}

		if 2*frontier >= len(e.csr.Targets) {
			// Saturated round: the pull kernel gathers rows directly and
			// touches none of the recv/mark state (see package doc).
			if e.workers > 1 && len(e.dirtyCur) >= minWords {
				e.pullSharded(rule)
			} else {
				e.pull(rule)
			}
			for _, wi := range e.dirtyCur {
				e.cur[wi] = 0
			}
			e.dirtyCur = e.dirtyCur[:0]
			e.cur, e.nxt = e.nxt, e.cur
			e.denseScan = true
			continue
		}

		if e.workers > 1 && len(e.dirtyCur) >= minWords {
			e.scatterSharded()
			e.respondSharded(rule)
		} else {
			e.scatter()
			e.respond(rule)
		}

		// Sparse clears: only words that went nonzero this round.
		for _, wi := range e.dirtyRecv {
			e.recv[wi] = 0
		}
		e.dirtyRecv = e.dirtyRecv[:0]
		for _, wi := range e.dirtyMark {
			e.mark[wi] = 0
		}
		e.dirtyMark = e.dirtyMark[:0]
		for _, wi := range e.dirtyCur {
			e.cur[wi] = 0
		}
		e.dirtyCur, e.dirtyNxt = e.dirtyNxt, e.dirtyCur[:0]
		e.cur, e.nxt = e.nxt, e.cur
	}
	res.Terminated = true
	return res, nil
}

// bootstrap seeds the round-1 frontier from the protocol's spontaneous
// sends, mapped through the relabeling permutation, and pre-marks the
// bootstrap senders as seen for the once rule (a connected origin appears
// among the senders; an isolated one never receives, so its bit is moot).
func (e *Engine) bootstrap(proto engine.Protocol, rule engine.BitsetRule) error {
	for _, s := range proto.Bootstrap() {
		u, v := s.From, s.To
		if e.perm != nil {
			u, v = e.perm[u], e.perm[v]
		}
		row := e.csr.Row(u)
		i, found := slices.BinarySearch(row, v)
		if !found {
			return fmt.Errorf("bootstrap send %v crosses a non-edge", s)
		}
		e.setCur(int32(e.csr.Offsets[u]) + int32(i))
		if rule == engine.RuleComplementOnce {
			wi, bit := int32(u>>6), uint64(1)<<(uint(u)&63)
			e.seen[wi] |= bit
		}
	}
	return nil
}

// setCur sets frontier bit s with dirty tracking.
func (e *Engine) setCur(s int32) {
	wi := s >> 6
	if e.cur[wi] == 0 {
		e.dirtyCur = append(e.dirtyCur, wi)
	}
	e.cur[wi] |= 1 << (uint(s) & 63)
}

// scatter delivers the frontier: every set bit e = (u→v) becomes v's
// received-from-u direction bit (via mirror) and marks v as a receiver.
func (e *Engine) scatter() {
	for _, wi := range e.dirtyCur {
		w := e.cur[wi]
		base := int32(wi) << 6
		for w != 0 {
			s := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			me := e.mirror[s]
			mw := me >> 6
			if e.recv[mw] == 0 {
				e.dirtyRecv = append(e.dirtyRecv, mw)
			}
			e.recv[mw] |= 1 << (uint(me) & 63)
			v := e.csr.Targets[s]
			vw := int32(v >> 6)
			if e.mark[vw] == 0 {
				e.dirtyMark = append(e.dirtyMark, vw)
			}
			e.mark[vw] |= 1 << (uint(v) & 63)
		}
	}
}

// respond turns the round's receipts into the next frontier: for every
// marked (and, under the once rule, unseen) node v, OR v's row mask AND-NOT
// its received directions into nxt, word by word over the row span.
func (e *Engine) respond(rule engine.BitsetRule) {
	for _, vw := range e.dirtyMark {
		m := e.mark[vw]
		if rule == engine.RuleComplementOnce {
			m &^= e.seen[vw]
			e.seen[vw] |= m
		}
		base := graph.NodeID(vw) << 6
		for m != 0 {
			v := base + graph.NodeID(bits.TrailingZeros64(m))
			m &= m - 1
			e.respondNode(v)
		}
	}
}

// respondNode sweeps node v's row span: nxt |= rowMask & ^recv.
func (e *Engine) respondNode(v graph.NodeID) {
	lo, hi := int32(e.csr.Offsets[v]), int32(e.csr.Offsets[v+1])
	for wi := lo >> 6; wi <= (hi-1)>>6 && lo < hi; wi++ {
		mask := ^uint64(0)
		if s := wi << 6; s < lo {
			mask &= ^uint64(0) << (uint(lo) & 63)
		}
		if end := (wi + 1) << 6; end > hi {
			mask &= ^uint64(0) >> (64 - (uint(hi) & 63))
		}
		if bitsOut := mask &^ e.recv[wi]; bitsOut != 0 {
			if e.nxt[wi] == 0 {
				e.dirtyNxt = append(e.dirtyNxt, wi)
			}
			e.nxt[wi] |= bitsOut
		}
	}
}

// pull runs one saturated round in gather mode: every row reads its
// received-from bits straight out of the frontier (receipt on slot s is
// cur[mirror[s]]) and ORs its response row-locally into nxt. Compared to
// scatter/respond this is pure loads instead of scattered read-modify-writes,
// no branchy dirty-list maintenance, and sequential stores — a smaller
// constant over O(m) work, which wins once the frontier covers most slots.
// recv, mark, and all dirty lists stay untouched; the caller sets denseScan
// so the next round rebuilds dirtyCur with a full sweep.
func (e *Engine) pull(rule engine.BitsetRule) {
	e.pullRows(rule, 0, e.csr.N(), e.rowBuf, false)
}

// pullRows gathers and responds for rows [vlo, vhi). When shared is true the
// nxt ORs are atomic: row ranges of different workers can straddle a slot
// word. buf must hold the widest row span in the range.
func (e *Engine) pullRows(rule engine.BitsetRule, vlo, vhi int, buf []uint64, shared bool) {
	cur, mirror, nxt := e.cur, e.mirror, e.nxt
	for v := vlo; v < vhi; v++ {
		lo, hi := int32(e.csr.Offsets[v]), int32(e.csr.Offsets[v+1])
		if lo >= hi {
			continue
		}
		if rule == engine.RuleComplementOnce && e.seen[v>>6]&(1<<(uint(v)&63)) != 0 {
			continue
		}
		w0 := lo >> 6
		words := (hi-1)>>6 - w0 + 1
		var received uint64
		s := lo
		for k := int32(0); k < words; k++ {
			end := (w0 + k + 1) << 6
			if end > hi {
				end = hi
			}
			var rw uint64
			for ; s < end; s++ {
				me := mirror[s]
				rw |= ((cur[me>>6] >> (uint(me) & 63)) & 1) << (uint(s) & 63)
			}
			buf[k] = rw
			received |= rw
		}
		if received == 0 {
			continue
		}
		if rule == engine.RuleComplementOnce {
			e.seen[v>>6] |= 1 << (uint(v) & 63)
		}
		for k := int32(0); k < words; k++ {
			wi := w0 + k
			mask := ^uint64(0)
			if sBase := wi << 6; sBase < lo {
				mask &= ^uint64(0) << (uint(lo) & 63)
			}
			if end := (wi + 1) << 6; end > hi {
				mask &= ^uint64(0) >> (64 - (uint(hi) & 63))
			}
			if out := mask &^ buf[k]; out != 0 {
				if shared {
					atomic.OrUint64(&nxt[wi], out)
				} else {
					nxt[wi] |= out
				}
			}
		}
	}
}

// pullSharded partitions rows across workers in contiguous ranges balanced
// by slot count and snapped to 64-row boundaries, so every seen word belongs
// to exactly one worker and stays plain; nxt words straddling a range
// boundary can be shared, so sharded pull ORs nxt atomically. OR commutes,
// so the resulting bitset — and every trace — is byte-identical to the
// sequential pull.
func (e *Engine) pullSharded(rule engine.BitsetRule) {
	n := e.csr.N()
	workers := e.workers
	if maxShards := (n + 63) / 64; workers > maxShards {
		workers = maxShards
	}
	if workers <= 1 {
		e.pull(rule)
		return
	}
	e.growBufs(workers)
	var wg sync.WaitGroup
	prev := 0
	for w := 0; w < workers && prev < n; w++ {
		end := n
		if w < workers-1 {
			target := int32(len(e.csr.Targets) * (w + 1) / workers)
			end = sort.Search(n, func(v int) bool { return e.csr.Offsets[v+1] >= target })
			if end = (end + 64) &^ 63; end > n {
				end = n
			}
		}
		if end <= prev {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			e.pullRows(rule, lo, hi, e.shardBuf[w], true)
		}(w, prev, end)
		prev = end
	}
	wg.Wait()
}

// growBufs ensures k per-worker row gather buffers exist.
func (e *Engine) growBufs(k int) {
	for len(e.shardBuf) < k {
		e.shardBuf = append(e.shardBuf, make([]uint64, len(e.rowBuf)))
	}
}

// materialise renders the current frontier as (From, To)-sorted Send
// records into e.sends. Slots ascend row-major, so without relabeling the
// bits already come out in (From, To) order; with relabeling the sends are
// mapped back through inv and re-sorted.
func (e *Engine) materialise() {
	e.sends = e.sends[:0]
	slices.Sort(e.dirtyCur)
	owner := graph.NodeID(-1)
	for _, wi := range e.dirtyCur {
		w := e.cur[wi]
		base := int32(wi) << 6
		for w != 0 {
			s := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			if owner < 0 || int32(e.csr.Offsets[owner+1]) <= s {
				// Owner lookup: the node whose row span contains slot s.
				owner = graph.NodeID(sort.Search(e.csr.N(), func(v int) bool {
					return e.csr.Offsets[v+1] > s
				}))
			}
			from, to := owner, e.csr.Targets[s]
			if e.inv != nil {
				from, to = e.inv[from], e.inv[to]
			}
			e.sends = append(e.sends, engine.Send{From: from, To: to})
		}
	}
	if e.inv != nil {
		slices.SortFunc(e.sends, func(a, b engine.Send) int {
			if a.From != b.From {
				return int(a.From - b.From)
			}
			return int(a.To - b.To)
		})
	}
}

// scatterSharded is scatter with the dirty frontier words partitioned
// across workers. recv and mark words can be shared between shards (mirror
// and Targets point anywhere), so those ORs are atomic; the old value
// returned by atomic.Or elects exactly one worker to dirty-list each word.
func (e *Engine) scatterSharded() {
	workers := e.workers
	if workers > len(e.dirtyCur) {
		workers = len(e.dirtyCur)
	}
	e.growShards(2 * workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(e.dirtyCur) * w / workers
		hi := len(e.dirtyCur) * (w + 1) / workers
		wg.Add(1)
		go func(w int, words []int32) {
			defer wg.Done()
			dRecv := e.shardDirty[2*w][:0]
			dMark := e.shardDirty[2*w+1][:0]
			for _, wi := range words {
				word := e.cur[wi]
				base := int32(wi) << 6
				for word != 0 {
					s := base + int32(bits.TrailingZeros64(word))
					word &= word - 1
					me := e.mirror[s]
					if atomic.OrUint64(&e.recv[me>>6], 1<<(uint(me)&63)) == 0 {
						dRecv = append(dRecv, me>>6)
					}
					v := e.csr.Targets[s]
					if atomic.OrUint64(&e.mark[v>>6], 1<<(uint(v)&63)) == 0 {
						dMark = append(dMark, int32(v>>6))
					}
				}
			}
			e.shardDirty[2*w] = dRecv
			e.shardDirty[2*w+1] = dMark
		}(w, e.dirtyCur[lo:hi])
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		e.dirtyRecv = append(e.dirtyRecv, e.shardDirty[2*w]...)
		e.dirtyMark = append(e.dirtyMark, e.shardDirty[2*w+1]...)
	}
}

// respondSharded is respond with the dirty mark words partitioned across
// workers. Each mark word (and its aligned seen word) belongs to exactly
// one shard, so the seen update stays plain; rows of nodes from different
// shards can overlap in nxt words, so those ORs are atomic.
func (e *Engine) respondSharded(rule engine.BitsetRule) {
	workers := e.workers
	if workers > len(e.dirtyMark) {
		workers = len(e.dirtyMark)
	}
	if workers <= 1 {
		e.respond(rule)
		return
	}
	e.growShards(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(e.dirtyMark) * w / workers
		hi := len(e.dirtyMark) * (w + 1) / workers
		wg.Add(1)
		go func(w int, words []int32) {
			defer wg.Done()
			dNxt := e.shardDirty[w][:0]
			for _, vw := range words {
				m := e.mark[vw]
				if rule == engine.RuleComplementOnce {
					m &^= e.seen[vw]
					e.seen[vw] |= m
				}
				base := graph.NodeID(vw) << 6
				for m != 0 {
					v := base + graph.NodeID(bits.TrailingZeros64(m))
					m &= m - 1
					lo, hi := int32(e.csr.Offsets[v]), int32(e.csr.Offsets[v+1])
					for wi := lo >> 6; wi <= (hi-1)>>6 && lo < hi; wi++ {
						mask := ^uint64(0)
						if s := wi << 6; s < lo {
							mask &= ^uint64(0) << (uint(lo) & 63)
						}
						if end := (wi + 1) << 6; end > hi {
							mask &= ^uint64(0) >> (64 - (uint(hi) & 63))
						}
						if bitsOut := mask &^ e.recv[wi]; bitsOut != 0 {
							if atomic.OrUint64(&e.nxt[wi], bitsOut) == 0 {
								dNxt = append(dNxt, wi)
							}
						}
					}
				}
			}
			e.shardDirty[w] = dNxt
		}(w, e.dirtyMark[lo:hi])
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		e.dirtyNxt = append(e.dirtyNxt, e.shardDirty[w]...)
	}
}

// growShards ensures k per-worker dirty-list arenas exist.
func (e *Engine) growShards(k int) {
	for len(e.shardDirty) < k {
		e.shardDirty = append(e.shardDirty, nil)
	}
}
