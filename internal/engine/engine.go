// Package engine implements the synchronous message-passing substrate of the
// paper's model: computation proceeds in rounds, each round every node
// receives the messages addressed to it, performs local computation, and
// emits messages that are delivered in the next round. No messages are lost.
//
// The package defines a Protocol abstraction shared by the deterministic
// sequential engine implemented here and the goroutine/channel engine in the
// chanengine subpackage; both must produce identical traces (experiment E10).
//
// Round numbering follows the paper: the origin's spontaneous sends happen
// in round 1 and are received in round 1; the messages a node emits in
// response are received in round 2; and so on. A run terminates at the end
// of the first round in which no edge carries a message.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"slices"
	"time"

	"amnesiacflood/internal/graph"
)

// Send is a message crossing the directed edge From -> To during one round.
// The flooding protocols studied here carry a single, constant payload M, so
// the (From, To) pair fully identifies a message within a round.
type Send struct {
	From, To graph.NodeID
}

// String renders the send as "from->to".
func (s Send) String() string {
	return fmt.Sprintf("%d->%d", s.From, s.To)
}

// NodeAutomaton is the per-node behaviour of a protocol. In every round in
// which node v receives at least one copy of the message, the engine calls
// its automaton with the round number and the sorted list of distinct
// senders; the automaton returns the neighbours v sends to in the next
// round. The senders slice aliases engine-internal storage that is reused
// for the next receiver — automata must not retain it past the call.
//
// Implementations may keep internal state across calls (classic flooding
// keeps a "seen" flag). Amnesiac flooding must not: its automaton is a pure
// function of the current round's senders, which is exactly the paper's
// memorylessness requirement.
type NodeAutomaton func(round int, senders []graph.NodeID) []graph.NodeID

// Protocol is a synchronous message-driven algorithm, instantiated for a
// specific graph and origin set.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Bootstrap returns the spontaneous sends of round 1. The protocol
	// retains ownership of the returned slice: engines copy it before
	// normalising, so implementations may return an internal slice and
	// call sites may rely on it staying untouched across runs.
	Bootstrap() []Send
	// NewNode returns a fresh automaton for node v. The engine calls it
	// once per node per run, so per-run node state lives in the returned
	// closure.
	NewNode(v graph.NodeID) NodeAutomaton
}

// RoundAppender is the allocation-free fast path used by the fastengine
// subpackage: instead of one automaton closure per node returning a fresh
// destination slice, a single per-run object appends the sends of node v
// directly onto the engine's reusable arena.
//
// AppendSends must emit the sends of v in ascending destination order (the
// engines normalise otherwise, at a cost) and must not retain senders or
// out. The parallel engine calls AppendSends concurrently for distinct v
// (never twice for the same v in a round), so any per-node run state must be
// independently addressable — a slice indexed by node works, a shared map
// does not.
type RoundAppender interface {
	AppendSends(round int, v graph.NodeID, senders []graph.NodeID, out []Send) []Send
}

// DenseProtocol is an optional extension of Protocol for engines that
// exploit dense node identifiers. NewRun returns a fresh appender per run,
// playing the role NewNode's closures play in the generic path; per-run
// protocol state lives in the returned value. Protocols implementing it run
// allocation-free on fastengine; others fall back to NewNode transparently.
type DenseProtocol interface {
	Protocol
	NewRun() RoundAppender
}

// BitsetRule identifies the per-round forwarding rule of a protocol whose
// whole round is a set operation over received-from directions, which is
// what lets the bitengine subpackage run it as a word-parallel bitset sweep
// instead of materialising per-message Send records.
type BitsetRule int

// The forwarding rules the bitset engine can execute.
const (
	// RuleComplement: every receiver forwards to the complement of its
	// sender set, every round — amnesiac flooding (and its observation-only
	// derivatives such as detect/spantree probes, whose extra state lives in
	// analyses, not in the dynamics).
	RuleComplement BitsetRule = iota + 1
	// RuleComplementOnce: a receiver forwards the complement of its sender
	// set on its *first* receipt and stays silent afterwards — classic
	// flooding with a per-node seen bit (origins count as already seen).
	RuleComplementOnce
)

// BitsetProtocol is an optional extension of DenseProtocol for protocols
// whose dynamics are fully captured by a BitsetRule. The bitset engine
// refuses protocols without it (see bitengine.ErrUnsupportedProtocol):
// unlike the other engines it never calls NewNode or AppendSends, so a
// protocol with bespoke per-node behaviour (faulty nodes, multi-message
// payloads) cannot be expressed there.
type BitsetProtocol interface {
	DenseProtocol
	// BitsetRule declares the forwarding rule the engine should execute.
	BitsetRule() BitsetRule
}

// Outcome classifies how a run ended across every execution model. The
// synchronous engines prove termination by reaching an empty round; the
// asynchronous and dynamic model engines (internal/model) can additionally
// certify *non*-termination by configuration repetition, or give up at a
// round limit without a verdict (randomised adversaries, aperiodic
// schedules). The zero value means "no verdict" — the run was stopped or
// cancelled before one was reached.
type Outcome int

// Possible outcomes.
const (
	// OutcomeNone: no verdict (stopped by an observer or cancelled).
	OutcomeNone Outcome = iota
	// OutcomeTerminated: a round with no message in flight arrived.
	OutcomeTerminated
	// OutcomeCycle: the global configuration repeated under a
	// deterministic model — a finite certificate of an infinite execution.
	OutcomeCycle
	// OutcomeRoundLimit: the round limit was reached without termination
	// or a certificate.
	OutcomeRoundLimit
)

// String implements fmt.Stringer, matching the historical report spellings.
func (o Outcome) String() string {
	switch o {
	case OutcomeNone:
		return ""
	case OutcomeTerminated:
		return "terminated"
	case OutcomeCycle:
		return "non-termination-certified"
	case OutcomeRoundLimit:
		return "round-limit"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// MarshalJSON renders the outcome as its string spelling.
func (o Outcome) MarshalJSON() ([]byte, error) {
	return json.Marshal(o.String())
}

// UnmarshalJSON parses the string spelling emitted by MarshalJSON.
func (o *Outcome) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "":
		*o = OutcomeNone
	case "terminated":
		*o = OutcomeTerminated
	case "non-termination-certified":
		*o = OutcomeCycle
	case "round-limit":
		*o = OutcomeRoundLimit
	default:
		return fmt.Errorf("engine: unknown outcome %q", s)
	}
	return nil
}

// Certificate is a non-termination certificate: the global configuration at
// the start of round Start reoccurred at Start+Length, so the execution is
// periodic from Start on and never terminates.
type Certificate struct {
	Start  int `json:"start"`
	Length int `json:"length"`
}

// RoundRecord is the trace of a single round: the messages crossing edges
// during that round, sorted by (From, To).
type RoundRecord struct {
	Round int    `json:"round"`
	Sends []Send `json:"sends"`
}

// Senders returns the sorted set of distinct nodes sending in this round
// (the "circled nodes" of the paper's figures).
func (r RoundRecord) Senders() []graph.NodeID {
	out := make([]graph.NodeID, len(r.Sends))
	for i, s := range r.Sends {
		out[i] = s.From
	}
	return sortedDistinct(out)
}

// Receivers returns the sorted set of distinct nodes receiving in this round
// (the round-set R_i of the paper's Theorem 3.1 proof).
func (r RoundRecord) Receivers() []graph.NodeID {
	out := make([]graph.NodeID, len(r.Sends))
	for i, s := range r.Sends {
		out[i] = s.To
	}
	return sortedDistinct(out)
}

// sortedDistinct sorts ids in place and drops duplicates. Normalised records
// deliver the ids nearly (Receivers) or fully (Senders) sorted, so the sort
// is cheap and the whole helper costs one allocation.
func sortedDistinct(ids []graph.NodeID) []graph.NodeID {
	if len(ids) == 0 {
		return ids
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}

// Result is the outcome of a synchronous run.
type Result struct {
	// Protocol is the protocol name, for reports.
	Protocol string `json:"protocol"`
	// Engine names the substrate that executed the run. The engines leave
	// it empty; the sim façade fills it in so benchmark JSON and
	// experiment tables can attribute numbers to a substrate.
	Engine string `json:"engine,omitempty"`
	// Model is the canonical execution-model spec (internal/model grammar)
	// the run executed under. The engines leave it empty; the sim façade
	// stamps it ("sync", "adversary:collision", ...).
	Model string `json:"model,omitempty"`
	// Outcome classifies how the run ended. The synchronous engines leave
	// it unset (the façade derives OutcomeTerminated from Terminated); the
	// model engines report their verdict directly, including certified
	// non-termination, which Terminated alone cannot express.
	Outcome Outcome `json:"outcome,omitempty"`
	// Certificate describes the certified non-termination loop when
	// Outcome == OutcomeCycle, nil otherwise.
	Certificate *Certificate `json:"certificate,omitempty"`
	// Terminated is true when the run reached a round with no messages
	// within the round limit; false means the limit was hit first or an
	// observer stopped the run.
	Terminated bool `json:"terminated"`
	// Stopped is true when a RoundObserver ended the run early by
	// returning stop. Rounds, TotalMessages, and Trace then cover exactly
	// the rounds up to and including the stopping round.
	Stopped bool `json:"stopped,omitempty"`
	// Rounds is the number of rounds in which at least one message was in
	// flight. For a terminated run, no message exists in round Rounds+1.
	Rounds int `json:"rounds"`
	// TotalMessages counts every (sender, receiver) message delivery over
	// the whole run.
	TotalMessages int `json:"totalMessages"`
	// Lost counts messages dropped in transit. Only the dynamic model
	// engine produces losses (sends onto dead edges); it is zero
	// everywhere else.
	Lost int `json:"lost,omitempty"`
	// WallTime is the wall-clock duration of the run. The engines leave
	// it zero; the sim façade populates it.
	WallTime time.Duration `json:"wallTimeNs,omitempty"`
	// Phases splits WallTime into per-phase durations. The engines leave
	// it zero; the sim façade populates it. Like WallTime it is
	// nondeterministic and excluded from every equality contract.
	Phases PhaseTimings `json:"phases,omitzero"`
	// Metrics holds the merged streaming-analysis metrics of the run,
	// keyed "<family>.<metric>" (see internal/analysis). The engines leave
	// it nil; the sim façade populates it when analyses are attached with
	// sim.WithAnalysis.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Trace holds one record per round when tracing is enabled, nil
	// otherwise.
	Trace []RoundRecord `json:"trace,omitempty"`
}

// PhaseTimings splits one run's wall clock into its phases, as measured by
// the sim façade: Build is the per-run protocol construction (zero for a
// Session.Run over a protocol built at New time), Run is the engine's
// round loop including analysis observation, Analyze is the
// analysis.Set.Finish metric merge. Scenario sinks time their writes
// separately (the sink phase lives in scenario.Telemetry, not here — a
// sink write is per row, not per engine run).
type PhaseTimings struct {
	Build   time.Duration `json:"buildNs,omitempty"`
	Run     time.Duration `json:"runNs,omitempty"`
	Analyze time.Duration `json:"analyzeNs,omitempty"`
}

// ErrMaxRounds is wrapped into the error returned by Run when the round
// limit is exceeded, which for the protocols in this repository indicates
// either a deliberately non-terminating configuration or a bug.
var ErrMaxRounds = errors.New("round limit exceeded")

// RoundObserver streams a run round by round. ObserveRound is invoked after
// every round with the round's record, regardless of Options.Trace; the
// record's Sends slice aliases engine-internal storage and must not be
// retained past the call.
//
// Returning stop = true ends the run cleanly after the observed round:
// the engine sets Result.Stopped, leaves Terminated false, and returns a nil
// error, with Rounds/TotalMessages/Trace covering exactly the observed
// prefix. Returning a non-nil error aborts the run and the engine returns
// the error wrapped. Every engine honours stop and err identically, so
// early-stopped traces are byte-identical prefixes of full traces.
type RoundObserver interface {
	ObserveRound(rec RoundRecord) (stop bool, err error)
}

// ObserverFunc adapts a plain function to the RoundObserver interface.
type ObserverFunc func(rec RoundRecord) (stop bool, err error)

// ObserveRound implements RoundObserver.
func (f ObserverFunc) ObserveRound(rec RoundRecord) (bool, error) { return f(rec) }

// Options configures a run; the zero value means "no trace, default round
// limit".
type Options struct {
	// Trace records every round's sends into Result.Trace.
	Trace bool
	// MaxRounds bounds the run; 0 means DefaultMaxRounds.
	MaxRounds int
	// Observer, when non-nil, is invoked after every round with the
	// round's record (regardless of Trace) and may stop or abort the run;
	// see RoundObserver.
	Observer RoundObserver
	// ParallelThreshold tunes when parallel-capable engines (fastengine's
	// sharded delivery, bitengine's word-sharded sweep) split a round across
	// goroutines: rounds smaller than the threshold run sequentially so
	// small-graph suites don't pay goroutine overhead. 0 means the engine's
	// default; 1 forces sharding on every round (used by the differential
	// tests); engines that never parallelise ignore it. The unit is the
	// engine's natural round-size measure (receivers for fastengine,
	// frontier words for bitengine).
	ParallelThreshold int
}

// Observe runs the round hook shared by every engine: a no-op without an
// observer; otherwise stop/err are returned for the engine to honour.
func (o Options) Observe(rec RoundRecord) (stop bool, err error) {
	if o.Observer == nil {
		return false, nil
	}
	return o.Observer.ObserveRound(rec)
}

// DefaultMaxRounds is the round limit used when Options.MaxRounds is 0. The
// paper proves termination within 2D+1 <= 2n-1 rounds, so this limit is far
// beyond any terminating single-message run on graphs this package targets.
const DefaultMaxRounds = 1 << 20

// Run executes proto on g sequentially and deterministically: nodes are
// activated in ascending NodeID order and all sorting is stable, so two runs
// with the same inputs produce byte-identical traces. Cancellation of ctx is
// checked once per round, before the round is counted; a cancelled run
// returns the partial Result alongside the context's error.
func Run(ctx context.Context, g *graph.Graph, proto Protocol, opts Options) (Result, error) {
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	res := Result{Protocol: proto.Name()}

	automata := make([]NodeAutomaton, g.N())
	nodeFor := func(v graph.NodeID) NodeAutomaton {
		if automata[v] == nil {
			automata[v] = proto.NewNode(v)
		}
		return automata[v]
	}

	// Copy the bootstrap sends before normalising: Bootstrap's slice
	// belongs to the protocol and normalizeSends sorts in place.
	pending := normalizeSends(append([]Send(nil), proto.Bootstrap()...))
	var senders []graph.NodeID // per-batch sender buffer, reused across rounds
	for round := 1; len(pending) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("engine: %s on %s: %w", proto.Name(), g, err)
		}
		if round > maxRounds {
			return res, fmt.Errorf("engine: %s on %s: %w (%d)", proto.Name(), g, ErrMaxRounds, maxRounds)
		}
		res.Rounds = round
		res.TotalMessages += len(pending)
		if opts.Trace {
			res.Trace = append(res.Trace, RoundRecord{Round: round, Sends: append([]Send(nil), pending...)})
		}
		stop, err := opts.Observe(RoundRecord{Round: round, Sends: pending})
		if err != nil {
			return res, fmt.Errorf("engine: %s on %s: observer at round %d: %w", proto.Name(), g, round, err)
		}
		if stop {
			res.Stopped = true
			return res, nil
		}

		// Group this round's deliveries by receiver: re-sort pending — a
		// round-record copy was already captured above — from (From, To)
		// to (To, From) order, so each receiver's senders form one
		// contiguous, ascending run. This replaces the former map bucket
		// plus two sort.Slice calls and is the reference engine's last
		// avoidable per-round allocation hot spot.
		slices.SortFunc(pending, func(a, b Send) int {
			if a.To != b.To {
				return int(a.To) - int(b.To)
			}
			return int(a.From) - int(b.From)
		})
		var next []Send
		for i := 0; i < len(pending); {
			v := pending[i].To
			senders = senders[:0]
			for ; i < len(pending) && pending[i].To == v; i++ {
				senders = append(senders, pending[i].From)
			}
			for _, dst := range nodeFor(v)(round, senders) {
				next = append(next, Send{From: v, To: dst})
			}
		}
		pending = normalizeSends(next)
	}
	res.Terminated = true
	return res, nil
}

// normalizeSends sorts sends by (From, To) and drops duplicates, ensuring a
// canonical per-round representation. Protocols never legitimately emit the
// same (From, To) twice in one round, but normalising makes trace equality
// well-defined.
func normalizeSends(sends []Send) []Send {
	if len(sends) == 0 {
		return nil
	}
	slices.SortFunc(sends, func(a, b Send) int {
		if a.From != b.From {
			return int(a.From) - int(b.From)
		}
		return int(a.To) - int(b.To)
	})
	out := sends[:1]
	for _, s := range sends[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// AppendComplement appends Send{from, nbr} for every nbr in nbrs that does
// not appear in senders, preserving order. Both inputs must be sorted
// ascending. It is the flooding protocols' shared "forward to everyone who
// did not just send to me" merge, shaped for RoundAppender implementations:
// a two-pointer pass with zero allocation beyond out's growth.
func AppendComplement(out []Send, from graph.NodeID, nbrs, senders []graph.NodeID) []Send {
	i := 0
	for _, nbr := range nbrs {
		for i < len(senders) && senders[i] < nbr {
			i++
		}
		if i < len(senders) && senders[i] == nbr {
			continue
		}
		out = append(out, Send{From: from, To: nbr})
	}
	return out
}

// EqualTraces reports whether two traces are identical round for round. It
// is the acceptance predicate of experiment E10 (engine equivalence).
func EqualTraces(a, b []RoundRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Round != b[i].Round || len(a[i].Sends) != len(b[i].Sends) {
			return false
		}
		for j := range a[i].Sends {
			if a[i].Sends[j] != b[i].Sends[j] {
				return false
			}
		}
	}
	return true
}
