package fastengine_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"amnesiacflood/internal/classic"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/chanengine"
	"amnesiacflood/internal/engine/fastengine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// opaque hides a protocol's DenseProtocol implementation, forcing the
// fastengine onto the generic NewNode fallback path.
type opaque struct {
	engine.Protocol
}

// instances is the differential corpus: bipartite and non-bipartite, trees,
// dense and sparse, random and structured. The acceptance bar is ≥ 20
// instances with non-bipartite ones included.
func instances(tb testing.TB) []*graph.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	gs := []*graph.Graph{
		gen.Path(2),
		gen.Path(33),
		gen.Cycle(3), // non-bipartite
		gen.Cycle(4),
		gen.Cycle(33),  // non-bipartite
		gen.Cycle(101), // non-bipartite
		gen.Star(17),
		gen.Wheel(16),    // non-bipartite
		gen.Complete(2),  // single edge
		gen.Complete(17), // non-bipartite
		gen.Grid(7, 9),
		gen.Torus(4, 5), // non-bipartite (odd dimension)
		gen.Hypercube(5),
		gen.Petersen(),      // non-bipartite
		gen.Lollipop(5, 20), // non-bipartite
		gen.Barbell(4, 12),  // non-bipartite
		gen.CompleteBinaryTree(6),
		gen.RandomTree(64, rng),
		gen.RandomBipartite(16, 20, 0.2, rng),
		gen.RandomNonBipartite(80, 0.06, rng), // non-bipartite
		gen.RandomConnected(120, 0.04, rng),
		gen.RandomGNP(60, 0.08, rng), // possibly disconnected
	}
	if len(gs) < 20 {
		tb.Fatalf("differential corpus has %d instances, want >= 20", len(gs))
	}
	return gs
}

type runner struct {
	name string
	run  func(context.Context, *graph.Graph, engine.Protocol, engine.Options) (engine.Result, error)
}

func allRunners() []runner {
	return []runner{
		{"chan", chanengine.Run},
		{"fast", fastengine.Run},
		{"fastParallel", fastengine.RunParallel},
		{"fastFallback", func(ctx context.Context, g *graph.Graph, p engine.Protocol, o engine.Options) (engine.Result, error) {
			return fastengine.Run(ctx, g, opaque{p}, o)
		}},
		// Sharded delivery on every round (ParallelThreshold 1), both
		// protocol paths: the test graphs are far smaller than the default
		// sharding threshold, so without this the parallel code path —
		// including concurrent lazy automaton creation in the fallback —
		// would never run under the differential corpus or the race
		// detector.
		{"fastSharded", func(ctx context.Context, g *graph.Graph, p engine.Protocol, o engine.Options) (engine.Result, error) {
			o.ParallelThreshold = 1
			return fastengine.RunParallel(ctx, g, p, o)
		}},
		{"fastShardedFallback", func(ctx context.Context, g *graph.Graph, p engine.Protocol, o engine.Options) (engine.Result, error) {
			o.ParallelThreshold = 1
			return fastengine.RunParallel(ctx, g, opaque{p}, o)
		}},
	}
}

// assertSameRun compares a runner's outcome against the sequential reference
// on one protocol instance.
func assertSameRun(t *testing.T, g *graph.Graph, proto engine.Protocol) {
	t.Helper()
	opts := engine.Options{Trace: true}
	want, err := engine.Run(context.Background(), g, proto, opts)
	if err != nil {
		t.Fatalf("sequential on %s: %v", g, err)
	}
	for _, r := range allRunners() {
		got, err := r.run(context.Background(), g, proto, opts)
		if err != nil {
			t.Fatalf("%s on %s: %v", r.name, g, err)
		}
		if !engine.EqualTraces(want.Trace, got.Trace) {
			t.Errorf("%s on %s: trace differs from sequential", r.name, g)
		}
		if got.Rounds != want.Rounds || got.TotalMessages != want.TotalMessages ||
			got.Terminated != want.Terminated || got.Protocol != want.Protocol {
			t.Errorf("%s on %s: result %+v, want %+v", r.name, g, got, want)
		}
	}
}

func TestEngineEquivalenceAmnesiac(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range instances(t) {
		src := graph.NodeID(rng.Intn(g.N()))
		assertSameRun(t, g, core.MustNewFlood(g, src))
	}
}

func TestEngineEquivalenceMultiSource(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, g := range instances(t) {
		origins := []graph.NodeID{
			graph.NodeID(rng.Intn(g.N())),
			graph.NodeID(rng.Intn(g.N())),
			graph.NodeID(rng.Intn(g.N())),
		}
		assertSameRun(t, g, core.MustNewFlood(g, origins...))
	}
}

func TestEngineEquivalenceClassic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, g := range instances(t) {
		src := graph.NodeID(rng.Intn(g.N()))
		assertSameRun(t, g, classic.MustNewFlood(g, src))
	}
}

// TestParallelCrossesShardingThreshold makes sure the parallel runs above
// actually exercise the sharded path on at least one instance: a complete
// graph floods every node in round 2, far beyond the sharding threshold.
func TestParallelCrossesShardingThreshold(t *testing.T) {
	g := gen.Complete(400)
	flood := core.MustNewFlood(g, 0)
	opts := engine.Options{Trace: true}
	want, err := engine.Run(context.Background(), g, flood, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		got, err := fastengine.New(g).Parallel(workers).Run(context.Background(), flood, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.EqualTraces(want.Trace, got.Trace) {
			t.Errorf("workers=%d: trace differs", workers)
		}
	}
}

// TestEngineReuse runs the same Engine repeatedly and across protocols: the
// arenas must carry no state between runs.
func TestEngineReuse(t *testing.T) {
	g := gen.Lollipop(5, 30)
	e := fastengine.New(g)
	flood := core.MustNewFlood(g, 3)
	want, err := engine.Run(context.Background(), g, flood, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := e.Run(context.Background(), flood, engine.Options{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if !engine.EqualTraces(want.Trace, got.Trace) {
			t.Fatalf("run %d: trace differs", i)
		}
	}
	cl := classic.MustNewFlood(g, 3)
	wantCl, err := engine.Run(context.Background(), g, cl, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	gotCl, err := e.Run(context.Background(), cl, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !engine.EqualTraces(wantCl.Trace, gotCl.Trace) {
		t.Fatal("classic after amnesiac on a reused engine: trace differs")
	}
}

func TestMaxRoundsError(t *testing.T) {
	g := gen.Cycle(64)
	flood := core.MustNewFlood(g, 0)
	_, err := fastengine.Run(context.Background(), g, flood, engine.Options{MaxRounds: 3})
	if !errors.Is(err, engine.ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	res, err := fastengine.Run(context.Background(), g, flood, engine.Options{MaxRounds: 64})
	if err != nil {
		t.Fatalf("64 rounds on C64 must suffice: %v", err)
	}
	if !res.Terminated || res.Rounds != 32 {
		t.Fatalf("C64 from 0: rounds=%d terminated=%t, want 32 true", res.Rounds, res.Terminated)
	}
}

func TestObserverSeesEveryRound(t *testing.T) {
	g := gen.Path(9)
	flood := core.MustNewFlood(g, 0)
	var rounds []int
	var msgs int
	_, err := fastengine.Run(context.Background(), g, flood, engine.Options{Observer: engine.ObserverFunc(func(r engine.RoundRecord) (bool, error) {
		rounds = append(rounds, r.Round)
		msgs += len(r.Sends)
		return false, nil
	})})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 8 || rounds[0] != 1 || rounds[7] != 8 {
		t.Fatalf("observer rounds = %v", rounds)
	}
	if msgs != 8 {
		t.Fatalf("observer saw %d messages on P9 from an end, want 8", msgs)
	}
}

// misbehaved emits its bootstrap and per-node responses out of order and
// with duplicates, exercising the engine's normalisation fallback.
type misbehaved struct {
	g *graph.Graph
}

func (m misbehaved) Name() string { return "misbehaved" }

func (m misbehaved) Bootstrap() []engine.Send {
	nbrs := m.g.Neighbors(0)
	var sends []engine.Send
	for i := len(nbrs) - 1; i >= 0; i-- {
		sends = append(sends, engine.Send{From: 0, To: nbrs[i]})
		sends = append(sends, engine.Send{From: 0, To: nbrs[i]}) // duplicate
	}
	return sends
}

func (m misbehaved) NewNode(v graph.NodeID) engine.NodeAutomaton {
	nbrs := m.g.Neighbors(v)
	return func(_ int, senders []graph.NodeID) []graph.NodeID {
		// Reversed complement, with the first entry doubled.
		var out []graph.NodeID
		for i := len(nbrs) - 1; i >= 0; i-- {
			skip := false
			for _, s := range senders {
				if s == nbrs[i] {
					skip = true
				}
			}
			if !skip {
				out = append(out, nbrs[i])
			}
		}
		if len(out) > 0 {
			out = append(out, out[0])
		}
		return out
	}
}

func TestNormalizationFallback(t *testing.T) {
	g := gen.Cycle(9)
	proto := misbehaved{g: g}
	want, err := engine.Run(context.Background(), g, proto, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fastengine.Run(context.Background(), g, proto, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !engine.EqualTraces(want.Trace, got.Trace) {
		t.Fatal("misbehaved protocol: fastengine trace differs from sequential")
	}
	if got.Rounds != want.Rounds || got.TotalMessages != want.TotalMessages {
		t.Fatalf("misbehaved protocol: result %+v, want %+v", got, want)
	}
}
