package fastengine_test

import (
	"context"
	"math/rand"
	"testing"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/bitengine"
	"amnesiacflood/internal/engine/chanengine"
	"amnesiacflood/internal/engine/fastengine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// FuzzEngineEquivalence drives random G(n, p) graphs through the
// sequential, channel, and fast (sequential + parallel) engines and demands
// identical traces and Result fields. Every input triple deterministically
// derives a graph, so failures reproduce exactly.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(30))
	f.Add(int64(2), uint8(3), uint8(100)) // triangle-ish, dense
	f.Add(int64(3), uint8(40), uint8(10))
	f.Add(int64(20190729), uint8(64), uint8(5))
	f.Add(int64(-7), uint8(2), uint8(0)) // edgeless pair
	f.Fuzz(func(t *testing.T, seed int64, nRaw, pRaw uint8) {
		n := 2 + int(nRaw)%63 // 2..64 nodes keeps the goroutine engine cheap
		p := float64(pRaw%101) / 100
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomGNP(n, p, rng)
		src := graph.NodeID(rng.Intn(n))
		flood := core.MustNewFlood(g, src)

		opts := engine.Options{Trace: true}
		want, err := engine.Run(context.Background(), g, flood, opts)
		if err != nil {
			t.Fatalf("sequential on %s from %d: %v", g, src, err)
		}
		engines := []struct {
			name string
			run  func(context.Context, *graph.Graph, engine.Protocol, engine.Options) (engine.Result, error)
		}{
			{"chan", chanengine.Run},
			{"fast", fastengine.Run},
			{"fastParallel", fastengine.RunParallel},
			// The fuzz graphs are below the default sharding threshold;
			// ParallelThreshold 1 makes every round take the sharded path.
			{"fastSharded", func(ctx context.Context, g *graph.Graph, p engine.Protocol, o engine.Options) (engine.Result, error) {
				o.ParallelThreshold = 1
				return fastengine.RunParallel(ctx, g, p, o)
			}},
			{"bitset", bitengine.Run},
			{"bitsetNoRelabel", func(ctx context.Context, g *graph.Graph, p engine.Protocol, o engine.Options) (engine.Result, error) {
				return bitengine.New(g).Relabel(false).Run(ctx, p, o)
			}},
			{"bitsetSharded", func(ctx context.Context, g *graph.Graph, p engine.Protocol, o engine.Options) (engine.Result, error) {
				o.ParallelThreshold = 1
				return bitengine.New(g).Parallel(2).Run(ctx, p, o)
			}},
		}
		for _, e := range engines {
			got, err := e.run(context.Background(), g, flood, opts)
			if err != nil {
				t.Fatalf("%s on %s from %d: %v", e.name, g, src, err)
			}
			if !engine.EqualTraces(want.Trace, got.Trace) {
				t.Errorf("%s on %s from %d: trace differs from sequential", e.name, g, src)
			}
			if got.Rounds != want.Rounds || got.TotalMessages != want.TotalMessages ||
				got.Terminated != want.Terminated || got.Protocol != want.Protocol {
				t.Errorf("%s on %s from %d: result %+v, want %+v", e.name, g, src, got, want)
			}
		}
	})
}
