package fastengine_test

import (
	"context"
	"testing"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/fastengine"
	"amnesiacflood/internal/graph/gen"
)

func BenchmarkEngineComparison(b *testing.B) {
	g := gen.Grid(128, 32)
	flood := core.MustNewFlood(g, 0)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(context.Background(), g, flood, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fastengine.Run(context.Background(), g, flood, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fastReused", func(b *testing.B) {
		e := fastengine.New(g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(context.Background(), flood, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fastParallel", func(b *testing.B) {
		e := fastengine.New(g).Parallel(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(context.Background(), flood, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
