package fastengine

// SetShardingThresholdForTest lowers the receiver count above which the
// parallel mode shards, so tests and the fuzzer can drive the sharded
// delivery path on small graphs. It returns a restore function.
func SetShardingThresholdForTest(n int) (restore func()) {
	old := parallelMinReceivers
	parallelMinReceivers = n
	return func() { parallelMinReceivers = old }
}
