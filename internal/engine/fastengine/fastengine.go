// Package fastengine is the high-performance synchronous round engine. It
// implements exactly the round semantics of the sequential reference engine
// in the parent package — byte-identical traces on every protocol — while
// doing amortised zero allocations per round.
//
// Where the reference engine groups each round's deliveries with a fresh map
// and normalises the next round with sort.Slice closures, this engine
// exploits the dense node identifiers 0..n-1 guaranteed by internal/graph:
//
//   - Grouping is a counting sort into a flat sender arena (the same CSR
//     shape as graph.CSR): one pass counts senders per receiver, one pass
//     scatters them. Because the round's sends are ordered by (From, To),
//     each receiver's senders land in the arena already sorted.
//   - The per-round send buffers are double-buffered and reused across
//     rounds, as are the arena, the receiver list, and the counting arrays;
//     per-round cost is O(messages + receivers·log receivers) with no
//     allocation. The counting arrays are reset sparsely (only touched
//     entries), so short rounds on huge graphs stay cheap.
//   - Receivers are activated in ascending node order and protocols emit
//     destinations in ascending order, so the next round is already
//     normalised; a linear scan verifies this and the O(m log m) sort runs
//     only if a protocol misbehaves.
//   - Protocols implementing engine.DenseProtocol append their sends
//     directly into the arena (no per-node closure, no per-call result
//     slice); other protocols fall back to engine.Protocol.NewNode
//     transparently.
//
// An optional parallel mode shards each round's receivers into contiguous
// ranges handled by worker goroutines with per-worker output arenas; the
// arenas are concatenated in shard order, which preserves the sequential
// activation order exactly, so parallel traces remain byte-identical too.
package fastengine

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// DefaultParallelThreshold is the receiver count below which the parallel
// mode runs a round sequentially when engine.Options.ParallelThreshold is 0:
// sharding a near-empty round costs more in goroutine wakeups than the
// delivery work itself. Callers (tests, the fuzzer, small-graph suites) set
// Options.ParallelThreshold to move the cutover — 1 forces sharding on every
// round.
const DefaultParallelThreshold = 128

// Engine executes protocols on one graph. It owns reusable round state, so a
// single Engine amortises its setup across many runs; it is not safe for
// concurrent use (run several Engines for that).
type Engine struct {
	g       *graph.Graph
	workers int

	cur, nxt    []engine.Send   // double-buffered round send arenas
	senderArena []graph.NodeID  // round senders grouped by receiver (CSR-style)
	receivers   []graph.NodeID  // sorted distinct receivers of the round
	count       []int32         // per-receiver sender count; sparsely reset
	cursor      []int32         // scatter cursor; ends at the receiver's arena end
	shardOut    [][]engine.Send // per-worker output arenas (parallel mode)
}

// New returns an engine for g running the delivery stage sequentially.
func New(g *graph.Graph) *Engine {
	n := g.N()
	return &Engine{
		g:       g,
		workers: 1,
		count:   make([]int32, n),
		cursor:  make([]int32, n),
	}
}

// Parallel sets the number of delivery workers and returns e for chaining.
// workers <= 0 means GOMAXPROCS. Traces are byte-identical to the sequential
// mode for every protocol whose per-node state is independently addressable
// (see engine.RoundAppender); all protocols in this repository qualify.
func (e *Engine) Parallel(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.workers = workers
	for len(e.shardOut) < workers {
		e.shardOut = append(e.shardOut, nil)
	}
	return e
}

// Run is the one-shot convenience wrapper: a fresh sequential engine per
// call. Reuse an Engine for allocation-free repeated runs.
func Run(ctx context.Context, g *graph.Graph, proto engine.Protocol, opts engine.Options) (engine.Result, error) {
	return New(g).Run(ctx, proto, opts)
}

// RunParallel is Run with GOMAXPROCS delivery workers.
func RunParallel(ctx context.Context, g *graph.Graph, proto engine.Protocol, opts engine.Options) (engine.Result, error) {
	return New(g).Parallel(0).Run(ctx, proto, opts)
}

// Run executes proto to termination or the round limit, with the same
// semantics, results, and traces as engine.Run. Cancellation of ctx is
// checked once per round, before the round is counted; delivery workers are
// never interrupted mid-round, so a cancelled run still returns a
// consistent partial Result alongside the context's error.
func (e *Engine) Run(ctx context.Context, proto engine.Protocol, opts engine.Options) (engine.Result, error) {
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = engine.DefaultMaxRounds
	}
	minReceivers := opts.ParallelThreshold
	if minReceivers == 0 {
		minReceivers = DefaultParallelThreshold
	}
	res := engine.Result{Protocol: proto.Name()}

	var appender engine.RoundAppender
	if dp, ok := proto.(engine.DenseProtocol); ok {
		appender = dp.NewRun()
	} else {
		appender = &automataAppender{proto: proto, automata: make([]engine.NodeAutomaton, e.g.N())}
	}

	e.cur = append(e.cur[:0], proto.Bootstrap()...)
	e.cur = normalize(e.cur)
	for round := 1; len(e.cur) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("fastengine: %s on %s: %w", proto.Name(), e.g, err)
		}
		if round > maxRounds {
			return res, fmt.Errorf("fastengine: %s on %s: %w (%d)", proto.Name(), e.g, engine.ErrMaxRounds, maxRounds)
		}
		res.Rounds = round
		res.TotalMessages += len(e.cur)
		if opts.Trace {
			res.Trace = append(res.Trace, engine.RoundRecord{Round: round, Sends: append([]engine.Send(nil), e.cur...)})
		}
		stop, err := opts.Observe(engine.RoundRecord{Round: round, Sends: e.cur})
		if err != nil {
			return res, fmt.Errorf("fastengine: %s on %s: observer at round %d: %w", proto.Name(), e.g, round, err)
		}
		if stop {
			res.Stopped = true
			return res, nil
		}

		e.group()
		if e.workers > 1 && len(e.receivers) >= minReceivers {
			e.deliverParallel(round, appender)
		} else {
			e.deliverSequential(round, appender)
		}
		for _, v := range e.receivers {
			e.count[v] = 0
		}
		e.cur, e.nxt = e.nxt, e.cur
		e.cur = normalize(e.cur)
	}
	res.Terminated = true
	return res, nil
}

// group buckets the current round's sends by receiver via counting sort.
// Afterwards receiver v's senders are
// senderArena[cursor[v]-count[v]:cursor[v]], sorted ascending because the
// normalised send order scatters ascending Froms into each bucket.
func (e *Engine) group() {
	e.receivers = e.receivers[:0]
	for _, s := range e.cur {
		if e.count[s.To] == 0 {
			e.receivers = append(e.receivers, s.To)
		}
		e.count[s.To]++
	}
	slices.Sort(e.receivers)
	if cap(e.senderArena) < len(e.cur) {
		e.senderArena = make([]graph.NodeID, len(e.cur))
	}
	e.senderArena = e.senderArena[:len(e.cur)]
	off := int32(0)
	for _, v := range e.receivers {
		e.cursor[v] = off
		off += e.count[v]
	}
	for _, s := range e.cur {
		e.senderArena[e.cursor[s.To]] = s.From
		e.cursor[s.To]++
	}
}

// senders returns receiver v's delivery batch within the arena.
func (e *Engine) senders(v graph.NodeID) []graph.NodeID {
	end := e.cursor[v]
	return e.senderArena[end-e.count[v] : end]
}

// deliverSequential activates receivers in ascending node order, appending
// their responses into the next-round buffer.
func (e *Engine) deliverSequential(round int, appender engine.RoundAppender) {
	e.nxt = e.nxt[:0]
	for _, v := range e.receivers {
		e.nxt = appender.AppendSends(round, v, e.senders(v), e.nxt)
	}
}

// deliverParallel splits the sorted receivers into contiguous shards, one
// worker and one output arena per shard, then concatenates the arenas in
// shard order — reproducing the sequential activation order exactly.
func (e *Engine) deliverParallel(round int, appender engine.RoundAppender) {
	workers := e.workers
	if workers > len(e.receivers) {
		workers = len(e.receivers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(e.receivers) * w / workers
		hi := len(e.receivers) * (w + 1) / workers
		wg.Add(1)
		go func(w int, shard []graph.NodeID) {
			defer wg.Done()
			out := e.shardOut[w][:0]
			for _, v := range shard {
				out = appender.AppendSends(round, v, e.senders(v), out)
			}
			e.shardOut[w] = out
		}(w, e.receivers[lo:hi])
	}
	wg.Wait()
	e.nxt = e.nxt[:0]
	for w := 0; w < workers; w++ {
		e.nxt = append(e.nxt, e.shardOut[w]...)
	}
}

// normalize ensures sends are strictly ordered by (From, To). Well-behaved
// protocols already emit this order, verified with one linear pass; the
// sort-and-compact fallback runs only on out-of-order or duplicate output.
func normalize(sends []engine.Send) []engine.Send {
	ordered := true
	for i := 1; i < len(sends); i++ {
		if !sendLess(sends[i-1], sends[i]) {
			ordered = false
			break
		}
	}
	if ordered {
		return sends
	}
	slices.SortFunc(sends, func(a, b engine.Send) int {
		if a.From != b.From {
			return int(a.From - b.From)
		}
		return int(a.To - b.To)
	})
	return slices.Compact(sends)
}

// sendLess is the strict (From, To) order.
func sendLess(a, b engine.Send) bool {
	return a.From < b.From || (a.From == b.From && a.To < b.To)
}

// automataAppender adapts the generic per-node-closure protocol contract to
// the appender fast path, buying protocols that do not implement
// engine.DenseProtocol the map-free grouping and sort-free normalisation
// (their automata still allocate their result slices). Automata are created
// lazily, matching engine.Run. In parallel mode distinct nodes touch
// distinct slots, so lazy creation is race-free.
type automataAppender struct {
	proto    engine.Protocol
	automata []engine.NodeAutomaton
}

func (a *automataAppender) AppendSends(round int, v graph.NodeID, senders []graph.NodeID, out []engine.Send) []engine.Send {
	aut := a.automata[v]
	if aut == nil {
		aut = a.proto.NewNode(v)
		a.automata[v] = aut
	}
	for _, dst := range aut(round, senders) {
		out = append(out, engine.Send{From: v, To: dst})
	}
	return out
}
