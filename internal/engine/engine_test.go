package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"amnesiacflood/internal/graph"
)

// echoOnce is a test protocol: the origin sends to all neighbours, and every
// receiver echoes back to its senders exactly once (then stays silent). It
// exercises per-node state in automata.
type echoOnce struct {
	g      *graph.Graph
	origin graph.NodeID
}

func (p *echoOnce) Name() string { return "echo-once" }

func (p *echoOnce) Bootstrap() []Send {
	var sends []Send
	for _, nbr := range p.g.Neighbors(p.origin) {
		sends = append(sends, Send{From: p.origin, To: nbr})
	}
	return sends
}

func (p *echoOnce) NewNode(v graph.NodeID) NodeAutomaton {
	done := false
	return func(_ int, senders []graph.NodeID) []graph.NodeID {
		if done || v == p.origin {
			return nil
		}
		done = true
		return append([]graph.NodeID(nil), senders...)
	}
}

// silent never sends anything.
type silent struct{}

func (silent) Name() string      { return "silent" }
func (silent) Bootstrap() []Send { return nil }
func (silent) NewNode(graph.NodeID) NodeAutomaton {
	return func(int, []graph.NodeID) []graph.NodeID { return nil }
}

// chatterbox floods forever: every receiver sends to all neighbours every
// round. Used to exercise the round limit.
type chatterbox struct {
	g *graph.Graph
}

func (p *chatterbox) Name() string { return "chatterbox" }

func (p *chatterbox) Bootstrap() []Send {
	var sends []Send
	for _, nbr := range p.g.Neighbors(0) {
		sends = append(sends, Send{From: 0, To: nbr})
	}
	return sends
}

func (p *chatterbox) NewNode(v graph.NodeID) NodeAutomaton {
	return func(int, []graph.NodeID) []graph.NodeID {
		return p.g.Neighbors(v)
	}
}

func star(t *testing.T, leaves int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(leaves + 1)
	for i := 1; i <= leaves; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunEchoOnce(t *testing.T) {
	g := star(t, 3)
	res, err := Run(context.Background(), g, &echoOnce{g: g, origin: 0}, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("echo-once did not terminate")
	}
	// Round 1: hub -> 3 leaves. Round 2: each leaf echoes to hub. Then the
	// hub (origin) stays silent.
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Rounds)
	}
	if res.TotalMessages != 6 {
		t.Fatalf("messages = %d, want 6", res.TotalMessages)
	}
	wantRound2 := []Send{{From: 1, To: 0}, {From: 2, To: 0}, {From: 3, To: 0}}
	if !reflect.DeepEqual(res.Trace[1].Sends, wantRound2) {
		t.Fatalf("round 2 sends = %v, want %v", res.Trace[1].Sends, wantRound2)
	}
}

func TestRunSilentProtocol(t *testing.T) {
	g := star(t, 2)
	res, err := Run(context.Background(), g, silent{}, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.Rounds != 0 || res.TotalMessages != 0 || len(res.Trace) != 0 {
		t.Fatalf("silent run = %+v, want immediate termination", res)
	}
}

func TestRunMaxRounds(t *testing.T) {
	g := star(t, 2)
	_, err := Run(context.Background(), g, &chatterbox{g: g}, Options{MaxRounds: 10})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("error = %v, want ErrMaxRounds", err)
	}
}

func TestRunObserverSeesEveryRound(t *testing.T) {
	g := star(t, 3)
	var rounds []int
	var totals []int
	_, err := Run(context.Background(), g, &echoOnce{g: g, origin: 0}, Options{
		Observer: ObserverFunc(func(rec RoundRecord) (bool, error) {
			rounds = append(rounds, rec.Round)
			totals = append(totals, len(rec.Sends))
			return false, nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{1, 2}) {
		t.Fatalf("observer rounds = %v, want [1 2]", rounds)
	}
	if !reflect.DeepEqual(totals, []int{3, 3}) {
		t.Fatalf("observer send counts = %v, want [3 3]", totals)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	g := star(t, 2)
	res, err := Run(context.Background(), g, &echoOnce{g: g, origin: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace recorded without Options.Trace")
	}
}

func TestNormalizeSends(t *testing.T) {
	in := []Send{{From: 2, To: 1}, {From: 0, To: 1}, {From: 2, To: 1}, {From: 0, To: 2}}
	got := normalizeSends(in)
	want := []Send{{From: 0, To: 1}, {From: 0, To: 2}, {From: 2, To: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("normalizeSends = %v, want %v", got, want)
	}
	if normalizeSends(nil) != nil {
		t.Fatal("normalizeSends(nil) != nil")
	}
}

// bootstrapKeeper returns the same unsorted bootstrap slice on every call,
// the caller-visible state the engine must not mutate.
type bootstrapKeeper struct {
	g     *graph.Graph
	sends []Send
}

func (p *bootstrapKeeper) Name() string      { return "bootstrap-keeper" }
func (p *bootstrapKeeper) Bootstrap() []Send { return p.sends }
func (p *bootstrapKeeper) NewNode(graph.NodeID) NodeAutomaton {
	return func(int, []graph.NodeID) []graph.NodeID { return nil }
}

func TestRunDoesNotMutateBootstrap(t *testing.T) {
	g := star(t, 3)
	// Deliberately unsorted, with a duplicate: normalisation must happen
	// on the engine's copy, not in place.
	sends := []Send{{From: 0, To: 3}, {From: 0, To: 1}, {From: 0, To: 3}, {From: 0, To: 2}}
	want := append([]Send(nil), sends...)
	proto := &bootstrapKeeper{g: g, sends: sends}
	if _, err := Run(context.Background(), g, proto, Options{Trace: true}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sends, want) {
		t.Fatalf("Run mutated the protocol's bootstrap slice: %v, want %v", sends, want)
	}
}

func TestRoundRecordSendersReceivers(t *testing.T) {
	rec := RoundRecord{Round: 1, Sends: []Send{{From: 2, To: 0}, {From: 2, To: 1}, {From: 5, To: 0}}}
	if got := rec.Senders(); !reflect.DeepEqual(got, []graph.NodeID{2, 5}) {
		t.Fatalf("Senders = %v", got)
	}
	if got := rec.Receivers(); !reflect.DeepEqual(got, []graph.NodeID{0, 1}) {
		t.Fatalf("Receivers = %v", got)
	}
}

func TestEqualTraces(t *testing.T) {
	a := []RoundRecord{{Round: 1, Sends: []Send{{From: 0, To: 1}}}}
	b := []RoundRecord{{Round: 1, Sends: []Send{{From: 0, To: 1}}}}
	if !EqualTraces(a, b) {
		t.Fatal("identical traces reported unequal")
	}
	c := []RoundRecord{{Round: 1, Sends: []Send{{From: 0, To: 2}}}}
	if EqualTraces(a, c) {
		t.Fatal("different sends reported equal")
	}
	d := []RoundRecord{{Round: 2, Sends: []Send{{From: 0, To: 1}}}}
	if EqualTraces(a, d) {
		t.Fatal("different round numbers reported equal")
	}
	if EqualTraces(a, nil) {
		t.Fatal("different lengths reported equal")
	}
	if !EqualTraces(nil, nil) {
		t.Fatal("two empty traces reported unequal")
	}
}

func TestSendString(t *testing.T) {
	if got := (Send{From: 3, To: 7}).String(); got != "3->7" {
		t.Fatalf("Send.String = %q", got)
	}
}

func TestRunDeterminism(t *testing.T) {
	g := star(t, 5)
	first, err := Run(context.Background(), g, &echoOnce{g: g, origin: 0}, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Run(context.Background(), g, &echoOnce{g: g, origin: 0}, Options{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if !EqualTraces(first.Trace, again.Trace) {
			t.Fatal("two sequential runs produced different traces")
		}
	}
}
