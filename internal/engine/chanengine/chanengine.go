// Package chanengine executes synchronous round protocols with real Go
// concurrency: one goroutine per node and one channel per directed edge, so
// Go channels map one-to-one onto the paper's message rounds.
//
// Rounds are synchronised with a coordinator acting as a barrier
// (a β-synchronizer): in each round every node writes one token to each
// outgoing edge channel, reads one token from each incoming edge channel,
// runs its automaton, and reports to the coordinator; the coordinator
// releases the next round only after every node has reported, and stops all
// nodes once a round produces no messages.
//
// The engine is trace-equivalent to the deterministic sequential engine in
// the parent package (experiment E10 asserts byte-identical traces); it
// exists to demonstrate that the protocol behaves identically on a genuinely
// concurrent substrate, not to be fast.
package chanengine

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// token crosses a directed edge once per round; has reports whether the edge
// carries the flood message M in that round.
type token struct {
	has bool
}

// report is what each node tells the coordinator at the end of a round.
type report struct {
	v         graph.NodeID
	performed []engine.Send // the sends this node executed this round
	nextCount int           // how many sends it will execute next round
}

// Run executes proto on g with one goroutine per node. Results and traces
// are identical to engine.Run for any deterministic protocol. Cancellation
// of ctx is checked once per round, before the coordinator releases the
// barrier; a cancelled run shuts the node goroutines down cleanly and
// returns the partial Result alongside the context's error.
func Run(ctx context.Context, g *graph.Graph, proto engine.Protocol, opts engine.Options) (engine.Result, error) {
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = engine.DefaultMaxRounds
	}
	res := engine.Result{Protocol: proto.Name()}
	n := g.N()
	if n == 0 {
		res.Terminated = true
		return res, nil
	}

	// One channel per directed edge. out[u][i] carries u's token to its
	// i-th neighbour; in[v][j] aliases the channel of the reverse
	// orientation so v can read from its j-th neighbour.
	out := make([][]chan token, n)
	in := make([][]chan token, n)
	for v := 0; v < n; v++ {
		deg := g.Degree(graph.NodeID(v))
		out[v] = make([]chan token, deg)
		in[v] = make([]chan token, deg)
		for i := range out[v] {
			out[v][i] = make(chan token, 1)
		}
	}
	for u := 0; u < n; u++ {
		for i, v := range g.Neighbors(graph.NodeID(u)) {
			j := neighborIndex(g, v, graph.NodeID(u))
			in[v][j] = out[u][i]
		}
	}

	// Initial send sets from the protocol bootstrap.
	initial := make([]map[graph.NodeID]bool, n)
	bootstrapTotal := 0
	for _, s := range proto.Bootstrap() {
		if initial[s.From] == nil {
			initial[s.From] = make(map[graph.NodeID]bool)
		}
		if !initial[s.From][s.To] {
			initial[s.From][s.To] = true
			bootstrapTotal++
		}
	}

	ctrl := make([]chan struct{}, n)
	for v := range ctrl {
		ctrl[v] = make(chan struct{}, 1)
	}
	reports := make(chan report, n)

	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v graph.NodeID) {
			defer wg.Done()
			runNode(g, v, proto.NewNode(v), initial[v], out[v], in[v], ctrl[v], reports)
		}(graph.NodeID(v))
	}
	stopAll := func() {
		for _, c := range ctrl {
			close(c)
		}
		wg.Wait()
	}

	pendingCount := bootstrapTotal
	for round := 1; pendingCount > 0; round++ {
		if err := ctx.Err(); err != nil {
			stopAll()
			return res, fmt.Errorf("chanengine: %s on %s: %w", proto.Name(), g, err)
		}
		if round > maxRounds {
			stopAll()
			return res, fmt.Errorf("chanengine: %s on %s: %w (%d)", proto.Name(), g, engine.ErrMaxRounds, maxRounds)
		}
		// Release the round on every node, then wait for all reports:
		// this is the synchroniser barrier.
		for _, c := range ctrl {
			c <- struct{}{}
		}
		var sends []engine.Send
		nextCount := 0
		for i := 0; i < n; i++ {
			r := <-reports
			sends = append(sends, r.performed...)
			nextCount += r.nextCount
		}
		slices.SortFunc(sends, func(a, b engine.Send) int {
			if a.From != b.From {
				return int(a.From) - int(b.From)
			}
			return int(a.To) - int(b.To)
		})
		res.Rounds = round
		res.TotalMessages += len(sends)
		if opts.Trace {
			res.Trace = append(res.Trace, engine.RoundRecord{Round: round, Sends: sends})
		}
		stop, err := opts.Observe(engine.RoundRecord{Round: round, Sends: sends})
		if err != nil {
			stopAll()
			return res, fmt.Errorf("chanengine: %s on %s: observer at round %d: %w", proto.Name(), g, round, err)
		}
		if stop {
			stopAll()
			res.Stopped = true
			return res, nil
		}
		pendingCount = nextCount
	}
	stopAll()
	res.Terminated = true
	return res, nil
}

// runNode is the per-node goroutine body. It performs one round per control
// signal and exits when the control channel is closed.
func runNode(
	g *graph.Graph,
	v graph.NodeID,
	automaton engine.NodeAutomaton,
	sendSet map[graph.NodeID]bool,
	outCh, inCh []chan token,
	ctrl chan struct{},
	reports chan<- report,
) {
	nbrs := g.Neighbors(v)
	round := 0
	for range ctrl {
		round++
		// Phase 1: write one token per outgoing edge.
		for i, nbr := range nbrs {
			outCh[i] <- token{has: sendSet[nbr]}
		}
		// Phase 2: read one token per incoming edge; collect senders.
		var senders []graph.NodeID
		for i, nbr := range nbrs {
			if t := <-inCh[i]; t.has {
				senders = append(senders, nbr)
			}
		}
		// senders is sorted already because nbrs is sorted.

		performed := make([]engine.Send, 0, len(sendSet))
		for _, nbr := range nbrs {
			if sendSet[nbr] {
				performed = append(performed, engine.Send{From: v, To: nbr})
			}
		}

		next := make(map[graph.NodeID]bool)
		if len(senders) > 0 {
			for _, dst := range automaton(round, senders) {
				next[dst] = true
			}
		}
		reports <- report{v: v, performed: performed, nextCount: len(next)}
		sendSet = next
	}
}

// neighborIndex returns the position of target in g.Neighbors(v). Neighbour
// lists are sorted, so binary search applies.
func neighborIndex(g *graph.Graph, v, target graph.NodeID) int {
	nbrs := g.Neighbors(v)
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbrs[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(nbrs) || nbrs[lo] != target {
		panic(fmt.Sprintf("chanengine: %d is not a neighbour of %d", target, v))
	}
	return lo
}
