package chanengine_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"amnesiacflood/internal/classic"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/chanengine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

func TestEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges("", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chanengine.Run(context.Background(), g, silentProtocol{}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.Rounds != 0 {
		t.Fatalf("empty graph run = %+v", res)
	}
}

type silentProtocol struct{}

func (silentProtocol) Name() string             { return "silent" }
func (silentProtocol) Bootstrap() []engine.Send { return nil }
func (silentProtocol) NewNode(graph.NodeID) engine.NodeAutomaton {
	return func(int, []graph.NodeID) []graph.NodeID { return nil }
}

func TestSingleNode(t *testing.T) {
	g, err := graph.FromEdges("", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	flood, err := core.NewFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chanengine.Run(context.Background(), g, flood, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.Rounds != 0 {
		t.Fatalf("singleton run = %+v", res)
	}
}

func TestMatchesSequentialOnFigures(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		source graph.NodeID
	}{
		{"fig1 line", gen.Path(4), 1},
		{"fig2 triangle", gen.Cycle(3), 1},
		{"fig3 evenCycle", gen.Cycle(6), 0},
		{"clique", gen.Complete(8), 3},
		{"petersen", gen.Petersen(), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flood, err := core.NewFlood(tc.g, tc.source)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := engine.Run(context.Background(), tc.g, flood, engine.Options{Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			chn, err := chanengine.Run(context.Background(), tc.g, flood, engine.Options{Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			if !engine.EqualTraces(seq.Trace, chn.Trace) {
				t.Fatalf("traces differ:\nseq: %v\nchn: %v", seq.Trace, chn.Trace)
			}
			if seq.Rounds != chn.Rounds || seq.TotalMessages != chn.TotalMessages {
				t.Fatalf("summaries differ: %+v vs %+v", seq, chn)
			}
		})
	}
}

func TestMatchesSequentialOnRandomGraphsAF(t *testing.T) {
	// Property: channel engine == sequential engine for amnesiac flooding
	// on random connected graphs from random sources.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		flood, err := core.NewFlood(g, src)
		if err != nil {
			return false
		}
		seq, err := engine.Run(context.Background(), g, flood, engine.Options{Trace: true})
		if err != nil {
			return false
		}
		chn, err := chanengine.Run(context.Background(), g, flood, engine.Options{Trace: true})
		if err != nil {
			return false
		}
		return engine.EqualTraces(seq.Trace, chn.Trace)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesSequentialClassicFlooding(t *testing.T) {
	// The channel engine must also agree for stateful protocols (classic
	// flooding keeps a per-node seen flag).
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(30), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		proto, err := classic.NewFlood(g, src)
		if err != nil {
			return false
		}
		seq, err := engine.Run(context.Background(), g, proto, engine.Options{Trace: true})
		if err != nil {
			return false
		}
		// Protocols carry per-run node state, so build a fresh instance
		// for the second engine.
		proto2, err := classic.NewFlood(g, src)
		if err != nil {
			return false
		}
		chn, err := chanengine.Run(context.Background(), g, proto2, engine.Options{Trace: true})
		if err != nil {
			return false
		}
		return engine.EqualTraces(seq.Trace, chn.Trace)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxRoundsStopsCleanly(t *testing.T) {
	// The odd cycle takes n rounds; a lower limit must error out without
	// deadlocking or leaking goroutines.
	g := gen.Cycle(9)
	flood, err := core.NewFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = chanengine.Run(context.Background(), g, flood, engine.Options{MaxRounds: 3})
	if !errors.Is(err, engine.ErrMaxRounds) {
		t.Fatalf("error = %v, want ErrMaxRounds", err)
	}
}

func TestObserverAndNoTrace(t *testing.T) {
	g := gen.Cycle(6)
	flood, err := core.NewFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	res, err := chanengine.Run(context.Background(), g, flood, engine.Options{
		Observer: engine.ObserverFunc(func(rec engine.RoundRecord) (bool, error) { seen += len(rec.Sends); return false, nil }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace recorded without Options.Trace")
	}
	if seen != res.TotalMessages {
		t.Fatalf("observer saw %d sends, result says %d", seen, res.TotalMessages)
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	// Every node goroutine must exit by the time Run returns, both on
	// normal termination and on the MaxRounds error path.
	g := gen.RandomNonBipartite(60, 0.06, rand.New(rand.NewSource(3)))
	flood, err := core.NewFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := chanengine.Run(context.Background(), g, flood, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := chanengine.Run(context.Background(), g, flood, engine.Options{MaxRounds: 2}); !errors.Is(err, engine.ErrMaxRounds) {
			t.Fatalf("error = %v", err)
		}
	}
	// Give any stragglers a moment, then compare. A small slack absorbs
	// runtime background goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew from %d to %d — node goroutines leaked", before, after)
	}
}

func TestRepeatedRunsAreDeterministic(t *testing.T) {
	g := gen.RandomNonBipartite(40, 0.08, rand.New(rand.NewSource(5)))
	flood, err := core.NewFlood(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	first, err := chanengine.Run(context.Background(), g, flood, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := chanengine.Run(context.Background(), g, flood, engine.Options{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if !engine.EqualTraces(first.Trace, again.Trace) {
			t.Fatalf("run %d produced a different trace", i)
		}
	}
}
