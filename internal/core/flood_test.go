package core

import (
	"errors"
	"reflect"
	"testing"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

func triangle(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges("tri", 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewFloodValidation(t *testing.T) {
	g := triangle(t)
	if _, err := NewFlood(g); !errors.Is(err, ErrNoOrigin) {
		t.Errorf("no origin error = %v, want ErrNoOrigin", err)
	}
	if _, err := NewFlood(g, 5); !errors.Is(err, ErrBadOrigin) {
		t.Errorf("bad origin error = %v, want ErrBadOrigin", err)
	}
	if _, err := NewFlood(g, -1); !errors.Is(err, ErrBadOrigin) {
		t.Errorf("negative origin error = %v, want ErrBadOrigin", err)
	}
}

func TestNewFloodDeduplicatesAndSortsOrigins(t *testing.T) {
	g := triangle(t)
	f, err := NewFlood(g, 2, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Origins(); !reflect.DeepEqual(got, []graph.NodeID{0, 2}) {
		t.Fatalf("origins = %v, want [0 2]", got)
	}
}

func TestMustNewFloodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewFlood with no origins did not panic")
		}
	}()
	MustNewFlood(triangle(t))
}

func TestBootstrapSingleSource(t *testing.T) {
	g := triangle(t)
	f := MustNewFlood(g, 1)
	got := f.Bootstrap()
	want := []engine.Send{{From: 1, To: 0}, {From: 1, To: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bootstrap = %v, want %v", got, want)
	}
}

func TestBootstrapMultiSource(t *testing.T) {
	g := triangle(t)
	f := MustNewFlood(g, 0, 2)
	got := f.Bootstrap()
	want := []engine.Send{
		{From: 0, To: 1}, {From: 0, To: 2},
		{From: 2, To: 0}, {From: 2, To: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bootstrap = %v, want %v", got, want)
	}
}

func TestAutomatonSendsComplementOfSenders(t *testing.T) {
	g := triangle(t)
	f := MustNewFlood(g, 1)
	node0 := f.NewNode(0)
	// Node 0 heard from 1: forwards to 2 only.
	if got := node0(1, []graph.NodeID{1}); !reflect.DeepEqual(got, []graph.NodeID{2}) {
		t.Fatalf("complement of {1} = %v, want [2]", got)
	}
	// Node 0 heard from both neighbours: sends nothing.
	if got := node0(2, []graph.NodeID{1, 2}); len(got) != 0 {
		t.Fatalf("complement of all senders = %v, want empty", got)
	}
	// Node 0 heard from nobody listed (degenerate): sends to everyone.
	if got := node0(3, nil); !reflect.DeepEqual(got, []graph.NodeID{1, 2}) {
		t.Fatalf("complement of {} = %v, want [1 2]", got)
	}
}

func TestAutomatonIsAmnesiac(t *testing.T) {
	// Calling the automaton repeatedly with the same senders must always
	// give the same answer: no hidden state across rounds.
	g := triangle(t)
	f := MustNewFlood(g, 1)
	node2 := f.NewNode(2)
	first := node2(1, []graph.NodeID{1})
	for round := 2; round < 10; round++ {
		if got := node2(round, []graph.NodeID{1}); !reflect.DeepEqual(got, first) {
			t.Fatalf("round %d: automaton answer changed: %v vs %v", round, got, first)
		}
	}
}

func TestComplementSorted(t *testing.T) {
	cases := []struct {
		nbrs, senders, want []graph.NodeID
	}{
		{[]graph.NodeID{1, 2, 3}, []graph.NodeID{2}, []graph.NodeID{1, 3}},
		{[]graph.NodeID{1, 2, 3}, []graph.NodeID{1, 2, 3}, []graph.NodeID{}},
		{[]graph.NodeID{1, 2, 3}, nil, []graph.NodeID{1, 2, 3}},
		{nil, []graph.NodeID{1}, []graph.NodeID{}},
		{[]graph.NodeID{5, 9}, []graph.NodeID{1, 5, 7}, []graph.NodeID{9}},
		// Senders not adjacent (defensive): ignored.
		{[]graph.NodeID{2, 4}, []graph.NodeID{0, 1, 3, 5}, []graph.NodeID{2, 4}},
	}
	for _, tc := range cases {
		got := complementSorted(tc.nbrs, tc.senders)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("complement(%v, %v) = %v, want %v", tc.nbrs, tc.senders, got, tc.want)
		}
	}
}

func TestProtocolName(t *testing.T) {
	f := MustNewFlood(triangle(t), 0)
	if f.Name() != "amnesiac-flooding" {
		t.Fatalf("name = %q", f.Name())
	}
}
