package core

import (
	"fmt"
	"sort"
	"strings"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/chanengine"
	"amnesiacflood/internal/engine/fastengine"
	"amnesiacflood/internal/graph"
)

// EngineKind selects which synchronous engine executes a run.
type EngineKind int

// Available engines. All four produce byte-identical traces on every
// protocol in this repository (asserted by experiment E10 and the
// fastengine differential tests).
const (
	// Sequential is the deterministic single-goroutine reference engine.
	Sequential EngineKind = iota + 1
	// Channels is the goroutine-per-node, channel-per-edge engine.
	Channels
	// Fast is the zero-allocation CSR engine (fastengine package).
	Fast
	// Parallel is the fast engine with GOMAXPROCS sharded delivery workers.
	Parallel
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case Channels:
		return "channels"
	case Fast:
		return "fast"
	case Parallel:
		return "parallel"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// EngineNames lists the accepted ParseEngine spellings, for flag usage
// strings.
func EngineNames() []string {
	return []string{"sequential", "channels", "fast", "parallel"}
}

// ParseEngine resolves an engine name (as accepted by the -engine CLI
// flags) into its kind.
func ParseEngine(name string) (EngineKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "sequential", "seq":
		return Sequential, nil
	case "channels", "chan":
		return Channels, nil
	case "fast":
		return Fast, nil
	case "parallel", "fastparallel":
		return Parallel, nil
	default:
		return 0, fmt.Errorf("core: unknown engine %q (want one of %s)", name, strings.Join(EngineNames(), ", "))
	}
}

// RunEngine executes any protocol on the engine selected by kind. It is the
// single dispatch point shared by RunWithOptions, the experiment suite, and
// the CLIs.
func RunEngine(kind EngineKind, g *graph.Graph, proto engine.Protocol, opts engine.Options) (engine.Result, error) {
	switch kind {
	case Sequential:
		return engine.Run(g, proto, opts)
	case Channels:
		return chanengine.Run(g, proto, opts)
	case Fast:
		return fastengine.Run(g, proto, opts)
	case Parallel:
		return fastengine.RunParallel(g, proto, opts)
	default:
		return engine.Result{}, fmt.Errorf("core: unknown engine kind %d", int(kind))
	}
}

// Report is the analysed outcome of an amnesiac-flooding run. It extends the
// raw engine result with the quantities the paper reasons about.
type Report struct {
	// Result is the raw engine outcome, with Trace populated.
	Result engine.Result
	// Origins is the sorted origin set of the run.
	Origins []graph.NodeID
	// RoundSets holds the paper's R_i: RoundSets[i] is the sorted set of
	// nodes receiving M in round i, for i = 1..Rounds. (R_0, the origin
	// singleton/set, is Origins.)
	RoundSets [][]graph.NodeID
	// ReceiveCounts[v] is how many rounds node v received M in (counting a
	// round once even if several neighbours delivered copies).
	ReceiveCounts []int
	// FirstReceive[v] is the first round v received M, or 0 if never.
	FirstReceive []int
	// LastReceive[v] is the last round v received M, or 0 if never.
	LastReceive []int
}

// Rounds returns the number of rounds the flood was active.
func (r *Report) Rounds() int {
	return r.Result.Rounds
}

// TotalMessages returns the total number of point-to-point deliveries.
func (r *Report) TotalMessages() int {
	return r.Result.TotalMessages
}

// Covered reports whether every node of the graph received M at least once
// (for a connected graph this must hold; Lemma 2.1 says exactly once on
// bipartite graphs).
func (r *Report) Covered() bool {
	origin := make(map[graph.NodeID]bool, len(r.Origins))
	for _, o := range r.Origins {
		origin[o] = true
	}
	for v, c := range r.ReceiveCounts {
		if c == 0 && !origin[graph.NodeID(v)] {
			return false
		}
	}
	return true
}

// MaxReceives returns the maximum number of distinct rounds any single node
// received M in. Lemma 2.1 implies 1 for connected bipartite graphs; the
// full paper shows at most 2 in general.
func (r *Report) MaxReceives() int {
	max := 0
	for _, c := range r.ReceiveCounts {
		if c > max {
			max = c
		}
	}
	return max
}

// Run executes amnesiac flooding on g from the given origins using the
// selected engine and returns the analysed report. Tracing is always
// enabled, since every analysis quantity derives from the trace.
func Run(g *graph.Graph, kind EngineKind, origins ...graph.NodeID) (*Report, error) {
	return RunWithOptions(g, kind, engine.Options{}, origins...)
}

// RunWithOptions is Run with explicit engine options. Options.Trace is
// forced on; MaxRounds and Observer are honoured.
func RunWithOptions(g *graph.Graph, kind EngineKind, opts engine.Options, origins ...graph.NodeID) (*Report, error) {
	flood, err := NewFlood(g, origins...)
	if err != nil {
		return nil, err
	}
	opts.Trace = true
	res, err := RunEngine(kind, g, flood, opts)
	if err != nil {
		return nil, fmt.Errorf("core: run flood: %w", err)
	}
	return Analyze(g, flood.Origins(), res), nil
}

// Analyze derives the report quantities from a traced engine result.
func Analyze(g *graph.Graph, origins []graph.NodeID, res engine.Result) *Report {
	rep := &Report{
		Result:        res,
		Origins:       append([]graph.NodeID(nil), origins...),
		ReceiveCounts: make([]int, g.N()),
		FirstReceive:  make([]int, g.N()),
		LastReceive:   make([]int, g.N()),
	}
	sort.Slice(rep.Origins, func(i, j int) bool { return rep.Origins[i] < rep.Origins[j] })
	for _, rec := range res.Trace {
		receivers := rec.Receivers()
		rep.RoundSets = append(rep.RoundSets, receivers)
		for _, v := range receivers {
			rep.ReceiveCounts[v]++
			if rep.FirstReceive[v] == 0 {
				rep.FirstReceive[v] = rec.Round
			}
			rep.LastReceive[v] = rec.Round
		}
	}
	return rep
}
