package core

import (
	"context"
	"fmt"

	"amnesiacflood/internal/analysis"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Report is the analysed outcome of an amnesiac-flooding run. It extends the
// raw engine result with the quantities the paper reasons about.
//
// Report is the compatibility shape of the pre-registry analysis API: its
// receive bookkeeping is derived by replaying the trace through the
// streaming "coverage" analysis (internal/analysis), and its headline
// verdicts (Covered, MaxReceives, Rounds, TotalMessages) correspond to the
// coverage.* and termination.* metric columns of sim.WithAnalysis. New
// code should attach analyses to the session instead of materialising a
// trace and calling Analyze.
type Report struct {
	// Result is the raw engine outcome, with Trace populated.
	Result engine.Result
	// Origins is the sorted origin set of the run.
	Origins []graph.NodeID
	// RoundSets holds the paper's R_i: RoundSets[i] is the sorted set of
	// nodes receiving M in round i, for i = 1..Rounds. (R_0, the origin
	// singleton/set, is Origins.)
	RoundSets [][]graph.NodeID
	// ReceiveCounts[v] is how many rounds node v received M in (counting a
	// round once even if several neighbours delivered copies).
	ReceiveCounts []int
	// FirstReceive[v] is the first round v received M, or 0 if never.
	FirstReceive []int
	// LastReceive[v] is the last round v received M, or 0 if never.
	LastReceive []int
}

// Rounds returns the number of rounds the flood was active.
func (r *Report) Rounds() int {
	return r.Result.Rounds
}

// TotalMessages returns the total number of point-to-point deliveries.
func (r *Report) TotalMessages() int {
	return r.Result.TotalMessages
}

// Covered reports whether every node of the graph received M at least once
// (for a connected graph this must hold; Lemma 2.1 says exactly once on
// bipartite graphs).
func (r *Report) Covered() bool {
	origin := make(map[graph.NodeID]bool, len(r.Origins))
	for _, o := range r.Origins {
		origin[o] = true
	}
	for v, c := range r.ReceiveCounts {
		if c == 0 && !origin[graph.NodeID(v)] {
			return false
		}
	}
	return true
}

// MaxReceives returns the maximum number of distinct rounds any single node
// received M in. Lemma 2.1 implies 1 for connected bipartite graphs; the
// full paper shows at most 2 in general.
func (r *Report) MaxReceives() int {
	max := 0
	for _, c := range r.ReceiveCounts {
		if c > max {
			max = c
		}
	}
	return max
}

// Run executes amnesiac flooding on g from the given origins on the
// deterministic sequential reference engine and returns the analysed
// report. Tracing is always enabled, since every analysis quantity derives
// from the trace.
//
// Run is the analysis convenience for tests and theory checks; engine
// selection, cancellation, and streaming observers live in the sim façade
// (sim.New + WithProtocol("amnesiac")), whose traced Result this package's
// Analyze turns into the same Report.
func Run(g *graph.Graph, origins ...graph.NodeID) (*Report, error) {
	return RunWithOptions(g, engine.Options{}, origins...)
}

// RunWithOptions is Run with explicit engine options. Options.Trace is
// forced on; MaxRounds and Observer are honoured.
func RunWithOptions(g *graph.Graph, opts engine.Options, origins ...graph.NodeID) (*Report, error) {
	flood, err := NewFlood(g, origins...)
	if err != nil {
		return nil, err
	}
	opts.Trace = true
	res, err := engine.Run(context.Background(), g, flood, opts)
	if err != nil {
		return nil, fmt.Errorf("core: run flood: %w", err)
	}
	return Analyze(g, flood.Origins(), res), nil
}

// Analyze derives the report quantities from a traced engine result. It is
// the post-hoc adapter over the streaming coverage analysis: the trace is
// replayed through one analysis.Coverage instance (the same code path
// sim.WithAnalysis("coverage") streams live), plus the round-set
// reconstruction the theory checks need.
func Analyze(g *graph.Graph, origins []graph.NodeID, res engine.Result) *Report {
	obs, err := analysis.Build("coverage", analysis.Context{Graph: g})
	if err != nil {
		panic("core: coverage analysis unavailable: " + err.Error()) // registered in this module; unreachable
	}
	cov := obs.(*analysis.Coverage)
	if err := cov.Start(origins); err != nil {
		panic("core: coverage start: " + err.Error()) // coverage accepts any origin set; unreachable
	}
	rep := &Report{Result: res}
	for _, rec := range res.Trace {
		if _, err := cov.ObserveRound(rec); err != nil {
			panic("core: coverage observe: " + err.Error()) // coverage never errors; unreachable
		}
		rep.RoundSets = append(rep.RoundSets, rec.Receivers())
	}
	// The analyzer is local to this call, so its buffers can be adopted
	// without copying.
	rep.Origins = cov.Origins()
	rep.ReceiveCounts = cov.ReceiveCounts()
	rep.FirstReceive = cov.FirstReceive()
	rep.LastReceive = cov.LastReceive()
	return rep
}
