package core

import (
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/sim"
)

// init self-registers amnesiac flooding with the sim façade's protocol
// registry, making it selectable as -protocol amnesiac on any engine.
func init() {
	sim.Register("amnesiac", func(spec sim.Spec) (engine.Protocol, error) {
		return NewFlood(spec.Graph, spec.Origins...)
	})
}
