package core_test

import (
	"fmt"
	"log"
	"os"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/trace"
)

// Example reproduces the paper's Figure 2: amnesiac flooding on the
// triangle from node b terminates in 3 = 2D+1 rounds.
func Example() {
	g := gen.Cycle(3)
	rep, err := core.Run(g, 1) // b is node 1
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.RenderRounds(os.Stdout, rep.Result.Trace, trace.Letters); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("terminated in %d rounds\n", rep.Rounds())
	// Output:
	// round 1: sending {b}  edges b->a b->c
	// round 2: sending {a,c}  edges a->c c->a
	// round 3: sending {a,c}  edges a->b c->b
	// terminated in 3 rounds
}

// ExampleRun_bipartite shows Lemma 2.1: on a bipartite graph the flood is a
// parallel BFS ending after exactly e(source) rounds.
func ExampleRun_bipartite() {
	g := gen.Cycle(6)
	rep, err := core.Run(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rounds=%d maxReceives=%d covered=%t\n",
		rep.Rounds(), rep.MaxReceives(), rep.Covered())
	// Output:
	// rounds=3 maxReceives=1 covered=true
}

// ExampleRun_multiSource floods from two origins at once; all origins send
// in round 1 and the process still terminates.
func ExampleRun_multiSource() {
	g := gen.Path(9)
	rep, err := core.Run(g, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rounds=%d covered=%t\n", rep.Rounds(), rep.Covered())
	// Output:
	// rounds=4 covered=true
}
