// Package core implements Amnesiac Flooding (AF), the paper's primary
// contribution (Definition 1.1):
//
// A distinguished node ℓ sends a message M to all its neighbours in round 1.
// In subsequent rounds, every node receiving M forwards a copy of M to
// every, and only those, nodes it did not receive the message from in that
// round. Nodes keep no memory of earlier rounds.
//
// The package provides the AF protocol for the synchronous engines, a
// convenience Run wrapper, and the analysis report (round-sets R_i, receive
// counts, message totals) used by the theory verifiers and the experiment
// harness.
package core

import (
	"errors"
	"fmt"
	"slices"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Flood is the Amnesiac Flooding protocol instantiated for a graph and a set
// of origins. It implements engine.Protocol. The paper studies a single
// origin; multiple origins are the natural generalisation (all origins send
// in round 1) and are exercised by the extension experiments.
type Flood struct {
	g       *graph.Graph
	origins []graph.NodeID
}

var (
	_ engine.Protocol       = (*Flood)(nil)
	_ engine.DenseProtocol  = (*Flood)(nil)
	_ engine.BitsetProtocol = (*Flood)(nil)
)

// Errors reported by NewFlood, matchable with errors.Is.
var (
	// ErrNoOrigin is returned when no origin is supplied.
	ErrNoOrigin = errors.New("amnesiac flooding needs at least one origin")
	// ErrBadOrigin is returned when an origin is not a node of the graph.
	ErrBadOrigin = errors.New("origin is not a node of the graph")
)

// NewFlood returns the AF protocol for g starting from the given origins.
// Duplicate origins are collapsed.
func NewFlood(g *graph.Graph, origins ...graph.NodeID) (*Flood, error) {
	if len(origins) == 0 {
		return nil, ErrNoOrigin
	}
	seen := make(map[graph.NodeID]bool, len(origins))
	uniq := make([]graph.NodeID, 0, len(origins))
	for _, o := range origins {
		if !g.HasNode(o) {
			return nil, fmt.Errorf("core: origin %d on %s: %w", o, g, ErrBadOrigin)
		}
		if !seen[o] {
			seen[o] = true
			uniq = append(uniq, o)
		}
	}
	slices.Sort(uniq)
	return &Flood{g: g, origins: uniq}, nil
}

// MustNewFlood is NewFlood for inputs known to be valid; it panics on error
// and is intended for examples and generators-driven experiments.
func MustNewFlood(g *graph.Graph, origins ...graph.NodeID) *Flood {
	f, err := NewFlood(g, origins...)
	if err != nil {
		panic(err)
	}
	return f
}

// Name implements engine.Protocol.
func (f *Flood) Name() string {
	return "amnesiac-flooding"
}

// Origins returns the sorted origin set.
func (f *Flood) Origins() []graph.NodeID {
	return append([]graph.NodeID(nil), f.origins...)
}

// Bootstrap implements engine.Protocol: every origin sends M to all its
// neighbours in round 1.
func (f *Flood) Bootstrap() []engine.Send {
	var sends []engine.Send
	for _, o := range f.origins {
		for _, nbr := range f.g.Neighbors(o) {
			sends = append(sends, engine.Send{From: o, To: nbr})
		}
	}
	return sends
}

// NewNode implements engine.Protocol. The returned automaton is stateless —
// a pure function of the current round's senders — which is the paper's
// amnesia requirement: a node forwards M to exactly the complement of its
// senders within its neighbourhood.
func (f *Flood) NewNode(v graph.NodeID) engine.NodeAutomaton {
	nbrs := f.g.Neighbors(v)
	return func(_ int, senders []graph.NodeID) []graph.NodeID {
		return complementSorted(nbrs, senders)
	}
}

// NewRun implements engine.DenseProtocol, the allocation-free fast path of
// the fastengine package. Amnesiac flooding is memoryless, so the appender
// carries no per-run state — only the CSR adjacency view — and is trivially
// safe for the parallel engine's concurrent per-node calls.
func (f *Flood) NewRun() engine.RoundAppender {
	return floodRun{csr: f.g.CSR()}
}

// floodRun appends the complement of the senders within v's neighbourhood
// directly onto the engine's send arena: the same merge as complementSorted,
// with zero allocation and the flat CSR row as the neighbour source.
type floodRun struct {
	csr graph.CSR
}

func (r floodRun) AppendSends(_ int, v graph.NodeID, senders []graph.NodeID, out []engine.Send) []engine.Send {
	return engine.AppendComplement(out, v, r.csr.Row(v), senders)
}

// BitsetRule implements engine.BitsetProtocol: amnesiac flooding's whole
// round is "forward to the complement of the sender set", every round, which
// is exactly the bitset engine's RuleComplement sweep.
func (f *Flood) BitsetRule() engine.BitsetRule {
	return engine.RuleComplement
}

// complementSorted returns nbrs \ senders. Both inputs are sorted; the
// result is freshly allocated and sorted.
func complementSorted(nbrs, senders []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(nbrs))
	i := 0
	for _, nbr := range nbrs {
		for i < len(senders) && senders[i] < nbr {
			i++
		}
		if i < len(senders) && senders[i] == nbr {
			continue
		}
		out = append(out, nbr)
	}
	return out
}
