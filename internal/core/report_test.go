package core_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
)

func TestRunFig1Line(t *testing.T) {
	// Figure 1: line a-b-c-d from b, 2 rounds.
	rep, err := core.Run(gen.Path(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", rep.Rounds())
	}
	if rep.TotalMessages() != 3 {
		t.Fatalf("messages = %d, want 3 (b->a, b->c, c->d)", rep.TotalMessages())
	}
	wantRoundSets := [][]graph.NodeID{{0, 2}, {3}}
	if !reflect.DeepEqual(rep.RoundSets, wantRoundSets) {
		t.Fatalf("round sets = %v, want %v", rep.RoundSets, wantRoundSets)
	}
	if !rep.Covered() || rep.MaxReceives() != 1 {
		t.Fatalf("covered=%t maxReceives=%d", rep.Covered(), rep.MaxReceives())
	}
}

func TestRunFig2Triangle(t *testing.T) {
	// Figure 2: triangle from b: 3 rounds, a and c receive twice... no:
	// a receives in rounds 1 and 2, c likewise, b receives in round 3.
	rep, err := core.Run(gen.Cycle(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", rep.Rounds())
	}
	wantCounts := []int{2, 1, 2} // a: rounds 1,2; b: round 3; c: rounds 1,2
	if !reflect.DeepEqual(rep.ReceiveCounts, wantCounts) {
		t.Fatalf("receive counts = %v, want %v", rep.ReceiveCounts, wantCounts)
	}
	if rep.FirstReceive[1] != 3 || rep.LastReceive[1] != 3 {
		t.Fatalf("origin receives: first=%d last=%d, want 3/3",
			rep.FirstReceive[1], rep.LastReceive[1])
	}
	if rep.MaxReceives() != 2 {
		t.Fatalf("max receives = %d, want 2", rep.MaxReceives())
	}
}

func TestRunBothEnginesAgree(t *testing.T) {
	g := gen.Petersen()
	seq, err := core.Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sim.New(g,
		sim.WithProtocol("amnesiac"),
		sim.WithEngine(sim.Channels),
		sim.WithOrigins(0),
		sim.WithTrace(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	chn := core.Analyze(g, []graph.NodeID{0}, res)
	if seq.Rounds() != chn.Rounds() || seq.TotalMessages() != chn.TotalMessages() {
		t.Fatalf("engines disagree: %d/%d rounds, %d/%d messages",
			seq.Rounds(), chn.Rounds(), seq.TotalMessages(), chn.TotalMessages())
	}
	if !reflect.DeepEqual(seq.ReceiveCounts, chn.ReceiveCounts) {
		t.Fatalf("receive counts differ: %v vs %v", seq.ReceiveCounts, chn.ReceiveCounts)
	}
}

func TestRunPropagatesOriginErrors(t *testing.T) {
	if _, err := core.Run(gen.Path(3)); err == nil {
		t.Fatal("run with no origins succeeded")
	}
	if _, err := core.Run(gen.Path(3), 99); err == nil {
		t.Fatal("run with invalid origin succeeded")
	}
}

func TestCoveredFalseWhenUnreached(t *testing.T) {
	// Disconnected graph: the other component is never covered.
	g, err := graph.FromEdges("", 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered() {
		t.Fatal("disconnected run reported covered")
	}
}

func TestSingletonOriginTerminatesImmediately(t *testing.T) {
	g, err := graph.FromEdges("", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds() != 0 || !rep.Result.Terminated || !rep.Covered() {
		t.Fatalf("singleton: %+v", rep.Result)
	}
}

func TestMultiSourceAllNodes(t *testing.T) {
	// Every node an origin on an even cycle: each node hears from both
	// neighbours in round 1, complement empty, terminates in 1 round.
	g := gen.Cycle(6)
	rep, err := core.Run(g, 0, 1, 2, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds() != 1 {
		t.Fatalf("all-origins rounds = %d, want 1", rep.Rounds())
	}
	if rep.TotalMessages() != 12 {
		t.Fatalf("all-origins messages = %d, want 12", rep.TotalMessages())
	}
}

func TestBipartiteParallelBFSProperty(t *testing.T) {
	// Property (Lemma 2.1): on random connected bipartite graphs the flood
	// reaches each node exactly once, at its BFS distance, and dies at
	// round e(source).
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.Connectify(gen.RandomBipartite(2+rng.Intn(20), 2+rng.Intn(20), 0.2, rng), rng)
		src := graph.NodeID(rng.Intn(g.N()))
		rep, err := core.Run(g, src)
		if err != nil {
			return false
		}
		if rep.Rounds() != algo.Eccentricity(g, src) {
			return false
		}
		dist := algo.BFS(g, src)
		for v := 0; v < g.N(); v++ {
			if graph.NodeID(v) == src {
				if rep.ReceiveCounts[v] != 0 {
					return false
				}
				continue
			}
			if rep.ReceiveCounts[v] != 1 || rep.FirstReceive[v] != dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralTerminationProperty(t *testing.T) {
	// Property (Theorems 3.1/3.3): on random connected graphs the flood
	// terminates within 2D+1 rounds, covers the graph, and no node
	// receives in more than two rounds.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(50), 0.08, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		rep, err := core.Run(g, src)
		if err != nil {
			return false
		}
		diam := algo.Diameter(g)
		return rep.Result.Terminated &&
			rep.Rounds() <= 2*diam+1 &&
			rep.Rounds() >= algo.Eccentricity(g, src) &&
			rep.Covered() &&
			rep.MaxReceives() <= 2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiSourceTerminationProperty(t *testing.T) {
	// Extension (full paper): amnesiac flooding also terminates from any
	// set of origins. The 2D+1 bound is not claimed for multi-source in
	// the brief announcement; we assert termination and coverage only,
	// plus a generous 2n bound on rounds.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(3+rng.Intn(40), 0.08, rng)
		k := 1 + rng.Intn(4)
		origins := make([]graph.NodeID, 0, k)
		for i := 0; i < k; i++ {
			origins = append(origins, graph.NodeID(rng.Intn(g.N())))
		}
		rep, err := core.Run(g, origins...)
		if err != nil {
			return false
		}
		return rep.Result.Terminated && rep.Rounds() <= 2*g.N() && rep.Covered()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
