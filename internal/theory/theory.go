// Package theory turns the paper's lemmas and theorems into executable
// checks. Each check takes a graph and an analysed amnesiac-flooding report
// and returns nil when the run is consistent with the paper's claims, or a
// descriptive error pinpointing the violated claim.
//
// The checks are used three ways: as unit/property-test oracles, as the
// acceptance criteria of the experiment harness (EXPERIMENTS.md), and as a
// library facility for users who want their own runs validated.
package theory

import (
	"fmt"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
)

// CheckTerminated verifies Theorem 3.1's conclusion on a concrete run:
// the flood reached a round with no messages.
func CheckTerminated(rep *core.Report) error {
	if !rep.Result.Terminated {
		return fmt.Errorf("theory: run did not terminate within %d rounds (Theorem 3.1 violated)", rep.Rounds())
	}
	return nil
}

// CheckBipartiteExact verifies Lemma 2.1 and Corollary 2.2 on a single-
// source run over a connected bipartite graph:
//
//   - the flood terminates in exactly e(source) rounds,
//   - hence within the diameter D,
//   - every node receives M exactly once, in the round equal to its
//     BFS distance from the source (the parallel-BFS behaviour).
func CheckBipartiteExact(g *graph.Graph, rep *core.Report) error {
	if err := CheckTerminated(rep); err != nil {
		return err
	}
	if len(rep.Origins) != 1 {
		return fmt.Errorf("theory: bipartite check needs a single origin, got %d", len(rep.Origins))
	}
	source := rep.Origins[0]
	ecc := algo.Eccentricity(g, source)
	if rep.Rounds() != ecc {
		return fmt.Errorf("theory: bipartite %s from %d: terminated in %d rounds, want eccentricity %d (Lemma 2.1)",
			g, source, rep.Rounds(), ecc)
	}
	if diam := algo.Diameter(g); rep.Rounds() > diam {
		return fmt.Errorf("theory: bipartite %s from %d: %d rounds exceeds diameter %d (Corollary 2.2)",
			g, source, rep.Rounds(), diam)
	}
	dist := algo.BFS(g, source)
	for v := 0; v < g.N(); v++ {
		node := graph.NodeID(v)
		if node == source {
			if rep.ReceiveCounts[v] != 0 {
				// On a bipartite graph the origin never hears the
				// message back.
				return fmt.Errorf("theory: bipartite %s: origin %d received M %d times, want 0",
					g, source, rep.ReceiveCounts[v])
			}
			continue
		}
		if rep.ReceiveCounts[v] != 1 {
			return fmt.Errorf("theory: bipartite %s from %d: node %d received M %d times, want exactly once (Lemma 2.1)",
				g, source, node, rep.ReceiveCounts[v])
		}
		if rep.FirstReceive[v] != dist[v] {
			return fmt.Errorf("theory: bipartite %s from %d: node %d first received in round %d, want BFS distance %d",
				g, source, node, rep.FirstReceive[v], dist[v])
		}
	}
	return nil
}

// CheckGeneralBounds verifies the general-graph claims on a single-source
// run over a connected graph:
//
//   - termination (Theorem 3.1),
//   - every non-origin node is covered,
//   - e(source) <= rounds <= 2D+1 (Theorem 3.3 upper bound; the lower
//     bound holds because the flood needs e(source) rounds to reach the
//     farthest node),
//   - no node receives M in more than two distinct rounds (full-paper
//     refinement of Theorem 3.3).
func CheckGeneralBounds(g *graph.Graph, rep *core.Report) error {
	if err := CheckTerminated(rep); err != nil {
		return err
	}
	if len(rep.Origins) != 1 {
		return fmt.Errorf("theory: general check needs a single origin, got %d", len(rep.Origins))
	}
	source := rep.Origins[0]
	if !rep.Covered() {
		return fmt.Errorf("theory: %s from %d: some node never received M on a connected graph", g, source)
	}
	ecc := algo.Eccentricity(g, source)
	diam := algo.Diameter(g)
	if rep.Rounds() < ecc {
		return fmt.Errorf("theory: %s from %d: %d rounds < eccentricity %d (message cannot have covered the graph)",
			g, source, rep.Rounds(), ecc)
	}
	if rep.Rounds() > 2*diam+1 {
		return fmt.Errorf("theory: %s from %d: %d rounds > 2D+1 = %d (Theorem 3.3)",
			g, source, rep.Rounds(), 2*diam+1)
	}
	if max := rep.MaxReceives(); max > 2 {
		return fmt.Errorf("theory: %s from %d: a node received M in %d distinct rounds, want <= 2",
			g, source, max)
	}
	return nil
}

// CheckNonBipartiteStrict verifies the paper's remark that on connected
// non-bipartite graphs termination is strictly slower than the diameter:
// rounds > D.
//
// Reproduction caveat (experiment E5): the remark holds on source-symmetric
// families (odd cycles, cliques, wheels, Petersen) but is not true for every
// (graph, source) pair — on irregular non-bipartite graphs the odd-cycle
// echo can die out before the primary wave reaches the last node, giving
// rounds == e(source) <= D. Apply this check only where the strict bound is
// expected; use CheckGeneralBounds otherwise.
func CheckNonBipartiteStrict(g *graph.Graph, rep *core.Report) error {
	if err := CheckGeneralBounds(g, rep); err != nil {
		return err
	}
	if diam := algo.Diameter(g); rep.Rounds() <= diam {
		return fmt.Errorf("theory: non-bipartite %s from %v: %d rounds <= diameter %d, want strictly more",
			g, rep.Origins, rep.Rounds(), diam)
	}
	return nil
}

// CheckOddGapInvariant verifies the combinatorial heart of the Theorem 3.1
// proof (Lemma 3.2 and the two contradiction cases of Figure 4): in any
// execution, whenever a node belongs to two round-sets R_i and R_j
// (with R_0 = the origin set), the duration j-i is odd. An even duration
// would make the set Re of the proof non-empty, which the paper shows is
// impossible.
func CheckOddGapInvariant(rep *core.Report) error {
	// receiveRounds[v] lists every round v held M, with round 0 for the
	// origins (the paper's R_0).
	n := len(rep.ReceiveCounts)
	receiveRounds := make([][]int, n)
	for _, o := range rep.Origins {
		receiveRounds[o] = append(receiveRounds[o], 0)
	}
	for i, set := range rep.RoundSets {
		round := i + 1
		for _, v := range set {
			receiveRounds[v] = append(receiveRounds[v], round)
		}
	}
	for v, rounds := range receiveRounds {
		for i := 0; i < len(rounds); i++ {
			for j := i + 1; j < len(rounds); j++ {
				if (rounds[j]-rounds[i])%2 == 0 {
					return fmt.Errorf("theory: node %d is in round-sets R_%d and R_%d: even duration %d (Lemma 3.2 machinery violated)",
						v, rounds[i], rounds[j], rounds[j]-rounds[i])
				}
			}
		}
	}
	return nil
}

// Bound is the predicted termination window for a single-source run,
// derived purely from the graph (no simulation).
type Bound struct {
	// Exact is set when the paper predicts the exact round count
	// (bipartite graphs: e(source)); when true, Lower == Upper.
	Exact bool
	// Lower and Upper bracket the termination round, inclusive.
	Lower, Upper int
}

// PredictTermination returns the paper's termination window for a
// single-source flood on a connected graph: exactly e(source) when g is
// bipartite, otherwise e(source) .. 2D+1. (The brief announcement's
// "strictly larger than D" is not a pointwise lower bound — see
// CheckNonBipartiteStrict — so the general window starts at e(source).)
func PredictTermination(g *graph.Graph, source graph.NodeID) Bound {
	ecc := algo.Eccentricity(g, source)
	if algo.IsBipartite(g) {
		return Bound{Exact: true, Lower: ecc, Upper: ecc}
	}
	return Bound{Lower: ecc, Upper: 2*algo.Diameter(g) + 1}
}

// Holds reports whether a measured round count falls inside the bound.
func (b Bound) Holds(rounds int) bool {
	return rounds >= b.Lower && rounds <= b.Upper
}
