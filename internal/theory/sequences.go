package theory

import (
	"fmt"
	"slices"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
)

// This file makes the combinatorial objects of the Theorem 3.1 proof
// explicit and queryable. The proof defines round-sets R_0, R_1, ... (R_0 =
// the origin set, R_i = nodes receiving M in round i) and studies the set R
// of sequences R_s ... R_{s+d} whose endpoints share a node (equation (1)
// of the paper), with start-point s and duration d > 0. The subset Re of
// even-duration sequences must be empty, or the minimal-duration,
// earliest-start sequence R* triggers one of the two contradiction cases of
// Figure 4.

// Sequence is one element of the paper's set R: node x occurs in round-sets
// R_Start and R_Start+Duration.
type Sequence struct {
	// Node is the shared node x.
	Node graph.NodeID
	// Start is the paper's s: the index of the earlier round-set.
	Start int
	// Duration is the paper's d > 0.
	Duration int
}

// End returns s + d, the index of the later round-set.
func (s Sequence) End() int {
	return s.Start + s.Duration
}

// String renders the sequence like the paper writes it.
func (s Sequence) String() string {
	return fmt.Sprintf("x=%d in R_%d and R_%d (d=%d)", s.Node, s.Start, s.End(), s.Duration)
}

// SequenceAnalysis summarises the set R for one execution.
type SequenceAnalysis struct {
	// Sequences is all of R, sorted by (Start, Duration, Node).
	Sequences []Sequence
	// EvenCount is |Re|. Theorem 3.1's proof shows it must be zero.
	EvenCount int
	// MinDuration and MaxDuration are over all of R (0 when R is empty).
	MinDuration, MaxDuration int
	// DurationHistogram counts sequences per duration.
	DurationHistogram map[int]int
}

// AnalyzeSequences reconstructs the paper's sequence set R from a run
// report, including R_0 (the origin set).
func AnalyzeSequences(rep *core.Report) SequenceAnalysis {
	n := len(rep.ReceiveCounts)
	occurrences := make([][]int, n)
	for _, o := range rep.Origins {
		occurrences[o] = append(occurrences[o], 0)
	}
	for i, set := range rep.RoundSets {
		for _, v := range set {
			occurrences[v] = append(occurrences[v], i+1)
		}
	}
	analysis := SequenceAnalysis{DurationHistogram: map[int]int{}}
	for v, rounds := range occurrences {
		for i := 0; i < len(rounds); i++ {
			for j := i + 1; j < len(rounds); j++ {
				seq := Sequence{
					Node:     graph.NodeID(v),
					Start:    rounds[i],
					Duration: rounds[j] - rounds[i],
				}
				analysis.Sequences = append(analysis.Sequences, seq)
				analysis.DurationHistogram[seq.Duration]++
				if seq.Duration%2 == 0 {
					analysis.EvenCount++
				}
				if analysis.MinDuration == 0 || seq.Duration < analysis.MinDuration {
					analysis.MinDuration = seq.Duration
				}
				if seq.Duration > analysis.MaxDuration {
					analysis.MaxDuration = seq.Duration
				}
			}
		}
	}
	slices.SortFunc(analysis.Sequences, func(a, b Sequence) int {
		if a.Start != b.Start {
			return a.Start - b.Start
		}
		if a.Duration != b.Duration {
			return a.Duration - b.Duration
		}
		return int(a.Node) - int(b.Node)
	})
	return analysis
}

// MinimalEvenSequence returns the paper's R*: among even-duration
// sequences, one with minimum duration and, among those, earliest start —
// the object both Figure 4 contradiction cases are built on. ok is false
// when Re is empty (which Theorem 3.1 proves always holds for real
// executions; doctored reports exercise the true branch in tests).
func (a SequenceAnalysis) MinimalEvenSequence() (Sequence, bool) {
	best := Sequence{}
	found := false
	for _, s := range a.Sequences {
		if s.Duration%2 != 0 {
			continue
		}
		if !found ||
			s.Duration < best.Duration ||
			(s.Duration == best.Duration && s.Start < best.Start) {
			best = s
			found = true
		}
	}
	return best, found
}

// CheckSequenceMachinery re-verifies the odd-gap invariant through the
// explicit sequence set and cross-checks AnalyzeSequences against
// CheckOddGapInvariant: the two must agree that Re is empty.
func CheckSequenceMachinery(rep *core.Report) error {
	analysis := AnalyzeSequences(rep)
	gapErr := CheckOddGapInvariant(rep)
	if analysis.EvenCount > 0 {
		seq, _ := analysis.MinimalEvenSequence()
		if gapErr == nil {
			return fmt.Errorf("theory: sequence analysis found %s but the gap check passed (internal inconsistency)", seq)
		}
		return fmt.Errorf("theory: Re is non-empty, minimal sequence %s (Figure 4 contradiction applies)", seq)
	}
	if gapErr != nil {
		return fmt.Errorf("theory: gap check failed but sequence analysis found Re empty: %w", gapErr)
	}
	return nil
}
